// Command fig6 regenerates Figure 6 of the paper: the relative performance
// of embedded concurrent generators (the Junicon suite, compiled to kernel
// compositions) against native stream-based programs (the Go analogue of
// the Java suite), for the four word-count variants — Sequential,
// Pipeline, DataParallel, MapReduce — under lightweight and heavyweight
// hash functions, normalized to the native MapReduce (parallel-stream)
// time of each weight class, with 99% confidence intervals.
//
// Usage:
//
//	fig6 [-lines N] [-words N] [-warmup N] [-iters N] [-quick]
//	     [-workers N] [-window N] [-sweep weight|buffer|chunk|window]
//
// The -sweep flags run the ablations indexed in DESIGN.md instead of the
// main figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"junicon/internal/bench"
	"junicon/internal/wordcount"
)

func main() {
	var (
		lines   = flag.Int("lines", 400, "corpus lines")
		words   = flag.Int("words", 10, "words per line")
		warmup  = flag.Int("warmup", 20, "warmup iterations (paper: 20)")
		iters   = flag.Int("iters", 20, "measured iterations (paper: 20)")
		quick   = flag.Bool("quick", false, "tiny run for smoke-testing (overrides warmup/iters)")
		sweep   = flag.String("sweep", "", "run an ablation: weight | buffer | chunk | window")
		workers = flag.Int("workers", 0, "task pool size for the data-parallel variants (0: shared pool, GOMAXPROCS)")
		window  = flag.Int("window", 0, "in-flight chunk-task window (0: 2x workers)")
	)
	flag.Parse()

	cfg := bench.Config{Warmup: *warmup, Iterations: *iters, MinIterTime: 5 * time.Millisecond}
	if *quick {
		cfg = bench.Config{Warmup: 2, Iterations: 3, MinIterTime: time.Millisecond}
	}

	fmt.Printf("fig6: %d lines x %d words, %d+%d iterations, GOMAXPROCS=%d\n\n",
		*lines, *words, cfg.Warmup, cfg.Iterations, runtime.GOMAXPROCS(0))

	switch *sweep {
	case "":
		corpus := wordcount.GenerateLines(*lines, *words, 1)
		runFigure6(corpus, wordcount.Light, cfg, *workers, *window)
		fmt.Println()
		heavyCorpus := corpus
		if !*quick && *lines > 100 {
			// The heavyweight set uses a smaller corpus: per-task weight is
			// ~80x, so wall-clock stays comparable (the paper scales JMH
			// time budgets the same way).
			heavyCorpus = wordcount.GenerateLines(*lines/8, *words, 1)
		}
		runFigure6(heavyCorpus, wordcount.Heavy, cfg, *workers, *window)
	case "weight":
		sweepWeight(cfg, *lines, *words)
	case "buffer":
		sweepBuffer(cfg, *lines, *words)
	case "chunk":
		sweepChunk(cfg, *lines, *words)
	case "window":
		sweepWindow(cfg, *lines, *words)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

// runFigure6 produces one half (one weight class) of Figure 6.
func runFigure6(lines []string, w wordcount.Weight, cfg bench.Config, workers, window int) {
	ncfg := wordcount.NativeConfig{Workers: workers}
	ecfg := wordcount.EmbeddedConfig{ChunkSize: max(len(lines)/8, 1), Workers: workers, Window: window}
	results := []bench.Result{
		bench.Run("Junicon/Sequential", cfg, func() { wordcount.JuniconSequential(lines, w, ecfg) }),
		bench.Run("Junicon/Pipeline", cfg, func() { wordcount.JuniconPipeline(lines, w, ecfg) }),
		bench.Run("Junicon/DataParallel", cfg, func() { wordcount.JuniconDataParallel(lines, w, ecfg) }),
		bench.Run("Junicon/MapReduce", cfg, func() { wordcount.JuniconMapReduce(lines, w, ecfg) }),
		bench.Run("Go/Sequential", cfg, func() { wordcount.NativeSequential(lines, w) }),
		bench.Run("Go/Pipeline", cfg, func() { wordcount.NativePipeline(lines, w, ncfg) }),
		bench.Run("Go/DataParallel", cfg, func() { wordcount.NativeDataParallel(lines, w, ncfg) }),
		bench.Run("Go/MapReduce", cfg, func() { wordcount.NativeMapReduce(lines, w, ncfg) }),
	}
	norm, err := bench.Normalize(results, "Go/MapReduce")
	if err != nil {
		panic(err)
	}
	title := fmt.Sprintf("Figure 6 (%s, %d lines): normalized to Go/MapReduce", w, len(lines))
	bench.Table(os.Stdout, title, norm)
	fmt.Println()
	bench.Bars(os.Stdout, title, norm)
}

// sweepWeight: the §VII claim — the relative overhead of embedded
// concurrent generators decreases as the weight of the computational nodes
// increases. Ablation A of DESIGN.md.
func sweepWeight(cfg bench.Config, nlines, words int) {
	fmt.Println("Ablation A: embedded/native overhead vs task weight (MapReduce variant)")
	fmt.Printf("%-12s %14s %14s %10s\n", "weight", "junicon", "native", "ratio")
	for _, w := range []wordcount.Weight{wordcount.Light, wordcount.Heavy} {
		n := nlines
		if w == wordcount.Heavy {
			n = max(nlines/8, 8)
		}
		lines := wordcount.GenerateLines(n, words, 1)
		ecfg := wordcount.EmbeddedConfig{ChunkSize: max(n/8, 1)}
		jr := bench.Run("junicon", cfg, func() { wordcount.JuniconMapReduce(lines, w, ecfg) })
		nr := bench.Run("native", cfg, func() { wordcount.NativeMapReduce(lines, w, wordcount.NativeConfig{}) })
		fmt.Printf("%-12s %14.6fs %14.6fs %9.2fx\n", w, jr.Mean, nr.Mean, jr.Mean/nr.Mean)
	}
}

// sweepBuffer: pipe buffer bound as a throttle (§3B). Ablation B.
func sweepBuffer(cfg bench.Config, nlines, words int) {
	lines := wordcount.GenerateLines(nlines, words, 1)
	fmt.Println("Ablation B: pipeline time vs pipe buffer bound (§3B throttling)")
	fmt.Printf("%-10s %14s\n", "buffer", "mean")
	for _, buf := range []int{1, 4, 64, 1024} {
		ecfg := wordcount.EmbeddedConfig{Buffer: buf}
		r := bench.Run(fmt.Sprintf("buffer-%d", buf), cfg, func() {
			wordcount.JuniconPipeline(lines, wordcount.Light, ecfg)
		})
		fmt.Printf("%-10d %14.6fs\n", buf, r.Mean)
	}
}

// sweepChunk: map-reduce chunk-size sensitivity (Figure 4's knob).
// Ablation C.
func sweepChunk(cfg bench.Config, nlines, words int) {
	lines := wordcount.GenerateLines(nlines, words, 1)
	fmt.Println("Ablation C: map-reduce time vs chunk size (Figure 4)")
	fmt.Printf("%-10s %14s %8s\n", "chunk", "mean", "tasks")
	for _, chunk := range []int{10, 50, 200, 1000} {
		ecfg := wordcount.EmbeddedConfig{ChunkSize: chunk}
		r := bench.Run(fmt.Sprintf("chunk-%d", chunk), cfg, func() {
			wordcount.JuniconMapReduce(lines, wordcount.Light, ecfg)
		})
		fmt.Printf("%-10d %14.6fs %8d\n", chunk, r.Mean, (nlines+chunk-1)/chunk)
	}
}

// sweepWindow: the windowed data-parallel scheduler's knobs — pool size ×
// in-flight chunk-task window (MapReduce variant). Ablation H.
func sweepWindow(cfg bench.Config, nlines, words int) {
	lines := wordcount.GenerateLines(nlines, words, 1)
	fmt.Println("Ablation H: map-reduce time vs workers x window (pooled scheduler)")
	fmt.Printf("%-10s %-10s %14s\n", "workers", "window", "mean")
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		for _, window := range []int{1, 2, 4, 8, 16} {
			ecfg := wordcount.EmbeddedConfig{
				ChunkSize: max(nlines/32, 1),
				Workers:   workers,
				Window:    window,
			}
			r := bench.Run(fmt.Sprintf("w%d-win%d", workers, window), cfg, func() {
				wordcount.JuniconMapReduce(lines, wordcount.Light, ecfg)
			})
			fmt.Printf("%-10d %-10d %14.6fs\n", workers, window, r.Mean)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
