// Command junilint runs the host-code analyzer suite of internal/lint over
// Go source trees: invariants of the pipe, queue and telemetry layers that
// the Go compiler cannot check.
//
// Usage:
//
//	junilint [dir ...]        check all .go files under each dir (default .)
//	junilint -list            print the analyzers and exit
//
// Findings print as path:line:col: check: message, one per line; the exit
// status is 1 when anything was found. //junilint:ignore on (or directly
// above) a line suppresses its findings. Unlike go vet's -vettool plugins,
// junilint is a standalone binary on purpose: the suite is stdlib-only
// (go/ast, no type checker, no golang.org/x/tools), so it builds and runs
// in hermetic environments where module downloads are impossible.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"junicon/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	found := 0
	checked := 0
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				// Hidden trees and vendored/test fixtures are not ours to lint.
				name := d.Name()
				if path != dir && (strings.HasPrefix(name, ".") || name == "vendor" || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			findings, err := lint.CheckSource(path, src)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			checked++
			for _, f := range findings {
				fmt.Println(f)
				found++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "junilint:", err)
			os.Exit(2)
		}
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "junilint: no Go files checked")
		os.Exit(2)
	}
	if found > 0 {
		os.Exit(1)
	}
}
