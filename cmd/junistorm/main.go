// Command junistorm is the load harness for multiplexed remote sessions:
// it opens thousands of concurrent generator streams against one or more
// junicond nodes through a pooled session Dialer, drains them with mixed
// batch sizes and consumer speeds, validates every stream's exact value
// sequence (no losses, no duplicates, no reordering), and reports
// throughput plus latency percentiles from telemetry histograms.
//
// Usage:
//
//	junistorm -addrs 127.0.0.1:9707 -streams 10000
//
//	junistorm -addrs a:9707,b:9707 -streams 4096 -values 500
//	junistorm -streams 1000 -per-conn        classic one-conn-per-stream
//	junistorm -streams 1000 -mixed=false     uniform batch/speed
//	junistorm -json                          machine-readable report
//
// The exit status is the verdict: 0 only when every stream delivered
// exactly 1..values in order with a nil error. Latency is measured two
// ways — time to first value (dial + OPEN + first delivery, the stream
// setup cost the session pool amortizes) and per-Next wait (steady-state
// consumer stall, the §3B credit loop's client-visible latency).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/remote"
	"junicon/internal/telemetry"
	"junicon/internal/value"
)

var (
	hFirst = telemetry.NewHistogram("junistorm.first_value_ns")
	hNext  = telemetry.NewHistogram("junistorm.next_wait_ns")
)

type report struct {
	Streams    int     `json:"streams"`
	Values     int     `json:"values_per_stream"`
	Total      int64   `json:"values_total"`
	Errors     int64   `json:"errors"`
	DurationMs float64 `json:"duration_ms"`
	Throughput float64 `json:"values_per_sec"`
	Sessions   int     `json:"sessions"`

	FirstValueMs percentiles `json:"first_value_ms"`
	NextWaitUs   percentiles `json:"next_wait_us"`
}

type percentiles struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

func main() {
	var (
		addrs     = flag.String("addrs", "127.0.0.1:9707", "comma-separated junicond addresses, streams round-robin across them")
		streams   = flag.Int("streams", 1000, "concurrent streams to open")
		values    = flag.Int("values", 100, "values per stream (range 1..values)")
		buffer    = flag.Int("buffer", 64, "per-stream client buffer (credit window)")
		batch     = flag.Int("batch", 0, "VALUES batch size (0 = default; -1 = per-value)")
		mixed     = flag.Bool("mixed", true, "vary batch size per stream across {default, 8, per-value}")
		slowEvery = flag.Int("slow-every", 10, "every Nth stream consumes slowly (0 = none)")
		slowPause = flag.Duration("slow-pause", 200*time.Microsecond, "pause per value on slow streams")
		perConn   = flag.Int("streams-per-conn", 0, "streams per pooled session (0 = default)")
		classic   = flag.Bool("per-conn", false, "bypass the session pool: one TCP connection per stream")
		jsonOut   = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()
	telemetry.SetMetrics(true)

	nodes := strings.Split(*addrs, ",")
	d := &remote.Dialer{StreamsPerConn: *perConn}
	defer d.Close()

	var (
		wg    sync.WaitGroup
		total atomic.Int64
		errs  atomic.Int64
		peakG atomic.Int64
	)
	fail := func(format string, args ...any) {
		errs.Add(1)
		fmt.Fprintf(os.Stderr, "junistorm: "+format+"\n", args...)
	}

	start := time.Now()
	for i := 0; i < *streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := remote.Config{Buffer: *buffer, Batch: *batch}
			if *mixed {
				switch i % 3 {
				case 1:
					cfg.Batch = 8
				case 2:
					cfg.Batch = -1 // per-value frames
				}
			}
			slow := *slowEvery > 0 && i%*slowEvery == *slowEvery-1
			addr := nodes[i%len(nodes)]
			args := []value.V{value.NewInt(1), value.NewInt(int64(*values))}
			var p *remote.RemotePipe
			if *classic {
				p = remote.Open(addr, "range", args, cfg)
			} else {
				p = d.Open(addr, "range", args, cfg)
			}
			defer p.Stop()

			t0 := time.Now()
			expect := int64(1)
			for {
				s := time.Now()
				v, ok := p.Next()
				if !ok {
					break
				}
				if expect == 1 {
					hFirst.Observe(time.Since(t0).Nanoseconds())
				} else {
					hNext.Observe(time.Since(s).Nanoseconds())
				}
				got, iok := value.ToInteger(value.Deref(v))
				if !iok {
					fail("stream %d: non-integer value %s", i, value.Image(v))
					return
				}
				n, _ := got.Int64()
				if n != expect {
					fail("stream %d: value %d, want %d (lost/duplicated/reordered)", i, n, expect)
					return
				}
				expect++
				total.Add(1)
				if slow {
					time.Sleep(*slowPause)
				}
			}
			if err := p.Err(); err != nil {
				fail("stream %d: %v", i, err)
				return
			}
			if expect != int64(*values)+1 {
				fail("stream %d: %d values delivered, want %d", i, expect-1, *values)
			}
		}(i)
		if g := int64(runtime.NumGoroutine()); g > peakG.Load() {
			peakG.Store(g)
		}
	}
	wg.Wait()
	wall := time.Since(start)

	fs, ns := hFirst.Snapshot(), hNext.Snapshot()
	r := report{
		Streams:    *streams,
		Values:     *values,
		Total:      total.Load(),
		Errors:     errs.Load(),
		DurationMs: float64(wall.Microseconds()) / 1e3,
		Throughput: float64(total.Load()) / wall.Seconds(),
		Sessions:   d.Sessions(),
		FirstValueMs: percentiles{
			P50: fs.P50 / 1e6, P99: fs.P99 / 1e6, P999: fs.P999 / 1e6, Max: float64(fs.Max) / 1e6,
		},
		NextWaitUs: percentiles{
			P50: ns.P50 / 1e3, P99: ns.P99 / 1e3, P999: ns.P999 / 1e3, Max: float64(ns.Max) / 1e3,
		},
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(r)
	} else {
		mode := "muxed"
		if *classic {
			mode = "per-conn"
		}
		fmt.Printf("junistorm: %d streams x %d values (%s) against %d node(s)\n",
			r.Streams, r.Values, mode, len(nodes))
		fmt.Printf("  delivered   %d values in %.1fms (%.0f values/s), %d errors\n",
			r.Total, r.DurationMs, r.Throughput, r.Errors)
		fmt.Printf("  sessions    %d pooled (peak %d goroutines)\n", r.Sessions, peakG.Load())
		fmt.Printf("  first value p50 %.2fms  p99 %.2fms  p99.9 %.2fms  max %.2fms\n",
			r.FirstValueMs.P50, r.FirstValueMs.P99, r.FirstValueMs.P999, r.FirstValueMs.Max)
		fmt.Printf("  next wait   p50 %.1fus  p99 %.1fus  p99.9 %.1fus  max %.1fus\n",
			r.NextWaitUs.P50, r.NextWaitUs.P99, r.NextWaitUs.P999, r.NextWaitUs.Max)
	}
	if errs.Load() > 0 {
		os.Exit(1)
	}
}
