package main

import (
	"bytes"
	"strings"
	"testing"

	"junicon"
)

func runRepl(t *testing.T, input string) string {
	t.Helper()
	var out bytes.Buffer
	in := junicon.NewInterp(&out)
	repl(in, strings.NewReader(input), &out, false)
	return out.String()
}

func TestReplEvaluatesExpressions(t *testing.T) {
	out := runRepl(t, "1 + 2\n(1 to 3) * 10\n")
	for _, want := range []string{"3\n", "10\n", "20\n", "30\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestReplLoadsDeclarationsAndUsesThem(t *testing.T) {
	out := runRepl(t, "def sq(x) { return x*x; }\nsq(6)\n")
	if !strings.Contains(out, "36") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestReplMultiLineInput(t *testing.T) {
	out := runRepl(t, "def f(n) {\n  return n + 1;\n}\nf(4)\n")
	if !strings.Contains(out, "5") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestReplReportsFailureAndErrors(t *testing.T) {
	out := runRepl(t, "1 > 2\n1/0\n")
	if !strings.Contains(out, "-- fails") {
		t.Fatalf("failure marker missing:\n%s", out)
	}
	if !strings.Contains(out, "division by zero") {
		t.Fatalf("error missing:\n%s", out)
	}
}

func TestReplCapsInfiniteGenerators(t *testing.T) {
	out := runRepl(t, "seq(1)\n")
	if !strings.Contains(out, "stopped after") {
		t.Fatalf("cap marker missing:\n%s", out)
	}
}

func TestReplWarnsOnSuspiciousInput(t *testing.T) {
	out := runRepl(t, "write(neverSet)\n")
	if !strings.Contains(out, "JV001") {
		t.Fatalf("vet warning missing:\n%s", out)
	}
	// The input still evaluates: neverSet defaults to &null.
	if !strings.Contains(out, "&null") {
		t.Fatalf("evaluation suppressed:\n%s", out)
	}
}

func TestReplKnowsEarlierDefinitions(t *testing.T) {
	out := runRepl(t, "total := 10\ntotal + 5\n")
	if strings.Contains(out, "JV001") {
		t.Fatalf("earlier REPL global should be known:\n%s", out)
	}
	if !strings.Contains(out, "15") {
		t.Fatalf("out:\n%s", out)
	}
}

func TestReplQuitCommand(t *testing.T) {
	out := runRepl(t, ":q\n99\n")
	if strings.Contains(out, "99") {
		t.Fatalf(":q did not stop the loop:\n%s", out)
	}
}

func TestReplHelp(t *testing.T) {
	out := runRepl(t, ":help\n")
	if !strings.Contains(out, "declaration") {
		t.Fatalf("help missing:\n%s", out)
	}
}

func TestBalanced(t *testing.T) {
	cases := map[string]bool{
		"f(x)":               true,
		"def f(x) {":         false,
		"def f(x) {\n}":      true,
		`"unclosed ( quote"`: true, // paren inside string ignored
		"'cset ) '":          true,
		"# comment ( only":   true,
		"[1, 2":              false,
		"{ [ ( ) ] }":        true,
	}
	for src, want := range cases {
		if got := balanced(src); got != want {
			t.Errorf("balanced(%q) = %v, want %v", src, got, want)
		}
	}
}
