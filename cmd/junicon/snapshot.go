package main

import (
	"fmt"
	"io"
	"os"

	"junicon"
	"junicon/internal/checkpoint"
	"junicon/internal/core"
	"junicon/internal/value"
)

// Durable-generator surfaces of the CLI and REPL: -snapshot / -resume and
// :snap / :resume capture a suspended compiled generator into a versioned
// snapshot file and resume it later — in another invocation, another
// session, or another machine (the same blob rides the remote protocol's
// RESUME frames).

// snapshotExpr evaluates expr on in (compiled execution forced on),
// prints up to max results, then snapshots the generator's remaining
// state — mid-iteration, exactly where printing stopped — to file.
// program is the declaration source the snapshot must carry so resumption
// can rebuild the procedure table.
func snapshotExpr(in *junicon.Interp, program, expr, file string, max int, out io.Writer) error {
	if !in.VMEnabled() {
		in.SetVM(true)
	}
	g, err := in.EvalGen(expr)
	if err != nil {
		return err
	}
	produced := 0
	if err := core.Protect(func() {
		for max <= 0 || produced < max {
			v, ok := g.Next()
			if !ok {
				return
			}
			fmt.Fprintln(out, junicon.Image(value.Deref(v)))
			produced++
		}
	}); err != nil {
		return err
	}
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{
		Program:  program,
		Expr:     expr,
		Produced: uint64(produced),
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(file, blob, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "-- snapshot: %d values delivered, %d bytes to %s\n", produced, len(blob), file)
	return nil
}

// resumeSnapshot restores the snapshot in file into a fresh session built
// from the snapshot's own program text and prints up to max further
// results. The value counter continues from where the snapshot left off.
func resumeSnapshot(file string, max int, out io.Writer) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	in := junicon.NewInterp(out, junicon.WithVM())
	return resumeInto(in, data, max, out)
}

// resumeInto restores snapshot data into in (loading the snapshot's
// declarations first) and prints the continued sequence.
func resumeInto(in *junicon.Interp, data []byte, max int, out io.Writer) error {
	meta, err := checkpoint.Peek(data)
	if err != nil {
		return err
	}
	if meta.Program != "" {
		if err := in.LoadProgram(meta.Program); err != nil {
			return fmt.Errorf("snapshot program: %w", err)
		}
	}
	g, meta, err := in.RestoreSnapshot(data)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "-- resuming %q after %d values\n", meta.Expr, meta.Produced)
	printed := 0
	if err := core.Protect(func() {
		for max <= 0 || printed < max {
			v, ok := g.Next()
			if !ok {
				return
			}
			fmt.Fprintln(out, junicon.Image(value.Deref(v)))
			printed++
		}
	}); err != nil {
		return err
	}
	if printed == 0 {
		fmt.Fprintln(out, "-- fails")
	}
	return nil
}
