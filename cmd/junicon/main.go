// Command junicon is the interpretive harness of §6: it loads Junicon
// programs — plain .jn files or mixed-language files with scoped
// annotations — and either interprets them or emits their Go translation.
//
// Usage:
//
//	junicon [flags] [file]
//
//	junicon prog.jn                  load program, run main() if defined
//	junicon -x 'expr' prog.jn        load program, evaluate expression
//	junicon -e '(1 to 3) * 2'        evaluate a standalone expression
//	junicon -emit -pkg gen prog.jn   emit the Go translation to stdout
//	junicon -vet prog.jn …           static checks only; exit 1 on errors
//	junicon -vet -Werror prog.jn     … treating warnings as errors
//	junicon -vet -facts prog.jn      … also dump interprocedural facts
//	junicon -O prog.jn               run with facts-driven optimization
//	junicon -vm prog.jn              run with compiled execution (bytecode vm)
//	junicon -dis prog.jn             print bytecode listings (also -dis -e 'expr')
//	junicon -emit -O -pkg gen p.jn   emit optimized Go translation
//	junicon -xml 'expr'              print the parsed XML term form
//	junicon -trace=run.json prog.jn  write a telemetry trace of the run
//	junicon -metrics -e 'expr'       print runtime metrics after the run
//	junicon -profile=vm.pb.gz p.jn   write a pprof VM profile (implies -vm)
//	junicon -snapshot s -n 3 -e 'e'  print 3 results, checkpoint the rest to s
//	junicon -resume s                restore the snapshot and keep iterating
//
// -trace records kernel/pipe/queue telemetry events and writes them when
// the program ends: Chrome trace_event JSON (chrome://tracing, Perfetto)
// if the file name ends in .json, JSONL otherwise. -itrace is the
// Icon-style procedure tracing (&trace) formerly spelled -trace.
//
// Mixed-language files (any file containing @<script …> annotations) are
// fed through the metaparser first; every junicon region is loaded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"junicon"
	"junicon/internal/ast"
	"junicon/internal/parser"
	"junicon/internal/telemetry"
	"junicon/internal/vm"
)

func main() {
	var (
		expr      = flag.String("e", "", "evaluate a standalone expression and print its results")
		exec      = flag.String("x", "", "expression to evaluate after loading the file")
		emit      = flag.Bool("emit", false, "emit the Go translation instead of interpreting")
		pkg       = flag.String("pkg", "translated", "package name for -emit")
		xml       = flag.String("xml", "", "parse an expression and print its XML term form")
		maxRes    = flag.Int("n", 0, "maximum results to print per expression (0 = all)")
		itrace    = flag.Bool("itrace", false, "enable Icon-style procedure tracing (&trace)")
		traceFile = flag.String("trace", "", "write telemetry trace events to this file (.json = Chrome trace format, else JSONL)")
		metrics   = flag.Bool("metrics", false, "print runtime metrics to stderr when the program ends")
		vet       = flag.Bool("vet", false, "run static checks only; report diagnostics without executing")
		werror    = flag.Bool("Werror", false, "with -vet, treat warnings as errors")
		facts     = flag.Bool("facts", false, "with -vet, dump the interprocedural generator facts per file")
		optimize  = flag.Bool("O", false, "enable facts-driven optimization (fusion, pipe inlining, buffer sizing)")
		useVM     = flag.Bool("vm", false, "enable compiled execution (bytecode vm with slot-based resumable frames)")
		dis       = flag.Bool("dis", false, "disassemble instead of running: print bytecode listings for a file (or -e expression)")
		profile   = flag.String("profile", "", "write a pprof-format VM execution profile to this file when the program ends (implies -vm)")
		snapshot  = flag.String("snapshot", "", "with -e/-x: print -n results, then checkpoint the suspended generator to this file (implies -vm)")
		resume    = flag.String("resume", "", "restore a generator from this snapshot file and continue printing its sequence")
	)
	flag.Parse()

	if *traceFile != "" {
		telemetry.StartTrace(telemetry.DefaultRingSize)
	}
	if *metrics {
		telemetry.SetMetrics(true)
	}
	if *profile != "" {
		*useVM = true
		vm.EnableProfiling()
	}
	flush = func() { flushTelemetry(*traceFile, *metrics, *profile) }
	defer flush()

	if *vet {
		if flag.NArg() < 1 {
			fmt.Fprintln(os.Stderr, "junicon: -vet requires at least one file")
			os.Exit(2)
		}
		failed := false
		for _, path := range flag.Args() {
			if !vetFile(path, *werror, *facts) {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	if *xml != "" {
		n, err := parser.ParseExpression(*xml)
		fail(err)
		fmt.Print(ast.ToXML(n))
		return
	}

	var iopts []junicon.InterpOption
	if *optimize {
		iopts = append(iopts, junicon.WithOptimize())
	}
	if *useVM || *dis {
		iopts = append(iopts, junicon.WithVM())
	}
	in := junicon.NewInterp(os.Stdout, iopts...)
	if *itrace {
		in.EnableTrace(os.Stderr)
	}

	if *dis {
		switch {
		case *expr != "":
			fail(in.DisassembleExpr(*expr, os.Stdout))
		case flag.NArg() >= 1:
			srcBytes, err := os.ReadFile(flag.Arg(0))
			fail(err)
			fail(in.DisassembleProgram(string(srcBytes), os.Stdout))
		default:
			fmt.Fprintln(os.Stderr, "junicon: -dis requires a file or -e expression")
			os.Exit(2)
		}
		return
	}

	if *resume != "" {
		fail(resumeSnapshot(*resume, *maxRes, os.Stdout))
		return
	}

	if *expr != "" && flag.NArg() == 0 {
		if *snapshot != "" {
			fail(snapshotExpr(in, "", *expr, *snapshot, *maxRes, os.Stdout))
			return
		}
		evalPrint(in, *expr, *maxRes)
		return
	}

	if flag.NArg() < 1 {
		// No file, no -e: interactive mode (the paper's interactive
		// extension; §6).
		runREPL(in)
		return
	}
	path := flag.Arg(0)
	srcBytes, err := os.ReadFile(path)
	fail(err)
	src := string(srcBytes)
	mixed := strings.Contains(src, "@<")

	if *emit {
		var out string
		topts := junicon.TranslateOptions{Package: *pkg, Optimize: *optimize}
		if mixed {
			out, err = junicon.TranslateMixed(src, topts)
		} else {
			out, err = junicon.Translate(src, topts)
		}
		fail(err)
		fmt.Print(out)
		return
	}

	if mixed {
		fail(junicon.LoadMixed(in, src))
	} else {
		fail(in.LoadProgram(src))
	}

	switch {
	case *exec != "":
		if *snapshot != "" {
			fail(snapshotExpr(in, src, *exec, *snapshot, *maxRes, os.Stdout))
			return
		}
		evalPrint(in, *exec, *maxRes)
	case *expr != "":
		if *snapshot != "" {
			fail(snapshotExpr(in, src, *expr, *snapshot, *maxRes, os.Stdout))
			return
		}
		evalPrint(in, *expr, *maxRes)
	default:
		// Run main() if the program defines one.
		if _, ok := in.Global("main"); ok {
			_, _, err := in.EvalFirst("main()")
			fail(err)
		}
	}
}

// vetFile runs the static analyzer over one file (plain or mixed) and
// prints its diagnostics. With facts set it also dumps the interprocedural
// fact table to stdout. It returns false when the file should fail the
// check: parse failure, an error-severity diagnostic, or — under -Werror —
// any diagnostic at all.
func vetFile(path string, werror, facts bool) bool {
	srcBytes, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "junicon:", err)
		return false
	}
	src := string(srcBytes)
	var diags []junicon.Diag
	if strings.Contains(src, "@<") {
		diags, err = junicon.VetMixed(src, nil)
	} else if facts {
		var table *junicon.Facts
		diags, table, err = junicon.VetFacts(src, nil)
		if err == nil {
			fmt.Printf("# %s\n", path)
			table.Fdump(os.Stdout)
		}
	} else {
		diags, err = junicon.Vet(src, nil)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return false
	}
	junicon.FprintDiags(os.Stderr, path, diags)
	if werror {
		return len(diags) == 0
	}
	return !junicon.HasVetErrors(diags)
}

func evalPrint(in *junicon.Interp, expr string, max int) {
	vs, err := in.Eval(expr, max)
	fail(err)
	for _, v := range vs {
		fmt.Println(junicon.Image(v))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "junicon:", err)
		flush()
		os.Exit(1)
	}
}

// flush writes pending telemetry output; fail() routes through it so
// -trace/-metrics survive error exits. A no-op until main installs it.
var flush = func() {}

// flushTelemetry writes the buffered trace to traceFile (Chrome format
// for .json, JSONL otherwise), with metrics on a metrics snapshot to
// stderr, and with -profile the accumulated VM profile in pprof format.
func flushTelemetry(traceFile string, metrics bool, profile string) {
	if traceFile != "" {
		evs := telemetry.Tag("junicon", telemetry.DrainTrace())
		f, err := os.Create(traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "junicon: trace:", err)
		} else {
			if strings.HasSuffix(traceFile, ".json") {
				err = telemetry.WriteChromeTrace(f, evs)
			} else {
				err = telemetry.WriteJSONL(f, evs)
			}
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "junicon: trace:", err)
			}
		}
	}
	if metrics {
		b, err := json.MarshalIndent(telemetry.Snapshot(), "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "junicon: metrics:", err)
			return
		}
		fmt.Fprintf(os.Stderr, "%s\n", b)
	}
	if profile != "" {
		f, err := os.Create(profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "junicon: profile:", err)
			return
		}
		err = vm.WritePprof(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "junicon: profile:", err)
		}
	}
}
