// Command junicon is the interpretive harness of §6: it loads Junicon
// programs — plain .jn files or mixed-language files with scoped
// annotations — and either interprets them or emits their Go translation.
//
// Usage:
//
//	junicon [flags] [file]
//
//	junicon prog.jn                  load program, run main() if defined
//	junicon -x 'expr' prog.jn        load program, evaluate expression
//	junicon -e '(1 to 3) * 2'        evaluate a standalone expression
//	junicon -emit -pkg gen prog.jn   emit the Go translation to stdout
//	junicon -xml 'expr'              print the parsed XML term form
//
// Mixed-language files (any file containing @<script …> annotations) are
// fed through the metaparser first; every junicon region is loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"junicon"
	"junicon/internal/ast"
	"junicon/internal/parser"
)

func main() {
	var (
		expr   = flag.String("e", "", "evaluate a standalone expression and print its results")
		exec   = flag.String("x", "", "expression to evaluate after loading the file")
		emit   = flag.Bool("emit", false, "emit the Go translation instead of interpreting")
		pkg    = flag.String("pkg", "translated", "package name for -emit")
		xml    = flag.String("xml", "", "parse an expression and print its XML term form")
		maxRes = flag.Int("n", 0, "maximum results to print per expression (0 = all)")
		trace  = flag.Bool("trace", false, "enable Icon-style procedure tracing (&trace)")
	)
	flag.Parse()

	if *xml != "" {
		n, err := parser.ParseExpression(*xml)
		fail(err)
		fmt.Print(ast.ToXML(n))
		return
	}

	in := junicon.NewInterp(os.Stdout)
	if *trace {
		in.EnableTrace(os.Stderr)
	}

	if *expr != "" && flag.NArg() == 0 {
		evalPrint(in, *expr, *maxRes)
		return
	}

	if flag.NArg() < 1 {
		// No file, no -e: interactive mode (the paper's interactive
		// extension; §6).
		runREPL(in)
		return
	}
	path := flag.Arg(0)
	srcBytes, err := os.ReadFile(path)
	fail(err)
	src := string(srcBytes)
	mixed := strings.Contains(src, "@<")

	if *emit {
		var out string
		if mixed {
			out, err = junicon.TranslateMixed(src, junicon.TranslateOptions{Package: *pkg})
		} else {
			out, err = junicon.Translate(src, junicon.TranslateOptions{Package: *pkg})
		}
		fail(err)
		fmt.Print(out)
		return
	}

	if mixed {
		fail(junicon.LoadMixed(in, src))
	} else {
		fail(in.LoadProgram(src))
	}

	switch {
	case *exec != "":
		evalPrint(in, *exec, *maxRes)
	case *expr != "":
		evalPrint(in, *expr, *maxRes)
	default:
		// Run main() if the program defines one.
		if _, ok := in.Global("main"); ok {
			_, _, err := in.EvalFirst("main()")
			fail(err)
		}
	}
}

func evalPrint(in *junicon.Interp, expr string, max int) {
	vs, err := in.Eval(expr, max)
	fail(err)
	for _, v := range vs {
		fmt.Println(junicon.Image(v))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "junicon:", err)
		os.Exit(1)
	}
}
