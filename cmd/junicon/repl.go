package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"junicon"
	"junicon/internal/inspect"
	"junicon/internal/vm"
)

// repl is the interactive mode of the harness — the paper's Junicon
// "realizes both an interactive extension ... as well as a translator"
// (§1). Declarations (def/procedure/record/global/class) are loaded;
// anything else evaluates as an expression and prints its result sequence
// (capped, since expressions may be infinite generators).
//
// Multi-line input is detected by unbalanced grouping delimiters — the
// same trick the metaparser uses to recognize complete statements.
func repl(in *junicon.Interp, input io.Reader, out io.Writer, prompt bool) {
	const maxResults = 100
	scanner := bufio.NewScanner(input)
	scanner.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var pending, history strings.Builder
	if prompt {
		fmt.Fprintln(out, "junicon — concurrent generators (:quit to exit, :help for help)")
	}
	for {
		if prompt {
			if pending.Len() == 0 {
				fmt.Fprint(out, "]=> ")
			} else {
				fmt.Fprint(out, "... ")
			}
		}
		if !scanner.Scan() {
			return
		}
		line := scanner.Text()
		if pending.Len() == 0 {
			switch strings.TrimSpace(line) {
			case "":
				continue
			case ":quit", ":q":
				return
			case ":help":
				fmt.Fprintln(out, "enter an expression to evaluate it (first", maxResults, "results shown),")
				fmt.Fprintln(out, "or a declaration (def/procedure/record/global/class) to load it.")
				fmt.Fprintln(out, ":facts dumps the interprocedural generator facts of loaded declarations.")
				fmt.Fprintln(out, ":vm toggles compiled execution (bytecode vm; loaded procedures recompile).")
				fmt.Fprintln(out, ":dis <expr> prints an expression's bytecode listing.")
				fmt.Fprintln(out, ":streams shows the live stream topology (pipes, pools, remotes; enables inspection).")
				fmt.Fprintln(out, ":prof shows the VM execution profile (enables profiling; run :vm code first).")
				fmt.Fprintln(out, ":snap <file> <expr> prints", maxResults, "results, then checkpoints the suspended generator.")
				fmt.Fprintln(out, ":resume <file> restores a checkpointed generator and continues its sequence.")
				continue
			case ":facts":
				printFacts(in, history.String(), out)
				continue
			case ":vm":
				in.SetVM(!in.VMEnabled())
				if in.VMEnabled() {
					fmt.Fprintln(out, "-- compiled execution on")
				} else {
					fmt.Fprintln(out, "-- compiled execution off (tree walk)")
				}
				continue
			case ":streams":
				printStreams(out)
				continue
			case ":prof":
				printProf(in, out)
				continue
			}
			if t := strings.TrimSpace(line); t == ":dis" || strings.HasPrefix(t, ":dis ") {
				rest := strings.TrimSpace(strings.TrimPrefix(t, ":dis"))
				if rest == "" {
					fmt.Fprintln(out, "usage: :dis <expr>")
				} else if err := in.DisassembleExpr(rest, out); err != nil {
					fmt.Fprintln(out, "not compiled:", err)
				}
				continue
			}
			if t := strings.TrimSpace(line); t == ":snap" || strings.HasPrefix(t, ":snap ") {
				fields := strings.Fields(strings.TrimPrefix(t, ":snap"))
				if len(fields) < 2 {
					fmt.Fprintln(out, "usage: :snap <file> <expr>")
				} else if err := snapshotExpr(in, history.String(), strings.Join(fields[1:], " "),
					fields[0], maxResults, out); err != nil {
					fmt.Fprintln(out, "error:", err)
				}
				continue
			}
			if t := strings.TrimSpace(line); t == ":resume" || strings.HasPrefix(t, ":resume ") {
				file := strings.TrimSpace(strings.TrimPrefix(t, ":resume"))
				if file == "" {
					fmt.Fprintln(out, "usage: :resume <file>")
				} else if data, err := os.ReadFile(file); err != nil {
					fmt.Fprintln(out, "error:", err)
				} else if err := resumeInto(in, data, maxResults, out); err != nil {
					// Restoring loads the snapshot's declarations into THIS
					// session, so cross-session :snap → :resume just works.
					fmt.Fprintln(out, "error:", err)
				}
				continue
			}
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		src := pending.String()
		if !balanced(src) {
			continue // keep reading: grouping delimiters still open
		}
		pending.Reset()
		evalLine(in, src, out, maxResults, &history)
	}
}

// printStreams renders the live stream topology. The first call enables
// inspection, so streams started afterwards register; a session that has
// not run any transported generators yet shows an empty table.
func printStreams(out io.Writer) {
	if !inspect.On() {
		inspect.Enable()
		fmt.Fprintln(out, "-- inspection enabled; streams started from now on are tracked")
	}
	rows := inspect.Snapshot()
	if len(rows) == 0 {
		fmt.Fprintln(out, "-- no streams")
		return
	}
	fmt.Fprintf(out, "%-18s %-14s %-12s %10s %10s %6s  %s\n",
		"STREAM", "KIND", "STATE", "PRODUCED", "CONSUMED", "DEPTH", "LABEL")
	for _, r := range rows {
		id := r.ID
		if !r.Live {
			id = "(" + id + ")"
		}
		label := r.Label
		if r.ConsumesFrom != "" {
			label += "  <- " + r.ConsumesFrom
		}
		if r.Diagnosis != "" {
			label += "  [" + r.Diagnosis + "]"
		}
		fmt.Fprintf(out, "%-18s %-14s %-12s %10d %10d %6d  %s\n",
			id, r.Kind, r.State, r.Produced, r.Consumed, r.Depth, label)
	}
	for _, d := range inspect.Diagnoses() {
		fmt.Fprintf(out, "!! %s %s: %s (idle %dms)\n", d.Kind, d.Stream, d.Cause, d.IdleNs/1e6)
	}
}

// printProf renders the VM execution profile. The first call enables
// profiling (and compiled execution, which the profiler measures).
func printProf(in *junicon.Interp, out io.Writer) {
	if !vm.ProfilingOn() {
		vm.EnableProfiling()
		if !in.VMEnabled() {
			in.SetVM(true)
			fmt.Fprintln(out, "-- profiling and compiled execution enabled; expressions run from now on are profiled")
		} else {
			fmt.Fprintln(out, "-- profiling enabled; expressions run from now on are profiled")
		}
		return
	}
	vm.WriteText(out)
}

// printFacts recomputes and dumps the interprocedural fact table over
// every declaration this session has loaded — effect summaries, yield
// bounds, restartability — the analysis the -O evaluator acts on.
func printFacts(in *junicon.Interp, loaded string, out io.Writer) {
	if strings.TrimSpace(loaded) == "" {
		fmt.Fprintln(out, "-- no declarations loaded")
		return
	}
	known := func(name string) bool {
		_, ok := in.Global(name)
		return ok
	}
	_, facts, err := junicon.VetFacts(loaded, known)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	facts.Fdump(out)
}

// evalLine loads declarations or evaluates an expression, printing
// analyzer diagnostics first. Diagnostics never block the REPL — even an
// error-severity finding still evaluates, so the user sees the runtime
// behaviour it predicts.
func evalLine(in *junicon.Interp, src string, out io.Writer, maxResults int, history *strings.Builder) {
	trimmed := strings.TrimSpace(src)
	first := strings.SplitN(trimmed, " ", 2)[0]
	switch first {
	case "def", "procedure", "method", "record", "global", "class", "local", "var", "static":
		warn(in, trimmed, out, false)
		if err := in.LoadProgram(trimmed); err != nil {
			fmt.Fprintln(out, "error:", err)
		} else if history != nil {
			history.WriteString(trimmed)
			history.WriteString("\n")
		}
		return
	}
	warn(in, trimmed, out, true)
	vs, err := in.Eval(trimmed, maxResults)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if len(vs) == 0 {
		fmt.Fprintln(out, "-- fails")
		return
	}
	for _, v := range vs {
		fmt.Fprintln(out, junicon.Image(v))
	}
	if len(vs) == maxResults {
		fmt.Fprintf(out, "-- (stopped after %d results)\n", maxResults)
	}
}

// warn prints analyzer diagnostics for one REPL input. Names already
// defined in the interpreter (previous definitions, host bindings) are
// known, so cross-line references do not warn. Parse failures are silent
// here — evaluation reports them properly.
func warn(in *junicon.Interp, src string, out io.Writer, isExpr bool) {
	known := func(name string) bool {
		_, ok := in.Global(name)
		return ok
	}
	var diags []junicon.Diag
	var err error
	if isExpr {
		diags, err = junicon.VetExpr(src, known)
	} else {
		diags, err = junicon.Vet(src, known)
	}
	if err != nil {
		return
	}
	for _, d := range diags {
		fmt.Fprintln(out, "vet:", d)
	}
}

// balanced reports whether grouping delimiters in src are closed, skipping
// string/cset literals and comments.
func balanced(src string) bool {
	depth := 0
	inStr := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		if inStr != 0 {
			if c == '\\' {
				i++
			} else if c == inStr || c == '\n' {
				inStr = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inStr = c
		case '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		}
	}
	return depth <= 0
}

// runREPL wires the REPL to stdin, prompting only when interactive-looking.
func runREPL(in *junicon.Interp) {
	stat, err := os.Stdin.Stat()
	prompt := err == nil && (stat.Mode()&os.ModeCharDevice) != 0
	repl(in, os.Stdin, os.Stdout, prompt)
}
