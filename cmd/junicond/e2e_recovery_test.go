package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"junicon/internal/remote"
	"junicon/internal/value"
	"junicon/internal/wordcount"
)

// Crash-recovery end to end, across real process boundaries: a junicond
// worker is SIGKILLed mid-stream and restarted on the same address with
// the same -checkpoint-dir, and the client — opened with Config.Recover —
// redials through the crash and delivers the exact sequence a never-killed
// worker would have. One test pins the snapshot path (a source-compiled
// generator the daemon can checkpoint and RESUME), the other the replay
// path (the registered word-count generator refuses snapshots, so recovery
// re-runs it and skips what was already delivered). Both then read the
// restarted daemon's debug endpoints: /debug/streams must show the
// recovered handle as resumed, and /debug/vars must count the restore.

// freeAddr reserves an ephemeral port and releases it, returning an
// address a daemon can be started — and later restarted — on.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserve port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// fetchJSON GETs url and decodes the body into out, returning an error
// rather than failing so callers can poll.
func fetchJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, out)
}

// debugStreams polls /debug/streams on dbgAddr until pred accepts a row
// or the deadline passes, returning the matching row.
func debugStreams(t *testing.T, dbgAddr string, pred func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var payload struct {
			Streams []map[string]any `json:"streams"`
		}
		err := fetchJSON("http://"+dbgAddr+"/debug/streams", &payload)
		if err == nil {
			for _, r := range payload.Streams {
				if pred(r) {
					return r
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no matching stream on %s (last err %v, %d rows)",
				dbgAddr, err, len(payload.Streams))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// checkpointRestores reads the checkpoint.restores counter from
// /debug/vars on dbgAddr (the telemetry registry rides expvar under the
// "junicon" key).
func checkpointRestores(t *testing.T, dbgAddr string) float64 {
	t.Helper()
	var vars struct {
		Junicon map[string]any `json:"junicon"`
	}
	if err := fetchJSON("http://"+dbgAddr+"/debug/vars", &vars); err != nil {
		t.Fatalf("fetch /debug/vars: %v", err)
	}
	n, _ := vars.Junicon["checkpoint.restores"].(float64)
	return n
}

// TestE2ECrashRecoverySourceStream kills a daemon serving a checkpointed
// source stream and restarts it on the same address: the client resumes
// from its last acked snapshot and the full sequence arrives exactly once.
func TestE2ECrashRecoverySourceStream(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	ckptDir := t.TempDir()
	servAddr, dbgAddr := freeAddr(t), freeAddr(t)
	args := []string{"-allow-source", "-checkpoint-dir", ckptDir, "-debug-addr", dbgAddr}
	d := launchDaemon(t, servAddr, args...)

	const n = 200
	cfg := remote.Config{
		Buffer:          4,
		Recover:         true,
		CheckpointEvery: 5,
		RecoverWait:     30 * time.Second,
	}
	p := remote.OpenSource(d.addr, "def gen(a, b) { suspend a to b; }",
		fmt.Sprintf("gen(1, %d)", n), nil, cfg)
	defer p.Stop()

	next := func() (int64, bool) {
		v, ok := p.Next()
		if !ok {
			return 0, false
		}
		i, _ := value.ToInteger(value.Deref(v))
		x, _ := i.Int64()
		return x, true
	}

	// Drain past the first checkpoint cadence, then keep pulling until a
	// snapshot has actually been acked — the kill must land with durable
	// state on the client side, or recovery would be replay, not RESUME.
	var got []int64
	for len(got) < 60 {
		x, ok := next()
		if !ok {
			t.Fatalf("stream ended early after %d values: %v", len(got), p.Err())
		}
		got = append(got, x)
	}
	for {
		if _, ok := p.Checkpointed(); ok {
			break
		}
		if len(got) >= n {
			t.Fatalf("no checkpoint acked after draining all %d values", n)
		}
		x, ok := next()
		if !ok {
			t.Fatalf("stream ended early after %d values: %v", len(got), p.Err())
		}
		got = append(got, x)
	}
	if refusal := p.SnapshotRefusal(); refusal != "" {
		t.Fatalf("source stream refused snapshot: %s", refusal)
	}

	// The daemon persisted the stream's checkpoint before dying.
	if snaps, _ := filepath.Glob(filepath.Join(ckptDir, "*.snap")); len(snaps) == 0 {
		t.Fatalf("no checkpoint persisted in %s before the crash", ckptDir)
	}

	d.kill()
	launchDaemon(t, servAddr, args...) // same address, same checkpoint dir

	for {
		x, ok := next()
		if !ok {
			break
		}
		got = append(got, x)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("stream did not recover: %v", err)
	}
	if len(got) != n {
		t.Fatalf("recovered stream delivered %d values, want %d", len(got), n)
	}
	for i, x := range got {
		if x != int64(i+1) {
			t.Fatalf("value %d: got %d, want %d (loss or duplication across the crash)", i, x, i+1)
		}
	}

	// The restarted daemon must show the recovery: a resumed handle in the
	// stream topology and a non-zero restore counter.
	row := debugStreams(t, dbgAddr, func(r map[string]any) bool {
		resumed, _ := r["resumed"].(bool)
		return resumed
	})
	if kind, _ := row["kind"].(string); kind == "" {
		t.Fatalf("resumed stream row has no kind: %v", row)
	}
	if restores := checkpointRestores(t, dbgAddr); restores < 1 {
		t.Fatalf("checkpoint.restores = %v on restarted daemon, want >= 1", restores)
	}
}

// TestE2ECrashRecoveryWordCount SIGKILLs a word-count worker mid-stream
// and restarts it with the same -checkpoint-dir: the registered generator
// refuses snapshots, so the client recovers by replay, and the distributed
// total still equals the sequential reference.
func TestE2ECrashRecoveryWordCount(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	ckptDir := t.TempDir()
	servAddr, dbgAddr := freeAddr(t), freeAddr(t)
	args := []string{"-checkpoint-dir", ckptDir, "-debug-addr", dbgAddr}
	d := launchDaemon(t, servAddr, args...)

	lines := wordcount.GenerateLines(600, 8, 7)
	want := wordcount.SequentialTotal(lines, wordcount.Heavy)

	type result struct {
		total float64
		err   error
	}
	resc := make(chan result, 1)
	go func() {
		total, err := wordcount.DistributedMapReduce(lines, wordcount.Heavy, wordcount.DistributedConfig{
			Workers:   []string{d.addr},
			ChunkSize: 4, // 150 chunk partials — the stream outlives the kill below
			Remote: remote.Config{
				Buffer:      1, // one credit in flight: every partial is a roundtrip
				Recover:     true,
				RecoverWait: 30 * time.Second,
			},
		})
		resc <- result{total, err}
	}()

	// Kill once the worker has shipped a handful of partials — observed
	// through its own /debug/streams — so the crash lands mid-stream with
	// most of the 150 chunks still undelivered.
	debugStreams(t, dbgAddr, func(r map[string]any) bool {
		label, _ := r["label"].(string)
		produced, _ := r["produced"].(float64)
		return strings.Contains(label, wordcount.MapReduceGenerator) && produced >= 5
	})
	d.kill()
	launchDaemon(t, servAddr, args...)

	select {
	case res := <-resc:
		if res.err != nil {
			t.Fatalf("distributed word count did not recover: %v", res.err)
		}
		if math.Abs(res.total-want) > 1e-6*math.Abs(want) {
			t.Fatalf("recovered total %v, sequential reference %v", res.total, want)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("distributed word count stalled after the crash")
	}

	// Replay recovery counts under the same restore counter as snapshot
	// resumption, and the restarted daemon's topology marks the handle.
	debugStreams(t, dbgAddr, func(r map[string]any) bool {
		label, _ := r["label"].(string)
		resumed, _ := r["resumed"].(bool)
		return resumed && strings.Contains(label, wordcount.MapReduceGenerator)
	})
	if restores := checkpointRestores(t, dbgAddr); restores < 1 {
		t.Fatalf("checkpoint.restores = %v on restarted daemon, want >= 1", restores)
	}
}
