package main

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"junicon/internal/remote"
	"junicon/internal/value"
)

// End-to-end batching interop across real processes: one junicond serving
// the batched protocol, one started with -no-batch, and one client process
// (this test) streaming the same generator from both. The daemons are the
// shipped binary, not in-process servers, so the flag plumbing, the OPEN
// negotiation and the frame traffic all cross genuine process boundaries.

var (
	buildOnce sync.Once
	daemonBin string
	buildErr  error
)

// buildDaemon compiles junicond once per test run into a shared temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "junicond-e2e")
		if err != nil {
			buildErr = err
			return
		}
		daemonBin = filepath.Join(dir, "junicond")
		out, err := exec.Command("go", "build", "-o", daemonBin, "junicon/cmd/junicond").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("build junicond: %v", buildErr)
	}
	return daemonBin
}

// startDaemon launches junicond on an ephemeral port and parses the bound
// address from its "listening" log line.
func startDaemon(t *testing.T, extraArgs ...string) string {
	t.Helper()
	return launchDaemon(t, "127.0.0.1:0", extraArgs...).addr
}

// daemonProc is a junicond child process the test can SIGKILL mid-stream
// — the crash-recovery tests need the handle, not just the address.
type daemonProc struct {
	addr     string
	cmd      *exec.Cmd
	waitOnce sync.Once
}

// wait reaps the process exactly once; both kill and the cleanup funnel
// through it so Wait is never called twice.
func (d *daemonProc) wait() {
	d.waitOnce.Do(func() { d.cmd.Wait() })
}

// kill delivers SIGKILL — the unclean death the checkpoint layer exists
// for — and reaps the process.
func (d *daemonProc) kill() {
	d.cmd.Process.Kill()
	d.wait()
}

// launchDaemon starts junicond on listen (a fixed address, or
// "127.0.0.1:0" for an ephemeral port) and parses the bound address from
// its "listening" log line. The returned handle lets a test kill the
// process and restart a replacement on the same address.
func launchDaemon(t *testing.T, listen string, extraArgs ...string) *daemonProc {
	t.Helper()
	bin := buildDaemon(t)
	args := append([]string{"-addr", listen}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start junicond: %v", err)
	}
	d := &daemonProc{cmd: cmd}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { d.wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	// The daemon logs `msg=listening addr=127.0.0.1:PORT ...` once bound.
	// Keep draining stderr afterwards so a chatty daemon never blocks on a
	// full pipe.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "msg=listening") {
				continue
			}
			for _, tok := range strings.Fields(line) {
				if a, ok := strings.CutPrefix(tok, "addr="); ok {
					select {
					case addrc <- a:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrc:
		d.addr = addr
		return d
	case <-time.After(10 * time.Second):
		t.Fatal("junicond did not report a listening address")
		return nil
	}
}

func drainRange(t *testing.T, addr string, cfg remote.Config, n int64) []int64 {
	t.Helper()
	p := remote.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(n)}, cfg)
	defer p.Stop()
	var got []int64
	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("drain from %s stalled after %d values", addr, len(got))
		}
		v, ok := p.Next()
		if !ok {
			break
		}
		i, _ := value.ToInteger(value.Deref(v))
		x, _ := i.Int64()
		got = append(got, x)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("stream from %s errored: %v", addr, err)
	}
	return got
}

func TestE2ETwoDaemonsBatchingInterop(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	batching := startDaemon(t, "-quiet=false")
	legacy := startDaemon(t, "-no-batch")

	const n = 500
	cfg := remote.Config{Buffer: 64} // batching on by default
	fromBatching := drainRange(t, batching, cfg, n)
	fromLegacy := drainRange(t, legacy, cfg, n) // forces downgrade redial

	if len(fromBatching) != n || len(fromLegacy) != n {
		t.Fatalf("value counts differ: batching=%d legacy=%d want %d",
			len(fromBatching), len(fromLegacy), n)
	}
	for i := 0; i < n; i++ {
		if fromBatching[i] != int64(i+1) || fromLegacy[i] != int64(i+1) {
			t.Fatalf("value %d: batching=%d legacy=%d want %d",
				i, fromBatching[i], fromLegacy[i], i+1)
		}
	}

	// A client that itself refuses batching speaks v2 to both daemons.
	cfg.Batch = -1
	if got := drainRange(t, batching, cfg, 100); len(got) != 100 {
		t.Fatalf("v2 client against batching daemon: %d values, want 100", len(got))
	}
	if got := drainRange(t, legacy, cfg, 100); len(got) != 100 {
		t.Fatalf("v2 client against legacy daemon: %d values, want 100", len(got))
	}
}
