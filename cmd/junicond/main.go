// Command junicond is the generator-serving daemon: it exposes registered
// generators — and, with -allow-source, vetted Junicon source — over the
// remote-pipe protocol of internal/remote. A junicond worker is the far
// end of a remote pipe: the paper's |>e with the bounded queue stretched
// across a TCP connection.
//
// Usage:
//
//	junicond [flags]
//
//	junicond -addr :9707                     serve built-in generators
//	junicond -addr :9707 -allow-source       also serve vetted Junicon source
//	junicond -addr :9707 -checkpoint-dir d   persist stream checkpoints in d
//	junicond -addr :9707 -max-conns 16       bound concurrent streams
//	junicond -addr :9707 -debug-addr :9708   expose /debug/vars, /debug/pprof,
//	                                         /debug/trace, /debug/streams on a
//	                                         second listener
//
// Built-in generators:
//
//	range         integers lo to hi (two integer arguments)
//	wc.mapreduce  distributed word-count partials (internal/wordcount)
//	wc.hash       per-word hash stream (internal/wordcount)
//
// The daemon logs one structured line (log/slog) per stream open/close and
// refusal, carrying the stream's telemetry ID so log lines correlate with
// trace events; -quiet silences it, -log-json switches to JSON. With
// -debug-addr set, telemetry metrics are enabled and served as expvar JSON
// at /debug/vars, pprof at /debug/pprof/, and buffered trace events as
// JSONL at /debug/trace; live-stream introspection is enabled too, served
// as a topology snapshot at /debug/streams, with a stall watchdog logging
// a structured diagnosis (cause, counters, labeled goroutine stacks) for
// any stream blocked past -stall-threshold. On SIGINT/SIGTERM it stops
// accepting, waits for in-flight streams, and exits.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/remote"
	"junicon/internal/telemetry"
	"junicon/internal/value"
	"junicon/internal/wordcount"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9707", "listen address")
		debugAddr   = flag.String("debug-addr", "", "serve /debug/vars, /debug/pprof and /debug/trace on this address (enables metrics)")
		allowSource = flag.Bool("allow-source", false, "serve vetted Junicon source streams")
		ckptDir     = flag.String("checkpoint-dir", "", "persist each stream's latest checkpoint snapshot in this directory")
		noBatch     = flag.Bool("no-batch", false, "refuse batched (v3) streams and serve one VALUE frame per value")
		noMux       = flag.Bool("no-mux", false, "refuse multiplexed (v5) sessions and serve one stream per connection")
		maxConns    = flag.Int("max-conns", remote.DefaultMaxConns, "maximum concurrent connections")
		idleTimeout = flag.Duration("idle-timeout", remote.DefaultIdleTimeout, "client silence tolerated before dropping a stream")
		quiet       = flag.Bool("quiet", false, "suppress per-stream logging")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON (default: text)")
		traceBuf    = flag.Int("trace-buf", telemetry.DefaultRingSize, "trace ring capacity (events) for /debug/trace")
		stallAfter  = flag.Duration("stall-threshold", 10*time.Second, "watchdog: diagnose streams blocked without activity this long (with -debug-addr)")
	)
	flag.Parse()

	logger := newLogger(*quiet, *logJSON)

	srv := remote.NewServer()
	srv.AllowSource = *allowSource
	srv.CheckpointDir = *ckptDir
	srv.MaxConns = *maxConns
	srv.IdleTimeout = *idleTimeout
	srv.Log = logger
	if *noBatch {
		// Cap OPEN negotiation at the pre-batching protocol; v3 clients
		// recognize the rejection and redial per-value.
		srv.MaxProtocol = 2
	}
	if *noMux && srv.MaxProtocol == 0 {
		// Cap negotiation below the session protocol; v5 Dialers recognize
		// the rejection and fall back to one connection per stream.
		srv.MaxProtocol = 4
	}

	srv.Register("range", func(args []value.V) (core.Gen, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("range: want [lo, hi], got %d args", len(args))
		}
		lo, ok1 := value.ToInteger(args[0])
		hi, ok2 := value.ToInteger(args[1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("range: integer arguments required")
		}
		l, lok := lo.Int64()
		h, hok := hi.Int64()
		if !lok || !hok {
			return nil, fmt.Errorf("range: arguments out of range")
		}
		return core.IntRange(l, h), nil
	})
	wordcount.RegisterWordCount(srv)

	if *debugAddr != "" {
		telemetry.SetMetrics(true)
		telemetry.StartTrace(*traceBuf)
		telemetry.PublishExpvar()
		// Live introspection rides on the same opt-in: every stream opened
		// from here on registers a handle, the watchdog diagnoses stalls,
		// and /debug/streams renders the topology.
		inspect.Enable()
		inspect.StartWatchdog(inspect.WatchdogConfig{
			Threshold: *stallAfter,
			Log:       logger,
			Stacks:    true,
		})
		mux := http.NewServeMux()
		mux.Handle("/debug/streams", inspect.Handler())
		mux.Handle("/", telemetry.Handler("junicond"))
		dbg := &http.Server{Addr: *debugAddr, Handler: mux}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug server failed", "addr", *debugAddr, "err", err)
			}
		}()
		logger.Info("debug server listening", "addr", *debugAddr)
	}

	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "junicond: %v\n", err)
		os.Exit(1)
	}
	logger.Info("listening",
		"addr", bound.String(),
		"generators", strings.Join(srv.Names(), ", "),
		"source_streams", *allowSource)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	<-sigc
	logger.Info("shutting down", "streams_served", srv.Served())
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		logger.Warn("streams still draining after 10s, exiting anyway")
	}
}

// newLogger builds the daemon's structured logger: text to stderr by
// default, JSON with -log-json, discarded with -quiet.
func newLogger(quiet, json bool) *slog.Logger {
	if quiet {
		return slog.New(slog.DiscardHandler)
	}
	if json {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}
