// Command junicond is the generator-serving daemon: it exposes registered
// generators — and, with -allow-source, vetted Junicon source — over the
// remote-pipe protocol of internal/remote. A junicond worker is the far
// end of a remote pipe: the paper's |>e with the bounded queue stretched
// across a TCP connection.
//
// Usage:
//
//	junicond [flags]
//
//	junicond -addr :9707                     serve built-in generators
//	junicond -addr :9707 -allow-source       also serve vetted Junicon source
//	junicond -addr :9707 -max-conns 16       bound concurrent streams
//
// Built-in generators:
//
//	range         integers lo to hi (two integer arguments)
//	wc.mapreduce  distributed word-count partials (internal/wordcount)
//	wc.hash       per-word hash stream (internal/wordcount)
//
// The daemon logs one line per stream open/close and refusal; -quiet
// silences it. On SIGINT/SIGTERM it stops accepting, waits for in-flight
// streams, and exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"junicon/internal/core"
	"junicon/internal/remote"
	"junicon/internal/value"
	"junicon/internal/wordcount"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9707", "listen address")
		allowSource = flag.Bool("allow-source", false, "serve vetted Junicon source streams")
		maxConns    = flag.Int("max-conns", remote.DefaultMaxConns, "maximum concurrent connections")
		idleTimeout = flag.Duration("idle-timeout", remote.DefaultIdleTimeout, "client silence tolerated before dropping a stream")
		quiet       = flag.Bool("quiet", false, "suppress per-stream logging")
	)
	flag.Parse()

	srv := remote.NewServer()
	srv.AllowSource = *allowSource
	srv.MaxConns = *maxConns
	srv.IdleTimeout = *idleTimeout
	if !*quiet {
		logger := log.New(os.Stderr, "junicond: ", log.LstdFlags)
		srv.Logf = logger.Printf
	}

	srv.Register("range", func(args []value.V) (core.Gen, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("range: want [lo, hi], got %d args", len(args))
		}
		lo, ok1 := value.ToInteger(args[0])
		hi, ok2 := value.ToInteger(args[1])
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("range: integer arguments required")
		}
		l, lok := lo.Int64()
		h, hok := hi.Int64()
		if !lok || !hok {
			return nil, fmt.Errorf("range: arguments out of range")
		}
		return core.IntRange(l, h), nil
	})
	wordcount.RegisterWordCount(srv)

	bound, err := srv.Start(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "junicond: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "junicond: listening on %s, serving %s (source streams %s)\n",
			bound, strings.Join(srv.Names(), ", "), enabled(*allowSource))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	<-sigc
	if !*quiet {
		fmt.Fprintf(os.Stderr, "junicond: shutting down (%d streams served)\n", srv.Served())
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fmt.Fprintln(os.Stderr, "junicond: streams still draining after 10s, exiting anyway")
	}
}

func enabled(b bool) string {
	if b {
		return "enabled"
	}
	return "disabled"
}
