// Command benchjson converts `go test -bench` text output into a JSON
// artifact, so benchmark numbers travel through CI as data rather than
// log text.
//
// Usage:
//
//	go test -bench 'Pipe|Queue' -benchmem . | benchjson -o BENCH_pipeline.json
//	benchjson -o BENCH_pipeline.json bench.txt
//
// The artifact is a single object: environment metadata plus one entry
// per benchmark with iterations, ns/op and (when -benchmem was used)
// B/op and allocs/op. -o defaults to stdout. With -require n, fewer than
// n parsed benchmarks is an error — catching a filter typo that would
// otherwise publish an empty artifact as success.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"junicon/internal/bench"
)

type artifact struct {
	Generated string                `json:"generated"`
	GoVersion string                `json:"go_version"`
	GOOS      string                `json:"goos"`
	GOARCH    string                `json:"goarch"`
	NumCPU    int                   `json:"num_cpu"`
	Results   []bench.GoBenchResult `json:"results"`
}

func main() {
	var (
		out     = flag.String("o", "", "output file (default: stdout)")
		require = flag.Int("require", 0, "fail unless at least this many benchmarks were parsed")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	results, err := bench.ParseGoBench(in)
	if err != nil {
		fatal(err)
	}
	if len(results) < *require {
		fatal(fmt.Errorf("parsed %d benchmarks, require %d", len(results), *require))
	}

	a := artifact{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Results:   results,
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(b); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
