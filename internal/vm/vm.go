package vm

import (
	"junicon/internal/ast"
	"junicon/internal/compile"
	"junicon/internal/core"
)

// CompileExpr lowers a normalized top-level expression and wraps it in a
// Machine; drive it with m.NewFrame(). A compile.Unsupported error means
// the caller should fall back to the tree walk.
func CompileExpr(n ast.Node, env compile.Env) (*Machine, error) {
	code, err := compile.Expr(n, env)
	if err != nil {
		return nil, err
	}
	return New(code), nil
}

// CompileProc lowers a procedure declaration and wraps it in a Machine;
// each call is m.NewFrame(args...).
func CompileProc(d *ast.ProcDecl, env compile.Env) (*Machine, error) {
	code, err := compile.Proc(d, env)
	if err != nil {
		return nil, err
	}
	return New(code), nil
}

// Gen returns a fresh generator over the unit's result sequence (a frame
// with no arguments) — the adapter that lets compiled units compose with
// the kernel's combinators, pipes, batching and pools unchanged.
func (m *Machine) Gen() core.Gen { return m.NewFrame() }
