package vm

import (
	"compress/gzip"
	"io"
	"time"
)

// WritePprof serializes the accumulated VM profile in pprof's gzipped
// protobuf format, one sample per (procedure, opcode) pair with the opcode
// as the leaf frame — so `go tool pprof` renders a flame graph of where
// compiled execution spends its instructions. The encoder is hand-rolled:
// the profile.proto subset needed here is a dozen fields, far too little
// to justify a protobuf dependency.
func WritePprof(w io.Writer) error {
	snap := SnapshotProfile()
	b := newProtoBuf()

	// String table: index 0 must be "".
	strs := []string{""}
	strIdx := map[string]int64{"": 0}
	str := func(s string) int64 {
		if i, ok := strIdx[s]; ok {
			return i
		}
		i := int64(len(strs))
		strs = append(strs, s)
		strIdx[s] = i
		return i
	}

	// sample_type: {type: "ops", unit: "count"}.
	b.msg(1, func(m *protoBuf) {
		m.varint(1, str("ops"))
		m.varint(2, str("count"))
	})

	// Functions and locations: one pair per distinct name. Location IDs
	// must be non-zero; reuse the same ID space for functions.
	locIdx := map[string]uint64{}
	var funcs []string
	loc := func(name string) uint64 {
		if id, ok := locIdx[name]; ok {
			return id
		}
		id := uint64(len(funcs) + 1)
		funcs = append(funcs, name)
		locIdx[name] = id
		return id
	}

	// Samples: leaf = opcode, caller = procedure.
	for _, pp := range snap {
		procLoc := loc(pp.Name)
		for _, oc := range pp.Ops {
			opLoc := loc("op:" + oc.Op)
			count := oc.Count
			b.msg(2, func(m *protoBuf) {
				m.packed(1, []uint64{opLoc, procLoc})
				m.packed(2, []uint64{uint64(count)})
			})
		}
	}

	for i, name := range funcs {
		id := uint64(i + 1)
		nameIdx := str(name)
		b.msg(4, func(m *protoBuf) { // Location
			m.varint(1, int64(id))
			m.msg(4, func(l *protoBuf) { // Line
				l.varint(1, int64(id)) // function_id
			})
		})
		b.msg(5, func(m *protoBuf) { // Function
			m.varint(1, int64(id))
			m.varint(2, nameIdx)
			m.varint(3, nameIdx)
			m.varint(4, str("junicon-vm"))
		})
	}

	for _, s := range strs {
		b.bytes(6, []byte(s))
	}
	b.varint(9, time.Now().UnixNano()) // time_nanos
	b.msg(11, func(m *protoBuf) {      // period_type
		m.varint(1, str("ops"))
		m.varint(2, str("count"))
	})
	b.varint(12, 1) // period

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(b.buf); err != nil {
		return err
	}
	return gz.Close()
}

// protoBuf is a minimal protobuf wire-format writer: varint (wire type 0)
// and length-delimited (wire type 2) fields are all profile.proto uses.
type protoBuf struct{ buf []byte }

func newProtoBuf() *protoBuf { return &protoBuf{} }

func (b *protoBuf) uvarint(v uint64) {
	for v >= 0x80 {
		b.buf = append(b.buf, byte(v)|0x80)
		v >>= 7
	}
	b.buf = append(b.buf, byte(v))
}

func (b *protoBuf) tag(field, wire int) { b.uvarint(uint64(field<<3 | wire)) }

// varint emits a varint-typed field.
func (b *protoBuf) varint(field int, v int64) {
	b.tag(field, 0)
	b.uvarint(uint64(v))
}

// bytes emits a length-delimited field.
func (b *protoBuf) bytes(field int, p []byte) {
	b.tag(field, 2)
	b.uvarint(uint64(len(p)))
	b.buf = append(b.buf, p...)
}

// msg emits an embedded message built by fn.
func (b *protoBuf) msg(field int, fn func(*protoBuf)) {
	var inner protoBuf
	fn(&inner)
	b.bytes(field, inner.buf)
}

// packed emits a packed repeated varint field.
func (b *protoBuf) packed(field int, vs []uint64) {
	var inner protoBuf
	for _, v := range vs {
		inner.uvarint(v)
	}
	b.bytes(field, inner.buf)
}
