package vm

import (
	"fmt"

	"junicon/internal/compile"
	"junicon/internal/value"
)

// Frame capture and rehydration: the vm half of durable generators. A
// suspended frame's entire continuation is already explicit data — program
// counter, operand stack, slot array, choice stack, aux cells — so a
// snapshot is a structural copy of those arrays plus, recursively, the
// live compiled child frame cached at any call site whose choice point is
// still on the stack. Restoring is the inverse: take a fresh frame from
// the target Machine's pool and overwrite its state, after validating the
// snapshot against the code object's fingerprint and structural bounds so
// a corrupt or mismatched snapshot fails loudly instead of resuming wrong.
//
// Capture is conservative, like the compiler: a frame that is mid-dispatch
// (running), or whose live aux cells hold host-resident generators (a
// generic !x promotion, a to-by over bignums, a tree-walk callee), refuses
// with a reason — callers fall back to restart-from-start recovery.

// FrameSnap is the portable state of one suspended frame. All values are
// shared, not copied — the caller encodes the snapshot (internal/wire)
// before the frame runs again, which is also what severs aliasing, exactly
// as a co-expression environment snapshot copies locals structurally.
type FrameSnap struct {
	// Name is the compiled unit's name ("" for a top-level expression);
	// child frames rehydrate by resolving it to a Machine.
	Name string
	// Fingerprint pins the code object this state was captured against.
	Fingerprint uint64
	PC          int32
	Started     bool
	Resumed     bool
	Args        []value.V
	Slots       []value.V
	Stack       []value.V
	Choices     []ChoiceSnap
	Aux         []AuxSnap
	// Globals, populated only on the root snapshot, records the value of
	// every global cell any code object in the call tower references —
	// backtracking generators like n-queens keep their board there, so a
	// frame restored without them would resume against nulls. Dedup is by
	// name: the cells are interp-wide, one entry covers every frame.
	Globals []GlobalSnap
}

// GlobalSnap is one captured global cell.
type GlobalSnap struct {
	Name string
	Val  value.V
}

// ChoiceSnap is one captured choice point.
type ChoiceSnap struct{ PC, SP int32 }

// Aux payload kinds: what, beyond the unconditional scalar fields, a
// captured aux cell carries.
const (
	AuxCold  = 0 // scalars only: the cell has no live resumable handle
	AuxBang  = 1 // V0 holds a live !x subject (list or string fast path)
	AuxChild = 2 // Child holds a live compiled callee frame (OpCall site)
)

// AuxSnap is one captured aux cell. Scalar fields serialize
// unconditionally (barriers and counters stay meaningful after control
// passed their instruction even with no choice point there); handles only
// when the choice stack proves the cell live.
type AuxSnap struct {
	Barrier, Count, N int32
	Flag              bool
	Mode              int8
	I0, I1, I2        int64
	Kind              int8
	V0                value.V
	Child             *FrameSnap
}

// Unsnapshotable reports a frame that cannot be captured, with the reason
// callers surface in their refusal (and fall back to replay recovery).
type Unsnapshotable struct{ Reason string }

func (u *Unsnapshotable) Error() string { return "vm: cannot snapshot frame: " + u.Reason }

func refuse(format string, args ...any) error {
	return &Unsnapshotable{Reason: fmt.Sprintf(format, args...)}
}

// maxTower bounds call-tower recursion in capture and rehydration: real
// towers are a handful of frames deep, and a forged snapshot must not
// recurse unboundedly.
const maxTower = 128

// Capture snapshots a suspended frame. The frame must be between Next
// calls (not running); it is not modified and may continue afterwards.
func Capture(f *Frame) (*FrameSnap, error) {
	s, err := capture(f, 0)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	collectGlobals(f, s, seen)
	return s, nil
}

// collectGlobals walks the captured tower gathering the referenced global
// cells onto the root snapshot. It follows the snapshot's own child links
// so only frames that were actually captured contribute.
func collectGlobals(f *Frame, root *FrameSnap, seen map[string]bool) {
	var walk func(f *Frame, s *FrameSnap)
	walk = func(f *Frame, s *FrameSnap) {
		for i, name := range f.code.GlobalNames {
			if seen[name] {
				continue
			}
			seen[name] = true
			val := f.code.Globals[i].Get()
			// A global still bound to its own definition (def f / a
			// builtin registered under the same name) is code, not state:
			// reloading the program on the restore side re-creates it, and
			// a procedure value could not encode anyway. Only a rebound
			// procedure global is genuine state — it stays in, so the
			// strict encoder refuses it loudly instead of reverting it.
			switch p := value.Deref(val).(type) {
			case *value.Proc:
				if p.Name == name {
					continue
				}
			case *value.Native:
				if p.Name == name {
					continue
				}
			}
			root.Globals = append(root.Globals, GlobalSnap{Name: name, Val: val})
		}
		for j := range s.Aux {
			if s.Aux[j].Kind == AuxChild {
				if child, ok := f.aux[j].g.(*Frame); ok {
					walk(child, s.Aux[j].Child)
				}
			}
		}
	}
	walk(f, root)
}

func capture(f *Frame, depth int) (*FrameSnap, error) {
	if depth > maxTower {
		return nil, refuse("call tower deeper than %d frames", maxTower)
	}
	if f.running {
		return nil, refuse("frame is running (mid-Next); snapshot only between Next calls")
	}
	for _, c := range f.cp {
		if int(c.pc) < 0 || int(c.pc) >= len(f.code.Instrs) || int(c.sp) > len(f.st) {
			return nil, refuse("choice point out of bounds (pc=%d sp=%d)", c.pc, c.sp)
		}
	}
	s := &FrameSnap{
		Name:        f.code.Name,
		Fingerprint: f.code.Fingerprint(),
		PC:          f.pc,
		Started:     f.started,
		Resumed:     f.resumed,
		Args:        append([]value.V(nil), f.args...),
		Slots:       append([]value.V(nil), f.slots...),
		Stack:       append([]value.V(nil), f.st...),
		Choices:     make([]ChoiceSnap, len(f.cp)),
		Aux:         make([]AuxSnap, len(f.aux)),
	}
	for i, c := range f.cp {
		s.Choices[i] = ChoiceSnap{PC: c.pc, SP: c.sp}
	}
	for i := range f.aux {
		a := &f.aux[i]
		s.Aux[i] = AuxSnap{
			Barrier: a.barrier, Count: a.count, N: a.n,
			Flag: a.flag, Mode: a.mode,
			I0: a.i0, I1: a.i1, I2: a.i2,
			Kind: AuxCold,
		}
	}
	// Liveness: an aux cell's handle matters only if a choice point can
	// resume its instruction. Cold call-site caches (a.frame with no live
	// choice) are dropped — the next arm re-creates them, semantically a
	// cache miss.
	for _, c := range f.cp {
		in := f.code.Instrs[c.pc]
		switch in.Op {
		case compile.OpBang:
			a := &f.aux[in.B]
			switch a.mode {
			case bangList, bangString:
				s.Aux[in.B].Kind = AuxBang
				s.Aux[in.B].V0 = a.v0
			case bangGen:
				return nil, refuse("live !x over a host generator at pc %d", c.pc)
			}
		case compile.OpToBy:
			if f.aux[in.B].mode == tobyGen {
				return nil, refuse("live to-by over a host range at pc %d", c.pc)
			}
			// tobyInt: the unboxed triple already travels in the scalars.
		case compile.OpCall:
			a := &f.aux[in.B]
			child, ok := a.g.(*Frame)
			if !ok {
				return nil, refuse("live call site with opaque callee at pc %d", c.pc)
			}
			if child.code.Name == "" {
				return nil, refuse("live call site with anonymous callee at pc %d", c.pc)
			}
			cs, err := capture(child, depth+1)
			if err != nil {
				return nil, err
			}
			s.Aux[in.B].Kind = AuxChild
			s.Aux[in.B].Child = cs
		}
	}
	return s, nil
}

// Rehydrate builds a frame of this Machine from a snapshot, resuming
// mid-iteration. resolve maps a child frame's unit name to its Machine
// (typically the interpreter's compiled-procedure table); it may be nil
// when the snapshot holds no call tower. The snapshot is validated
// structurally — fingerprint, array lengths, pc and choice bounds, aux
// payload types — and a mismatch is an error, never a silent misresume.
func (m *Machine) Rehydrate(s *FrameSnap, resolve func(name string) (*Machine, bool)) (*Frame, error) {
	var globals map[string]value.V
	if len(s.Globals) > 0 {
		globals = make(map[string]value.V, len(s.Globals))
		for _, g := range s.Globals {
			globals[g.Name] = g.Val
		}
	}
	return m.rehydrate(s, resolve, globals, 0)
}

func (m *Machine) rehydrate(s *FrameSnap, resolve func(name string) (*Machine, bool), globals map[string]value.V, depth int) (*Frame, error) {
	if depth > maxTower {
		return nil, fmt.Errorf("vm: restore: call tower deeper than %d frames", maxTower)
	}
	code := m.code
	if s.Fingerprint != code.Fingerprint() {
		return nil, fmt.Errorf("vm: restore: code fingerprint mismatch for %q (snapshot %#x, unit %#x)",
			code.Name, s.Fingerprint, code.Fingerprint())
	}
	if len(s.Slots) != len(code.Slots) {
		return nil, fmt.Errorf("vm: restore: %d slots, unit has %d", len(s.Slots), len(code.Slots))
	}
	if len(s.Aux) != code.NumAux {
		return nil, fmt.Errorf("vm: restore: %d aux cells, unit has %d", len(s.Aux), code.NumAux)
	}
	pc := s.PC
	if !s.Started {
		pc = 0 // exhausted or unstarted: the next Next re-begins anyway
	}
	if int(pc) < 0 || int(pc) >= len(code.Instrs) {
		return nil, fmt.Errorf("vm: restore: pc %d out of range [0,%d)", pc, len(code.Instrs))
	}
	for _, c := range s.Choices {
		if int(c.PC) < 0 || int(c.PC) >= len(code.Instrs) || c.SP < 0 || int(c.SP) > len(s.Stack) {
			return nil, fmt.Errorf("vm: restore: choice point out of bounds (pc=%d sp=%d)", c.PC, c.SP)
		}
	}
	// Re-establish captured global state through this code's cells; the
	// cells are interp-wide, so each name lands once no matter how many
	// frames reference it.
	for i, name := range code.GlobalNames {
		if v, ok := globals[name]; ok {
			code.Globals[i].Set(v)
		}
	}
	f := m.NewFrame(s.Args...)
	f.pc = pc
	f.started = s.Started
	f.resumed = s.Resumed
	copy(f.slots, s.Slots)
	f.st = append(f.st[:0], s.Stack...)
	f.cp = f.cp[:0]
	for _, c := range s.Choices {
		f.cp = append(f.cp, choice{pc: c.PC, sp: c.SP})
	}
	for i := range s.Aux {
		as := &s.Aux[i]
		a := &f.aux[i]
		a.barrier, a.count, a.n = as.Barrier, as.Count, as.N
		a.flag, a.mode = as.Flag, as.Mode
		a.i0, a.i1, a.i2 = as.I0, as.I1, as.I2
		a.v0, a.g, a.proc, a.frame = nil, nil, nil, nil
		switch as.Kind {
		case AuxCold:
		case AuxBang:
			switch as.Mode {
			case bangList:
				if _, ok := value.Deref(as.V0).(*value.List); !ok {
					return nil, fmt.Errorf("vm: restore: aux %d: !x subject is %s, want list", i, value.TypeOf(as.V0))
				}
				a.v0 = value.Deref(as.V0)
			case bangString:
				sv, ok := value.Deref(as.V0).(value.String)
				if !ok {
					return nil, fmt.Errorf("vm: restore: aux %d: !x subject is %s, want string", i, value.TypeOf(as.V0))
				}
				a.v0 = sv
			default:
				return nil, fmt.Errorf("vm: restore: aux %d: bang payload with mode %d", i, as.Mode)
			}
		case AuxChild:
			if as.Child == nil {
				return nil, fmt.Errorf("vm: restore: aux %d: missing child frame", i)
			}
			if resolve == nil {
				return nil, fmt.Errorf("vm: restore: aux %d: no resolver for callee %q", i, as.Child.Name)
			}
			cm, ok := resolve(as.Child.Name)
			if !ok {
				return nil, fmt.Errorf("vm: restore: aux %d: no compiled unit for callee %q", i, as.Child.Name)
			}
			cf, err := cm.rehydrate(as.Child, resolve, globals, depth+1)
			if err != nil {
				return nil, err
			}
			a.frame = cf
			a.g = cf
			// a.proc stays nil: the next re-arm is a cache miss that
			// re-binds the site to the live procedure cell.
		default:
			return nil, fmt.Errorf("vm: restore: aux %d: unknown payload kind %d", i, as.Kind)
		}
	}
	return f, nil
}
