package vm

import (
	"fmt"
	"time"

	"junicon/internal/compile"
	"junicon/internal/core"
	"junicon/internal/value"
)

// Bang fast-path modes (auxCell.mode).
const (
	bangList   = 1 // elements of a list by index, length re-checked live
	bangString = 2 // one-character substrings by byte index
	bangGen    = 3 // generic: core.PromoteVal generator
)

// ToBy fast-path modes.
const (
	tobyInt = 1 // unboxed int64 arithmetic, interned small-int yields
	tobyGen = 2 // generic: core.Range generator
)

// Next produces the frame's next value. The loop executes instructions
// until one of them suspends (OpYield/OpReturn) or the frame fails with no
// choice point left. Resumption re-enters here: after a yield, execution
// continues at the saved pc; after exhaustion, begin() re-arms the frame
// (auto-restart). The running flag brackets the dispatch so Capture can
// refuse a frame that is mid-instruction — two plain bool stores, nothing
// on the per-instruction path.
func (f *Frame) Next() (value.V, bool) {
	f.running = true
	v, ok := f.next()
	f.running = false
	return v, ok
}

func (f *Frame) next() (value.V, bool) {
	// Profiling is decided once per Next — one atomic load, mirroring the
	// telemetry gate. An unprofiled call carries prof == nil and each
	// instruction pays a single local nil test.
	var prof *CodeProfile
	if profOn.Load() {
		prof = f.owner.profile()
		if f.started {
			f.noteResume(prof)
		}
	}
	if !f.started {
		f.begin()
		if prof != nil {
			prof.calls.Add(1)
		}
	}
	code := f.code
	for {
		in := code.Instrs[f.pc]
		if prof != nil {
			prof.ops[in.Op].Add(1)
		}
		switch in.Op {

		// ----- values and slots -----
		case compile.OpNop:
			f.pc++
		case compile.OpConst:
			f.push(code.Consts[in.A])
			f.pc++
		case compile.OpNull:
			f.push(value.NullV)
			f.pc++
		case compile.OpPop:
			f.pop()
			f.pc++
		case compile.OpPopN:
			f.st = f.st[:len(f.st)-int(in.A)]
			f.pc++
		case compile.OpLoadSlot:
			f.push(f.slots[in.A])
			f.pc++
		case compile.OpStoreSlot:
			v := value.Deref(f.top())
			f.slots[in.A] = v
			f.st[len(f.st)-1] = v
			f.pc++
		case compile.OpBindSlot:
			f.slots[in.A] = value.Deref(f.top())
			f.pc++
		case compile.OpLoadGlobal:
			f.push(code.Globals[in.A].Get())
			f.pc++
		case compile.OpStoreGlobal:
			v := value.Deref(f.top())
			code.Globals[in.A].Set(v)
			f.st[len(f.st)-1] = v
			f.pc++

		// ----- control -----
		case compile.OpJump:
			f.pc = in.A
		case compile.OpFail:
			if !f.fail() {
				return nil, false
			}
		case compile.OpYield:
			v := value.Deref(f.pop())
			f.pc++
			if prof != nil {
				prof.yields.Add(1)
				f.suspendedAt = time.Now().UnixNano()
			}
			return v, true
		case compile.OpReturn:
			v := value.Deref(f.pop())
			f.cp = f.cp[:0]
			f.pc++
			if prof != nil {
				prof.yields.Add(1)
				f.suspendedAt = time.Now().UnixNano()
			}
			return v, true
		case compile.OpReturnFail:
			f.cp = f.cp[:0]
			f.started = false
			return nil, false
		case compile.OpMark:
			if f.resumed {
				f.resumed = false
				f.pc = in.A
				continue
			}
			f.aux[in.B].barrier = int32(len(f.cp))
			f.cp = append(f.cp, choice{pc: f.pc, sp: int32(len(f.st))})
			f.pc++
		case compile.OpCut:
			f.cp = f.cp[:f.aux[in.B].barrier]
			f.pc++
		case compile.OpFork:
			if f.resumed {
				f.resumed = false
				f.pc = in.A
				continue
			}
			f.cp = append(f.cp, choice{pc: f.pc, sp: int32(len(f.st))})
			f.pc++
		case compile.OpRepAlt:
			a := &f.aux[in.B]
			if f.resumed {
				f.resumed = false
				if !a.flag {
					// An empty cycle: |e itself is exhausted.
					if !f.fail() {
						return nil, false
					}
					continue
				}
			}
			a.flag = false
			f.cp = append(f.cp, choice{pc: f.pc, sp: int32(len(f.st))})
			f.pc++
		case compile.OpRepNote:
			f.aux[in.B].flag = true
			f.pc++
		case compile.OpLimitBegin:
			n := value.MustInt(value.Deref(f.pop()))
			if n <= 0 {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			a := &f.aux[in.B]
			a.n = int32(n)
			a.count = 0
			a.barrier = int32(len(f.cp))
			f.pc++
		case compile.OpLimitCheck:
			a := &f.aux[in.B]
			a.count++
			if a.count >= a.n {
				// The nth result: cut e's choice points so it cannot be
				// resumed past the limit (failure falls through to the
				// count's own sequence, which restarts e — limitGen's
				// restart-on-limit behavior).
				f.cp = f.cp[:a.barrier]
			}
			f.pc++

		// ----- operators -----
		case compile.OpArith:
			b := value.Deref(f.pop())
			a := value.Deref(f.pop())
			f.push(compile.ArithFns[in.A](a, b))
			f.pc++
		case compile.OpCmp:
			b := value.Deref(f.pop())
			a := value.Deref(f.pop())
			v, ok := compile.CmpFns[in.A](a, b)
			if !ok {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.push(v)
			f.pc++
		case compile.OpUnary:
			f.push(compile.UnaryFns[in.A](value.Deref(f.pop())))
			f.pc++
		case compile.OpNullTest:
			if !value.IsNull(value.Deref(f.top())) {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.st[len(f.st)-1] = value.NullV
			f.pc++
		case compile.OpNonNullTest:
			v := value.Deref(f.top())
			if value.IsNull(v) {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.st[len(f.st)-1] = v
			f.pc++
		case compile.OpBang:
			if !f.stepBang(&f.aux[in.B]) {
				if !f.fail() {
					return nil, false
				}
			}
		case compile.OpToBy:
			if !f.stepToBy(&f.aux[in.B]) {
				if !f.fail() {
					return nil, false
				}
			}
		case compile.OpCaseEq:
			v := value.Deref(f.pop())
			if !value.Equiv(f.slots[in.A], v) {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.pc++

		// ----- structures -----
		case compile.OpMakeList:
			n := int(in.A)
			base := len(f.st) - n
			elems := make([]value.V, n)
			for i := 0; i < n; i++ {
				elems[i] = value.Deref(f.st[base+i])
			}
			f.st = f.st[:base]
			// A fresh list per result: resuming a list-forming expression
			// must not alias earlier yields (ListOf builds anew per cycle).
			f.push(value.NewListOf(elems))
			f.pc++
		case compile.OpIndex, compile.OpIndexVar:
			i := value.Deref(f.pop())
			x := value.Deref(f.pop())
			v, ok := value.Subscript(x, i)
			if !ok {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.push(v)
			f.pc++
		case compile.OpSection:
			j := value.Deref(f.pop())
			i := value.Deref(f.pop())
			x := value.Deref(f.pop())
			v, ok := value.Section(x, i, j)
			if !ok {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.push(v)
			f.pc++
		case compile.OpField, compile.OpFieldVar:
			x := value.Deref(f.pop())
			name := string(code.Consts[in.A].(value.String))
			v, ok := value.Field(x, name)
			if !ok {
				value.Raise(value.ErrField, "missing field "+name, x)
			}
			f.push(v)
			f.pc++
		case compile.OpStoreVar:
			v := value.Deref(f.pop())
			t := mustVar(f.pop())
			t.Set(v)
			f.push(v)
			f.pc++
		case compile.OpAugVar:
			v := value.Deref(f.pop())
			t := mustVar(f.pop())
			r := compile.ArithFns[in.A](t.Get(), v)
			t.Set(r)
			f.push(r)
			f.pc++
		case compile.OpCmpAugVar:
			v := value.Deref(f.pop())
			t := mustVar(f.pop())
			r, ok2 := compile.CmpFns[in.A](t.Get(), v)
			if !ok2 {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			t.Set(r)
			f.push(r)
			f.pc++
		case compile.OpAugSlot:
			v := value.Deref(f.pop())
			r := compile.ArithFns[in.C](f.slots[in.A], v)
			f.slots[in.A] = r
			f.push(r)
			f.pc++
		case compile.OpCmpAugSlot:
			v := value.Deref(f.pop())
			r, ok := compile.CmpFns[in.C](f.slots[in.A], v)
			if !ok {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.slots[in.A] = r
			f.push(r)
			f.pc++
		case compile.OpAugGlobal:
			v := value.Deref(f.pop())
			cell := code.Globals[in.A]
			r := compile.ArithFns[in.C](cell.Get(), v)
			cell.Set(r)
			f.push(r)
			f.pc++
		case compile.OpCmpAugGlobal:
			v := value.Deref(f.pop())
			cell := code.Globals[in.A]
			r, ok := compile.CmpFns[in.C](cell.Get(), v)
			if !ok {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			cell.Set(r)
			f.push(r)
			f.pc++

		// ----- invocation -----
		case compile.OpCall:
			a := &f.aux[in.B]
			if f.resumed {
				f.resumed = false
			} else {
				f.armCall(a, int(in.A))
			}
			v, ok := a.g.Next()
			if !ok {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.cp = append(f.cp, choice{pc: f.pc, sp: int32(len(f.st))})
			f.push(v)
			f.pc++
		case compile.OpCall1:
			// Facts-proven direct call: at most one result, no effects to
			// re-run — no choice point, no resume bookkeeping.
			a := &f.aux[in.B]
			f.armCall(a, int(in.A))
			v, ok := a.g.Next()
			if !ok {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.push(v)
			f.pc++
		case compile.OpCallNative:
			a := &f.aux[in.B]
			n := int(in.A)
			base := len(f.st) - n
			a.args = a.args[:0]
			for i := 0; i < n; i++ {
				a.args = append(a.args, value.Deref(f.st[base+i]))
			}
			f.st = f.st[:base]
			native := code.Consts[in.C].(*value.Native)
			v, err := native.Fn(a.args...)
			if err != nil {
				value.Raise(value.ErrProcedure, "native "+native.Name+": "+err.Error(), nil)
			}
			if v == nil {
				if !f.fail() {
					return nil, false
				}
				continue
			}
			f.push(v)
			f.pc++

		default:
			panic(fmt.Sprintf("vm: bad opcode %d at pc %d", in.Op, f.pc))
		}
	}
}

// armCall pops n arguments and the callee, binding a.g to the invocation's
// generator. A compiled callee reuses the frame cached at this site (one
// live child per site per parent frame — an abandoned child is fully reset
// by ResetCall, so stale state cannot leak).
func (f *Frame) armCall(a *auxCell, n int) {
	base := len(f.st) - n
	a.args = a.args[:0]
	for i := 0; i < n; i++ {
		a.args = append(a.args, value.Deref(f.st[base+i]))
	}
	f.st = f.st[:base]
	fv := value.Deref(f.pop())
	if p, ok := fv.(*value.Proc); ok && p == a.proc && a.frame != nil {
		a.frame.ResetCall(a.args)
		a.g = a.frame
		return
	}
	g := core.InvokeVal(fv, a.args...)
	a.g = g
	if child, ok2 := g.(*Frame); ok2 {
		if p, ok := fv.(*value.Proc); ok {
			a.proc, a.frame = p, child
		}
	}
}

// stepBang arms (or resumes) a !x site and pushes the next element,
// reporting false when the elements are spent.
//
// The list and string fast paths yield plain values where the tree walk's
// listBang yields updatable references. Inside compiled code the two are
// indistinguishable: every consumer (operators, yields, stores, argument
// passing) dereferences, and the compiler rejects !x as an assignment
// target, so no reference can escape — this is the same reasoning that
// licenses core.Elements on the kernel's internal drives.
func (f *Frame) stepBang(a *auxCell) bool {
	if f.resumed {
		f.resumed = false
	} else {
		v := value.Deref(f.pop())
		switch x := v.(type) {
		case *value.List:
			a.mode, a.i0, a.v0 = bangList, 0, v
		case value.String:
			a.mode, a.i0, a.v0 = bangString, 0, v
		case *value.Cset:
			a.mode, a.i0, a.v0 = bangString, 0, value.String(x.Members())
		default:
			a.mode, a.g = bangGen, core.PromoteVal(v)
		}
	}
	var v value.V
	switch a.mode {
	case bangList:
		// Length and element are re-read per result: the list may grow or
		// shrink between resumptions (listBang's live-indexing behavior).
		l := a.v0.(*value.List)
		a.i0++
		el, ok := l.At(int(a.i0))
		if !ok {
			return false
		}
		if el == nil {
			el = value.NullV
		}
		v = el
	case bangString:
		s := a.v0.(value.String)
		if int(a.i0) >= len(s) {
			return false
		}
		v = s[a.i0 : a.i0+1]
		a.i0++
	default:
		nv, ok := a.g.Next()
		if !ok {
			return false
		}
		v = nv
	}
	f.cp = append(f.cp, choice{pc: f.pc, sp: int32(len(f.st))})
	f.push(v)
	f.pc++
	return true
}

// stepToBy arms (or resumes) a to-by range and pushes the next value. The
// unboxed path mirrors the kernel's intRangeGen (including its overflow
// guards); everything else — reals, big integers, a zero increment's
// divide-by-zero error — goes through core.Range so errors and edge cases
// are byte-identical to the tree walk.
func (f *Frame) stepToBy(a *auxCell) bool {
	if f.resumed {
		f.resumed = false
	} else {
		by := value.Deref(f.pop())
		hi := value.Deref(f.pop())
		lo := value.Deref(f.pop())
		if li, hi64, by64, ok := smallRange(lo, hi, by); ok {
			a.mode = tobyInt
			a.i0, a.i1, a.i2 = li-by64, hi64, by64
		} else {
			a.mode = tobyGen
			a.g = core.Range(lo, hi, by)
		}
	}
	var v value.V
	if a.mode == tobyInt {
		cur := a.i0 + a.i2
		if (a.i2 > 0 && cur > a.i1) || (a.i2 < 0 && cur < a.i1) {
			return false
		}
		a.i0 = cur
		v = value.IntV(cur)
	} else {
		nv, ok := a.g.Next()
		if !ok {
			return false
		}
		v = nv
	}
	f.cp = append(f.cp, choice{pc: f.pc, sp: int32(len(f.st))})
	f.push(v)
	f.pc++
	return true
}

// mustVar asserts an assignment target is an updatable reference (the
// kernel's mustVar: a plain value as lvalue is Icon error 205).
func mustVar(t value.V) *value.Var {
	v, ok := t.(*value.Var)
	if !ok {
		value.Raise(value.ErrIndex, "variable expected", t)
	}
	return v
}

// smallRange reports lo/hi/by as unboxed int64s safe for native stepping:
// all small integers, a non-zero increment, and no overflow possible at
// the endpoints (core.Range's own guard conditions).
func smallRange(lo, hi, by value.V) (l, h, b int64, ok bool) {
	l, ok = smallInt(lo)
	if !ok {
		return
	}
	h, ok = smallInt(hi)
	if !ok {
		return
	}
	b, ok = smallInt(by)
	if !ok || b == 0 {
		return 0, 0, 0, false
	}
	ab := b
	if ab < 0 {
		ab = -ab
	}
	const maxInt64 = int64(^uint64(0) >> 1)
	minInt64 := -maxInt64 - 1
	if h > maxInt64-ab || h < minInt64+ab || l > maxInt64-ab || l < minInt64+ab {
		return 0, 0, 0, false
	}
	return l, h, b, true
}

func smallInt(v value.V) (int64, bool) {
	i, ok := v.(value.Integer)
	if !ok || i.IsBig() {
		return 0, false
	}
	n, _ := i.Int64()
	return n, true
}
