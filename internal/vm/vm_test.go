package vm_test

import (
	"io"
	"testing"

	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/value"
	"junicon/internal/vm"
)

// vmInterp returns a compiled-execution interpreter (output discarded).
func vmInterp(t *testing.T, program string) *interp.Interp {
	t.Helper()
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	if program != "" {
		if err := in.LoadProgram(program); err != nil {
			t.Fatalf("load: %v", err)
		}
	}
	return in
}

// plainInterp returns the tree-walk reference interpreter.
func plainInterp(t *testing.T, program string) *interp.Interp {
	t.Helper()
	in := interp.New(interp.WithOutput(io.Discard))
	if program != "" {
		if err := in.LoadProgram(program); err != nil {
			t.Fatalf("load: %v", err)
		}
	}
	return in
}

// drain collects up to max images from g, folding a raised error into a
// trailing "error" marker so traces compare structurally.
func drain(g core.Gen, max int) []string {
	var out []string
	err := core.Protect(func() {
		for i := 0; i < max; i++ {
			v, ok := g.Next()
			if !ok {
				return
			}
			out = append(out, value.Image(value.Deref(v)))
		}
	})
	if err != nil {
		out = append(out, "error")
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustFrame asserts the vm interpreter actually compiled the expression —
// EvalGen returned a bytecode frame, not a tree-walk fallback generator.
func mustFrame(t *testing.T, in *interp.Interp, src string) *vm.Frame {
	t.Helper()
	g, err := in.EvalGen(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	f, ok := g.(*vm.Frame)
	if !ok {
		t.Fatalf("eval %q: expected a compiled frame, got %T (fallback?)", src, g)
	}
	return f
}

// TestCompiledExprSequences pins compiled evaluation against the tree
// walk over the expression forms the compiler lowers, and asserts each one
// genuinely compiled (the generator is a vm.Frame).
func TestCompiledExprSequences(t *testing.T) {
	const program = `
global acc
def gen(a, b) { suspend a to b; }
def double(x) { return x * 2; }
def addTo(x) { acc := x; return acc; }
record point(x, y)
`
	exprs := []string{
		// Sequences and products.
		"1 to 10",
		"1 to 10 by 3",
		"10 to 1 by -2",
		"(1 to 3) & (4 | 5)",
		"(1 to 4) * (1 to 4)",
		"(1 | 2 | 3) + (10 | 20)",
		// Limits and repeated alternation.
		"(1 to 9) \\ 4",
		"(1 to 5) \\ (2 | 3)",
		"(|(1 to 2)) \\ 7",
		"(|1) \\ 3",
		// Promotion.
		"![10, 20, 30]",
		"!\"abc\"",
		"!'dcba'",
		// Tests and negation.
		"/&null",
		"\\3",
		"not (1 > 2)",
		"not (1 < 2)",
		// Control in expression position.
		"if 2 > 1 then \"y\" else \"n\"",
		"if 2 < 1 then \"y\"",
		"case 2 of { 1: \"a\"; 2: \"b\"; default: \"c\" }",
		"case 9 of { 1: \"a\"; default: \"d\" }",
		"case (1 to 5) of { 4: \"hit\" }",
		// Assignment forms.
		"{ x := 5; x +:= 2; x }",
		"{ L := [1, 2, 3]; L[2] := 9; !L }",
		"{ L := [5, 6]; L[1] +:= 10; L[1] }",
		"{ p := point(3, 4); p.x := 30; p.x + p.y }",
		"{ s := \"\"; every s ||:= !\"abc\"; s }",
		// Loops.
		"{ i := 0; while i < 5 do i +:= 1; i }",
		"{ t := 0; every t +:= 1 to 10; t }",
		"{ i := 0; n := 0; repeat { i +:= 1; if i > 4 then break; n +:= i }; n }",
		"{ t := 0; every d := 1 to 6 do { if d % 2 == 0 then next; t +:= d }; t }",
		"while (1 to 3) > 5 do 0",
		// Calls: general, direct (facts-proven), generator args.
		"gen(2, 5)",
		"double(1 to 4)",
		"double(double(3))",
		"gen(1 to 2, 4)",
		"{ addTo(7); acc }",
		// String/list machinery.
		"\"abcdef\"[2:4]",
		"[1, 2, 3][2]",
		"*\"hello\" + *[1, 2]",
		"-(1 to 3)",
	}
	vin := vmInterp(t, program)
	pin := plainInterp(t, program)
	for _, src := range exprs {
		f := mustFrame(t, vin, src)
		got := drain(f, 200)
		ref, err := pin.EvalGen(src)
		if err != nil {
			t.Fatalf("reference eval %q: %v", src, err)
		}
		want := drain(ref, 200)
		if !equal(got, want) {
			t.Errorf("%q:\n  vm   = %v\n  tree = %v", src, got, want)
		}
	}
}

// TestCompiledProcIsFrame proves loaded procedures execute as frames: a
// compiled call site caches its child frame, and the child is a vm.Frame.
func TestCompiledProcIsFrame(t *testing.T) {
	in := vmInterp(t, `def gen(a, b) { suspend a to b; }`)
	v, ok := in.Global("gen")
	if !ok {
		t.Fatal("gen not defined")
	}
	p, ok := v.(*value.Proc)
	if !ok {
		t.Fatalf("gen is %T", v)
	}
	g := p.Call(value.NewInt(1), value.NewInt(3))
	if _, ok := g.(*vm.Frame); !ok {
		t.Fatalf("compiled proc call returned %T, want *vm.Frame", g)
	}
	if got := drain(g, 10); !equal(got, []string{"1", "2", "3"}) {
		t.Fatalf("gen(1,3) = %v", got)
	}
}

// TestFrameRestart pins the generator contract on frames: auto-restart
// after exhaustion, and eager Restart mid-sequence.
func TestFrameRestart(t *testing.T) {
	in := vmInterp(t, "")
	f := mustFrame(t, in, "1 to 3")
	want := []string{"1", "2", "3"}
	if got := drain(f, 10); !equal(got, want) {
		t.Fatalf("first drain = %v", got)
	}
	// Auto-restart: exhausted frames re-produce on the next demand.
	if got := drain(f, 10); !equal(got, want) {
		t.Fatalf("second drain = %v", got)
	}
	// Eager restart mid-sequence.
	if v, ok := f.Next(); !ok || value.Image(v) != "1" {
		t.Fatalf("Next after drain = %v %v", v, ok)
	}
	f.Restart()
	if got := drain(f, 10); !equal(got, want) {
		t.Fatalf("drain after Restart = %v", got)
	}
}

// TestFallbackLanes pins that unsupported forms still evaluate (tree-walk
// fallback) and are NOT frames — the partiality contract.
func TestFallbackLanes(t *testing.T) {
	vin := vmInterp(t, "")
	pin := plainInterp(t, "")
	for _, src := range []string{
		`"aXbXc" ? tab(upto('X'))`,       // string scanning
		`{ x := 1; ((x <- 2) & 0) | x }`, // reversible assignment
		`?10 < 100`,                      // random
	} {
		g, err := vin.EvalGen(src)
		if err != nil {
			t.Fatalf("eval %q: %v", src, err)
		}
		if _, isFrame := g.(*vm.Frame); isFrame {
			t.Fatalf("%q unexpectedly compiled", src)
		}
		ref, err := pin.EvalGen(src)
		if err != nil {
			t.Fatalf("reference eval %q: %v", src, err)
		}
		// The random case isn't value-deterministic; compare lengths only.
		got, want := drain(g, 50), drain(ref, 50)
		if len(got) != len(want) {
			t.Errorf("%q: vm lane %v, tree lane %v", src, got, want)
		}
	}
}

// TestGlobalPersistence pins the REPL rule under the vm: top-level
// assignment auto-creates a global visible to later evaluations.
func TestGlobalPersistence(t *testing.T) {
	in := vmInterp(t, "")
	mustFrame(t, in, "zz := 41").Next()
	f := mustFrame(t, in, "zz + 1")
	if got := drain(f, 5); !equal(got, []string{"42"}) {
		t.Fatalf("zz + 1 = %v", got)
	}
}
