// Package vm executes the compile package's bytecode in slot-based
// resumable frames. A frame is the compiled counterpart of a tree-walk
// generator tower: its program counter plus operand stack plus choice
// stack are the whole continuation, so suspend/resume is "return from
// Next / re-enter the loop" and backtracking is "pop a choice point" —
// no interface dispatch per resume, no closure allocation per generator.
//
// Frames satisfy the kernel's generator contract (core.Gen), including
// auto-restart: after the frame's sequence is exhausted, the next Next
// re-runs it from the top, exactly as the paper's iterators restart after
// failure (§5B). Frames recycle through a per-Machine sync.Pool so the
// steady-state cost of calling a compiled procedure is a reset, not an
// allocation.
package vm

import (
	"sync"
	"sync/atomic"

	"junicon/internal/compile"
	"junicon/internal/core"
	"junicon/internal/value"
)

// choice is one choice point: the instruction to re-enter on failure and
// the operand-stack depth to restore first.
type choice struct {
	pc, sp int32
}

// auxCell is the per-frame state of one resumable instruction (the B
// operand names the cell). One flat struct serves every resumable opcode;
// which fields are live depends on the instruction kind.
type auxCell struct {
	barrier  int32       // OpMark/OpLimitBegin: choice-stack depth to cut back to
	count, n int32       // OpLimitBegin/OpLimitCheck: results so far, limit
	flag     bool        // OpRepAlt/OpRepNote: current |e cycle produced a value
	mode     int8        // OpBang/OpToBy: which fast path armed
	i0       int64       // OpBang: element index; OpToBy: current value
	i1, i2   int64       // OpToBy: hi, by
	v0       value.V     // OpBang: the promoted list/string
	g        core.Gen    // generic generator (OpBang mode 0, OpToBy, OpCall)
	proc     *value.Proc // OpCall: cached callee identity
	frame    *Frame      // OpCall: cached compiled child frame for this site
	args     []value.V   // OpCall/OpCallNative: argument scratch
}

// Machine wraps one compiled unit with its frame pool. Pooled frames are
// only ever reused for the same code object, so slot and aux arrays (and
// the call-site caches inside aux) stay valid across recycles.
type Machine struct {
	code *compile.Code
	pool sync.Pool
	// prof is the unit's lazily registered profile (profile.go); nil until
	// the first Next that runs with profiling enabled.
	prof atomic.Pointer[CodeProfile]
}

// New builds a Machine for code.
func New(code *compile.Code) *Machine {
	m := &Machine{code: code}
	m.pool.New = func() any {
		return &Frame{
			code:  code,
			owner: m,
			slots: make([]value.V, len(code.Slots)),
			aux:   make([]auxCell, code.NumAux),
			st:    make([]value.V, 0, 8),
			cp:    make([]choice, 0, 8),
		}
	}
	return m
}

// Code returns the compiled unit.
func (m *Machine) Code() *compile.Code { return m.code }

// NewFrame takes a frame from the pool and arms it with args. The frame is
// a core.Gen over the unit's result sequence.
func (m *Machine) NewFrame(args ...value.V) *Frame {
	f := m.pool.Get().(*Frame)
	f.args = append(f.args[:0], args...)
	f.started = false
	f.resumed = false
	f.suspendedAt = 0
	return f
}

// Frame is one resumable activation: the compiled unit's slots, operand
// stack, choice stack and program counter. It implements core.Gen.
type Frame struct {
	code    *compile.Code
	owner   *Machine
	pc      int32
	st      []value.V // operand stack
	slots   []value.V // parameters, locals, normal-form temporaries
	cp      []choice  // choice points, innermost last
	aux     []auxCell
	args    []value.V // call arguments, bound to the leading slots on begin
	started bool      // a run is in progress (not yet exhausted)
	resumed bool      // control arrived at pc by failure, not fall-through
	// running is set for the duration of a Next dispatch: between calls the
	// frame is suspended and its state is a consistent continuation; during
	// a call it is mid-instruction and must not be captured (snapshot.go
	// refuses). A panic escaping Next leaves running set — correct, since
	// an abandoned mid-instruction frame is exactly what must not snapshot.
	running bool
	// suspendedAt is the UnixNano of the last profiled suspension (yield or
	// return); 0 when not suspended or profiling was off at the time.
	suspendedAt int64
}

// begin (re)starts the frame: pc 0, empty stacks, slots nulled, parameters
// bound. Auto-restart means begin runs both on the first Next and on the
// first Next after exhaustion.
func (f *Frame) begin() {
	f.pc = 0
	f.st = f.st[:0]
	f.cp = f.cp[:0]
	f.resumed = false
	for i := range f.slots {
		f.slots[i] = value.NullV
	}
	n := f.code.Params
	if n > len(f.args) {
		n = len(f.args)
	}
	for i := 0; i < n; i++ {
		f.slots[i] = value.Deref(f.args[i])
	}
	f.started = true
	f.suspendedAt = 0
}

// fail backtracks to the most recent choice point, restoring its operand
// stack and re-entering its instruction with the resumed flag set. With no
// choice point left the frame is exhausted (and, per the generator
// contract, ready to restart).
func (f *Frame) fail() bool {
	if len(f.cp) == 0 {
		f.started = false
		return false
	}
	c := f.cp[len(f.cp)-1]
	f.cp = f.cp[:len(f.cp)-1]
	f.st = f.st[:c.sp]
	f.pc = c.pc
	f.resumed = true
	return true
}

// Restart resets the frame to re-produce its sequence (the calculus's ^
// operator); the bound arguments are kept.
func (f *Frame) Restart() {
	f.started = false
}

// ResetCall rebinds the frame to fresh arguments and restarts it — the
// call-site reuse path (OpCall): at most one child frame lives per site
// per parent frame, so an abandoned child is simply re-armed.
func (f *Frame) ResetCall(args []value.V) {
	f.args = append(f.args[:0], args...)
	f.started = false
}

// Recycle clears the frame's value references and returns it to its
// Machine's pool. Only call when no live generator can reach the frame.
func (f *Frame) Recycle() {
	f.st = f.st[:0]
	f.cp = f.cp[:0]
	for i := range f.slots {
		f.slots[i] = nil
	}
	f.args = f.args[:0]
	for i := range f.aux {
		a := &f.aux[i]
		a.v0, a.g, a.proc = nil, nil, nil
		// Child frames cached at call sites go back to their own pools.
		if a.frame != nil {
			a.frame.Recycle()
			a.frame = nil
		}
		a.args = a.args[:0]
	}
	f.started = false
	f.owner.pool.Put(f)
}

// stack helpers — inlined by the compiler on the hot path.

func (f *Frame) push(v value.V) { f.st = append(f.st, v) }

func (f *Frame) pop() value.V {
	v := f.st[len(f.st)-1]
	f.st = f.st[:len(f.st)-1]
	return v
}

func (f *Frame) top() value.V { return f.st[len(f.st)-1] }
