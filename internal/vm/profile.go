// VM profiler: per-opcode and per-procedure hit counters plus
// suspend-to-resume latency histograms, gated exactly like telemetry —
// one atomic load decides per Next call, and an unprofiled execution
// carries a nil *CodeProfile whose per-instruction check is a plain nil
// test on a local. The data answers the two questions a slow compiled
// program raises: where do the instructions go (which procedure, which
// opcode), and how long do generators sit suspended between a yield and
// the resume that follows (the scheduling half of §5B's suspend/resume
// cost, invisible to instruction counts).
package vm

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/compile"
	"junicon/internal/telemetry"
)

// profOn gates profiling process-wide. Frame.Next loads it once per call.
var profOn atomic.Bool

// EnableProfiling turns the VM profiler on process-wide.
func EnableProfiling() { profOn.Store(true) }

// DisableProfiling stops collecting; accumulated profiles remain readable.
func DisableProfiling() { profOn.Store(false) }

// ProfilingOn reports whether the profiler is collecting.
func ProfilingOn() bool { return profOn.Load() }

// CodeProfile accumulates execution counts for one compiled unit. Counters
// are atomics because frames of the same Machine may run on many
// goroutines (pooled data-parallel execution).
type CodeProfile struct {
	name   string
	calls  atomic.Int64 // frame activations (begin)
	yields atomic.Int64 // values produced
	ops    [compile.NumOps]atomic.Int64
	resume telemetry.Histogram // suspend → resume latency, ns
}

// profiles is the process-wide registry of per-unit profiles, appended to
// lazily by the first profiled Next of each Machine.
var profiles = struct {
	sync.Mutex
	list []*CodeProfile
}{}

// profile returns the Machine's profile, creating and registering it on
// first use. Fast path: one atomic pointer load.
func (m *Machine) profile() *CodeProfile {
	if p := m.prof.Load(); p != nil {
		return p
	}
	name := m.code.Name
	if name == "" {
		name = "<expr>"
	}
	p := &CodeProfile{name: name}
	if !m.prof.CompareAndSwap(nil, p) {
		return m.prof.Load()
	}
	profiles.Lock()
	profiles.list = append(profiles.list, p)
	profiles.Unlock()
	return p
}

// ResetProfile zeroes every accumulated profile in place — registered
// machines keep their profile pointers, so collection continues cleanly.
// Test hygiene and measurement-window delimiting, like ResetMetrics.
func ResetProfile() {
	profiles.Lock()
	defer profiles.Unlock()
	for _, p := range profiles.list {
		p.calls.Store(0)
		p.yields.Store(0)
		for i := range p.ops {
			p.ops[i].Store(0)
		}
		p.resume.Reset()
	}
}

// OpCount is one opcode's share of a procedure's executed instructions.
type OpCount struct {
	Op    string `json:"op"`
	Count int64  `json:"count"`
}

// ProcProfile is one compiled unit's profile snapshot, ops sorted by
// descending count.
type ProcProfile struct {
	Name      string                      `json:"name"`
	Calls     int64                       `json:"calls"`
	Yields    int64                       `json:"yields"`
	Total     int64                       `json:"total_ops"`
	Ops       []OpCount                   `json:"ops,omitempty"`
	ResumeLat telemetry.HistogramSnapshot `json:"resume_latency_ns"`
}

// SnapshotProfile returns every unit's accumulated profile, busiest first.
func SnapshotProfile() []ProcProfile {
	profiles.Lock()
	list := append([]*CodeProfile(nil), profiles.list...)
	profiles.Unlock()
	out := make([]ProcProfile, 0, len(list))
	for _, p := range list {
		pp := ProcProfile{
			Name:      p.name,
			Calls:     p.calls.Load(),
			Yields:    p.yields.Load(),
			ResumeLat: p.resume.Snapshot(),
		}
		for op := 0; op < compile.NumOps; op++ {
			if n := p.ops[op].Load(); n > 0 {
				pp.Ops = append(pp.Ops, OpCount{Op: compile.Op(op).Name(), Count: n})
				pp.Total += n
			}
		}
		sort.Slice(pp.Ops, func(i, j int) bool { return pp.Ops[i].Count > pp.Ops[j].Count })
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// WriteText renders the profile as the REPL's :prof table.
func WriteText(w io.Writer) {
	snap := SnapshotProfile()
	if len(snap) == 0 {
		fmt.Fprintln(w, "vm profile: no data (is profiling enabled and VM execution active?)")
		return
	}
	for _, pp := range snap {
		fmt.Fprintf(w, "%s  calls=%d yields=%d ops=%d", pp.Name, pp.Calls, pp.Yields, pp.Total)
		if r := pp.ResumeLat; r.Count > 0 {
			fmt.Fprintf(w, "  resume p50=%.0fns p99=%.0fns p999=%.0fns max=%dns",
				r.P50, r.P99, r.P999, r.Max)
		}
		fmt.Fprintln(w)
		for i, oc := range pp.Ops {
			if i >= 10 {
				fmt.Fprintf(w, "    … %d more opcodes\n", len(pp.Ops)-i)
				break
			}
			pct := 0.0
			if pp.Total > 0 {
				pct = 100 * float64(oc.Count) / float64(pp.Total)
			}
			fmt.Fprintf(w, "    %-14s %12d  %5.1f%%\n", oc.Op, oc.Count, pct)
		}
	}
}

// noteResume records the latency between the frame's last suspension and
// this resume. Called only when profiling was on at Next entry.
func (f *Frame) noteResume(p *CodeProfile) {
	if f.suspendedAt != 0 {
		p.resume.Observe(time.Now().UnixNano() - f.suspendedAt)
		f.suspendedAt = 0
	}
}
