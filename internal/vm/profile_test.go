package vm_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"junicon/internal/vm"
)

// runProfiled drives a compiled program with profiling on and returns the
// snapshot, resetting profiler state around the run.
func runProfiled(t *testing.T, program, expr string, n int) []vm.ProcProfile {
	t.Helper()
	vm.ResetProfile()
	vm.EnableProfiling()
	defer vm.DisableProfiling()
	in := vmInterp(t, program)
	g, err := in.EvalGen(expr)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	drain(g, n)
	return vm.SnapshotProfile()
}

func TestProfileCountsOpsAndYields(t *testing.T) {
	snap := runProfiled(t, `
procedure nums(n)
  local i
  every i := 1 to n do suspend i
end`, "nums(50)", 100)
	var proc *vm.ProcProfile
	for i := range snap {
		if snap[i].Name == "nums" {
			proc = &snap[i]
		}
	}
	if proc == nil {
		t.Fatalf("no profile for nums; got %+v", snap)
	}
	if proc.Yields < 50 {
		t.Fatalf("yields = %d, want >= 50", proc.Yields)
	}
	if proc.Calls < 1 {
		t.Fatalf("calls = %d, want >= 1", proc.Calls)
	}
	if proc.Total <= 0 || len(proc.Ops) == 0 {
		t.Fatalf("no opcode counts recorded: %+v", proc)
	}
	// suspend-to-resume latency: every yield but the last was resumed.
	if proc.ResumeLat.Count < 40 {
		t.Fatalf("resume latency count = %d, want >= 40", proc.ResumeLat.Count)
	}
	if !(proc.ResumeLat.P50 <= proc.ResumeLat.P99 && proc.ResumeLat.P99 <= proc.ResumeLat.P999) {
		t.Fatalf("resume percentiles out of order: %+v", proc.ResumeLat)
	}
}

func TestProfileOffIsInvisible(t *testing.T) {
	vm.ResetProfile()
	vm.DisableProfiling()
	in := vmInterp(t, `
procedure quiet(n)
  local i
  every i := 1 to n do suspend i
end`)
	g, err := in.EvalGen("quiet(10)")
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	drain(g, 20)
	for _, pp := range vm.SnapshotProfile() {
		if pp.Name == "quiet" && pp.Total > 0 {
			t.Fatalf("profiling disabled but counts recorded: %+v", pp)
		}
	}
}

func TestProfileWriteText(t *testing.T) {
	runProfiled(t, `
procedure trip(n)
  local i
  every i := 1 to n do suspend i * 3
end`, "trip(5)", 10)
	var buf bytes.Buffer
	vm.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, "trip") {
		t.Fatalf("text profile missing procedure name:\n%s", out)
	}
	if !strings.Contains(out, "yields=") || !strings.Contains(out, "ops=") {
		t.Fatalf("text profile missing counters:\n%s", out)
	}
}

func TestProfileWritePprof(t *testing.T) {
	runProfiled(t, `
procedure pp(n)
  local i
  every i := 1 to n do suspend i
end`, "pp(20)", 40)
	var buf bytes.Buffer
	if err := vm.WritePprof(&buf); err != nil {
		t.Fatalf("WritePprof: %v", err)
	}
	// The profile must be valid gzip whose payload mentions the procedure
	// and sample-type strings (the string table is stored verbatim).
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for _, want := range []string{"pp", "ops", "count", "junicon-vm"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("profile payload missing %q", want)
		}
	}
}
