//go:build !race

// Allocation guards for the vm's steady state. testing.AllocsPerRun is
// meaningless under -race (the detector allocates), so this file is built
// out of race runs; CI runs it in the plain test pass.

package vm_test

import (
	"io"
	"testing"

	"junicon/internal/interp"
	"junicon/internal/value"
	"junicon/internal/vm"
)

// TestSteadyStateAllocs pins the headline frame property: once a frame is
// warm, suspending and resuming it allocates nothing. The ranges stay
// inside the interned small-integer window so yielded values are free too.
func TestSteadyStateAllocs(t *testing.T) {
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	cases := []struct {
		name, expr string
		results    int
	}{
		{"range", "1 to 256", 256},
		{"range-by", "1 to 1000 by 4", 250},
		{"product", "(1 to 16) * (1 to 16)", 256},
		{"alternation", "(1 to 100) | (1 to 100)", 200},
		{"limit", "(1 to 1000) \\ 100", 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := mustFrame(t, in, c.expr)
			// Warm run: first drain grows the operand/choice stacks.
			warm := drainCount(t, f, c.results)
			if warm != c.results {
				t.Fatalf("warm drain produced %d results, want %d", warm, c.results)
			}
			// Auto-restarted steady-state drains must not allocate.
			allocs := testing.AllocsPerRun(10, func() {
				if n := drainCountFast(f); n != c.results {
					t.Fatalf("steady drain produced %d results, want %d", n, c.results)
				}
			})
			if allocs != 0 {
				t.Errorf("steady-state drain allocates %.1f per run, want 0", allocs)
			}
		})
	}
}

// TestFrameReuseAllocs pins frame recycling across Restart: restarting and
// re-draining a generator frame is allocation-free — the frame, slots,
// stacks and choice points are all reused in place.
func TestFrameReuseAllocs(t *testing.T) {
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	f := mustFrame(t, in, "1 to 128")
	drainCount(t, f, 128)
	allocs := testing.AllocsPerRun(10, func() {
		f.Restart()
		if n := drainCountFast(f); n != 128 {
			t.Fatalf("drain after Restart produced %d results", n)
		}
	})
	if allocs != 0 {
		t.Errorf("Restart+drain allocates %.1f per run, want 0", allocs)
	}
}

// TestCompiledCallAllocs pins the call-site frame cache: a compiled caller
// driving a compiled callee reuses the cached child frame, so the steady
// state of a cross-procedure generator drain is allocation-free as well.
func TestCompiledCallAllocs(t *testing.T) {
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	if err := in.LoadProgram(`def gen(n) { suspend 1 to n; }`); err != nil {
		t.Fatal(err)
	}
	f := mustFrame(t, in, "gen(200)")
	drainCount(t, f, 200)
	allocs := testing.AllocsPerRun(10, func() {
		if n := drainCountFast(f); n != 200 {
			t.Fatalf("steady drain produced %d results", n)
		}
	})
	if allocs != 0 {
		t.Errorf("compiled call drain allocates %.1f per run, want 0", allocs)
	}
}

// TestSnapshotLeavesDrainAllocFree pins the durability layer's zero-cost
// claim: the snapshot machinery lives entirely off the hot path, so a
// frame that has been captured mid-iteration still drains with zero
// allocations afterwards — Next pays nothing for snapshot support,
// before or after a capture.
func TestSnapshotLeavesDrainAllocFree(t *testing.T) {
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	if err := in.LoadProgram(`def gen(n) { suspend 1 to n; }`); err != nil {
		t.Fatal(err)
	}
	f := mustFrame(t, in, "gen(200)")
	// Suspend mid-iteration and capture the tower (caller + live child).
	for i := 0; i < 7; i++ {
		if _, ok := f.Next(); !ok {
			t.Fatalf("frame exhausted after %d values", i)
		}
	}
	if _, err := vm.Capture(f); err != nil {
		t.Fatalf("capture: %v", err)
	}
	if n := drainCountFast(f); n != 193 {
		t.Fatalf("post-capture drain produced %d results, want 193", n)
	}
	// Auto-restarted steady-state drains after the capture stay free.
	allocs := testing.AllocsPerRun(10, func() {
		if n := drainCountFast(f); n != 200 {
			t.Fatalf("steady drain produced %d results, want 200", n)
		}
	})
	if allocs != 0 {
		t.Errorf("drain after snapshot allocates %.1f per run, want 0", allocs)
	}
}

// drainCount drains the exhausted-or-fresh frame once, counting results.
func drainCount(t *testing.T, g interface {
	Next() (value.V, bool)
}, want int) int {
	t.Helper()
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			return n
		}
		n++
		if n > want {
			t.Fatalf("drain exceeded %d results", want)
		}
	}
}

// drainCountFast is drainCount without the testing plumbing (so the
// AllocsPerRun body itself is allocation-free).
func drainCountFast(g interface {
	Next() (value.V, bool)
}) int {
	n := 0
	for {
		if _, ok := g.Next(); !ok {
			return n
		}
		n++
	}
}
