package vm_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"junicon/internal/semtest"
)

// fuzzPrelude gives fuzzed expressions some procedures to call.
const fuzzPrelude = `
def gen(a, b) { suspend a to b; }
def double(x) { return x * 2; }
`

// FuzzCompiledSemantics is the compiler's property test: any expression the
// tree walk accepts must behave identically under compiled execution — same
// values in the same order, failing at the same point, raising the same
// error if one is raised. Expressions the parser rejects or that error at
// load are skipped (they never reach the vm). The seed corpus mixes the
// semtest grammars with the repo's example programs' idioms; seeds are
// finite so `go test` stays fast, and unbounded exploration only happens
// under an explicit -fuzz run (where an adversarial infinite generator can
// hang an iteration — the per-case Max bound caps every drain regardless).
func FuzzCompiledSemantics(f *testing.F) {
	for _, seed := range []string{
		"1 to 10",
		"(1 to 3) & (4 | 5)",
		"(|(1 to 2)) \\ 9",
		"![1, 2, 3] * (1 | 10)",
		"gen(1, 5) + double(2)",
		`"a" + 1`,
		"(1 to 5) > 3",
		"if 1 > 2 then 9 else (5 to 7)",
		"case (1 to 4) of { 2: \"two\"; default: \"other\" }",
		"{ x := 3; x +:= (1 to 2); x }",
		"not (1 to 0)",
		"*\"abc\" to *\"abcdef\"",
	} {
		f.Add(seed)
	}
	eg := rand.New(rand.NewSource(7))
	for i := 0; i < 12; i++ {
		f.Add(semtest.RandomExpr(eg, 3))
	}
	// Expression lines mined from the shipped example programs keep the
	// corpus anchored to real idioms, not just the random grammar's.
	for _, line := range exampleLines(f) {
		f.Add(line)
	}
	f.Fuzz(func(t *testing.T, expr string) {
		if len(expr) > 512 {
			t.Skip("oversized input")
		}
		c := semtest.Case{Name: "fuzz", Program: fuzzPrelude, Expr: expr, Max: 100}
		ref, err := semtest.Sequential(c)
		if err != nil {
			t.Skip("rejected by the reference lane")
		}
		got, err := semtest.Compiled(c)
		if err != nil {
			t.Fatalf("compiled lane errored where reference did not: %v", err)
		}
		if !got.Equal(ref) {
			t.Fatalf("compiled diverged on %q:\nref = %s\ngot = %s", expr, ref, got)
		}
	})
}

// exampleLines extracts candidate expression snippets from testdata
// programs: single-line suspend/return bodies with the keyword stripped.
func exampleLines(f *testing.F) []string {
	var out []string
	files, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.jn"))
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
			for _, kw := range []string{"suspend ", "return ", "every "} {
				if rest, ok := strings.CutPrefix(line, kw); ok && rest != "" {
					out = append(out, rest)
				}
			}
		}
	}
	if len(out) == 0 {
		f.Log("no testdata expression lines found")
	}
	return out
}
