package core

import (
	"junicon/internal/value"
)

// Assignment operators. Targets are reified variables (or expressions
// generating them); assignments are generative through their operands and,
// for the reversible forms, undo themselves when resumed — the "optionally
// reversible" iteration of §5B.

func mustVar(v V) *value.Var {
	r, ok := v.(*value.Var)
	if !ok {
		value.Raise(value.ErrIndex, "variable expected", v)
	}
	return r
}

// assignGen implements x := e over generator operands: for each (target,
// value) pair in the operand product, assign and yield the target variable.
type assignGen struct {
	inner Gen
}

// Assign implements target := src. Both operands are generators; the result
// sequence yields the assigned variable (a reference, as in Icon).
func Assign(target, src Gen) Gen {
	return Apply2(func(t, v V) Gen { return Unit(assignOnce(t, v)) }, varOperand(target), src)
}

// AssignVar is the common normalized case where the target is a known
// reified variable.
func AssignVar(t *value.Var, src Gen) Gen {
	return Apply1(func(v V) Gen {
		t.Set(value.Deref(v))
		return Unit(t)
	}, src)
}

func assignOnce(t, v V) V {
	r := mustVar(unshield(t))
	r.Set(value.Deref(v))
	return r
}

// varOperand wraps a generator so its results are NOT dereferenced — the
// assignment target must remain a variable. Apply2 derefs its operands, so
// we shield targets in a single-element list.
func varOperand(g Gen) Gen { return &shieldGen{e: g} }

type shieldGen struct{ e Gen }

func (s *shieldGen) Next() (V, bool) {
	v, ok := s.e.Next()
	if !ok {
		return nil, false
	}
	return shielded{v}, true
}
func (s *shieldGen) Restart() { s.e.Restart() }

type shielded struct{ v V }

func (s shielded) Type() string  { return "variable" }
func (s shielded) Image() string { return value.Image(s.v) }

func unshield(v V) V {
	if s, ok := v.(shielded); ok {
		return s.v
	}
	return v
}

// revAssignGen implements reversible assignment x <- e: assign, yield, and
// on resumption restore the original value before resuming e; when e is
// exhausted the original value is restored and the expression fails.
type revAssignGen struct {
	t     *value.Var
	e     Gen
	saved V
	live  bool
}

func (g *revAssignGen) Next() (V, bool) {
	if g.live {
		g.t.Set(g.saved)
		g.live = false
	}
	v, ok := g.e.Next()
	if !ok {
		return nil, false
	}
	g.saved = g.t.Get()
	g.t.Set(value.Deref(v))
	g.live = true
	return g.t, true
}

func (g *revAssignGen) Restart() {
	if g.live {
		g.t.Set(g.saved)
		g.live = false
	}
	g.e.Restart()
}

// RevAssignVar implements x <- e for a known target variable.
func RevAssignVar(t *value.Var, src Gen) Gen { return &revAssignGen{t: t, e: src} }

// SwapVars implements x :=: y, exchanging values and yielding x.
func SwapVars(x, y *value.Var) Gen {
	return Defer(func() Gen {
		xv, yv := x.Get(), y.Get()
		x.Set(yv)
		y.Set(xv)
		return Unit(x)
	})
}

// revSwapGen implements reversible exchange x <-> y.
type revSwapGen struct {
	x, y *value.Var
	live bool
	sx   V
	sy   V
}

func (g *revSwapGen) Next() (V, bool) {
	if g.live {
		g.x.Set(g.sx)
		g.y.Set(g.sy)
		g.live = false
		return nil, false
	}
	g.sx, g.sy = g.x.Get(), g.y.Get()
	g.x.Set(g.sy)
	g.y.Set(g.sx)
	g.live = true
	return g.x, true
}

func (g *revSwapGen) Restart() {
	if g.live {
		g.x.Set(g.sx)
		g.y.Set(g.sy)
		g.live = false
	}
}

// RevSwapVars implements x <-> y: exchange, and undo when resumed.
func RevSwapVars(x, y *value.Var) Gen { return &revSwapGen{x: x, y: y} }

// AugAssignVar implements x op:= e for a binary operation op.
func AugAssignVar(t *value.Var, op func(a, b V) V, src Gen) Gen {
	return Apply1(func(v V) Gen {
		t.Set(op(t.Get(), value.Deref(v)))
		return Unit(t)
	}, src)
}

// CmpAugAssignVar implements x op:= e for conditional operations (x <:= e):
// assigns only when the operation succeeds, else fails.
func CmpAugAssignVar(t *value.Var, op func(a, b V) (V, bool), src Gen) Gen {
	return Apply1(func(v V) Gen {
		r, ok := op(t.Get(), value.Deref(v))
		if !ok {
			return Empty()
		}
		t.Set(r)
		return Unit(t)
	}, src)
}
