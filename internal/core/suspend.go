package core

import (
	"iter"

	"junicon/internal/value"
)

// Suspendable generator functions. A Unicon method containing suspend
// becomes, in translation, a generator whose body runs until the next
// suspend and statefully resumes there on the following Next (§5B: "the
// kernel is optimized to statefully resume its point of suspension").
//
// NewGen realizes that with iter.Pull, which parks the body on a runtime
// coroutine — suspension without multithreading, exactly the property the
// paper claims over thread-based coroutine emulations (§8).

// pullGen adapts a push-style body to the kernel protocol.
type pullGen struct {
	body func(yield func(V) bool)
	next func() (V, bool)
	stop func()
}

func (g *pullGen) Next() (V, bool) {
	if g.next == nil {
		g.next, g.stop = iter.Pull(iter.Seq[V](g.body))
	}
	v, ok := g.next()
	if !ok {
		g.reset()
		return nil, false
	}
	if v == nil {
		v = value.NullV
	}
	return v, true
}

func (g *pullGen) Restart() { g.reset() }

func (g *pullGen) reset() {
	if g.stop != nil {
		g.stop()
	}
	g.next, g.stop = nil, nil
}

// NewGen builds a generator from a body written in push style: the body
// calls yield for each suspend; returning ends the sequence (fail). If
// yield reports false the consumer has abandoned iteration and the body
// must return promptly.
//
// The resulting generator auto-restarts: after the body returns, a
// subsequent Next runs a fresh instance of the body.
func NewGen(body func(yield func(V) bool)) Gen { return &pullGen{body: body} }

// GenProc wraps a push-style generator function as a procedure value: the
// analogue of a Unicon `method f(a, b) { … suspend e … }` definition.
// Each invocation gets its own suspendable body instance.
func GenProc(name string, arity int, body func(args []V, yield func(V) bool)) *value.Proc {
	return value.NewProc(name, arity, func(args ...V) Gen {
		captured := make([]V, len(args))
		copy(captured, args)
		return NewGen(func(yield func(V) bool) { body(captured, yield) })
	})
}

// ValProc wraps a plain single-result Go function as a procedure value; a
// nil result means failure. This is the convenient form for host functions
// participating in goal-directed evaluation.
func ValProc(name string, arity int, f func(args []V) V) *value.Proc {
	return value.NewProc(name, arity, func(args ...V) Gen {
		v := f(args)
		if v == nil {
			return Empty()
		}
		return Unit(v)
	})
}
