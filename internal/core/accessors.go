package core

import (
	"math/rand"

	"junicon/internal/value"
)

// This file packages the remaining Unicon operations as kernel combinators
// shared by the interpreter and by translated code (the generated Go of the
// translate package calls exactly these constructors, as Figure 5's Java
// calls IconProduct/IconIn/IconPromote).

// IndexGen composes subscripting x[i] over generator operands, yielding
// updatable references for structures; out-of-range subscripts fail.
func IndexGen(x, i Gen) Gen {
	return Apply2(func(c, iv V) Gen {
		v, ok := value.Subscript(c, iv)
		if !ok {
			return Empty()
		}
		return Unit(v)
	}, x, i)
}

// SectionGen composes sectioning x[i:j] over generator operands.
func SectionGen(x, i, j Gen) Gen {
	return Op3(func(c, iv, jv V) Gen {
		v, ok := value.Section(c, iv, jv)
		if !ok {
			return Empty()
		}
		return Unit(v)
	}, x, i, j)
}

// FieldGen composes field access x.name over a generator operand; a missing
// field raises Icon error 207.
func FieldGen(x Gen, name string) Gen {
	return Apply1(func(r V) Gen {
		v, ok := value.Field(r, name)
		if !ok {
			value.Raise(value.ErrField, "missing field "+name, value.Deref(r))
		}
		return Unit(v)
	}, x)
}

// ActivateGen composes activation: transmit @ c (unary @c when transmit is
// nil). Failure of the co-expression fails the expression.
func ActivateGen(transmit, c Gen) Gen {
	if transmit == nil {
		transmit = Unit(value.NullV)
	}
	return Apply2(func(tv, cv V) Gen {
		v, ok := Step(cv, tv)
		if !ok {
			return Empty()
		}
		return Unit(v)
	}, transmit, c)
}

// NullTest implements /x: succeeds with null when the operand is null.
func NullTest(e Gen) Gen {
	return Cmp1(func(v V) (V, bool) {
		if value.IsNull(value.Deref(v)) {
			return value.NullV, true
		}
		return nil, false
	}, e)
}

// NonNullTest implements \x: succeeds with the value when non-null.
func NonNullTest(e Gen) Gen {
	return Cmp1(func(v V) (V, bool) {
		d := value.Deref(v)
		if value.IsNull(d) {
			return nil, false
		}
		return d, true
	}, e)
}

// LimitGen implements e \ n with a generator-valued count: the count is
// evaluated first, as in Icon.
func LimitGen(e, n Gen) Gen {
	return Apply1(func(nv V) Gen {
		// e is captured here, not an Apply1 operand (the limit applies to
		// its whole sequence), so an external Restart of this expression
		// cannot reach it. Restart it when a limit cycle begins instead:
		// without this, a bounded re-execution (loop body, product
		// re-drive) would resume a suspended e and fail one spurious time
		// before e's own auto-restart kicked in.
		e.Restart()
		return Limit(e, value.MustInt(nv))
	}, n)
}

// SizeOp implements unary *x, including co-expression/pipe sizes.
func SizeOp(e Gen) Gen {
	return Op1(func(v V) V {
		if s, ok := value.Deref(v).(value.Sized); ok {
			return value.IntV(int64(s.Size()))
		}
		return value.Size(v)
	}, e)
}

// RandomElement implements ?x for integers, strings and lists; empty
// operands fail.
func RandomElement(v V) (V, bool) {
	switch x := value.Deref(v).(type) {
	case value.Integer:
		n, ok := x.Int64()
		if !ok || n < 1 {
			return nil, false
		}
		return value.IntV(1 + rand.Int63n(n)), true
	case value.String:
		if len(x) == 0 {
			return nil, false
		}
		i := rand.Intn(len(x))
		return x[i : i+1], true
	case *value.List:
		if x.Len() == 0 {
			return nil, false
		}
		e, _ := x.At(1 + rand.Intn(x.Len()))
		return e, true
	default:
		return nil, false
	}
}

// RandomGen composes ?x over a generator operand.
func RandomGen(e Gen) Gen { return Cmp1(RandomElement, e) }

// CaseMatches reports whether any result of sel is equivalent (===) to
// subject; sel is left restarted.
func CaseMatches(subject V, sel Gen) bool {
	matched := false
	Each(sel, func(v V) bool {
		if value.Equiv(subject, v) {
			matched = true
			return false
		}
		return true
	})
	sel.Restart()
	return matched
}

// BreakGen raises the kernel break signal when stepped (break in expression
// position, caught by the enclosing kernel loop).
func BreakGen(e Gen) Gen { return sigGen{f: func() { Break(e) }} }

// NextGen raises the kernel next signal when stepped.
func NextGen() Gen { return sigGen{f: NextIter} }

type sigGen struct{ f func() }

func (g sigGen) Next() (V, bool) { g.f(); return nil, false }
func (g sigGen) Restart()        {}

// ListOf constructs [e1, e2, …]. Like every Icon operation, the
// constructor searches the product space of its operand sequences (§2A):
// [1 to 2, 5] generates [1,5] and [2,5]; failure of any element fails the
// constructor. (The generative normalization-equivalence test caught an
// earlier bounded-element version of this — normalization hoists list
// elements into bound iterators, which searches them.)
func ListOf(elems ...Gen) Gen {
	if len(elems) == 0 {
		return Defer(func() Gen { return Unit(value.NewList()) })
	}
	tuple := Op1(func(v V) V { return value.NewList(v) }, elems[0])
	for _, e := range elems[1:] {
		tuple = Op2(func(acc, x V) V {
			l := acc.(*value.List).Copy()
			l.Put(x)
			return l
		}, tuple, e)
	}
	return tuple
}

// ---- assignment over target generators ----
//
// Targets are generators of variables. The shield protects the variables
// from the operand dereferencing of the Apply combinators.

type shieldVarsGen struct{ e Gen }

type heldVar struct{ v *value.Var }

func (h heldVar) Type() string  { return "variable" }
func (h heldVar) Image() string { return h.v.Image() }

func (s *shieldVarsGen) Next() (V, bool) {
	v, ok := s.e.Next()
	if !ok {
		return nil, false
	}
	if cell, isVar := v.(*value.Var); isVar {
		return heldVar{v: cell}, true
	}
	return v, true
}

func (s *shieldVarsGen) Restart() { s.e.Restart() }

func mustHeldVar(v V, op string) *value.Var {
	if h, ok := v.(heldVar); ok {
		return h.v
	}
	if cell, ok := v.(*value.Var); ok {
		return cell
	}
	value.Raise(value.ErrIndex, "variable expected in "+op, v)
	panic("unreachable")
}

// RevAssignTo implements target <- src where target generates variables.
// src stays closure-captured (RevAssignVar owns its save/restore cycle per
// target variable), so it is restarted explicitly per application — an
// externally restarted reversible assignment must not resume a suspended
// src (see AugAssignTo).
func RevAssignTo(target, src Gen) Gen {
	return Apply1(func(tv V) Gen {
		src.Restart()
		return RevAssignVar(mustHeldVar(tv, "<-"), src)
	}, &shieldVarsGen{e: target})
}

// SwapTo implements l :=: r over variable-generating targets.
func SwapTo(l, r Gen) Gen {
	return Apply2(func(lv, rv V) Gen {
		return SwapVars(mustHeldVar(lv, ":=:"), mustHeldVar(rv, ":=:"))
	}, &shieldVarsGen{e: l}, &shieldVarsGen{e: r})
}

// RevSwapTo implements l <-> r over variable-generating targets.
func RevSwapTo(l, r Gen) Gen {
	return Apply2(func(lv, rv V) Gen {
		return RevSwapVars(mustHeldVar(lv, "<->"), mustHeldVar(rv, "<->"))
	}, &shieldVarsGen{e: l}, &shieldVarsGen{e: r})
}

// AugAssignTo implements target op:= src for plain operations. src must be
// an Apply2 operand, not captured in the application closure: a closure
// capture would hide it from Restart, and a bounded re-execution (a loop
// body) would then resume src mid-sequence instead of restarting it.
func AugAssignTo(op func(a, b V) V, target, src Gen) Gen {
	return Apply2(func(tv, sv V) Gen {
		t := mustHeldVar(tv, "op:=")
		t.Set(op(t.Get(), sv))
		return Unit(t)
	}, &shieldVarsGen{e: target}, src)
}

// CmpAugAssignTo implements target op:= src for conditional operations.
// Like AugAssignTo, src is an Apply2 operand so Restart reaches it.
func CmpAugAssignTo(op func(a, b V) (V, bool), target, src Gen) Gen {
	return Apply2(func(tv, sv V) Gen {
		t := mustHeldVar(tv, "op:=")
		r, ok := op(t.Get(), sv)
		if !ok {
			return Empty()
		}
		t.Set(r)
		return Unit(t)
	}, &shieldVarsGen{e: target}, src)
}

// ArithOp returns the kernel function for a binary arithmetic/construction
// operator symbol, for use by the interpreter and translated code.
func ArithOp(op string) (func(a, b V) V, bool) {
	f, ok := arithOps[op]
	return f, ok
}

// CompareOp returns the kernel function for a conditional comparison
// operator symbol.
func CompareOp(op string) (func(a, b V) (V, bool), bool) {
	f, ok := compareOps[op]
	return f, ok
}

var arithOps = map[string]func(a, b V) V{
	"+":   value.Add,
	"-":   value.Sub,
	"*":   value.Mul,
	"/":   value.Div,
	"%":   value.Mod,
	"^":   value.Pow,
	"||":  value.Concat,
	"|||": value.ListConcat,
	"++":  value.Union,
	"--":  value.Difference,
	"**":  value.Intersection,
}

var compareOps = map[string]func(a, b V) (V, bool){
	"<":    value.NumLt,
	"<=":   value.NumLe,
	">":    value.NumGt,
	">=":   value.NumGe,
	"~=":   value.NumNe,
	"<<":   value.StrLt,
	"<<=":  value.StrLe,
	">>":   value.StrGt,
	">>=":  value.StrGe,
	"==":   value.StrEq,
	"~==":  value.StrNe,
	"===":  value.Same,
	"~===": value.NotSame,
}
