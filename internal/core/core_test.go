package core

import (
	"strings"
	"testing"

	"junicon/internal/value"
)

// ints drains g and returns results as int64s, failing the test on
// non-integer results.
func ints(t *testing.T, g Gen) []int64 {
	t.Helper()
	var out []int64
	for _, v := range Drain(g, 10000) {
		i, ok := value.ToInteger(v)
		if !ok {
			t.Fatalf("non-integer result %s", value.Image(v))
		}
		n, _ := i.Int64()
		out = append(out, n)
	}
	return out
}

func eqInts(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
			return
		}
	}
}

func TestUnitAndEmpty(t *testing.T) {
	eqInts(t, ints(t, Unit(value.NewInt(7))), 7)
	if _, ok := Empty().Next(); ok {
		t.Fatal("Empty must fail")
	}
}

func TestAutoRestartAfterFailure(t *testing.T) {
	// The paper: "After failure, the iterator is then restarted on the
	// following next()."
	g := Values(value.NewInt(1), value.NewInt(2))
	first := ints(t, g)
	second := ints(t, g)
	eqInts(t, first, 1, 2)
	eqInts(t, second, 1, 2)
}

func TestRange(t *testing.T) {
	eqInts(t, ints(t, IntRange(1, 4)), 1, 2, 3, 4)
	eqInts(t, ints(t, Range(value.NewInt(10), value.NewInt(1), value.NewInt(-3))), 10, 7, 4, 1)
	eqInts(t, ints(t, IntRange(5, 4))) // empty
	// Real steps.
	got := Drain(Range(value.Real(0), value.Real(1), value.Real(0.5)), 0)
	if len(got) != 3 {
		t.Fatalf("real range: %v", got)
	}
}

func TestProductSearchesCrossProduct(t *testing.T) {
	// (1 to 2) & (10 to 12) yields the right operand per combination.
	g := Product(IntRange(1, 2), IntRange(10, 12))
	eqInts(t, ints(t, g), 10, 11, 12, 10, 11, 12)
}

func TestProductFailurePropagates(t *testing.T) {
	g := Product(Empty(), IntRange(1, 3))
	eqInts(t, ints(t, g))
	g = Product(IntRange(1, 3), Empty())
	eqInts(t, ints(t, g))
}

func TestAltConcatenatesSequences(t *testing.T) {
	g := Alt(IntRange(1, 2), IntRange(8, 9))
	eqInts(t, ints(t, g), 1, 2, 8, 9)
	// Redrain: auto-restart.
	eqInts(t, ints(t, g), 1, 2, 8, 9)
}

func TestLimit(t *testing.T) {
	eqInts(t, ints(t, Limit(IntRange(1, 100), 3)), 1, 2, 3)
	eqInts(t, ints(t, Limit(IntRange(1, 2), 5)), 1, 2)
	eqInts(t, ints(t, Limit(IntRange(1, 5), 0)))
	// Limit resets per cycle.
	g := Limit(IntRange(1, 100), 2)
	eqInts(t, ints(t, g), 1, 2)
	eqInts(t, ints(t, g), 1, 2)
}

func TestBoundProducesOneUnresumableResult(t *testing.T) {
	g := Bound(IntRange(1, 5))
	eqInts(t, ints(t, g), 1)
	eqInts(t, ints(t, g), 1)
}

func TestSequenceDelegatesToLastTerm(t *testing.T) {
	count := 0
	sideEffect := Defer(func() Gen {
		count++
		return Unit(value.NullV)
	})
	g := Sequence(sideEffect, IntRange(5, 7))
	eqInts(t, ints(t, g), 5, 6, 7)
	if count != 1 {
		t.Fatalf("prefix evaluated %d times, want 1", count)
	}
	// Failure of a prefix term does not abort the sequence.
	g = Sequence(Empty(), IntRange(1, 2))
	eqInts(t, ints(t, g), 1, 2)
}

func TestRepeatAlt(t *testing.T) {
	g := Limit(RepeatAlt(IntRange(1, 2)), 5)
	eqInts(t, ints(t, g), 1, 2, 1, 2, 1)
	// |(empty) fails rather than spinning.
	eqInts(t, ints(t, RepeatAlt(Empty())))
}

func TestInBindsVariable(t *testing.T) {
	x := value.NewCell(value.NullV)
	g := In(x, IntRange(4, 6))
	var seen []int64
	Each(g, func(value.V) bool {
		i, _ := value.ToInteger(x.Get())
		n, _ := i.Int64()
		seen = append(seen, n)
		return true
	})
	eqInts(t, seen, 4, 5, 6)
}

func TestFlattenedPrimeMultiples(t *testing.T) {
	// The paper's running example: (1 to 2) * isprime(4 to 7)
	// ≡ i=(1 to 2) & j=(4 to 7) & isprime(j) & i*j → 5, 7, 10, 14.
	isprime := ValProc("isprime", 1, func(a []value.V) value.V {
		n := value.MustInt(a[0])
		if n < 2 {
			return nil
		}
		for d := 2; d*d <= n; d++ {
			if n%d == 0 {
				return nil
			}
		}
		return value.Deref(a[0])
	})
	i := value.NewCell(value.NullV)
	j := value.NewCell(value.NullV)
	// Defer plays the role of the paper's IconInvokeIterator: the invocation
	// closure re-evaluates each cycle, seeing the current variable bindings.
	g := Product(
		In(i, IntRange(1, 2)),
		In(j, IntRange(4, 7)),
		Defer(func() Gen { return InvokeVal(isprime, j.Get()) }),
		Defer(func() Gen { return Unit(value.Mul(i.Get(), j.Get())) }),
	)
	eqInts(t, ints(t, g), 5, 7, 10, 14)

	// The same expression via the operator composition engine.
	g2 := Op2(value.Mul, IntRange(1, 2),
		Apply1(func(v value.V) Gen { return InvokeVal(isprime, v) }, IntRange(4, 7)))
	eqInts(t, ints(t, g2), 5, 7, 10, 14)
}

func TestCmp2ResumesOperands(t *testing.T) {
	// (1 to 5) > 3 succeeds for i = 4, 5, producing 3 each time.
	g := Cmp2(value.NumGt, IntRange(1, 5), Unit(value.NewInt(3)))
	eqInts(t, ints(t, g), 3, 3)
}

func TestInvokeGeneratorFunctionPosition(t *testing.T) {
	// (f | g)(x) ≡ f(x) | g(x) (§2A).
	f := ValProc("f", 1, func(a []value.V) value.V { return value.Add(a[0], value.NewInt(100)) })
	gp := ValProc("g", 1, func(a []value.V) value.V { return value.Add(a[0], value.NewInt(200)) })
	g := Invoke(Alt(Unit(f), Unit(gp)), Unit(value.NewInt(1)))
	eqInts(t, ints(t, g), 101, 201)
}

func TestInvokeIntegerMutualEvaluation(t *testing.T) {
	// 2(e1, e2, e3) yields the second argument.
	g := InvokeVal(value.NewInt(2), value.NewInt(10), value.NewInt(20), value.NewInt(30))
	eqInts(t, ints(t, g), 20)
	g = InvokeVal(value.NewInt(-1), value.NewInt(10), value.NewInt(20))
	eqInts(t, ints(t, g), 20)
	if _, ok := InvokeVal(value.NewInt(5), value.NewInt(1)).Next(); ok {
		t.Fatal("out-of-range selection must fail")
	}
}

func TestInvokeNonProcedureRaises(t *testing.T) {
	err := Protect(func() { InvokeVal(value.String("nope")) })
	if err == nil || !strings.Contains(err.Error(), "procedure") {
		t.Fatalf("err = %v", err)
	}
}

func TestNewGenSuspension(t *testing.T) {
	calls := 0
	g := NewGen(func(yield func(V) bool) {
		calls++
		for i := int64(1); i <= 3; i++ {
			if !yield(value.NewInt(i)) {
				return
			}
		}
	})
	v, ok := g.Next()
	if !ok || value.Image(v) != "1" {
		t.Fatalf("first = %v %v", v, ok)
	}
	eqInts(t, ints(t, g), 2, 3)
	// Auto-restart runs a fresh body.
	eqInts(t, ints(t, g), 1, 2, 3)
	if calls != 2 {
		t.Fatalf("body ran %d times, want 2", calls)
	}
}

func TestNewGenRestartMidstream(t *testing.T) {
	g := NewGen(func(yield func(V) bool) {
		for i := int64(1); ; i++ {
			if !yield(value.NewInt(i)) {
				return
			}
		}
	})
	g.Next()
	g.Next()
	g.Restart()
	v, _ := g.Next()
	if value.Image(v) != "1" {
		t.Fatalf("restart should rewind, got %v", value.Image(v))
	}
	g.Restart() // leave no leaked coroutine
}

func TestGenProcEachInvocationIndependent(t *testing.T) {
	counter := GenProc("upto3", 0, func(_ []V, yield func(V) bool) {
		for i := int64(1); i <= 3; i++ {
			if !yield(value.NewInt(i)) {
				return
			}
		}
	})
	a := counter.Call()
	b := counter.Call()
	a.Next()
	v, _ := b.Next()
	if value.Image(v) != "1" {
		t.Fatalf("invocations share state: %v", value.Image(v))
	}
	a.Restart()
	b.Restart()
}

func TestPromoteValues(t *testing.T) {
	l := value.NewList(value.NewInt(1), value.NewInt(2))
	eqInts(t, ints(t, PromoteVal(l)), 1, 2)

	got := Drain(PromoteVal(value.String("abc")), 0)
	if len(got) != 3 || got[0].(value.String) != "a" {
		t.Fatalf("!string = %v", got)
	}

	s := value.NewSet(value.NewInt(3), value.NewInt(1))
	eqInts(t, ints(t, PromoteVal(s)), 1, 3)

	tb := value.NewTable(value.NullV)
	tb.Set(value.String("a"), value.NewInt(10))
	tb.Set(value.String("b"), value.NewInt(20))
	eqInts(t, ints(t, PromoteVal(tb)), 10, 20)
	eqInts(t, ints(t, Drainable(t, KeyVal(tb))))
}

// Drainable checks key generation separately (keys here are strings).
func Drainable(t *testing.T, g Gen) Gen {
	t.Helper()
	keys := Drain(g, 0)
	if len(keys) != 2 || keys[0].(value.String) != "a" {
		t.Fatalf("keys = %v", keys)
	}
	return Empty()
}

func TestPromoteListYieldsUpdatableReferences(t *testing.T) {
	// every !L := 0 zeroes the list.
	l := value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3))
	g := Assign(PromoteVal(l), Unit(value.NewInt(0)))
	Drain(g, 0)
	if l.Image() != "[0,0,0]" {
		t.Fatalf("every !L := 0 gave %s", l.Image())
	}
}

func TestAssignVarYieldsVariable(t *testing.T) {
	x := value.NewCell(value.NullV)
	g := AssignVar(x, IntRange(1, 3))
	v, ok := g.Next()
	if !ok {
		t.Fatal("assign failed")
	}
	if _, isVar := v.(*value.Var); !isVar {
		t.Fatalf("assignment should yield the variable, got %T", v)
	}
	if value.Image(value.Deref(v)) != "1" {
		t.Fatalf("deref = %v", value.Image(value.Deref(v)))
	}
	// Resumption reassigns.
	g.Next()
	if value.Image(x.Get()) != "2" {
		t.Fatalf("x = %v", value.Image(x.Get()))
	}
}

func TestReversibleAssignmentRestoresOnResume(t *testing.T) {
	x := value.NewCell(value.NewInt(0))
	g := RevAssignVar(x, IntRange(1, 2))
	g.Next()
	if value.Image(x.Get()) != "1" {
		t.Fatalf("x after first = %v", value.Image(x.Get()))
	}
	g.Next() // restores 0 then assigns 2
	if value.Image(x.Get()) != "2" {
		t.Fatalf("x after second = %v", value.Image(x.Get()))
	}
	if _, ok := g.Next(); ok {
		t.Fatal("should fail after exhaustion")
	}
	if value.Image(x.Get()) != "0" {
		t.Fatalf("x should be restored to 0, got %v", value.Image(x.Get()))
	}
}

func TestReversibleAssignmentInsideProductBacktracks(t *testing.T) {
	// (x <- (1 to 3)) & (x = 2): on success x stays 2; exhausting the whole
	// expression restores x.
	x := value.NewCell(value.NewInt(99))
	g := Product(
		RevAssignVar(x, IntRange(1, 3)),
		Defer(func() Gen { return Cmp2(value.NumEq, Unit(x.Get()), Unit(value.NewInt(2))) }),
	)
	v, ok := g.Next()
	if !ok || value.Image(value.Deref(v)) != "2" {
		t.Fatalf("first = %v %v", value.Image(value.Deref(v)), ok)
	}
	if value.Image(x.Get()) != "2" {
		t.Fatalf("x during success = %v", value.Image(x.Get()))
	}
	Drain(g, 0)
	if value.Image(x.Get()) != "99" {
		t.Fatalf("x after failure should be restored, got %v", value.Image(x.Get()))
	}
}

func TestSwapAndRevSwap(t *testing.T) {
	x := value.NewCell(value.NewInt(1))
	y := value.NewCell(value.NewInt(2))
	Drain(SwapVars(x, y), 1)
	if value.Image(x.Get()) != "2" || value.Image(y.Get()) != "1" {
		t.Fatal("swap failed")
	}
	g := RevSwapVars(x, y)
	g.Next()
	if value.Image(x.Get()) != "1" {
		t.Fatal("revswap did not exchange")
	}
	g.Next() // fails, restores
	if value.Image(x.Get()) != "2" || value.Image(y.Get()) != "1" {
		t.Fatal("revswap did not restore")
	}
}

func TestAugAssign(t *testing.T) {
	x := value.NewCell(value.NewInt(10))
	Drain(AugAssignVar(x, value.Add, Unit(value.NewInt(5))), 1)
	if value.Image(x.Get()) != "15" {
		t.Fatalf("x +:= 5 = %v", value.Image(x.Get()))
	}
	// Conditional augmented assignment: x <:= e assigns only on success.
	ok := CmpAugAssignVar(x, value.NumLt, Unit(value.NewInt(20)))
	if _, s := ok.Next(); !s {
		t.Fatal("15 <:= 20 should succeed")
	}
	if value.Image(x.Get()) != "20" {
		t.Fatalf("x = %v", value.Image(x.Get()))
	}
	fail := CmpAugAssignVar(x, value.NumLt, Unit(value.NewInt(5)))
	if _, s := fail.Next(); s {
		t.Fatal("20 <:= 5 should fail")
	}
}

func TestWhileLoop(t *testing.T) {
	i := value.NewCell(value.NewInt(0))
	sum := value.NewCell(value.NewInt(0))
	cond := Defer(func() Gen { return Cmp2(value.NumLt, Unit(i.Get()), Unit(value.NewInt(5))) })
	body := Sequence(
		Defer(func() Gen { return AugAssignVar(i, value.Add, Unit(value.NewInt(1))) }),
		Defer(func() Gen { return AugAssignVar(sum, value.Add, Unit(i.Get())) }),
	)
	g := While(cond, body)
	if _, ok := g.Next(); ok {
		t.Fatal("while should fail")
	}
	if value.Image(sum.Get()) != "15" {
		t.Fatalf("sum = %v", value.Image(sum.Get()))
	}
}

func TestUntilLoop(t *testing.T) {
	i := value.NewCell(value.NewInt(0))
	cond := Defer(func() Gen { return Cmp2(value.NumEq, Unit(i.Get()), Unit(value.NewInt(3))) })
	body := Defer(func() Gen { return AugAssignVar(i, value.Add, Unit(value.NewInt(1))) })
	Drain(Until(cond, body), 0)
	if value.Image(i.Get()) != "3" {
		t.Fatalf("i = %v", value.Image(i.Get()))
	}
}

func TestEveryDrivesGenerator(t *testing.T) {
	var seen []int64
	x := value.NewCell(value.NullV)
	body := Defer(func() Gen {
		i, _ := value.ToInteger(x.Get())
		n, _ := i.Int64()
		seen = append(seen, n)
		return Unit(value.NullV)
	})
	g := Every(In(x, IntRange(1, 4)), body)
	if _, ok := g.Next(); ok {
		t.Fatal("every should fail")
	}
	eqInts(t, seen, 1, 2, 3, 4)
}

func TestBreakWithValueTerminatesLoop(t *testing.T) {
	i := value.NewCell(value.NewInt(0))
	body := Defer(func() Gen {
		Drain(AugAssignVar(i, value.Add, Unit(value.NewInt(1))), 1)
		if value.NumCompare(i.Get(), value.NewInt(3)) >= 0 {
			Break(Unit(value.NewInt(42)))
		}
		return Unit(value.NullV)
	})
	g := RepeatLoop(body)
	v, ok := g.Next()
	if !ok || value.Image(value.Deref(v)) != "42" {
		t.Fatalf("break outcome = %v %v", v, ok)
	}
}

func TestNextSignalSkipsRestOfBody(t *testing.T) {
	count := 0
	i := value.NewCell(value.NewInt(0))
	body := Defer(func() Gen {
		Drain(AugAssignVar(i, value.Add, Unit(value.NewInt(1))), 1)
		if value.NumCompare(i.Get(), value.NewInt(5)) >= 0 {
			Break(nil)
		}
		NextIter()
		count++ // unreachable
		return Unit(value.NullV)
	})
	Drain(While(Unit(value.NullV), body), 0)
	if count != 0 {
		t.Fatal("next did not skip body tail")
	}
}

func TestIfThenElseGenerative(t *testing.T) {
	g := IfThen(Unit(value.NewInt(1)), IntRange(1, 2), nil)
	eqInts(t, ints(t, g), 1, 2)
	g = IfThen(Empty(), IntRange(1, 2), IntRange(8, 9))
	eqInts(t, ints(t, g), 8, 9)
	g = IfThen(Empty(), IntRange(1, 2), nil)
	eqInts(t, ints(t, g))
}

func TestNot(t *testing.T) {
	if _, ok := Not(Unit(value.NewInt(1))).Next(); ok {
		t.Fatal("not(success) must fail")
	}
	v, ok := Not(Empty()).Next()
	if !ok || !value.IsNull(v) {
		t.Fatal("not(failure) must succeed with null")
	}
}

func TestCaseExpression(t *testing.T) {
	run := func(subject int64) (string, bool) {
		g := Case(Unit(value.NewInt(subject)),
			[]CaseClause{
				{Sel: Alt(Unit(value.NewInt(1)), Unit(value.NewInt(2))), Body: Unit(value.String("small"))},
				{Sel: Unit(value.NewInt(10)), Body: Unit(value.String("ten"))},
			},
			Unit(value.String("other")))
		v, ok := g.Next()
		if !ok {
			return "", false
		}
		return string(v.(value.String)), true
	}
	for subject, want := range map[int64]string{1: "small", 2: "small", 10: "ten", 99: "other"} {
		if got, ok := run(subject); !ok || got != want {
			t.Fatalf("case(%d) = %q %v, want %q", subject, got, ok, want)
		}
	}
}

func TestFirstClassStepperCalculus(t *testing.T) {
	// <>e, @c, !c, ^c from Figure 1.
	c := NewFirstClass(IntRange(1, 3))
	v, ok := c.Step(value.NullV) // @c
	if !ok || value.Image(v) != "1" {
		t.Fatalf("@c = %v", v)
	}
	if c.Size() != 1 {
		t.Fatalf("*c = %d", c.Size())
	}
	eqInts(t, ints(t, Bang(c)), 2, 3) // !c resumes where @ left off
	c.Refresh()                       // ^c
	eqInts(t, ints(t, Bang(c)), 1, 2, 3)
}

func TestStepOnNonCoexprRaises(t *testing.T) {
	err := Protect(func() { Step(value.NewInt(1), value.NullV) })
	if err == nil || !strings.Contains(err.Error(), "co-expression") {
		t.Fatalf("err = %v", err)
	}
}

func TestDrainFirstEachCount(t *testing.T) {
	if Count(IntRange(1, 10)) != 10 {
		t.Fatal("count")
	}
	v, ok := First(IntRange(5, 9))
	if !ok || value.Image(v) != "5" {
		t.Fatal("first")
	}
	if _, ok := First(Empty()); ok {
		t.Fatal("first of empty")
	}
	if got := Drain(IntRange(1, 100), 3); len(got) != 3 {
		t.Fatalf("drain cap: %d", len(got))
	}
}

func TestProtectPassesThroughForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed")
		}
	}()
	_ = Protect(func() { panic("boom") })
}
