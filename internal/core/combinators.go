package core

import (
	"junicon/internal/value"
)

// product implements e & e' (§2A): for each result of a, iterate b and yield
// b's results. Because generators auto-restart after failure, resuming a
// after b is exhausted re-runs b from the start — the backtracking search of
// goal-directed evaluation.
type product struct {
	a, b    Gen
	aActive bool
}

func (p *product) Next() (V, bool) {
	for {
		if !p.aActive {
			if _, ok := p.a.Next(); !ok {
				return nil, false
			}
			p.aActive = true
		}
		if v, ok := p.b.Next(); ok {
			return v, true
		}
		p.aActive = false
	}
}

func (p *product) Restart() {
	p.a.Restart()
	p.b.Restart()
	p.aActive = false
}

// Product implements the iterator product e & e', the fundamental operator
// embodying both cross-product and conditional evaluation (§2A). With more
// than two operands it associates left.
func Product(gens ...Gen) Gen {
	switch len(gens) {
	case 0:
		return Unit(value.NullV)
	case 1:
		return gens[0]
	}
	g := gens[0]
	for _, h := range gens[1:] {
		g = &product{a: g, b: h}
	}
	return g
}

// fusedProduct is the fact-driven fast path for a product whose leading
// terms are statically pure and yield at most once (analyze.FusablePrefix):
// the prefix is evaluated a single time per lifetime instead of being
// re-driven by the backtracking machinery on every cycle. Purity makes the
// elided re-evaluations unobservable — a pure term re-Nexted after its
// single result deterministically fails, and a pure term that failed once
// fails forever — so the trace is identical to Product's.
type fusedProduct struct {
	prefix []Gen
	tail   Gen
	state  int8 // 0 unevaluated, 1 prefix succeeded, 2 prefix failed
}

func (p *fusedProduct) Next() (V, bool) {
	switch p.state {
	case 0:
		for _, g := range p.prefix {
			if _, ok := g.Next(); !ok {
				p.state = 2
				return nil, false
			}
		}
		p.state = 1
	case 2:
		return nil, false
	}
	return p.tail.Next()
}

func (p *fusedProduct) Restart() {
	for _, g := range p.prefix {
		g.Restart()
	}
	p.tail.Restart()
	p.state = 0
}

// FusedProduct composes a product whose prefix terms are evaluated once
// and whose tail supplies the iteration. The caller guarantees — by
// static analysis — that every prefix term is effect-free and yields at
// most one result; under any other terms the trace differs from
// Product's.
func FusedProduct(prefix []Gen, tail Gen) Gen {
	if len(prefix) == 0 {
		return tail
	}
	return &fusedProduct{prefix: prefix, tail: tail}
}

// inGen implements bound iteration (x in e): each result of e is assigned to
// the reified variable before being yielded, chaining the pieces of a
// flattened primary together (§5A).
type inGen struct {
	v *value.Var
	e Gen
}

func (g *inGen) Next() (V, bool) {
	val, ok := g.e.Next()
	if !ok {
		return nil, false
	}
	d := value.Deref(val)
	g.v.Set(d)
	return val, ok
}

func (g *inGen) Restart() { g.e.Restart() }

// In returns the bound iterator (v in e).
func In(v *value.Var, e Gen) Gen { return &inGen{v: v, e: e} }

// altGen implements alternation e | e' — concatenation of result sequences.
type altGen struct {
	gens []Gen
	i    int
}

func (g *altGen) Next() (V, bool) {
	for g.i < len(g.gens) {
		if v, ok := g.gens[g.i].Next(); ok {
			return v, true
		}
		g.i++
	}
	g.i = 0
	return nil, false
}

func (g *altGen) Restart() {
	for _, h := range g.gens {
		h.Restart()
	}
	g.i = 0
}

// Alt implements alternation e1 | e2 | … .
func Alt(gens ...Gen) Gen {
	if len(gens) == 0 {
		return Empty()
	}
	if len(gens) == 1 {
		return gens[0]
	}
	return &altGen{gens: gens}
}

// limitGen implements e \ n.
type limitGen struct {
	e     Gen
	n     int
	count int
}

func (g *limitGen) Next() (V, bool) {
	if g.count >= g.n {
		g.count = 0
		g.e.Restart()
		return nil, false
	}
	v, ok := g.e.Next()
	if !ok {
		g.count = 0
		return nil, false
	}
	g.count++
	return v, true
}

func (g *limitGen) Restart() {
	g.e.Restart()
	g.count = 0
}

// Limit implements the limitation e \ n: at most n results per cycle.
func Limit(e Gen, n int) Gen {
	if n <= 0 {
		return Empty()
	}
	return &limitGen{e: e, n: n}
}

// boundGen implements a bounded expression: at most one result, and once
// that result is produced the expression cannot be resumed (§2A: sequence
// terms are "singleton iterators that are limited to producing at most one
// result"). Unlike Limit(e,1), Bound discards e's saved state immediately.
type boundGen struct {
	e    Gen
	done bool
}

func (g *boundGen) Next() (V, bool) {
	if g.done {
		g.done = false
		return nil, false
	}
	v, ok := g.e.Next()
	if !ok {
		return nil, false
	}
	g.done = true
	g.e.Restart()
	return v, true
}

func (g *boundGen) Restart() {
	g.e.Restart()
	g.done = false
}

// Bound limits e to a single un-resumable result.
func Bound(e Gen) Gen { return &boundGen{e: e} }

// seqGen implements the sequence a;b;…;z — each term but the last is
// evaluated once (bounded, result discarded, failure ignored), and iteration
// is delegated to the last term.
type seqGen struct {
	gens  []Gen
	stage int
}

func (g *seqGen) Next() (V, bool) {
	last := len(g.gens) - 1
	for g.stage < last {
		g.gens[g.stage].Next() // bounded evaluation; outcome discarded
		g.gens[g.stage].Restart()
		g.stage++
	}
	v, ok := g.gens[last].Next()
	if !ok {
		g.stage = 0
	}
	return v, ok
}

func (g *seqGen) Restart() {
	for _, h := range g.gens {
		h.Restart()
	}
	g.stage = 0
}

// Sequence implements the familiar a;b;c construct as iterator
// concatenation-with-discard (§2A).
func Sequence(gens ...Gen) Gen {
	switch len(gens) {
	case 0:
		return Unit(value.NullV)
	case 1:
		return gens[0]
	}
	return &seqGen{gens: gens}
}

// repeatGen implements repeated alternation |e: e's sequence over and over,
// failing only when a full cycle of e yields nothing.
type repeatGen struct {
	e        Gen
	produced bool
}

func (g *repeatGen) Next() (V, bool) {
	for {
		if v, ok := g.e.Next(); ok {
			g.produced = true
			return v, true
		}
		if !g.produced {
			return nil, false
		}
		g.produced = false
	}
}

func (g *repeatGen) Restart() {
	g.e.Restart()
	g.produced = false
}

// RepeatAlt implements repeated alternation |e.
func RepeatAlt(e Gen) Gen { return &repeatGen{e: e} }

// rangeGen implements i to j by k over numeric values.
type rangeGen struct {
	lo, hi, by V
	cur        V
	started    bool
}

func (g *rangeGen) Next() (V, bool) {
	if !g.started {
		g.cur = g.lo
		g.started = true
	} else {
		g.cur = value.Add(g.cur, g.by)
	}
	sign := value.NumCompare(g.by, value.NewInt(0))
	if sign == 0 {
		value.Raise(value.ErrDivideByZero, "to-by: zero increment", nil)
	}
	cmp := value.NumCompare(g.cur, g.hi)
	if (sign > 0 && cmp > 0) || (sign < 0 && cmp < 0) {
		g.started = false
		return nil, false
	}
	return g.cur, true
}

func (g *rangeGen) Restart() { g.started = false }

// intRangeGen is the specialized i to j by k over int64 operands: no
// generic numeric dispatch, no big-int checks — the common case of the
// ubiquitous to-by generator, and the source feeding the pipe-throughput
// benchmarks, reduced to an increment, a compare and one boxing. cur is
// primed one step before lo, so Next is branch-minimal: both lo and hi
// are guarded (in Range) to sit at least |by| from the int64 edges, so
// neither the priming subtraction nor the step past hi can overflow.
type intRangeGen struct {
	lo, hi, by int64
	cur        int64
}

func (g *intRangeGen) Next() (V, bool) {
	c := g.cur + g.by
	if (g.by > 0 && c > g.hi) || (g.by < 0 && c < g.hi) {
		g.cur = g.lo - g.by
		return nil, false
	}
	g.cur = c
	return value.IntV(c), true
}

func (g *intRangeGen) Restart() { g.cur = g.lo - g.by }

// Range implements the generator lo to hi by step over already-evaluated
// numeric operands. Use ToBy for generator operands.
func Range(lo, hi, by V) Gen {
	lo = value.MustNumber(lo)
	hi = value.MustNumber(hi)
	if by == nil {
		by = value.NewInt(1)
	}
	by = value.MustNumber(by)
	if li, lok := smallInt(lo); lok {
		if hi, hok := smallInt(hi); hok {
			if bi, bok := smallInt(by); bok && bi != 0 &&
				hi <= maxInt64-absInt64(bi) && hi >= minInt64+absInt64(bi) &&
				li <= maxInt64-absInt64(bi) && li >= minInt64+absInt64(bi) {
				return &intRangeGen{lo: li, hi: hi, by: bi, cur: li - bi}
			}
		}
	}
	return &rangeGen{lo: lo, hi: hi, by: by}
}

const (
	maxInt64 = int64(^uint64(0) >> 1)
	minInt64 = -maxInt64 - 1
)

func absInt64(i int64) int64 {
	if i < 0 {
		return -i
	}
	return i
}

// smallInt reports v as an unpromoted int64 integer.
func smallInt(v V) (int64, bool) {
	i, ok := v.(value.Integer)
	if !ok || i.IsBig() {
		return 0, false
	}
	n, _ := i.Int64()
	return n, true
}

// ToBy implements e1 to e2 by e3 with generator operands: the operands
// themselves are searched as in any Icon operation.
func ToBy(lo, hi, by Gen) Gen {
	if by == nil {
		by = Unit(value.NewInt(1))
	}
	return Op3(func(a, b, c V) Gen { return Range(a, b, c) }, lo, hi, by)
}

// IntRange is a convenience for the ubiquitous i to j.
func IntRange(lo, hi int64) Gen { return Range(value.NewInt(lo), value.NewInt(hi), nil) }
