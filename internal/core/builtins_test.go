package core

import (
	"bytes"
	"strings"
	"testing"

	"junicon/internal/value"
)

// lib builds the builtin library over a capture buffer.
func lib(t *testing.T) (map[string]value.V, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	return Builtins(&buf), &buf
}

// callB invokes a builtin and drains it.
func callB(t *testing.T, b map[string]value.V, name string, args ...value.V) []value.V {
	t.Helper()
	p, ok := b[name].(*value.Proc)
	if !ok {
		t.Fatalf("no builtin %q", name)
	}
	var out []value.V
	if err := Protect(func() { out = Drain(p.Call(args...), 1000) }); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return out
}

func one(t *testing.T, b map[string]value.V, name string, args ...value.V) string {
	t.Helper()
	vs := callB(t, b, name, args...)
	if len(vs) != 1 {
		t.Fatalf("%s: results = %v", name, vs)
	}
	return value.Image(vs[0])
}

func none(t *testing.T, b map[string]value.V, name string, args ...value.V) {
	t.Helper()
	if vs := callB(t, b, name, args...); len(vs) != 0 {
		t.Fatalf("%s should fail, got %v", name, vs)
	}
}

func TestWriteAndWrites(t *testing.T) {
	b, buf := lib(t)
	one(t, b, "write", value.String("a"), value.NewInt(1))
	one(t, b, "writes", value.String("x"))
	if buf.String() != "a1\nx" {
		t.Fatalf("output = %q", buf.String())
	}
	// write returns its last argument.
	if got := one(t, b, "write", value.NewInt(7)); got != "7" {
		t.Fatalf("write result = %s", got)
	}
}

func TestConversionBuiltins(t *testing.T) {
	b, _ := lib(t)
	if one(t, b, "image", value.String("x")) != `"\"x\""` {
		t.Fatal("image")
	}
	if one(t, b, "type", value.NewList()) != `"list"` {
		t.Fatal("type")
	}
	if one(t, b, "integer", value.String("42")) != "42" {
		t.Fatal("integer")
	}
	none(t, b, "integer", value.String("nope"))
	if one(t, b, "real", value.NewInt(2)) != "2.0" {
		t.Fatal("real")
	}
	if one(t, b, "numeric", value.String("2.5")) != "2.5" {
		t.Fatal("numeric")
	}
	none(t, b, "numeric", value.NewList())
	if one(t, b, "string", value.NewInt(9)) != `"9"` {
		t.Fatal("string")
	}
	if got := one(t, b, "cset", value.String("ba")); got != "'ab'" {
		t.Fatalf("cset = %s", got)
	}
}

func TestCopyBuiltinIsShallowPerType(t *testing.T) {
	b, _ := lib(t)
	l := value.NewList(value.NewInt(1))
	cp := callB(t, b, "copy", l)[0].(*value.List)
	cp.Put(value.NewInt(2))
	if l.Len() != 1 {
		t.Fatal("list copy shared storage")
	}
	tb := value.NewTable(value.NullV)
	tb.Set(value.String("k"), value.NewInt(1))
	ct := callB(t, b, "copy", tb)[0].(*value.Table)
	ct.Set(value.String("k2"), value.NewInt(2))
	if tb.Len() != 1 {
		t.Fatal("table copy shared storage")
	}
	s := value.NewSet(value.NewInt(1))
	cs := callB(t, b, "copy", s)[0].(*value.Set)
	cs.Insert(value.NewInt(2))
	if s.Len() != 1 {
		t.Fatal("set copy shared storage")
	}
	r := value.NewRecord("p", []string{"x"}, []value.V{value.NewInt(1)})
	cr := callB(t, b, "copy", r)[0].(*value.Record)
	cr.SetField("x", value.NewInt(9))
	if v, _ := r.GetField("x"); value.Image(v) != "1" {
		t.Fatal("record copy shared storage")
	}
	// Immutable values copy to themselves.
	if one(t, b, "copy", value.NewInt(5)) != "5" {
		t.Fatal("scalar copy")
	}
}

func TestProcBuiltin(t *testing.T) {
	b, _ := lib(t)
	// proc("write") resolves the builtin by name.
	vs := callB(t, b, "proc", value.String("write"))
	if len(vs) != 1 {
		t.Fatal("proc by name")
	}
	none(t, b, "proc", value.String("no_such_builtin"))
	// A procedure value passes through.
	p := ValProc("f", 0, func([]value.V) value.V { return value.NullV })
	if got := callB(t, b, "proc", p); len(got) != 1 {
		t.Fatal("proc of proc")
	}
}

func TestStructureBuiltins(t *testing.T) {
	b, _ := lib(t)
	if one(t, b, "list", value.NewInt(2), value.NewInt(9)) != "[9,9]" {
		t.Fatal("list")
	}
	// put/push/get/pop/pull drive a deque.
	l := value.NewList()
	callB(t, b, "put", l, value.NewInt(1), value.NewInt(2))
	callB(t, b, "push", l, value.NewInt(0))
	if l.Image() != "[0,1,2]" {
		t.Fatalf("after put/push: %s", l.Image())
	}
	if one(t, b, "get", l) != "0" || one(t, b, "pull", l) != "2" || one(t, b, "pop", l) != "1" {
		t.Fatal("get/pull/pop")
	}
	none(t, b, "get", l) // empty fails
	none(t, b, "pull", l)

	s := value.NewSet()
	callB(t, b, "insert", s, value.NewInt(3))
	if one(t, b, "member", s, value.NewInt(3)) != "3" {
		t.Fatal("member")
	}
	callB(t, b, "delete", s, value.NewInt(3))
	none(t, b, "member", s, value.NewInt(3))

	tb := value.NewTable(value.NewInt(0))
	callB(t, b, "insert", tb, value.String("k"), value.NewInt(5))
	if one(t, b, "member", tb, value.String("k")) != `"k"` {
		t.Fatal("table member")
	}
	callB(t, b, "delete", tb, value.String("k"))
	none(t, b, "member", tb, value.String("k"))
}

func TestSortBuiltin(t *testing.T) {
	b, _ := lib(t)
	l := value.NewList(value.NewInt(3), value.NewInt(1), value.String("a"), value.NewInt(2))
	if got := one(t, b, "sort", l); got != `[1,2,3,"a"]` {
		t.Fatalf("sort list = %s", got)
	}
	s := value.NewSet(value.NewInt(2), value.NewInt(1))
	if got := one(t, b, "sort", s); got != "[1,2]" {
		t.Fatalf("sort set = %s", got)
	}
	tb := value.NewTable(value.NullV)
	tb.Set(value.String("b"), value.NewInt(2))
	tb.Set(value.String("a"), value.NewInt(1))
	if got := one(t, b, "sort", tb); got != `[["a",1],["b",2]]` {
		t.Fatalf("sort table = %s", got)
	}
}

func TestSeqAndKeyGenerators(t *testing.T) {
	b, _ := lib(t)
	p := b["seq"].(*value.Proc)
	got := Drain(Limit(p.Call(value.NewInt(5), value.NewInt(10)), 3), 0)
	if len(got) != 3 || value.Image(got[2]) != "25" {
		t.Fatalf("seq = %v", got)
	}
	tb := value.NewTable(value.NullV)
	tb.Set(value.String("x"), value.NewInt(1))
	keys := callB(t, b, "key", tb)
	if len(keys) != 1 || value.Image(keys[0]) != `"x"` {
		t.Fatalf("key = %v", keys)
	}
	// key(L) generates indices.
	l := value.NewList(value.NewInt(9), value.NewInt(8))
	if got := callB(t, b, "key", l); len(got) != 2 || value.Image(got[1]) != "2" {
		t.Fatalf("key list = %v", got)
	}
}

func TestStringAnalysisBuiltins(t *testing.T) {
	b, _ := lib(t)
	finds := callB(t, b, "find", value.String("ss"), value.String("mississippi"))
	if len(finds) != 2 || value.Image(finds[0]) != "3" || value.Image(finds[1]) != "6" {
		t.Fatalf("find = %v", finds)
	}
	// Range-restricted find.
	finds = callB(t, b, "find", value.String("ss"), value.String("mississippi"),
		value.NewInt(4), value.NewInt(0))
	if len(finds) != 1 || value.Image(finds[0]) != "6" {
		t.Fatalf("restricted find = %v", finds)
	}
	if one(t, b, "many", value.NewCset("ab"), value.String("aabbc")) != "5" {
		t.Fatal("many")
	}
	none(t, b, "many", value.NewCset("z"), value.String("aab"))
	if one(t, b, "any", value.NewCset("a"), value.String("abc")) != "2" {
		t.Fatal("any")
	}
	if one(t, b, "match", value.String("ab"), value.String("abc")) != "3" {
		t.Fatal("match")
	}
	none(t, b, "match", value.String("bc"), value.String("abc"))
}

func TestStringSynthesisBuiltins(t *testing.T) {
	b, _ := lib(t)
	if one(t, b, "repl", value.String("ab"), value.NewInt(3)) != `"ababab"` {
		t.Fatal("repl")
	}
	if one(t, b, "left", value.String("ab"), value.NewInt(5), value.String(".")) != `"ab..."` {
		t.Fatal("left")
	}
	if one(t, b, "right", value.String("ab"), value.NewInt(5), value.String(".")) != `"...ab"` {
		t.Fatal("right")
	}
	if got := one(t, b, "center", value.String("ab"), value.NewInt(6)); !strings.Contains(got, "ab") {
		t.Fatalf("center = %s", got)
	}
	// Truncation when the string is longer than the width.
	if one(t, b, "left", value.String("abcdef"), value.NewInt(3)) != `"abc"` {
		t.Fatal("left truncate")
	}
	if one(t, b, "right", value.String("abcdef"), value.NewInt(3)) != `"def"` {
		t.Fatal("right truncate")
	}
	if one(t, b, "trim", value.String("ab   ")) != `"ab"` {
		t.Fatal("trim")
	}
	if one(t, b, "map", value.String("AbC")) != `"abc"` {
		t.Fatal("map default lowers")
	}
	if one(t, b, "map", value.String("abc"), value.String("abc"), value.String("xyz")) != `"xyz"` {
		t.Fatal("map custom")
	}
	if one(t, b, "ord", value.String("A")) != "65" {
		t.Fatal("ord")
	}
	if one(t, b, "char", value.NewInt(66)) != `"B"` {
		t.Fatal("char")
	}
	if one(t, b, "abs", value.NewInt(-4)) != "4" {
		t.Fatal("abs")
	}
	if one(t, b, "reverse", value.String("abc")) != `"cba"` {
		t.Fatal("reverse")
	}
}

func TestBuiltinErrorPaths(t *testing.T) {
	b, _ := lib(t)
	for _, c := range []struct {
		name string
		args []value.V
	}{
		{"put", []value.V{value.NewInt(1), value.NewInt(2)}}, // not a list
		{"insert", []value.V{value.NewInt(1), value.NewInt(2)}},
		{"repl", []value.V{value.String("a"), value.NewInt(-1)}},
		{"ord", []value.V{value.String("ab")}},
		{"char", []value.V{value.NewInt(999)}},
		{"map", []value.V{value.String("a"), value.String("ab"), value.String("x")}},
		{"sort", []value.V{value.NewInt(1)}},
		{"key", []value.V{value.NewInt(1)}},
	} {
		p := b[c.name].(*value.Proc)
		err := Protect(func() { Drain(p.Call(c.args...), 10) })
		if err == nil {
			t.Errorf("%s(%v) should raise", c.name, c.args)
		}
	}
}

func TestSetConstructorFromListAndValues(t *testing.T) {
	b, _ := lib(t)
	s := callB(t, b, "set", value.NewList(value.NewInt(1), value.NewInt(1), value.NewInt(2)))[0].(*value.Set)
	if s.Len() != 2 {
		t.Fatalf("set from list = %d", s.Len())
	}
	s2 := callB(t, b, "set", value.NewInt(7))[0].(*value.Set)
	if !s2.Has(value.NewInt(7)) {
		t.Fatal("set from scalar")
	}
}

func TestTableBuiltinDefault(t *testing.T) {
	b, _ := lib(t)
	tb := callB(t, b, "table", value.NewInt(0))[0].(*value.Table)
	if value.Image(tb.Get(value.String("missing"))) != "0" {
		t.Fatal("table default")
	}
}

func TestBalGenerator(t *testing.T) {
	b, _ := lib(t)
	// Positions of '+' balanced w.r.t. parentheses in "(a+b)+c".
	got := callB(t, b, "bal", value.NewCset("+"), value.NullV, value.NullV,
		value.String("(a+b)+c"))
	if len(got) != 1 || value.Image(got[0]) != "6" {
		t.Fatalf("bal = %v", got)
	}
	// With c1 null, every balanced position generates.
	all := callB(t, b, "bal", value.NullV, value.NullV, value.NullV, value.String("a(b)c"))
	if len(all) != 3 { // positions 1 ('a'), 2 ('('), 5 ('c')... '(' opens at its own position
		t.Fatalf("bal all = %v", all)
	}
	// Unbalanced closer terminates generation.
	got = callB(t, b, "bal", value.NullV, value.NullV, value.NullV, value.String("a)b"))
	if len(got) != 2 { // 'a' and ')' both at depth 0, then depth<0 stops
		t.Fatalf("bal unbalanced = %v", got)
	}
}
