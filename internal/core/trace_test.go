package core

import (
	"testing"

	"junicon/internal/telemetry"
	"junicon/internal/value"
)

// event is a recorded callback invocation.
type cbEvent struct {
	label string
	ev    Event
	v     V
}

func TestTracedFailAndRestart(t *testing.T) {
	var got []cbEvent
	g := Traced("r", IntRange(1, 2), func(label string, ev Event, v V) {
		got = append(got, cbEvent{label, ev, v})
	})

	// Drive past failure: auto-restart means failure is followed by a
	// fresh sequence, and the callback must see the fail, not mask it.
	for i := 0; i < 2; i++ {
		if _, ok := g.Next(); !ok {
			t.Fatalf("round 1 Next %d failed", i)
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted generator should fail")
	}
	g.Restart()
	if v, ok := g.Next(); !ok || mustInt(t, v) != 1 {
		t.Fatalf("after Restart, Next = %v, %v", v, ok)
	}

	want := []struct {
		ev Event
		v  int64 // yield value; 0 = none
	}{
		{EvResume, 0}, {EvYield, 1},
		{EvResume, 0}, {EvYield, 2},
		{EvResume, 0}, {EvFail, 0},
		{EvRestart, 0},
		{EvResume, 0}, {EvYield, 1},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].ev != w.ev {
			t.Errorf("event %d = %v, want %v", i, got[i].ev, w.ev)
		}
		if got[i].label != "r" {
			t.Errorf("event %d label = %q", i, got[i].label)
		}
		if w.ev == EvYield && mustInt(t, got[i].v) != w.v {
			t.Errorf("event %d yield = %v, want %d", i, got[i].v, w.v)
		}
		if w.ev != EvYield && got[i].v != nil {
			t.Errorf("event %d carries value %v, want nil", i, got[i].v)
		}
	}
}

func TestTracedEmitsTelemetry(t *testing.T) {
	telemetry.StartTrace(1024)
	defer telemetry.StopTrace()

	g := Traced("tele", IntRange(1, 2), nil)
	Drain(g, 0)
	g.Restart()

	evs := telemetry.DrainTrace()
	var yields, fails, restarts int
	var stream uint64
	for _, ev := range evs {
		if ev.Name != "tele" {
			continue
		}
		if stream == 0 {
			stream = ev.Stream
		}
		if ev.Stream != stream || ev.Stream == 0 {
			t.Fatalf("stream ID not stable: %x vs %x", ev.Stream, stream)
		}
		switch ev.Kind {
		case telemetry.KindYield:
			yields++
		case telemetry.KindFail:
			fails++
		case telemetry.KindRestart:
			restarts++
		}
	}
	if yields != 2 || fails != 1 || restarts != 1 {
		t.Fatalf("yields/fails/restarts = %d/%d/%d, want 2/1/1", yields, fails, restarts)
	}
}

func TestInstrumentStream(t *testing.T) {
	telemetry.StartTrace(64)
	defer telemetry.StopTrace()

	const stream = 0xABCD0001
	g := InstrumentStream("fixed", stream, IntRange(1, 1))
	Drain(g, 0)

	found := false
	for _, ev := range telemetry.DrainTrace() {
		if ev.Name == "fixed" {
			found = true
			if ev.Stream != stream {
				t.Fatalf("stream = %x, want %x", ev.Stream, stream)
			}
		}
	}
	if !found {
		t.Fatal("no events from instrumented generator")
	}
}

func TestKernelCounters(t *testing.T) {
	telemetry.ResetMetrics()
	telemetry.SetMetrics(true)
	defer telemetry.SetMetrics(false)

	Drain(IntRange(1, 3), 0) // 3 yields + 1 fail

	snap := telemetry.Snapshot()
	if n := snap["kernel.yields"].(int64); n != 3 {
		t.Errorf("kernel.yields = %d, want 3", n)
	}
	if n := snap["kernel.fails"].(int64); n != 1 {
		t.Errorf("kernel.fails = %d, want 1", n)
	}
	if n := snap["kernel.resumes"].(int64); n != 4 {
		t.Errorf("kernel.resumes = %d, want 4", n)
	}
}

func mustInt(t *testing.T, v V) int64 {
	t.Helper()
	i, ok := value.ToInteger(value.Deref(v))
	if !ok {
		t.Fatalf("not an integer: %v", v)
	}
	n, _ := i.Int64()
	return n
}
