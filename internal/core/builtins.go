package core

import (
	"fmt"
	"io"
	"strings"

	"junicon/internal/value"
)

// Builtins returns the library of Icon built-in functions as procedure
// values, writing any output to w. The set covers the functions the paper's
// programs use ("most of Icon's built-in functions", §IX) — structure
// operations, type conversions, string analysis generators and string
// synthesis functions.
func Builtins(w io.Writer) map[string]value.V {
	b := map[string]value.V{}
	add := func(p *value.Proc) { b[p.Name] = p }

	// --- output ---
	add(ValProc("write", -1, func(args []value.V) value.V {
		var last value.V = value.NullV
		var sb strings.Builder
		for _, a := range args {
			sb.WriteString(value.Str(value.Deref(a)))
			last = value.Deref(a)
		}
		sb.WriteByte('\n')
		fmt.Fprint(w, sb.String())
		return last
	}))
	add(ValProc("writes", -1, func(args []value.V) value.V {
		var last value.V = value.NullV
		for _, a := range args {
			fmt.Fprint(w, value.Str(value.Deref(a)))
			last = value.Deref(a)
		}
		return last
	}))

	// --- reflection & conversion ---
	add(ValProc("image", 1, func(a []value.V) value.V { return value.String(value.Image(value.Deref(a[0]))) }))
	add(ValProc("type", 1, func(a []value.V) value.V { return value.String(value.TypeOf(value.Deref(a[0]))) }))
	add(ValProc("numeric", 1, func(a []value.V) value.V {
		n, ok := value.ToNumber(a[0])
		if !ok {
			return nil
		}
		return n
	}))
	add(ValProc("integer", 1, func(a []value.V) value.V {
		i, ok := value.ToInteger(a[0])
		if !ok {
			return nil
		}
		return i
	}))
	add(ValProc("real", 1, func(a []value.V) value.V {
		r, ok := value.ToReal(a[0])
		if !ok {
			return nil
		}
		return r
	}))
	add(ValProc("string", 1, func(a []value.V) value.V {
		s, ok := value.ToString(a[0])
		if !ok {
			return nil
		}
		return s
	}))
	add(ValProc("cset", 1, func(a []value.V) value.V {
		c, ok := value.ToCset(a[0])
		if !ok {
			return nil
		}
		return c
	}))
	add(ValProc("copy", 1, func(a []value.V) value.V {
		switch x := value.Deref(a[0]).(type) {
		case *value.List:
			return x.Copy()
		case *value.Table:
			return x.Copy()
		case *value.Set:
			return x.Copy()
		case *value.Record:
			return value.NewRecord(x.Name, x.Fields, append([]value.V(nil), x.Values...))
		default:
			return x
		}
	}))
	add(ValProc("proc", 2, func(a []value.V) value.V {
		if p, ok := value.Deref(a[0]).(*value.Proc); ok {
			return p
		}
		if n, ok := value.Deref(a[0]).(*value.Native); ok {
			return value.NewProc(n.Name, -1, func(args ...value.V) Gen { return InvokeVal(n, args...) })
		}
		if s, ok := value.Deref(a[0]).(value.String); ok {
			if p, found := b[string(s)]; found {
				return p
			}
		}
		return nil
	}))

	// --- structures ---
	add(ValProc("list", 2, func(a []value.V) value.V {
		n := 0
		if !value.IsNull(value.Deref(a[0])) {
			n = value.MustInt(a[0])
		}
		return value.NewListSize(n, value.Deref(a[1]))
	}))
	add(ValProc("table", 1, func(a []value.V) value.V { return value.NewTable(value.Deref(a[0])) }))
	add(ValProc("set", -1, func(a []value.V) value.V {
		s := value.NewSet()
		for _, x := range a {
			d := value.Deref(x)
			if l, ok := d.(*value.List); ok {
				for _, e := range l.Elems() {
					s.Insert(e)
				}
			} else if !value.IsNull(d) {
				s.Insert(d)
			}
		}
		return s
	}))
	add(ValProc("put", -1, func(a []value.V) value.V {
		l := mustList(a, 0)
		for _, v := range a[1:] {
			l.Put(value.Deref(v))
		}
		return l
	}))
	add(ValProc("push", -1, func(a []value.V) value.V {
		l := mustList(a, 0)
		for _, v := range a[1:] {
			l.Push(value.Deref(v))
		}
		return l
	}))
	add(ValProc("get", 1, func(a []value.V) value.V {
		v, ok := mustList(a, 0).Get()
		if !ok {
			return nil
		}
		return v
	}))
	add(ValProc("pop", 1, func(a []value.V) value.V {
		v, ok := mustList(a, 0).Get()
		if !ok {
			return nil
		}
		return v
	}))
	add(ValProc("pull", 1, func(a []value.V) value.V {
		v, ok := mustList(a, 0).Pull()
		if !ok {
			return nil
		}
		return v
	}))
	add(ValProc("insert", 3, func(a []value.V) value.V {
		switch x := value.Deref(a[0]).(type) {
		case *value.Set:
			x.Insert(value.Deref(a[1]))
			return x
		case *value.Table:
			x.Set(value.Deref(a[1]), value.Deref(a[2]))
			return x
		default:
			value.Raise(value.ErrNotTable, "insert: set or table expected", x)
		}
		panic("unreachable")
	}))
	add(ValProc("delete", 2, func(a []value.V) value.V {
		switch x := value.Deref(a[0]).(type) {
		case *value.Set:
			x.Delete(value.Deref(a[1]))
			return x
		case *value.Table:
			x.Delete(value.Deref(a[1]))
			return x
		default:
			value.Raise(value.ErrNotTable, "delete: set or table expected", x)
		}
		panic("unreachable")
	}))
	add(ValProc("member", 2, func(a []value.V) value.V {
		switch x := value.Deref(a[0]).(type) {
		case *value.Set:
			if x.Has(value.Deref(a[1])) {
				return value.Deref(a[1])
			}
			return nil
		case *value.Table:
			if x.Has(value.Deref(a[1])) {
				return value.Deref(a[1])
			}
			return nil
		default:
			value.Raise(value.ErrNotTable, "member: set or table expected", x)
		}
		panic("unreachable")
	}))
	add(ValProc("sort", 2, func(a []value.V) value.V {
		switch x := value.Deref(a[0]).(type) {
		case *value.List:
			out := x.Copy().Elems()
			insertionSort(out)
			return value.NewList(out...)
		case *value.Set:
			return value.NewList(x.Members()...)
		case *value.Table:
			// sort(T) yields a list of [key, value] pairs ordered by key.
			out := value.NewList()
			for _, k := range x.Keys() {
				out.Put(value.NewList(k, x.Get(k)))
			}
			return out
		default:
			value.Raise(value.ErrNotList, "sort: structure expected", x)
		}
		panic("unreachable")
	}))

	// --- generators over structures ---
	add(value.NewProc("key", 1, func(args ...value.V) Gen { return KeyVal(args[0]) }))
	add(GenProc("seq", 2, func(args []value.V, yield func(value.V) bool) {
		start := value.NewInt(1)
		if len(args) > 0 && !value.IsNull(value.Deref(args[0])) {
			start = value.MustInteger(args[0])
		}
		by := value.NewInt(1)
		if len(args) > 1 && !value.IsNull(value.Deref(args[1])) {
			by = value.MustInteger(args[1])
		}
		cur := value.V(start)
		for {
			if !yield(cur) {
				return
			}
			cur = value.Add(cur, by)
		}
	}))

	// --- string analysis (generators) ---
	add(GenProc("find", 4, func(args []value.V, yield func(value.V) bool) {
		pat := string(value.MustString(args[0]))
		s, lo, hi := subjectRange(args, 1)
		if pat == "" {
			return
		}
		for i := lo; i+len(pat) <= hi; i++ {
			if s[i:i+len(pat)] == pat {
				if !yield(value.IntV(int64(i + 1))) {
					return
				}
			}
		}
	}))
	add(GenProc("upto", 4, func(args []value.V, yield func(value.V) bool) {
		c := value.MustCset(args[0])
		s, lo, hi := subjectRange(args, 1)
		for i := lo; i < hi; i++ {
			if c.Contains(rune(s[i])) {
				if !yield(value.IntV(int64(i + 1))) {
					return
				}
			}
		}
	}))
	add(ValProc("many", 4, func(args []value.V) value.V {
		c := value.MustCset(args[0])
		s, lo, hi := subjectRange(args, 1)
		i := lo
		for i < hi && c.Contains(rune(s[i])) {
			i++
		}
		if i == lo {
			return nil
		}
		return value.IntV(int64(i + 1))
	}))
	add(ValProc("any", 4, func(args []value.V) value.V {
		c := value.MustCset(args[0])
		s, lo, hi := subjectRange(args, 1)
		if lo < hi && c.Contains(rune(s[lo])) {
			return value.IntV(int64(lo + 2))
		}
		return nil
	}))
	add(GenProc("bal", 6, func(args []value.V, yield func(value.V) bool) {
		// bal(c1, c2, c3, s, i, j): generate positions in s[i:j] where a
		// character of c1 occurs balanced with respect to openers c2 and
		// closers c3 (defaults: &cset-ish any, '(' and ')').
		c1 := value.NewCset("")
		anyChar := value.IsNull(value.Deref(args[0]))
		if !anyChar {
			c1 = value.MustCset(args[0])
		}
		c2 := value.NewCset("(")
		if !value.IsNull(value.Deref(args[1])) {
			c2 = value.MustCset(args[1])
		}
		c3 := value.NewCset(")")
		if !value.IsNull(value.Deref(args[2])) {
			c3 = value.MustCset(args[2])
		}
		s, lo, hi := subjectRange(args, 3)
		depth := 0
		for i := lo; i < hi; i++ {
			ch := rune(s[i])
			if depth == 0 && (anyChar || c1.Contains(ch)) {
				if !yield(value.IntV(int64(i + 1))) {
					return
				}
			}
			switch {
			case c2.Contains(ch):
				depth++
			case c3.Contains(ch):
				depth--
				if depth < 0 {
					return
				}
			}
		}
	}))
	add(ValProc("match", 4, func(args []value.V) value.V {
		pat := string(value.MustString(args[0]))
		s, lo, hi := subjectRange(args, 1)
		if lo+len(pat) <= hi && s[lo:lo+len(pat)] == pat {
			return value.IntV(int64(lo + len(pat) + 1))
		}
		return nil
	}))

	// --- string synthesis ---
	add(ValProc("reverse", 1, func(a []value.V) value.V {
		s := []byte(value.MustString(a[0]))
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
		return value.String(s)
	}))
	add(ValProc("repl", 2, func(a []value.V) value.V {
		s := string(value.MustString(a[0]))
		n := value.MustInt(a[1])
		if n < 0 {
			value.Raise(value.ErrInteger, "repl: negative count", value.Deref(a[1]))
		}
		return value.String(strings.Repeat(s, n))
	}))
	add(ValProc("left", 3, func(a []value.V) value.V { return padString(a, 'l') }))
	add(ValProc("right", 3, func(a []value.V) value.V { return padString(a, 'r') }))
	add(ValProc("center", 3, func(a []value.V) value.V { return padString(a, 'c') }))
	add(ValProc("trim", 2, func(a []value.V) value.V {
		s := string(value.MustString(a[0]))
		c := value.NewCset(" ")
		if len(a) > 1 && !value.IsNull(value.Deref(a[1])) {
			c = value.MustCset(a[1])
		}
		i := len(s)
		for i > 0 && c.Contains(rune(s[i-1])) {
			i--
		}
		return value.String(s[:i])
	}))
	add(ValProc("map", 3, func(a []value.V) value.V {
		s := string(value.MustString(a[0]))
		from := "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
		to := "abcdefghijklmnopqrstuvwxyz"
		if len(a) > 1 && !value.IsNull(value.Deref(a[1])) {
			from = string(value.MustString(a[1]))
		}
		if len(a) > 2 && !value.IsNull(value.Deref(a[2])) {
			to = string(value.MustString(a[2]))
		}
		if len(from) != len(to) {
			value.Raise(value.ErrString, "map: unequal lengths", nil)
		}
		tbl := map[byte]byte{}
		for i := 0; i < len(from); i++ {
			tbl[from[i]] = to[i]
		}
		out := []byte(s)
		for i, ch := range out {
			if r, ok := tbl[ch]; ok {
				out[i] = r
			}
		}
		return value.String(out)
	}))
	add(ValProc("ord", 1, func(a []value.V) value.V {
		s := value.MustString(a[0])
		if len(s) != 1 {
			value.Raise(value.ErrString, "ord: one-character string expected", s)
		}
		return value.IntV(int64(s[0]))
	}))
	add(ValProc("char", 1, func(a []value.V) value.V {
		i := value.MustInt(a[0])
		if i < 0 || i > 255 {
			value.Raise(value.ErrInteger, "char: out of range", value.Deref(a[0]))
		}
		return value.String([]byte{byte(i)})
	}))
	add(ValProc("abs", 1, func(a []value.V) value.V {
		n := value.MustNumber(a[0])
		if value.NumCompare(n, value.NewInt(0)) < 0 {
			return value.Neg(n)
		}
		return n
	}))

	return b
}

func mustList(a []value.V, i int) *value.List {
	l, ok := value.Deref(a[i]).(*value.List)
	if !ok {
		value.Raise(value.ErrNotList, "list expected", value.Deref(a[i]))
	}
	return l
}

// subjectRange extracts the (s, i, j) convention of Icon string functions:
// args[base] is the subject, args[base+1] and args[base+2] optional
// positions defaulting to the whole string. It returns Go [lo,hi) offsets.
func subjectRange(args []value.V, base int) (s string, lo, hi int) {
	s = string(value.MustString(args[base]))
	i, j := 1, 0
	if len(args) > base+1 && !value.IsNull(value.Deref(args[base+1])) {
		i = value.MustInt(args[base+1])
	}
	if len(args) > base+2 && !value.IsNull(value.Deref(args[base+2])) {
		j = value.MustInt(args[base+2])
	}
	a, b, ok := value.SliceRange(i, j, len(s))
	if !ok {
		value.Raise(value.ErrIndex, "position out of range", nil)
	}
	return s, a, b
}

func padString(a []value.V, mode byte) value.V {
	s := string(value.MustString(a[0]))
	n := value.MustInt(a[1])
	pad := " "
	if len(a) > 2 && !value.IsNull(value.Deref(a[2])) {
		pad = string(value.MustString(a[2]))
	}
	if pad == "" {
		pad = " "
	}
	if len(s) >= n {
		switch mode {
		case 'l':
			return value.String(s[:n])
		case 'r':
			return value.String(s[len(s)-n:])
		default:
			off := (len(s) - n) / 2
			return value.String(s[off : off+n])
		}
	}
	fill := strings.Repeat(pad, (n-len(s))/len(pad)+1)
	switch mode {
	case 'l':
		return value.String(s + fill[:n-len(s)])
	case 'r':
		return value.String(fill[:n-len(s)] + s)
	default:
		left := (n - len(s)) / 2
		right := n - len(s) - left
		return value.String(fill[:right] + s + fill[:left])
	}
}

// insertionSort orders values in place by Icon's canonical order. The input
// sizes sort() sees in this library are small; simplicity wins.
func insertionSort(vs []value.V) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && value.Less(vs[j], vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}
