package core

import "testing"

// TestDriveLoopAllocFree guards the kernel yield hot path: driving a
// generator of interned-range integers through Next allocates nothing per
// value.
func TestDriveLoopAllocFree(t *testing.T) {
	g := IntRange(1, 1024)
	if n := testing.AllocsPerRun(5, func() {
		for {
			if _, ok := g.Next(); !ok {
				break
			}
		}
	}); n != 0 {
		t.Fatalf("drive loop: %v allocs per 1024-value cycle, want 0", n)
	}
}
