package core

import (
	"testing"

	"junicon/internal/value"
)

// Kernel-level scanning tests (the interp package tests the language
// surface; these pin the combinators directly).

func scanOf(t *testing.T, subject string, mkBody func(h *ScanHolder) Gen) []string {
	t.Helper()
	h := NewScanHolder()
	g := ScanExpr(h, Unit(value.String(subject)), func() Gen { return mkBody(h) })
	var out []string
	for _, v := range Drain(g, 100) {
		out = append(out, value.Image(v))
	}
	if h.Current() != nil {
		t.Fatal("environment leaked after scan")
	}
	return out
}

func TestKernelScanTabAndMove(t *testing.T) {
	got := scanOf(t, "hello", func(h *ScanHolder) Gen {
		return Sequence(Move(h, Unit(value.NewInt(2))), Tab(h, Unit(value.NewInt(0))))
	})
	if len(got) != 1 || got[0] != `"llo"` {
		t.Fatalf("got %v", got)
	}
}

func TestKernelScanNegativeTab(t *testing.T) {
	got := scanOf(t, "hello", func(h *ScanHolder) Gen {
		return Tab(h, Unit(value.NewInt(-1)))
	})
	if len(got) != 1 || got[0] != `"hell"` {
		t.Fatalf("tab(-1) = %v", got)
	}
}

func TestKernelTabBackwards(t *testing.T) {
	// tab to an earlier position yields the text between, reversed range.
	got := scanOf(t, "abcd", func(h *ScanHolder) Gen {
		return Sequence(Move(h, Unit(value.NewInt(3))), Tab(h, Unit(value.NewInt(2))))
	})
	if len(got) != 1 || got[0] != `"bc"` {
		t.Fatalf("backwards tab = %v", got)
	}
}

func TestKernelTabReversesOnBacktrack(t *testing.T) {
	h := NewScanHolder()
	// (tab(2 | 4)) & fail-at-2: product backtracks, tab restores then
	// retries with 4.
	probe := func() Gen {
		return Cmp1(func(v value.V) (value.V, bool) {
			st := h.Current()
			if st.Pos == 4 {
				return value.NewInt(int64(st.Pos)), true
			}
			return nil, false
		}, Unit(value.NullV))
	}
	g := ScanExpr(h, Unit(value.String("abcde")), func() Gen {
		return Product(
			Tab(h, Values(value.NewInt(2), value.NewInt(4))),
			Defer(probe),
		)
	})
	got := Drain(g, 0)
	if len(got) != 1 || value.Image(got[0]) != "4" {
		t.Fatalf("backtracked tab = %v", got)
	}
}

func TestKernelMoveOutOfRangeFails(t *testing.T) {
	got := scanOf(t, "ab", func(h *ScanHolder) Gen {
		return Move(h, Unit(value.NewInt(9)))
	})
	if len(got) != 0 {
		t.Fatalf("move(9) over \"ab\" = %v", got)
	}
	// Negative move from the start fails too.
	got = scanOf(t, "ab", func(h *ScanHolder) Gen {
		return Move(h, Unit(value.NewInt(-1)))
	})
	if len(got) != 0 {
		t.Fatalf("move(-1) at pos 1 = %v", got)
	}
}

func TestKernelScanOutsideEnvFails(t *testing.T) {
	h := NewScanHolder()
	if _, ok := Tab(h, Unit(value.NewInt(1))).Next(); ok {
		t.Fatal("tab with no environment must fail")
	}
	if _, ok := Move(h, Unit(value.NewInt(1))).Next(); ok {
		t.Fatal("move with no environment must fail")
	}
}

func TestKernelScanSubjectsSearched(t *testing.T) {
	h := NewScanHolder()
	g := ScanExpr(h, Strings2("ab", "xy"), func() Gen {
		return Move(h, Unit(value.NewInt(1)))
	})
	got := Drain(g, 0)
	if len(got) != 2 || value.Image(got[0]) != `"a"` || value.Image(got[1]) != `"x"` {
		t.Fatalf("per-subject scan = %v", got)
	}
	g.Restart()
	if n := Count(g); n != 2 {
		t.Fatalf("restarted scan count = %d", n)
	}
}

// Strings2 builds a generator over strings (test helper).
func Strings2(ss ...string) Gen {
	vs := make([]V, len(ss))
	for i, s := range ss {
		vs[i] = value.String(s)
	}
	return Values(vs...)
}

func TestKernelScanBuiltinsTable(t *testing.T) {
	h := NewScanHolder()
	b := ScanBuiltins(h)
	for _, name := range []string{"tab", "move", "pos", "findAt", "uptoAt", "manyAt", "anyAt", "matchAt", "tabMatch"} {
		if _, ok := b[name]; !ok {
			t.Errorf("missing scan builtin %q", name)
		}
	}
	// Outside a scan, all of them fail rather than erroring.
	for name, v := range b {
		p := v.(*value.Proc)
		var n int
		if err := Protect(func() { n = Count(Limit(p.Call(value.String("x")), 5)) }); err != nil {
			t.Errorf("%s outside scan raised: %v", name, err)
			continue
		}
		if n != 0 {
			t.Errorf("%s outside scan produced %d results", name, n)
		}
	}
}

func TestTracerOutputShape(t *testing.T) {
	var buf bufWriter
	tr := &Tracer{W: &buf}
	tr.Call("f", []V{value.NewInt(1)})
	tr.Suspend("f", value.NewInt(2))
	tr.Call("g", nil)
	tr.Fail("g")
	tr.Return("f", value.NewInt(2))
	out := buf.String()
	want := "| f(1)\n| | f suspended 2\n| | g()\n| | g failed\n| f returned 2\n"
	if out != want {
		t.Fatalf("trace:\n%q\nwant:\n%q", out, want)
	}
}

type bufWriter struct{ b []byte }

func (w *bufWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *bufWriter) String() string              { return string(w.b) }
