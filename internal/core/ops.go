package core

import (
	"junicon/internal/value"
)

// Operators over generator operands. An Icon operation searches the product
// space of its operand sequences: f(e,e') ≡ (x in e) & (y in e') & f(x,y)
// (§2A). The combinators below implement that composition directly, so the
// normalized forms produced by the transform package — and hand-written
// kernel compositions — share one engine.

// op2Gen drives the operand product for a binary operation whose application
// may itself be a generator.
type op2Gen struct {
	f      func(a, b V) Gen
	a, b   Gen
	av, bv V
	app    Gen // current application generator, nil when none
	aLive  bool
	bLive  bool
}

func (g *op2Gen) Next() (V, bool) {
	for {
		if g.app != nil {
			if v, ok := g.app.Next(); ok {
				return v, true
			}
			g.app = nil
		}
		if !g.aLive {
			av, ok := g.a.Next()
			if !ok {
				return nil, false
			}
			g.av = value.Deref(av)
			g.aLive = true
			g.bLive = false
		}
		bv, ok := g.b.Next()
		if !ok {
			g.aLive = false
			continue
		}
		g.bv = value.Deref(bv)
		g.app = g.f(g.av, g.bv)
	}
}

func (g *op2Gen) Restart() {
	g.a.Restart()
	g.b.Restart()
	g.app = nil
	g.aLive = false
}

// Apply2 composes a binary operation f over operand generators a and b,
// searching the operand product. f returns the application's own result
// sequence.
func Apply2(f func(a, b V) Gen, a, b Gen) Gen { return &op2Gen{f: f, a: a, b: b} }

// Op2 lifts a plain binary function (always one result) over generators.
func Op2(f func(a, b V) V, a, b Gen) Gen {
	return Apply2(func(x, y V) Gen { return Unit(f(x, y)) }, a, b)
}

// Cmp2 lifts a conditional binary operation — one that succeeds with a value
// or fails, like the comparison operators — over generators. Failure of the
// operation resumes the operands: (1 to 5) > 3 produces 3 twice.
func Cmp2(f func(a, b V) (V, bool), a, b Gen) Gen {
	return Apply2(func(x, y V) Gen {
		v, ok := f(x, y)
		if !ok {
			return Empty()
		}
		return Unit(v)
	}, a, b)
}

// Op3 composes a ternary operation over three operand generators.
func Op3(f func(a, b, c V) Gen, a, b, c Gen) Gen {
	return Apply2(func(ab, cv V) Gen {
		p := ab.(*value.List)
		return f(p.Elems()[0], p.Elems()[1], cv)
	}, Op2(func(x, y V) V { return value.NewList(x, y) }, a, b), c)
}

// Op1 lifts a unary function over a generator operand.
type op1Gen struct {
	f func(V) Gen
	e Gen
	g Gen
}

func (o *op1Gen) Next() (V, bool) {
	for {
		if o.g != nil {
			if v, ok := o.g.Next(); ok {
				return v, true
			}
			o.g = nil
		}
		v, ok := o.e.Next()
		if !ok {
			return nil, false
		}
		o.g = o.f(value.Deref(v))
	}
}

func (o *op1Gen) Restart() {
	o.e.Restart()
	o.g = nil
}

// Apply1 composes a unary operation over a generator operand.
func Apply1(f func(V) Gen, e Gen) Gen { return &op1Gen{f: f, e: e} }

// Op1 lifts a plain unary function over a generator operand.
func Op1(f func(V) V, e Gen) Gen {
	return Apply1(func(x V) Gen { return Unit(f(x)) }, e)
}

// Cmp1 lifts a conditional unary operation over a generator operand.
func Cmp1(f func(V) (V, bool), e Gen) Gen {
	return Apply1(func(x V) Gen {
		v, ok := f(x)
		if !ok {
			return Empty()
		}
		return Unit(v)
	}, e)
}

// InvokeVal applies a callable value to already-evaluated arguments,
// yielding the invocation's result sequence:
//
//   - procedures run their generator body;
//   - natives produce a singleton (or fail when the native reports failure);
//   - an integer i selects the i-th argument (Icon's mutual evaluation form
//     i(e1, …, en));
//   - a first-class iterator value ignores arguments and steps once.
func InvokeVal(f V, args ...V) Gen {
	for i, a := range args {
		args[i] = value.Deref(a)
	}
	switch fn := value.Deref(f).(type) {
	case *value.Proc:
		return fn.Call(args...)
	case *value.Native:
		v, err := fn.Fn(args...)
		if err != nil {
			value.Raise(value.ErrProcedure, "native "+fn.Name+": "+err.Error(), nil)
		}
		if v == nil {
			return Empty()
		}
		return Unit(v)
	case value.Integer:
		i, ok := fn.Int64()
		if !ok {
			return Empty()
		}
		if i < 0 {
			i = int64(len(args)) + 1 + i
		}
		if i < 1 || i > int64(len(args)) {
			return Empty()
		}
		return Unit(args[i-1])
	case Stepper:
		v, ok := fn.Step(value.NullV)
		if !ok {
			return Empty()
		}
		return Unit(v)
	default:
		value.Raise(value.ErrProcedure, "procedure or integer expected", value.Deref(f))
	}
	panic("unreachable")
}

// applyNativeGen invokes a native on each cycle, reading its argument at
// invocation time. It is the fused form of the normalized pattern
//
//	Defer(func() Gen { return InvokeVal(n, arg()) })
//
// for a *value.Native callee: semantically identical (raise on error, fail
// on native failure, singleton result, auto-restart per cycle) but with a
// reusable argument buffer and no per-cycle generator allocation — the
// pattern dominates translated per-value invocation chains.
type applyNativeGen struct {
	fn   *value.Native
	arg  func() V
	args [1]V
	done bool
}

func (g *applyNativeGen) Next() (V, bool) {
	if g.done {
		g.done = false // auto-restart after failure
		return nil, false
	}
	g.args[0] = value.Deref(g.arg())
	v, err := g.fn.Fn(g.args[:]...)
	if err != nil {
		value.Raise(value.ErrProcedure, "native "+g.fn.Name+": "+err.Error(), nil)
	}
	if v == nil {
		return nil, false // native failure: empty cycle, restart on next Next
	}
	g.done = true
	return v, true
}

func (g *applyNativeGen) Restart() { g.done = false }

// ApplyNative composes a unary native invocation whose argument is read
// (typically from a cell) each cycle.
func ApplyNative(fn *value.Native, arg func() V) Gen {
	return &applyNativeGen{fn: fn, arg: arg}
}

// apply1Gen is ApplyVal's general case: invoke f on each cycle, delegating
// to the invocation's generator until it fails. The argument buffer is
// reused across cycles, so the callee must not retain the args slice
// (procedures copy their arguments; natives deref immediately).
type apply1Gen struct {
	f    V
	arg  func() V
	args [1]V
	g    Gen
}

func (a *apply1Gen) Next() (V, bool) {
	if a.g == nil {
		a.args[0] = value.Deref(a.arg())
		a.g = InvokeVal(a.f, a.args[:]...)
	}
	v, ok := a.g.Next()
	if !ok {
		a.g = nil // auto-restart: next cycle re-reads the argument
	}
	return v, ok
}

func (a *apply1Gen) Restart() { a.g = nil }

// ApplyVal composes a unary invocation of a fixed callee whose argument is
// read (typically from a cell) each cycle — the allocation-lean equivalent
// of Defer(func() Gen { return InvokeVal(f, arg()) }).
func ApplyVal(f V, arg func() V) Gen {
	if n, ok := value.Deref(f).(*value.Native); ok {
		return &applyNativeGen{fn: n, arg: arg}
	}
	return &apply1Gen{f: f, arg: arg}
}

// Invoke composes invocation over generator operands: the function position
// itself may be a generator, as in (f | g)(x) (§2A).
func Invoke(f Gen, args ...Gen) Gen {
	switch len(args) {
	case 0:
		return Apply1(func(fv V) Gen { return InvokeVal(fv) }, f)
	default:
		// Fold arguments into a tuple list, then apply.
		tuple := Op1(func(v V) V { return value.NewList(v) }, args[0])
		for _, a := range args[1:] {
			tuple = Op2(func(acc, x V) V {
				l := acc.(*value.List).Copy()
				l.Put(x)
				return l
			}, tuple, a)
		}
		return Apply2(func(fv, argv V) Gen {
			return InvokeVal(fv, argv.(*value.List).Elems()...)
		}, f, tuple)
	}
}
