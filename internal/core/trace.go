package core

import (
	"fmt"
	"io"
	"strings"
	"time"

	"junicon/internal/telemetry"
	"junicon/internal/value"
)

// Monitoring hooks — the paper's closing future-work item ("program
// monitoring and debugging within a transformational framework is an area
// to be further explored", §9). Because every construct is an iterator,
// one wrapper suffices to observe any expression: Traced interposes on the
// kernel protocol and reports resume/yield/fail/restart events to two
// sinks sharing one event model — an optional callback (the original
// stderr-style hook) and the process-wide telemetry ring, where each
// wrapped generator owns a stream ID and each Next becomes a span.

// Kernel protocol counters. The drive loops (Drain, Each, Count, First)
// and FirstClass.Step — the consumer- and producer-side chokepoints every
// iteration funnels through — tick these when telemetry is enabled; the
// disabled path is one atomic load and a branch per operation.
var (
	cResumes  = telemetry.NewCounter("kernel.resumes")
	cYields   = telemetry.NewCounter("kernel.yields")
	cFails    = telemetry.NewCounter("kernel.fails")
	cRestarts = telemetry.NewCounter("kernel.restarts")
)

// countNext records one protocol resume and its outcome.
func countNext(ok bool) {
	cResumes.Inc()
	if ok {
		cYields.Inc()
	} else {
		cFails.Inc()
	}
}

// Event classifies a trace event.
type Event int

// Trace events.
const (
	EvResume  Event = iota // Next called
	EvYield                // Next produced a value
	EvFail                 // Next reported failure
	EvRestart              // Restart called
)

func (e Event) String() string {
	switch e {
	case EvResume:
		return "resume"
	case EvYield:
		return "yield"
	case EvFail:
		return "fail"
	case EvRestart:
		return "restart"
	}
	return "?"
}

// TraceFunc receives trace events; v is non-nil only for EvYield.
type TraceFunc func(label string, ev Event, v V)

// Traced wraps g so every protocol operation reports to f and, when a
// telemetry trace ring is installed, emits span events under the
// generator's stream ID.
func Traced(label string, g Gen, f TraceFunc) Gen {
	return &tracedGen{label: label, g: g, f: f}
}

// Instrument wraps g for telemetry only: the generalization of Traced
// into the event model, with no callback. Each Next becomes a yield/fail
// span in the trace ring; with tracing off the wrapper costs one atomic
// load per operation.
func Instrument(label string, g Gen) Gen {
	return &tracedGen{label: label, g: g}
}

// InstrumentStream is Instrument under a caller-chosen stream ID — used
// to tie a generator's events to an enclosing stream (a pipe, a remote
// stream) rather than allocating its own.
func InstrumentStream(label string, stream uint64, g Gen) Gen {
	return &tracedGen{label: label, stream: stream, g: g}
}

type tracedGen struct {
	label  string
	stream uint64
	g      Gen
	f      TraceFunc // optional callback sink; may be nil
}

// sid lazily allocates the stream ID the first time an event is actually
// emitted, so wrapping while telemetry is off stays free.
func (t *tracedGen) sid() uint64 {
	if t.stream == 0 {
		t.stream = telemetry.NextStream()
	}
	return t.stream
}

func (t *tracedGen) Next() (V, bool) {
	if t.f != nil {
		t.f(t.label, EvResume, nil)
	}
	tracing := telemetry.TraceOn()
	var start time.Time
	if tracing {
		start = time.Now()
	}
	v, ok := t.g.Next()
	if ok {
		if t.f != nil {
			t.f(t.label, EvYield, value.Deref(v))
		}
		if tracing {
			telemetry.EmitSpan(t.sid(), telemetry.KindYield, t.label, 0, start)
		}
	} else {
		if t.f != nil {
			t.f(t.label, EvFail, nil)
		}
		if tracing {
			telemetry.EmitSpan(t.sid(), telemetry.KindFail, t.label, 0, start)
		}
	}
	return v, ok
}

func (t *tracedGen) Restart() {
	if t.f != nil {
		t.f(t.label, EvRestart, nil)
	}
	if telemetry.TraceOn() {
		telemetry.Emit(t.sid(), telemetry.KindRestart, t.label, 0)
	}
	t.g.Restart()
}

// Tracer accumulates procedure-level trace output in Icon's &trace style:
//
//	| isprime(4)
//	| isprime failed
//	| isprime(5)
//	| isprime suspended 5
//
// with nesting depth shown by bar prefixes.
type Tracer struct {
	W     io.Writer
	depth int
}

func (t *Tracer) prefix() string { return strings.Repeat("| ", t.depth+1) }

// Call reports a procedure invocation and increases depth.
func (t *Tracer) Call(name string, args []V) {
	imgs := make([]string, len(args))
	for i, a := range args {
		imgs[i] = value.Image(value.Deref(a))
	}
	fmt.Fprintf(t.W, "%s%s(%s)\n", t.prefix(), name, strings.Join(imgs, ", "))
	t.depth++
}

// Suspend reports a result being produced.
func (t *Tracer) Suspend(name string, v V) {
	fmt.Fprintf(t.W, "%s%s suspended %s\n", t.prefix(), name, value.Image(value.Deref(v)))
}

// Return reports a procedure returning (its final result).
func (t *Tracer) Return(name string, v V) {
	t.depth--
	if t.depth < 0 {
		t.depth = 0
	}
	fmt.Fprintf(t.W, "%s%s returned %s\n", t.prefix(), name, value.Image(value.Deref(v)))
}

// Fail reports a procedure failing out.
func (t *Tracer) Fail(name string) {
	t.depth--
	if t.depth < 0 {
		t.depth = 0
	}
	fmt.Fprintf(t.W, "%s%s failed\n", t.prefix(), name)
}
