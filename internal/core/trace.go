package core

import (
	"fmt"
	"io"
	"strings"

	"junicon/internal/value"
)

// Monitoring hooks — the paper's closing future-work item ("program
// monitoring and debugging within a transformational framework is an area
// to be further explored", §9). Because every construct is an iterator,
// one wrapper suffices to observe any expression: Traced interposes on the
// kernel protocol and reports resume/yield/fail/restart events.

// Event classifies a trace event.
type Event int

// Trace events.
const (
	EvResume  Event = iota // Next called
	EvYield                // Next produced a value
	EvFail                 // Next reported failure
	EvRestart              // Restart called
)

func (e Event) String() string {
	switch e {
	case EvResume:
		return "resume"
	case EvYield:
		return "yield"
	case EvFail:
		return "fail"
	case EvRestart:
		return "restart"
	}
	return "?"
}

// TraceFunc receives trace events; v is non-nil only for EvYield.
type TraceFunc func(label string, ev Event, v V)

// Traced wraps g so every protocol operation reports to f.
func Traced(label string, g Gen, f TraceFunc) Gen {
	return &tracedGen{label: label, g: g, f: f}
}

type tracedGen struct {
	label string
	g     Gen
	f     TraceFunc
}

func (t *tracedGen) Next() (V, bool) {
	t.f(t.label, EvResume, nil)
	v, ok := t.g.Next()
	if ok {
		t.f(t.label, EvYield, value.Deref(v))
	} else {
		t.f(t.label, EvFail, nil)
	}
	return v, ok
}

func (t *tracedGen) Restart() {
	t.f(t.label, EvRestart, nil)
	t.g.Restart()
}

// Tracer accumulates procedure-level trace output in Icon's &trace style:
//
//	| isprime(4)
//	| isprime failed
//	| isprime(5)
//	| isprime suspended 5
//
// with nesting depth shown by bar prefixes.
type Tracer struct {
	W     io.Writer
	depth int
}

func (t *Tracer) prefix() string { return strings.Repeat("| ", t.depth+1) }

// Call reports a procedure invocation and increases depth.
func (t *Tracer) Call(name string, args []V) {
	imgs := make([]string, len(args))
	for i, a := range args {
		imgs[i] = value.Image(value.Deref(a))
	}
	fmt.Fprintf(t.W, "%s%s(%s)\n", t.prefix(), name, strings.Join(imgs, ", "))
	t.depth++
}

// Suspend reports a result being produced.
func (t *Tracer) Suspend(name string, v V) {
	fmt.Fprintf(t.W, "%s%s suspended %s\n", t.prefix(), name, value.Image(value.Deref(v)))
}

// Return reports a procedure returning (its final result).
func (t *Tracer) Return(name string, v V) {
	t.depth--
	if t.depth < 0 {
		t.depth = 0
	}
	fmt.Fprintf(t.W, "%s%s returned %s\n", t.prefix(), name, value.Image(value.Deref(v)))
}

// Fail reports a procedure failing out.
func (t *Tracer) Fail(name string) {
	t.depth--
	if t.depth < 0 {
		t.depth = 0
	}
	fmt.Fprintf(t.W, "%s%s failed\n", t.prefix(), name)
}
