package core

import (
	"junicon/internal/value"
)

// Promotion — the ! operator — lifts a value to a generator over its
// elements (§3: "the ! operator lifts lists as well as co-expressions to
// iterators").

// listBang generates the elements of a list as updatable references, giving
// Icon's `every !L := 0` idiom its meaning.
type listBang struct {
	l *value.List
	i int
}

func (g *listBang) Next() (V, bool) {
	if g.i >= g.l.Len() {
		g.i = 0
		return nil, false
	}
	idx := g.i + 1
	g.i++
	l := g.l
	return value.NewVar(
		func() V { v, _ := l.At(idx); return v },
		func(v V) { l.SetAt(idx, v) },
	), true
}

func (g *listBang) Restart() { g.i = 0 }

// listElems generates the elements of a list by value, without reifying an
// updatable reference per element. It is the allocation-lean promotion for
// kernel-internal drives (map-reduce chunk iteration) where the consumer
// dereferences immediately and never assigns through the reference.
type listElems struct {
	l *value.List
	i int
}

func (g *listElems) Next() (V, bool) {
	if g.i >= g.l.Len() {
		g.i = 0
		return nil, false
	}
	g.i++
	v, _ := g.l.At(g.i)
	if v == nil {
		v = value.NullV
	}
	return v, true
}

func (g *listElems) Restart() { g.i = 0 }

// Elements returns a read-only element generator over l; unlike PromoteVal
// it yields values, not variables, so `every !L := e` semantics do NOT hold
// through it.
func Elements(l *value.List) Gen { return &listElems{l: l} }

// stringBang generates the one-character substrings of a string.
type stringBang struct {
	s string
	i int
}

func (g *stringBang) Next() (V, bool) {
	if g.i >= len(g.s) {
		g.i = 0
		return nil, false
	}
	v := value.String(g.s[g.i : g.i+1])
	g.i++
	return v, true
}

func (g *stringBang) Restart() { g.i = 0 }

// PromoteVal returns the element generator for v — the unary ! applied to an
// already-evaluated operand:
//
//   - lists generate their elements (as updatable references);
//   - strings and csets generate one-character strings;
//   - tables generate their stored values, sets their members;
//   - records generate their field values;
//   - first-class iterator values (co-expressions, pipes) resume stepping;
//   - numerics convert to string first.
func PromoteVal(v V) Gen {
	switch x := value.Deref(v).(type) {
	case *value.List:
		return &listBang{l: x}
	case value.String:
		return &stringBang{s: string(x)}
	case *value.Cset:
		return &stringBang{s: x.Members()}
	case *value.Table:
		keys := x.Keys()
		vals := make([]V, len(keys))
		for i, k := range keys {
			vals[i] = x.Get(k)
		}
		return Values(vals...)
	case *value.Set:
		return Values(x.Members()...)
	case *value.Record:
		return Values(x.Values...)
	case Stepper:
		return Bang(x)
	case value.Integer, value.Real:
		s, _ := value.ToString(x)
		return &stringBang{s: string(s)}
	default:
		value.Raise(value.ErrString, "!: cannot generate elements", value.Deref(v))
	}
	panic("unreachable")
}

// Promote composes ! over a generator operand.
func Promote(e Gen) Gen { return Apply1(PromoteVal, e) }

// KeyVal generates the keys of a table (the key(T) built-in) for an
// already-evaluated operand.
func KeyVal(v V) Gen {
	switch x := value.Deref(v).(type) {
	case *value.Table:
		return Values(x.Keys()...)
	case *value.List:
		n := x.Len()
		return IntRange(1, int64(n))
	default:
		value.Raise(value.ErrNotTable, "key: table expected", value.Deref(v))
	}
	panic("unreachable")
}
