package core

import (
	"junicon/internal/value"
)

// String scanning — the application domain the paper singles out ("such
// search has particular application in string processing, the forte of
// Icon and Unicon", §2A). A scanning expression e1 ? e2 establishes a
// scanning environment (&subject = e1, &pos = 1) around the evaluation of
// e2; the matching functions tab and move change &pos reversibly, so
// backtracking search undoes partial matches.
//
// The environment is dynamically scoped with Icon's swap discipline: while
// e2 is suspended, the outer environment is restored, and resuming e2
// re-installs its own — implemented directly over the explicit Next
// protocol. Environments are per ScanHolder; the interpreter allocates one
// holder per interpreter instance (Unicon gives each thread its own
// &subject, so per-evaluation-context state is the faithful model).

// ScanState is one scanning environment: &subject and &pos (1-based,
// position-between-characters).
type ScanState struct {
	Subject string
	Pos     int
}

// ScanHolder carries the current scanning environment of one evaluation
// context.
type ScanHolder struct {
	cur *ScanState
}

// NewScanHolder returns a holder with no active scanning environment.
func NewScanHolder() *ScanHolder { return &ScanHolder{} }

// Current returns the active environment, or nil outside any scan.
func (h *ScanHolder) Current() *ScanState { return h.cur }

// Swap installs s as the active environment and returns the previous one —
// the primitive behind Icon's save/restore discipline around scanning
// expressions and their suspensions.
func (h *ScanHolder) Swap(s *ScanState) *ScanState {
	old := h.cur
	h.cur = s
	return old
}

// need returns the active environment, raising Icon error 103 outside a
// scan (as Icon does when &subject-defaulting functions run with no
// subject — &subject defaults to the empty string; we surface the
// practically-always-a-bug case as a failure instead).
func (h *ScanHolder) need() (*ScanState, bool) {
	if h.cur == nil {
		return nil, false
	}
	return h.cur, true
}

// scanGen implements e1 ? e2 over already-searched operands: body is
// evaluated inside a fresh environment per subject value.
type scanGen struct {
	h       *ScanHolder
	subject Gen
	mkBody  func() Gen

	body  Gen
	inner *ScanState
}

func (g *scanGen) Next() (V, bool) {
	for {
		if g.body == nil {
			sv, ok := g.subject.Next()
			if !ok {
				return nil, false
			}
			s, oks := value.ToString(value.Deref(sv))
			if !oks {
				value.Raise(value.ErrString, "?: string subject expected", value.Deref(sv))
			}
			g.inner = &ScanState{Subject: string(s), Pos: 1}
			g.body = g.mkBody()
		}
		// Swap in the scan environment for the body step, out afterwards.
		outer := g.h.cur
		g.h.cur = g.inner
		v, ok := g.body.Next()
		if ok {
			// Dereference inside the environment: results that are
			// environment-dependent variables (&subject, &pos) must be
			// resolved before the swap-out makes them read another scan.
			v = value.Deref(v)
		}
		g.h.cur = outer
		if ok {
			return v, true
		}
		// Body exhausted for this subject: resume the subject operand.
		g.body = nil
		g.inner = nil
	}
}

func (g *scanGen) Restart() {
	g.subject.Restart()
	g.body = nil
	g.inner = nil
}

// ScanExpr builds e1 ? e2. The body is compiled lazily per subject value
// (mkBody), so each scan cycle runs a fresh body over a fresh environment.
func ScanExpr(h *ScanHolder, subject Gen, mkBody func() Gen) Gen {
	return &scanGen{h: h, subject: subject, mkBody: mkBody}
}

// normPos converts an Icon position (possibly nonpositive) to 1-based,
// validating range; ok is false for out-of-range positions (failure).
// Positions run 1..n+1; 0 names the position after the last character.
func normPos(p, n int) (int, bool) {
	if p <= 0 {
		p = n + 1 + p
	}
	if p < 1 || p > n+1 {
		return 0, false
	}
	return p, true
}

// tabGen implements tab(i): set &pos to i, producing the substring between
// the old and new positions; restores &pos when resumed — the data-driven
// reversible effect of §5B's "optionally reversible" iteration.
type tabGen struct {
	h     *ScanHolder
	pos   Gen // position operand
	saved int
	live  bool
}

func (g *tabGen) Next() (V, bool) {
	st, ok := g.h.need()
	if !ok {
		return nil, false
	}
	if g.live {
		// Resumption: restore and try the next position operand value.
		st.Pos = g.saved
		g.live = false
	}
	pv, ok := g.pos.Next()
	if !ok {
		return nil, false
	}
	p, ok := normPos(value.MustInt(value.Deref(pv)), len(st.Subject))
	if !ok {
		return g.Next() // out-of-range position: try next operand value
	}
	g.saved = st.Pos
	g.live = true
	lo, hi := st.Pos, p
	if lo > hi {
		lo, hi = hi, lo
	}
	st.Pos = p
	return value.String(st.Subject[lo-1 : hi-1]), true
}

func (g *tabGen) Restart() {
	// Restart is a fresh cycle, not a resumption: Icon undoes tab's effect
	// only when tab is resumed (handled in Next); a bounded tab that is
	// never resumed keeps its position change.
	g.live = false
	g.pos.Restart()
}

// Tab builds tab(i) over a position operand.
func Tab(h *ScanHolder, pos Gen) Gen { return &tabGen{h: h, pos: pos} }

// moveGen implements move(i): advance &pos by i (may be negative),
// producing the traversed substring; reversible like tab.
type moveGen struct {
	h     *ScanHolder
	dist  Gen
	saved int
	live  bool
}

func (g *moveGen) Next() (V, bool) {
	st, ok := g.h.need()
	if !ok {
		return nil, false
	}
	if g.live {
		st.Pos = g.saved
		g.live = false
	}
	dv, ok := g.dist.Next()
	if !ok {
		return nil, false
	}
	d := value.MustInt(value.Deref(dv))
	target := st.Pos + d
	if target < 1 || target > len(st.Subject)+1 {
		return g.Next()
	}
	g.saved = st.Pos
	g.live = true
	lo, hi := st.Pos, target
	if lo > hi {
		lo, hi = hi, lo
	}
	st.Pos = target
	return value.String(st.Subject[lo-1 : hi-1]), true
}

func (g *moveGen) Restart() {
	// See tabGen.Restart: no undo on fresh cycles.
	g.live = false
	g.dist.Restart()
}

// Move builds move(i) over a distance operand.
func Move(h *ScanHolder, dist Gen) Gen { return &moveGen{h: h, dist: dist} }

// ScanBuiltins returns the scanning function library bound to a holder:
// tab, move, pos, and &subject-defaulting forms of the string analysis
// functions (find, upto, many, any, match with the subject omitted).
func ScanBuiltins(h *ScanHolder) map[string]value.V {
	b := map[string]value.V{}

	b["tab"] = value.NewProc("tab", 1, func(args ...value.V) Gen {
		return Tab(h, Values(args...))
	})
	b["move"] = value.NewProc("move", 1, func(args ...value.V) Gen {
		return Move(h, Values(args...))
	})
	b["pos"] = ValProc("pos", 1, func(args []value.V) value.V {
		st, ok := h.need()
		if !ok {
			return nil
		}
		p, ok := normPos(value.MustInt(args[0]), len(st.Subject))
		if !ok || p != st.Pos {
			return nil
		}
		return value.IntV(int64(st.Pos))
	})

	// Subject-defaulting analysis generators: when the subject argument is
	// null, s defaults to &subject and i to &pos (Icon's convention).
	subjectDefault := func(name string, fn func(st *ScanState, arg value.V, yield func(value.V) bool)) *value.Proc {
		return GenProc(name, 2, func(args []value.V, yield func(value.V) bool) {
			st, ok := h.need()
			if !ok {
				return
			}
			fn(st, value.Deref(args[0]), yield)
		})
	}
	b["tabMatch"] = subjectDefault("tabMatch", func(st *ScanState, arg value.V, yield func(value.V) bool) {
		// =s is tab(match(s)) in Icon; provided as a function here.
		pat := string(value.MustString(arg))
		if st.Pos-1+len(pat) <= len(st.Subject) && st.Subject[st.Pos-1:st.Pos-1+len(pat)] == pat {
			old := st.Pos
			st.Pos += len(pat)
			if !yield(value.String(pat)) {
				return
			}
			st.Pos = old // reversible on resumption
		}
	})
	b["matchAt"] = subjectDefault("matchAt", func(st *ScanState, arg value.V, yield func(value.V) bool) {
		// match(s) against &subject at &pos: yields the position after the
		// match without moving &pos.
		pat := string(value.MustString(arg))
		if st.Pos-1+len(pat) <= len(st.Subject) && st.Subject[st.Pos-1:st.Pos-1+len(pat)] == pat {
			yield(value.IntV(int64(st.Pos + len(pat))))
		}
	})
	b["findAt"] = subjectDefault("findAt", func(st *ScanState, arg value.V, yield func(value.V) bool) {
		pat := string(value.MustString(arg))
		if pat == "" {
			return
		}
		for i := st.Pos - 1; i+len(pat) <= len(st.Subject); i++ {
			if st.Subject[i:i+len(pat)] == pat {
				if !yield(value.IntV(int64(i + 1))) {
					return
				}
			}
		}
	})
	b["uptoAt"] = subjectDefault("uptoAt", func(st *ScanState, arg value.V, yield func(value.V) bool) {
		c := value.MustCset(arg)
		for i := st.Pos - 1; i < len(st.Subject); i++ {
			if c.Contains(rune(st.Subject[i])) {
				if !yield(value.IntV(int64(i + 1))) {
					return
				}
			}
		}
	})
	b["manyAt"] = subjectDefault("manyAt", func(st *ScanState, arg value.V, yield func(value.V) bool) {
		c := value.MustCset(arg)
		i := st.Pos - 1
		for i < len(st.Subject) && c.Contains(rune(st.Subject[i])) {
			i++
		}
		if i >= st.Pos {
			yield(value.IntV(int64(i + 1)))
		}
	})
	b["anyAt"] = subjectDefault("anyAt", func(st *ScanState, arg value.V, yield func(value.V) bool) {
		c := value.MustCset(arg)
		if st.Pos-1 < len(st.Subject) && c.Contains(rune(st.Subject[st.Pos-1])) {
			yield(value.IntV(int64(st.Pos + 1)))
		}
	})
	return b
}
