package core

import (
	"junicon/internal/value"
)

// Control constructs, expressed — as in the paper — as subtypes of the one
// iterator kernel: while, every, if and friends are just "abbreviations"
// built from the stream operations (§5B).

// breakSignal and nextSignal implement Icon's break/next by non-local exit:
// loop iterators catch them; the interpreter's loop bodies throw them.
type breakSignal struct {
	g Gen // outcome generator of `break e`; Empty for a bare break
}

type nextSignal struct{}

// Break aborts the lexically innermost kernel loop; the loop's outcome
// becomes e's outcome (bare break uses Empty()).
func Break(e Gen) {
	if e == nil {
		e = Empty()
	}
	panic(breakSignal{g: e})
}

// NextIter aborts the current loop body iteration (the next expression).
func NextIter() { panic(nextSignal{}) }

// loopStep runs one bounded evaluation of body, translating next-signals
// into normal completion and propagating break to the caller's recover.
func loopStep(body Gen) {
	if body == nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nextSignal); ok {
				body.Restart()
				return
			}
			panic(r)
		}
	}()
	body.Next() // bounded: at most one result, discarded
	body.Restart()
}

// RunLoop executes loop, catching break signals raised by Break; it returns
// the break outcome generator, or nil if the loop ended normally. Exposed
// for the interpreter's structural execution of procedure bodies, which
// shares the kernel's break/next discipline.
func RunLoop(loop func()) (brk Gen) { return runLoop(loop) }

// TrapNext runs f, treating a NextIter signal as normal completion.
// Exposed for the interpreter's structural loop bodies.
func TrapNext(f func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(nextSignal); ok {
				return
			}
			panic(r)
		}
	}()
	f()
}

// runLoop executes loop, catching break; it returns the break outcome
// generator, or nil if the loop ended normally.
func runLoop(loop func()) (brk Gen) {
	defer func() {
		if r := recover(); r != nil {
			if b, ok := r.(breakSignal); ok {
				brk = b.g
				return
			}
			panic(r)
		}
	}()
	loop()
	return nil
}

// whileGen implements while e1 do e2.
type whileGen struct {
	cond, body Gen
	until      bool
	out        Gen // break outcome being delegated
}

func (g *whileGen) Next() (V, bool) {
	if g.out != nil {
		v, ok := g.out.Next()
		if !ok {
			g.out = nil
		}
		return v, ok
	}
	brk := runLoop(func() {
		for {
			_, ok := g.cond.Next()
			g.cond.Restart()
			if g.until {
				ok = !ok
			}
			if !ok {
				return
			}
			loopStep(g.body)
		}
	})
	if brk != nil {
		g.out = brk
		return g.Next()
	}
	return nil, false
}

func (g *whileGen) Restart() {
	g.cond.Restart()
	if g.body != nil {
		g.body.Restart()
	}
	g.out = nil
}

// While implements `while cond do body` (body may be nil). The loop
// expression fails unless terminated by break e.
func While(cond, body Gen) Gen { return &whileGen{cond: cond, body: body} }

// Until implements `until cond do body`.
func Until(cond, body Gen) Gen { return &whileGen{cond: cond, body: body, until: true} }

// everyGen implements every e1 do e2: drive e1 to failure, evaluating the
// bounded body for each result.
type everyGen struct {
	e, body Gen
	out     Gen
}

func (g *everyGen) Next() (V, bool) {
	if g.out != nil {
		v, ok := g.out.Next()
		if !ok {
			g.out = nil
		}
		return v, ok
	}
	brk := runLoop(func() {
		for {
			if _, ok := g.e.Next(); !ok {
				return
			}
			loopStep(g.body)
		}
	})
	if brk != nil {
		g.out = brk
		return g.Next()
	}
	return nil, false
}

func (g *everyGen) Restart() {
	g.e.Restart()
	if g.body != nil {
		g.body.Restart()
	}
	g.out = nil
}

// Every implements `every e do body` (body may be nil); the construct fails.
func Every(e, body Gen) Gen { return &everyGen{e: e, body: body} }

// repeatLoopGen implements `repeat body`.
type repeatLoopGen struct {
	body Gen
	out  Gen
}

func (g *repeatLoopGen) Next() (V, bool) {
	if g.out != nil {
		v, ok := g.out.Next()
		if !ok {
			g.out = nil
		}
		return v, ok
	}
	brk := runLoop(func() {
		for {
			loopStep(g.body)
		}
	})
	if brk != nil {
		g.out = brk
		return g.Next()
	}
	return nil, false
}

func (g *repeatLoopGen) Restart() {
	g.body.Restart()
	g.out = nil
}

// RepeatLoop implements `repeat body`; only break terminates it.
func RepeatLoop(body Gen) Gen { return &repeatLoopGen{body: body} }

// ifGen implements if e1 then e2 else e3: the condition is bounded; the
// selected branch supplies the result sequence (if is generative through
// its branch).
type ifGen struct {
	cond, then, els Gen
	branch          Gen
}

func (g *ifGen) Next() (V, bool) {
	if g.branch == nil {
		_, ok := g.cond.Next()
		g.cond.Restart()
		if ok {
			g.branch = g.then
		} else {
			if g.els == nil {
				return nil, false
			}
			g.branch = g.els
		}
	}
	v, ok := g.branch.Next()
	if !ok {
		g.branch = nil
	}
	return v, ok
}

func (g *ifGen) Restart() {
	g.cond.Restart()
	g.then.Restart()
	if g.els != nil {
		g.els.Restart()
	}
	g.branch = nil
}

// IfThen implements `if cond then then else els`; els may be nil, in which
// case a failing condition fails the expression.
func IfThen(cond, then, els Gen) Gen { return &ifGen{cond: cond, then: then, els: els} }

// notGen implements not e: a bounded expression producing at most one
// result (null) per cycle.
type notGen struct {
	e    Gen
	done bool
}

func (g *notGen) Next() (V, bool) {
	if g.done {
		g.done = false
		return nil, false
	}
	_, ok := g.e.Next()
	g.e.Restart()
	if ok {
		return nil, false
	}
	g.done = true
	return value.NullV, true
}

func (g *notGen) Restart() {
	g.e.Restart()
	g.done = false
}

// Not implements `not e`: fails if e succeeds, succeeds with null otherwise.
func Not(e Gen) Gen { return &notGen{e: e} }

// caseGen implements case e of { c1: b1; …; default: bd }.
type caseGen struct {
	subject Gen
	clauses []CaseClause
	deflt   Gen
	branch  Gen
}

// CaseClause pairs a selector generator with a branch body. The selector's
// results are compared to the subject with === (value equivalence).
type CaseClause struct {
	Sel  Gen
	Body Gen
}

func (g *caseGen) Next() (V, bool) {
	if g.branch == nil {
		sv, ok := g.subject.Next()
		g.subject.Restart()
		if !ok {
			return nil, false
		}
		subject := value.Deref(sv)
		for _, c := range g.clauses {
			matched := false
			Each(c.Sel, func(v V) bool {
				if value.Equiv(subject, v) {
					matched = true
					return false
				}
				return true
			})
			c.Sel.Restart()
			if matched {
				g.branch = c.Body
				break
			}
		}
		if g.branch == nil {
			if g.deflt == nil {
				return nil, false
			}
			g.branch = g.deflt
		}
	}
	v, ok := g.branch.Next()
	if !ok {
		g.branch = nil
	}
	return v, ok
}

func (g *caseGen) Restart() {
	g.subject.Restart()
	for _, c := range g.clauses {
		c.Sel.Restart()
		c.Body.Restart()
	}
	if g.deflt != nil {
		g.deflt.Restart()
	}
	g.branch = nil
}

// Case implements the case expression; deflt may be nil.
func Case(subject Gen, clauses []CaseClause, deflt Gen) Gen {
	return &caseGen{subject: subject, clauses: clauses, deflt: deflt}
}
