// Package core implements the goal-directed iterator kernel — the Go
// analogue of the paper's IconIterator runtime (§5B): suspendable,
// failure-driven, optionally reversible iterators and the functional forms
// (product, alternation, limit, bound iteration, promotion, …) that
// transformed generator expressions compose.
//
// # Protocol
//
// A generator is a value.Gen: Next() produces the next result or reports
// failure (ok == false), and Restart() resets to the beginning. Following
// the paper, failure also rewinds: after Next returns ok == false the
// iterator is ready to produce its sequence again on the following Next.
// Combinators such as Product and Repeat rely on that auto-restart.
//
// # Errors
//
// Icon runtime errors (type mismatches, division by zero, …) abort
// evaluation: the kernel raises them as *value.RuntimeError panics. Protect
// converts such a panic back into an ordinary Go error at API boundaries.
package core

import (
	"junicon/internal/telemetry"
	"junicon/internal/value"
)

// Gen is re-exported for brevity; see value.Gen.
type Gen = value.Gen

// V is re-exported for brevity; see value.V.
type V = value.V

// failGen always fails.
type failGen struct{}

func (failGen) Next() (V, bool) { return nil, false }
func (failGen) Restart()        {}

// Empty returns a generator with an empty result sequence (&fail).
func Empty() Gen { return failGen{} }

// unitGen produces one value per cycle.
type unitGen struct {
	v    V
	done bool
}

func (g *unitGen) Next() (V, bool) {
	if g.done {
		g.done = false // auto-restart after failure
		return nil, false
	}
	g.done = true
	return g.v, true
}
func (g *unitGen) Restart() { g.done = false }

// Unit returns a singleton generator producing just v — the lifting of a
// plain host value into goal-directed evaluation (§5A: "invocation just
// promotes the result to a singleton iterator").
func Unit(v V) Gen {
	if v == nil {
		v = value.NullV
	}
	return &unitGen{v: v}
}

// sliceGen produces a fixed sequence of values.
type sliceGen struct {
	vals []V
	i    int
}

func (g *sliceGen) Next() (V, bool) {
	if g.i >= len(g.vals) {
		g.i = 0
		return nil, false
	}
	v := g.vals[g.i]
	g.i++
	return v, true
}
func (g *sliceGen) Restart() { g.i = 0 }

// Values returns a generator over the given values in order.
func Values(vs ...V) Gen {
	c := make([]V, len(vs))
	copy(c, vs)
	return &sliceGen{vals: c}
}

// ValuesOf returns a generator over vs without copying; the caller must not
// mutate vs afterwards. It is the allocation-lean form of Values for hot
// paths that build the slice themselves.
func ValuesOf(vs []V) Gen { return &sliceGen{vals: vs} }

// deferGen lazily builds its delegate on first use; Restart discards it.
// Used for recursive generator definitions.
type deferGen struct {
	make func() Gen
	g    Gen
}

func (d *deferGen) Next() (V, bool) {
	if d.g == nil {
		d.g = d.make()
	}
	v, ok := d.g.Next()
	if !ok {
		d.g = nil
	}
	return v, ok
}
func (d *deferGen) Restart() { d.g = nil }

// Defer returns a generator that calls make to obtain a fresh delegate each
// cycle. It is the building block for recursion and for restartable
// environments.
func Defer(make func() Gen) Gen { return &deferGen{make: make} }

// Drain runs g to failure, collecting at most max results (max <= 0 means
// unbounded). It is the driving loop that in the paper only happens "at the
// outermost level of interaction".
func Drain(g Gen, max int) []V {
	var out []V
	for {
		v, ok := g.Next()
		if telemetry.On() {
			countNext(ok)
		}
		if !ok {
			return out
		}
		out = append(out, value.Deref(v))
		if max > 0 && len(out) >= max {
			return out
		}
	}
}

// First returns g's first result, dereferenced.
func First(g Gen) (V, bool) {
	v, ok := g.Next()
	if telemetry.On() {
		countNext(ok)
	}
	if !ok {
		return nil, false
	}
	return value.Deref(v), true
}

// Each applies f to every result of g. If f returns false, iteration stops.
func Each(g Gen, f func(V) bool) {
	for {
		v, ok := g.Next()
		if telemetry.On() {
			countNext(ok)
		}
		if !ok {
			return
		}
		if !f(value.Deref(v)) {
			return
		}
	}
}

// Count drives g to failure and returns the number of results.
func Count(g Gen) int {
	n := 0
	for {
		_, ok := g.Next()
		if telemetry.On() {
			countNext(ok)
		}
		if !ok {
			return n
		}
		n++
	}
}

// Protect invokes f, converting an Icon runtime-error panic into an error.
// Public entry points wrap kernel use in Protect so that library users see
// ordinary Go errors.
func Protect(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(*value.RuntimeError); ok {
				err = re
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// Stepper is a first-class iterator value: the common protocol of
// first-class generators (<>e), co-expressions (|<>e) and pipes (|>e) from
// the calculus of Figure 1. Step is the activation operator @ (optionally
// transmitting a value into the iterator); Refresh is the restart operator ^
// which returns a rewound iterator over a fresh copy of the environment.
type Stepper interface {
	value.V
	Step(transmit V) (V, bool)
	Refresh() Stepper
}

// FirstClass is <>e: a plain expression lifted into a first-class iterator
// value with no environment shadowing and no thread.
type FirstClass struct {
	G       Gen
	results int
}

// NewFirstClass lifts g into a first-class iterator value.
func NewFirstClass(g Gen) *FirstClass { return &FirstClass{G: g} }

// Step advances one iteration (@); the transmitted value is ignored.
func (f *FirstClass) Step(V) (V, bool) {
	v, ok := f.G.Next()
	if telemetry.On() {
		countNext(ok)
	}
	if ok {
		f.results++
	}
	return v, ok
}

// Refresh rewinds the underlying generator (^) and returns the receiver.
func (f *FirstClass) Refresh() Stepper {
	if telemetry.On() {
		cRestarts.Inc()
	}
	f.G.Restart()
	f.results = 0
	return f
}

// Size reports the number of results produced so far (*C in Icon).
func (f *FirstClass) Size() int { return f.results }

func (f *FirstClass) Type() string  { return "co-expression" }
func (f *FirstClass) Image() string { return "co-expression" }

// stepGen adapts a Stepper back into a generator — the ! operator of the
// calculus: !e → repeatUntilFailure(suspend @e).
type stepGen struct {
	s Stepper
}

func (g *stepGen) Next() (V, bool) { return g.s.Step(value.NullV) }
func (g *stepGen) Restart()        { g.s = g.s.Refresh() }

// Bang promotes a first-class iterator value back into a generator (!c).
func Bang(s Stepper) Gen { return &stepGen{s: s} }

// Step applies the activation operator @ to a value, raising Icon error 118
// when the operand is not a co-expression-like value.
func Step(c V, transmit V) (V, bool) {
	s, ok := value.Deref(c).(Stepper)
	if !ok {
		value.Raise(value.ErrNotCoexpr, "co-expression expected", value.Deref(c))
	}
	return s.Step(transmit)
}

// Refresh applies the restart operator ^ to a value.
func Refresh(c V) V {
	s, ok := value.Deref(c).(Stepper)
	if !ok {
		value.Raise(value.ErrNotCoexpr, "co-expression expected", value.Deref(c))
	}
	return s.Refresh()
}
