package core

import (
	"testing"

	"junicon/internal/value"
)

func TestIndexGenReferencesAndFailure(t *testing.T) {
	l := value.NewList(value.NewInt(10), value.NewInt(20))
	g := IndexGen(Unit(l), Unit(value.NewInt(2)))
	v, ok := g.Next()
	if !ok {
		t.Fatal("index failed")
	}
	v.(*value.Var).Set(value.NewInt(99))
	if l.Image() != "[10,99]" {
		t.Fatal("index reference not updatable")
	}
	if _, ok := IndexGen(Unit(l), Unit(value.NewInt(5))).Next(); ok {
		t.Fatal("out-of-range index must fail")
	}
	// Generator index searches positions.
	n := Count(IndexGen(Unit(l), IntRange(1, 3)))
	if n != 2 {
		t.Fatalf("index over range = %d results", n)
	}
}

func TestSectionGen(t *testing.T) {
	v, ok := First(SectionGen(Unit(value.String("hello")), Unit(value.NewInt(2)), Unit(value.NewInt(4))))
	if !ok || v.(value.String) != "el" {
		t.Fatalf("section = %v", v)
	}
	if _, ok := SectionGen(Unit(value.String("hi")), Unit(value.NewInt(1)), Unit(value.NewInt(9))).Next(); ok {
		t.Fatal("bad section must fail")
	}
}

func TestFieldGenUpdatable(t *testing.T) {
	r := value.NewRecord("p", []string{"x"}, []value.V{value.NewInt(1)})
	v, ok := FieldGen(Unit(r), "x").Next()
	if !ok {
		t.Fatal("field failed")
	}
	v.(*value.Var).Set(value.NewInt(7))
	if got, _ := r.GetField("x"); value.Image(got) != "7" {
		t.Fatal("field reference not updatable")
	}
	err := Protect(func() { FieldGen(Unit(r), "nope").Next() })
	if err == nil {
		t.Fatal("missing field should raise")
	}
}

func TestActivateGen(t *testing.T) {
	c := NewFirstClass(IntRange(5, 6))
	got := Drain(Limit(ActivateGen(nil, Unit(c)), 1), 0)
	if len(got) != 1 || value.Image(got[0]) != "5" {
		t.Fatalf("@c = %v", got)
	}
	// Exhausted co-expression fails the activation.
	c2 := NewFirstClass(Empty())
	if _, ok := ActivateGen(nil, Unit(c2)).Next(); ok {
		t.Fatal("activation of exhausted co-expression must fail")
	}
}

func TestNullTests(t *testing.T) {
	if _, ok := NullTest(Unit(value.NullV)).Next(); !ok {
		t.Fatal("/null must succeed")
	}
	if _, ok := NullTest(Unit(value.NewInt(1))).Next(); ok {
		t.Fatal("/1 must fail")
	}
	v, ok := NonNullTest(Unit(value.NewInt(1))).Next()
	if !ok || value.Image(v) != "1" {
		t.Fatal("\\1 must succeed with 1")
	}
	if _, ok := NonNullTest(Unit(value.NullV)).Next(); ok {
		t.Fatal("\\null must fail")
	}
}

func TestLimitGenEvaluatesCountFirst(t *testing.T) {
	got := Drain(LimitGen(IntRange(1, 100), Unit(value.NewInt(2))), 0)
	if len(got) != 2 {
		t.Fatalf("limit = %v", got)
	}
}

func TestSizeOpOnStepper(t *testing.T) {
	c := NewFirstClass(IntRange(1, 5))
	c.Step(value.NullV)
	c.Step(value.NullV)
	v, _ := First(SizeOp(Unit(c)))
	if value.Image(v) != "2" {
		t.Fatalf("*c = %v", v)
	}
}

func TestRandomElement(t *testing.T) {
	for i := 0; i < 20; i++ {
		v, ok := RandomElement(value.NewInt(3))
		if !ok {
			t.Fatal("?3 must succeed")
		}
		n, _ := value.ToInteger(v)
		if i64, _ := n.Int64(); i64 < 1 || i64 > 3 {
			t.Fatalf("?3 = %v", v)
		}
	}
	if _, ok := RandomElement(value.NewInt(0)); ok {
		t.Fatal("?0 must fail")
	}
	v, ok := RandomElement(value.String("x"))
	if !ok || v.(value.String) != "x" {
		t.Fatal("?\"x\"")
	}
	if _, ok := RandomElement(value.String("")); ok {
		t.Fatal("?\"\" must fail")
	}
	l := value.NewList(value.NewInt(9))
	if v, ok := RandomElement(l); !ok || value.Image(value.Deref(v)) != "9" {
		t.Fatal("?list")
	}
	if _, ok := RandomElement(value.NewTable(value.NullV)); ok {
		t.Fatal("?table unsupported must fail")
	}
}

func TestCaseMatches(t *testing.T) {
	sel := Values(value.NewInt(1), value.NewInt(2))
	if !CaseMatches(value.NewInt(2), sel) {
		t.Fatal("should match 2")
	}
	if CaseMatches(value.NewInt(3), sel) {
		t.Fatal("should not match 3")
	}
}

func TestListOfBoundedElements(t *testing.T) {
	v, ok := First(ListOf(IntRange(1, 5), Unit(value.NewInt(9))))
	if !ok || v.(*value.List).Image() != "[1,9]" {
		t.Fatalf("ListOf = %v", v)
	}
	// Element failure fails the constructor.
	if _, ok := ListOf(Unit(value.NewInt(1)), Empty()).Next(); ok {
		t.Fatal("failing element must fail the list")
	}
	if v, _ := First(ListOf()); v.(*value.List).Len() != 0 {
		t.Fatal("empty list constructor")
	}
}

func TestAssignToFamilies(t *testing.T) {
	x := value.NewCell(value.NewInt(1))
	y := value.NewCell(value.NewInt(2))

	Drain(SwapTo(Unit(x), Unit(y)), 1)
	if value.Image(x.Get()) != "2" || value.Image(y.Get()) != "1" {
		t.Fatal("SwapTo")
	}

	g := RevSwapTo(Unit(x), Unit(y))
	g.Next()
	if value.Image(x.Get()) != "1" {
		t.Fatal("RevSwapTo exchange")
	}
	g.Next()
	if value.Image(x.Get()) != "2" {
		t.Fatal("RevSwapTo restore")
	}

	Drain(AugAssignTo(value.Add, Unit(x), Unit(value.NewInt(10))), 1)
	if value.Image(x.Get()) != "12" {
		t.Fatal("AugAssignTo")
	}

	if _, ok := CmpAugAssignTo(value.NumLt, Unit(x), Unit(value.NewInt(5))).Next(); ok {
		t.Fatal("12 <:= 5 must fail")
	}
	if _, ok := CmpAugAssignTo(value.NumLt, Unit(x), Unit(value.NewInt(50))).Next(); !ok {
		t.Fatal("12 <:= 50 must succeed")
	}
	if value.Image(x.Get()) != "50" {
		t.Fatal("conditional assignment value")
	}

	rg := RevAssignTo(Unit(x), Values(value.NewInt(7)))
	rg.Next()
	if value.Image(x.Get()) != "7" {
		t.Fatal("RevAssignTo assign")
	}
	rg.Next() // exhausted: restores
	if value.Image(x.Get()) != "50" {
		t.Fatal("RevAssignTo restore")
	}

	// Non-variable targets raise.
	err := Protect(func() { Drain(AugAssignTo(value.Add, Unit(value.NewInt(1)), Unit(value.NewInt(1))), 1) })
	if err == nil {
		t.Fatal("augmented assignment to value should raise")
	}
}

func TestOpTables(t *testing.T) {
	for _, op := range []string{"+", "-", "*", "/", "%", "^", "||", "|||", "++", "--", "**"} {
		if _, ok := ArithOp(op); !ok {
			t.Errorf("missing arith op %s", op)
		}
	}
	for _, op := range []string{"<", "<=", ">", ">=", "~=", "<<", "<<=", ">>", ">>=", "==", "~==", "===", "~==="} {
		if _, ok := CompareOp(op); !ok {
			t.Errorf("missing compare op %s", op)
		}
	}
	if _, ok := ArithOp("nope"); ok {
		t.Error("unknown arith op should miss")
	}
}

func TestBreakGenAndNextGenSignals(t *testing.T) {
	// BreakGen inside a kernel loop terminates it with the outcome.
	loop := RepeatLoop(BreakGen(Unit(value.NewInt(5))))
	v, ok := loop.Next()
	if !ok || value.Image(value.Deref(v)) != "5" {
		t.Fatalf("break outcome = %v %v", v, ok)
	}
	// NextGen skips to the next iteration; pair with a break via alternation
	// driven by a counter.
	n := 0
	body := Defer(func() Gen {
		n++
		if n < 3 {
			return NextGen()
		}
		return BreakGen(nil)
	})
	Drain(RepeatLoop(body), 0)
	if n != 3 {
		t.Fatalf("iterations = %d", n)
	}
}
