package core

import (
	"testing"
	"testing/quick"

	"junicon/internal/value"
)

// genFromBytes builds a small deterministic generator from fuzz bytes.
func genFromBytes(bs []byte) Gen {
	vs := make([]V, 0, len(bs))
	for _, b := range bs {
		vs = append(vs, value.NewInt(int64(b%16)))
	}
	return Values(vs...)
}

func imagesOf(vs []V) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = value.Image(v)
	}
	return out
}

func sameSeq(a, b []V) bool {
	if len(a) != len(b) {
		return false
	}
	ia, ib := imagesOf(a), imagesOf(b)
	for i := range ia {
		if ia[i] != ib[i] {
			return false
		}
	}
	return true
}

// Product cardinality: |a & b| == |a| * |b|.
func TestPropProductCardinality(t *testing.T) {
	f := func(a, b []byte) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		n := Count(Product(genFromBytes(a), genFromBytes(b)))
		return n == len(a)*len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Alternation is sequence concatenation.
func TestPropAltIsConcatenation(t *testing.T) {
	f := func(a, b []byte) bool {
		got := Drain(Alt(genFromBytes(a), genFromBytes(b)), 0)
		want := append(Drain(genFromBytes(a), 0), Drain(genFromBytes(b), 0)...)
		return sameSeq(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Limit laws: |e \ n| == min(|e|, n); prefix property.
func TestPropLimitLaws(t *testing.T) {
	f := func(a []byte, n uint8) bool {
		lim := int(n % 40)
		got := Drain(Limit(genFromBytes(a), lim), 0)
		all := Drain(genFromBytes(a), 0)
		want := all
		if lim < len(all) {
			want = all[:lim]
		}
		if lim == 0 {
			want = nil
		}
		return sameSeq(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Auto-restart: draining twice produces the same sequence, for every
// combinator shape.
func TestPropDrainIsIdempotent(t *testing.T) {
	shapes := []func(a, b []byte) Gen{
		func(a, b []byte) Gen { return genFromBytes(a) },
		func(a, b []byte) Gen { return Alt(genFromBytes(a), genFromBytes(b)) },
		func(a, b []byte) Gen { return Product(genFromBytes(a), genFromBytes(b)) },
		func(a, b []byte) Gen { return Limit(genFromBytes(a), 3) },
		func(a, b []byte) Gen { return Bound(genFromBytes(a)) },
		func(a, b []byte) Gen { return Sequence(genFromBytes(a), genFromBytes(b)) },
		func(a, b []byte) Gen { return Promote(Unit(listOf(a))) },
	}
	for i, shape := range shapes {
		f := func(a, b []byte) bool {
			if len(a) > 10 {
				a = a[:10]
			}
			if len(b) > 10 {
				b = b[:10]
			}
			g := shape(a, b)
			first := Drain(g, 0)
			second := Drain(g, 0)
			return sameSeq(first, second)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("shape %d: %v", i, err)
		}
	}
}

// Restart mid-stream rewinds to the beginning.
func TestPropRestartRewinds(t *testing.T) {
	f := func(a []byte, k uint8) bool {
		if len(a) > 15 {
			a = a[:15]
		}
		g := Alt(genFromBytes(a), genFromBytes(a))
		want := Drain(g, 0)
		steps := int(k) % (len(want) + 1)
		for i := 0; i < steps; i++ {
			g.Next()
		}
		g.Restart()
		return sameSeq(Drain(g, 0), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Product associativity (as sequences of yielded right-operand values):
// (a & b) & c produces the same sequence as a & (b & c).
func TestPropProductAssociative(t *testing.T) {
	f := func(a, b, c []byte) bool {
		if len(a) > 8 {
			a = a[:8]
		}
		if len(b) > 8 {
			b = b[:8]
		}
		if len(c) > 8 {
			c = c[:8]
		}
		l := Product(Product(genFromBytes(a), genFromBytes(b)), genFromBytes(c))
		r := Product(genFromBytes(a), Product(genFromBytes(b), genFromBytes(c)))
		return sameSeq(Drain(l, 0), Drain(r, 0))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Promote of a list of n elements generates exactly n results.
func TestPropPromoteListLength(t *testing.T) {
	f := func(a []byte) bool {
		return Count(PromoteVal(listOf(a))) == len(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// NewGen over a slice equals Values over the slice.
func TestPropNewGenMatchesValues(t *testing.T) {
	f := func(a []byte) bool {
		if len(a) > 30 {
			a = a[:30]
		}
		want := Drain(genFromBytes(a), 0)
		g := NewGen(func(yield func(V) bool) {
			for _, b := range a {
				if !yield(value.NewInt(int64(b % 16))) {
					return
				}
			}
		})
		got := Drain(g, 0)
		return sameSeq(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func listOf(bs []byte) *value.List {
	l := value.NewList()
	for _, b := range bs {
		l.Put(value.NewInt(int64(b % 16)))
	}
	return l
}
