package checkpoint_test

import (
	"io"
	"math/rand"
	"testing"

	"junicon/internal/checkpoint"
	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/semtest"
	"junicon/internal/value"
)

// vmInterpWith is vmInterp over testing.TB (fuzz seeding runs under
// *testing.F) and an arbitrary program.
func vmInterpWith(t testing.TB, prog string) *interp.Interp {
	t.Helper()
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	if prog != "" {
		if err := in.LoadProgram(prog); err != nil {
			t.Fatalf("load: %v", err)
		}
	}
	return in
}

// validBlob snapshots a mid-iteration generator for seeding the fuzzers.
func validBlob(t testing.TB, expr string, cut int) []byte {
	t.Helper()
	in := vmInterpWith(t, program)
	g, err := in.EvalGen(expr)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	for i := 0; i < cut; i++ {
		g.Next()
	}
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{
		Program: program, Expr: expr, Produced: uint64(cut),
	})
	if err != nil {
		t.Fatalf("seed snapshot %q: %v", expr, err)
	}
	return blob
}

// FuzzSnapshotRoundTrip feeds arbitrary bytes — seeded with genuine blobs
// and targeted corruptions of them — through the full decode path: Peek,
// then a restore into a fresh interpreter, then a bounded drain of the
// resumed generator. Truncations, bit flips and forged headers must error
// loudly; nothing may panic, hang, or resume into a wrong state silently.
func FuzzSnapshotRoundTrip(f *testing.F) {
	for _, expr := range []string{"1 to 8", "gen(2, 6)", "outer(4)", "summing(6)"} {
		blob := validBlob(f, expr, 2)
		f.Add(blob)
		// Targeted corruptions: every class the decoder must reject.
		trunc := blob[:len(blob)/2]
		f.Add(trunc)
		f.Add(blob[:5])
		forged := append([]byte(nil), blob...)
		forged[4] = 0x7f // unknown version
		f.Add(forged)
		flip := append([]byte(nil), blob...)
		flip[len(flip)-1] ^= 0x01
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("JSNP"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		meta, err := checkpoint.Peek(data)
		if err != nil {
			return // loud rejection is the expected outcome for junk
		}
		if meta == nil {
			t.Fatal("Peek returned nil meta with nil error")
		}
		in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
		if meta.Program != "" {
			if err := in.LoadProgram(meta.Program); err != nil {
				return // a forged program that fails to load is a loud rejection
			}
		}
		g, _, err := in.RestoreSnapshot(data)
		if err != nil {
			return // structural validation rejected it: fine
		}
		// A restore that passed validation must yield a generator that can
		// be driven without panics, bounded by a drain cap (a forged blob
		// must not buy an infinite loop inside the harness).
		_ = core.Protect(func() {
			for i := 0; i < 200; i++ {
				if _, ok := g.Next(); !ok {
					return
				}
			}
		})
	})
}

// FuzzExprSnapshotAtYield is the property-based durability lane: a random
// generator expression, snapshotted at a random yield, restored into a
// fresh interpreter, must deliver exactly the reference suffix. Refusals
// (host generators, opaque values) are fine; wrong values are not.
func FuzzExprSnapshotAtYield(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 16; i++ {
		f.Add(semtest.RandomExpr(rng, 3), uint8(i))
	}
	f.Add("summing(4) + gen(1, 2)", uint8(3))
	f.Fuzz(func(t *testing.T, expr string, rawCut uint8) {
		if len(expr) > 512 {
			t.Skip("oversized input")
		}
		c := semtest.Case{Name: "fuzz", Program: program, Expr: expr, Max: 100}
		ref, err := semtest.Sequential(c)
		if err != nil || ref.Failed {
			t.Skip("rejected or failing under the reference lane")
		}
		if len(ref.Images) == 0 {
			t.Skip("empty sequence: nothing to cut")
		}
		cut := int(rawCut) % (len(ref.Images) + 1)
		in := vmInterpWith(t, c.Program)
		g, err := in.EvalGen(c.Expr)
		if err != nil {
			t.Skip("vm lane rejected the expression")
		}
		var got []string
		derr := core.Protect(func() {
			for i := 0; i < cut; i++ {
				v, ok := g.Next()
				if !ok {
					return
				}
				got = append(got, value.Image(value.Deref(v)))
			}
		})
		if derr != nil || len(got) != cut {
			t.Skip("vm lane diverged before the cut; FuzzCompiledSemantics owns that property")
		}
		blob, err := checkpoint.Snapshot(g, checkpoint.Meta{
			Program: c.Program, Expr: c.Expr, Produced: uint64(cut),
		})
		if checkpoint.IsRefused(err) {
			t.Skip("conservative refusal")
		}
		if err != nil {
			t.Fatalf("snapshot at %d: %v", cut, err)
		}
		rg, _, err := vmInterpWith(t, c.Program).RestoreSnapshot(blob)
		if err != nil {
			t.Fatalf("restore at %d: %v", cut, err)
		}
		rerr := core.Protect(func() {
			for i := 0; i < c.Max; i++ {
				v, ok := rg.Next()
				if !ok {
					return
				}
				got = append(got, value.Image(value.Deref(v)))
			}
		})
		if rerr != nil {
			t.Fatalf("resumed drain raised: %v", rerr)
		}
		if len(got) != len(ref.Images) {
			t.Fatalf("%q cut %d: %d values, want %d\nref = %v\ngot = %v",
				expr, cut, len(got), len(ref.Images), ref.Images, got)
		}
		for i := range got {
			if got[i] != ref.Images[i] {
				t.Fatalf("%q cut %d diverged at %d:\nref = %v\ngot = %v",
					expr, cut, i, ref.Images, got)
			}
		}
	})
}
