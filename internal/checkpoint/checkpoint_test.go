package checkpoint_test

import (
	"errors"
	"io"
	"strings"
	"testing"

	"junicon/internal/checkpoint"
	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/value"
)

const program = `
global acc
def gen(a, b) { suspend a to b; }
def outer(n) { suspend gen(1, n) + 100; }
def double(x) { return x * 2; }
def summing(n) {
  acc := 0;
  every i := 1 to n do { acc := acc + i; suspend acc; };
}
`

func vmInterp(t *testing.T) *interp.Interp {
	t.Helper()
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	if err := in.LoadProgram(program); err != nil {
		t.Fatalf("load: %v", err)
	}
	return in
}

// drain collects up to max images from g.
func drain(t *testing.T, g core.Gen, max int) []string {
	t.Helper()
	var out []string
	err := core.Protect(func() {
		for i := 0; i < max; i++ {
			v, ok := g.Next()
			if !ok {
				return
			}
			out = append(out, value.Image(value.Deref(v)))
		}
	})
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return out
}

// TestRoundTripSuffix is the tentpole's pin: for each expression, at every
// cut point k, drain k values, snapshot, restore into a FRESH interpreter,
// and require the resumed generator to deliver exactly the reference
// sequence's suffix — no values lost, duplicated, or reordered.
func TestRoundTripSuffix(t *testing.T) {
	exprs := []string{
		"1 to 8",
		"10 to 1 by -2",
		"(1 to 3) & (4 | 5)",
		"(1 to 3) * (1 to 2)",
		"gen(2, 6)",      // live compiled child frame at suspension
		"outer(4)",       // two-deep call tower
		"double(1 to 4)", // call completing per value (OpCall1)
		"(1 to 3) + gen(0, 1)",
		"summing(6)", // running state in a mutated global cell
	}
	for _, expr := range exprs {
		t.Run(expr, func(t *testing.T) {
			ref := drain(t, mustGen(t, vmInterp(t), expr), 1000)
			if len(ref) == 0 {
				t.Fatalf("reference for %q is empty", expr)
			}
			for k := 0; k <= len(ref); k++ {
				g := mustGen(t, vmInterp(t), expr)
				got := drain(t, g, k)
				if len(got) != k {
					t.Fatalf("cut %d: reference drained only %d", k, len(got))
				}
				blob, err := checkpoint.Snapshot(g, checkpoint.Meta{
					Program: program, Expr: expr, Produced: uint64(k),
				})
				if err != nil {
					t.Fatalf("cut %d: snapshot: %v", k, err)
				}
				in2 := vmInterp(t)
				g2, meta, err := in2.RestoreSnapshot(blob)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", k, err)
				}
				if meta.Produced != uint64(k) || meta.Expr != expr {
					t.Fatalf("cut %d: meta round trip: %+v", k, meta)
				}
				rest := drain(t, g2, len(ref)-k+1)
				want := ref[k:]
				if strings.Join(rest, ",") != strings.Join(want, ",") {
					t.Fatalf("cut %d: resumed suffix %v, want %v (reference %v)", k, rest, want, ref)
				}
			}
		})
	}
}

func mustGen(t *testing.T, in *interp.Interp, expr string) core.Gen {
	t.Helper()
	g, err := in.EvalGen(expr)
	if err != nil {
		t.Fatalf("eval %q: %v", expr, err)
	}
	return g
}

// TestRefusalNotAFrame pins the conservative path: a tree-walk generator
// refuses with a reason instead of producing a blob that cannot resume.
func TestRefusalNotAFrame(t *testing.T) {
	in := interp.New(interp.WithOutput(io.Discard)) // no vm: tree walk
	g, err := in.EvalGen("1 to 5")
	if err != nil {
		t.Fatal(err)
	}
	_, err = checkpoint.Snapshot(g, checkpoint.Meta{Expr: "1 to 5"})
	if !checkpoint.IsRefused(err) {
		t.Fatalf("want refusal, got %v", err)
	}
}

// TestRestoreFingerprintMismatch: a snapshot never resumes against a unit
// with a different layout.
func TestRestoreFingerprintMismatch(t *testing.T) {
	in := vmInterp(t)
	g := mustGen(t, in, "1 to 8")
	drain(t, g, 3)
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{Expr: "1 to 8", Produced: 3})
	if err != nil {
		t.Fatal(err)
	}
	other, err := in.ExprMachine("(1 to 8) * 2")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := checkpoint.Restore(blob, other, in.ProcMachine); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("want fingerprint mismatch, got %v", err)
	}
}

// TestCorruptBlobsFailLoudly: truncation, bit flips, and forged headers
// are errors — never a resume, never a hang.
func TestCorruptBlobsFailLoudly(t *testing.T) {
	in := vmInterp(t)
	g := mustGen(t, in, "gen(2, 6)")
	drain(t, g, 2)
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{Expr: "gen(2, 6)", Produced: 2})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, data []byte) {
		t.Helper()
		if _, err := checkpoint.Peek(data); err == nil {
			t.Fatalf("%s: Peek accepted corrupt blob", name)
		} else if checkpoint.IsRefused(err) {
			t.Fatalf("%s: corruption reported as refusal: %v", name, err)
		}
	}
	check("empty", nil)
	check("truncated header", blob[:5])
	check("truncated body", blob[:len(blob)-3])
	forged := append([]byte(nil), blob...)
	forged[4] = 99
	check("forged version", forged)
	flipped := append([]byte(nil), blob...)
	flipped[len(flipped)/2] ^= 0x40
	check("bit flip", flipped)
	magicless := append([]byte(nil), blob...)
	magicless[0] = 'X'
	check("bad magic", magicless)
}

// TestRestoreAfterExhaustion: snapshotting an exhausted frame restores a
// frame that (per the generator contract) restarts from the top.
func TestRestoreAfterExhaustion(t *testing.T) {
	in := vmInterp(t)
	g := mustGen(t, in, "1 to 3")
	if got := drain(t, g, 10); len(got) != 3 {
		t.Fatalf("drained %v", got)
	}
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{Expr: "1 to 3", Produced: 3})
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := vmInterp(t).RestoreSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, g2, 10); strings.Join(got, ",") != "1,2,3" {
		t.Fatalf("restarted sequence %v", got)
	}
}

// TestErrCorruptSentinel pins the corrupt-vs-refused error taxonomy.
func TestErrCorruptSentinel(t *testing.T) {
	if _, err := checkpoint.Peek([]byte("JSNPx")); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}
