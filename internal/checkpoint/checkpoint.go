// Package checkpoint serializes suspended compiled generators into
// versioned, checksummed snapshots and restores them into fresh vm
// Machines that resume mid-iteration — the durability layer under remote
// protocol v4's SNAPSHOT/RESUME frames, junicond -checkpoint-dir, and the
// junicon CLI's -snapshot/-resume.
//
// A snapshot is the vm package's FrameSnap (PC + resume point + slot array
// + choice-point stack, recursively including live child frames) encoded
// as one wire value tree under strict marshaling: any host-resident value
// in the frame's state refuses at snapshot time (wire.ErrOpaque) instead
// of producing a blob that cannot resume. The refusal discipline mirrors
// internal/compile — conservative, with a reason — and callers fall back
// to restart-from-start (replay) recovery.
//
// Blob layout: "JSNP" magic, one version byte, a big-endian CRC32 (IEEE)
// of the body, then the body — a single wire-encoded value. Truncation,
// bit flips and forged headers all fail loudly on restore (the fuzz tests
// pin this); a fingerprint recorded per frame additionally pins the
// snapshot to the exact code object it was captured against, so a
// snapshot never resumes on code that lays its slots out differently.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"junicon/internal/core"
	"junicon/internal/telemetry"
	"junicon/internal/value"
	"junicon/internal/vm"
	"junicon/internal/wire"
)

// Blob header: 4 magic bytes, 1 version byte, 4 CRC bytes.
const (
	magic      = "JSNP"
	version    = 1
	headerSize = 9
)

// Counters: snapshots taken, restores performed (including replay-based
// recoveries reported via MarkRestored), refusals issued.
var (
	cSnapshots = telemetry.NewCounter("checkpoint.snapshots")
	cRestores  = telemetry.NewCounter("checkpoint.restores")
	cRefusals  = telemetry.NewCounter("checkpoint.refusals")
)

// snapLimits bounds snapshot decoding. Nesting runs ~4 levels of lists
// per call-tower frame, so the depth limit comfortably covers the vm's
// own tower bound while still terminating adversarial blobs.
var snapLimits = wire.Limits{
	MaxBytes: 16 << 20,
	MaxElems: 1 << 20,
	MaxDepth: 2048,
}

// ErrCorrupt reports a blob that failed structural validation: bad magic,
// unknown version, checksum mismatch, truncation, or a malformed value
// tree. Restore never resumes from such a blob.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// Refused reports a generator whose state cannot be snapshotted, with the
// reason. Callers are expected to read it (the junilint snapguard rule
// flags code that discards it) and fall back to replay recovery.
type Refused struct{ Reason string }

func (r *Refused) Error() string { return "checkpoint: refused: " + r.Reason }

// IsRefused distinguishes a refusal (fall back to replay) from a real
// error (corrupt blob, I/O).
func IsRefused(err error) bool {
	var r *Refused
	return errors.As(err, &r)
}

func refusal(reason string) error {
	if telemetry.On() {
		cRefusals.Inc()
	}
	return &Refused{Reason: reason}
}

// MarkRestored counts a recovery that resumed a stream without a blob —
// the deterministic-replay fallback. Snapshot-based restores count
// automatically inside Restore; replay recoveries share the same counter
// so `checkpoint.restores` reflects every stream that survived a crash.
func MarkRestored() {
	if telemetry.On() {
		cRestores.Inc()
	}
}

// Meta travels with every snapshot: enough context to rebuild the
// evaluation environment (program + expression, or a registered name) and
// the delivered-value count the snapshot corresponds to.
type Meta struct {
	// Program holds source declarations to load before restoring ("" when
	// the expression is self-contained).
	Program string
	// Expr is the generator expression the frame compiles from ("" for
	// named generators, which cannot restore from a blob).
	Expr string
	// Name is the registered-generator name, informational.
	Name string
	// Args is the argument vector the stream was opened with.
	Args []value.V
	// Produced counts values delivered before this snapshot was taken:
	// resuming from it continues with value Produced+1.
	Produced uint64
}

// Snapshot captures a suspended generator into a blob. Only compiled vm
// frames snapshot; anything else — tree-walk generators, kernel
// combinators, pipes — refuses (*Refused), as does a frame that is
// mid-Next, holds live host generators, or references host-resident
// values (wire.ErrOpaque under strict marshaling).
func Snapshot(g core.Gen, meta Meta) ([]byte, error) {
	fr, ok := g.(*vm.Frame)
	if !ok {
		return nil, refusal(fmt.Sprintf("not a compiled vm frame (%T)", g))
	}
	fs, err := vm.Capture(fr)
	if err != nil {
		var u *vm.Unsnapshotable
		if errors.As(err, &u) {
			return nil, refusal(u.Reason)
		}
		return nil, err
	}
	tree := value.NewList(metaTree(meta), frameTree(fs))
	body, err := wire.MarshalStrict(tree, snapLimits)
	if err != nil {
		if errors.Is(err, wire.ErrOpaque) {
			return nil, refusal("frame holds a host-resident value: " + err.Error())
		}
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	blob := make([]byte, headerSize, headerSize+len(body))
	copy(blob, magic)
	blob[4] = version
	binary.BigEndian.PutUint32(blob[5:9], crc32.ChecksumIEEE(body))
	blob = append(blob, body...)
	if telemetry.On() {
		cSnapshots.Inc()
	}
	return blob, nil
}

// Peek decodes a blob's metadata without restoring it — what a server
// needs to rebuild the evaluation environment before Restore, and what
// the CLI prints for a snapshot file.
func Peek(data []byte) (*Meta, error) {
	meta, _, err := decodeBlob(data)
	return meta, err
}

// Restore validates a blob and rehydrates its frame against root (the
// Machine compiled from the same expression — fingerprints must match).
// resolve maps child-frame unit names to their Machines; nil is fine for
// snapshots with no live call tower.
func Restore(data []byte, root *vm.Machine, resolve func(name string) (*vm.Machine, bool)) (*vm.Frame, *Meta, error) {
	meta, ftree, err := decodeBlob(data)
	if err != nil {
		return nil, nil, err
	}
	fs, err := decodeFrame(ftree, 0)
	if err != nil {
		return nil, nil, err
	}
	fr, err := root.Rehydrate(fs, resolve)
	if err != nil {
		return nil, nil, err
	}
	if telemetry.On() {
		cRestores.Inc()
	}
	return fr, meta, nil
}

// ---- encoding ----

func bval(b bool) value.V {
	if b {
		return value.NewInt(1)
	}
	return value.NewInt(0)
}

func metaTree(m Meta) value.V {
	return value.NewList(
		value.String(m.Program),
		value.String(m.Expr),
		value.String(m.Name),
		value.NewList(m.Args...),
		value.NewInt(int64(m.Produced)),
	)
}

func frameTree(s *vm.FrameSnap) value.V {
	choices := value.NewList()
	for _, c := range s.Choices {
		choices.Put(value.NewList(value.NewInt(int64(c.PC)), value.NewInt(int64(c.SP))))
	}
	aux := value.NewList()
	for i := range s.Aux {
		a := &s.Aux[i]
		var payload value.V = value.NullV
		switch a.Kind {
		case vm.AuxBang:
			payload = a.V0
		case vm.AuxChild:
			payload = frameTree(a.Child)
		}
		aux.Put(value.NewList(
			value.NewInt(int64(a.Barrier)),
			value.NewInt(int64(a.Count)),
			value.NewInt(int64(a.N)),
			bval(a.Flag),
			value.NewInt(int64(a.Mode)),
			value.NewInt(a.I0),
			value.NewInt(a.I1),
			value.NewInt(a.I2),
			value.NewInt(int64(a.Kind)),
			payload,
		))
	}
	globals := value.NewList()
	for _, g := range s.Globals {
		globals.Put(value.NewList(value.String(g.Name), g.Val))
	}
	return value.NewList(
		value.String(s.Name),
		value.NewInt(int64(s.Fingerprint)),
		value.NewInt(int64(s.PC)),
		bval(s.Started),
		bval(s.Resumed),
		value.NewList(s.Args...),
		value.NewList(s.Slots...),
		value.NewList(s.Stack...),
		choices,
		aux,
		globals,
	)
}

// ---- decoding ----

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

func decodeBlob(data []byte) (*Meta, *value.List, error) {
	if len(data) < headerSize || string(data[:4]) != magic {
		return nil, nil, corrupt("bad magic")
	}
	if data[4] != version {
		return nil, nil, corrupt("unknown snapshot version %d (want %d)", data[4], version)
	}
	body := data[headerSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(data[5:9]); got != want {
		return nil, nil, corrupt("checksum mismatch (%#x, header says %#x)", got, want)
	}
	v, err := wire.UnmarshalLimits(body, snapLimits)
	if err != nil {
		return nil, nil, corrupt("body: %v", err)
	}
	top, err := asList(v, 2, "snapshot")
	if err != nil {
		return nil, nil, err
	}
	meta, err := decodeMeta(top[0])
	if err != nil {
		return nil, nil, err
	}
	ftree, err := asList(top[1], 11, "frame")
	if err != nil {
		return nil, nil, err
	}
	return meta, value.NewList(ftree...), nil
}

func asList(v value.V, arity int, what string) ([]value.V, error) {
	l, ok := value.Deref(v).(*value.List)
	if !ok {
		return nil, corrupt("%s is %s, want list", what, value.TypeOf(v))
	}
	elems := l.Elems()
	if arity > 0 && len(elems) != arity {
		return nil, corrupt("%s has %d fields, want %d", what, len(elems), arity)
	}
	return elems, nil
}

func asInt(v value.V, what string) (int64, error) {
	i, ok := value.ToInteger(value.Deref(v))
	if !ok {
		return 0, corrupt("%s is %s, want integer", what, value.TypeOf(v))
	}
	n, ok := i.Int64()
	if !ok {
		return 0, corrupt("%s out of range", what)
	}
	return n, nil
}

func asString(v value.V, what string) (string, error) {
	s, ok := value.Deref(v).(value.String)
	if !ok {
		return "", corrupt("%s is %s, want string", what, value.TypeOf(v))
	}
	return string(s), nil
}

func asInt32(v value.V, what string) (int32, error) {
	n, err := asInt(v, what)
	if err != nil {
		return 0, err
	}
	if n < math.MinInt32 || n > math.MaxInt32 {
		return 0, corrupt("%s out of int32 range", what)
	}
	return int32(n), nil
}

func decodeMeta(v value.V) (*Meta, error) {
	f, err := asList(v, 5, "meta")
	if err != nil {
		return nil, err
	}
	m := &Meta{}
	if m.Program, err = asString(f[0], "meta program"); err != nil {
		return nil, err
	}
	if m.Expr, err = asString(f[1], "meta expr"); err != nil {
		return nil, err
	}
	if m.Name, err = asString(f[2], "meta name"); err != nil {
		return nil, err
	}
	args, err := asList(f[3], -1, "meta args")
	if err != nil {
		return nil, err
	}
	m.Args = args
	produced, err := asInt(f[4], "meta produced")
	if err != nil {
		return nil, err
	}
	if produced < 0 {
		return nil, corrupt("meta produced is negative")
	}
	m.Produced = uint64(produced)
	return m, nil
}

func decodeFrame(v value.V, depth int) (*vm.FrameSnap, error) {
	if depth > 128 {
		return nil, corrupt("call tower too deep")
	}
	f, err := asList(v, 11, "frame")
	if err != nil {
		return nil, err
	}
	s := &vm.FrameSnap{}
	if s.Name, err = asString(f[0], "frame name"); err != nil {
		return nil, err
	}
	fp, err := asInt(f[1], "frame fingerprint")
	if err != nil {
		return nil, err
	}
	s.Fingerprint = uint64(fp)
	if s.PC, err = asInt32(f[2], "frame pc"); err != nil {
		return nil, err
	}
	started, err := asInt(f[3], "frame started")
	if err != nil {
		return nil, err
	}
	s.Started = started != 0
	resumed, err := asInt(f[4], "frame resumed")
	if err != nil {
		return nil, err
	}
	s.Resumed = resumed != 0
	if s.Args, err = asList(f[5], -1, "frame args"); err != nil {
		return nil, err
	}
	if s.Slots, err = asList(f[6], -1, "frame slots"); err != nil {
		return nil, err
	}
	if s.Stack, err = asList(f[7], -1, "frame stack"); err != nil {
		return nil, err
	}
	choices, err := asList(f[8], -1, "frame choices")
	if err != nil {
		return nil, err
	}
	for _, cv := range choices {
		pair, err := asList(cv, 2, "choice point")
		if err != nil {
			return nil, err
		}
		var c vm.ChoiceSnap
		if c.PC, err = asInt32(pair[0], "choice pc"); err != nil {
			return nil, err
		}
		if c.SP, err = asInt32(pair[1], "choice sp"); err != nil {
			return nil, err
		}
		s.Choices = append(s.Choices, c)
	}
	auxes, err := asList(f[9], -1, "frame aux")
	if err != nil {
		return nil, err
	}
	for _, av := range auxes {
		fields, err := asList(av, 10, "aux cell")
		if err != nil {
			return nil, err
		}
		var a vm.AuxSnap
		if a.Barrier, err = asInt32(fields[0], "aux barrier"); err != nil {
			return nil, err
		}
		if a.Count, err = asInt32(fields[1], "aux count"); err != nil {
			return nil, err
		}
		if a.N, err = asInt32(fields[2], "aux n"); err != nil {
			return nil, err
		}
		flag, err := asInt(fields[3], "aux flag")
		if err != nil {
			return nil, err
		}
		a.Flag = flag != 0
		mode, err := asInt(fields[4], "aux mode")
		if err != nil {
			return nil, err
		}
		if mode < -128 || mode > 127 {
			return nil, corrupt("aux mode out of range")
		}
		a.Mode = int8(mode)
		if a.I0, err = asInt(fields[5], "aux i0"); err != nil {
			return nil, err
		}
		if a.I1, err = asInt(fields[6], "aux i1"); err != nil {
			return nil, err
		}
		if a.I2, err = asInt(fields[7], "aux i2"); err != nil {
			return nil, err
		}
		kind, err := asInt(fields[8], "aux kind")
		if err != nil {
			return nil, err
		}
		switch kind {
		case vm.AuxCold:
		case vm.AuxBang:
			a.Kind = vm.AuxBang
			a.V0 = value.Deref(fields[9])
		case vm.AuxChild:
			a.Kind = vm.AuxChild
			if a.Child, err = decodeFrame(fields[9], depth+1); err != nil {
				return nil, err
			}
		default:
			return nil, corrupt("aux kind %d unknown", kind)
		}
		s.Aux = append(s.Aux, a)
	}
	gl, err := asList(f[10], -1, "frame globals")
	if err != nil {
		return nil, err
	}
	for _, gv := range gl {
		pair, err := asList(gv, 2, "global cell")
		if err != nil {
			return nil, err
		}
		name, err := asString(pair[0], "global name")
		if err != nil {
			return nil, err
		}
		s.Globals = append(s.Globals, vm.GlobalSnap{Name: name, Val: value.Deref(pair[1])})
	}
	return s, nil
}
