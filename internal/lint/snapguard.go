package lint

import (
	"fmt"
	"go/ast"
)

// snapguard keeps durable-generator host code honest about refusals. The
// checkpoint API is deliberately two-faced: Snapshot/Peek/Restore return a
// hard error for corruption AND a conservative Refused for state that
// cannot travel (host generators, opaque values, mid-dispatch frames).
// Host code that discards that error turns "this stream silently has no
// crash protection" into a latent data-loss bug — the refusal must be
// checked (checkpoint.IsRefused) so the caller can fall back to replay
// recovery or surface the reason. Two shapes:
//
//   - a checkpoint.Snapshot/Peek/Restore call as a bare statement: every
//     result, blob included, is dropped on the floor;
//   - the error result assigned to the blank identifier: the blob is kept
//     but a refusal would vanish.
var snapGuard = &Analyzer{
	Name: "snapguard",
	Doc:  "checkpoint snapshot/restore results or refusal errors discarded",
	Run:  runSnapGuard,
}

var snapCalls = map[string]bool{"Snapshot": true, "Peek": true, "Restore": true}

func runSnapGuard(f *File) []Finding {
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if name, call := pkgCall(s.X, "checkpoint"); call != nil && snapCalls[name] {
				out = append(out, Finding{
					Pos:   position(f, call),
					Check: "snapguard",
					Msg: fmt.Sprintf(
						"checkpoint.%s result discarded: the blob is lost and a conservative refusal vanishes silently",
						name),
				})
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			name, call := pkgCall(s.Rhs[0], "checkpoint")
			if call == nil || !snapCalls[name] || len(s.Lhs) == 0 {
				return true
			}
			last, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident)
			if ok && last.Name == "_" {
				out = append(out, Finding{
					Pos:   position(f, call),
					Check: "snapguard",
					Msg: fmt.Sprintf(
						"checkpoint.%s error discarded: check it with checkpoint.IsRefused and fall back to replay recovery",
						name),
				})
			}
		}
		return true
	})
	return out
}
