package lint

import (
	"fmt"
	"go/ast"
)

// pipeStop reports pipes created and then abandoned. A Pipe's producer is
// a goroutine (or a pooled task) parked against a bounded queue; it is
// released by Stop, by draining to exhaustion through First, or by handing
// the pipe to someone else who will. A function that creates a pipe, uses
// it only through non-releasing methods (Next, Err, Restart, StartEager)
// and lets the variable die leaks the producer — the dynamic counterpart
// of the analyzer's JV013, enforced on the host side.
//
// The check is syntactic: a creation is an assignment whose right side
// calls pipe.New / pipe.FromGen / pipe.NewBatched / pipe.FromGenBatched /
// pipe.NewBatchedWithQueue / pipe.NewInline / pipe.InlineFromGen /
// pipe.Chain / pipe.ChainBatched. Any appearance of the variable outside
// method-receiver position (argument, return value, composite literal,
// channel send, assignment to a field) counts as an escape and silences
// the check — whoever received the value owns the release.
var pipeStop = &Analyzer{
	Name: "pipestop",
	Doc:  "pipe created but never stopped, drained or passed on",
	Run:  runPipeStop,
}

var pipeCreators = map[string]bool{
	"New": true, "FromGen": true, "NewBatched": true, "FromGenBatched": true,
	"NewBatchedWithQueue": true, "NewInline": true, "InlineFromGen": true,
	"Chain": true, "ChainBatched": true,
}

// Releasing methods end the producer; aliasing methods hand the same pipe
// onward (their result carries the release duty), so both silence the
// check.
var (
	pipeReleasers = map[string]bool{"Stop": true, "First": true, "Drain": true}
	pipeAliasers  = map[string]bool{"OnPool": true, "Out": true, "Stream": true}
)

func runPipeStop(f *File) []Finding {
	var out []Finding
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, pipeStopFunc(f, fn.Body)...)
	}
	return out
}

func pipeStopFunc(f *File, body *ast.BlockStmt) []Finding {
	// Pass 1: creations. v := …pipe.X(…)… binds v to a fresh pipe; the
	// LHS ident nodes are remembered so pass 2 does not read them as uses.
	created := map[string]ast.Node{} // name -> creation site
	neutral := map[ast.Node]bool{}   // ident nodes that are not value uses
	bindLHS := func(lhs []ast.Expr, rhs []ast.Expr) {
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			neutral[id] = true
			if i < len(rhs) && createsPipe(rhs[i]) {
				if _, dup := created[id.Name]; !dup {
					created[id.Name] = rhs[i]
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				bindLHS(x.Lhs, x.Rhs)
			} else {
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						neutral[id] = true
					}
				}
			}
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, id := range x.Names {
				lhs = append(lhs, id)
			}
			bindLHS(lhs, x.Values)
		}
		return true
	})
	if len(created) == 0 {
		return nil
	}

	// Pass 2: uses. Receiver position classifies by method; any other
	// appearance is an escape.
	released := map[string]bool{}
	escaped := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if _, tracked := created[id.Name]; tracked {
					neutral[id] = true
					switch {
					case pipeReleasers[sel.Sel.Name]:
						released[id.Name] = true
					case pipeAliasers[sel.Sel.Name]:
						escaped[id.Name] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || neutral[id] {
			return true
		}
		if _, tracked := created[id.Name]; tracked {
			escaped[id.Name] = true
		}
		return true
	})

	var out []Finding
	for name, site := range created {
		if released[name] || escaped[name] {
			continue
		}
		out = append(out, Finding{
			Pos:   position(f, site),
			Check: "pipestop",
			Msg: fmt.Sprintf(
				"pipe %q is never stopped, drained or passed on: its producer goroutine leaks (call %s.Stop, or hand the pipe to its consumer)",
				name, name),
		})
	}
	return out
}

// createsPipe reports whether the expression contains a pipe constructor
// call (possibly under a method chain like pipe.FromGen(g, 8).OnPool(pl)).
func createsPipe(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if name, call := pkgCall(n, "pipe"); call != nil && pipeCreators[name] {
			found = true
		}
		// A pipe created inside a nested function literal belongs to that
		// literal's scope, not this assignment.
		_, isLit := n.(*ast.FuncLit)
		return !found && !isLit
	})
	return found
}
