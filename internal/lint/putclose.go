package lint

import (
	"fmt"
	"go/ast"
)

// putAfterClose reports values committed to a transport queue after it was
// closed in the same block. queue.Queue's contract (§3B bounded-buffer
// protocol) is that Close ends the stream: a Put or PutBatch sequenced
// after a Close on the same receiver either returns ErrClosed — a value
// silently dropped from the stream — or, in a racier arrangement, panics.
// The batcher's flush path is exactly where this mistake is easy to make
// (flush, close on EOS, then flush the leftover run).
//
// The check is per-block and order-based: a statement-level x.Close()
// followed by a later statement in the same block that mentions x.Put(…)
// or x.PutBatch(…). defer x.Close() does not count as closing — it runs
// last.
var putAfterClose = &Analyzer{
	Name: "putclose",
	Doc:  "queue Put/PutBatch sequenced after Close on the same receiver",
	Run:  runPutAfterClose,
}

func runPutAfterClose(f *File) []Finding {
	var out []Finding
	ast.Inspect(f.AST, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		closed := map[string]bool{}
		for _, stmt := range block.List {
			// A reassignment of the receiver starts a fresh queue.
			if as, ok := stmt.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						delete(closed, id.Name)
					}
				}
			}
			if len(closed) > 0 {
				for recv := range closed {
					if call := findPutOn(stmt, recv); call != nil {
						out = append(out, Finding{
							Pos:   position(f, call),
							Check: "putclose",
							Msg: fmt.Sprintf(
								"%s on queue %q after %s.Close() in the same block: the value is dropped from the stream (ErrClosed at best)",
								callMethod(call), recv, recv),
						})
					}
				}
			}
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if recv, name, call := selCall(es.X); call != nil && name == "Close" && recv != "" {
					closed[recv] = true
				}
			}
		}
		return true
	})
	return out
}

// findPutOn locates a Put/PutBatch call on recv anywhere under stmt,
// skipping nested function literals (they execute at some other time).
func findPutOn(stmt ast.Stmt, recv string) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(stmt, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, name, call := selCall(n); call != nil && r == recv && (name == "Put" || name == "PutBatch") {
			out = call
		}
		return true
	})
	return out
}

func callMethod(c *ast.CallExpr) string {
	if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "call"
}
