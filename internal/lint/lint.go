// Package lint is a go/analysis-style checker suite for the HOST side of
// the embedding: Go code that drives pipes, transport queues and telemetry
// has invariants the Go compiler cannot see — a pipe's producer goroutine
// must be released, a closed queue accepts no more values, metric-registry
// lookups do not belong in hot loops. The analyzers here are purely
// syntactic (go/ast over single files, no type information and no
// golang.org/x/tools dependency), so they run anywhere the Go toolchain
// runs; cmd/junilint is the driver.
//
// A finding on a line carrying (or directly below) a "//junilint:ignore"
// comment is suppressed — the escape hatch for the cases the syntactic
// approximation cannot see through.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Pos   token.Position
	Check string // analyzer name
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// File is one parsed source file under analysis.
type File struct {
	Fset *token.FileSet
	Path string
	AST  *ast.File
}

// Analyzer is one named check over a single file.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*File) []Finding
}

// Analyzers returns the full suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{pipeStop, putAfterClose, telemetryGuard, inspectLeak, snapGuard}
}

// CheckSource parses src (named path for positions) and runs the suite,
// applying //junilint:ignore suppression. The entry point for tests and
// for drivers that already hold source text.
func CheckSource(path string, src []byte) ([]Finding, error) {
	fset := token.NewFileSet()
	parsed, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	f := &File{Fset: fset, Path: path, AST: parsed}
	ignored := ignoredLines(fset, parsed)
	var out []Finding
	for _, a := range Analyzers() {
		for _, fd := range a.Run(f) {
			if ignored[fd.Pos.Line] {
				continue
			}
			out = append(out, fd)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Column < out[j].Pos.Column
	})
	return out, nil
}

// ignoredLines collects the lines suppressed by //junilint:ignore: the
// comment's own line and the line below it (directive-above-statement).
func ignoredLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//junilint:ignore") {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

// ---------- shared syntactic helpers ----------

// selCall matches a call whose function is recv.name and returns recv's
// identifier (x.Close() -> x, "Close"). Non-ident receivers return "".
func selCall(n ast.Node) (recv, name string, call *ast.CallExpr) {
	c, ok := n.(*ast.CallExpr)
	if !ok {
		return "", "", nil
	}
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", c
	}
	return id.Name, sel.Sel.Name, c
}

// pkgCall matches a call of the form pkg.Name(...) where pkg is a plain
// identifier (the usual import form; the syntactic analyzers accept the
// package name as the type oracle).
func pkgCall(n ast.Node, pkg string) (string, *ast.CallExpr) {
	recv, name, call := selCall(n)
	if call == nil || recv != pkg {
		return "", nil
	}
	return name, call
}

// containsIdent reports whether the subtree mentions ident name.
func containsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func position(f *File, n ast.Node) token.Position { return f.Fset.Position(n.Pos()) }
