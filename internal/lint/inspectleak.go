package lint

import (
	"fmt"
	"go/ast"
)

// inspectLeak reports introspection handles registered and then abandoned.
// An inspect.Register handle sits in the live registry until Close or
// Unregister retires it; a handle whose variable dies unreleased stays in
// /debug/streams forever as a phantom "running" stream — a leak not of a
// goroutine but of observability itself, polluting every later topology
// snapshot and giving the stall watchdog a permanently idle stream to
// mis-diagnose.
//
// The check mirrors pipestop's two-pass shape: a creation is an assignment
// whose right side calls inspect.Register; release is h.Close() in
// receiver position or inspect.Unregister(h) with the handle as argument.
// Any other appearance of the variable (argument, return, field store)
// is an escape and silences the check — whoever received the handle owns
// its retirement. Nil comparisons (`if h != nil`) are neutral: they are
// the idiomatic guard around a handle from a disabled registry, not a
// transfer of ownership. A Register call whose result is discarded is
// always a finding — a handle nobody holds can never be closed.
var inspectLeak = &Analyzer{
	Name: "inspectleak",
	Doc:  "introspection handle registered but never closed, unregistered or passed on",
	Run:  runInspectLeak,
}

func runInspectLeak(f *File) []Finding {
	var out []Finding
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, inspectLeakFunc(f, fn.Body)...)
	}
	return out
}

func inspectLeakFunc(f *File, body *ast.BlockStmt) []Finding {
	var out []Finding

	// Pass 1: creations. h := inspect.Register(…) binds h to a live
	// registry entry; a Register whose result is dropped (statement
	// position, or assigned to _) is flagged on the spot.
	created := map[string]ast.Node{} // name -> creation site
	neutral := map[ast.Node]bool{}   // ident nodes that are not value uses
	bindLHS := func(lhs []ast.Expr, rhs []ast.Expr) {
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			neutral[id] = true
			if i >= len(rhs) || !callsRegister(rhs[i]) {
				continue
			}
			if id.Name == "_" {
				out = append(out, discardFinding(f, rhs[i]))
				continue
			}
			if _, dup := created[id.Name]; !dup {
				created[id.Name] = rhs[i]
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				bindLHS(x.Lhs, x.Rhs)
			} else {
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						neutral[id] = true
					}
				}
			}
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, id := range x.Names {
				lhs = append(lhs, id)
			}
			bindLHS(lhs, x.Values)
		case *ast.ExprStmt:
			// Only a bare Register call is a discard; a chained
			// inspect.Register(…).Close() releases inline.
			if name, call := pkgCall(x.X, "inspect"); call != nil && name == "Register" {
				out = append(out, discardFinding(f, x.X))
			}
		}
		return true
	})
	if len(created) == 0 {
		return out
	}

	// Pass 2: uses. Receiver position classifies by method; a tracked
	// handle as an argument to inspect.Unregister is a release; a nil
	// comparison is the disabled-registry guard and stays neutral; any
	// other appearance is an escape.
	released := map[string]bool{}
	escaped := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, call := pkgCall(n, "inspect"); call != nil && name == "Unregister" {
				for _, arg := range call.Args {
					if id, ok := arg.(*ast.Ident); ok {
						if _, tracked := created[id.Name]; tracked {
							neutral[id] = true
							released[id.Name] = true
						}
					}
				}
			}
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, tracked := created[id.Name]; tracked {
					neutral[id] = true
					if x.Sel.Name == "Close" {
						released[id.Name] = true
					}
				}
			}
		case *ast.BinaryExpr:
			// h == nil / h != nil: the guard around a handle from a
			// disabled registry, not a use.
			for _, side := range []ast.Expr{x.X, x.Y} {
				if id, ok := side.(*ast.Ident); ok {
					if _, tracked := created[id.Name]; tracked && isNil(x.X) != isNil(x.Y) {
						neutral[id] = true
					}
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || neutral[id] {
			return true
		}
		if _, tracked := created[id.Name]; tracked {
			escaped[id.Name] = true
		}
		return true
	})

	for name, site := range created {
		if released[name] || escaped[name] {
			continue
		}
		out = append(out, Finding{
			Pos:   position(f, site),
			Check: "inspectleak",
			Msg: fmt.Sprintf(
				"handle %q is never closed, unregistered or passed on: it stays in the live stream registry forever (call %s.Close or inspect.Unregister(%s))",
				name, name, name),
		})
	}
	return out
}

func discardFinding(f *File, site ast.Node) Finding {
	return Finding{
		Pos:   position(f, site),
		Check: "inspectleak",
		Msg:   "inspect.Register result discarded: a handle nobody holds can never be closed or unregistered",
	}
}

// callsRegister reports whether the expression contains an
// inspect.Register call (outside nested function literals, whose handles
// belong to their own scope).
func callsRegister(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if name, call := pkgCall(n, "inspect"); call != nil && name == "Register" {
			found = true
		}
		_, isLit := n.(*ast.FuncLit)
		return !found && !isLit
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
