package lint

import (
	"strings"
	"testing"
)

// check runs the suite over one source snippet and returns the findings'
// "check" names in order.
func check(t *testing.T, src string) []Finding {
	t.Helper()
	findings, err := CheckSource("test.go", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return findings
}

func wantChecks(t *testing.T, src string, want ...string) {
	t.Helper()
	var got []string
	for _, f := range check(t, src) {
		got = append(got, f.Check)
	}
	if len(got) != len(want) {
		t.Fatalf("findings = %v, want %v\n%v", got, want, check(t, src))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("findings = %v, want %v", got, want)
		}
	}
}

func TestPipeStopLeak(t *testing.T) {
	wantChecks(t, `package p

func leak(g core.Gen) int {
	p := pipe.FromGen(g, 8)
	v, _ := p.Next()
	return v
}
`, "pipestop")
}

func TestPipeStopReleased(t *testing.T) {
	for _, release := range []string{
		"defer p.Stop()",
		"p.Stop()",
		"p.First()",
	} {
		wantChecks(t, `package p

func ok(g core.Gen) {
	p := pipe.FromGen(g, 8)
	`+release+`
	p.Next()
}
`)
	}
}

func TestPipeStopEscapes(t *testing.T) {
	cases := []string{
		// Returned: the caller owns the release.
		`package p
func mk(g core.Gen) *pipe.Pipe { p := pipe.FromGen(g, 8); return p }`,
		// Passed as an argument.
		`package p
func hand(g core.Gen) { p := pipe.FromGen(g, 8); drain(p) }`,
		// Stored in a struct literal.
		`package p
func store(g core.Gen) S { p := pipe.FromGen(g, 8); return S{pipe: p} }`,
		// Aliased through OnPool (the alias carries the release duty).
		`package p
func pooled(g core.Gen, pl *pool.Pool) { p := pipe.FromGen(g, 8); q := p.OnPool(pl); q.Stop() }`,
	}
	for _, src := range cases {
		wantChecks(t, src)
	}
}

func TestPipeStopChainedCreation(t *testing.T) {
	// The creator hides mid-chain; the variable still holds the pipe.
	wantChecks(t, `package p

func leak(g core.Gen, pl *pool.Pool) {
	p := pipe.FromGenBatched(g, 8, 4).OnPool(pl)
	p.Next()
}
`, "pipestop")
}

func TestPutAfterClose(t *testing.T) {
	wantChecks(t, `package p

func flush(q queue.Queue[int]) {
	q.Close()
	q.Put(1)
}
`, "putclose")
}

func TestPutAfterCloseBatchInLoop(t *testing.T) {
	wantChecks(t, `package p

func flush(q queue.Queue[int], runs [][]int) {
	q.Close()
	for _, r := range runs {
		q.PutBatch(r)
	}
}
`, "putclose")
}

func TestPutAfterCloseClean(t *testing.T) {
	cases := []string{
		// Put before Close: the normal shutdown order.
		`package p
func ok(q queue.Queue[int]) { q.Put(1); q.Close() }`,
		// defer Close runs last, not at its textual position.
		`package p
func ok(q queue.Queue[int]) { defer q.Close(); q.Put(1) }`,
		// Reassignment starts a fresh queue.
		`package p
func ok(q queue.Queue[int]) { q.Close(); q = queue.NewArrayBlocking[int](4); q.Put(1) }`,
		// Different receivers.
		`package p
func ok(a, b queue.Queue[int]) { a.Close(); b.Put(1) }`,
	}
	for _, src := range cases {
		wantChecks(t, src)
	}
}

func TestTelemetryRegistryInLoop(t *testing.T) {
	wantChecks(t, `package p

func hot(vs []int) {
	for range vs {
		telemetry.NewCounter("pipe.values").Inc()
	}
}
`, "telemetryguard")
}

func TestTelemetryUnguardedEmit(t *testing.T) {
	wantChecks(t, `package p

func hot(vs []int) {
	for i := range vs {
		telemetry.Emit(1, telemetry.KindYield, "x", int64(i))
	}
}
`, "telemetryguard")
}

func TestTelemetryGuardedEmitClean(t *testing.T) {
	cases := []string{
		// Direct gate inside the loop.
		`package p
func ok(vs []int) {
	for i := range vs {
		if telemetry.TraceOn() {
			telemetry.Emit(1, telemetry.KindYield, "x", int64(i))
		}
	}
}`,
		// Snapshot idiom: gate hoisted out of the loop into a variable.
		`package p
func ok(vs []int) {
	observed := telemetry.Active()
	for i := range vs {
		if observed {
			telemetry.Emit(1, telemetry.KindYield, "x", int64(i))
		}
	}
}`,
		// Whole loop under the gate.
		`package p
func ok(vs []int) {
	if telemetry.On() {
		for i := range vs {
			telemetry.Emit(1, telemetry.KindYield, "x", int64(i))
		}
	}
}`,
		// Counter hoisted to a package var: the intended shape.
		`package p
var c = telemetry.NewCounter("pipe.values")
func ok(vs []int) {
	for range vs {
		c.Inc()
	}
}`,
	}
	for _, src := range cases {
		wantChecks(t, src)
	}
}

func TestTelemetryGuardElseBranchNotGuarded(t *testing.T) {
	// The else branch of a gate is the telemetry-off path: emitting there
	// is exactly backwards and must still be flagged.
	wantChecks(t, `package p

func hot(vs []int) {
	for i := range vs {
		if telemetry.TraceOn() {
			_ = i
		} else {
			telemetry.Emit(1, telemetry.KindYield, "x", int64(i))
		}
	}
}
`, "telemetryguard")
}

func TestInspectLeak(t *testing.T) {
	wantChecks(t, `package p

func leak(id uint64) {
	h := inspect.Register(id, inspect.KindPipe, "leaky")
	h.Produced(1)
}
`, "inspectleak")
}

func TestInspectLeakDiscardedResult(t *testing.T) {
	// A handle nobody holds can never be retired: statement position and
	// blank assignment are both flagged.
	wantChecks(t, `package p

func drop(id uint64) {
	inspect.Register(id, inspect.KindPipe, "dropped")
	_ = inspect.Register(id, inspect.KindPipe, "blanked")
}
`, "inspectleak", "inspectleak")
}

func TestInspectLeakReleased(t *testing.T) {
	for _, release := range []string{
		"defer h.Close()",
		"h.Close()",
		"defer inspect.Unregister(h)",
		"inspect.Unregister(h)",
	} {
		wantChecks(t, `package p

func ok(id uint64) {
	h := inspect.Register(id, inspect.KindPipe, "tracked")
	`+release+`
	h.Produced(1)
}
`)
	}
}

func TestInspectLeakNilGuardStillLeaks(t *testing.T) {
	// The disabled-registry nil guard is not a release: a handle that is
	// only ever nil-checked and used through methods still leaks.
	wantChecks(t, `package p

func leak(id uint64) {
	h := inspect.Register(id, inspect.KindPipe, "guarded")
	if h != nil {
		h.Produced(1)
	}
}
`, "inspectleak")
}

func TestInspectLeakEscapes(t *testing.T) {
	cases := []string{
		// Returned: the caller owns the retirement.
		`package p
func mk(id uint64) *inspect.Handle { h := inspect.Register(id, inspect.KindPipe, "x"); return h }`,
		// Passed as an argument.
		`package p
func hand(id uint64) { h := inspect.Register(id, inspect.KindPipe, "x"); watch(h) }`,
		// Stored in a struct field.
		`package p
func store(id uint64, s *S) { h := inspect.Register(id, inspect.KindPipe, "x"); s.h = h }`,
	}
	for _, src := range cases {
		wantChecks(t, src)
	}
}

func TestIgnoreDirective(t *testing.T) {
	wantChecks(t, `package p

func flush(q queue.Queue[int]) {
	q.Close()
	//junilint:ignore — contract test
	q.Put(1)
}
`)
}

func TestFindingFormat(t *testing.T) {
	fs := check(t, `package p

func flush(q queue.Queue[int]) {
	q.Close()
	q.Put(1)
}
`)
	if len(fs) != 1 {
		t.Fatalf("findings: %v", fs)
	}
	s := fs[0].String()
	if !strings.HasPrefix(s, "test.go:5:") || !strings.Contains(s, "putclose:") {
		t.Fatalf("finding format: %q", s)
	}
}

func TestSnapGuardDiscarded(t *testing.T) {
	// Bare statement: blob and refusal both dropped.
	wantChecks(t, `package p

func save(g core.Gen) {
	checkpoint.Snapshot(g, checkpoint.Meta{})
}
`, "snapguard")
	// Blank error: the refusal vanishes.
	wantChecks(t, `package p

func save(g core.Gen) []byte {
	blob, _ := checkpoint.Snapshot(g, checkpoint.Meta{})
	return blob
}
`, "snapguard")
	wantChecks(t, `package p

func load(data []byte, m *vm.Machine) core.Gen {
	g, _ := checkpoint.Restore(data, m, nil)
	return g
}
`, "snapguard")
}

func TestSnapGuardHandled(t *testing.T) {
	cases := []string{
		// Error checked: the canonical refusal-aware shape.
		`package p
func save(g core.Gen) ([]byte, error) {
	blob, err := checkpoint.Snapshot(g, checkpoint.Meta{})
	if checkpoint.IsRefused(err) {
		return nil, nil
	}
	return blob, err
}`,
		// Error propagated untouched.
		`package p
func peek(data []byte) (*checkpoint.Meta, error) { return checkpoint.Peek(data) }`,
		// Suppressed explicitly.
		`package p
func fire(g core.Gen) {
	//junilint:ignore — measured, refusal impossible here
	checkpoint.Snapshot(g, checkpoint.Meta{})
}`,
	}
	for _, src := range cases {
		wantChecks(t, src)
	}
}
