package lint

import (
	"fmt"
	"go/ast"
	"go/token"
)

// telemetryGuard keeps telemetry out of hot loops. Two shapes:
//
//   - telemetry.NewCounter / NewGauge / NewHistogram inside a loop: these
//     are registry lookups (name hash + registry lock) meant to run once
//     at package init and be cached in a var, never per iteration.
//   - telemetry.Emit / EmitSpan / NextStream inside a loop with no
//     enclosing telemetry guard: the convention throughout the runtime is
//     to snapshot telemetry.Active()/On()/TraceOn() once (or test it
//     directly) and only emit under that test, so the disabled-telemetry
//     fast path costs one predictable branch. An unguarded emission pays
//     the ring-buffer CAS on every iteration even with tracing off.
//
// A guard is an enclosing if whose condition calls telemetry.On, Active
// or TraceOn — or mentions a variable assigned from one of those calls
// anywhere in the same function (the snapshot idiom).
var telemetryGuard = &Analyzer{
	Name: "telemetryguard",
	Doc:  "telemetry registry lookups or unguarded emissions in hot loops",
	Run:  runTelemetryGuard,
}

var (
	telemetryRegistry = map[string]bool{"NewCounter": true, "NewGauge": true, "NewHistogram": true}
	telemetryEmitters = map[string]bool{"Emit": true, "EmitSpan": true, "NextStream": true}
	telemetryGates    = map[string]bool{"On": true, "Active": true, "TraceOn": true}
)

func runTelemetryGuard(f *File) []Finding {
	var out []Finding
	for _, decl := range f.AST.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, telemetryGuardFunc(f, fn.Body)...)
	}
	return out
}

func telemetryGuardFunc(f *File, body *ast.BlockStmt) []Finding {
	// The snapshot idiom: observed := telemetry.Active().
	guardVars := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if ok && isGateExpr(as.Rhs[i], nil) {
				guardVars[id.Name] = true
			}
		}
		return true
	})

	// Path-tracking walk: for every telemetry call, look up the ancestor
	// stack for a loop below the nearest guarding if-branch.
	var out []Finding
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		stack = append(stack, n)
		name, call := pkgCall(n, "telemetry")
		if call == nil {
			return true
		}
		inLoop := false
		guarded := false
		for _, anc := range stack[:len(stack)-1] {
			switch a := anc.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				inLoop = true
			case *ast.IfStmt:
				if isGateExpr(a.Cond, guardVars) && within(a.Body, call.Pos()) {
					guarded = true
				}
			}
		}
		if !inLoop {
			return true
		}
		switch {
		case telemetryRegistry[name]:
			out = append(out, Finding{
				Pos:   position(f, call),
				Check: "telemetryguard",
				Msg: fmt.Sprintf(
					"telemetry.%s inside a loop: registry lookup per iteration — hoist the metric to a package-level var",
					name),
			})
		case telemetryEmitters[name] && !guarded:
			out = append(out, Finding{
				Pos:   position(f, call),
				Check: "telemetryguard",
				Msg: fmt.Sprintf(
					"telemetry.%s in a loop without a telemetry.Active()/On()/TraceOn() guard: the disabled path pays per-iteration cost",
					name),
			})
		}
		return true
	})
	return out
}

// isGateExpr reports whether e contains a telemetry.On/Active/TraceOn
// call or (when guardVars is non-nil) a snapshot variable of one.
func isGateExpr(e ast.Expr, guardVars map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if name, call := pkgCall(n, "telemetry"); call != nil && telemetryGates[name] {
			found = true
			return false
		}
		if id, ok := n.(*ast.Ident); ok && guardVars != nil && guardVars[id.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// within reports whether pos falls inside n's source range.
func within(n ast.Node, pos token.Pos) bool {
	return n != nil && n.Pos() <= pos && pos < n.End()
}
