package meta

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBasicRegionExtraction(t *testing.T) {
	src := `class C {
  @<script lang="junicon"> x := f(g(y)); @</script>
  void m() {}
}`
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rs := Regions(segs)
	if len(rs) != 1 {
		t.Fatalf("regions = %d", len(rs))
	}
	r := rs[0]
	if r.Tag != "script" || r.Lang() != "junicon" {
		t.Fatalf("region = %+v", r)
	}
	if strings.TrimSpace(r.Raw) != "x := f(g(y));" {
		t.Fatalf("raw = %q", r.Raw)
	}
	if r.Line != 2 {
		t.Fatalf("line = %d", r.Line)
	}
}

func TestSelfClosingForms(t *testing.T) {
	for _, src := range []string{
		`@<trace level=3/>`,
		`@<trace(level=3)/>`,
		`@<x.y:trace level="3"/>`,
	} {
		segs, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		rs := Regions(segs)
		if len(rs) != 1 || !rs[0].SelfClosing {
			t.Fatalf("%s: %+v", src, rs)
		}
		if rs[0].Attrs["level"] != "3" {
			t.Fatalf("%s: attrs = %v", src, rs[0].Attrs)
		}
	}
}

func TestParenAttributeForm(t *testing.T) {
	src := `@<script(lang=junicon, mode="strict")> body @</script>`
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	r := Regions(segs)[0]
	if r.Lang() != "junicon" || r.Attrs["mode"] != "strict" {
		t.Fatalf("attrs = %v", r.Attrs)
	}
}

func TestNestedRegions(t *testing.T) {
	// §4: a Java region inside a Unicon region lifts native code into the
	// goal-directed evaluation.
	src := `@<script lang="junicon">
  x := 1;
  @<script lang="java"> System.out.println(x); @</script>
  y := 2;
@</script>`
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	outer := Regions(segs)[0]
	inner := Regions(outer.Segments)
	if len(inner) != 1 || inner[0].Lang() != "java" {
		t.Fatalf("inner = %+v", inner)
	}
	if !strings.Contains(inner[0].Raw, "println") {
		t.Fatalf("inner raw = %q", inner[0].Raw)
	}
}

func TestHostRoundTripsByteIdentical(t *testing.T) {
	srcs := []string{
		"plain host text, no annotations",
		`public int f() { return "a@<b"; } // @<not a tag in comment`,
		"/* block @<script lang=\"x\"> comment */ code",
		"s := `raw @</script> backquote`",
		`mixed @<script lang="junicon"> a := 1 @</script> tail`,
	}
	for _, src := range srcs {
		segs, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		out, err := Render(segs, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Identity render normalizes attribute quoting inside tags but must
		// preserve all host bytes; for sources whose tags are already in
		// canonical form the whole text round-trips.
		if out != src {
			t.Fatalf("round trip changed text:\n in: %q\nout: %q", src, out)
		}
	}
}

func TestAnnotationInsideStringIsIgnored(t *testing.T) {
	src := `String s = "@<script lang=\"junicon\"> not real @</script>";`
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(Regions(segs)) != 0 {
		t.Fatal("annotation inside string literal must be host text")
	}
}

func TestAnnotationInsideCommentIsIgnored(t *testing.T) {
	src := "// @<script lang=\"junicon\"> no @</script>\nint x;"
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(Regions(segs)) != 0 {
		t.Fatal("annotation inside comment must be host text")
	}
}

func TestRenderTransformsRegions(t *testing.T) {
	src := `before @<script lang="junicon"> 1 to 3 @</script> after`
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(segs, func(r *Region) (string, error) {
		return "<<" + strings.TrimSpace(r.Raw) + ">>", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != "before <<1 to 3>> after" {
		t.Fatalf("out = %q", out)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		`@<script lang="junicon"> no close`:    "missing @</script>",
		`@<script lang="junicon"> x @</other>`: "mismatched",
		`@<>`:                                  "missing tag name",
		`@<script lang=> x @</script>`:         "empty attribute value",
		`@<script lang="junicon> x`:            "unterminated",
		"host text @</script> dangling":        "no open region",
		`@<script lang @</script>`:             "missing value",
	}
	for src, want := range cases {
		_, err := Parse(src)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%q: err = %v, want contains %q", src, err, want)
		}
	}
}

func TestMultipleSiblingsAndOrdering(t *testing.T) {
	src := `a @<x>1@</x> b @<y>2@</y> c`
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var shape []string
	for _, s := range segs {
		if s.Region != nil {
			shape = append(shape, "R:"+s.Region.Tag)
		} else {
			shape = append(shape, "H:"+s.Host)
		}
	}
	want := []string{"H:a ", "R:x", "H: b ", "R:y", "H: c"}
	if len(shape) != len(want) {
		t.Fatalf("shape = %v", shape)
	}
	for i := range want {
		if shape[i] != want[i] {
			t.Fatalf("shape = %v", shape)
		}
	}
}

func TestFigure3Skeleton(t *testing.T) {
	// The WordCount program of Figure 3, abridged: method-level and
	// expression-level embedding in one file.
	src := `
class WordCount {
  static String[] lines;

  @<script lang="junicon">
    def readLines () { suspend ! lines; }
    def sumHash (sofar, hash) { return sofar + hash; }
  @</script>

  public void runPipeline () {
    double total = 0;
    for (Object i :
      @<script lang="junicon">
        this::hashNumber( ! (|> this::wordToNumber( ! splitWords(readLines()))))
      @</script>
    ) { total = total + ((Double) i).doubleValue(); };
  }
}`
	segs, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rs := Regions(segs)
	if len(rs) != 2 {
		t.Fatalf("regions = %d", len(rs))
	}
	if !strings.Contains(rs[0].Raw, "def readLines") {
		t.Fatal("method-level region content")
	}
	if !strings.Contains(rs[1].Raw, "|>") {
		t.Fatal("expression-level region content")
	}
}

func TestPropHostOnlyTextAlwaysRoundTrips(t *testing.T) {
	f := func(raw []byte) bool {
		// Strip bytes that could open a region or quote state; arbitrary
		// other host text must survive untouched.
		s := strings.Map(func(r rune) rune {
			switch r {
			case '@', '"', '\'', '`', '/':
				return '.'
			}
			return r
		}, string(raw))
		segs, err := Parse(s)
		if err != nil {
			return false
		}
		out, err := Render(segs, nil)
		return err == nil && out == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
