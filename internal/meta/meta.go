// Package meta implements the metaparser for scoped annotations (§4): the
// mixed-language front end that finds embedded regions
//
//	@<script lang="junicon"> … @</script>
//	@<tag attr="v"/>
//	@<tag(attr=v, …)> … @</tag>
//
// inside a host-language file while remaining oblivious to the host
// grammar. Per the paper, no Java/Groovy/Go parser is needed — only a
// general scanner that respects grouping delimiters: string literals and
// comments are skipped so annotation-like text inside them is left alone,
// and regions nest arbitrarily ("like XML, such annotations can surround
// multiple statements, and can also be nested").
//
// Host text round-trips byte-identically: Render with an identity
// transform reproduces the input.
package meta

import (
	"fmt"
	"strings"
)

// Region is one scoped annotation.
type Region struct {
	Tag         string            // tag name, possibly qualified ("script", "x.y:tag")
	Attrs       map[string]string // attribute values (unquoted)
	SelfClosing bool
	Segments    []Segment // parsed content (empty when self-closing)
	Raw         string    // raw content text between the open and close tags
	Line        int       // 1-based line of the @< that opened the region
}

// Lang returns the region's lang attribute ("" when absent).
func (r *Region) Lang() string { return r.Attrs["lang"] }

// Segment is a run of host text or an embedded region.
type Segment struct {
	Host   string  // host text; meaningful when Region is nil
	Region *Region // non-nil for an embedded region
}

// Error is a metaparse error with line position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

type scanner struct {
	src  string
	pos  int
	line int
}

// Parse decomposes a mixed-language source into host text and annotation
// regions.
func Parse(src string) ([]Segment, error) {
	s := &scanner{src: src, line: 1}
	segs, err := s.segments("")
	if err != nil {
		return nil, err
	}
	if s.pos < len(s.src) {
		return nil, &Error{Line: s.line, Msg: "unexpected close tag with no open region"}
	}
	return segs, nil
}

// segments scans until EOF or until the close tag @</closeTag> is found
// (the close tag itself is consumed).
func (s *scanner) segments(closeTag string) ([]Segment, error) {
	var segs []Segment
	var host strings.Builder
	flush := func() {
		if host.Len() > 0 {
			segs = append(segs, Segment{Host: host.String()})
			host.Reset()
		}
	}
	for s.pos < len(s.src) {
		// Close tag?
		if closeTag != "" && strings.HasPrefix(s.src[s.pos:], "@</") {
			tag, ok := s.tryCloseTag()
			if !ok {
				return nil, &Error{Line: s.line, Msg: "malformed close tag"}
			}
			if tag != closeTag {
				return nil, &Error{Line: s.line, Msg: fmt.Sprintf("mismatched close tag %q, expected %q", tag, closeTag)}
			}
			flush()
			return segs, nil
		}
		if closeTag == "" && strings.HasPrefix(s.src[s.pos:], "@</") {
			// Let the caller report the dangling close tag.
			flush()
			return segs, nil
		}
		// Open tag?
		if strings.HasPrefix(s.src[s.pos:], "@<") {
			r, err := s.region()
			if err != nil {
				return nil, err
			}
			flush()
			segs = append(segs, Segment{Region: r})
			continue
		}
		// Host text: copy one lexical unit, skipping over strings and
		// comments so that "@<" inside them is not misread.
		s.copyUnit(&host)
	}
	if closeTag != "" {
		return nil, &Error{Line: s.line, Msg: fmt.Sprintf("missing @</%s>", closeTag)}
	}
	flush()
	return segs, nil
}

// copyUnit copies the next lexical unit of host text into b: a string
// literal, a comment, or a single character.
func (s *scanner) copyUnit(b *strings.Builder) {
	c := s.src[s.pos]
	switch {
	case c == '"' || c == '\'' || c == '`':
		quote := c
		b.WriteByte(s.take())
		for s.pos < len(s.src) {
			ch := s.take()
			b.WriteByte(ch)
			if ch == '\\' && quote != '`' && s.pos < len(s.src) {
				b.WriteByte(s.take())
				continue
			}
			if ch == quote || (ch == '\n' && quote != '`') {
				return
			}
		}
	case strings.HasPrefix(s.src[s.pos:], "//"):
		for s.pos < len(s.src) && s.src[s.pos] != '\n' {
			b.WriteByte(s.take())
		}
	case strings.HasPrefix(s.src[s.pos:], "/*"):
		b.WriteByte(s.take())
		b.WriteByte(s.take())
		for s.pos < len(s.src) && !strings.HasPrefix(s.src[s.pos:], "*/") {
			b.WriteByte(s.take())
		}
		if s.pos < len(s.src) {
			b.WriteByte(s.take())
			b.WriteByte(s.take())
		}
	default:
		b.WriteByte(s.take())
	}
}

func (s *scanner) take() byte {
	c := s.src[s.pos]
	if c == '\n' {
		s.line++
	}
	s.pos++
	return c
}

// tryCloseTag consumes @</name> and returns the name.
func (s *scanner) tryCloseTag() (string, bool) {
	save, saveLine := s.pos, s.line
	s.pos += 3 // @</
	name := s.tagName()
	if name == "" || s.pos >= len(s.src) || s.src[s.pos] != '>' {
		s.pos, s.line = save, saveLine
		return "", false
	}
	s.pos++
	return name, true
}

func (s *scanner) tagName() string {
	begin := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if isNameChar(c) {
			s.pos++
			continue
		}
		break
	}
	return s.src[begin:s.pos]
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '.' || c == ':' || c == '-'
}

// region parses an open tag at @<, then its content up to the matching
// close tag (unless self-closing).
func (s *scanner) region() (*Region, error) {
	startLine := s.line
	s.pos += 2 // @<
	name := s.tagName()
	if name == "" {
		return nil, &Error{Line: s.line, Msg: "missing tag name after @<"}
	}
	r := &Region{Tag: name, Attrs: map[string]string{}, Line: startLine}
	// Attribute list: XML style `a="v" b=v` or paren style `(a=v, b=v)`.
	paren := false
	s.skipSpace()
	if s.pos < len(s.src) && s.src[s.pos] == '(' {
		paren = true
		s.pos++
	}
	for {
		s.skipSpace()
		if s.pos >= len(s.src) {
			return nil, &Error{Line: s.line, Msg: "unterminated annotation tag"}
		}
		c := s.src[s.pos]
		if paren && c == ')' {
			s.pos++
			s.skipSpace()
			c = s.byteAt(0)
		}
		if c == '/' && s.byteAt(1) == '>' {
			s.pos += 2
			r.SelfClosing = true
			return r, nil
		}
		if c == '>' {
			s.pos++
			break
		}
		if paren && c == ',' {
			s.pos++
			continue
		}
		key := s.tagName()
		if key == "" {
			return nil, &Error{Line: s.line, Msg: fmt.Sprintf("malformed attribute in @<%s>", name)}
		}
		s.skipSpace()
		if s.byteAt(0) != '=' {
			return nil, &Error{Line: s.line, Msg: fmt.Sprintf("attribute %s missing value", key)}
		}
		s.pos++
		s.skipSpace()
		val, err := s.attrValue()
		if err != nil {
			return nil, err
		}
		r.Attrs[key] = val
	}
	// Content until @</name>.
	contentStart := s.pos
	segs, err := s.segments(name)
	if err != nil {
		return nil, err
	}
	r.Segments = segs
	// Raw content: everything between the open tag and the close tag.
	rawEnd := strings.LastIndex(s.src[:s.pos], "@</")
	if rawEnd >= contentStart {
		r.Raw = s.src[contentStart:rawEnd]
	}
	return r, nil
}

func (s *scanner) byteAt(off int) byte {
	if s.pos+off >= len(s.src) {
		return 0
	}
	return s.src[s.pos+off]
}

func (s *scanner) skipSpace() {
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			s.take()
			continue
		}
		return
	}
}

func (s *scanner) attrValue() (string, error) {
	if s.pos >= len(s.src) {
		return "", &Error{Line: s.line, Msg: "missing attribute value"}
	}
	c := s.src[s.pos]
	if c == '"' || c == '\'' {
		quote := s.take()
		begin := s.pos
		for s.pos < len(s.src) && s.src[s.pos] != quote {
			s.take()
		}
		if s.pos >= len(s.src) {
			return "", &Error{Line: s.line, Msg: "unterminated attribute value"}
		}
		v := s.src[begin:s.pos]
		s.pos++
		return v, nil
	}
	begin := s.pos
	for s.pos < len(s.src) {
		c := s.src[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '>' || c == ')' || c == ',' ||
			(c == '/' && s.byteAt(1) == '>') {
			break
		}
		s.take()
	}
	if begin == s.pos {
		return "", &Error{Line: s.line, Msg: "empty attribute value"}
	}
	return s.src[begin:s.pos], nil
}

// Render reassembles a segment list into text, transforming each region
// with tr — the injection step of the transformational framework ("each
// embedded region is then transformed and injected into the surrounding
// context, from the innermost outwards"). Passing nil for tr reproduces the
// original text.
func Render(segs []Segment, tr func(*Region) (string, error)) (string, error) {
	var b strings.Builder
	for _, seg := range segs {
		if seg.Region == nil {
			b.WriteString(seg.Host)
			continue
		}
		if tr == nil {
			s, err := identity(seg.Region)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
			continue
		}
		s, err := tr(seg.Region)
		if err != nil {
			return "", err
		}
		b.WriteString(s)
	}
	return b.String(), nil
}

func identity(r *Region) (string, error) {
	var b strings.Builder
	b.WriteString("@<")
	b.WriteString(r.Tag)
	// Deterministic attribute order for round-trips of our own rendering:
	// keep lang first, then others alphabetically.
	writeAttr := func(k string) {
		fmt.Fprintf(&b, " %s=%q", k, r.Attrs[k])
	}
	if _, ok := r.Attrs["lang"]; ok {
		writeAttr("lang")
	}
	keys := make([]string, 0, len(r.Attrs))
	for k := range r.Attrs {
		if k != "lang" {
			keys = append(keys, k)
		}
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		writeAttr(k)
	}
	if r.SelfClosing {
		b.WriteString("/>")
		return b.String(), nil
	}
	b.WriteString(">")
	inner, err := Render(r.Segments, nil)
	if err != nil {
		return "", err
	}
	b.WriteString(inner)
	b.WriteString("@</")
	b.WriteString(r.Tag)
	b.WriteString(">")
	return b.String(), nil
}

// Regions returns the top-level regions of a segment list.
func Regions(segs []Segment) []*Region {
	var out []*Region
	for _, s := range segs {
		if s.Region != nil {
			out = append(out, s.Region)
		}
	}
	return out
}
