package parser

import (
	"strings"
	"testing"

	"junicon/internal/ast"
)

func parse(t *testing.T, src string) ast.Node {
	t.Helper()
	n, err := ParseExpression(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return n
}

func parseProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatalf("parse program: %v\n%s", err, src)
	}
	return p
}

func TestLiterals(t *testing.T) {
	if _, ok := parse(t, "42").(*ast.IntLit); !ok {
		t.Fatal("int literal")
	}
	if _, ok := parse(t, "3.5").(*ast.RealLit); !ok {
		t.Fatal("real literal")
	}
	if s, ok := parse(t, `"hi"`).(*ast.StrLit); !ok || s.Value != "hi" {
		t.Fatal("string literal")
	}
	if c, ok := parse(t, `'abc'`).(*ast.CsetLit); !ok || c.Value != "abc" {
		t.Fatal("cset literal")
	}
	if k, ok := parse(t, "&null").(*ast.Keyword); !ok || k.Name != "null" {
		t.Fatal("keyword literal")
	}
	if l, ok := parse(t, "[1, 2, 3]").(*ast.ListLit); !ok || len(l.Elems) != 3 {
		t.Fatal("list literal")
	}
}

func TestPrecedenceProductLoosest(t *testing.T) {
	// a & b | c parses as a & (b | c).
	n := parse(t, "a & b | c").(*ast.Binary)
	if n.Op != "&" {
		t.Fatalf("root = %s", n.Op)
	}
	if r := n.R.(*ast.Binary); r.Op != "|" {
		t.Fatalf("right = %s", r.Op)
	}
}

func TestPrecedenceArithmetic(t *testing.T) {
	// 1 + 2 * 3 ^ 4 parses as 1 + (2 * (3 ^ 4)).
	n := parse(t, "1 + 2 * 3 ^ 4").(*ast.Binary)
	if n.Op != "+" {
		t.Fatalf("root = %s", n.Op)
	}
	mul := n.R.(*ast.Binary)
	if mul.Op != "*" {
		t.Fatalf("mul = %s", mul.Op)
	}
	if pow := mul.R.(*ast.Binary); pow.Op != "^" {
		t.Fatalf("pow = %s", pow.Op)
	}
}

func TestPowRightAssociative(t *testing.T) {
	n := parse(t, "2 ^ 3 ^ 4").(*ast.Binary)
	if _, ok := n.R.(*ast.Binary); !ok {
		t.Fatal("2^(3^4) expected")
	}
	if _, ok := n.L.(*ast.IntLit); !ok {
		t.Fatal("left should be literal")
	}
}

func TestAssignmentRightAssociativeAndEqAlias(t *testing.T) {
	n := parse(t, "x := y := 1").(*ast.Binary)
	if n.Op != ":=" {
		t.Fatalf("root = %s", n.Op)
	}
	if inner := n.R.(*ast.Binary); inner.Op != ":=" {
		t.Fatal("right-assoc assignment")
	}
	// Junicon: = is assignment.
	m := parse(t, "chunk = []").(*ast.Binary)
	if m.Op != ":=" {
		t.Fatalf("= should alias :=, got %s", m.Op)
	}
}

func TestComparisonYieldsBinary(t *testing.T) {
	for _, op := range []string{"<", "<=", ">", ">=", "~=", "<<", "==", "~==", "===", "~==="} {
		n := parse(t, "a "+op+" b").(*ast.Binary)
		if n.Op != op {
			t.Fatalf("op = %s", n.Op)
		}
	}
}

func TestToByRange(t *testing.T) {
	n := parse(t, "1 to 10 by 2").(*ast.ToBy)
	if n.By == nil {
		t.Fatal("by clause missing")
	}
	m := parse(t, "(1 to 2) * isprime(4 to 7)").(*ast.Binary)
	if m.Op != "*" {
		t.Fatalf("root = %s", m.Op)
	}
	if _, ok := m.L.(*ast.ToBy); !ok {
		t.Fatal("left to-by")
	}
	call := m.R.(*ast.Call)
	if _, ok := call.Args[0].(*ast.ToBy); !ok {
		t.Fatal("argument to-by")
	}
}

func TestAlternationAndLimit(t *testing.T) {
	n := parse(t, "f(x) | g(x)").(*ast.Binary)
	if n.Op != "|" {
		t.Fatal("alternation")
	}
	lim := parse(t, "e \\ 3").(*ast.Binary)
	if lim.Op != "\\" {
		t.Fatal("limitation")
	}
}

func TestGeneratorFunctionPosition(t *testing.T) {
	// (f | g)(x)
	n := parse(t, "(f | g)(x)").(*ast.Call)
	if _, ok := n.Fun.(*ast.Binary); !ok {
		t.Fatal("function position should be the alternation")
	}
}

func TestPrefixOperators(t *testing.T) {
	for _, op := range []string{"!", "@", "^", "*", "-", "/", "\\", "~", "?"} {
		n := parse(t, op+"x").(*ast.Unary)
		if n.Op != op {
			t.Fatalf("unary %s parsed as %s", op, n.Op)
		}
	}
	if n := parse(t, "not x").(*ast.Unary); n.Op != "not" {
		t.Fatal("not")
	}
	if n := parse(t, "|x").(*ast.Unary); n.Op != "|" {
		t.Fatal("repeated alternation prefix")
	}
}

func TestCreateOperators(t *testing.T) {
	// Figure 1 calculus.
	if n := parse(t, "<>e").(*ast.Unary); n.Op != "<>" {
		t.Fatal("<>")
	}
	if n := parse(t, "|<>e").(*ast.Unary); n.Op != "|<>" {
		t.Fatal("|<>")
	}
	if n := parse(t, "|>e").(*ast.Unary); n.Op != "|>" {
		t.Fatal("|>")
	}
	// Nested pipeline from §3B: x * !|>factorial(!|>sqrt(y))
	n := parse(t, "x * ! |> factorial(! |> sqrt(y))").(*ast.Binary)
	bang := n.R.(*ast.Unary)
	if bang.Op != "!" {
		t.Fatalf("expected !, got %s", bang.Op)
	}
	pipe := bang.X.(*ast.Unary)
	if pipe.Op != "|>" {
		t.Fatalf("expected |>, got %s", pipe.Op)
	}
	if _, ok := pipe.X.(*ast.Call); !ok {
		t.Fatal("pipe body should be the factorial call")
	}
}

func TestBinaryActivation(t *testing.T) {
	n := parse(t, "x @ c").(*ast.Binary)
	if n.Op != "@" {
		t.Fatal("binary @")
	}
	// put(chunk, @e): unary @ inside args.
	call := parse(t, "put(chunk, @e)").(*ast.Call)
	if u, ok := call.Args[1].(*ast.Unary); !ok || u.Op != "@" {
		t.Fatal("unary @ argument")
	}
}

func TestPostfixChain(t *testing.T) {
	// e(ex,ey).c[ei] — the §5A running example.
	n := parse(t, "e(ex,ey).c[ei]").(*ast.Index)
	f := n.X.(*ast.Field)
	if f.Name != "c" {
		t.Fatalf("field = %s", f.Name)
	}
	call := f.X.(*ast.Call)
	if len(call.Args) != 2 {
		t.Fatal("call args")
	}
}

func TestSlice(t *testing.T) {
	n := parse(t, "s[2:4]").(*ast.Slice)
	if n.I == nil || n.J == nil {
		t.Fatal("slice bounds")
	}
}

func TestNativeInvocation(t *testing.T) {
	// this::hashNumber(this::wordToNumber(x))
	n := parse(t, "this::hashNumber(this::wordToNumber(x))").(*ast.NativeCall)
	if n.Name != "hashNumber" || n.Recv != nil {
		t.Fatalf("native = %+v", n)
	}
	inner := n.Args[0].(*ast.NativeCall)
	if inner.Name != "wordToNumber" {
		t.Fatal("nested native")
	}
	// ((String) line)::split — receiver form; we accept expr::name(args).
	m := parse(t, `line::split("x")`).(*ast.NativeCall)
	if m.Recv == nil {
		t.Fatal("explicit receiver should be kept")
	}
}

func TestControlConstructs(t *testing.T) {
	n := parse(t, "if x < 3 then f(x) else g(x)").(*ast.If)
	if n.Else == nil {
		t.Fatal("else")
	}
	w := parse(t, "while x do f(x)").(*ast.While)
	if w.Until || w.Body == nil {
		t.Fatal("while")
	}
	u := parse(t, "until x do f(x)").(*ast.While)
	if !u.Until {
		t.Fatal("until")
	}
	e := parse(t, "every x := 1 to 3 do write(x)").(*ast.Every)
	if e.Body == nil {
		t.Fatal("every body")
	}
	r := parse(t, "repeat { f(x); break }").(*ast.Repeat)
	if r.Body == nil {
		t.Fatal("repeat")
	}
}

func TestCaseExpr(t *testing.T) {
	n := parse(t, `case x of { 1 | 2 : "small"; default: "big" }`).(*ast.Case)
	if len(n.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(n.Clauses))
	}
	if n.Clauses[1].Sel != nil {
		t.Fatal("default clause marker")
	}
}

func TestReturnSuspendFailBreakNext(t *testing.T) {
	if n := parse(t, "return x + 1").(*ast.Return); n.E == nil {
		t.Fatal("return expr")
	}
	if n := parse(t, "return").(*ast.Return); n.E != nil {
		t.Fatal("bare return")
	}
	if n := parse(t, "suspend !lines").(*ast.Suspend); n.E == nil {
		t.Fatal("suspend")
	}
	if _, ok := parse(t, "fail").(*ast.Fail); !ok {
		t.Fatal("fail")
	}
	b := parse(t, "{ break 42 }").(*ast.Block).Stmts[0].(*ast.Break)
	if b.E == nil {
		t.Fatal("break value")
	}
}

func TestProcDeclBraceAndUniconStyles(t *testing.T) {
	p := parseProg(t, `
def splitWords (line) { suspend !line; }
procedure add(a, b)
  local t
  t := a + b
  return t
end
`)
	if len(p.Decls) != 2 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	d0 := p.Decls[0].(*ast.ProcDecl)
	if d0.Name != "splitWords" || len(d0.Params) != 1 {
		t.Fatalf("d0 = %+v", d0)
	}
	d1 := p.Decls[1].(*ast.ProcDecl)
	if d1.Name != "add" || len(d1.Body.Stmts) != 3 {
		t.Fatalf("d1 = %+v", d1)
	}
}

func TestRecordGlobalClass(t *testing.T) {
	p := parseProg(t, `
record point(x, y)
global verbose, trace
class WordCount(lines) {
  def readLines() { suspend !lines; }
  def hash(w) { return w; }
}
`)
	if r := p.Decls[0].(*ast.RecordDecl); r.Name != "point" || len(r.Fields) != 2 {
		t.Fatal("record")
	}
	if g := p.Decls[1].(*ast.GlobalDecl); len(g.Names) != 2 {
		t.Fatal("global")
	}
	c := p.Decls[2].(*ast.ClassDecl)
	if c.Name != "WordCount" || len(c.Fields) != 1 || len(c.Methods) != 2 {
		t.Fatalf("class = %+v", c)
	}
}

func TestVarDecls(t *testing.T) {
	p := parseProg(t, "var c, t, tasks = [];")
	d := p.Decls[0].(*ast.VarDecl)
	if len(d.Names) != 3 || d.Inits[2] == nil || d.Inits[0] != nil {
		t.Fatalf("vardecl = %+v", d)
	}
	p2 := parseProg(t, "local x := 5, y")
	d2 := p2.Decls[0].(*ast.VarDecl)
	if d2.Kind != "local" || d2.Inits[0] == nil {
		t.Fatal("local with init")
	}
}

func TestFigure4ParsesCompletely(t *testing.T) {
	src := `
def chunk(e) {
  chunk = [];
  while put(chunk,@e) do {
    if (*chunk >= chunkSize) then { suspend chunk; chunk=[]; }};
  if (*chunk > 0) then { return chunk; };
}
def mapReduce(f,s,r,i) {
  var c, t, tasks = [];
  every (c = chunk(<>s)) do {
    t = |> { var x=i; every (x=r(x, f(!c) )); x };
    tasks::add(t);
  };
  suspend ! (! tasks);
}
`
	p := parseProg(t, src)
	if len(p.Decls) != 2 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
	mr := p.Decls[1].(*ast.ProcDecl)
	if len(mr.Params) != 4 {
		t.Fatal("mapReduce params")
	}
}

func TestFigure3MethodsParse(t *testing.T) {
	src := `
def readLines () { suspend ! lines; }
def splitWords (line) { suspend ! line::split("\\s+"); }
def hashWords (line) {
  suspend this::hashNumber(this::wordToNumber( ! splitWords(line)));
}
def sumHash (sofar, hash) { return sofar + hash; }
`
	p := parseProg(t, src)
	if len(p.Decls) != 4 {
		t.Fatalf("decls = %d", len(p.Decls))
	}
}

func TestPipelineExpressionFromFigure3(t *testing.T) {
	src := `this::hashNumber( ! (|> this::wordToNumber( ! splitWords(readLines()))))`
	n := parse(t, src).(*ast.NativeCall)
	if n.Name != "hashNumber" {
		t.Fatal("outer native")
	}
	bang := n.Args[0].(*ast.Unary)
	pipe := bang.X.(*ast.Unary)
	if pipe.Op != "|>" {
		t.Fatal("pipe inside")
	}
}

func TestXMLEmission(t *testing.T) {
	x := ast.ToXML(parse(t, "1 + f(x)"))
	for _, want := range []string{"<Binary op=\"+\">", "<Invoke>", "<Identifier name=\"f\"/>", "IntegerLiteral"} {
		if !strings.Contains(x, want) {
			t.Fatalf("XML missing %q:\n%s", want, x)
		}
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := ParseExpression("f(")
	if err == nil {
		t.Fatal("expected error")
	}
	if _, ok := err.(*Error); !ok {
		t.Fatalf("error type %T", err)
	}
	if _, err := ParseProgram("def f( { }"); err == nil {
		t.Fatal("bad params should error")
	}
	if _, err := ParseExpression("if x then"); err == nil {
		t.Fatal("truncated if should error")
	}
}

func TestWalkVisitsAllNodes(t *testing.T) {
	n := parse(t, "every x := 1 to 3 do write(x + 1)")
	count := 0
	ast.Walk(n, func(ast.Node) bool { count++; return true })
	if count < 8 {
		t.Fatalf("walk visited only %d nodes", count)
	}
}

func TestAugmentedAssignments(t *testing.T) {
	for _, op := range []string{"+:=", "-:=", "*:=", "||:=", "<:="} {
		n := parse(t, "x "+op+" 1").(*ast.Binary)
		if n.Op != op {
			t.Fatalf("augmented %s parsed as %s", op, n.Op)
		}
	}
}

func TestSwapOperators(t *testing.T) {
	if n := parse(t, "a :=: b").(*ast.Binary); n.Op != ":=:" {
		t.Fatal("swap")
	}
	if n := parse(t, "a <-> b").(*ast.Binary); n.Op != "<->" {
		t.Fatal("revswap")
	}
	if n := parse(t, "a <- b").(*ast.Binary); n.Op != "<-" {
		t.Fatal("revassign")
	}
}
