package parser

import (
	"fmt"
	"strings"
	"testing"

	"junicon/internal/ast"
)

// TestEveryNodeKindCarriesPos is the table-driven position audit: for each
// node kind the parser can produce, a source fragment that produces it, and
// the invariant that every node in the resulting tree — not just the root —
// carries a non-zero position. Diagnostics are only as good as the
// positions under them.
func TestEveryNodeKindCarriesPos(t *testing.T) {
	cases := []struct {
		kind string // reflect-style name of the node type that must appear
		src  string // program producing it
	}{
		{"IntLit", `write(42)`},
		{"RealLit", `write(3.14)`},
		{"StrLit", `write("s")`},
		{"CsetLit", `write('abc')`},
		{"Keyword", `write(&digits)`},
		{"Ident", `write(x)`},
		{"ListLit", `write([1, 2])`},
		{"Binary", `write(1 + 2)`},
		{"Unary", `write(-x)`},
		{"ToBy", `every write(1 to 9 by 2)`},
		{"Call", `f(1)`},
		{"NativeCall", `this::host(1)`},
		{"Index", `write(a[1])`},
		{"Slice", `write(a[1:2])`},
		{"Field", `write(p.x)`},
		{"If", `if 1 < 2 then write(1) else write(2)`},
		{"While", `while 1 < 2 do write(1)`},
		{"Every", `every x := 1 to 3 do write(x)`},
		{"Repeat", `def f() { repeat { break 1; }; }`},
		{"Case", `case x of { 1: write(1); default: write(0); }`},
		{"Block", `{ write(1); write(2); }`},
		{"Return", `def f() { return 1; }`},
		{"Suspend", `def f() { suspend 1 to 3; }`},
		{"Fail", `def f() { fail; }`},
		{"Break", `while 1 do break`},
		{"NextStmt", `while 1 do next`},
		{"Initial", `def f() { initial write(1); }`},
		{"VarDecl", `def f() { local a, b; }`},
		{"ProcDecl", `def f(x) { return x; }`},
		{"RecordDecl", `record point(x, y)`},
		{"GlobalDecl", `global g`},
		{"ClassDecl", `class C(n) { method m() { return n; } }`},
	}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			prog, err := ParseProgram(c.src)
			if err != nil {
				t.Fatalf("parse %q: %v", c.src, err)
			}
			seen := false
			walkAll(prog, func(n ast.Node) {
				name := nodeKind(n)
				if name == c.kind {
					seen = true
				}
				// The Program wrapper aside, every parsed node must know
				// where it came from.
				if name != "Program" && n.Pos().Line == 0 {
					t.Errorf("%s node in %q has zero position", name, c.src)
				}
			})
			if !seen {
				t.Fatalf("source %q did not produce a %s node", c.src, c.kind)
			}
		})
	}
}

// walkAll visits every node including the root.
func walkAll(n ast.Node, visit func(ast.Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range ast.Children(n) {
		walkAll(c, visit)
	}
}

// nodeKind returns the bare type name of a node.
func nodeKind(n ast.Node) string {
	s := fmt.Sprintf("%T", n)
	if i := strings.LastIndex(s, "."); i >= 0 {
		return s[i+1:]
	}
	return s
}
