// Package parser implements a recursive-descent LL(k) parser for the
// Junicon subset — Unicon's expression language extended with the
// concurrency operators of Figure 1 and native invocation (::) of §4. It
// is the analogue of the paper's "Javacc LL(k) parser for Unicon that emits
// XML" (§6); the emitted XML lives in the ast package.
//
// One deliberate Junicon-ism: following the paper's Figures 3–4 (where
// embedded code writes `chunk = []`, `t = |> {…}`, `every (c = chunk(<>s))`),
// `=` parses as assignment, synonymous with `:=`. Icon's numeric equality
// remains available as `===`/`~===`/`~=` and the ordered comparisons.
package parser

import (
	"fmt"
	"strings"

	"junicon/internal/ast"
	"junicon/internal/lexer"
)

// Error is a parse error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

// Parser consumes a token stream.
type Parser struct {
	toks []lexer.Token
	pos  int
}

// New returns a parser over src.
func New(src string) (*Parser, error) {
	toks, err := lexer.Tokens(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// ParseProgram parses a whole translation unit.
func ParseProgram(src string) (*ast.Program, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	return p.Program()
}

// ParseExpression parses a single expression (trailing semicolons allowed).
func ParseExpression(src string) (ast.Node, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	e, err := p.expr(0)
	if err != nil {
		return nil, err
	}
	for p.isOp(";") {
		p.next()
	}
	if !p.atEOF() {
		return nil, p.errHere("unexpected %q after expression", p.cur().Text)
	}
	return e, nil
}

func (p *Parser) cur() lexer.Token  { return p.toks[p.pos] }
func (p *Parser) atEOF() bool       { return p.cur().Kind == lexer.EOF }
func (p *Parser) next() lexer.Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peek(off int) lexer.Token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *Parser) isOp(text string) bool {
	t := p.cur()
	return t.Kind == lexer.Op && t.Text == text
}

func (p *Parser) isKw(text string) bool {
	t := p.cur()
	return t.Kind == lexer.Keyword && t.Text == text
}

func (p *Parser) acceptOp(text string) bool {
	if p.isOp(text) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) acceptKw(text string) bool {
	if p.isKw(text) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectOp(text string) error {
	if !p.acceptOp(text) {
		return p.errHere("expected %q, found %q", text, p.cur().Text)
	}
	return nil
}

func (p *Parser) errHere(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) at() ast.Pos { return ast.Pos{Line: p.cur().Line, Col: p.cur().Col} }

func pos(t lexer.Token) ast.Pos { return ast.Pos{Line: t.Line, Col: t.Col} }

// ---------- declarations ----------

// Program parses declarations and top-level statements until EOF.
func (p *Parser) Program() (*ast.Program, error) {
	prog := &ast.Program{}
	prog.P = p.at()
	for !p.atEOF() {
		if p.acceptOp(";") {
			continue
		}
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
	}
	return prog, nil
}

func (p *Parser) decl() (ast.Node, error) {
	switch {
	case p.isKw("def"), p.isKw("procedure"), p.isKw("method"):
		return p.procDecl()
	case p.isKw("record"):
		return p.recordDecl()
	case p.isKw("global"):
		return p.globalDecl()
	case p.isKw("class"):
		return p.classDecl()
	default:
		return p.statement()
	}
}

// procDecl parses `def f(a,b) { … }` (Junicon) or
// `procedure f(a,b); …; end` (Unicon).
func (p *Parser) procDecl() (*ast.ProcDecl, error) {
	kw := p.next()
	braceStyle := kw.Text == "def" || kw.Text == "method"
	name := p.cur()
	if name.Kind != lexer.Ident {
		return nil, p.errHere("expected procedure name, found %q", name.Text)
	}
	p.next()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.isOp(")") {
		t := p.cur()
		if t.Kind != lexer.Ident {
			return nil, p.errHere("expected parameter name, found %q", t.Text)
		}
		params = append(params, t.Text)
		p.next()
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	d := &ast.ProcDecl{Name: name.Text, Params: params}
	d.P = pos(kw)
	if p.isOp("{") {
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		d.Body = body
		return d, nil
	}
	if braceStyle {
		return nil, p.errHere("expected { to open %s body", kw.Text)
	}
	// Unicon style: statements until `end`.
	p.acceptOp(";")
	body := &ast.Block{}
	body.P = p.at()
	for !p.isKw("end") {
		if p.atEOF() {
			return nil, p.errHere("missing end for procedure %s", name.Text)
		}
		if p.acceptOp(";") {
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body.Stmts = append(body.Stmts, s)
	}
	p.next() // end
	d.Body = body
	return d, nil
}

func (p *Parser) recordDecl() (ast.Node, error) {
	kw := p.next()
	name := p.cur()
	if name.Kind != lexer.Ident {
		return nil, p.errHere("expected record name")
	}
	p.next()
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var fields []string
	for !p.isOp(")") {
		t := p.cur()
		if t.Kind != lexer.Ident {
			return nil, p.errHere("expected field name")
		}
		fields = append(fields, t.Text)
		p.next()
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	d := &ast.RecordDecl{Name: name.Text, Fields: fields}
	d.P = pos(kw)
	return d, nil
}

func (p *Parser) globalDecl() (ast.Node, error) {
	kw := p.next()
	d := &ast.GlobalDecl{}
	d.P = pos(kw)
	for {
		t := p.cur()
		if t.Kind != lexer.Ident {
			return nil, p.errHere("expected global name")
		}
		d.Names = append(d.Names, t.Text)
		p.next()
		if !p.acceptOp(",") {
			return d, nil
		}
	}
}

// classDecl parses `class Name(field, …) { methods }`.
func (p *Parser) classDecl() (ast.Node, error) {
	kw := p.next()
	name := p.cur()
	if name.Kind != lexer.Ident {
		return nil, p.errHere("expected class name")
	}
	p.next()
	d := &ast.ClassDecl{Name: name.Text}
	d.P = pos(kw)
	if p.acceptOp("(") {
		for !p.isOp(")") {
			t := p.cur()
			if t.Kind != lexer.Ident {
				return nil, p.errHere("expected class field name")
			}
			d.Fields = append(d.Fields, t.Text)
			p.next()
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	for !p.isOp("}") {
		if p.atEOF() {
			return nil, p.errHere("missing } for class %s", name.Text)
		}
		if p.acceptOp(";") {
			continue
		}
		if !(p.isKw("def") || p.isKw("method") || p.isKw("procedure")) {
			return nil, p.errHere("expected method declaration in class body")
		}
		m, err := p.procDecl()
		if err != nil {
			return nil, err
		}
		d.Methods = append(d.Methods, m)
	}
	p.next() // }
	return d, nil
}

// ---------- statements ----------

func (p *Parser) statement() (ast.Node, error) {
	switch {
	case p.isKw("local"), p.isKw("static"), p.isKw("var"):
		return p.varDecl()
	case p.isKw("initial"):
		// initial e — executed once per procedure, on the first invocation.
		kw := p.next()
		body, err := p.statementExpr()
		if err != nil {
			return nil, err
		}
		n := &ast.Initial{Body: body}
		n.P = pos(kw)
		p.acceptOp(";")
		return n, nil
	default:
		e, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		p.acceptOp(";")
		return e, nil
	}
}

func (p *Parser) varDecl() (ast.Node, error) {
	kw := p.next()
	d := &ast.VarDecl{Kind: kw.Text}
	d.P = pos(kw)
	for {
		t := p.cur()
		if t.Kind != lexer.Ident {
			return nil, p.errHere("expected variable name")
		}
		d.Names = append(d.Names, t.Text)
		p.next()
		var init ast.Node
		if p.acceptOp(":=") || p.acceptOp("=") {
			e, err := p.expr(2) // bind tighter than comma list
			if err != nil {
				return nil, err
			}
			init = e
		}
		d.Inits = append(d.Inits, init)
		if !p.acceptOp(",") {
			break
		}
	}
	p.acceptOp(";")
	return d, nil
}

// block parses a braced compound expression.
func (p *Parser) block() (*ast.Block, error) {
	open := p.next() // {
	b := &ast.Block{}
	b.P = pos(open)
	for !p.isOp("}") {
		if p.atEOF() {
			return nil, p.errHere("missing }")
		}
		if p.acceptOp(";") {
			continue
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

// ---------- expressions ----------

// Binary operator precedence, loosest first, following Icon's table with &
// loosest of all. Assignment is right-associative.
var binPrec = map[string]int{
	"&":  1,
	"?":  2, // string scanning e1 ? e2
	":=": 3, "=": 3, "<-": 3, ":=:": 3, "<->": 3,
	"+:=": 3, "-:=": 3, "*:=": 3, "/:=": 3, "%:=": 3, "^:=": 3,
	"||:=": 3, "|||:=": 3, "++:=": 3, "--:=": 3, "**:=": 3, "&:=": 3,
	"<:=": 3, "<=:=": 3, ">:=": 3, ">=:=": 3, "=:=": 3, "~=:=": 3,
	"==:=": 3, "<<:=": 3, ">>:=": 3, "?:=": 3, "@:=": 3,
	"@": 4,
	// to/by handled specially at precedence 5
	"|": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7, "~=": 7,
	"<<": 7, "<<=": 7, ">>": 7, ">>=": 7, "==": 7, "~==": 7,
	"===": 7, "~===": 7,
	"||": 8, "|||": 8,
	"+": 9, "-": 9, "++": 9, "--": 9,
	"*": 10, "/": 10, "%": 10, "**": 10,
	"^":  11,
	"\\": 12,
}

const toPrec = 5

func rightAssoc(op string) bool { return binPrec[op] == 3 || op == "^" }

func (p *Parser) expr(minPrec int) (ast.Node, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		// to/by range construct.
		if p.isKw("to") && toPrec >= minPrec {
			kw := p.next()
			hi, err := p.expr(toPrec + 1)
			if err != nil {
				return nil, err
			}
			var by ast.Node
			if p.acceptKw("by") {
				by, err = p.expr(toPrec + 1)
				if err != nil {
					return nil, err
				}
			}
			tb := &ast.ToBy{Lo: left, Hi: hi, By: by}
			tb.P = pos(kw)
			left = tb
			continue
		}
		t := p.cur()
		if t.Kind != lexer.Op {
			return left, nil
		}
		prec, ok := binPrec[t.Text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		nextMin := prec + 1
		if rightAssoc(t.Text) {
			nextMin = prec
		}
		right, err := p.expr(nextMin)
		if err != nil {
			return nil, err
		}
		op := t.Text
		if op == "=" {
			op = ":=" // Junicon assignment spelling (see package comment)
		}
		bin := &ast.Binary{Op: op, L: left, R: right}
		bin.P = pos(t)
		left = bin
	}
}

// prefix operators (and the create operators of Figure 1).
var prefixOps = map[string]bool{
	"!": true, "@": true, "^": true, "*": true, "+": true, "-": true,
	"~": true, "/": true, "\\": true, "?": true, "|": true,
	"=":  true, // =s is tab(match(s)) inside a scanning expression
	"<>": true, "|<>": true, "|>": true,
}

func (p *Parser) unary() (ast.Node, error) {
	t := p.cur()
	if t.Kind == lexer.Keyword && t.Text == "not" {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		u := &ast.Unary{Op: "not", X: x}
		u.P = pos(t)
		return u, nil
	}
	if t.Kind == lexer.Op && prefixOps[t.Text] {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		u := &ast.Unary{Op: t.Text, X: x}
		u.P = pos(t)
		return u, nil
	}
	return p.postfix()
}

func (p *Parser) postfix() (ast.Node, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.isOp("("):
			open := p.next()
			args, err := p.argList(")")
			if err != nil {
				return nil, err
			}
			c := &ast.Call{Fun: x, Args: args}
			c.P = pos(open)
			x = c
		case p.isOp("["):
			open := p.next()
			i, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			if p.acceptOp(":") {
				j, err := p.expr(0)
				if err != nil {
					return nil, err
				}
				if err := p.expectOp("]"); err != nil {
					return nil, err
				}
				s := &ast.Slice{X: x, I: i, J: j}
				s.P = pos(open)
				x = s
			} else {
				if err := p.expectOp("]"); err != nil {
					return nil, err
				}
				ix := &ast.Index{X: x, I: i}
				ix.P = pos(open)
				x = ix
			}
		case p.isOp(".") && p.peek(1).Kind == lexer.Ident:
			dot := p.next()
			name := p.next()
			f := &ast.Field{X: x, Name: name.Text}
			f.P = pos(dot)
			x = f
		case p.isOp("::") && p.peek(1).Kind == lexer.Ident:
			sep := p.next()
			name := p.next()
			var args []ast.Node
			if p.acceptOp("(") {
				args, err = p.argList(")")
				if err != nil {
					return nil, err
				}
			}
			recv := x
			if id, ok := recv.(*ast.Ident); ok && id.Name == "this" {
				recv = nil // host receiver
			}
			n := &ast.NativeCall{Recv: recv, Name: name.Text, Args: args}
			n.P = pos(sep)
			x = n
		default:
			return x, nil
		}
	}
}

func (p *Parser) argList(closer string) ([]ast.Node, error) {
	var args []ast.Node
	for !p.isOp(closer) {
		a, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(closer); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *Parser) primary() (ast.Node, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.Int:
		p.next()
		n := &ast.IntLit{Text: t.Text}
		n.P = pos(t)
		return n, nil
	case lexer.Real:
		p.next()
		n := &ast.RealLit{Text: t.Text}
		n.P = pos(t)
		return n, nil
	case lexer.Str:
		p.next()
		n := &ast.StrLit{Value: t.Text}
		n.P = pos(t)
		return n, nil
	case lexer.Cset:
		p.next()
		n := &ast.CsetLit{Value: t.Text}
		n.P = pos(t)
		return n, nil
	case lexer.AmpKw:
		p.next()
		n := &ast.Keyword{Name: t.Text}
		n.P = pos(t)
		return n, nil
	case lexer.Ident:
		p.next()
		n := &ast.Ident{Name: t.Text}
		n.P = pos(t)
		return n, nil
	case lexer.Keyword:
		return p.keywordExpr()
	case lexer.Op:
		switch t.Text {
		case "(":
			p.next()
			e, err := p.expr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			open := p.next()
			elems, err := p.argList("]")
			if err != nil {
				return nil, err
			}
			n := &ast.ListLit{Elems: elems}
			n.P = pos(open)
			return n, nil
		case "{":
			return p.block()
		}
	}
	return nil, p.errHere("unexpected %q in expression", t.Text)
}

// keywordExpr parses control constructs, which in Icon are expressions.
func (p *Parser) keywordExpr() (ast.Node, error) {
	t := p.cur()
	switch t.Text {
	case "if":
		p.next()
		cond, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		if !p.acceptKw("then") {
			return nil, p.errHere("expected then")
		}
		then, err := p.statementExpr()
		if err != nil {
			return nil, err
		}
		var els ast.Node
		// `else` may follow an optional semicolon after a braced then-part.
		save := p.pos
		for p.isOp(";") {
			p.next()
		}
		if p.acceptKw("else") {
			els, err = p.statementExpr()
			if err != nil {
				return nil, err
			}
		} else {
			p.pos = save
		}
		n := &ast.If{Cond: cond, Then: then, Else: els}
		n.P = pos(t)
		return n, nil
	case "while", "until":
		p.next()
		cond, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		var body ast.Node
		if p.acceptKw("do") {
			body, err = p.statementExpr()
			if err != nil {
				return nil, err
			}
		}
		n := &ast.While{Cond: cond, Body: body, Until: t.Text == "until"}
		n.P = pos(t)
		return n, nil
	case "every":
		p.next()
		e, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		var body ast.Node
		if p.acceptKw("do") {
			body, err = p.statementExpr()
			if err != nil {
				return nil, err
			}
		}
		n := &ast.Every{E: e, Body: body}
		n.P = pos(t)
		return n, nil
	case "repeat":
		p.next()
		body, err := p.statementExpr()
		if err != nil {
			return nil, err
		}
		n := &ast.Repeat{Body: body}
		n.P = pos(t)
		return n, nil
	case "case":
		return p.caseExpr()
	case "return":
		p.next()
		var e ast.Node
		if !p.endsExpr() {
			var err error
			e, err = p.expr(0)
			if err != nil {
				return nil, err
			}
		}
		n := &ast.Return{E: e}
		n.P = pos(t)
		return n, nil
	case "suspend":
		p.next()
		e, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		var body ast.Node
		if p.acceptKw("do") {
			body, err = p.statementExpr()
			if err != nil {
				return nil, err
			}
		}
		n := &ast.Suspend{E: e, Body: body}
		n.P = pos(t)
		return n, nil
	case "fail":
		p.next()
		n := &ast.Fail{}
		n.P = pos(t)
		return n, nil
	case "break":
		p.next()
		var e ast.Node
		if !p.endsExpr() {
			var err error
			e, err = p.expr(0)
			if err != nil {
				return nil, err
			}
		}
		n := &ast.Break{E: e}
		n.P = pos(t)
		return n, nil
	case "next":
		p.next()
		n := &ast.NextStmt{}
		n.P = pos(t)
		return n, nil
	}
	return nil, p.errHere("unexpected keyword %q in expression", t.Text)
}

// statementExpr parses a loop/branch body: a block or a single expression.
func (p *Parser) statementExpr() (ast.Node, error) {
	if p.isOp("{") {
		return p.block()
	}
	return p.expr(0)
}

// endsExpr reports whether the current token cannot start an expression
// operand (for optional return/break operands).
func (p *Parser) endsExpr() bool {
	t := p.cur()
	if t.Kind == lexer.EOF {
		return true
	}
	if t.Kind == lexer.Op {
		switch t.Text {
		case ";", "}", ")", "]", ",":
			return true
		}
	}
	if t.Kind == lexer.Keyword {
		switch t.Text {
		case "else", "do", "then", "of", "end":
			return true
		}
	}
	return false
}

func (p *Parser) caseExpr() (ast.Node, error) {
	t := p.next() // case
	subject, err := p.expr(0)
	if err != nil {
		return nil, err
	}
	if !p.acceptKw("of") {
		return nil, p.errHere("expected of")
	}
	if err := p.expectOp("{"); err != nil {
		return nil, err
	}
	n := &ast.Case{Subject: subject}
	n.P = pos(t)
	for !p.isOp("}") {
		if p.atEOF() {
			return nil, p.errHere("missing } in case")
		}
		if p.acceptOp(";") {
			continue
		}
		var sel ast.Node
		if p.acceptKw("default") {
			sel = nil
		} else {
			sel, err = p.expr(0)
			if err != nil {
				return nil, err
			}
		}
		if err := p.expectOp(":"); err != nil {
			return nil, err
		}
		body, err := p.statementExpr()
		if err != nil {
			return nil, err
		}
		n.Clauses = append(n.Clauses, ast.CaseClause{Sel: sel, Body: body})
	}
	p.next() // }
	return n, nil
}

// Summary renders a compact one-line form of an expression for diagnostics.
func Summary(n ast.Node) string {
	x := ast.ToXML(n)
	x = strings.ReplaceAll(x, "\n", " ")
	return strings.Join(strings.Fields(x), " ")
}
