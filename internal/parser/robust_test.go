package parser

import (
	"math/rand"
	"strings"
	"testing"
)

// The front end must never panic: arbitrary input yields an AST or an
// error. The generator below mixes valid token fragments with junk, which
// finds crashier inputs than uniform random bytes.

var fragments = []string{
	"f", "(", ")", "[", "]", "{", "}", "1", "2.5", `"s"`, "'c'", ",", ";",
	"+", "-", "*", "/", ":=", "to", "by", "if", "then", "else", "every",
	"while", "do", "suspend", "return", "def", "&null", "&pos", "|", "&",
	"<>", "|<>", "|>", "@", "!", "^", "?", "\\", "::", ".", ":", "not",
	"x", "case", "of", "default", "record", "end", "procedure", "<-", "=",
	"~===", "|||", " ", "\n",
}

func randomProgram(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(fragments[rng.Intn(len(fragments))])
	}
	return b.String()
}

func TestParserNeverPanicsOnFragmentSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		src := randomProgram(rng, 1+rng.Intn(25))
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseProgram(src)
			_, _ = ParseExpression(src)
		}()
	}
}

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		raw := make([]byte, rng.Intn(40))
		for j := range raw {
			raw[j] = byte(rng.Intn(128))
		}
		src := string(raw)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			_, _ = ParseProgram(src)
		}()
	}
}
