package ast_test

import (
	"fmt"
	"reflect"
	"testing"

	"junicon/internal/ast"
	"junicon/internal/parser"
	"junicon/internal/transform"
)

// The traversal audit: interprocedural analysis walks trees through
// ast.Children and reports through node positions, so a node field missed
// by Children silently exempts a subtree from analysis, and an unstamped
// node produces 0:0 diagnostics. These tests pin both properties.

func ident(name string) *ast.Ident { return &ast.Ident{Name: name} }

// exemplars holds one instance of every node kind with every Node-typed
// field populated. The reflection audit below derives the expected child
// set from the struct fields themselves, so a field added to a node type
// without a matching Children case fails here.
func exemplars() []ast.Node {
	return []ast.Node{
		&ast.IntLit{Text: "1"},
		&ast.RealLit{Text: "1.0"},
		&ast.StrLit{Value: "s"},
		&ast.CsetLit{Value: "abc"},
		&ast.Keyword{Name: "null"},
		ident("x"),
		&ast.TmpRef{Name: "t1"},
		&ast.ListLit{Elems: []ast.Node{ident("a"), ident("b")}},
		&ast.Binary{Op: "+", L: ident("a"), R: ident("b")},
		&ast.Unary{Op: "-", X: ident("a")},
		&ast.ToBy{Lo: ident("a"), Hi: ident("b"), By: ident("c")},
		&ast.Call{Fun: ident("f"), Args: []ast.Node{ident("a"), ident("b")}},
		&ast.NativeCall{Name: "n", Recv: ident("r"), Args: []ast.Node{ident("a")}},
		&ast.Index{X: ident("a"), I: ident("i")},
		&ast.Slice{X: ident("a"), I: ident("i"), J: ident("j")},
		&ast.Field{X: ident("a"), Name: "f"},
		&ast.If{Cond: ident("c"), Then: ident("t"), Else: ident("e")},
		&ast.While{Cond: ident("c"), Body: ident("b")},
		&ast.Every{E: ident("g"), Body: ident("b")},
		&ast.Repeat{Body: ident("b")},
		&ast.Case{Subject: ident("s"), Clauses: []ast.CaseClause{
			{Sel: ident("v"), Body: ident("b")},
		}},
		&ast.Block{Stmts: []ast.Node{ident("a"), ident("b")}},
		&ast.Return{E: ident("e")},
		&ast.Suspend{E: ident("e"), Body: ident("b")},
		&ast.Fail{},
		&ast.Break{E: ident("e")},
		&ast.NextStmt{},
		&ast.Initial{Body: ident("b")},
		&ast.VarDecl{Kind: "local", Names: []string{"x"}, Inits: []ast.Node{ident("i")}},
		&ast.ProcDecl{Name: "p", Body: &ast.Block{}},
		&ast.RecordDecl{Name: "r", Fields: []string{"f"}},
		&ast.GlobalDecl{Names: []string{"g"}},
		&ast.ClassDecl{Name: "c", Methods: []*ast.ProcDecl{{Name: "m", Body: &ast.Block{}}}},
		&ast.Program{Decls: []ast.Node{ident("d")}},
		&ast.BindIn{Tmp: "t1", E: ident("e")},
		&ast.FlatProduct{Terms: []ast.Node{ident("a"), ident("b")}},
	}
}

// fieldNodes collects every non-nil ast.Node reachable through a node's
// own struct fields: direct fields, slices, and clause-style sub-structs.
func fieldNodes(v reflect.Value) []ast.Node {
	var out []ast.Node
	var collect func(f reflect.Value)
	collect = func(f reflect.Value) {
		if !f.IsValid() || !f.CanInterface() {
			return
		}
		switch f.Kind() {
		case reflect.Interface, reflect.Ptr:
			if f.IsNil() {
				return
			}
			if n, ok := f.Interface().(ast.Node); ok {
				out = append(out, n)
				return
			}
			if f.Kind() == reflect.Ptr {
				collect(f.Elem())
			}
		case reflect.Slice:
			for i := 0; i < f.Len(); i++ {
				collect(f.Index(i))
			}
		case reflect.Struct:
			for i := 0; i < f.NumField(); i++ {
				collect(f.Field(i))
			}
		}
	}
	for i := 0; i < v.NumField(); i++ {
		collect(v.Field(i))
	}
	return out
}

// TestChildrenCoversNodeFields pins that ast.Children reaches every
// Node-typed field of every node kind — the property the analysis passes
// depend on for whole-tree coverage.
func TestChildrenCoversNodeFields(t *testing.T) {
	for _, n := range exemplars() {
		v := reflect.ValueOf(n).Elem()
		want := fieldNodes(v)
		got := ast.Children(n)
		inGot := map[ast.Node]bool{}
		for _, c := range got {
			inGot[c] = true
		}
		for _, w := range want {
			if !inGot[w] {
				t.Errorf("%T: field child %T not returned by Children "+
					"(fields %d, Children %d)", n, w, len(want), len(got))
			}
		}
		if len(got) > len(want) {
			t.Errorf("%T: Children returned %d nodes, fields hold %d", n, len(got), len(want))
		}
	}
}

// positionAuditSource exercises every syntactic form the parser produces.
const positionAuditSource = `
global gcount

record point(x, y)

class Counter(n) {
  def bump(delta) { n := n + delta; return n; }
}

def audit(a, b) {
  local acc, i
  static seen
  initial { seen := 0; }
  acc := [1, 2.5, "s", 'abc'];
  every i := 1 to 10 by 2 do {
    if i > 5 then acc[1] := i else acc[2:3];
    case i of {
      1: write(i);
      default: fail;
    }
  }
  while i < 3 do next;
  repeat { break acc.x; }
  suspend !acc do gcount := &null;
  p := |> (1 to 3);
  c := <> (a + b);
  return a::host(b) + @p;
}
`

func checkStamped(t *testing.T, root ast.Node, phase string) {
	t.Helper()
	ast.Walk(root, func(n ast.Node) bool {
		if n.Pos().Line <= 0 {
			t.Errorf("%s: %T at %v lacks a position", phase, n, n.Pos())
		}
		return true
	})
}

// TestPositionStamping pins that every parsed node — and every node the
// normalizer synthesizes (TmpRef, BindIn, FlatProduct) — carries a source
// position, so interprocedural diagnostics can always anchor to a line.
func TestPositionStamping(t *testing.T) {
	prog, err := parser.ParseProgram(positionAuditSource)
	if err != nil {
		t.Fatal(err)
	}
	checkStamped(t, prog, "parsed")
	norm := transform.Normalize(prog)
	checkStamped(t, norm, "normalized")
}

// TestNormalizedTreesCovered cross-checks the two audits: the normalized
// tree must be fully reachable through Children (no orphaned subtrees),
// counted against an independent reflection walk of the same tree.
func TestNormalizedTreesCovered(t *testing.T) {
	prog, err := parser.ParseProgram(positionAuditSource)
	if err != nil {
		t.Fatal(err)
	}
	norm := transform.Normalize(prog)
	viaChildren := map[ast.Node]bool{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || viaChildren[n] {
			return
		}
		viaChildren[n] = true
		for _, c := range ast.Children(n) {
			walk(c)
		}
	}
	walk(norm)

	viaReflect := map[ast.Node]bool{}
	var rwalk func(n ast.Node)
	rwalk = func(n ast.Node) {
		if n == nil || viaReflect[n] {
			return
		}
		viaReflect[n] = true
		for _, c := range fieldNodes(reflect.ValueOf(n).Elem()) {
			rwalk(c)
		}
	}
	rwalk(norm)

	for n := range viaReflect {
		if !viaChildren[n] {
			t.Errorf("node %s unreachable via Children", describe(n))
		}
	}
	if len(viaChildren) != len(viaReflect) {
		t.Errorf("Children reaches %d nodes, reflection reaches %d",
			len(viaChildren), len(viaReflect))
	}
}

func describe(n ast.Node) string {
	return fmt.Sprintf("%T at %d:%d", n, n.Pos().Line, n.Pos().Col)
}
