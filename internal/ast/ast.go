// Package ast defines the syntax tree for the Junicon subset: the embedded
// goal-directed language of the paper. The parser produces these nodes; the
// transform package rewrites them (normalization, §5A); the interp package
// evaluates them against the kernel; and the translate package emits Go.
//
// Mirroring the implementation described in §6 — "a Javacc LL(k) parser for
// Unicon that emits XML" — every node serializes to an XML form (see
// ToXML), which the transformation tests treat as the canonical term
// representation.
package ast

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// Node is any syntax-tree node.
type Node interface {
	Pos() Pos
	xmlName() string
}

type base struct {
	P Pos
}

// Pos returns the node's source position.
func (b base) Pos() Pos { return b.P }

// ---------- literals and names ----------

// IntLit is an integer literal (decimal or radix form, arbitrary size).
type IntLit struct {
	base
	Text string // literal text, e.g. "42" or "16r1f"
}

// RealLit is a real literal.
type RealLit struct {
	base
	Text string
}

// StrLit is a string literal (value already unescaped).
type StrLit struct {
	base
	Value string
}

// CsetLit is a cset literal 'abc' (value already unescaped).
type CsetLit struct {
	base
	Value string
}

// Keyword is an &-keyword such as &null, &lcase, &fail.
type Keyword struct {
	base
	Name string // without the ampersand
}

// Ident is a variable or procedure name.
type Ident struct {
	base
	Name string
}

// ListLit is a list constructor [e1, e2, …].
type ListLit struct {
	base
	Elems []Node
}

// ---------- operators ----------

// Binary is a binary operation; Op is the source operator ("&", "|", "+",
// ":=", "to" handled separately, "@", …).
type Binary struct {
	base
	Op   string
	L, R Node
}

// Unary is a prefix operation; Op is one of ! @ ^ * + - ~ / \ | ? not,
// or a create operator <> |<> |>.
type Unary struct {
	base
	Op string
	X  Node
}

// ToBy is the range construct e1 to e2 [by e3] (By may be nil).
type ToBy struct {
	base
	Lo, Hi, By Node
}

// ---------- primaries ----------

// Call is an invocation f(args…); Fun is an arbitrary expression (function
// positions may be generators, §2A).
type Call struct {
	base
	Fun  Node
	Args []Node
}

// NativeCall is host-language invocation recv::name(args…) — the paper's
// differentiated native invocation (§4: "their invocation must be
// differentiated from native Java method invocation, achieved by using ::").
// Recv may be nil for this::-style calls written as ::name(…) or
// this::name(…).
type NativeCall struct {
	base
	Recv Node // nil means the host receiver ("this")
	Name string
	Args []Node
}

// Index is subscripting x[i].
type Index struct {
	base
	X, I Node
}

// Slice is sectioning x[i:j].
type Slice struct {
	base
	X, I, J Node
}

// Field is field access x.name.
type Field struct {
	base
	X    Node
	Name string
}

// ---------- control ----------

// If is if e1 then e2 [else e3] (Else may be nil).
type If struct {
	base
	Cond, Then, Else Node
}

// While is while e1 [do e2] (Body may be nil); Until flips the test.
type While struct {
	base
	Cond, Body Node
	Until      bool
}

// Every is every e1 [do e2].
type Every struct {
	base
	E, Body Node
}

// Repeat is repeat e.
type Repeat struct {
	base
	Body Node
}

// CaseClause is one arm of a case expression.
type CaseClause struct {
	Sel  Node // nil marks the default clause
	Body Node
}

// Case is case e of { … }.
type Case struct {
	base
	Subject Node
	Clauses []CaseClause
}

// Block is a braced compound { e1; e2; … }, the sequence construct.
type Block struct {
	base
	Stmts []Node
}

// Return is return [e].
type Return struct {
	base
	E Node // nil returns &null
}

// Suspend is suspend e [do e2].
type Suspend struct {
	base
	E    Node
	Body Node // optional do-clause
}

// Fail is the fail statement.
type Fail struct {
	base
}

// Break is break [e].
type Break struct {
	base
	E Node // may be nil
}

// NextStmt is the next statement.
type NextStmt struct {
	base
}

// Initial is the `initial e` clause: executed once per procedure, on the
// first invocation (static initialization).
type Initial struct {
	base
	Body Node
}

// VarDecl is local/static/var declarations with optional initializers.
type VarDecl struct {
	base
	Kind  string // "local", "static", "var"
	Names []string
	Inits []Node // parallel to Names; entries may be nil
}

// ---------- declarations ----------

// ProcDecl is a procedure/method/def declaration.
type ProcDecl struct {
	base
	Name   string
	Params []string
	Body   *Block
}

// RecordDecl is record name(fields).
type RecordDecl struct {
	base
	Name   string
	Fields []string
}

// GlobalDecl is global name, name, … .
type GlobalDecl struct {
	base
	Names []string
}

// ClassDecl is a minimal class declaration: fields plus methods.
type ClassDecl struct {
	base
	Name    string
	Fields  []string
	Methods []*ProcDecl
}

// Program is a whole translation unit.
type Program struct {
	base
	Decls []Node
}

// ---------- normalized forms (§5A) ----------
//
// The transform package rewrites primaries into these explicit-iteration
// forms: products of bound iterators over temporaries, exactly the
// reformulation
//
//	e(ex,ey).c[ei] →
//	  (f in ⟦e⟧) & (x in ⟦ex⟧) & (y in ⟦ey⟧) & (o in !f(x,y)) & …

// TmpRef names a compiler-introduced temporary (the paper's IconTmp).
type TmpRef struct {
	base
	Name string
}

// BindIn is bound iteration (t in e).
type BindIn struct {
	base
	Tmp string
	E   Node
}

// FlatProduct is the product chain of a flattened primary; the last term
// supplies the results.
type FlatProduct struct {
	base
	Terms []Node
}

// ---------- xml names ----------

func (*IntLit) xmlName() string      { return "IntegerLiteral" }
func (*RealLit) xmlName() string     { return "RealLiteral" }
func (*StrLit) xmlName() string      { return "StringLiteral" }
func (*CsetLit) xmlName() string     { return "CsetLiteral" }
func (*Keyword) xmlName() string     { return "Keyword" }
func (*Ident) xmlName() string       { return "Identifier" }
func (*ListLit) xmlName() string     { return "ListConstructor" }
func (*Binary) xmlName() string      { return "Binary" }
func (*Unary) xmlName() string       { return "Unary" }
func (*ToBy) xmlName() string        { return "ToBy" }
func (*Call) xmlName() string        { return "Invoke" }
func (*NativeCall) xmlName() string  { return "NativeInvoke" }
func (*Index) xmlName() string       { return "Index" }
func (*Slice) xmlName() string       { return "Section" }
func (*Field) xmlName() string       { return "Field" }
func (*If) xmlName() string          { return "If" }
func (*While) xmlName() string       { return "While" }
func (*Every) xmlName() string       { return "Every" }
func (*Repeat) xmlName() string      { return "Repeat" }
func (*Case) xmlName() string        { return "Case" }
func (*Block) xmlName() string       { return "Block" }
func (*Return) xmlName() string      { return "Return" }
func (*Suspend) xmlName() string     { return "Suspend" }
func (*Fail) xmlName() string        { return "Fail" }
func (*Break) xmlName() string       { return "Break" }
func (*NextStmt) xmlName() string    { return "Next" }
func (*Initial) xmlName() string     { return "Initial" }
func (*VarDecl) xmlName() string     { return "VarDecl" }
func (*ProcDecl) xmlName() string    { return "Procedure" }
func (*RecordDecl) xmlName() string  { return "Record" }
func (*GlobalDecl) xmlName() string  { return "Global" }
func (*ClassDecl) xmlName() string   { return "Class" }
func (*Program) xmlName() string     { return "Program" }
func (*TmpRef) xmlName() string      { return "Tmp" }
func (*BindIn) xmlName() string      { return "In" }
func (*FlatProduct) xmlName() string { return "Product" }

// At attaches a position to a base (parser helper).
func At(p Pos) base { return base{P: p} }
