package ast

import (
	"fmt"
	"strings"
)

// ToXML serializes a node to the XML term form (§6: the Unicon parser
// "emits XML"). Indentation is two spaces per depth level; nil children are
// omitted.
func ToXML(n Node) string {
	var b strings.Builder
	writeXML(&b, n, 0)
	return b.String()
}

func writeXML(b *strings.Builder, n Node, depth int) {
	if n == nil {
		return
	}
	ind := strings.Repeat("  ", depth)
	attrs, children := parts(n)
	b.WriteString(ind)
	b.WriteByte('<')
	b.WriteString(n.xmlName())
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%q", a.k, a.v)
	}
	empty := true
	for _, c := range children {
		if c.node != nil {
			empty = false
			break
		}
	}
	if empty {
		b.WriteString("/>\n")
		return
	}
	b.WriteString(">\n")
	for _, c := range children {
		if c.node == nil {
			continue
		}
		if c.label != "" {
			fmt.Fprintf(b, "%s  <%s>\n", ind, c.label)
			writeXML(b, c.node, depth+2)
			fmt.Fprintf(b, "%s  </%s>\n", ind, c.label)
		} else {
			writeXML(b, c.node, depth+1)
		}
	}
	fmt.Fprintf(b, "%s</%s>\n", ind, n.xmlName())
}

type attr struct{ k, v string }

type child struct {
	label string
	node  Node
}

// parts decomposes a node into XML attributes and labelled children.
func parts(n Node) ([]attr, []child) {
	switch x := n.(type) {
	case *IntLit:
		return []attr{{"value", x.Text}}, nil
	case *RealLit:
		return []attr{{"value", x.Text}}, nil
	case *StrLit:
		return []attr{{"value", x.Value}}, nil
	case *CsetLit:
		return []attr{{"value", x.Value}}, nil
	case *Keyword:
		return []attr{{"name", x.Name}}, nil
	case *Ident:
		return []attr{{"name", x.Name}}, nil
	case *TmpRef:
		return []attr{{"name", x.Name}}, nil
	case *ListLit:
		cs := make([]child, len(x.Elems))
		for i, e := range x.Elems {
			cs[i] = child{node: e}
		}
		return nil, cs
	case *Binary:
		return []attr{{"op", x.Op}}, []child{{node: x.L}, {node: x.R}}
	case *Unary:
		return []attr{{"op", x.Op}}, []child{{node: x.X}}
	case *ToBy:
		return nil, []child{{"lo", x.Lo}, {"hi", x.Hi}, {"by", x.By}}
	case *Call:
		cs := []child{{"fun", x.Fun}}
		for _, a := range x.Args {
			cs = append(cs, child{"arg", a})
		}
		return nil, cs
	case *NativeCall:
		cs := []child{}
		if x.Recv != nil {
			cs = append(cs, child{"recv", x.Recv})
		}
		for _, a := range x.Args {
			cs = append(cs, child{"arg", a})
		}
		return []attr{{"name", x.Name}}, cs
	case *Index:
		return nil, []child{{node: x.X}, {node: x.I}}
	case *Slice:
		return nil, []child{{node: x.X}, {"from", x.I}, {"to", x.J}}
	case *Field:
		return []attr{{"name", x.Name}}, []child{{node: x.X}}
	case *If:
		return nil, []child{{"cond", x.Cond}, {"then", x.Then}, {"else", x.Else}}
	case *While:
		kind := "while"
		if x.Until {
			kind = "until"
		}
		return []attr{{"kind", kind}}, []child{{"cond", x.Cond}, {"do", x.Body}}
	case *Every:
		return nil, []child{{"gen", x.E}, {"do", x.Body}}
	case *Repeat:
		return nil, []child{{node: x.Body}}
	case *Case:
		cs := []child{{"subject", x.Subject}}
		for _, cl := range x.Clauses {
			if cl.Sel == nil {
				cs = append(cs, child{"default", cl.Body})
			} else {
				cs = append(cs, child{"sel", cl.Sel}, child{"body", cl.Body})
			}
		}
		return nil, cs
	case *Block:
		cs := make([]child, len(x.Stmts))
		for i, s := range x.Stmts {
			cs[i] = child{node: s}
		}
		return nil, cs
	case *Return:
		return nil, []child{{node: x.E}}
	case *Suspend:
		return nil, []child{{node: x.E}, {"do", x.Body}}
	case *Fail, *NextStmt:
		return nil, nil
	case *Break:
		return nil, []child{{node: x.E}}
	case *Initial:
		return nil, []child{{node: x.Body}}
	case *VarDecl:
		attrs := []attr{{"kind", x.Kind}, {"names", strings.Join(x.Names, ",")}}
		var cs []child
		for i, init := range x.Inits {
			if init != nil {
				cs = append(cs, child{"init-" + x.Names[i], init})
			}
		}
		return attrs, cs
	case *ProcDecl:
		return []attr{{"name", x.Name}, {"params", strings.Join(x.Params, ",")}},
			[]child{{node: x.Body}}
	case *RecordDecl:
		return []attr{{"name", x.Name}, {"fields", strings.Join(x.Fields, ",")}}, nil
	case *GlobalDecl:
		return []attr{{"names", strings.Join(x.Names, ",")}}, nil
	case *ClassDecl:
		cs := make([]child, len(x.Methods))
		for i, m := range x.Methods {
			cs[i] = child{node: m}
		}
		return []attr{{"name", x.Name}, {"fields", strings.Join(x.Fields, ",")}}, cs
	case *Program:
		cs := make([]child, len(x.Decls))
		for i, d := range x.Decls {
			cs[i] = child{node: d}
		}
		return nil, cs
	case *BindIn:
		return []attr{{"tmp", x.Tmp}}, []child{{node: x.E}}
	case *FlatProduct:
		cs := make([]child, len(x.Terms))
		for i, t := range x.Terms {
			cs[i] = child{node: t}
		}
		return nil, cs
	default:
		return []attr{{"unknown", fmt.Sprintf("%T", n)}}, nil
	}
}

// Children returns a node's direct children in syntax order (nil children
// omitted) — the generic traversal hook used by Walk and by analysis
// passes that need custom recursion.
func Children(n Node) []Node {
	if n == nil {
		return nil
	}
	_, cs := parts(n)
	out := make([]Node, 0, len(cs))
	for _, c := range cs {
		if c.node != nil {
			out = append(out, c.node)
		}
	}
	return out
}

// Walk applies f to n and every descendant in pre-order; f returning false
// prunes the subtree.
func Walk(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	_, children := parts(n)
	for _, c := range children {
		Walk(c.node, f)
	}
}
