// Package transform implements the normalization of primary expressions
// (§5A): flattening nested generator expressions into products of bound
// iterators over compiler-introduced temporaries, making iteration explicit
// so that the residual expressions can be evaluated by mechanisms native to
// the translation target.
//
// The §5A rewriting, for the running example:
//
//	e(ex,ey).c[ei]  →  (f in ⟦e⟧) & (x in ⟦ex⟧) & (y in ⟦ey⟧)
//	                   & (o in !f(x,y)) & (i in ⟦ei⟧) & (j in !o.c[i])
//
// Simple operands — identifiers, literals, temporaries — are left in place,
// preserving "simple method invocations such as o.f(x,y) largely unchanged"
// so native invocation survives the migration. Hoisting only happens within
// one primary: control constructs, products, alternation and the other
// sequence-level forms are boundaries that are normalized recursively but
// never flattened across (their operands keep their own evaluation
// discipline).
//
// Normalize is idempotent, and the interp package evaluates raw and
// normalized trees identically — the operational-semantics check that the
// rewriting is meaning-preserving.
package transform

import (
	"fmt"

	"junicon/internal/ast"
)

// Normalizer rewrites syntax trees to normal form. The zero value is ready
// to use; a single Normalizer yields distinct temporaries across calls.
type Normalizer struct {
	tmpN int
}

// fresh allocates a temporary name in the paper's x_N style.
func (nz *Normalizer) fresh() string {
	name := fmt.Sprintf("x_%d", nz.tmpN)
	nz.tmpN++
	return name
}

// Normalize rewrites any node to normal form.
func Normalize(n ast.Node) ast.Node {
	nz := &Normalizer{}
	return nz.Normalize(n)
}

// Normalize rewrites any node to normal form.
func (nz *Normalizer) Normalize(n ast.Node) ast.Node {
	switch x := n.(type) {
	case nil:
		return nil
	case *ast.Program:
		out := &ast.Program{Decls: make([]ast.Node, len(x.Decls))}
		out.P = x.P
		for i, d := range x.Decls {
			out.Decls[i] = nz.Normalize(d)
		}
		return out
	case *ast.ProcDecl:
		out := &ast.ProcDecl{Name: x.Name, Params: x.Params}
		out.P = x.P
		out.Body = nz.Normalize(x.Body).(*ast.Block)
		return out
	case *ast.ClassDecl:
		out := &ast.ClassDecl{Name: x.Name, Fields: x.Fields}
		out.P = x.P
		for _, m := range x.Methods {
			out.Methods = append(out.Methods, nz.Normalize(m).(*ast.ProcDecl))
		}
		return out
	case *ast.RecordDecl, *ast.GlobalDecl, *ast.Fail, *ast.NextStmt:
		return n
	case *ast.Block:
		out := &ast.Block{Stmts: make([]ast.Node, len(x.Stmts))}
		out.P = x.P
		for i, s := range x.Stmts {
			out.Stmts[i] = nz.Normalize(s)
		}
		return out
	case *ast.VarDecl:
		out := &ast.VarDecl{Kind: x.Kind, Names: x.Names, Inits: make([]ast.Node, len(x.Inits))}
		out.P = x.P
		for i, init := range x.Inits {
			out.Inits[i] = nz.Normalize(init)
		}
		return out
	case *ast.Initial:
		out := &ast.Initial{Body: nz.Normalize(x.Body)}
		out.P = x.P
		return out
	case *ast.If:
		out := &ast.If{Cond: nz.Normalize(x.Cond), Then: nz.Normalize(x.Then), Else: nz.Normalize(x.Else)}
		out.P = x.P
		return out
	case *ast.While:
		out := &ast.While{Cond: nz.Normalize(x.Cond), Body: nz.Normalize(x.Body), Until: x.Until}
		out.P = x.P
		return out
	case *ast.Every:
		out := &ast.Every{E: nz.Normalize(x.E), Body: nz.Normalize(x.Body)}
		out.P = x.P
		return out
	case *ast.Repeat:
		out := &ast.Repeat{Body: nz.Normalize(x.Body)}
		out.P = x.P
		return out
	case *ast.Case:
		out := &ast.Case{Subject: nz.Normalize(x.Subject)}
		out.P = x.P
		for _, c := range x.Clauses {
			out.Clauses = append(out.Clauses, ast.CaseClause{
				Sel:  nz.Normalize(c.Sel),
				Body: nz.Normalize(c.Body),
			})
		}
		return out
	case *ast.Return:
		out := &ast.Return{E: nz.Normalize(x.E)}
		out.P = x.P
		return out
	case *ast.Suspend:
		out := &ast.Suspend{E: nz.Normalize(x.E), Body: nz.Normalize(x.Body)}
		out.P = x.P
		return out
	case *ast.Break:
		out := &ast.Break{E: nz.Normalize(x.E)}
		out.P = x.P
		return out
	case *ast.Binary:
		switch x.Op {
		case "&", "|", "?":
			// Sequence-level operators (and scanning, whose body must run
			// inside the scanning environment) keep their structure.
			out := &ast.Binary{Op: x.Op, L: nz.Normalize(x.L), R: nz.Normalize(x.R)}
			out.P = x.P
			return out
		}
		return nz.primary(n)
	default:
		return nz.primary(n)
	}
}

// primary flattens one primary expression into a product of bound
// iterators, or returns it unchanged when no hoisting was needed.
func (nz *Normalizer) primary(n ast.Node) ast.Node {
	binds, atom := nz.flat(n)
	if len(binds) == 0 {
		return atom
	}
	fp := &ast.FlatProduct{Terms: append(binds, atom)}
	fp.P = n.Pos()
	return fp
}

// atomic reports whether a node may be left in place inside a primary.
// Keywords are NOT atomic: &pos and &subject are stateful variables, so
// leaving them in place would reorder their evaluation relative to hoisted
// siblings — the paper's rewriting hoists every operand in order.
func atomic(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.Ident, *ast.TmpRef, *ast.IntLit, *ast.RealLit, *ast.StrLit,
		*ast.CsetLit:
		return true
	case *ast.Field:
		return atomic(x.X)
	default:
		return false
	}
}

// flat decomposes a primary into hoisted bound iterators plus a residual
// atom. Operands that are themselves primaries flatten in line; operands
// with their own evaluation discipline (control constructs, products,
// alternation, blocks, create expressions) are normalized whole and bound
// to a temporary.
func (nz *Normalizer) flat(n ast.Node) (binds []ast.Node, atom ast.Node) {
	switch x := n.(type) {
	case *ast.Keyword:
		// A keyword is a valid final term on its own; it only needs
		// hoisting in operand position (see operand), where evaluation
		// order relative to hoisted siblings matters.
		return nil, n
	case *ast.Binary:
		switch x.Op {
		case ":=", "<-":
			// Assignment targets stay in place (they must denote
			// variables); sources flatten.
			sb, sa := nz.operand(x.R)
			out := &ast.Binary{Op: x.Op, L: nz.lvalue(x.L, &sb), R: sa}
			out.P = x.P
			return sb, out
		case ":=:", "<->":
			out := &ast.Binary{Op: x.Op, L: nz.lvalue(x.L, &binds), R: nz.lvalue(x.R, &binds)}
			out.P = x.P
			return binds, out
		case "&", "|", "?":
			// Sequence-level: bind as a unit.
			return nz.bindWhole(n)
		case "\\":
			// Limitation e \ n applies to the expression's whole result
			// sequence: the left operand must not be hoisted into a bound
			// iterator or the limit would apply per operand value.
			rb, ra := nz.operand(x.R)
			out := &ast.Binary{Op: "\\", L: nz.Normalize(x.L), R: ra}
			out.P = x.P
			return rb, out
		default:
			if len(x.Op) > 2 && x.Op[len(x.Op)-2:] == ":=" {
				// Augmented assignment.
				sb, sa := nz.operand(x.R)
				out := &ast.Binary{Op: x.Op, L: nz.lvalue(x.L, &sb), R: sa}
				out.P = x.P
				return sb, out
			}
			lb, la := nz.operand(x.L)
			rb, ra := nz.operand(x.R)
			out := &ast.Binary{Op: x.Op, L: la, R: ra}
			out.P = x.P
			return append(lb, rb...), out
		}
	case *ast.Unary:
		switch x.Op {
		case "<>", "|<>", "|>":
			// Create expressions capture their body unevaluated.
			out := &ast.Unary{Op: x.Op, X: nz.Normalize(x.X)}
			out.P = x.P
			return nil, out
		case "|", "not":
			// Repeated alternation and negation consume the operand's
			// whole result sequence — hoisting would change cardinality
			// (|x over a bound value cycles forever) or invert failure.
			out := &ast.Unary{Op: x.Op, X: nz.Normalize(x.X)}
			out.P = x.P
			return nil, out
		}
		xb, xa := nz.operand(x.X)
		out := &ast.Unary{Op: x.Op, X: xa}
		out.P = x.P
		return xb, out
	case *ast.ToBy:
		lb, la := nz.operand(x.Lo)
		hb, ha := nz.operand(x.Hi)
		var bb []ast.Node
		var ba ast.Node
		if x.By != nil {
			bb, ba = nz.operand(x.By)
		}
		out := &ast.ToBy{Lo: la, Hi: ha, By: ba}
		out.P = x.P
		binds = append(append(lb, hb...), bb...)
		return binds, out
	case *ast.Call:
		fb, fa := nz.operand(x.Fun)
		binds = fb
		args := make([]ast.Node, len(x.Args))
		for i, a := range x.Args {
			ab, aa := nz.operand(a)
			binds = append(binds, ab...)
			args[i] = aa
		}
		out := &ast.Call{Fun: fa, Args: args}
		out.P = x.P
		return binds, out
	case *ast.NativeCall:
		var ra ast.Node
		if x.Recv != nil {
			var rb []ast.Node
			rb, ra = nz.operand(x.Recv)
			binds = rb
		}
		args := make([]ast.Node, len(x.Args))
		for i, a := range x.Args {
			ab, aa := nz.operand(a)
			binds = append(binds, ab...)
			args[i] = aa
		}
		out := &ast.NativeCall{Recv: ra, Name: x.Name, Args: args}
		out.P = x.P
		return binds, out
	case *ast.Index:
		xb, xa := nz.operand(x.X)
		ib, ia := nz.operand(x.I)
		out := &ast.Index{X: xa, I: ia}
		out.P = x.P
		return append(xb, ib...), out
	case *ast.Slice:
		xb, xa := nz.operand(x.X)
		ib, ia := nz.operand(x.I)
		jb, ja := nz.operand(x.J)
		out := &ast.Slice{X: xa, I: ia, J: ja}
		out.P = x.P
		return append(append(xb, ib...), jb...), out
	case *ast.Field:
		xb, xa := nz.operand(x.X)
		out := &ast.Field{X: xa, Name: x.Name}
		out.P = x.P
		return xb, out
	case *ast.ListLit:
		elems := make([]ast.Node, len(x.Elems))
		for i, e := range x.Elems {
			eb, ea := nz.operand(e)
			binds = append(binds, eb...)
			elems[i] = ea
		}
		out := &ast.ListLit{Elems: elems}
		out.P = x.P
		return binds, out
	case *ast.FlatProduct:
		// Already normal: keep (idempotence).
		return nil, nz.renormalizeFlat(x)
	case *ast.BindIn:
		inner := nz.Normalize(x.E)
		out := &ast.BindIn{Tmp: x.Tmp, E: inner}
		out.P = x.P
		return nil, out
	default:
		if atomic(n) {
			return nil, n
		}
		// Control constructs, blocks, etc.: normalize whole, bind.
		return nz.bindWhole(n)
	}
}

// operand prepares one operand of a primary: atoms stay, nested primaries
// flatten in line, anything else is hoisted into (tmp in ⟦e⟧).
func (nz *Normalizer) operand(n ast.Node) ([]ast.Node, ast.Node) {
	if n == nil {
		return nil, nil
	}
	if atomic(n) {
		return nil, n
	}
	switch x := n.(type) {
	case *ast.Field:
		// Field access is single-valued; flatten its base in line and keep
		// the access itself in place (the §5A final term keeps o.c[i]).
		return nz.flat(n)
	case *ast.Call, *ast.NativeCall, *ast.Index, *ast.Slice, *ast.ToBy,
		*ast.ListLit:
		// Nested generator-producing primary: hoist its own binds, then
		// bind its residual to a temporary so the enclosing operation sees
		// a bound value — (o in !f(x,y)) in the §5A example.
		binds, atom := nz.flat(n)
		tmp := nz.fresh()
		bi := &ast.BindIn{Tmp: tmp, E: atom}
		bi.P = n.Pos()
		ref := &ast.TmpRef{Name: tmp}
		ref.P = n.Pos()
		return append(binds, bi), ref
	case *ast.Unary:
		switch x.Op {
		case "<>", "|<>", "|>":
			out := &ast.Unary{Op: x.Op, X: nz.Normalize(x.X)}
			out.P = x.P
			return nil, out
		}
		binds, atom := nz.flat(n)
		tmp := nz.fresh()
		bi := &ast.BindIn{Tmp: tmp, E: atom}
		bi.P = n.Pos()
		ref := &ast.TmpRef{Name: tmp}
		ref.P = n.Pos()
		return append(binds, bi), ref
	case *ast.Binary:
		binds, atom := nz.flat(n)
		tmp := nz.fresh()
		bi := &ast.BindIn{Tmp: tmp, E: atom}
		bi.P = n.Pos()
		ref := &ast.TmpRef{Name: tmp}
		ref.P = n.Pos()
		return append(binds, bi), ref
	default:
		return nz.bindWhole(n)
	}
}

// bindWhole normalizes n as a self-contained expression and binds it.
func (nz *Normalizer) bindWhole(n ast.Node) ([]ast.Node, ast.Node) {
	inner := nz.Normalize(n)
	tmp := nz.fresh()
	bi := &ast.BindIn{Tmp: tmp, E: inner}
	bi.P = n.Pos()
	ref := &ast.TmpRef{Name: tmp}
	ref.P = n.Pos()
	return []ast.Node{bi}, ref
}

// lvalue prepares an assignment target: identifiers, temporaries, fields,
// and subscripts stay as reference-producing forms, with their own operand
// pieces hoisted into binds.
func (nz *Normalizer) lvalue(n ast.Node, binds *[]ast.Node) ast.Node {
	switch x := n.(type) {
	case *ast.Ident, *ast.TmpRef, *ast.Keyword:
		// Keyword targets (&pos := …, &subject := …) must stay in place:
		// hoisting would bind their value and assign to a temporary.
		return n
	case *ast.Index:
		xb, xa := nz.operand(x.X)
		ib, ia := nz.operand(x.I)
		*binds = append(append(*binds, xb...), ib...)
		out := &ast.Index{X: xa, I: ia}
		out.P = x.P
		return out
	case *ast.Field:
		xb, xa := nz.operand(x.X)
		*binds = append(*binds, xb...)
		out := &ast.Field{X: xa, Name: x.Name}
		out.P = x.P
		return out
	case *ast.Unary:
		if x.Op == "!" {
			// every !L := 0: element references are assignable.
			xb, xa := nz.operand(x.X)
			*binds = append(*binds, xb...)
			out := &ast.Unary{Op: "!", X: xa}
			out.P = x.P
			return out
		}
	}
	// General expression target: normalize; it must produce variables.
	return nz.Normalize(n)
}

// renormalizeFlat re-applies normalization inside an already-flat product.
func (nz *Normalizer) renormalizeFlat(x *ast.FlatProduct) ast.Node {
	out := &ast.FlatProduct{Terms: make([]ast.Node, len(x.Terms))}
	out.P = x.P
	for i, t := range x.Terms {
		if bi, ok := t.(*ast.BindIn); ok {
			nb := &ast.BindIn{Tmp: bi.Tmp, E: nz.Normalize(bi.E)}
			nb.P = bi.P
			out.Terms[i] = nb
			continue
		}
		out.Terms[i] = nz.Normalize(t)
	}
	return out
}
