package transform_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/value"
)

// Generative operational-semantics check (§5): build random well-formed
// expressions from a small grammar of FINITE generators, and require the
// raw and normalized trees to evaluate to identical result sequences.
// This complements the hand-written corpus in TestRawVersusNormalizedEquivalence
// with shapes nobody thought to write down.

type exprGen struct {
	rng *rand.Rand
}

// expr emits a random expression; depth bounds recursion.
func (g *exprGen) expr(depth int) string {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.rng.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s | %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s & %s)", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s > %s)", g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("gen(%s, %s)", g.leaf(), g.leaf())
	case 6:
		return fmt.Sprintf("double(%s)", g.expr(depth-1))
	case 7:
		return fmt.Sprintf("(%s to %s)", g.leaf(), g.leaf())
	case 8:
		return fmt.Sprintf("[%s, %s]", g.expr(depth-1), g.leaf())
	default:
		return fmt.Sprintf("-(%s)", g.expr(depth-1))
	}
}

func (g *exprGen) leaf() string {
	return fmt.Sprintf("%d", 1+g.rng.Intn(4))
}

func TestGenerativeRawVersusNormalized(t *testing.T) {
	const prelude = `
def gen(a, b) { suspend a to b; }
def double(x) { return x * 2; }
`
	rng := rand.New(rand.NewSource(42))
	eg := &exprGen{rng: rng}
	for i := 0; i < 400; i++ {
		src := eg.expr(3)
		inRaw := interp.New()
		inNorm := interp.New()
		if err := inRaw.LoadProgram(prelude); err != nil {
			t.Fatal(err)
		}
		if err := inNorm.LoadProgram(prelude); err != nil {
			t.Fatal(err)
		}
		// Cap at 4000 results: products of to-ranges can be large but are
		// always finite with this grammar.
		rawG, err1 := inRaw.EvalRawGen(src)
		normG, err2 := inNorm.EvalGen(src)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error asymmetry raw=%v norm=%v", src, err1, err2)
		}
		if err1 != nil {
			continue
		}
		raw, rerr := drainImagesN(rawG, 4000)
		nrm, nerr := drainImagesN(normG, 4000)
		if (rerr == nil) != (nerr == nil) {
			t.Fatalf("%s: drain error asymmetry raw=%v norm=%v", src, rerr, nerr)
		}
		if strings.Join(raw, "|") != strings.Join(nrm, "|") {
			t.Fatalf("%s:\nraw  = %v\nnorm = %v", src, raw, nrm)
		}
	}
}

// drainImagesN drains up to max results, converting a lazily-raised Icon
// runtime error (e.g. arithmetic on a generated list) into an error result
// so both evaluation paths can be compared on errors too.
func drainImagesN(g value.Gen, max int) (out []string, err error) {
	err = core.Protect(func() {
		for i := 0; i < max; i++ {
			v, ok := g.Next()
			if !ok {
				return
			}
			out = append(out, value.Image(value.Deref(v)))
		}
	})
	return out, err
}
