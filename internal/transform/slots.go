package transform

import (
	"junicon/internal/ast"
)

// Slot numbering for compiled frames. A compiled generator frame replaces
// the interpreter's map-backed Env with a flat []value.V slot array indexed
// at compile time, so every name that may bind frame-locally needs a
// deterministic number. This pass enumerates the candidates in a stable
// first-occurrence order: parameters first, then every name a normalized
// body can bind locally — `local` declarations, the x_N temporaries of the
// §5A normal forms (BindIn/TmpRef), and plain identifiers, which Icon's
// default-local rule turns into locals when nothing else claims them. The
// compiler filters the candidates through its resolver (globals, builtins
// and natives never become slots); the order fixed here is what the
// disassembler prints and the snapshot work of ROADMAP item 3 will rely on.

// SlotCandidates returns the local-binding candidates of a normalized
// procedure body (or top-level expression), in first-occurrence order,
// with params (which are always slots) at the front. The result contains
// no duplicates.
func SlotCandidates(params []string, body ast.Node) []string {
	seen := make(map[string]bool, len(params)+8)
	names := make([]string, 0, len(params)+8)
	add := func(n string) {
		if n == "" || seen[n] {
			return
		}
		seen[n] = true
		names = append(names, n)
	}
	for _, p := range params {
		add(p)
	}
	if body == nil {
		return names
	}
	ast.Walk(body, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.VarDecl:
			for _, n := range x.Names {
				add(n)
			}
		case *ast.BindIn:
			add(x.Tmp)
		case *ast.TmpRef:
			add(x.Name)
		case *ast.Ident:
			add(x.Name)
		}
		return true
	})
	return names
}
