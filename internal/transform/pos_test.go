package transform_test

import (
	"testing"

	"junicon/internal/ast"
	"junicon/internal/parser"
	"junicon/internal/transform"
)

// TestTemporariesCarryHoistedPos pins the diagnostic contract of
// normalization: every compiler-introduced node — BindIn, TmpRef,
// FlatProduct — is stamped with the position of the expression it hoists,
// so analyzer output over normal forms points at real source.
func TestTemporariesCarryHoistedPos(t *testing.T) {
	sources := []string{
		`def f(n) { return g(h(n), n + 1); }`,
		`def f(o, i) { suspend o.c[i + 1]; }`,
		`def f(xs) { every write(!xs + sum(!xs)); }`,
		`def f(n) { while n := n - step(n) do put(out, n * n); }`,
		`def f(c) { suspend ! (|> worker(!c)); }`,
	}
	for _, src := range sources {
		prog, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		norm := transform.Normalize(prog)
		synthesized := 0
		ast.Walk(norm, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.BindIn, *ast.TmpRef, *ast.FlatProduct:
				synthesized++
				if n.Pos().Line == 0 {
					t.Errorf("%q: synthesized %T lost its source position", src, n)
				}
			default:
				if n != nil && n.Pos().Line == 0 {
					if _, isProg := n.(*ast.Program); !isProg {
						t.Errorf("%q: normalized %T has zero position", src, n)
					}
				}
			}
			return true
		})
		if synthesized == 0 {
			t.Errorf("%q: normalization introduced no temporaries — test source too simple", src)
		}
	}
}
