package transform_test

import (
	"strings"
	"testing"

	"junicon/internal/ast"
	"junicon/internal/interp"
	"junicon/internal/parser"
	"junicon/internal/transform"
	"junicon/internal/value"
)

func norm(t *testing.T, src string) ast.Node {
	t.Helper()
	e, err := parser.ParseExpression(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return transform.Normalize(e)
}

func TestAtomicExpressionsUnchanged(t *testing.T) {
	// "Simple method invocations such as o.f(x,y) [are] left largely
	// unchanged" (§5A).
	for _, src := range []string{"x", "42", `"s"`, "o.f", "f(x, y)", "o.c"} {
		n := norm(t, src)
		if _, isFlat := n.(*ast.FlatProduct); isFlat {
			t.Errorf("%s should stay unflattened:\n%s", src, ast.ToXML(n))
		}
	}
}

func TestPaperRunningExampleFlattens(t *testing.T) {
	// e(ex,ey).c[ei] with generator-valued pieces flattens into a product
	// of bound iterators chaining the primary left to right (§5A).
	n := norm(t, "e(f | g, 1 to 2).c[h(i)]")
	fp, ok := n.(*ast.FlatProduct)
	if !ok {
		t.Fatalf("expected FlatProduct, got:\n%s", ast.ToXML(n))
	}
	// Expect binds for: (f|g), (1 to 2), the call, h(i); final term is the
	// index over the field of the bound call result.
	nBinds := 0
	for _, term := range fp.Terms[:len(fp.Terms)-1] {
		if _, isBind := term.(*ast.BindIn); isBind {
			nBinds++
		}
	}
	if nBinds < 4 {
		t.Fatalf("expected >= 4 bound iterators, got %d:\n%s", nBinds, ast.ToXML(n))
	}
	last, ok := fp.Terms[len(fp.Terms)-1].(*ast.Index)
	if !ok {
		t.Fatalf("final term should be the index, got:\n%s", ast.ToXML(fp.Terms[len(fp.Terms)-1]))
	}
	fld, ok := last.X.(*ast.Field)
	if !ok || fld.Name != "c" {
		t.Fatalf("index base should be .c field of bound temp:\n%s", ast.ToXML(last))
	}
	if _, isTmp := fld.X.(*ast.TmpRef); !isTmp {
		t.Fatalf("field base should be a temporary:\n%s", ast.ToXML(last))
	}
}

func TestNestedCallBindsIntermediary(t *testing.T) {
	// f(g(x)): (t in g(x)) & f(t).
	n := norm(t, "f(g(1 to 3))")
	fp, ok := n.(*ast.FlatProduct)
	if !ok {
		t.Fatalf("expected flattening:\n%s", ast.ToXML(n))
	}
	call, ok := fp.Terms[len(fp.Terms)-1].(*ast.Call)
	if !ok {
		t.Fatalf("last term should be outer call")
	}
	if _, isTmp := call.Args[0].(*ast.TmpRef); !isTmp {
		t.Fatalf("outer call argument should be a temporary:\n%s", ast.ToXML(n))
	}
}

func TestControlConstructBoundariesNotFlattened(t *testing.T) {
	// Hoisting must not cross while/if/every boundaries.
	for _, src := range []string{
		"while f(x) do g(h(y))",
		"if f(x) then g(y) else h(z)",
		"every i := 1 to 10 do write(i + 1)",
	} {
		n := norm(t, src)
		if _, isFlat := n.(*ast.FlatProduct); isFlat {
			t.Errorf("%s flattened across a control boundary:\n%s", src, ast.ToXML(n))
		}
	}
}

func TestProductAndAlternationPreserved(t *testing.T) {
	n := norm(t, "f(x) & g(y)")
	b, ok := n.(*ast.Binary)
	if !ok || b.Op != "&" {
		t.Fatalf("product structure lost:\n%s", ast.ToXML(n))
	}
	n = norm(t, "f(x) | g(y)")
	b, ok = n.(*ast.Binary)
	if !ok || b.Op != "|" {
		t.Fatalf("alternation structure lost:\n%s", ast.ToXML(n))
	}
}

func TestCreateExpressionsCaptureBodiesUnflattened(t *testing.T) {
	// |>f(!chunk) must keep the call inside the create operator — the body
	// runs in the co-expression, not hoisted into the creating scope.
	n := norm(t, "|> f(!chunk)")
	u, ok := n.(*ast.Unary)
	if !ok || u.Op != "|>" {
		t.Fatalf("create lost: %s", ast.ToXML(n))
	}
	if _, isFlat := u.X.(*ast.FlatProduct); !isFlat {
		// The body itself normalizes (the !chunk operand binds), but it
		// stays inside the create.
		if _, isCall := u.X.(*ast.Call); !isCall {
			t.Fatalf("pipe body shape unexpected:\n%s", ast.ToXML(n))
		}
	}
}

func TestLimitationKeepsLeftOperandWhole(t *testing.T) {
	n := norm(t, "(1 to 100) \\ 3")
	b, ok := n.(*ast.Binary)
	if !ok || b.Op != "\\" {
		// R is a literal, so no flattening at all is acceptable too.
		fp, isFlat := n.(*ast.FlatProduct)
		if !isFlat {
			t.Fatalf("unexpected shape:\n%s", ast.ToXML(n))
		}
		b = fp.Terms[len(fp.Terms)-1].(*ast.Binary)
	}
	if _, isTmp := b.L.(*ast.TmpRef); isTmp {
		t.Fatalf("limitation left operand must not be hoisted:\n%s", ast.ToXML(n))
	}
}

func TestNormalizeIsIdempotent(t *testing.T) {
	srcs := []string{
		"f(g(1 to 3))",
		"e(f | g, 1 to 2).c[h(i)]",
		"x := f(y) + g(z)",
		"every i := 1 to 3 do write(f(i))",
		"|> f(!chunk)",
		"this::hashNumber( ! (|> this::wordToNumber( ! splitWords(readLines()))))",
	}
	for _, src := range srcs {
		once := norm(t, src)
		twice := transform.Normalize(once)
		if ast.ToXML(once) != ast.ToXML(twice) {
			t.Errorf("normalization not idempotent for %s:\n--- once ---\n%s--- twice ---\n%s",
				src, ast.ToXML(once), ast.ToXML(twice))
		}
	}
}

func TestTemporariesAreDistinct(t *testing.T) {
	n := norm(t, "f(g(1 to 2), h(3 to 4), k(5 to 6))")
	seen := map[string]int{}
	ast.Walk(n, func(m ast.Node) bool {
		if b, ok := m.(*ast.BindIn); ok {
			seen[b.Tmp]++
		}
		return true
	})
	for name, count := range seen {
		if count > 1 {
			t.Fatalf("temporary %s bound %d times:\n%s", name, count, ast.ToXML(n))
		}
	}
	if len(seen) < 3 {
		t.Fatalf("expected at least 3 temporaries, got %v", seen)
	}
}

// The operational-semantics check (§5): interpreting the raw tree and the
// normalized tree must produce identical result sequences.
func TestRawVersusNormalizedEquivalence(t *testing.T) {
	prelude := `
def isprime(n) {
  if n < 2 then fail;
  every d := 2 to n-1 do { if not (n % d ~= 0) then fail };
  return n;
}
def double(x) { return x * 2; }
def gen(a, b) { suspend a to b; }
`
	corpus := []string{
		"1 + 2 * 3",
		"(1 to 3) + (10 to 30 by 10)",
		"(1 to 2) * isprime(4 to 7)",
		"double(gen(1, 3))",
		"double(double(gen(1, 2)))",
		"gen(1, 3) > 1",
		"[gen(1,1), gen(2,2)]",
		`find("a", "banana")`,
		"{ x := gen(1, 3); x + 100 }",
		"(gen(1,2) | gen(8,9)) + 1",
		"every i := gen(1, 4) do i",
		"if gen(1,3) > 2 then \"yes\" else \"no\"",
		"(1 to 50) \\ 4",
		"(|gen(1,2)) \\ 5",
		"not (gen(1,3) > 5)",
		"-gen(1,3)",
		"*[1,2,3] + gen(1,2)",
		"{ l := [10, 20, 30]; l[gen(1,3)] }",
		"{ t := table(0); t[\"a\"] := gen(5,5); t[\"a\"] }",
		"case gen(2,2) of { 1: \"one\"; 2: \"two\"; default: \"other\" }",
	}
	for _, src := range corpus {
		inRaw := interp.New()
		inNorm := interp.New()
		if err := inRaw.LoadProgram(prelude); err != nil {
			t.Fatal(err)
		}
		if err := inNorm.LoadProgram(prelude); err != nil {
			t.Fatal(err)
		}
		rawGen, err := inRaw.EvalRawGen(src)
		if err != nil {
			t.Fatalf("raw %s: %v", src, err)
		}
		normGen, err := inNorm.EvalGen(src)
		if err != nil {
			t.Fatalf("norm %s: %v", src, err)
		}
		raw := drainImages(rawGen)
		nrm := drainImages(normGen)
		if strings.Join(raw, "|") != strings.Join(nrm, "|") {
			t.Errorf("%s: raw %v != normalized %v", src, raw, nrm)
		}
	}
}

func drainImages(g value.Gen) []string {
	var out []string
	for i := 0; i < 10000; i++ {
		v, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, value.Image(value.Deref(v)))
	}
	return out
}

func TestProgramNormalization(t *testing.T) {
	src := `
def chunk(e) {
  c := [];
  while put(c, @e) do {
    if (*c >= 4) then { suspend c; c := []; }};
  if (*c > 0) then { return c; };
}
`
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	normProg := transform.Normalize(prog).(*ast.Program)
	if len(normProg.Decls) != 1 {
		t.Fatalf("decl count changed")
	}
	// Load and run the normalized program (LoadProgram normalizes again —
	// idempotence makes that safe).
	in := interp.New()
	if err := in.LoadProgram(src); err != nil {
		t.Fatal(err)
	}
	vs, err := in.Eval("chunk(<>(1 to 9))", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("chunks = %d", len(vs))
	}
}

func TestLvalueNormalForms(t *testing.T) {
	// Index targets keep their reference-producing shape; only operand
	// pieces hoist.
	n := norm(t, "l[f(1 to 3)] := 9")
	fp, ok := n.(*ast.FlatProduct)
	if !ok {
		t.Fatalf("expected flattening:\n%s", ast.ToXML(n))
	}
	asn := fp.Terms[len(fp.Terms)-1].(*ast.Binary)
	if asn.Op != ":=" {
		t.Fatalf("last term not assignment:\n%s", ast.ToXML(n))
	}
	if _, isIndex := asn.L.(*ast.Index); !isIndex {
		t.Fatalf("index target lost:\n%s", ast.ToXML(n))
	}
	// every !L := 0 keeps the promote target.
	n = norm(t, "!l := 0")
	bin, ok := n.(*ast.Binary)
	if !ok {
		t.Fatalf("unexpected shape:\n%s", ast.ToXML(n))
	}
	if u, isU := bin.L.(*ast.Unary); !isU || u.Op != "!" {
		t.Fatalf("promote target lost:\n%s", ast.ToXML(n))
	}
	// Swap targets both stay in place.
	n = norm(t, "a :=: b")
	sw := n.(*ast.Binary)
	if sw.Op != ":=:" {
		t.Fatalf("swap lost: %s", ast.ToXML(n))
	}
	// Field targets with complex bases hoist the base only.
	n = norm(t, "g(1 to 2).x := 5")
	fp2, ok := n.(*ast.FlatProduct)
	if !ok {
		t.Fatalf("expected flattening:\n%s", ast.ToXML(n))
	}
	last := fp2.Terms[len(fp2.Terms)-1].(*ast.Binary)
	fld := last.L.(*ast.Field)
	if _, isTmp := fld.X.(*ast.TmpRef); !isTmp {
		t.Fatalf("field base should be temp:\n%s", ast.ToXML(n))
	}
}

func TestAugmentedAssignmentNormalForm(t *testing.T) {
	n := norm(t, "x +:= f(1 to 2)")
	fp, ok := n.(*ast.FlatProduct)
	if !ok {
		t.Fatalf("expected flattening:\n%s", ast.ToXML(n))
	}
	last := fp.Terms[len(fp.Terms)-1].(*ast.Binary)
	if last.Op != "+:=" {
		t.Fatalf("augmented op lost:\n%s", ast.ToXML(n))
	}
	if _, isIdent := last.L.(*ast.Ident); !isIdent {
		t.Fatalf("target hoisted:\n%s", ast.ToXML(n))
	}
}

func TestScanOperandsNotHoisted(t *testing.T) {
	n := norm(t, `f(x) ? tab(upto(','))`)
	b, ok := n.(*ast.Binary)
	if !ok || b.Op != "?" {
		t.Fatalf("scan structure lost:\n%s", ast.ToXML(n))
	}
	// Subject normalizes in place; body stays under the scan.
	if _, isFlat := n.(*ast.FlatProduct); isFlat {
		t.Fatal("scan must not flatten into an enclosing product")
	}
}

func TestKeywordOperandsHoistInOrder(t *testing.T) {
	// [&pos, tab(0)] must evaluate &pos before tab moves it: both hoist.
	n := norm(t, "[&pos, f(y to z)]")
	fp, ok := n.(*ast.FlatProduct)
	if !ok {
		t.Fatalf("expected flattening:\n%s", ast.ToXML(n))
	}
	first, ok := fp.Terms[0].(*ast.BindIn)
	if !ok {
		t.Fatalf("first term not a bind:\n%s", ast.ToXML(n))
	}
	if _, isKw := first.E.(*ast.Keyword); !isKw {
		t.Fatalf("keyword should hoist first:\n%s", ast.ToXML(n))
	}
}
