package translate

import (
	"junicon/internal/ast"
)

// stmts emits the statements of a procedure body into the suspendable
// iterator's Go body (inside core.NewGen): suspend yields, return yields
// once and returns, loops become Go loops so break/next map to Go
// break/continue — the "making iteration explicit" of §5A at statement
// level.
func (e *emitter) stmts(list []ast.Node) {
	for _, s := range list {
		e.stmt(s)
	}
}

func (e *emitter) stmt(s ast.Node) {
	switch x := s.(type) {
	case *ast.Block:
		e.stmts(x.Stmts)
	case *ast.Initial:
		// Executed once via staticOnce in the procedure prologue.
		return
	case *ast.VarDecl:
		if x.Kind == "static" {
			// Statics initialize once in the procedure prologue.
			return
		}
		for i, name := range x.Names {
			if x.Inits[i] == nil {
				e.linef("%s.Set(value.NullV)", e.cellRef(name))
				continue
			}
			e.linef("if v, ok := core.First(%s); ok {", e.expr(x.Inits[i]))
			e.linef("\t%s.Set(v)", e.cellRef(name))
			e.linef("} else {")
			e.linef("\t%s.Set(value.NullV)", e.cellRef(name))
			e.linef("}")
		}
	case *ast.Return:
		if x.E == nil {
			e.linef("yield(value.NullV)")
			e.linef("return")
			return
		}
		e.linef("if v, ok := core.First(%s); ok {", e.expr(x.E))
		e.linef("\tyield(v)")
		e.linef("}")
		e.linef("return")
	case *ast.Fail:
		e.linef("return")
	case *ast.Suspend:
		e.linef("{")
		e.depth++
		e.linef("g := %s", e.expr(x.E))
		e.linef("for {")
		e.depth++
		e.linef("v, ok := g.Next()")
		e.linef("if !ok {")
		e.linef("\tbreak")
		e.linef("}")
		e.linef("if !yield(value.Deref(v)) {")
		e.linef("\treturn")
		e.linef("}")
		if x.Body != nil {
			e.linef("core.Bound(%s).Next()", e.expr(x.Body))
		}
		e.depth--
		e.linef("}")
		e.depth--
		e.linef("}")
	case *ast.If:
		e.linef("if _, ok := core.First(%s); ok {", e.expr(x.Cond))
		e.depth++
		e.stmt(x.Then)
		e.depth--
		if x.Else != nil {
			e.linef("} else {")
			e.depth++
			e.stmt(x.Else)
			e.depth--
		}
		e.linef("}")
	case *ast.While:
		neg := "!ok"
		if x.Until {
			neg = "ok"
		}
		e.linef("for {")
		e.depth++
		e.linef("if _, ok := core.First(%s); %s {", e.expr(x.Cond), neg)
		e.linef("\tbreak")
		e.linef("}")
		if x.Body != nil {
			e.stmt(x.Body)
		}
		e.depth--
		e.linef("}")
	case *ast.Every:
		e.linef("{")
		e.depth++
		e.linef("g := %s", e.expr(x.E))
		e.linef("for {")
		e.depth++
		e.linef("if _, ok := g.Next(); !ok {")
		e.linef("\tbreak")
		e.linef("}")
		if x.Body != nil {
			e.stmt(x.Body)
		}
		e.depth--
		e.linef("}")
		e.depth--
		e.linef("}")
	case *ast.Repeat:
		e.linef("for {")
		e.depth++
		e.stmt(x.Body)
		e.depth--
		e.linef("}")
	case *ast.Case:
		e.linef("if subj, ok := core.First(%s); ok {", e.expr(x.Subject))
		e.depth++
		first := true
		var deflt ast.Node
		for _, c := range x.Clauses {
			if c.Sel == nil {
				deflt = c.Body
				continue
			}
			kw := "} else if"
			if first {
				kw = "if"
				first = false
			}
			e.linef("%s core.CaseMatches(subj, %s) {", kw, e.expr(c.Sel))
			e.depth++
			e.stmt(c.Body)
			e.depth--
		}
		if deflt != nil {
			if first {
				e.stmt(deflt)
			} else {
				e.linef("} else {")
				e.depth++
				e.stmt(deflt)
				e.depth--
				e.linef("}")
			}
		} else if !first {
			e.linef("}")
		}
		if first && deflt == nil {
			e.linef("_ = subj")
		}
		e.depth--
		e.linef("}")
	case *ast.Break:
		if x.E != nil {
			e.linef("core.Bound(%s).Next()", e.expr(x.E))
		}
		e.linef("break")
	case *ast.NextStmt:
		e.linef("continue")
	default:
		// Expression statement: bounded evaluation.
		e.linef("core.Bound(%s).Next()", e.expr(s))
	}
}
