package translate

import "junicon/internal/ast"

// rename returns a deep copy of n with identifiers in set renamed to their
// _s shadow forms — the environment-shadowing rename of §5D (Figure 5's
// chunk → chunk_s).
func rename(n ast.Node, set map[string]bool) ast.Node {
	if n == nil {
		return nil
	}
	switch x := n.(type) {
	case *ast.Ident:
		if set[x.Name] {
			out := &ast.Ident{Name: x.Name + "_s"}
			out.P = x.P
			return out
		}
		return x
	case *ast.TmpRef:
		if set[x.Name] {
			out := &ast.TmpRef{Name: x.Name + "_s"}
			out.P = x.P
			return out
		}
		return x
	case *ast.IntLit, *ast.RealLit, *ast.StrLit, *ast.CsetLit, *ast.Keyword,
		*ast.Fail, *ast.NextStmt, *ast.RecordDecl, *ast.GlobalDecl:
		return x
	case *ast.ListLit:
		out := &ast.ListLit{Elems: renameList(x.Elems, set)}
		out.P = x.P
		return out
	case *ast.Binary:
		out := &ast.Binary{Op: x.Op, L: rename(x.L, set), R: rename(x.R, set)}
		out.P = x.P
		return out
	case *ast.Unary:
		out := &ast.Unary{Op: x.Op, X: rename(x.X, set)}
		out.P = x.P
		return out
	case *ast.ToBy:
		out := &ast.ToBy{Lo: rename(x.Lo, set), Hi: rename(x.Hi, set), By: rename(x.By, set)}
		out.P = x.P
		return out
	case *ast.Call:
		out := &ast.Call{Fun: rename(x.Fun, set), Args: renameList(x.Args, set)}
		out.P = x.P
		return out
	case *ast.NativeCall:
		out := &ast.NativeCall{Recv: rename(x.Recv, set), Name: x.Name, Args: renameList(x.Args, set)}
		out.P = x.P
		return out
	case *ast.Index:
		out := &ast.Index{X: rename(x.X, set), I: rename(x.I, set)}
		out.P = x.P
		return out
	case *ast.Slice:
		out := &ast.Slice{X: rename(x.X, set), I: rename(x.I, set), J: rename(x.J, set)}
		out.P = x.P
		return out
	case *ast.Field:
		out := &ast.Field{X: rename(x.X, set), Name: x.Name}
		out.P = x.P
		return out
	case *ast.If:
		out := &ast.If{Cond: rename(x.Cond, set), Then: rename(x.Then, set), Else: rename(x.Else, set)}
		out.P = x.P
		return out
	case *ast.While:
		out := &ast.While{Cond: rename(x.Cond, set), Body: rename(x.Body, set), Until: x.Until}
		out.P = x.P
		return out
	case *ast.Every:
		out := &ast.Every{E: rename(x.E, set), Body: rename(x.Body, set)}
		out.P = x.P
		return out
	case *ast.Repeat:
		out := &ast.Repeat{Body: rename(x.Body, set)}
		out.P = x.P
		return out
	case *ast.Case:
		out := &ast.Case{Subject: rename(x.Subject, set)}
		out.P = x.P
		for _, c := range x.Clauses {
			out.Clauses = append(out.Clauses, ast.CaseClause{
				Sel:  rename(c.Sel, set),
				Body: rename(c.Body, set),
			})
		}
		return out
	case *ast.Block:
		out := &ast.Block{Stmts: renameList(x.Stmts, set)}
		out.P = x.P
		return out
	case *ast.Return:
		out := &ast.Return{E: rename(x.E, set)}
		out.P = x.P
		return out
	case *ast.Suspend:
		out := &ast.Suspend{E: rename(x.E, set), Body: rename(x.Body, set)}
		out.P = x.P
		return out
	case *ast.Break:
		out := &ast.Break{E: rename(x.E, set)}
		out.P = x.P
		return out
	case *ast.VarDecl:
		out := &ast.VarDecl{Kind: x.Kind, Names: renameNames(x.Names, set), Inits: renameList(x.Inits, set)}
		out.P = x.P
		return out
	case *ast.BindIn:
		tmp := x.Tmp
		if set[tmp] {
			tmp += "_s"
		}
		out := &ast.BindIn{Tmp: tmp, E: rename(x.E, set)}
		out.P = x.P
		return out
	case *ast.FlatProduct:
		out := &ast.FlatProduct{Terms: renameList(x.Terms, set)}
		out.P = x.P
		return out
	default:
		return x
	}
}

func renameList(ns []ast.Node, set map[string]bool) []ast.Node {
	if ns == nil {
		return nil
	}
	out := make([]ast.Node, len(ns))
	for i, n := range ns {
		out[i] = rename(n, set)
	}
	return out
}

func renameNames(names []string, set map[string]bool) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if set[n] {
			out[i] = n + "_s"
		} else {
			out[i] = n
		}
	}
	return out
}
