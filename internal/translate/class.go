package translate

import (
	"strings"

	"junicon/internal/ast"
)

// Class translation (§5C): "expose variables in both plain and reified
// form while maintaining consistency between them. This duality allows
// Java code to use the plain form, while embedded Unicon code can use the
// reified form."
//
// A declaration `class C(x, y) { def m(a) {…} }` becomes a Go struct with
// the plain fields (host code reads and writes them directly), reified
// IconVar views whose get/set closures alias the plain fields, and method
// values compiled against the instance's reified scope:
//
//	local x;   →   X value.V
//	               X_r = value.NewVar(func() value.V { return o.X },
//	                                  func(rhs value.V) { o.X = rhs })
//
// matching the paper's
//
//	Object x;
//	IconVar x_r = new IconVar(()->x, (rhs)->x=rhs);

// goName exports a Junicon identifier to a Go field name.
func goName(name string) string {
	if name == "" {
		return name
	}
	return strings.ToUpper(name[:1]) + name[1:]
}

// classDual emits the dual-form struct translation for a class.
func (e *emitter) classDual(c *ast.ClassDecl) {
	tname := goName(c.Name)
	e.linef("// %s is the dual-form translation of class %s(%s) (§5C):", tname, c.Name, strings.Join(c.Fields, ", "))
	e.linef("// plain fields for host code, reified views for embedded code.")
	e.linef("type %s struct {", tname)
	e.depth++
	for _, f := range c.Fields {
		e.linef("%s value.V", goName(f))
	}
	for _, f := range c.Fields {
		e.linef("%s *value.Var // reified view of %s", goName(f)+"_r", goName(f))
	}
	for _, m := range c.Methods {
		e.linef("%s *value.Proc", goName(m.Name))
	}
	e.depth--
	e.linef("}")
	e.linef("")

	// Constructor: wires the reified views to the plain fields and binds
	// the methods over the instance scope.
	e.linef("// New%s constructs an instance; missing arguments stay null.", tname)
	e.linef("func New%s(args ...value.V) *%s {", tname, tname)
	e.depth++
	e.linef("o := &%s{}", tname)
	for i, f := range c.Fields {
		e.linef("o.%s = value.NullV", goName(f))
		e.linef("if len(args) > %d {", i)
		e.linef("\to.%s = value.Deref(args[%d])", goName(f), i)
		e.linef("}")
	}
	e.linef("// Reified views stay consistent with the plain fields: both")
	e.linef("// sides see every assignment — the closures alias the struct fields.")
	for _, f := range c.Fields {
		e.linef("o.%s_r = value.NewVar(func() value.V { return o.%s }, func(rhs value.V) { o.%s = rhs })",
			goName(f), goName(f), goName(f))
	}
	for _, m := range c.Methods {
		e.linef("o.%s = o.make%s()", goName(m.Name), goName(m.Name))
	}
	e.linef("return o")
	e.depth--
	e.linef("}")
	e.linef("")

	// Methods: compiled like procedures, but with class fields resolving
	// to the instance's reified views.
	for _, m := range c.Methods {
		e.classMethod(c, m)
	}

	// A class-level constructor procedure value for embedded invocation:
	// C(x, y) inside Junicon builds an instance and returns its methods
	// via field access on a record-like wrapper? Embedded code instead
	// receives the instance as an opaque host value; method access happens
	// through the Natives registry or host loops.
	e.linef("// %sProc exposes the constructor to embedded code.", tname)
	e.linef("var %sProc = value.NewProc(%q, %d, func(args ...value.V) core.Gen {",
		tname, c.Name, len(c.Fields))
	e.depth++
	e.linef("o := New%s(args...)", tname)
	e.linef("return core.Unit(o.asRecord())")
	e.depth--
	e.linef("})")
	e.linef("")

	// asRecord views the instance as a Unicon record whose fields are the
	// reified views (reference semantics: updates flow through) and whose
	// method members are the procedure values.
	e.linef("// asRecord views the instance as a record over the reified fields,")
	e.linef("// so embedded code gets reference semantics on o.field.")
	e.linef("func (o *%s) asRecord() *value.Record {", tname)
	e.depth++
	names := make([]string, 0, len(c.Fields)+len(c.Methods))
	vals := make([]string, 0, len(names))
	for _, f := range c.Fields {
		names = append(names, `"`+f+`"`)
		vals = append(vals, "o."+goName(f)+"_r")
	}
	for _, m := range c.Methods {
		names = append(names, `"`+m.Name+`"`)
		vals = append(vals, "o."+goName(m.Name))
	}
	e.linef("return value.NewRecord(%q, []string{%s}, []value.V{%s})",
		c.Name, strings.Join(names, ", "), strings.Join(vals, ", "))
	e.depth--
	e.linef("}")
	e.linef("")
}

// classMethod emits one method as a factory producing the bound procedure
// value over the instance's reified field scope.
func (e *emitter) classMethod(c *ast.ClassDecl, m *ast.ProcDecl) {
	tname := goName(c.Name)
	outer := e.scope
	e.scope = map[string]bool{}
	for _, p := range m.Params {
		e.scope[p] = true
	}
	// Field names resolve through the instance (bound to o.F_r below);
	// params shadow fields, and assignments to field names target the
	// field, not a fresh local.
	fieldSet := map[string]bool{}
	for _, f := range c.Fields {
		if !e.scope[f] {
			fieldSet[f] = true
			e.scope[f] = true
		}
	}
	var locals []string
	for _, l := range collectLocals(m) {
		if !e.scope[l] { // skip params and fields
			locals = append(locals, l)
			e.scope[l] = true
		}
	}

	e.linef("func (o *%s) make%s() *value.Proc {", tname, goName(m.Name))
	e.depth++
	e.linef("return value.NewProc(%q, %d, func(args ...value.V) core.Gen {", m.Name, len(m.Params))
	e.depth++
	for _, f := range c.Fields {
		if fieldSet[f] {
			e.linef("%s := o.%s_r", cell(f), goName(f))
		}
	}
	if len(m.Params) > 0 {
		e.linef("// Reified parameters")
		for _, p := range m.Params {
			e.linef("%s := value.NewCell(value.NullV)", cell(p))
		}
		for i, p := range m.Params {
			e.linef("if len(args) > %d {", i)
			e.linef("\t%s.Set(value.Deref(args[%d]))", cell(p), i)
			e.linef("}")
		}
	} else {
		e.linef("_ = args")
	}
	if len(locals) > 0 {
		e.linef("// Reified locals and temporaries")
		for _, l := range locals {
			e.linef("%s := value.NewCell(value.NullV)", cell(l))
		}
	}
	e.linef("return core.NewGen(func(yield func(value.V) bool) {")
	e.depth++
	e.stmts(m.Body.Stmts)
	e.depth--
	e.linef("})")
	e.depth--
	e.linef("})")
	e.depth--
	e.linef("}")
	e.linef("")
	e.scope = outer
}
