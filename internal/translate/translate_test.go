package translate_test

import (
	"os"
	"strings"
	"testing"

	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/translate"
	"junicon/internal/translate/gen"
	"junicon/internal/value"
)

const spawnMapSrc = `
def spawnMap (f, chunk) {
  suspend ! (|> f(!chunk));
}
`

// TestSpawnMapTranslationShape pins the Figure 5 structure of the emitted
// code: a variadic procedure value, reified parameters with unpacking, a
// co-expression constructor over the shadowed (_s) environment, pipe
// creation, and the product/in/promote composition.
func TestSpawnMapTranslationShape(t *testing.T) {
	out, err := translate.TranslateProgram(spawnMapSrc, translate.Options{Package: "gen"})
	if err != nil {
		t.Fatalf("translate: %v\n%s", err, out)
	}
	for _, want := range []string{
		`var P_spawnMap = value.NewProc("spawnMap", 2, func(args ...value.V) core.Gen {`,
		"// Reified parameters",
		"v_f_r := value.NewCell(value.NullV)",
		"v_chunk_r := value.NewCell(value.NullV)",
		"// Unpack parameters",
		"v_f_r.Set(value.Deref(args[0]))",
		"coexpr.New([]value.V{",  // environment snapshot
		"v_chunk_s_r := env[",    // shadowed locals, Figure 5's chunk_s
		"v_f_s_r := env[",        // and f_s
		"core.Product(",          // IconProduct
		"core.In(",               // IconIn
		"core.Promote(",          // IconPromote
		"pipe.New(",              // createPipe()
		"p.StartEager()",         //
		"core.NewGen(func(yield", // suspendable method body
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated code missing %q\n----\n%s", want, out)
		}
	}
}

// TestGeneratedFileIsFresh regenerates gen/gen.go from testdata/program.jn
// and requires the committed file to match — the committed package doubles
// as the compile-check of translator output.
func TestGeneratedFileIsFresh(t *testing.T) {
	src, err := os.ReadFile("testdata/program.jn")
	if err != nil {
		t.Fatal(err)
	}
	out, err := translate.TranslateProgram(string(src), translate.Options{Package: "gen"})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	committed, err := os.ReadFile("gen/gen.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(committed) != out {
		t.Fatalf("gen/gen.go is stale; regenerate with:\n  go run ./cmd/junicon -emit -pkg gen internal/translate/testdata/program.jn > internal/translate/gen/gen.go")
	}
}

// callGen invokes a translated procedure from the generated package.
func callGen(t *testing.T, name string, args ...value.V) []string {
	t.Helper()
	cell, ok := gen.Globals[name]
	if !ok {
		t.Fatalf("no translated procedure %q", name)
	}
	p, ok := cell.Get().(*value.Proc)
	if !ok {
		t.Fatalf("%q is not a procedure: %s", name, value.Image(cell.Get()))
	}
	var out []string
	err := core.Protect(func() {
		for _, v := range core.Drain(p.Call(args...), 1000) {
			out = append(out, value.Image(v))
		}
	})
	if err != nil {
		t.Fatalf("call %s: %v", name, err)
	}
	return out
}

// callInterp runs the same program in the interpreter.
func callInterp(t *testing.T, expr string) []string {
	t.Helper()
	src, err := os.ReadFile("testdata/program.jn")
	if err != nil {
		t.Fatal(err)
	}
	in := interp.New()
	if err := in.LoadProgram(string(src)); err != nil {
		t.Fatal(err)
	}
	vs, err := in.Eval(expr, 1000)
	if err != nil {
		t.Fatalf("interp %s: %v", expr, err)
	}
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = value.Image(v)
	}
	return out
}

// TestTranslatedMatchesInterpreted is the migration-correctness check: the
// translated (native Go) program and the interpreted program produce
// identical result sequences.
func TestTranslatedMatchesInterpreted(t *testing.T) {
	cases := []struct {
		name string
		args []value.V
		expr string
	}{
		{"primesUpTo", []value.V{value.NewInt(20)}, "primesUpTo(20)"},
		{"sq", []value.V{value.NewInt(7)}, "sq(7)"},
		{"sumList", []value.V{value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3))}, "sumList([1,2,3])"},
		{"pipelineSquares", []value.V{value.NewInt(5)}, "pipelineSquares(5)"},
		{"classify", []value.V{value.NewInt(3)}, "classify(3)"},
		{"classify", []value.V{value.NewInt(9)}, "classify(9)"},
		{"countdown", []value.V{value.NewInt(4)}, "countdown(4)"},
	}
	for _, c := range cases {
		got := callGen(t, c.name, c.args...)
		want := callInterp(t, c.expr)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Errorf("%s: translated %v != interpreted %v", c.expr, got, want)
		}
	}
}

func TestTranslatedChunkAndSpawnMap(t *testing.T) {
	// chunk(<>(1 to 10), 4) through the translated code: build the
	// co-expression with the kernel and pass it in.
	got := callGen(t, "chunk", core.NewFirstClass(core.IntRange(1, 10)), value.NewInt(4))
	want := []string{"[1,2,3,4]", "[5,6,7,8]", "[9,10]"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("chunk = %v", got)
	}
	// spawnMap(sq, [1,2,3]) — the Figure 5 procedure end to end.
	sqCell := gen.Globals["sq"]
	chunk := value.NewList(value.NewInt(1), value.NewInt(2), value.NewInt(3))
	got = callGen(t, "spawnMap", sqCell.Get(), chunk)
	want = []string{"1", "4", "9"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("spawnMap = %v", got)
	}
}

func TestTranslatedGlobalsAndRun(t *testing.T) {
	gen.Run()
	total, ok := gen.Globals["total"]
	if !ok {
		t.Fatal("global total missing")
	}
	if value.Image(total.Get()) != "0" {
		t.Fatalf("total = %s", value.Image(total.Get()))
	}
}

func TestTranslateErrors(t *testing.T) {
	if _, err := translate.TranslateProgram("def f( {", translate.Options{}); err == nil {
		t.Fatal("parse error should surface")
	}
	if _, err := translate.TranslateProgram("suspend 1", translate.Options{}); err == nil {
		t.Fatal("suspend outside procedure should be rejected")
	}
}

func TestTranslateRecord(t *testing.T) {
	out, err := translate.TranslateProgram("record point(x, y)", translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `value.NewRecord("point"`) {
		t.Fatalf("record constructor missing:\n%s", out)
	}
}

func TestNativeRegistrationPath(t *testing.T) {
	// Natives map is exposed for host interop.
	gen.Natives["hostDouble"] = value.NewNative("hostDouble", func(args ...value.V) (value.V, error) {
		return value.Mul(args[0], value.NewInt(2)), nil
	})
	defer delete(gen.Natives, "hostDouble")
	src := `def useNative(x) { return this::hostDouble(x); }`
	out, err := translate.TranslateProgram(src, translate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `native("hostDouble")`) {
		t.Fatalf("native lookup missing:\n%s", out)
	}
}

// TestClassDualExposure pins the §5C duality: the translated class exposes
// plain fields for host code and reified views for embedded code, with
// assignments visible on both sides.
func TestClassDualExposure(t *testing.T) {
	o := gen.NewCounter(value.NewInt(2))
	// Embedded method mutates the field through the reified view...
	got := core.Drain(o.Incr.Call(value.NewInt(3)), 0)
	if len(got) != 1 || value.Image(got[0]) != "5" {
		t.Fatalf("incr(3) = %v", got)
	}
	// ...and the host sees it through the plain field.
	if value.Image(o.Count) != "5" {
		t.Fatalf("plain field = %s", value.Image(o.Count))
	}
	// Host writes the plain field; embedded code observes it.
	o.Count = value.NewInt(3)
	if n := core.Count(o.Upto.Call()); n != 3 {
		t.Fatalf("upto after host write = %d results", n)
	}
	// The reified view reads through to the same storage.
	if value.Image(o.Count_r.Get()) != "3" {
		t.Fatalf("reified view = %s", value.Image(o.Count_r.Get()))
	}
	o.Count_r.Set(value.NewInt(1))
	if value.Image(o.Count) != "1" {
		t.Fatalf("plain after reified set = %s", value.Image(o.Count))
	}
}

// TestClassConstructorFromEmbeddedCode: the constructor procedure yields a
// record view with reference semantics over the reified fields.
func TestClassConstructorFromEmbeddedCode(t *testing.T) {
	cell, ok := gen.Globals["Counter"]
	if !ok {
		t.Fatal("Counter constructor not registered")
	}
	p := cell.Get().(*value.Proc)
	inst := core.Drain(p.Call(value.NewInt(7)), 0)
	if len(inst) != 1 {
		t.Fatalf("constructor results = %d", len(inst))
	}
	rec, ok := inst[0].(*value.Record)
	if !ok {
		t.Fatalf("instance = %T", inst[0])
	}
	countRef, _ := rec.GetField("count")
	if value.Image(value.Deref(countRef)) != "7" {
		t.Fatalf("count = %s", value.Image(value.Deref(countRef)))
	}
	incrRef, _ := rec.GetField("incr")
	incr := value.Deref(incrRef).(*value.Proc)
	core.Drain(incr.Call(value.NewInt(1)), 0)
	if value.Image(value.Deref(countRef)) != "8" {
		t.Fatalf("count after incr = %s", value.Image(value.Deref(countRef)))
	}
}

// TestTranslatedStaticsAndInitial: static state persists across calls of
// the translated procedure, and initial runs once.
func TestTranslatedStaticsAndInitial(t *testing.T) {
	if got := callGen(t, "ticker"); len(got) != 1 || got[0] != "1" {
		t.Fatalf("first tick = %v", got)
	}
	if got := callGen(t, "ticker"); got[0] != "2" {
		t.Fatalf("second tick = %v", got)
	}
	if got := callGen(t, "ticker"); got[0] != "3" {
		t.Fatalf("third tick = %v", got)
	}
}

// TestOptimizedTranslationShape pins the facts-driven emission forms of
// Options.Optimize: a statically pure pipe body compiles to an inline
// proxy (no goroutine, no queue) and a pure ≤1-yield product prefix to
// core.FusedProduct — and that without Optimize neither form appears.
func TestOptimizedTranslationShape(t *testing.T) {
	const src = `
def fusedSite (xs) {
  suspend ! (|> ((1 to 3) * 2));
}
def prefixSite (g) {
  suspend g(1 + 2, 3 * 4);
}
`
	plain, err := translate.TranslateProgram(src, translate.Options{Package: "gen"})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	for _, banned := range []string{"pipe.NewInline(", "core.FusedProduct("} {
		if strings.Contains(plain, banned) {
			t.Errorf("unoptimized output contains %q", banned)
		}
	}

	opt, err := translate.TranslateProgram(src, translate.Options{Package: "gen", Optimize: true})
	if err != nil {
		t.Fatalf("translate optimized: %v", err)
	}
	for _, want := range []string{"pipe.NewInline(", "core.FusedProduct("} {
		if !strings.Contains(opt, want) {
			t.Errorf("optimized output missing %q\n----\n%s", want, opt)
		}
	}
}
