// Package translate emits Go source from normalized Junicon syntax trees —
// the migration stage of the paper (§5, Figure 5): each procedure becomes a
// host-language function whose body is a composition of kernel-iterator
// constructors over reified parameters and temporaries, exposed as a
// variadic procedure value.
//
// Where Figure 5 emits `new IconProduct(new IconIn(x_1_r, …),
// new IconPromote(x_1_r))` for Java, this package emits
// `core.Product(core.In(x_1_r, …), core.Promote(core.Unit(x_1_r)))` for Go.
// Generated files are self-contained: they depend only on the kernel
// packages, resolve free names through a package-level global scope
// initialized with the builtin library, and expose a Natives map for host
// interop (the :: calls of §4).
package translate

import (
	"errors"
	"fmt"
	"go/format"
	"io"
	"os"
	"sort"
	"strings"

	"junicon/internal/analyze"
	"junicon/internal/ast"
	"junicon/internal/parser"
	"junicon/internal/transform"
)

// Options configures code generation.
type Options struct {
	// Package is the generated package name (default "translated").
	Package string
	// Diagnostics receives analyzer warnings from the pre-translation gate
	// (nil selects standard error).
	Diagnostics io.Writer
	// Known reports names bound by the host environment, suppressing
	// never-assigned diagnostics for them. May be nil.
	Known func(name string) bool
	// NoVet disables the pre-translation analyzer gate entirely.
	NoVet bool
	// Optimize enables facts-driven emission: pure ≤1-yield product
	// prefixes compile to core.FusedProduct, strictly pure pipes to
	// pipe.NewInline, bounded pipes to bound-sized buffers, and ≤1-yield
	// top-level statements skip the core.Bound wrapper. Off by default so
	// generated output is stable; semantics are identical either way.
	Optimize bool
}

// TranslateProgram parses, normalizes and translates a whole Junicon
// program to a Go source file. Before emitting, the program passes
// through the static analyzer: warnings go to opts.Diagnostics, errors
// abort the translation — code that is statically wrong under the
// calculus is not worth migrating.
func TranslateProgram(src string, opts Options) (string, error) {
	prog, perr := parser.ParseProgram(src)
	if perr != nil {
		return "", perr
	}
	if !opts.NoVet {
		if err := vetGate(prog, opts); err != nil {
			return "", err
		}
	}
	norm := transform.Normalize(prog).(*ast.Program)
	e := newEmitter(opts)
	if opts.Optimize {
		// Facts are computed over the normalized tree — the one being
		// emitted — so the emitter can consult them by node identity.
		_, e.facts = analyze.ProgramFacts(norm, analyze.Options{Known: opts.Known})
	}
	out, err := e.program(norm)
	if err != nil {
		return "", err
	}
	pretty, ferr := format.Source([]byte(out))
	if ferr != nil {
		// A formatting failure is a generator bug; return the raw source so
		// the caller (and tests) can see what was produced.
		return out, fmt.Errorf("translate: generated invalid Go: %w", ferr)
	}
	return string(pretty), nil
}

// vetGate runs the analyzer over the parsed program: warnings are printed,
// errors abort the emit.
func vetGate(prog *ast.Program, opts Options) error {
	diags := analyze.Program(prog, analyze.Options{Known: opts.Known})
	w := opts.Diagnostics
	if w == nil {
		w = os.Stderr
	}
	var errLines []string
	for _, d := range diags {
		if d.Severity == analyze.Error {
			errLines = append(errLines, "  "+d.String())
		} else {
			fmt.Fprintln(w, d)
		}
	}
	if len(errLines) > 0 {
		return errors.New("translate: program fails static checks:\n" + strings.Join(errLines, "\n"))
	}
	return nil
}

// emitter carries generation state.
type emitter struct {
	opts  Options
	buf   strings.Builder
	depth int
	// scope holds the names that are cells in the current procedure
	// (parameters, locals, temporaries); anything else resolves globally.
	scope map[string]bool
	// facts is the whole-program fact table when Options.Optimize is set
	// (nil otherwise — every consultation is nil-safe and conservative).
	facts *analyze.Facts
	errs  []string
}

func newEmitter(opts Options) *emitter {
	if opts.Package == "" {
		opts.Package = "translated"
	}
	return &emitter{opts: opts}
}

func (e *emitter) linef(format string, args ...any) {
	e.buf.WriteString(strings.Repeat("\t", e.depth))
	fmt.Fprintf(&e.buf, format, args...)
	e.buf.WriteByte('\n')
}

func (e *emitter) errf(format string, args ...any) {
	e.errs = append(e.errs, fmt.Sprintf(format, args...))
}

// cell returns the Go identifier of a reified cell, in the paper's _r
// naming style.
func cell(name string) string { return "v_" + name + "_r" }

// procVar returns the Go identifier of a translated procedure value.
func procVar(name string) string { return "P_" + name }

func (e *emitter) program(p *ast.Program) (string, error) {
	var procs []*ast.ProcDecl
	var records []*ast.RecordDecl
	var classes []*ast.ClassDecl
	var globals []string
	var topLevel []ast.Node
	for _, d := range p.Decls {
		switch x := d.(type) {
		case *ast.ProcDecl:
			procs = append(procs, x)
		case *ast.RecordDecl:
			records = append(records, x)
		case *ast.GlobalDecl:
			globals = append(globals, x.Names...)
		case *ast.ClassDecl:
			classes = append(classes, x)
		default:
			topLevel = append(topLevel, d)
		}
	}

	e.linef("// Code generated by junicon translate; DO NOT EDIT.")
	e.linef("")
	e.linef("// Package %s holds the Go translation of an embedded Junicon program", e.opts.Package)
	e.linef("// (§5: migration by flattening to compositions of kernel iterators).")
	e.linef("package %s", e.opts.Package)
	e.linef("")
	e.linef("import (")
	e.depth++
	e.linef(`"os"`)
	e.linef(`"sync"`)
	e.linef("")
	e.linef(`"junicon/internal/coexpr"`)
	e.linef(`"junicon/internal/core"`)
	e.linef(`"junicon/internal/pipe"`)
	e.linef(`"junicon/internal/value"`)
	e.depth--
	e.linef(")")
	e.linef("")
	e.linef("// Globals is the translated program's global scope.")
	e.linef("var Globals = map[string]*value.Var{}")
	e.linef("")
	e.linef("// Natives is the host-interop registry for :: invocations.")
	e.linef("var Natives = map[string]*value.Native{}")
	e.linef("")
	e.linef("// scanHolder carries this program's string-scanning environment.")
	e.linef("var scanHolder = core.NewScanHolder()")
	e.linef("")
	e.linef("var builtins = func() map[string]value.V {")
	e.depth++
	e.linef("b := core.Builtins(os.Stdout)")
	e.linef("for k, v := range core.ScanBuiltins(scanHolder) {")
	e.linef("\tb[k] = v")
	e.linef("}")
	e.linef("return b")
	e.depth--
	e.linef("}()")
	e.linef("")
	e.linef("// resolve finds a name: globals first, then builtins; unknown names")
	e.linef("// are created as globals on first use.")
	e.linef("func resolve(name string) *value.Var {")
	e.depth++
	e.linef("if v, ok := Globals[name]; ok {")
	e.linef("\treturn v")
	e.linef("}")
	e.linef("if b, ok := builtins[name]; ok {")
	e.linef("\treturn value.NewCell(b)")
	e.linef("}")
	e.linef("v := value.NewCell(value.NullV)")
	e.linef("Globals[name] = v")
	e.linef("return v")
	e.depth--
	e.linef("}")
	e.linef("")
	e.linef("func native(name string) *value.Native {")
	e.depth++
	e.linef("if n, ok := Natives[name]; ok {")
	e.linef("\treturn n")
	e.linef("}")
	e.linef(`value.Raise(value.ErrProcedure, "unregistered native ::"+name, nil)`)
	e.linef(`panic("unreachable")`)
	e.depth--
	e.linef("}")
	e.linef("")
	e.linef("// intLit and realLit parse numeric literals at package-init time.")
	e.linef("func intLit(s string) value.V {")
	e.depth++
	e.linef("i, ok := value.ToInteger(value.String(s))")
	e.linef("if !ok {")
	e.linef("\tvalue.Raise(value.ErrInteger, \"malformed integer literal\", value.String(s))")
	e.linef("}")
	e.linef("return i")
	e.depth--
	e.linef("}")
	e.linef("")
	e.linef("func realLit(s string) value.V {")
	e.depth++
	e.linef("r, ok := value.ToReal(value.String(s))")
	e.linef("if !ok {")
	e.linef("\tvalue.Raise(value.ErrNumeric, \"malformed real literal\", value.String(s))")
	e.linef("}")
	e.linef("return r")
	e.depth--
	e.linef("}")
	e.linef("")
	e.linef("// initCell (re)initializes a declared local from its initializer.")
	e.linef("func initCell(cell *value.Var, init core.Gen) core.Gen {")
	e.depth++
	e.linef("return core.Defer(func() core.Gen {")
	e.depth++
	e.linef("if v, ok := core.First(init); ok {")
	e.linef("\tcell.Set(v)")
	e.linef("} else {")
	e.linef("\tcell.Set(value.NullV)")
	e.linef("}")
	e.linef("init.Restart()")
	e.linef("return core.Unit(value.NullV)")
	e.depth--
	e.linef("})")
	e.depth--
	e.linef("}")
	e.linef("")
	e.linef("// suppress unused-import warnings for programs not using every feature")
	e.linef("var (")
	e.depth++
	e.linef("_ = coexpr.Simple")
	e.linef("_ = pipe.New")
	e.linef("_ = intLit")
	e.linef("_ = realLit")
	e.linef("_ = initCell")
	e.linef("_ = native")
	e.linef("_ = sync.Once{}")
	e.depth--
	e.linef(")")
	e.linef("")

	for _, r := range records {
		e.record(r)
	}
	for _, c := range classes {
		e.classDual(c)
	}
	for _, pd := range procs {
		e.proc(pd)
	}

	// init wires translated procedures and declared globals into scope.
	e.linef("func init() {")
	e.depth++
	for _, g := range dedup(globals) {
		e.linef("Globals[%q] = value.NewCell(value.NullV)", g)
	}
	for _, r := range records {
		e.linef("Globals[%q] = value.NewCell(%s)", r.Name, procVar(r.Name))
	}
	for _, c := range classes {
		e.linef("Globals[%q] = value.NewCell(%sProc)", c.Name, goName(c.Name))
	}
	for _, pd := range procs {
		e.linef("Globals[%q] = value.NewCell(%s)", pd.Name, procVar(pd.Name))
	}
	e.depth--
	e.linef("}")
	e.linef("")

	// Run executes top-level statements (bounded, in order).
	e.linef("// Run executes the program's top-level statements.")
	e.linef("func Run() {")
	e.depth++
	if len(topLevel) == 0 {
		e.linef("// no top-level statements")
	}
	e.scope = map[string]bool{}
	for _, s := range topLevel {
		if e.facts.BoundedOnce(s) {
			// At most one result and no pipes to release: the Bound
			// wrapper's cut-and-restart bookkeeping is dead weight.
			e.linef("%s.Next()", e.expr(s))
		} else {
			e.linef("core.Bound(%s).Next()", e.expr(s))
		}
	}
	e.depth--
	e.linef("}")

	if len(e.errs) > 0 {
		return "", fmt.Errorf("translate: %s", strings.Join(e.errs, "; "))
	}
	return e.buf.String(), nil
}

func dedup(names []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

func (e *emitter) record(r *ast.RecordDecl) {
	e.linef("// %s is the constructor for record %s(%s).", procVar(r.Name), r.Name, strings.Join(r.Fields, ", "))
	e.linef("var %s = value.NewProc(%q, %d, func(args ...value.V) core.Gen {", procVar(r.Name), r.Name, len(r.Fields))
	e.depth++
	e.linef("vals := make([]value.V, len(args))")
	e.linef("for i, a := range args {")
	e.linef("\tvals[i] = value.Deref(a)")
	e.linef("}")
	fields := make([]string, len(r.Fields))
	for i, f := range r.Fields {
		fields[i] = fmt.Sprintf("%q", f)
	}
	e.linef("return core.Unit(value.NewRecord(%q, []string{%s}, vals))", r.Name, strings.Join(fields, ", "))
	e.depth--
	e.linef("})")
	e.linef("")
}

// proc translates one procedure declaration — the Figure 5 shape: reified
// parameters, reified locals and temporaries, parameter unpacking, then the
// method body as a suspendable iterator.
func (e *emitter) proc(p *ast.ProcDecl) {
	outer := e.scope
	e.scope = map[string]bool{}
	for _, param := range p.Params {
		e.scope[param] = true
	}
	// Statics and initial clauses: per-procedure persistent state (§Icon).
	statics, hasInitial := staticInfo(p)
	for _, st := range statics {
		e.scope[st] = true
	}
	var locals []string
	for _, l := range collectLocals(p) {
		if !e.scope[l] {
			locals = append(locals, l)
			e.scope[l] = true
		}
	}
	persistent := len(statics) > 0 || hasInitial

	e.linef("// %s translates Junicon procedure %s(%s).", procVar(p.Name), p.Name, strings.Join(p.Params, ", "))
	if persistent {
		e.linef("var %s = func() *value.Proc {", procVar(p.Name))
		e.depth++
		e.linef("var staticOnce sync.Once")
		for _, st := range statics {
			e.linef("%s := value.NewCell(value.NullV) // static", cell(st))
		}
		e.linef("return value.NewProc(%q, %d, func(args ...value.V) core.Gen {", p.Name, len(p.Params))
	} else {
		e.linef("var %s = value.NewProc(%q, %d, func(args ...value.V) core.Gen {", procVar(p.Name), p.Name, len(p.Params))
	}
	e.depth++
	if len(p.Params) > 0 {
		e.linef("// Reified parameters")
		for _, param := range p.Params {
			e.linef("%s := value.NewCell(value.NullV)", cell(param))
		}
		e.linef("// Unpack parameters (variadic: missing arguments stay null)")
		for i, param := range p.Params {
			e.linef("if len(args) > %d {", i)
			e.linef("\t%s.Set(value.Deref(args[%d]))", cell(param), i)
			e.linef("}")
		}
	} else {
		e.linef("_ = args")
	}
	if len(locals) > 0 {
		e.linef("// Reified locals and temporaries")
		for _, l := range locals {
			e.linef("%s := value.NewCell(value.NullV)", cell(l))
		}
	}
	e.linef("// Method body")
	e.linef("return core.NewGen(func(yield func(value.V) bool) {")
	e.depth++
	if persistent {
		e.linef("staticOnce.Do(func() {")
		e.depth++
		for _, st := range p.Body.Stmts {
			switch x := st.(type) {
			case *ast.VarDecl:
				if x.Kind == "static" {
					for i, n := range x.Names {
						if x.Inits[i] == nil {
							continue
						}
						e.linef("if v, ok := core.First(%s); ok {", e.expr(x.Inits[i]))
						e.linef("	%s.Set(v)", e.cellRef(n))
						e.linef("}")
					}
				}
			case *ast.Initial:
				e.stmt(x.Body)
			}
		}
		e.depth--
		e.linef("})")
	}
	e.stmts(p.Body.Stmts)
	e.depth--
	e.linef("})")
	e.depth--
	e.linef("})")
	if persistent {
		e.depth--
		e.linef("}()")
	}
	e.linef("")
	e.scope = outer
}

// staticInfo reports a procedure's static variable names and whether it has
// an initial clause.
func staticInfo(p *ast.ProcDecl) (statics []string, hasInitial bool) {
	for _, s := range p.Body.Stmts {
		switch x := s.(type) {
		case *ast.VarDecl:
			if x.Kind == "static" {
				statics = append(statics, x.Names...)
			}
		case *ast.Initial:
			hasInitial = true
		}
	}
	return statics, hasInitial
}

// collectLocals gathers names that behave as procedure locals: declared
// ones, assignment targets, bound-iteration temporaries — everything except
// names that are only read (those resolve globally).
func collectLocals(p *ast.ProcDecl) []string {
	params := map[string]bool{}
	for _, param := range p.Params {
		params[param] = true
	}
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if name == "" || params[name] || seen[name] {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	ast.Walk(p.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.VarDecl:
			for _, name := range x.Names {
				add(name)
			}
		case *ast.BindIn:
			add(x.Tmp)
		case *ast.Binary:
			if x.Op == ":=" || x.Op == "<-" || x.Op == ":=:" || x.Op == "<->" ||
				(len(x.Op) > 2 && strings.HasSuffix(x.Op, ":=")) {
				if id, ok := x.L.(*ast.Ident); ok {
					add(id.Name)
				}
				if x.Op == ":=:" || x.Op == "<->" {
					if id, ok := x.R.(*ast.Ident); ok {
						add(id.Name)
					}
				}
			}
		}
		return true
	})
	return out
}
