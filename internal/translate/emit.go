package translate

import (
	"fmt"
	"strings"

	"junicon/internal/ast"
)

// expr emits a Go expression of type core.Gen for one syntax node — the
// composition-of-constructors form of Figure 5.
func (e *emitter) expr(n ast.Node) string {
	switch x := n.(type) {
	case nil:
		return "core.Unit(value.NullV)"
	case *ast.IntLit:
		return fmt.Sprintf("core.Unit(intLit(%q))", x.Text)
	case *ast.RealLit:
		return fmt.Sprintf("core.Unit(realLit(%q))", x.Text)
	case *ast.StrLit:
		return fmt.Sprintf("core.Unit(value.String(%q))", x.Value)
	case *ast.CsetLit:
		return fmt.Sprintf("core.Unit(value.NewCset(%q))", x.Value)
	case *ast.Keyword:
		switch x.Name {
		case "null":
			return "core.Unit(value.NullV)"
		case "fail":
			return "core.Empty()"
		case "lcase":
			return "core.Unit(value.CsetLcase)"
		case "ucase":
			return "core.Unit(value.CsetUcase)"
		case "digits":
			return "core.Unit(value.CsetDigits)"
		case "letters":
			return "core.Unit(value.CsetLetters)"
		default:
			e.errf("unknown keyword &%s", x.Name)
			return "core.Empty()"
		}
	case *ast.Ident:
		return fmt.Sprintf("core.Unit(%s)", e.cellRef(x.Name))
	case *ast.TmpRef:
		return fmt.Sprintf("core.Unit(%s)", e.cellRef(x.Name))
	case *ast.ListLit:
		elems := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = e.expr(el)
		}
		return fmt.Sprintf("core.ListOf(%s)", strings.Join(elems, ", "))

	case *ast.FlatProduct:
		terms := make([]string, len(x.Terms))
		for i, t := range x.Terms {
			terms[i] = e.expr(t)
		}
		// Facts-driven fusion (Options.Optimize): a pure ≤1-yield prefix
		// is evaluated once instead of re-driven per backtrack cycle.
		if k := e.facts.FusablePrefix(x.Terms); k > 0 {
			return fmt.Sprintf("core.FusedProduct([]core.Gen{\n%s}, core.Product(\n%s))",
				indentArgs(terms[:k]), indentArgs(terms[k:]))
		}
		return fmt.Sprintf("core.Product(\n%s)", indentArgs(terms))
	case *ast.BindIn:
		return fmt.Sprintf("core.In(%s, %s)", e.cellRef(x.Tmp), e.expr(x.E))

	case *ast.Binary:
		return e.binary(x)
	case *ast.Unary:
		return e.unary(x)
	case *ast.ToBy:
		by := "nil"
		if x.By != nil {
			by = e.expr(x.By)
		}
		return fmt.Sprintf("core.ToBy(%s, %s, %s)", e.expr(x.Lo), e.expr(x.Hi), by)

	case *ast.Call:
		args := make([]string, 0, len(x.Args)+1)
		args = append(args, e.expr(x.Fun))
		for _, a := range x.Args {
			args = append(args, e.expr(a))
		}
		return fmt.Sprintf("core.Invoke(%s)", strings.Join(args, ", "))
	case *ast.NativeCall:
		args := make([]string, 0, len(x.Args)+2)
		args = append(args, fmt.Sprintf("core.Unit(native(%q))", x.Name))
		if x.Recv != nil {
			args = append(args, e.expr(x.Recv))
		}
		for _, a := range x.Args {
			args = append(args, e.expr(a))
		}
		return fmt.Sprintf("core.Invoke(%s)", strings.Join(args, ", "))
	case *ast.Index:
		return fmt.Sprintf("core.IndexGen(%s, %s)", e.expr(x.X), e.expr(x.I))
	case *ast.Slice:
		return fmt.Sprintf("core.SectionGen(%s, %s, %s)", e.expr(x.X), e.expr(x.I), e.expr(x.J))
	case *ast.Field:
		return fmt.Sprintf("core.FieldGen(%s, %q)", e.expr(x.X), x.Name)

	case *ast.Block:
		if len(x.Stmts) == 0 {
			return "core.Unit(value.NullV)"
		}
		stmts := make([]string, len(x.Stmts))
		for i, s := range x.Stmts {
			stmts[i] = e.expr(s)
		}
		return fmt.Sprintf("core.Sequence(\n%s)", indentArgs(stmts))
	case *ast.VarDecl:
		// Cells already declared at procedure level; emit the
		// (re)initialization as a deferred unit.
		parts := make([]string, 0, len(x.Names))
		for i, name := range x.Names {
			init := "core.Unit(value.NullV)"
			if x.Inits[i] != nil {
				init = e.expr(x.Inits[i])
			}
			parts = append(parts, fmt.Sprintf("initCell(%s, %s)", e.cellRef(name), init))
		}
		if len(parts) == 1 {
			return parts[0]
		}
		return fmt.Sprintf("core.Sequence(\n%s)", indentArgs(parts))
	case *ast.If:
		els := "nil"
		if x.Else != nil {
			els = e.expr(x.Else)
		}
		return fmt.Sprintf("core.IfThen(%s, %s, %s)", e.expr(x.Cond), e.expr(x.Then), els)
	case *ast.While:
		body := "nil"
		if x.Body != nil {
			body = e.expr(x.Body)
		}
		if x.Until {
			return fmt.Sprintf("core.Until(%s, %s)", e.expr(x.Cond), body)
		}
		return fmt.Sprintf("core.While(%s, %s)", e.expr(x.Cond), body)
	case *ast.Every:
		body := "nil"
		if x.Body != nil {
			body = e.expr(x.Body)
		}
		return fmt.Sprintf("core.Every(%s, %s)", e.expr(x.E), body)
	case *ast.Repeat:
		return fmt.Sprintf("core.RepeatLoop(%s)", e.expr(x.Body))
	case *ast.Case:
		var clauses []string
		deflt := "nil"
		for _, c := range x.Clauses {
			if c.Sel == nil {
				deflt = e.expr(c.Body)
				continue
			}
			clauses = append(clauses,
				fmt.Sprintf("{Sel: %s, Body: %s}", e.expr(c.Sel), e.expr(c.Body)))
		}
		return fmt.Sprintf("core.Case(%s, []core.CaseClause{%s}, %s)",
			e.expr(x.Subject), strings.Join(clauses, ", "), deflt)
	case *ast.Break:
		arg := "nil"
		if x.E != nil {
			arg = e.expr(x.E)
		}
		return fmt.Sprintf("core.BreakGen(%s)", arg)
	case *ast.NextStmt:
		return "core.NextGen()"
	case *ast.Fail:
		return "core.Empty()"
	case *ast.Return, *ast.Suspend:
		e.errf("return/suspend in expression position at %s", fmtPos(n.Pos()))
		return "core.Empty()"
	}
	e.errf("cannot translate node %T at %s", n, fmtPos(n.Pos()))
	return "core.Empty()"
}

func fmtPos(p ast.Pos) string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// cellRef emits the Go expression denoting a variable's reified cell: a
// procedure cell when local, otherwise a global resolution.
func (e *emitter) cellRef(name string) string {
	if e.scope[name] {
		return cell(name)
	}
	return fmt.Sprintf("resolve(%q)", name)
}

// indentArgs lays out multi-line constructor arguments; the emitted file is
// passed through go/format, so only syntactic validity matters here.
func indentArgs(args []string) string {
	return strings.Join(args, ",\n") + ","
}

func (e *emitter) binary(x *ast.Binary) string {
	switch x.Op {
	case "&":
		return fmt.Sprintf("core.Product(%s, %s)", e.expr(x.L), e.expr(x.R))
	case "|":
		return fmt.Sprintf("core.Alt(%s, %s)", e.expr(x.L), e.expr(x.R))
	case ":=":
		if ref, ok := e.directCell(x.L); ok {
			return fmt.Sprintf("core.AssignVar(%s, %s)", ref, e.expr(x.R))
		}
		return fmt.Sprintf("core.Assign(%s, %s)", e.lvalue(x.L), e.expr(x.R))
	case "<-":
		return fmt.Sprintf("core.RevAssignTo(%s, %s)", e.lvalue(x.L), e.expr(x.R))
	case ":=:":
		return fmt.Sprintf("core.SwapTo(%s, %s)", e.lvalue(x.L), e.lvalue(x.R))
	case "<->":
		return fmt.Sprintf("core.RevSwapTo(%s, %s)", e.lvalue(x.L), e.lvalue(x.R))
	case "@":
		return fmt.Sprintf("core.ActivateGen(%s, %s)", e.expr(x.L), e.expr(x.R))
	case "\\":
		return fmt.Sprintf("core.LimitGen(%s, %s)", e.expr(x.L), e.expr(x.R))
	case "?":
		return fmt.Sprintf(
			"core.ScanExpr(scanHolder, %s, func() core.Gen {\n\treturn %s\n})",
			e.expr(x.L), e.expr(x.R))
	}
	if fn, ok := arithName(x.Op); ok {
		return fmt.Sprintf("core.Op2(%s, %s, %s)", fn, e.expr(x.L), e.expr(x.R))
	}
	if fn, ok := compareName(x.Op); ok {
		return fmt.Sprintf("core.Cmp2(%s, %s, %s)", fn, e.expr(x.L), e.expr(x.R))
	}
	if len(x.Op) > 2 && strings.HasSuffix(x.Op, ":=") {
		base := x.Op[:len(x.Op)-2]
		if fn, ok := arithName(base); ok {
			return fmt.Sprintf("core.AugAssignTo(%s, %s, %s)", fn, e.lvalue(x.L), e.expr(x.R))
		}
		if fn, ok := compareName(base); ok {
			return fmt.Sprintf("core.CmpAugAssignTo(%s, %s, %s)", fn, e.lvalue(x.L), e.expr(x.R))
		}
	}
	e.errf("unknown operator %s at %s", x.Op, fmtPos(x.P))
	return "core.Empty()"
}

// directCell reports a plain identifier target's cell expression.
func (e *emitter) directCell(n ast.Node) (string, bool) {
	switch t := n.(type) {
	case *ast.Ident:
		return e.cellRef(t.Name), true
	case *ast.TmpRef:
		return e.cellRef(t.Name), true
	}
	return "", false
}

// lvalue emits a generator of assignable variables for a target.
func (e *emitter) lvalue(n ast.Node) string {
	switch t := n.(type) {
	case *ast.Ident:
		return fmt.Sprintf("core.Unit(%s)", e.cellRef(t.Name))
	case *ast.TmpRef:
		return fmt.Sprintf("core.Unit(%s)", e.cellRef(t.Name))
	case *ast.Index:
		return fmt.Sprintf("core.IndexGen(%s, %s)", e.expr(t.X), e.expr(t.I))
	case *ast.Field:
		return fmt.Sprintf("core.FieldGen(%s, %q)", e.expr(t.X), t.Name)
	case *ast.Unary:
		if t.Op == "!" {
			return fmt.Sprintf("core.Promote(%s)", e.expr(t.X))
		}
	}
	return e.expr(n)
}

var arithGoNames = map[string]string{
	"+": "value.Add", "-": "value.Sub", "*": "value.Mul", "/": "value.Div",
	"%": "value.Mod", "^": "value.Pow", "||": "value.Concat",
	"|||": "value.ListConcat", "++": "value.Union", "--": "value.Difference",
	"**": "value.Intersection",
}

var compareGoNames = map[string]string{
	"<": "value.NumLt", "<=": "value.NumLe", ">": "value.NumGt",
	">=": "value.NumGe", "~=": "value.NumNe", "<<": "value.StrLt",
	"<<=": "value.StrLe", ">>": "value.StrGt", ">>=": "value.StrGe",
	"==": "value.StrEq", "~==": "value.StrNe", "===": "value.Same",
	"~===": "value.NotSame",
}

func arithName(op string) (string, bool)   { n, ok := arithGoNames[op]; return n, ok }
func compareName(op string) (string, bool) { n, ok := compareGoNames[op]; return n, ok }

func (e *emitter) unary(x *ast.Unary) string {
	switch x.Op {
	case "!":
		return fmt.Sprintf("core.Promote(%s)", e.expr(x.X))
	case "@":
		return fmt.Sprintf("core.ActivateGen(nil, %s)", e.expr(x.X))
	case "^":
		return fmt.Sprintf("core.Op1(core.Refresh, %s)", e.expr(x.X))
	case "*":
		return fmt.Sprintf("core.SizeOp(%s)", e.expr(x.X))
	case "-":
		return fmt.Sprintf("core.Op1(value.Neg, %s)", e.expr(x.X))
	case "+":
		return fmt.Sprintf("core.Op1(value.Pos, %s)", e.expr(x.X))
	case "~":
		return fmt.Sprintf("core.Op1(value.Complement, %s)", e.expr(x.X))
	case "/":
		return fmt.Sprintf("core.NullTest(%s)", e.expr(x.X))
	case "\\":
		return fmt.Sprintf("core.NonNullTest(%s)", e.expr(x.X))
	case "?":
		return fmt.Sprintf("core.RandomGen(%s)", e.expr(x.X))
	case "=":
		return fmt.Sprintf(
			"core.Apply1(func(v value.V) core.Gen { return builtins[\"tabMatch\"].(*value.Proc).Call(v) }, %s)",
			e.expr(x.X))
	case "|":
		return fmt.Sprintf("core.RepeatAlt(%s)", e.expr(x.X))
	case "not":
		return fmt.Sprintf("core.Not(%s)", e.expr(x.X))
	case "<>":
		return fmt.Sprintf(
			"core.Defer(func() core.Gen {\n\treturn core.Unit(core.NewFirstClass(%s))\n})",
			e.expr(x.X))
	case "|<>":
		return e.coexprCreate(x.X, false)
	case "|>":
		return e.coexprCreate(x.X, true)
	}
	e.errf("unknown unary operator %s", x.Op)
	return "core.Empty()"
}

// coexprCreate synthesizes co-expression (and pipe) creation with the
// shadowed environment of §5D. Referenced procedure cells are snapshotted
// and the body is emitted against the _s (shadow) cells — the chunk_s_r /
// f_s_r pattern of Figure 5.
func (e *emitter) coexprCreate(body ast.Node, piped bool) string {
	names := e.referencedCells(body)
	snapshot := make([]string, len(names))
	for i, name := range names {
		snapshot[i] = fmt.Sprintf("%s.Get()", cell(name))
	}
	// Emit the body against shadow cells.
	saved := e.scope
	shadow := map[string]bool{}
	for k, v := range saved {
		shadow[k] = v
	}
	e.scope = shadow
	// Alias: inside the closure, names refer to shadow cells declared from
	// env; implement by scoping names to local cells named <name>_s.
	var decl strings.Builder
	for i, name := range names {
		fmt.Fprintf(&decl, "\t\t%s := env[%d]\n", cell(name+"_s"), i)
	}
	inner := e.exprRenamed(body, names)
	e.scope = saved

	create := fmt.Sprintf(
		"coexpr.New([]value.V{%s}, func(env []*value.Var) core.Gen {\n%s\t\treturn %s\n\t})",
		strings.Join(snapshot, ", "), decl.String(), inner)
	if !piped {
		return fmt.Sprintf("core.Defer(func() core.Gen {\n\treturn core.Unit(%s)\n})", create)
	}
	// Facts-driven provisioning (Options.Optimize): strictly pure
	// producers run inline, bounded producers get a whole-sequence queue.
	strategy := e.facts.PipeStrategy(body)
	if strategy.Inline {
		return fmt.Sprintf(
			"core.Defer(func() core.Gen {\n\treturn core.Unit(pipe.NewInline(%s))\n})",
			create)
	}
	buffer := "pipe.DefaultBuffer"
	if strategy.Buffer > 0 {
		buffer = fmt.Sprintf("%d", strategy.Buffer)
	}
	return fmt.Sprintf(
		"core.Defer(func() core.Gen {\n\tp := pipe.New(%s, %s)\n\tp.StartEager()\n\treturn core.Unit(p)\n})",
		create, buffer)
}

// referencedCells lists procedure cells the body references, first-use
// order.
func (e *emitter) referencedCells(n ast.Node) []string {
	var names []string
	seen := map[string]bool{}
	ast.Walk(n, func(m ast.Node) bool {
		var name string
		switch id := m.(type) {
		case *ast.Ident:
			name = id.Name
		case *ast.TmpRef:
			name = id.Name
		default:
			return true
		}
		if !seen[name] && e.scope[name] {
			seen[name] = true
			names = append(names, name)
		}
		return true
	})
	return names
}

// exprRenamed emits body with the given names redirected to their shadow
// cells (name_s).
func (e *emitter) exprRenamed(body ast.Node, names []string) string {
	renamed := renameIdents(body, names)
	for _, n := range names {
		e.scope[n+"_s"] = true
	}
	return e.expr(renamed)
}

// renameIdents returns a copy of n with the given identifiers renamed to
// their _s shadow forms.
func renameIdents(n ast.Node, names []string) ast.Node {
	set := map[string]bool{}
	for _, name := range names {
		set[name] = true
	}
	return rename(n, set)
}
