package streams

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestOfCollect(t *testing.T) {
	got := Of(1, 2, 3).Collect()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMapFilterLimit(t *testing.T) {
	got := Map(FromSlice([]int{1, 2, 3, 4, 5, 6}).Filter(func(v int) bool { return v%2 == 0 }),
		func(v int) string { return strconv.Itoa(v * 10) }).Limit(2).Collect()
	if len(got) != 2 || got[0] != "20" || got[1] != "40" {
		t.Fatalf("got %v", got)
	}
}

func TestFlatMapOrder(t *testing.T) {
	got := FlatMap(Of("ab", "", "cd"), func(s string) []string {
		out := make([]string, len(s))
		for i := range s {
			out[i] = s[i : i+1]
		}
		return out
	}).Collect()
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestReduce(t *testing.T) {
	sum := Reduce(Of(1, 2, 3, 4), 0, func(a, v int) int { return a + v })
	if sum != 10 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestGenerateAndCount(t *testing.T) {
	i := 0
	s := Generate(func() (int, bool) {
		if i >= 7 {
			return 0, false
		}
		i++
		return i, true
	})
	if n := s.Count(); n != 7 {
		t.Fatalf("count = %d", n)
	}
}

func TestPeekSeesAllElements(t *testing.T) {
	var seen []int
	Of(1, 2, 3).Peek(func(v int) { seen = append(seen, v) }).Collect()
	if len(seen) != 3 {
		t.Fatalf("peek saw %v", seen)
	}
}

func TestChunks(t *testing.T) {
	cs := FromSlice([]int{1, 2, 3, 4, 5}).Chunks(2)
	if len(cs) != 3 || len(cs[0]) != 2 || len(cs[2]) != 1 {
		t.Fatalf("chunks = %v", cs)
	}
	if got := Of[int]().Chunks(3); len(got) != 0 {
		t.Fatalf("empty chunks = %v", got)
	}
}

func TestParallelMapReduceMatchesSequential(t *testing.T) {
	src := make([]int, 999)
	for i := range src {
		src[i] = i
	}
	f := func(v int) int { return v * v }
	seq := Reduce(Map(FromSlice(src), f), 0, func(a, v int) int { return a + v })
	par := ParallelMapReduce(FromSlice(src), ParallelConfig{Workers: 4, ChunkSize: 64},
		f, 0, func(a, v int) int { return a + v }, func(a, b int) int { return a + b })
	if seq != par {
		t.Fatalf("parallel %d != sequential %d", par, seq)
	}
}

func TestParallelMapPreservesOrder(t *testing.T) {
	src := make([]int, 500)
	for i := range src {
		src[i] = i
	}
	got := ParallelMap(FromSlice(src), ParallelConfig{Workers: 8, ChunkSize: 7},
		func(v int) int { return v * 2 }).Collect()
	if len(got) != len(src) {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*2 {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestPropParallelEqualsSequential(t *testing.T) {
	f := func(xs []int16, chunk uint8, workers uint8) bool {
		src := make([]int, len(xs))
		for i, x := range xs {
			src[i] = int(x)
		}
		mapf := func(v int) int { return v*3 + 1 }
		seq := Reduce(Map(FromSlice(src), mapf), 0, func(a, v int) int { return a + v })
		par := ParallelMapReduce(FromSlice(src),
			ParallelConfig{Workers: int(workers%4) + 1, ChunkSize: int(chunk%16) + 1},
			mapf, 0, func(a, v int) int { return a + v }, func(a, b int) int { return a + b })
		return seq == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPipelineStage(t *testing.T) {
	src := make([]int, 200)
	for i := range src {
		src[i] = i
	}
	out := PipelineStage(FromSlice(src), 4, func(v int) int { return v + 1 })
	got := out.Collect()
	if len(got) != 200 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("at %d: %d", i, v)
		}
	}
}

func TestTwoStagePipeline(t *testing.T) {
	s1 := PipelineStage(Of(1, 2, 3, 4), 2, func(v int) int { return v * v })
	s2 := PipelineStage(s1, 2, func(v int) int { return v + 100 })
	got := s2.Collect()
	want := []int{101, 104, 109, 116}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestLimitShortCircuitsInfiniteStream(t *testing.T) {
	n := 0
	inf := Generate(func() (int, bool) { n++; return n, true })
	got := inf.Limit(5).Collect()
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("got %v", got)
	}
}
