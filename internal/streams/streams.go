// Package streams is the native comparison substrate: a sequential and
// parallel stream library in the style of java.util.stream, against which
// the embedded concurrent generators are benchmarked (§VII). Parallel
// execution uses the chunked map-reduce decomposition of Figure 2 — "fixed
// data": partition the source, run all stages over each chunk on a worker
// pool, and merge chunk results in order (the generator formulation
// "enforces ordering between the results of the partitioned threads", §3B;
// the native substrate matches it so the two suites compute identical
// sequences).
package streams

import (
	"junicon/internal/pool"
	"junicon/internal/queue"
)

// Stream is a lazily-evaluated pipeline over elements of type T. Streams
// are single-use: a terminal operation consumes the source.
type Stream[T any] struct {
	next func() (T, bool)
}

// Of returns a stream over the given elements.
func Of[T any](elems ...T) *Stream[T] {
	i := 0
	return &Stream[T]{next: func() (T, bool) {
		if i >= len(elems) {
			var zero T
			return zero, false
		}
		v := elems[i]
		i++
		return v, true
	}}
}

// FromSlice streams the elements of s without copying.
func FromSlice[T any](s []T) *Stream[T] {
	i := 0
	return &Stream[T]{next: func() (T, bool) {
		if i >= len(s) {
			var zero T
			return zero, false
		}
		v := s[i]
		i++
		return v, true
	}}
}

// Generate streams values from fn until it reports ok == false.
func Generate[T any](fn func() (T, bool)) *Stream[T] { return &Stream[T]{next: fn} }

// Map applies f to each element.
func Map[T, U any](s *Stream[T], f func(T) U) *Stream[U] {
	return &Stream[U]{next: func() (U, bool) {
		v, ok := s.next()
		if !ok {
			var zero U
			return zero, false
		}
		return f(v), true
	}}
}

// FlatMap expands each element into a sub-stream, concatenated in order.
func FlatMap[T, U any](s *Stream[T], f func(T) []U) *Stream[U] {
	var cur []U
	i := 0
	return &Stream[U]{next: func() (U, bool) {
		for {
			if i < len(cur) {
				v := cur[i]
				i++
				return v, true
			}
			e, ok := s.next()
			if !ok {
				var zero U
				return zero, false
			}
			cur, i = f(e), 0
		}
	}}
}

// Filter keeps the elements satisfying pred.
func (s *Stream[T]) Filter(pred func(T) bool) *Stream[T] {
	return &Stream[T]{next: func() (T, bool) {
		for {
			v, ok := s.next()
			if !ok {
				var zero T
				return zero, false
			}
			if pred(v) {
				return v, true
			}
		}
	}}
}

// Limit truncates the stream to at most n elements.
func (s *Stream[T]) Limit(n int) *Stream[T] {
	return &Stream[T]{next: func() (T, bool) {
		if n <= 0 {
			var zero T
			return zero, false
		}
		n--
		return s.next()
	}}
}

// Peek invokes f on each element as it flows past.
func (s *Stream[T]) Peek(f func(T)) *Stream[T] {
	return &Stream[T]{next: func() (T, bool) {
		v, ok := s.next()
		if ok {
			f(v)
		}
		return v, ok
	}}
}

// ForEach consumes the stream, applying f to each element.
func (s *Stream[T]) ForEach(f func(T)) {
	for {
		v, ok := s.next()
		if !ok {
			return
		}
		f(v)
	}
}

// Collect consumes the stream into a slice.
func (s *Stream[T]) Collect() []T {
	var out []T
	s.ForEach(func(v T) { out = append(out, v) })
	return out
}

// Count consumes the stream and returns its length.
func (s *Stream[T]) Count() int {
	n := 0
	s.ForEach(func(T) { n++ })
	return n
}

// Reduce folds the stream left-to-right from init.
func Reduce[T, A any](s *Stream[T], init A, f func(A, T) A) A {
	acc := init
	s.ForEach(func(v T) { acc = f(acc, v) })
	return acc
}

// Chunks consumes the stream into slices of at most size elements.
func (s *Stream[T]) Chunks(size int) [][]T {
	if size < 1 {
		size = 1
	}
	var out [][]T
	cur := make([]T, 0, size)
	s.ForEach(func(v T) {
		cur = append(cur, v)
		if len(cur) == size {
			out = append(out, cur)
			cur = make([]T, 0, size)
		}
	})
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// ParallelConfig controls chunked parallel execution.
type ParallelConfig struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// ChunkSize is the partition size; <= 0 selects 1024.
	ChunkSize int
	// Window bounds the number of in-flight chunk tasks; <= 0 selects 2×
	// Workers. The source is consumed incrementally as tasks retire, so
	// memory stays O(Window·ChunkSize) rather than O(source).
	Window int
}

func (c ParallelConfig) chunk() int {
	if c.ChunkSize <= 0 {
		return 1024
	}
	return c.ChunkSize
}

func (c ParallelConfig) window(workers int) int {
	if c.Window > 0 {
		return c.Window
	}
	return 2 * workers
}

// chunkWindow drives the windowed chunk schedule shared by the parallel
// terminals: pull chunks from src into recycled backing slices, keep at
// most window tasks in flight, and hand each retired task's result (in
// chunk order) to consume. Chunk slices are recycled once their task's
// future has resolved — the worker no longer touches the chunk after that.
func chunkWindow[T, R any](src *Stream[T], size, window int, spawn func(chunk []T) *queue.Future[R], consume func(R) bool) {
	type task struct {
		fut   *queue.Future[R]
		chunk []T
	}
	var inflight []task
	var free [][]T
	srcDone := false
	for {
		for !srcDone && len(inflight) < window {
			var buf []T
			if n := len(free); n > 0 {
				buf, free = free[n-1], free[:n-1]
			} else {
				buf = make([]T, 0, size)
			}
			for len(buf) < size {
				v, ok := src.next()
				if !ok {
					srcDone = true
					break
				}
				buf = append(buf, v)
			}
			if len(buf) == 0 {
				break
			}
			inflight = append(inflight, task{fut: spawn(buf), chunk: buf})
		}
		if len(inflight) == 0 {
			return
		}
		t := inflight[0]
		n := copy(inflight, inflight[1:])
		inflight[n] = task{}
		inflight = inflight[:n]
		r, err := t.fut.Get()
		if err != nil {
			panic(err) // tasks here cannot fail except by program bug
		}
		clear(t.chunk)
		free = append(free, t.chunk[:0])
		if !consume(r) {
			return
		}
	}
}

// ParallelMapReduce is the parallel-stream map-reduce: partition the source
// into chunks, map f over each chunk and reduce the chunk with (init, r) on
// a worker pool, then combine per-chunk results in order with the same r.
// It is the native counterpart of Figure 4's mapReduce. Chunks are pulled
// from the source as earlier tasks complete (a sliding window of
// cfg.Window tasks), and chunk backing slices are recycled across the run.
func ParallelMapReduce[T, U, A any](src *Stream[T], cfg ParallelConfig, f func(T) U, init A, r func(A, U) A, combine func(A, A) A) A {
	p := pool.New(cfg.Workers)
	defer p.Shutdown()
	total := init
	chunkWindow(src, cfg.chunk(), cfg.window(p.Size()),
		func(ch []T) *queue.Future[A] {
			return pool.Submit(p, func() (A, error) {
				acc := init
				for _, v := range ch {
					acc = r(acc, f(v))
				}
				return acc, nil
			})
		},
		func(partial A) bool {
			total = combine(total, partial)
			return true
		})
	return total
}

// ParallelMap is the data-parallel variant that "splits out the reduction":
// chunks are mapped in parallel but the combined results are returned as a
// single ordered stream for serial downstream reduction (§VII's
// data-parallel word-count). Like ParallelMapReduce it runs a sliding
// window of chunk tasks, so results stream while the source is still being
// read and an abandoned stream never consumes more than one window.
func ParallelMap[T, U any](src *Stream[T], cfg ParallelConfig, f func(T) U) *Stream[U] {
	size := cfg.chunk()
	p := pool.New(cfg.Workers)
	window := cfg.window(p.Size())

	type task struct {
		fut   *queue.Future[[]U]
		chunk []T
	}
	var inflight []task
	var free [][]T
	srcDone, shut := false, false
	var cur []U
	j := 0
	return &Stream[U]{next: func() (U, bool) {
		for {
			if j < len(cur) {
				v := cur[j]
				j++
				return v, true
			}
			for !srcDone && len(inflight) < window {
				var buf []T
				if n := len(free); n > 0 {
					buf, free = free[n-1], free[:n-1]
				} else {
					buf = make([]T, 0, size)
				}
				for len(buf) < size {
					v, ok := src.next()
					if !ok {
						srcDone = true
						break
					}
					buf = append(buf, v)
				}
				if len(buf) == 0 {
					break
				}
				ch := buf
				fut := pool.Submit(p, func() ([]U, error) {
					out := make([]U, len(ch))
					for k, v := range ch {
						out[k] = f(v)
					}
					return out, nil
				})
				inflight = append(inflight, task{fut: fut, chunk: ch})
			}
			if len(inflight) == 0 {
				if !shut {
					shut = true
					p.Shutdown()
				}
				var zero U
				return zero, false
			}
			t := inflight[0]
			n := copy(inflight, inflight[1:])
			inflight[n] = task{}
			inflight = inflight[:n]
			cur, _ = t.fut.Get()
			clear(t.chunk)
			free = append(free, t.chunk[:0])
			j = 0
		}
	}}
}

// PipelineStage runs stage f in its own goroutine connected by a bounded
// blocking queue — the native two-thread pipeline of §VII ("a pipelined
// version built using BlockingQueues over two threads").
func PipelineStage[T, U any](src *Stream[T], buffer int, f func(T) U) *Stream[U] {
	if buffer < 1 {
		buffer = 1
	}
	q := queue.NewArrayBlocking[U](buffer)
	go func() {
		for {
			v, ok := src.next()
			if !ok {
				break
			}
			if q.Put(f(v)) != nil {
				return
			}
		}
		q.Close()
	}()
	return &Stream[U]{next: func() (U, bool) {
		v, err := q.Take()
		if err != nil {
			var zero U
			return zero, false
		}
		return v, true
	}}
}
