package queue

// Batch operations for every queue implementation. The buffered queues
// (ArrayBlocking, LinkedBlocking) move a whole run of elements per lock
// acquisition; the rendezvous-style queues (Synchronous, MVar) keep their
// per-element handshake for delivery — batching cannot loosen a rendezvous
// — but still drain multi-element on the take side when offers are parked
// back to back.

// enqueueRun bulk-copies vs into the ring in at most two segment copies.
// Caller holds mu and guarantees len(vs) fits the free space.
func (q *ArrayBlocking[T]) enqueueRun(vs []T) {
	tail := (q.head + q.n) % len(q.buf)
	c := copy(q.buf[tail:], vs)
	copy(q.buf, vs[c:])
	q.n += len(vs)
}

// dequeueRun bulk-copies up to len(dst) elements out of the ring (at most
// two segment copies) and clears the vacated slots for GC. Caller holds mu.
func (q *ArrayBlocking[T]) dequeueRun(dst []T) int {
	n := min(len(dst), q.n)
	if n == 0 {
		return 0
	}
	c := copy(dst[:n], q.buf[q.head:])
	copy(dst[c:n], q.buf)
	if end := q.head + n; end <= len(q.buf) {
		clear(q.buf[q.head:end])
	} else {
		clear(q.buf[q.head:])
		clear(q.buf[:end-len(q.buf)])
	}
	q.head = (q.head + n) % len(q.buf)
	q.n -= n
	return n
}

// PutBatch enqueues vs in order, blocking for space as needed and waking
// takers once per run rather than once per element. Elements move in bulk
// segment copies, so the per-element cost is a memmove, not a lock.
func (q *ArrayBlocking[T]) PutBatch(vs []T) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	n := 0
	for n < len(vs) {
		for q.n == len(q.buf) && !q.closed {
			q.notFull.Wait()
		}
		if q.closed {
			return n, ErrClosed
		}
		run := min(len(vs)-n, len(q.buf)-q.n)
		q.enqueueRun(vs[n : n+run])
		n += run
		q.notEmpty.Broadcast()
	}
	return n, nil
}

// TakeBatch blocks until at least one element is available, then dequeues
// up to len(dst) without further blocking.
func (q *ArrayBlocking[T]) TakeBatch(dst []T) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		return 0, ErrClosed
	}
	n := q.dequeueRun(dst)
	q.notFull.Broadcast()
	return n, nil
}

// TryTakeBatch dequeues up to len(dst) elements without blocking.
func (q *ArrayBlocking[T]) TryTakeBatch(dst []T) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		if q.closed {
			return 0, ErrClosed
		}
		return 0, nil
	}
	n := q.dequeueRun(dst)
	if n > 0 {
		q.notFull.Broadcast()
	}
	return n, nil
}

// PutBatch enqueues vs in order, blocking for space as needed (never blocks
// when unbounded).
func (q *LinkedBlocking[T]) PutBatch(vs []T) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	n := 0
	for n < len(vs) {
		for q.maxLen > 0 && q.n >= q.maxLen && !q.closed {
			q.notFull.Wait()
		}
		if q.closed {
			return n, ErrClosed
		}
		for n < len(vs) && (q.maxLen <= 0 || q.n < q.maxLen) {
			q.enqueue(vs[n])
			n++
		}
		q.notEmpty.Broadcast()
	}
	return n, nil
}

// TakeBatch blocks until at least one element is available, then dequeues
// up to len(dst) without further blocking.
func (q *LinkedBlocking[T]) TakeBatch(dst []T) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		return 0, ErrClosed
	}
	n := 0
	for n < len(dst) && q.n > 0 {
		dst[n] = q.dequeue()
		n++
	}
	q.notFull.Broadcast()
	return n, nil
}

// TryTakeBatch dequeues up to len(dst) elements without blocking.
func (q *LinkedBlocking[T]) TryTakeBatch(dst []T) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		if q.closed {
			return 0, ErrClosed
		}
		return 0, nil
	}
	n := 0
	for n < len(dst) && q.n > 0 {
		dst[n] = q.dequeue()
		n++
	}
	if n > 0 {
		q.notFull.Broadcast()
	}
	return n, nil
}

// PutBatch performs one rendezvous per element: a synchronous queue has no
// buffer to batch into, so delivery remains pairwise.
func (q *Synchronous[T]) PutBatch(vs []T) (int, error) {
	if len(vs) == 0 {
		q.mu.Lock()
		defer q.mu.Unlock()
		if q.closed {
			return 0, ErrClosed
		}
		return 0, nil
	}
	for i, v := range vs {
		if err := q.Put(v); err != nil {
			return i, err
		}
	}
	return len(vs), nil
}

// TakeBatch blocks for one rendezvous, then opportunistically accepts any
// further offers already parked, without blocking again.
func (q *Synchronous[T]) TakeBatch(dst []T) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	v, err := q.Take()
	if err != nil {
		return 0, err
	}
	dst[0] = v
	n := 1
	for n < len(dst) {
		v, ok, _ := q.TryTake()
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n, nil
}

// TryTakeBatch accepts parked offers without blocking.
func (q *Synchronous[T]) TryTakeBatch(dst []T) (int, error) {
	n := 0
	for n < len(dst) {
		v, ok, err := q.TryTake()
		if err != nil && n == 0 {
			return 0, err
		}
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n, nil
}

// PutBatch fills the slot once per element, waiting for each take.
func (m *MVar[T]) PutBatch(vs []T) (int, error) {
	if len(vs) == 0 {
		m.mu.Lock()
		defer m.mu.Unlock()
		if m.closed {
			return 0, ErrClosed
		}
		return 0, nil
	}
	for i, v := range vs {
		if err := m.Put(v); err != nil {
			return i, err
		}
	}
	return len(vs), nil
}

// TakeBatch blocks for the slot, then (with capacity 1) usually returns a
// single element; a racing refill may extend the run.
func (m *MVar[T]) TakeBatch(dst []T) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	v, err := m.Take()
	if err != nil {
		return 0, err
	}
	dst[0] = v
	n := 1
	for n < len(dst) {
		v, ok, _ := m.TryTake()
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n, nil
}

// TryTakeBatch empties the slot without blocking.
func (m *MVar[T]) TryTakeBatch(dst []T) (int, error) {
	n := 0
	for n < len(dst) {
		v, ok, err := m.TryTake()
		if err != nil && n == 0 {
			return 0, err
		}
		if !ok {
			break
		}
		dst[n] = v
		n++
	}
	return n, nil
}
