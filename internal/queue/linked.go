package queue

import "sync"

// LinkedBlocking is an optionally-bounded FIFO blocking queue over a linked
// list — the analogue of java.util.concurrent.LinkedBlockingQueue. With
// maxLen <= 0 it is unbounded and Put never blocks.
type LinkedBlocking[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	head     *node[T]
	tail     *node[T]
	n        int
	maxLen   int
	closed   bool
}

type node[T any] struct {
	v    T
	next *node[T]
}

// NewLinkedBlocking returns a linked blocking queue; maxLen <= 0 means
// unbounded.
func NewLinkedBlocking[T any](maxLen int) *LinkedBlocking[T] {
	q := &LinkedBlocking[T]{maxLen: maxLen}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Put blocks until space is available (never blocks when unbounded).
func (q *LinkedBlocking[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.maxLen > 0 && q.n >= q.maxLen && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.enqueue(v)
	q.notEmpty.Signal()
	return nil
}

// Take blocks until an element is available, draining after Close.
func (q *LinkedBlocking[T]) Take() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		var zero T
		return zero, ErrClosed
	}
	v := q.dequeue()
	q.notFull.Signal()
	return v, nil
}

// TryPut enqueues without blocking.
func (q *LinkedBlocking[T]) TryPut(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if q.maxLen > 0 && q.n >= q.maxLen {
		return false, nil
	}
	q.enqueue(v)
	q.notEmpty.Signal()
	return true, nil
}

// TryTake dequeues without blocking.
func (q *LinkedBlocking[T]) TryTake() (T, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		var zero T
		if q.closed {
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	v := q.dequeue()
	q.notFull.Signal()
	return v, true, nil
}

// Len returns the number of buffered elements.
func (q *LinkedBlocking[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Cap returns the bound, or 0 when unbounded.
func (q *LinkedBlocking[T]) Cap() int {
	if q.maxLen <= 0 {
		return 0
	}
	return q.maxLen
}

// Close marks the queue closed and wakes all waiters.
func (q *LinkedBlocking[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

func (q *LinkedBlocking[T]) enqueue(v T) {
	nd := &node[T]{v: v}
	if q.tail == nil {
		q.head, q.tail = nd, nd
	} else {
		q.tail.next = nd
		q.tail = nd
	}
	q.n++
}

func (q *LinkedBlocking[T]) dequeue() T {
	nd := q.head
	q.head = nd.next
	if q.head == nil {
		q.tail = nil
	}
	q.n--
	return nd.v
}
