package queue

import "sync"

// MVar is a single-slot mutable variable "whose put and take operations
// wait until the channel is empty or full respectively" (§3B) — the M-Var
// of Concurrent Haskell and the M-structure of Id. A pipe producing a
// single result through an MVar behaves as a future.
type MVar[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	v        T
	full     bool
	closed   bool
}

// NewMVar returns an empty MVar.
func NewMVar[T any]() *MVar[T] {
	m := &MVar[T]{}
	m.notFull.L = &m.mu
	m.notEmpty.L = &m.mu
	return m
}

// Put blocks until the slot is empty, then fills it.
func (m *MVar[T]) Put(v T) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for m.full && !m.closed {
		m.notFull.Wait()
	}
	if m.closed {
		return ErrClosed
	}
	m.v = v
	m.full = true
	m.notEmpty.Signal()
	return nil
}

// Take blocks until the slot is full, then empties it.
func (m *MVar[T]) Take() (T, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.full && !m.closed {
		m.notEmpty.Wait()
	}
	if !m.full {
		var zero T
		return zero, ErrClosed
	}
	v := m.v
	var zero T
	m.v = zero
	m.full = false
	m.notFull.Signal()
	return v, nil
}

// TryPut fills the slot only if empty.
func (m *MVar[T]) TryPut(v T) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, ErrClosed
	}
	if m.full {
		return false, nil
	}
	m.v = v
	m.full = true
	m.notEmpty.Signal()
	return true, nil
}

// TryTake empties the slot only if full.
func (m *MVar[T]) TryTake() (T, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.full {
		var zero T
		if m.closed {
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	v := m.v
	var zero T
	m.v = zero
	m.full = false
	m.notFull.Signal()
	return v, true, nil
}

// Len reports 1 when full.
func (m *MVar[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.full {
		return 1
	}
	return 0
}

// Cap is 1.
func (m *MVar[T]) Cap() int { return 1 }

// Close wakes all waiters; a full slot may still be taken once.
func (m *MVar[T]) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.notFull.Broadcast()
	m.notEmpty.Broadcast()
}

// Future is a single-assignment synchronization variable in the style of
// CML: reads block until the value is defined, and it may be defined only
// once. Set after the first Set is a no-op reporting false.
type Future[T any] struct {
	mu   sync.Mutex
	cond sync.Cond
	v    T
	err  error
	done bool
}

// NewFuture returns an undefined future.
func NewFuture[T any]() *Future[T] {
	f := &Future[T]{}
	f.cond.L = &f.mu
	return f
}

// Set defines the future's value; only the first call wins.
func (f *Future[T]) Set(v T) bool { return f.complete(v, nil) }

// Fail defines the future with an error.
func (f *Future[T]) Fail(err error) bool {
	var zero T
	return f.complete(zero, err)
}

func (f *Future[T]) complete(v T, err error) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return false
	}
	f.v, f.err, f.done = v, err, true
	f.cond.Broadcast()
	return true
}

// Get blocks until the future is defined.
func (f *Future[T]) Get() (T, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for !f.done {
		f.cond.Wait()
	}
	return f.v, f.err
}

// TryGet reports the value if already defined.
func (f *Future[T]) TryGet() (T, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.done {
		var zero T
		return zero, false, nil
	}
	return f.v, true, f.err
}
