package queue

import (
	"time"

	"junicon/internal/telemetry"
)

// Telemetry instrumentation for the transport layer. A wrapped queue
// measures what the paper's bounded-buffer story makes interesting and
// otherwise invisible: how long producers block in Put (the §3B
// throttle actually biting), how long consumers block in Take (a
// starved pipeline stage), and the depth/occupancy the buffer runs at.
// The wrapper is installed by pipes only when telemetry is active, so
// uninstrumented queues pay nothing at all.

var (
	cPuts          = telemetry.NewCounter("queue.puts")
	cTakes         = telemetry.NewCounter("queue.takes")
	cPutBlockedNs  = telemetry.NewCounter("queue.put_blocked_ns")
	cTakeBlockedNs = telemetry.NewCounter("queue.take_blocked_ns")
	hDepth         = telemetry.NewHistogram("queue.depth")
	hOccupancy     = telemetry.NewHistogram("queue.occupancy_pct")
)

// Instrument wraps q so Put/Take record blocked time, depth and
// occupancy metrics, and emit put/take span events under the given
// stream ID when tracing is on. name labels the events (typically the
// owning construct: "pipe", "remote").
func Instrument[T any](q Queue[T], stream uint64, name string) Queue[T] {
	return &instrumented[T]{q: q, stream: stream, name: name}
}

type instrumented[T any] struct {
	q      Queue[T]
	stream uint64
	name   string
}

func (iq *instrumented[T]) observe(put bool, start time.Time) {
	on, tracing := telemetry.On(), telemetry.TraceOn()
	if !on && !tracing {
		return
	}
	blocked := time.Since(start).Nanoseconds()
	depth := iq.q.Len()
	if on {
		if put {
			cPuts.Inc()
			cPutBlockedNs.Add(blocked)
		} else {
			cTakes.Inc()
			cTakeBlockedNs.Add(blocked)
		}
		hDepth.Observe(int64(depth))
		if c := iq.q.Cap(); c > 0 {
			hOccupancy.Observe(int64(depth * 100 / c))
		}
	}
	if tracing {
		kind := telemetry.KindTake
		if put {
			kind = telemetry.KindPut
		}
		telemetry.EmitSpan(iq.stream, kind, iq.name, int64(depth), start)
	}
}

func (iq *instrumented[T]) Put(v T) error {
	start := time.Now()
	err := iq.q.Put(v)
	if err == nil {
		iq.observe(true, start)
	}
	return err
}

func (iq *instrumented[T]) Take() (T, error) {
	start := time.Now()
	v, err := iq.q.Take()
	if err == nil {
		iq.observe(false, start)
	}
	return v, err
}

func (iq *instrumented[T]) TryPut(v T) (bool, error) {
	ok, err := iq.q.TryPut(v)
	if ok {
		iq.observe(true, time.Now())
	}
	return ok, err
}

func (iq *instrumented[T]) TryTake() (T, bool, error) {
	v, ok, err := iq.q.TryTake()
	if ok {
		iq.observe(false, time.Now())
	}
	return v, ok, err
}

func (iq *instrumented[T]) Len() int { return iq.q.Len() }
func (iq *instrumented[T]) Cap() int { return iq.q.Cap() }
func (iq *instrumented[T]) Close()   { iq.q.Close() }
