package queue

import (
	"time"

	"junicon/internal/telemetry"
)

// Telemetry instrumentation for the transport layer. A wrapped queue
// measures what the paper's bounded-buffer story makes interesting and
// otherwise invisible: how long producers block in Put (the §3B
// throttle actually biting), how long consumers block in Take (a
// starved pipeline stage), and the depth/occupancy the buffer runs at.
// The wrapper is installed by pipes only when telemetry is active, so
// uninstrumented queues pay nothing at all.

var (
	cPuts          = telemetry.NewCounter("queue.puts")
	cTakes         = telemetry.NewCounter("queue.takes")
	cPutBlockedNs  = telemetry.NewCounter("queue.put_blocked_ns")
	cTakeBlockedNs = telemetry.NewCounter("queue.take_blocked_ns")
	hDepth         = telemetry.NewHistogram("queue.depth")
	hOccupancy     = telemetry.NewHistogram("queue.occupancy_pct")
	hPutBatch      = telemetry.NewHistogram("queue.put_batch_size")
	hTakeBatch     = telemetry.NewHistogram("queue.take_batch_size")
)

// Instrument wraps q so Put/Take record blocked time, depth and
// occupancy metrics, and emit put/take span events under the given
// stream ID when tracing is on. name labels the events (typically the
// owning construct: "pipe", "remote").
func Instrument[T any](q Queue[T], stream uint64, name string) Queue[T] {
	return &instrumented[T]{q: q, stream: stream, name: name}
}

type instrumented[T any] struct {
	q      Queue[T]
	stream uint64
	name   string
}

func (iq *instrumented[T]) observe(put bool, start time.Time) {
	on, tracing := telemetry.On(), telemetry.TraceOn()
	if !on && !tracing {
		return
	}
	blocked := time.Since(start).Nanoseconds()
	depth := iq.q.Len()
	if on {
		if put {
			cPuts.Inc()
			cPutBlockedNs.Add(blocked)
		} else {
			cTakes.Inc()
			cTakeBlockedNs.Add(blocked)
		}
		hDepth.Observe(int64(depth))
		if c := iq.q.Cap(); c > 0 {
			hOccupancy.Observe(int64(depth * 100 / c))
		}
	}
	if tracing {
		kind := telemetry.KindTake
		if put {
			kind = telemetry.KindPut
		}
		telemetry.EmitSpan(iq.stream, kind, iq.name, int64(depth), start)
	}
}

func (iq *instrumented[T]) Put(v T) error {
	start := time.Now()
	err := iq.q.Put(v)
	if err == nil {
		iq.observe(true, start)
	}
	return err
}

func (iq *instrumented[T]) Take() (T, error) {
	start := time.Now()
	v, err := iq.q.Take()
	if err == nil {
		iq.observe(false, start)
	}
	return v, err
}

func (iq *instrumented[T]) TryPut(v T) (bool, error) {
	ok, err := iq.q.TryPut(v)
	if ok {
		iq.observe(true, time.Now())
	}
	return ok, err
}

func (iq *instrumented[T]) TryTake() (T, bool, error) {
	v, ok, err := iq.q.TryTake()
	if ok {
		iq.observe(false, time.Now())
	}
	return v, ok, err
}

// observeBatch records an n-element batch transfer: element counters move
// by n, the batch-size histogram captures the amortization actually won,
// and tracing emits a single span for the whole run.
func (iq *instrumented[T]) observeBatch(put bool, start time.Time, n int) {
	on, tracing := telemetry.On(), telemetry.TraceOn()
	if !on && !tracing {
		return
	}
	blocked := time.Since(start).Nanoseconds()
	depth := iq.q.Len()
	if on {
		if put {
			cPuts.Add(int64(n))
			cPutBlockedNs.Add(blocked)
			hPutBatch.Observe(int64(n))
		} else {
			cTakes.Add(int64(n))
			cTakeBlockedNs.Add(blocked)
			hTakeBatch.Observe(int64(n))
		}
		hDepth.Observe(int64(depth))
		if c := iq.q.Cap(); c > 0 {
			hOccupancy.Observe(int64(depth * 100 / c))
		}
	}
	if tracing {
		kind := telemetry.KindTake
		if put {
			kind = telemetry.KindPut
		}
		telemetry.EmitSpan(iq.stream, kind, iq.name, int64(depth), start)
	}
}

func (iq *instrumented[T]) PutBatch(vs []T) (int, error) {
	start := time.Now()
	n, err := iq.q.PutBatch(vs)
	if n > 0 {
		iq.observeBatch(true, start, n)
	}
	return n, err
}

func (iq *instrumented[T]) TakeBatch(dst []T) (int, error) {
	start := time.Now()
	n, err := iq.q.TakeBatch(dst)
	if n > 0 {
		iq.observeBatch(false, start, n)
	}
	return n, err
}

func (iq *instrumented[T]) TryTakeBatch(dst []T) (int, error) {
	n, err := iq.q.TryTakeBatch(dst)
	if n > 0 {
		iq.observeBatch(false, time.Now(), n)
	}
	return n, err
}

func (iq *instrumented[T]) Len() int { return iq.q.Len() }
func (iq *instrumented[T]) Cap() int { return iq.q.Cap() }
func (iq *instrumented[T]) Close()   { iq.q.Close() }

// Rendezvous forwards the wrapped queue's bufferless marker.
func (iq *instrumented[T]) Rendezvous() bool {
	r, ok := iq.q.(interface{ Rendezvous() bool })
	return ok && r.Rendezvous()
}
