package queue

import (
	"math/rand"
	"sync"
	"testing"
)

// Batch-API tests. The contract under test (queue.go): PutBatch delivers
// the whole run or blocks, returning a partial count only at Close, with
// the partially delivered prefix remaining takeable; TakeBatch blocks for
// at least one element, then fills dst without further blocking; TryTakeBatch
// never blocks and reports ErrClosed only once closed and drained.

func TestBatchFIFOSingleThreaded(t *testing.T) {
	for name, mk := range implementations() {
		if name == "synchronous" || name == "mvar" || name == "array-1" {
			continue // no room to buffer a run
		}
		q := mk()
		vs := []int{1, 2, 3, 4}
		if n, err := q.PutBatch(vs); n != 4 || err != nil {
			t.Fatalf("%s: PutBatch = %d %v", name, n, err)
		}
		dst := make([]int, 8)
		n, err := q.TakeBatch(dst)
		if err != nil || n != 4 {
			t.Fatalf("%s: TakeBatch = %d %v", name, n, err)
		}
		for i := 0; i < n; i++ {
			if dst[i] != i+1 {
				t.Fatalf("%s: dst[%d] = %d, want %d", name, i, dst[i], i+1)
			}
		}
	}
}

func TestTakeBatchDrainsAfterClose(t *testing.T) {
	q := NewArrayBlocking[int](8)
	q.PutBatch([]int{1, 2, 3})
	q.Close()
	dst := make([]int, 8)
	n, err := q.TakeBatch(dst)
	if err != nil || n != 3 {
		t.Fatalf("TakeBatch after close = %d %v, want 3 <nil>", n, err)
	}
	if _, err := q.TakeBatch(dst); err != ErrClosed {
		t.Fatalf("drained TakeBatch err = %v, want ErrClosed", err)
	}
	if _, err := q.TryTakeBatch(dst); err != ErrClosed {
		t.Fatalf("drained TryTakeBatch err = %v, want ErrClosed", err)
	}
}

// TestConcurrentBatchStress hammers every implementation with concurrent
// PutBatch/TakeBatch under -race: values tagged (producer, seq) must arrive
// exactly once, and each producer's values must appear in sequence order
// within every consumer's local take stream (MPMC FIFO preserves each
// producer's relative order regardless of which consumer observes it).
func TestConcurrentBatchStress(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 2000
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p)))
					seq := 0
					for seq < perProducer {
						run := 1 + rng.Intn(37)
						if run > perProducer-seq {
							run = perProducer - seq
						}
						vs := make([]int, run)
						for i := range vs {
							vs[i] = p*perProducer + seq + i
						}
						n, err := q.PutBatch(vs)
						if err != nil {
							t.Errorf("%s: producer %d: PutBatch err %v", name, p, err)
							return
						}
						seq += n
					}
				}(p)
			}
			results := make(chan []int, consumers)
			for c := 0; c < consumers; c++ {
				go func() {
					var local []int
					dst := make([]int, 29)
					for {
						n, err := q.TakeBatch(dst)
						local = append(local, dst[:n]...)
						if err != nil {
							results <- local
							return
						}
					}
				}()
			}
			wg.Wait()
			q.Close()
			seen := make(map[int]bool, producers*perProducer)
			for c := 0; c < consumers; c++ {
				local := <-results
				last := make([]int, producers)
				for i := range last {
					last[i] = -1
				}
				for _, v := range local {
					if seen[v] {
						t.Fatalf("%s: value %d delivered twice", name, v)
					}
					seen[v] = true
					p, s := v/perProducer, v%perProducer
					if s <= last[p] {
						t.Fatalf("%s: producer %d order violated: %d after %d", name, p, s, last[p])
					}
					last[p] = s
				}
			}
			if len(seen) != producers*perProducer {
				t.Fatalf("%s: delivered %d values, want %d", name, len(seen), producers*perProducer)
			}
		})
	}
}

// TestPutBatchPartialDeliveryAtClose closes the queue under a blocked
// PutBatch and checks the contract's partial-delivery clause: the producer
// learns exactly how many elements landed, and precisely that prefix — no
// more, no fewer — is drained by the consumer.
func TestPutBatchPartialDeliveryAtClose(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			const run = 50
			vs := make([]int, run)
			for i := range vs {
				vs[i] = i + 1
			}
			type res struct {
				n   int
				err error
			}
			done := make(chan res, 1)
			go func() {
				n, err := q.PutBatch(vs)
				done <- res{n, err}
			}()
			// Take a few values, then close mid-run.
			got := make([]int, 0, run)
			dst := make([]int, 3)
			for len(got) < 7 {
				n, err := q.TakeBatch(dst)
				if err != nil {
					t.Fatalf("TakeBatch: %v", err)
				}
				got = append(got, dst[:n]...)
			}
			q.Close()
			r := <-done
			// Unbounded queues absorb the whole run without blocking and so
			// may complete before the close; everything else must report the
			// cut via ErrClosed.
			if r.err == nil && r.n != run {
				t.Fatalf("PutBatch = %d <nil>, want full run %d", r.n, run)
			}
			if r.err != nil && r.err != ErrClosed {
				t.Fatalf("PutBatch err = %v, want ErrClosed", r.err)
			}
			// Drain whatever the close left behind.
			for {
				n, err := q.TakeBatch(dst)
				got = append(got, dst[:n]...)
				if err != nil {
					break
				}
			}
			if len(got) != r.n {
				t.Fatalf("producer reported %d delivered, consumer saw %d", r.n, len(got))
			}
			for i, v := range got {
				if v != i+1 {
					t.Fatalf("delivered[%d] = %d, want %d (prefix property violated)", i, v, i+1)
				}
			}
		})
	}
}

// TestConcurrentBatchCloseStress races PutBatch, TakeBatch and Close on
// every implementation: whatever interleaving occurs, each producer's
// reported delivery count must equal what consumers actually received,
// and nothing may be duplicated.
func TestConcurrentBatchCloseStress(t *testing.T) {
	const producers, consumers = 3, 3
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 20; round++ {
				q := mk()
				var wg sync.WaitGroup
				delivered := make(chan int, producers)
				for p := 0; p < producers; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						sent := 0
						for b := 0; b < 10; b++ {
							vs := make([]int, 11)
							for i := range vs {
								vs[i] = p<<20 | sent + i
							}
							n, err := q.PutBatch(vs)
							sent += n
							if err != nil {
								break
							}
						}
						delivered <- sent
					}(p)
				}
				received := make(chan int, consumers)
				for c := 0; c < consumers; c++ {
					go func() {
						count := 0
						dst := make([]int, 7)
						for {
							n, err := q.TakeBatch(dst)
							count += n
							if err != nil {
								received <- count
								return
							}
						}
					}()
				}
				// Close at an arbitrary point mid-traffic.
				if round%2 == 0 {
					q.Close()
				}
				wg.Wait()
				q.Close()
				sent, got := 0, 0
				for p := 0; p < producers; p++ {
					sent += <-delivered
				}
				for c := 0; c < consumers; c++ {
					got += <-received
				}
				if sent != got {
					t.Fatalf("%s round %d: producers delivered %d, consumers received %d", name, round, sent, got)
				}
			}
		})
	}
}
