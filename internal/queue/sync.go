package queue

import "sync"

// Synchronous is a rendezvous queue with no buffer: each Put blocks until a
// Take arrives and vice versa — the analogue of
// java.util.concurrent.SynchronousQueue, and the tightest throttle a pipe
// can use.
type Synchronous[T any] struct {
	mu      sync.Mutex
	putters sync.Cond
	takers  sync.Cond
	slot    T
	state   syncState
	closed  bool
}

type syncState int

const (
	syncIdle     syncState = iota // no exchange in progress
	syncOffered                   // a putter has parked a value
	syncAccepted                  // a taker consumed it; putter may finish
)

// NewSynchronous returns a rendezvous queue.
func NewSynchronous[T any]() *Synchronous[T] {
	q := &Synchronous[T]{}
	q.putters.L = &q.mu
	q.takers.L = &q.mu
	return q
}

// Put blocks until a taker accepts v.
func (q *Synchronous[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	// Wait for the slot to be free for a new offer.
	for q.state != syncIdle && !q.closed {
		q.putters.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.slot = v
	q.state = syncOffered
	q.takers.Signal()
	for q.state == syncOffered && !q.closed {
		q.putters.Wait()
	}
	if q.state == syncAccepted {
		q.state = syncIdle
		var zero T
		q.slot = zero
		q.putters.Signal()
		return nil
	}
	// Closed while offering: withdraw.
	q.state = syncIdle
	return ErrClosed
}

// Take blocks until a putter offers a value.
func (q *Synchronous[T]) Take() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.state != syncOffered && !q.closed {
		q.takers.Wait()
	}
	if q.state != syncOffered {
		var zero T
		return zero, ErrClosed
	}
	v := q.slot
	q.state = syncAccepted
	q.putters.Broadcast()
	return v, nil
}

// TryPut succeeds only when a taker is already waiting; conservatively, the
// non-blocking form never transfers (matching SynchronousQueue.offer with
// no waiting consumer tracked).
func (q *Synchronous[T]) TryPut(T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	return false, nil
}

// TryTake succeeds only when an offer is parked.
func (q *Synchronous[T]) TryTake() (T, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.state == syncOffered {
		v := q.slot
		q.state = syncAccepted
		q.putters.Broadcast()
		return v, true, nil
	}
	var zero T
	if q.closed {
		return zero, false, ErrClosed
	}
	return zero, false, nil
}

// Len is always 0: a rendezvous queue buffers nothing.
func (q *Synchronous[T]) Len() int { return 0 }

// Rendezvous marks the queue as bufferless: every transfer is a pairwise
// hand-off. Transports use this to know that batching has nothing to
// amortize here.
func (q *Synchronous[T]) Rendezvous() bool { return true }

// Cap is 0.
func (q *Synchronous[T]) Cap() int { return 0 }

// Close wakes all waiters with ErrClosed.
func (q *Synchronous[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.putters.Broadcast()
	q.takers.Broadcast()
}
