package queue

import "sync"

// ArrayBlocking is a bounded FIFO blocking queue over a ring buffer — the
// analogue of java.util.concurrent.ArrayBlockingQueue. A bounded buffer is
// how a pipe throttles its threaded co-expression (§3B: "bounding the
// output queue buffer size can also be used to throttle").
type ArrayBlocking[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []T
	head     int
	n        int
	closed   bool
}

// NewArrayBlocking returns a bounded blocking queue with the given capacity
// (minimum 1).
func NewArrayBlocking[T any](capacity int) *ArrayBlocking[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &ArrayBlocking[T]{buf: make([]T, capacity)}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Put blocks until space is available.
func (q *ArrayBlocking[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.enqueue(v)
	q.notEmpty.Signal()
	return nil
}

// Take blocks until an element is available; after Close it drains the
// buffer before reporting ErrClosed.
func (q *ArrayBlocking[T]) Take() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		var zero T
		return zero, ErrClosed
	}
	v := q.dequeue()
	q.notFull.Signal()
	return v, nil
}

// TryPut enqueues without blocking.
func (q *ArrayBlocking[T]) TryPut(v T) (bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false, ErrClosed
	}
	if q.n == len(q.buf) {
		return false, nil
	}
	q.enqueue(v)
	q.notEmpty.Signal()
	return true, nil
}

// TryTake dequeues without blocking.
func (q *ArrayBlocking[T]) TryTake() (T, bool, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		var zero T
		if q.closed {
			return zero, false, ErrClosed
		}
		return zero, false, nil
	}
	v := q.dequeue()
	q.notFull.Signal()
	return v, true, nil
}

// Len returns the number of buffered elements.
func (q *ArrayBlocking[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Cap returns the buffer capacity.
func (q *ArrayBlocking[T]) Cap() int { return len(q.buf) }

// Close marks the queue closed and wakes all waiters.
func (q *ArrayBlocking[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

func (q *ArrayBlocking[T]) enqueue(v T) {
	q.buf[(q.head+q.n)%len(q.buf)] = v
	q.n++
}

func (q *ArrayBlocking[T]) dequeue() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // release for GC
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return v
}
