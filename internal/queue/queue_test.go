package queue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// compile-time interface checks
var (
	_ Queue[int] = (*ArrayBlocking[int])(nil)
	_ Queue[int] = (*LinkedBlocking[int])(nil)
	_ Queue[int] = (*MVar[int])(nil)
	_ Queue[int] = (*Synchronous[int])(nil)
)

// each bounded/unbounded implementation under a name for table tests.
func implementations() map[string]func() Queue[int] {
	return map[string]func() Queue[int]{
		"array-1":     func() Queue[int] { return NewArrayBlocking[int](1) },
		"array-8":     func() Queue[int] { return NewArrayBlocking[int](8) },
		"linked-8":    func() Queue[int] { return NewLinkedBlocking[int](8) },
		"linked-inf":  func() Queue[int] { return NewLinkedBlocking[int](0) },
		"mvar":        func() Queue[int] { return NewMVar[int]() },
		"synchronous": func() Queue[int] { return NewSynchronous[int]() },
	}
}

func TestFIFOOrderSingleThreaded(t *testing.T) {
	for name, mk := range implementations() {
		if name == "synchronous" || name == "mvar" || name == "array-1" {
			continue // no room for 4 buffered elements
		}
		q := mk()
		for i := 1; i <= 4; i++ {
			if ok, err := q.TryPut(i); !ok || err != nil {
				t.Fatalf("%s: TryPut(%d) = %v %v", name, i, ok, err)
			}
		}
		for i := 1; i <= 4; i++ {
			v, ok, err := q.TryTake()
			if !ok || err != nil || v != i {
				t.Fatalf("%s: TryTake = %v %v %v, want %d", name, v, ok, err, i)
			}
		}
	}
}

func TestProducerConsumerNoLossNoDup(t *testing.T) {
	const n = 2000
	for name, mk := range implementations() {
		q := mk()
		got := make([]bool, n)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := q.Put(i); err != nil {
					t.Errorf("%s: Put: %v", name, err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				v, err := q.Take()
				if err != nil {
					t.Errorf("%s: Take: %v", name, err)
					return
				}
				if v < 0 || v >= n || got[v] {
					t.Errorf("%s: duplicate or out-of-range %d", name, v)
					return
				}
				got[v] = true
			}
		}()
		wg.Wait()
		for i, seen := range got {
			if !seen {
				t.Fatalf("%s: lost element %d", name, i)
			}
		}
	}
}

func TestFIFOAcrossThreads(t *testing.T) {
	// With a single producer and single consumer every implementation is
	// order-preserving.
	for name, mk := range implementations() {
		q := mk()
		const n = 500
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < n; i++ {
				v, err := q.Take()
				if err != nil || v != i {
					t.Errorf("%s: got %d err %v, want %d", name, v, err, i)
					return
				}
			}
		}()
		for i := 0; i < n; i++ {
			if err := q.Put(i); err != nil {
				t.Fatalf("%s: put: %v", name, err)
			}
		}
		<-done
	}
}

func TestBoundedPutBlocksUntilTake(t *testing.T) {
	q := NewArrayBlocking[int](1)
	if err := q.Put(1); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		close(started)
		q.Put(2) // must block: buffer full
		close(finished)
	}()
	<-started
	select {
	case <-finished:
		t.Fatal("Put on full queue did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if v, err := q.Take(); err != nil || v != 1 {
		t.Fatalf("take = %v %v", v, err)
	}
	select {
	case <-finished:
	case <-time.After(time.Second):
		t.Fatal("blocked Put never completed after Take")
	}
}

func TestTakeBlocksUntilPut(t *testing.T) {
	for name, mk := range implementations() {
		q := mk()
		got := make(chan int, 1)
		go func() {
			v, err := q.Take()
			if err != nil {
				t.Errorf("%s: %v", name, err)
			}
			got <- v
		}()
		select {
		case <-got:
			t.Fatalf("%s: Take on empty queue returned early", name)
		case <-time.After(10 * time.Millisecond):
		}
		if err := q.Put(7); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		select {
		case v := <-got:
			if v != 7 {
				t.Fatalf("%s: got %d", name, v)
			}
		case <-time.After(time.Second):
			t.Fatalf("%s: Take never woke", name)
		}
	}
}

func TestCloseDrainsThenFails(t *testing.T) {
	q := NewArrayBlocking[int](4)
	q.Put(1)
	q.Put(2)
	q.Close()
	//junilint:ignore — this test IS the Put-after-Close contract.
	if err := q.Put(3); err != ErrClosed {
		t.Fatalf("Put after close = %v", err)
	}
	if v, err := q.Take(); err != nil || v != 1 {
		t.Fatalf("drain 1: %v %v", v, err)
	}
	if v, err := q.Take(); err != nil || v != 2 {
		t.Fatalf("drain 2: %v %v", v, err)
	}
	if _, err := q.Take(); err != ErrClosed {
		t.Fatalf("Take after drain = %v", err)
	}
}

func TestCloseWakesBlockedWaiters(t *testing.T) {
	for name, mk := range implementations() {
		q := mk()
		errs := make(chan error, 2)
		go func() {
			_, err := q.Take()
			errs <- err
		}()
		time.Sleep(5 * time.Millisecond)
		q.Close()
		select {
		case err := <-errs:
			if err != ErrClosed {
				t.Fatalf("%s: woke with %v", name, err)
			}
		case <-time.After(time.Second):
			t.Fatalf("%s: blocked Take not woken by Close", name)
		}
	}
}

func TestClosedPutWhileBlockedReturnsErrClosed(t *testing.T) {
	q := NewArrayBlocking[int](1)
	q.Put(1)
	errs := make(chan error, 1)
	go func() { errs <- q.Put(2) }()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case err := <-errs:
		if err != ErrClosed {
			t.Fatalf("blocked Put woke with %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("blocked Put not woken")
	}
}

func TestTryOpsDoNotBlock(t *testing.T) {
	q := NewArrayBlocking[int](1)
	if _, ok, err := q.TryTake(); ok || err != nil {
		t.Fatal("TryTake on empty should report !ok")
	}
	if ok, _ := q.TryPut(1); !ok {
		t.Fatal("TryPut should succeed")
	}
	if ok, _ := q.TryPut(2); ok {
		t.Fatal("TryPut on full should report !ok")
	}
	if v, ok, _ := q.TryTake(); !ok || v != 1 {
		t.Fatal("TryTake should succeed")
	}
}

func TestMVarSemantics(t *testing.T) {
	m := NewMVar[string]()
	if ok, _ := m.TryPut("a"); !ok {
		t.Fatal("fill empty mvar")
	}
	if ok, _ := m.TryPut("b"); ok {
		t.Fatal("mvar must reject second put while full")
	}
	if v, err := m.Take(); err != nil || v != "a" {
		t.Fatal("take")
	}
	if _, ok, _ := m.TryTake(); ok {
		t.Fatal("empty mvar must not yield")
	}
}

func TestFutureSingleAssignment(t *testing.T) {
	f := NewFuture[int]()
	if _, ok, _ := f.TryGet(); ok {
		t.Fatal("undefined future must not be gettable")
	}
	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			v, _ := f.Get()
			results <- v
		}()
	}
	if !f.Set(42) {
		t.Fatal("first Set must win")
	}
	if f.Set(43) {
		t.Fatal("second Set must lose")
	}
	for i := 0; i < 3; i++ {
		if v := <-results; v != 42 {
			t.Fatalf("reader saw %d", v)
		}
	}
	if v, ok, err := f.TryGet(); !ok || err != nil || v != 42 {
		t.Fatal("TryGet after set")
	}
}

func TestFutureFail(t *testing.T) {
	f := NewFuture[int]()
	f.Fail(ErrClosed)
	if _, err := f.Get(); err != ErrClosed {
		t.Fatalf("err = %v", err)
	}
}

func TestSynchronousRendezvous(t *testing.T) {
	q := NewSynchronous[int]()
	putDone := make(chan error, 1)
	go func() { putDone <- q.Put(5) }()
	select {
	case <-putDone:
		t.Fatal("Put completed without a taker")
	case <-time.After(10 * time.Millisecond):
	}
	v, err := q.Take()
	if err != nil || v != 5 {
		t.Fatalf("take = %v %v", v, err)
	}
	if err := <-putDone; err != nil {
		t.Fatalf("put err = %v", err)
	}
}

func TestSynchronousManyExchanges(t *testing.T) {
	q := NewSynchronous[int]()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			q.Put(i)
		}
	}()
	for i := 0; i < n; i++ {
		v, err := q.Take()
		if err != nil || v != i {
			t.Fatalf("exchange %d: %v %v", i, v, err)
		}
	}
}

func TestManyProducersManyConsumers(t *testing.T) {
	const producers, perProducer = 8, 250
	q := NewArrayBlocking[int](4)
	var wg sync.WaitGroup
	sum := make(chan int, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Put(1)
			}
		}(p)
	}
	for c := 0; c < producers; c++ {
		go func() {
			local := 0
			for {
				_, err := q.Take()
				if err != nil {
					sum <- local
					return
				}
				local++
			}
		}()
	}
	wg.Wait()
	q.Close()
	total := 0
	for c := 0; c < producers; c++ {
		total += <-sum
	}
	if total != producers*perProducer {
		t.Fatalf("consumed %d, want %d", total, producers*perProducer)
	}
}

func TestPropRingBufferMatchesModel(t *testing.T) {
	// Drive an ArrayBlocking with a random op sequence against a model
	// slice, single-threaded.
	f := func(ops []byte, capacity uint8) bool {
		capn := int(capacity%7) + 1
		q := NewArrayBlocking[int](capn)
		var model []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				ok, _ := q.TryPut(next)
				wantOK := len(model) < capn
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok, _ := q.TryTake()
				wantOK := len(model) > 0
				if ok != wantOK {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCapReporting(t *testing.T) {
	if NewArrayBlocking[int](5).Cap() != 5 {
		t.Fatal("array cap")
	}
	if NewLinkedBlocking[int](0).Cap() != 0 {
		t.Fatal("unbounded cap")
	}
	if NewLinkedBlocking[int](3).Cap() != 3 {
		t.Fatal("bounded linked cap")
	}
	if NewMVar[int]().Cap() != 1 {
		t.Fatal("mvar cap")
	}
	if NewSynchronous[int]().Cap() != 0 {
		t.Fatal("sync cap")
	}
}

func TestCloseIdempotent(t *testing.T) {
	for name, mk := range implementations() {
		q := mk()
		q.Close()
		q.Close() // must not panic or deadlock
		_ = name
	}
}

// Concurrent Put/Close stress: the close/poison semantics the remote
// protocol's EOS handling sits on. Invariant: every Put that returned nil
// deposited a value some Take retrieves; every Put after close returns
// ErrClosed; nothing deadlocks.
func TestConcurrentPutCloseStress(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 20; round++ {
				q := mk()
				const producers = 8
				var accepted, taken int64
				var wg sync.WaitGroup
				for id := 0; id < producers; id++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						for i := 0; i < 50; i++ {
							err := q.Put(id*1000 + i)
							if err != nil {
								if err != ErrClosed {
									t.Errorf("Put: %v, want nil or ErrClosed", err)
								}
								return
							}
							atomic.AddInt64(&accepted, 1)
						}
					}(id)
				}
				consumerDone := make(chan struct{})
				go func() {
					defer close(consumerDone)
					for {
						if _, err := q.Take(); err != nil {
							if err != ErrClosed {
								t.Errorf("Take: %v, want ErrClosed", err)
							}
							return
						}
						atomic.AddInt64(&taken, 1)
					}
				}()
				time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
				q.Close()
				waitOrFatal(t, &wg, "producers blocked after Close")
				select {
				case <-consumerDone:
				case <-time.After(5 * time.Second):
					t.Fatal("consumer blocked after Close")
				}
				if a, k := atomic.LoadInt64(&accepted), atomic.LoadInt64(&taken); a != k {
					t.Fatalf("round %d: %d Puts accepted but %d values taken", round, a, k)
				}
			}
		})
	}
}

// TestCloseReleasesManyBlockedProducers parks a crowd of producers on a
// full queue and closes it: all must return promptly with ErrClosed, and
// the drain must retrieve exactly the accepted values.
func TestCloseReleasesManyBlockedProducers(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			const producers = 16
			var accepted int64
			var wg sync.WaitGroup
			for id := 0; id < producers; id++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					for {
						if err := q.Put(id); err != nil {
							if err != ErrClosed {
								t.Errorf("Put: %v, want ErrClosed", err)
							}
							return
						}
						atomic.AddInt64(&accepted, 1)
					}
				}(id)
			}
			// Let the crowd saturate the queue, then poison it.
			for q.Len() < q.Cap() && q.Cap() > 0 {
				time.Sleep(time.Millisecond)
			}
			time.Sleep(5 * time.Millisecond)
			q.Close()
			waitOrFatal(t, &wg, "blocked producers not released by Close")
			var taken int64
			for {
				if _, err := q.Take(); err != nil {
					break
				}
				taken++
			}
			if a := atomic.LoadInt64(&accepted); a != taken {
				t.Fatalf("%d Puts accepted but %d values drained", a, taken)
			}
		})
	}
}

// TestConcurrentCloseIsSafe races multiple Close calls against active
// Put/Take traffic: no panic, and the queue ends closed.
func TestConcurrentCloseIsSafe(t *testing.T) {
	for name, mk := range implementations() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				wg.Add(3)
				go func(i int) { defer wg.Done(); q.Put(i) }(i)
				go func() { defer wg.Done(); q.Take() }()
				go func() { defer wg.Done(); q.Close() }()
			}
			waitOrFatal(t, &wg, "Close raced with Put/Take deadlocked")
			if err := q.Put(1); err != ErrClosed {
				t.Fatalf("Put after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// waitOrFatal guards a WaitGroup wait with a timeout so a poison-semantics
// regression shows as a failure, not a hung test binary.
func waitOrFatal(t *testing.T, wg *sync.WaitGroup, what string) {
	t.Helper()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal(what)
	}
}
