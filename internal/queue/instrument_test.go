package queue

// Batch-operation coverage for the telemetry wrapper: PutBatch/TakeBatch
// must record element counters, batch-size histograms and blocked time —
// the amortization evidence Ablation G quotes — and must do so race-free
// when producer and consumer overlap (this file is part of the -race CI
// lane like every queue test).

import (
	"testing"
	"time"

	"junicon/internal/telemetry"
)

// withMetrics turns the metrics registry on for one test and hands back
// a fresh window.
func withMetrics(t *testing.T) {
	t.Helper()
	telemetry.SetMetrics(true)
	telemetry.ResetMetrics()
	t.Cleanup(func() {
		telemetry.SetMetrics(false)
		telemetry.ResetMetrics()
	})
}

func histogram(t *testing.T, snap map[string]any, name string) telemetry.HistogramSnapshot {
	t.Helper()
	h, ok := snap[name].(telemetry.HistogramSnapshot)
	if !ok {
		t.Fatalf("metric %q missing or not a histogram: %T", name, snap[name])
	}
	return h
}

func counter(t *testing.T, snap map[string]any, name string) int64 {
	t.Helper()
	c, ok := snap[name].(int64)
	if !ok {
		t.Fatalf("metric %q missing or not a counter: %T", name, snap[name])
	}
	return c
}

func TestInstrumentBatchSizes(t *testing.T) {
	withMetrics(t)

	const total = 96
	q := Instrument[int](NewArrayBlocking[int](total), 7, "test")

	// Room for everything up front: the batch sizes observed are exactly
	// the batch sizes offered, with no blocking in either direction.
	batches := [][]int{make([]int, 32), make([]int, 48), make([]int, 16)}
	for _, b := range batches {
		n, err := q.PutBatch(b)
		if err != nil || n != len(b) {
			t.Fatalf("PutBatch = %d, %v", n, err)
		}
	}
	got := 0
	takes := 0
	dst := make([]int, 64)
	for got < total {
		n, err := q.TakeBatch(dst)
		if err != nil {
			t.Fatalf("TakeBatch: %v", err)
		}
		got += n
		takes++
	}

	snap := telemetry.Snapshot()
	if n := counter(t, snap, "queue.puts"); n != total {
		t.Errorf("queue.puts = %d, want %d (element-granular accounting)", n, total)
	}
	if n := counter(t, snap, "queue.takes"); n != total {
		t.Errorf("queue.takes = %d, want %d", n, total)
	}
	put := histogram(t, snap, "queue.put_batch_size")
	if put.Count != int64(len(batches)) || put.Sum != total {
		t.Errorf("put_batch_size count/sum = %d/%d, want %d/%d",
			put.Count, put.Sum, len(batches), total)
	}
	if put.Max != 48 {
		t.Errorf("put_batch_size max = %d, want 48", put.Max)
	}
	take := histogram(t, snap, "queue.take_batch_size")
	if take.Count != int64(takes) || take.Sum != total {
		t.Errorf("take_batch_size count/sum = %d/%d, want %d/%d",
			take.Count, take.Sum, takes, total)
	}
}

func TestInstrumentBatchBlockedTime(t *testing.T) {
	withMetrics(t)

	const hold = 20 * time.Millisecond

	// Put side: a batch larger than the buffer must park the producer in
	// PutBatch until the consumer drains; the wrapper bills that wait to
	// queue.put_blocked_ns.
	q := Instrument[int](NewArrayBlocking[int](2), 7, "test")
	done := make(chan struct{})
	go func() {
		defer close(done)
		if n, err := q.PutBatch(make([]int, 8)); err != nil || n != 8 {
			t.Errorf("PutBatch = %d, %v", n, err)
		}
	}()
	time.Sleep(hold)
	dst := make([]int, 8)
	for got := 0; got < 8; {
		n, err := q.TakeBatch(dst)
		if err != nil {
			t.Fatalf("TakeBatch: %v", err)
		}
		got += n
	}
	<-done
	if ns := counter(t, telemetry.Snapshot(), "queue.put_blocked_ns"); ns < hold.Nanoseconds() {
		t.Errorf("put_blocked_ns = %d, want >= %d (producer parked %v)", ns, hold.Nanoseconds(), hold)
	}

	// Take side: TakeBatch on an empty queue parks the consumer until the
	// producer shows up; the wait lands in queue.take_blocked_ns.
	telemetry.ResetMetrics()
	go func() {
		time.Sleep(hold)
		if n, err := q.PutBatch([]int{1, 2, 3}); err != nil || n != 3 {
			t.Errorf("PutBatch = %d, %v", n, err)
		}
	}()
	if n, err := q.TakeBatch(dst); err != nil || n == 0 {
		t.Fatalf("TakeBatch = %d, %v", n, err)
	}
	if ns := counter(t, telemetry.Snapshot(), "queue.take_blocked_ns"); ns < hold.Nanoseconds() {
		t.Errorf("take_blocked_ns = %d, want >= %d (consumer parked %v)", ns, hold.Nanoseconds(), hold)
	}
}
