// Package queue implements the blocking-queue substrate underneath
// generator proxies (§3B): bounded array-backed and unbounded linked
// blocking queues, a synchronous (rendezvous) queue, single-slot M-vars and
// futures — the same family of "fundamental building blocks" the paper
// cites (M-structures, M-Vars, Linda tuples, Java BlockingQueues).
//
// All types are built from sync.Mutex and sync.Cond rather than Go channels
// so that buffer bounding, fairness and close semantics are explicit,
// testable and benchmarkable — and so the pipe package can expose its
// transport "as a public field to permit further manipulation", as the
// paper requires.
package queue

import "errors"

// ErrClosed is returned by Put after Close, and by Take after Close once
// the queue has drained.
var ErrClosed = errors.New("queue: closed")

// Queue is the blocking-queue protocol shared by all implementations.
type Queue[T any] interface {
	// Put blocks until space is available, then enqueues v.
	Put(v T) error
	// Take blocks until an element is available, then dequeues it.
	Take() (T, error)
	// TryPut enqueues without blocking; ok reports success.
	TryPut(v T) (ok bool, err error)
	// TryTake dequeues without blocking; ok reports success.
	TryTake() (v T, ok bool, err error)
	// Len returns the number of buffered elements.
	Len() int
	// Cap returns the buffer capacity; <= 0 means unbounded (or zero for a
	// rendezvous queue).
	Cap() int
	// Close marks the queue closed: subsequent Puts fail, Takes drain the
	// remaining elements and then fail. Close is idempotent.
	Close()
}
