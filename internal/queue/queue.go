// Package queue implements the blocking-queue substrate underneath
// generator proxies (§3B): bounded array-backed and unbounded linked
// blocking queues, a synchronous (rendezvous) queue, single-slot M-vars and
// futures — the same family of "fundamental building blocks" the paper
// cites (M-structures, M-Vars, Linda tuples, Java BlockingQueues).
//
// All types are built from sync.Mutex and sync.Cond rather than Go channels
// so that buffer bounding, fairness and close semantics are explicit,
// testable and benchmarkable — and so the pipe package can expose its
// transport "as a public field to permit further manipulation", as the
// paper requires.
package queue

import "errors"

// ErrClosed is returned by Put after Close, and by Take after Close once
// the queue has drained.
var ErrClosed = errors.New("queue: closed")

// Queue is the blocking-queue protocol shared by all implementations.
//
// The batch operations move several elements per synchronization point:
// PutBatch and TakeBatch acquire the queue's internal lock once per call
// rather than once per element, which is what lets a batched pipe amortize
// the per-value queue handshake (the dominant cost of the §3B transport).
// Batching never weakens the protocol: elements stay FIFO, the buffer
// bound still throttles, and Close still drains before failing.
type Queue[T any] interface {
	// Put blocks until space is available, then enqueues v.
	Put(v T) error
	// Take blocks until an element is available, then dequeues it.
	Take() (T, error)
	// TryPut enqueues without blocking; ok reports success.
	TryPut(v T) (ok bool, err error)
	// TryTake dequeues without blocking; ok reports success.
	TryTake() (v T, ok bool, err error)
	// PutBatch enqueues the values of vs in order, blocking for space as
	// needed. n reports how many were delivered; n < len(vs) only when the
	// queue was closed mid-batch, in which case err is ErrClosed and the
	// first n values remain takeable (partial-batch delivery at Close).
	PutBatch(vs []T) (n int, err error)
	// TakeBatch blocks until at least one element is available, then
	// dequeues up to len(dst) elements into dst without further blocking.
	// After Close it drains the remaining elements batch by batch and then
	// fails with ErrClosed.
	TakeBatch(dst []T) (n int, err error)
	// TryTakeBatch dequeues up to len(dst) elements without blocking; n is
	// 0 when the queue is momentarily empty. err is ErrClosed only once the
	// queue is closed and drained.
	TryTakeBatch(dst []T) (n int, err error)
	// Len returns the number of buffered elements.
	Len() int
	// Cap returns the buffer capacity; <= 0 means unbounded (or zero for a
	// rendezvous queue).
	Cap() int
	// Close marks the queue closed: subsequent Puts fail, Takes drain the
	// remaining elements and then fail. Close is idempotent.
	Close()
}
