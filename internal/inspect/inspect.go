// Package inspect is the live-introspection layer over the concurrent
// generator runtime: where telemetry (internal/telemetry) counts what has
// happened, inspect answers what is happening *right now* — which streams
// exist, what state each is in, how deep its queue runs, and who consumes
// whom. Every live pipe, remote stream and pool registers a Handle here
// while inspection is enabled; the registry renders as a topology snapshot
// (Snapshot, the /debug/streams JSON), and a stall watchdog (watchdog.go)
// scans it for streams blocked past a threshold, classifying the cause.
//
// The package sits below pipe/remote/pool in the import graph (it depends
// only on the standard library and telemetry's stream-ID allocator), so
// every transport layer can register without cycles.
//
// # Cost model
//
// Inspection is off by default. Registration is decided once per producer
// start behind On() — a single atomic load — and an uninspected stream
// carries a nil *Handle, whose methods are all nil-safe no-ops; the hot
// paths guard with a plain nil check. Enabling inspection costs one
// registry mutex acquisition per stream lifetime plus a handful of atomic
// stores per transported value.
package inspect

import (
	"bytes"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/telemetry"
)

// enabled gates registration. Handles are only created while it is set;
// streams started before Enable stay invisible (exactly as telemetry
// decides observation once per producer start).
var enabled atomic.Bool

// Enable turns the stream registry on process-wide.
func Enable() { enabled.Store(true) }

// Disable stops registering new streams; existing handles keep updating.
func Disable() { enabled.Store(false) }

// On reports whether the registry is accepting registrations. Transport
// code checks it once per stream start, like telemetry.Active.
func On() bool { return enabled.Load() }

// Stream kinds, one per transport construct that registers.
const (
	KindPipe         = "pipe"
	KindRemoteClient = "remote-client"
	KindRemoteServer = "remote-server"
	KindPool         = "pool"
	// KindSession is a multiplexed connection (protocol v5): its handle's
	// state is the shared writer's (blocked-put = wedged in the socket
	// write), and its produced count is flushes, not values.
	KindSession = "session"
)

// Stream states. The producer side owns BlockedPut/Running/Draining; the
// consumer side owns BlockedTake and flips back to Running after a take.
// The field is a single atomic — the two sides of a queue cannot be
// blocked in both directions at once, so the last writer is the truth.
const (
	StateRunning int32 = iota
	StateBlockedPut
	StateBlockedTake
	StateDraining // producer finished; values remain for the consumer
	StateDone
	// StateMigrating: the client is cutting the stream over to another node
	// — source draining, snapshot in flight, target not yet serving.
	StateMigrating
)

func stateName(s int32) string {
	switch s {
	case StateRunning:
		return "running"
	case StateBlockedPut:
		return "blocked-put"
	case StateBlockedTake:
		return "blocked-take"
	case StateDraining:
		return "draining"
	case StateDone:
		return "done"
	case StateMigrating:
		return "migrating"
	}
	return "unknown"
}

// Handle is one registered stream's live state. All methods are safe on a
// nil receiver — uninspected streams carry nil and pay one branch.
type Handle struct {
	id      uint64
	kind    string
	label   string
	created time.Time

	state        atomic.Int32
	produced     atomic.Int64
	consumed     atomic.Int64
	credit       atomic.Int64
	conn         atomic.Uint64 // owning connection ID; 0 = dedicated/none
	lastActive   atomic.Int64  // UnixNano of the last produce/consume
	consumesFrom atomic.Uint64 // stream ID this handle's consumer drains next
	noted        atomic.Bool   // consumer edge recorded (once per generation)
	resumed      atomic.Bool   // stream recovered from a checkpoint or replay
	closed       atomic.Bool

	depth atomic.Pointer[func() (int, int)] // queue depth and capacity probe
}

// ID returns the handle's stream identifier (telemetry stream ID space).
func (h *Handle) ID() uint64 {
	if h == nil {
		return 0
	}
	return h.id
}

func (h *Handle) touch() { h.lastActive.Store(time.Now().UnixNano()) }

// Produced records n values emitted by the producer side.
func (h *Handle) Produced(n int64) {
	if h == nil {
		return
	}
	h.produced.Add(n)
	h.touch()
}

// Consumed records n values taken by the consumer side.
func (h *Handle) Consumed(n int64) {
	if h == nil {
		return
	}
	h.consumed.Add(n)
	h.touch()
}

// SetCredit records the current flow-control credit balance (remote
// streams: the values the peer has authorized but not yet received).
func (h *Handle) SetCredit(n int64) {
	if h == nil {
		return
	}
	h.credit.Store(n)
}

// SetConn records the multiplexed connection this stream travels on (the
// session's connection ID), letting /debug/streams group the streams that
// share a socket. Streams on dedicated connections leave it zero.
func (h *Handle) SetConn(id uint64) {
	if h == nil {
		return
	}
	h.conn.Store(id)
}

// BlockedPut marks the producer as possibly blocked publishing a value.
// Set unconditionally before a potentially-blocking put and cleared by
// Running after: only staleness (lastActive far in the past) makes the
// state meaningful, which is exactly what the watchdog keys on.
func (h *Handle) BlockedPut() {
	if h == nil {
		return
	}
	h.state.Store(StateBlockedPut)
}

// BlockedTake marks the consumer as possibly blocked awaiting a value.
func (h *Handle) BlockedTake() {
	if h == nil {
		return
	}
	h.state.Store(StateBlockedTake)
}

// Running clears a blocked mark.
func (h *Handle) Running() {
	if h == nil {
		return
	}
	h.state.Store(StateRunning)
}

// Draining marks the producer finished with values still in flight.
func (h *Handle) Draining() {
	if h == nil {
		return
	}
	h.state.Store(StateDraining)
}

// Migrating marks the stream mid-cutover to another node (durable
// generators: source drained, snapshot or replay in flight). Cleared by
// Running when the target starts serving.
func (h *Handle) Migrating() {
	if h == nil {
		return
	}
	h.state.Store(StateMigrating)
}

// NoteResumed marks the stream as having recovered — resumed from a
// checkpoint snapshot or replayed after a crash. Sticky for the handle's
// lifetime: /debug/streams shows which streams survived a failure.
func (h *Handle) NoteResumed() {
	if h == nil {
		return
	}
	h.resumed.Store(true)
	h.touch()
}

// SetDepthProbe installs a function reporting the transport queue's
// current depth and capacity; called by Snapshot, never on the hot path.
func (h *Handle) SetDepthProbe(probe func() (depth, capacity int)) {
	if h == nil || probe == nil {
		return
	}
	h.depth.Store(&probe)
}

// Close marks the stream done and retires the handle from the live set
// into the recent ring (so a snapshot taken just after a run still shows
// the streams that ran). Idempotent and nil-safe.
func (h *Handle) Close() {
	if h == nil || !h.closed.CompareAndSwap(false, true) {
		return
	}
	h.state.Store(StateDone)
	h.depth.Store(nil)
	retire(h)
}

// Unregister is Close under the name the pairing convention (and the
// junilint inspectleak rule) uses: every Register needs a matching
// Unregister or Close on every path.
func Unregister(h *Handle) { h.Close() }

// ---- registry ----

// recentSize bounds the ring of retired handles a snapshot still reports.
const recentSize = 64

// live is keyed by handle identity, not stream ID: both ends of an
// in-process remote stream legitimately register under the same ID (the
// client's, which is what stitches the two sides' traces together).
var reg = struct {
	mu     sync.Mutex
	live   map[*Handle]struct{}
	recent [recentSize]*Handle
	next   int // ring write cursor
}{live: make(map[*Handle]struct{})}

// Register creates and registers a handle for a stream. id is the stream's
// telemetry ID (0 allocates a fresh one); kind is one of the Kind
// constants; label is free-form ("serve:range", "pipe(buffer=8)"). Returns
// nil when inspection is disabled — callers keep the nil and every method
// no-ops.
func Register(id uint64, kind, label string) *Handle {
	if !enabled.Load() {
		return nil
	}
	if id == 0 {
		id = telemetry.NextStream()
	}
	h := &Handle{id: id, kind: kind, label: label, created: time.Now()}
	h.touch()
	reg.mu.Lock()
	reg.live[h] = struct{}{}
	reg.mu.Unlock()
	return h
}

// retire moves a closed handle from the live set to the recent ring.
func retire(h *Handle) {
	reg.mu.Lock()
	delete(reg.live, h)
	reg.recent[reg.next%recentSize] = h
	reg.next++
	reg.mu.Unlock()
}

// Reset drops every registered handle, live and recent. Test hygiene.
func Reset() {
	reg.mu.Lock()
	reg.live = make(map[*Handle]struct{})
	for i := range reg.recent {
		reg.recent[i] = nil
	}
	reg.next = 0
	reg.mu.Unlock()
	clearDiagnoses()
}

// ---- topology edges ----

// Producer goroutines bind themselves to their handle; a consumer-side
// NoteConsume then looks up the *current* goroutine's bound producer and
// records "that producer consumes from this stream" — the edge set that
// turns the registry into a topology graph (and lets the watchdog find
// pipe-activation cycles at run time, the dynamic complement of the
// static JV012 check).
var producerByGoroutine sync.Map // goroutine id (uint64) -> *Handle

// goroutineID parses the running goroutine's ID from its stack header
// ("goroutine N [...]"). Only used off the per-value path: once per
// producer start and once per consumer edge.
func goroutineID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseUint(string(s[:i]), 10, 64); err == nil {
			return id
		}
	}
	return 0
}

// BindProducer associates the calling goroutine with h for edge
// recording; the returned release must run when the producer exits.
// Nil-safe: an uninspected stream gets a no-op pair.
func BindProducer(h *Handle) (release func()) {
	if h == nil {
		return func() {}
	}
	gid := goroutineID()
	if gid == 0 {
		return func() {}
	}
	producerByGoroutine.Store(gid, h)
	return func() { producerByGoroutine.Delete(gid) }
}

// NoteConsume records that the calling goroutine's bound producer (if
// any) consumes from h, reporting whether an edge was recorded. Called
// once per consumer generation, not per value.
func NoteConsume(h *Handle) bool {
	if h == nil {
		return false
	}
	if gid := goroutineID(); gid != 0 {
		if v, ok := producerByGoroutine.Load(gid); ok {
			v.(*Handle).consumesFrom.Store(h.id)
			return true
		}
	}
	return false
}

// noteConsumeOnce is the per-Next guard: the guard latches only when an
// edge was actually recorded, so an unbound consumer (the main goroutine)
// taking the first value does not mask a bound producer taking the
// second. Edge-recorded streams pay one atomic load per take; streams
// consumed only by unbound goroutines pay the (cheap) failed lookup.
func noteConsumeOnce(h *Handle) {
	if h != nil && !h.noted.Load() && NoteConsume(h) {
		h.noted.Store(true)
	}
}

// NoteConsumeOnce records the consumer edge for h the first time it is
// called; subsequent calls are one atomic load. Transport Next paths call
// this instead of NoteConsume.
func NoteConsumeOnce(h *Handle) { noteConsumeOnce(h) }

// ---- snapshot ----

// StreamID renders a stream ID the way logs and traces serialize it.
func StreamID(id uint64) string {
	if id == 0 {
		return ""
	}
	return strconv.FormatUint(id, 16)
}

// StreamInfo is one stream's row in the topology snapshot.
type StreamInfo struct {
	ID           string `json:"id"`
	Kind         string `json:"kind"`
	Label        string `json:"label"`
	State        string `json:"state"`
	Live         bool   `json:"live"`
	Produced     int64  `json:"produced"`
	Consumed     int64  `json:"consumed"`
	Credit       int64  `json:"credit,omitempty"`
	Conn         string `json:"conn,omitempty"`
	Depth        int    `json:"depth"`
	Capacity     int    `json:"capacity,omitempty"`
	ConsumesFrom string `json:"consumes_from,omitempty"`
	IdleNs       int64  `json:"idle_ns"`
	AgeNs        int64  `json:"age_ns"`
	Resumed      bool   `json:"resumed,omitempty"`
	Diagnosis    string `json:"diagnosis,omitempty"`
}

func (h *Handle) info(now time.Time, live bool) StreamInfo {
	in := StreamInfo{
		ID:       StreamID(h.id),
		Kind:     h.kind,
		Label:    h.label,
		State:    stateName(h.state.Load()),
		Live:     live,
		Produced: h.produced.Load(),
		Consumed: h.consumed.Load(),
		Credit:   h.credit.Load(),
		IdleNs:   now.UnixNano() - h.lastActive.Load(),
		AgeNs:    now.Sub(h.created).Nanoseconds(),
		Resumed:  h.resumed.Load(),
	}
	if from := h.consumesFrom.Load(); from != 0 {
		in.ConsumesFrom = StreamID(from)
	}
	if c := h.conn.Load(); c != 0 {
		in.Conn = StreamID(c)
	}
	if probe := h.depth.Load(); probe != nil {
		in.Depth, in.Capacity = (*probe)()
	}
	if d, ok := lookupDiagnosis(h.id); ok {
		in.Diagnosis = d.Cause
	}
	return in
}

// Snapshot returns every live stream plus the recently retired ones,
// sorted live-first then oldest-first — the /debug/streams payload.
func Snapshot() []StreamInfo {
	now := time.Now()
	reg.mu.Lock()
	handles := make([]*Handle, 0, len(reg.live)+recentSize)
	liveSet := make(map[*Handle]bool, len(reg.live))
	for h := range reg.live {
		handles = append(handles, h)
		liveSet[h] = true
	}
	for _, h := range reg.recent {
		if h != nil {
			handles = append(handles, h)
		}
	}
	reg.mu.Unlock()
	out := make([]StreamInfo, 0, len(handles))
	for _, h := range handles {
		out = append(out, h.info(now, liveSet[h]))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Live != out[j].Live {
			return out[i].Live
		}
		if out[i].AgeNs != out[j].AgeNs {
			return out[i].AgeNs > out[j].AgeNs
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// liveHandles returns the live set for the watchdog's scan.
func liveHandles() []*Handle {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]*Handle, 0, len(reg.live))
	for h := range reg.live {
		out = append(out, h)
	}
	return out
}
