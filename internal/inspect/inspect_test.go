package inspect_test

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"junicon/internal/inspect"
)

// withInspect enables the registry for one test and restores a clean slate.
func withInspect(t *testing.T) {
	t.Helper()
	inspect.Reset()
	inspect.Enable()
	t.Cleanup(func() {
		inspect.Disable()
		inspect.Reset()
	})
}

func TestRegisterDisabledIsNil(t *testing.T) {
	inspect.Reset()
	inspect.Disable()
	h := inspect.Register(0, inspect.KindPipe, "off")
	if h != nil {
		t.Fatalf("Register while disabled = %v, want nil", h)
	}
	// Every method must be a nil-safe no-op.
	h.Produced(1)
	h.Consumed(1)
	h.SetCredit(3)
	h.BlockedPut()
	h.BlockedTake()
	h.Running()
	h.Draining()
	h.SetDepthProbe(func() (int, int) { return 0, 0 })
	h.Close()
	inspect.Unregister(h)
	if h.ID() != 0 {
		t.Fatalf("nil handle ID = %d, want 0", h.ID())
	}
	if got := inspect.Snapshot(); len(got) != 0 {
		t.Fatalf("snapshot after disabled register = %v, want empty", got)
	}
}

func TestRegisterSnapshotClose(t *testing.T) {
	withInspect(t)
	h := inspect.Register(0, inspect.KindPipe, "pipe(cap=4)")
	if h == nil {
		t.Fatal("Register returned nil while enabled")
	}
	if h.ID() == 0 {
		t.Fatal("Register(0, ...) did not allocate a stream ID")
	}
	h.Produced(5)
	h.Consumed(3)
	h.SetCredit(7)
	h.SetDepthProbe(func() (int, int) { return 2, 4 })
	h.BlockedPut()

	snap := inspect.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d rows, want 1: %+v", len(snap), snap)
	}
	in := snap[0]
	if !in.Live || in.Kind != inspect.KindPipe || in.Label != "pipe(cap=4)" {
		t.Fatalf("bad row: %+v", in)
	}
	if in.Produced != 5 || in.Consumed != 3 || in.Credit != 7 {
		t.Fatalf("bad counts: %+v", in)
	}
	if in.Depth != 2 || in.Capacity != 4 {
		t.Fatalf("depth probe not applied: %+v", in)
	}
	if in.State != "blocked-put" {
		t.Fatalf("state = %q, want blocked-put", in.State)
	}

	h.Close()
	h.Close() // idempotent
	snap = inspect.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("closed handle dropped from snapshot entirely: %+v", snap)
	}
	if snap[0].Live || snap[0].State != "done" {
		t.Fatalf("closed handle not retired: %+v", snap[0])
	}
}

func TestConsumeEdge(t *testing.T) {
	withInspect(t)
	producer := inspect.Register(0, inspect.KindPipe, "downstream")
	upstream := inspect.Register(0, inspect.KindPipe, "upstream")

	done := make(chan struct{})
	go func() {
		defer close(done)
		release := inspect.BindProducer(producer)
		defer release()
		// The producer goroutine consumes from upstream: the edge recorded
		// is "producer's stream consumes from upstream's stream".
		inspect.NoteConsumeOnce(upstream)
		inspect.NoteConsumeOnce(upstream) // once-per-generation: second is a no-op
	}()
	<-done

	var row *inspect.StreamInfo
	for _, in := range inspect.Snapshot() {
		if in.Label == "downstream" {
			r := in
			row = &r
		}
	}
	if row == nil {
		t.Fatal("downstream row missing")
	}
	if row.ConsumesFrom != inspect.StreamID(upstream.ID()) {
		t.Fatalf("consumes_from = %q, want %q", row.ConsumesFrom, inspect.StreamID(upstream.ID()))
	}
}

func TestRecentRingBounded(t *testing.T) {
	withInspect(t)
	for i := 0; i < 100; i++ {
		inspect.Register(0, inspect.KindPipe, "burst").Close()
	}
	snap := inspect.Snapshot()
	if len(snap) > 64 {
		t.Fatalf("recent ring leaked: %d retired rows", len(snap))
	}
	for _, in := range snap {
		if in.Live {
			t.Fatalf("unexpected live row: %+v", in)
		}
	}
}

func TestHandlerJSON(t *testing.T) {
	withInspect(t)
	h := inspect.Register(0, inspect.KindPool, "pool(workers=2)")
	defer h.Close()
	h.Produced(9)

	rec := httptest.NewRecorder()
	inspect.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/streams", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var payload inspect.StreamsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("payload not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(payload.Streams) != 1 || payload.Streams[0].Produced != 9 {
		t.Fatalf("bad payload: %+v", payload)
	}
	if payload.At.IsZero() {
		t.Fatal("payload missing timestamp")
	}
}

func TestWatchdogStartStop(t *testing.T) {
	withInspect(t)
	w := inspect.StartWatchdog(inspect.WatchdogConfig{Period: time.Millisecond, Threshold: time.Hour})
	time.Sleep(5 * time.Millisecond)
	w.Stop()
	w.Stop() // idempotent
}
