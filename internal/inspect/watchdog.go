package inspect

import (
	"bytes"
	"log/slog"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"junicon/internal/telemetry"
)

// The stall watchdog: a scanner over the live registry that flags streams
// blocked past a threshold and classifies the cause. It is the runtime
// complement of the static analyzer's JV011 (consumer abandons a
// producer) and JV012 (mutual pipe activation): those catch the shapes
// visible in source, this catches the ones that only emerge from live
// scheduling — a consumer that returned without Stop, a remote peer
// sitting on its credit window, two pipes that activated each other.
//
// Classification rules, applied to streams whose last activity is older
// than the threshold:
//
//   - a cycle in the consumes-from edges among blocked stale streams is
//     an activation cycle: every member is diagnosed, whatever its
//     blocking direction;
//   - a producer stuck in blocked-put on a remote-server stream with a
//     zero credit balance is credit starvation — the client consumed its
//     window and stopped granting;
//   - any other producer stuck in blocked-put that long has an abandoned
//     consumer: a consuming goroutine would have freed queue space (and
//     touched the handle) well within the threshold;
//   - a lone blocked-take is never flagged — a consumer waiting on a slow
//     producer is ordinary demand, not a stall.

var cStallsDiagnosed = telemetry.NewCounter("inspect.stalls_diagnosed")

// Stall causes.
const (
	CauseConsumerAbandoned = "consumer-abandoned"
	CauseCreditStarvation  = "credit-starvation"
	CauseActivationCycle   = "activation-cycle"
	// CauseConnBackpressure: a multiplexed session's shared writer is
	// wedged in the socket write (the peer stopped reading), so every
	// stream on that connection stalls together. Diagnosed on the session
	// handle and on each stuck stream riding it.
	CauseConnBackpressure = "conn-backpressure"
)

// Diagnosis is one structured stall report.
type Diagnosis struct {
	Stream    string        `json:"stream"`
	Kind      string        `json:"kind"`
	Label     string        `json:"label"`
	Cause     string        `json:"cause"`
	State     string        `json:"state"`
	IdleNs    int64         `json:"idle_ns"`
	Produced  int64         `json:"produced"`
	Consumed  int64         `json:"consumed"`
	Credit    int64         `json:"credit"`
	Cycle     []string      `json:"cycle,omitempty"`  // stream IDs, for activation cycles
	Stacks    string        `json:"stacks,omitempty"` // goroutine stacks labeled with this stream
	At        time.Time     `json:"at"`
	Threshold time.Duration `json:"threshold"`
}

// Latest diagnosis per stream, surfaced in Snapshot rows and Diagnoses.
var diag = struct {
	mu sync.Mutex
	m  map[uint64]Diagnosis
}{m: make(map[uint64]Diagnosis)}

func recordDiagnosis(id uint64, d Diagnosis) {
	diag.mu.Lock()
	diag.m[id] = d
	diag.mu.Unlock()
}

func lookupDiagnosis(id uint64) (Diagnosis, bool) {
	diag.mu.Lock()
	defer diag.mu.Unlock()
	d, ok := diag.m[id]
	return d, ok
}

func clearDiagnosis(id uint64) {
	diag.mu.Lock()
	delete(diag.m, id)
	diag.mu.Unlock()
}

func clearDiagnoses() {
	diag.mu.Lock()
	diag.m = make(map[uint64]Diagnosis)
	diag.mu.Unlock()
}

// Diagnoses returns the latest diagnosis per stream, sorted by stream ID.
func Diagnoses() []Diagnosis {
	diag.mu.Lock()
	out := make([]Diagnosis, 0, len(diag.m))
	for _, d := range diag.m {
		out = append(out, d)
	}
	diag.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// WatchdogConfig tunes a Watchdog. The zero value is usable.
type WatchdogConfig struct {
	// Period is the scan interval; <= 0 selects 2s.
	Period time.Duration
	// Threshold is how long a stream may sit blocked without activity
	// before it is diagnosed; <= 0 selects 10s.
	Threshold time.Duration
	// Log, when set, receives one structured line per new diagnosis.
	Log *slog.Logger
	// Stacks includes the stuck streams' goroutine stacks (matched via
	// the junicon_stream pprof label) in diagnoses.
	Stacks bool
}

func (c WatchdogConfig) period() time.Duration {
	if c.Period <= 0 {
		return 2 * time.Second
	}
	return c.Period
}

func (c WatchdogConfig) threshold() time.Duration {
	if c.Threshold <= 0 {
		return 10 * time.Second
	}
	return c.Threshold
}

// Watchdog periodically scans the registry for stalled streams.
type Watchdog struct {
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartWatchdog launches a watchdog goroutine scanning every Period.
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go w.run()
	return w
}

// Stop terminates the watchdog and waits for its goroutine.
func (w *Watchdog) Stop() {
	w.once.Do(func() { close(w.stop) })
	<-w.done
}

func (w *Watchdog) run() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.period())
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.Scan()
		}
	}
}

// Scan performs one pass over the live registry, recording (and
// returning) the new diagnoses. Exported so tests and admin surfaces can
// trigger a deterministic scan.
func (w *Watchdog) Scan() []Diagnosis {
	now := time.Now()
	threshold := w.cfg.threshold()
	handles := liveHandles()

	// Stale-blocked candidates: inactive past the threshold, in a blocked
	// state. Everything else is healthy — running producers, draining
	// queues, and any stream that moved a value recently.
	type cand struct {
		h     *Handle
		state int32
	}
	stale := make(map[uint64]cand)
	for _, h := range handles {
		st := h.state.Load()
		if st != StateBlockedPut && st != StateBlockedTake {
			continue
		}
		if now.UnixNano()-h.lastActive.Load() < threshold.Nanoseconds() {
			clearDiagnosis(h.id) // it moved; any stale diagnosis is over
			continue
		}
		stale[h.id] = cand{h: h, state: st}
	}
	if len(stale) == 0 {
		return nil
	}

	// Cycle detection over consumes-from edges restricted to the stale
	// set: walk from each node; revisiting a node on the current path is
	// a cycle, and every on-path node from the revisit point is a member.
	inCycle := make(map[uint64][]uint64) // member -> the cycle's IDs
	for start := range stale {
		if _, done := inCycle[start]; done {
			continue
		}
		var path []uint64
		seen := make(map[uint64]int)
		cur := start
		for {
			if at, ok := seen[cur]; ok {
				cycle := append([]uint64(nil), path[at:]...)
				for _, id := range cycle {
					inCycle[id] = cycle
				}
				break
			}
			c, ok := stale[cur]
			if !ok {
				break // edge leaves the stale set: not a stuck cycle
			}
			seen[cur] = len(path)
			path = append(path, cur)
			next := c.h.consumesFrom.Load()
			if next == 0 {
				break
			}
			cur = next
		}
	}

	// A multiplexed session handle stuck in blocked-put is a shared writer
	// wedged in its socket write: the whole connection is backpressured,
	// and every stale stream riding it shares that cause (including ones
	// in blocked-take — their values are stuck behind the wedged writer,
	// not behind a slow producer).
	stuckConns := make(map[uint64]bool)
	for _, c := range stale {
		if c.h.kind == KindSession && c.state == StateBlockedPut {
			if conn := c.h.conn.Load(); conn != 0 {
				stuckConns[conn] = true
			}
		}
	}

	var out []Diagnosis
	for id, c := range stale {
		cause := ""
		var cycleIDs []string
		switch {
		case inCycle[id] != nil:
			cause = CauseActivationCycle
			for _, m := range inCycle[id] {
				cycleIDs = append(cycleIDs, StreamID(m))
			}
			sort.Strings(cycleIDs)
		case c.h.kind == KindSession && c.state == StateBlockedPut:
			cause = CauseConnBackpressure
		case c.h.conn.Load() != 0 && stuckConns[c.h.conn.Load()]:
			cause = CauseConnBackpressure
		case c.state == StateBlockedPut && c.h.kind == KindRemoteServer && c.h.credit.Load() == 0:
			cause = CauseCreditStarvation
		case c.state == StateBlockedPut:
			cause = CauseConsumerAbandoned
		default:
			// A lone blocked-take: a consumer waiting on a slow producer.
			// Normal demand; never a stall.
			continue
		}
		d := Diagnosis{
			Stream:    StreamID(id),
			Kind:      c.h.kind,
			Label:     c.h.label,
			Cause:     cause,
			State:     stateName(c.state),
			IdleNs:    now.UnixNano() - c.h.lastActive.Load(),
			Produced:  c.h.produced.Load(),
			Consumed:  c.h.consumed.Load(),
			Credit:    c.h.credit.Load(),
			Cycle:     cycleIDs,
			At:        now,
			Threshold: threshold,
		}
		if w.cfg.Stacks {
			d.Stacks = labeledStacks(id)
		}
		_, known := lookupDiagnosis(id)
		recordDiagnosis(id, d)
		if !known {
			cStallsDiagnosed.Inc()
			if w.cfg.Log != nil {
				w.cfg.Log.Warn("stream stalled",
					"stream", d.Stream,
					"kind", d.Kind,
					"label", d.Label,
					"cause", d.Cause,
					"state", d.State,
					"idle", time.Duration(d.IdleNs),
					"produced", d.Produced,
					"consumed", d.Consumed,
					"credit", d.Credit)
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stream < out[j].Stream })
	return out
}

// ProducerLabel is the pprof label key producer goroutines carry: its
// value is the stream's hex ID, which is what lets labeledStacks (and a
// human at /debug/pprof/goroutine?debug=1) find the goroutines serving a
// particular stuck stream.
const ProducerLabel = "junicon_stream"

// labeledStacks extracts the goroutine-profile entries labeled with the
// stream's ID. The debug=1 goroutine profile prints one block per unique
// stack, with a "# labels: {...}" line when the goroutines carry labels.
func labeledStacks(id uint64) string {
	p := pprof.Lookup("goroutine")
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	needle := []byte(ProducerLabel + `":"` + StreamID(id) + `"`)
	var out bytes.Buffer
	for _, block := range bytes.Split(buf.Bytes(), []byte("\n\n")) {
		if bytes.Contains(block, needle) {
			out.Write(bytes.TrimSpace(block))
			out.WriteString("\n\n")
		}
	}
	return out.String()
}
