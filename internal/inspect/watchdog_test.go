package inspect_test

// Watchdog classification tests: each of the three stall shapes the
// watchdog names — abandoned consumer, remote credit starvation, and a
// pipe-activation cycle — is seeded with real transports (pipes and an
// in-process remote server), and the diagnosis is asserted by cause.
// The negative tests pin the false-positive boundary: a consumer waiting
// on a slow producer, and a slow-but-moving stream, are never flagged.

import (
	"strings"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/pipe"
	"junicon/internal/remote"
	"junicon/internal/value"
)

const stallThreshold = 50 * time.Millisecond

// newScanner returns a watchdog that only scans when the test asks.
func newScanner(t *testing.T, stacks bool) *inspect.Watchdog {
	t.Helper()
	w := inspect.StartWatchdog(inspect.WatchdogConfig{
		Period:    time.Hour, // manual Scan only
		Threshold: stallThreshold,
		Stacks:    stacks,
	})
	t.Cleanup(w.Stop)
	return w
}

// awaitCause scans until a diagnosis with the wanted cause appears; one
// watchdog period in production is one Scan here, repeated while the
// threshold ages in.
func awaitCause(t *testing.T, w *inspect.Watchdog, cause string) inspect.Diagnosis {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, d := range w.Scan() {
			if d.Cause == cause {
				return d
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no %s diagnosis within deadline; have %+v", cause, inspect.Diagnoses())
	return inspect.Diagnosis{}
}

func TestWatchdogConsumerAbandoned(t *testing.T) {
	withInspect(t)
	w := newScanner(t, true)

	// A fast producer into a buffer of 2; the consumer takes one value and
	// walks away without Stop — the JV011 shape, caught at run time.
	p := pipe.FromGen(core.IntRange(1, 1_000_000), 2)
	defer p.Stop()
	if _, ok := p.Next(); !ok {
		t.Fatal("pipe produced nothing")
	}

	d := awaitCause(t, w, inspect.CauseConsumerAbandoned)
	if d.Kind != inspect.KindPipe {
		t.Fatalf("kind = %q, want pipe", d.Kind)
	}
	if d.State != "blocked-put" {
		t.Fatalf("state = %q, want blocked-put", d.State)
	}
	if d.IdleNs < stallThreshold.Nanoseconds() {
		t.Fatalf("idle %dns below threshold", d.IdleNs)
	}
	// Stacks were requested: the producer goroutine carries the
	// junicon_stream pprof label, so its stack must be in the diagnosis.
	if !strings.Contains(d.Stacks, "junicon_stream") {
		t.Fatalf("diagnosis missing labeled producer stack:\n%s", d.Stacks)
	}
	// The stalled stream's snapshot row links back to the diagnosis.
	found := false
	for _, in := range inspect.Snapshot() {
		if in.ID == d.Stream && in.Diagnosis == inspect.CauseConsumerAbandoned {
			found = true
		}
	}
	if !found {
		t.Fatal("snapshot row does not surface the diagnosis")
	}
}

func TestWatchdogCreditStarvation(t *testing.T) {
	withInspect(t)
	w := newScanner(t, false)

	srv := remote.NewServer()
	srv.Register("range", func(args []value.V) (core.Gen, error) {
		return core.IntRange(1, 1_000_000), nil
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}

	// A credit window of 2 and a consumer that takes one value and then
	// sits idle: the server's producer exhausts the window and blocks in
	// acquire with a zero balance — starvation, not abandonment, because
	// the client connection is alive (heartbeats keep flowing).
	p := remote.Open(addr.String(), "range", nil, remote.Config{Buffer: 2, Batch: -1})
	if _, ok := p.Next(); !ok {
		t.Fatalf("remote produced nothing: %v", p.Err())
	}

	d := awaitCause(t, w, inspect.CauseCreditStarvation)
	if d.Kind != inspect.KindRemoteServer {
		t.Fatalf("kind = %q, want remote-server", d.Kind)
	}
	if d.Credit != 0 {
		t.Fatalf("credit = %d, want 0", d.Credit)
	}

	p.Stop()
	srv.Close()
}

// funcGen adapts a closure to the generator protocol without the
// coroutine indirection core.NewGen introduces — the producer must call
// the closure on its own goroutine for consume edges to attach.
type funcGen func() (value.V, bool)

func (f funcGen) Next() (value.V, bool) { return f() }
func (f funcGen) Restart()              {}

func TestWatchdogActivationCycle(t *testing.T) {
	withInspect(t)
	w := newScanner(t, false)

	// Two pipes that consume each other — the JV012 shape, built
	// deliberately: each producer's first action is to demand a value from
	// the other pipe, so both block in take and the consumes-from edges
	// close a cycle.
	var pa, pb *pipe.Pipe
	pa = pipe.FromGen(funcGen(func() (value.V, bool) { return pb.Next() }), 1)
	pb = pipe.FromGen(funcGen(func() (value.V, bool) { return pa.Next() }), 1)
	defer pa.Stop()
	defer pb.Stop()

	// Kick the deadlock off from a goroutine we can abandon: Next blocks
	// forever until Stop tears the pipes down.
	go pa.Next()

	d := awaitCause(t, w, inspect.CauseActivationCycle)
	if len(d.Cycle) < 2 {
		t.Fatalf("cycle = %v, want both members", d.Cycle)
	}
}

func TestWatchdogHealthySlowStreamsNotFlagged(t *testing.T) {
	withInspect(t)
	w := newScanner(t, false)

	// A consumer blocked on a producer that hasn't yielded yet: lone
	// blocked-take, ordinary demand.
	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	slow := pipe.FromGen(core.NewGen(func(yield func(value.V) bool) {
		<-hang
	}), 1)
	defer slow.Stop()
	go slow.Next()

	// A slow but moving stream: a value every 10ms keeps lastActive fresh
	// relative to the threshold.
	ticking := pipe.FromGen(core.NewGen(func(yield func(value.V) bool) {
		for i := int64(1); ; i++ {
			time.Sleep(10 * time.Millisecond)
			if !yield(value.IntV(i)) {
				return
			}
		}
	}), 1)
	defer ticking.Stop()
	stopTick := make(chan struct{})
	t.Cleanup(func() { close(stopTick) })
	go func() {
		for {
			select {
			case <-stopTick:
				return
			default:
			}
			if _, ok := ticking.Next(); !ok {
				return
			}
		}
	}()

	// Scan well past the threshold: neither stream may ever be diagnosed.
	deadline := time.Now().Add(4 * stallThreshold)
	for time.Now().Before(deadline) {
		if ds := w.Scan(); len(ds) != 0 {
			t.Fatalf("healthy streams diagnosed: %+v", ds)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
