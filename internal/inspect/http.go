package inspect

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"
)

// HTTP exposure: the /debug/streams endpoint junicond mounts next to the
// telemetry handler. One JSON object: the topology snapshot plus the
// watchdog's latest diagnoses, safe to hit while streams are live.

// StreamsPayload is the /debug/streams response body.
type StreamsPayload struct {
	At        time.Time    `json:"at"`
	Streams   []StreamInfo `json:"streams"`
	Conns     []ConnGroup  `json:"conns,omitempty"`
	Diagnoses []Diagnosis  `json:"diagnoses,omitempty"`
}

// ConnGroup aggregates the streams sharing one multiplexed connection —
// the view that makes a stalled shared writer diagnosable: one glance
// shows the wedged session and how many streams ride on it.
type ConnGroup struct {
	Conn      string `json:"conn"`
	Streams   int    `json:"streams"`  // logical streams on the connection
	Sessions  int    `json:"sessions"` // session handles (normally 1 per end)
	Blocked   int    `json:"blocked"`  // streams in a blocked state
	Produced  int64  `json:"produced"` // values across the group's streams
	Diagnosis string `json:"diagnosis,omitempty"`
}

// ConnGroups folds a topology snapshot into per-connection groups,
// skipping streams on dedicated connections (Conn empty).
func ConnGroups(streams []StreamInfo) []ConnGroup {
	byConn := make(map[string]*ConnGroup)
	for _, s := range streams {
		if s.Conn == "" {
			continue
		}
		g := byConn[s.Conn]
		if g == nil {
			g = &ConnGroup{Conn: s.Conn}
			byConn[s.Conn] = g
		}
		if s.Kind == KindSession {
			g.Sessions++
			if g.Diagnosis == "" {
				g.Diagnosis = s.Diagnosis
			}
		} else {
			g.Streams++
			g.Produced += s.Produced
		}
		if s.State == "blocked-put" || s.State == "blocked-take" {
			g.Blocked++
		}
	}
	out := make([]ConnGroup, 0, len(byConn))
	for _, g := range byConn {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Conn < out[j].Conn })
	return out
}

// Handler serves the stream topology as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		streams := Snapshot()
		enc.Encode(StreamsPayload{
			At:        time.Now(),
			Streams:   streams,
			Conns:     ConnGroups(streams),
			Diagnoses: Diagnoses(),
		})
	})
}
