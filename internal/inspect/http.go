package inspect

import (
	"encoding/json"
	"net/http"
	"time"
)

// HTTP exposure: the /debug/streams endpoint junicond mounts next to the
// telemetry handler. One JSON object: the topology snapshot plus the
// watchdog's latest diagnoses, safe to hit while streams are live.

// StreamsPayload is the /debug/streams response body.
type StreamsPayload struct {
	At        time.Time    `json:"at"`
	Streams   []StreamInfo `json:"streams"`
	Diagnoses []Diagnosis  `json:"diagnoses,omitempty"`
}

// Handler serves the stream topology as JSON.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(StreamsPayload{
			At:        time.Now(),
			Streams:   Snapshot(),
			Diagnoses: Diagnoses(),
		})
	})
}
