package semtest

import (
	"fmt"
	"strings"

	"junicon/internal/remote"
	"junicon/internal/value"
)

// Chaos lanes: the durability counterpart of the schedule-stress lane.
// Where SchedQueue perturbs the transport's interleavings, these lanes
// perturb its *lifetime* — severing the connection or migrating the stream
// to another node at a seeded point mid-iteration — and still demand a
// trace byte-identical to the sequential reference. Crash recovery and
// live migration are availability features; this file is the executable
// statement that they are *only* availability features.

// chaosRun drains p like drainPipe, but fires disrupt once, immediately
// before the Next call that would deliver value number `after` (0-based).
// If the stream ends before that point the disruption never fires — a
// kill or migration aimed past EOS is a no-op by construction.
func chaosRun(p *remote.RemotePipe, max, after int, disrupt func()) Result {
	defer p.Stop()
	var r Result
	for i := 0; i < max; i++ {
		if i == after && disrupt != nil {
			disrupt()
			disrupt = nil
		}
		v, ok := p.Next()
		if !ok {
			break
		}
		r.Images = append(r.Images, value.Image(value.Deref(v)))
	}
	r.Failed = p.Err() != nil
	return r
}

// vetRejected mirrors Remote's OPEN-time filter: a stream the server
// refused to compile has no trace to compare.
func vetRejected(p *remote.RemotePipe, r Result) error {
	if len(r.Images) == 0 && r.Failed {
		if re, ok := p.Err().(*remote.RemoteError); ok &&
			(strings.Contains(re.Msg, "parse") || strings.Contains(re.Msg, "vet rejected")) {
			return fmt.Errorf("remote rejected: %v", re)
		}
	}
	return nil
}

// Killed evaluates the case as a recoverable source stream against addr,
// abruptly severs the transport just before value number `after` would be
// delivered, and lets the v4 recovery machinery (snapshot RESUME when
// cfg.CheckpointEvery produced one, deterministic replay otherwise) finish
// the iteration. The combined trace must equal the sequential reference.
func Killed(c Case, addr string, cfg remote.Config, after int) (Result, error) {
	cfg.Recover = true
	p := remote.OpenSource(addr, c.Program, c.Expr, nil, cfg)
	p.StartEager()
	r := chaosRun(p, c.max(), after, p.KillConn)
	if err := vetRejected(p, r); err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	return r, nil
}

// Migrated evaluates the case against addrA, live-migrates the stream to
// addrB just before value number `after` would be delivered, and finishes
// the iteration on the target node. No value may be lost, duplicated or
// reordered across the cutover: the trace must equal the sequential
// reference exactly.
func Migrated(c Case, addrA, addrB string, cfg remote.Config, after int) (Result, error) {
	p := remote.OpenSource(addrA, c.Program, c.Expr, nil, cfg)
	p.StartEager()
	var migErr error
	r := chaosRun(p, c.max(), after, func() { migErr = p.Migrate(addrB) })
	if migErr != nil {
		return Result{}, fmt.Errorf("%s: migrate: %w", c.Name, migErr)
	}
	if err := vetRejected(p, r); err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	return r, nil
}
