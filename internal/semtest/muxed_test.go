package semtest

import (
	"sync"
	"testing"

	"junicon/internal/remote"
	"junicon/internal/value"
)

// muxedLoopback starts a source-serving server and returns it with its
// address, for tests that assert connection counts.
func muxedLoopback(t *testing.T) (*remote.Server, string) {
	t.Helper()
	s := remote.NewServer()
	s.AllowSource = true
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("loopback server: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

// TestDifferentialMuxedGrid is the multiplexed headline check: every
// corpus case over the full buffer × batch grid, every stream riding ONE
// shared session, with seeded consumer pause schedules — and every trace
// byte-identical to the sequential reference. One dialer lives across
// the whole sweep precisely so that streams from different cases and
// grid cells interleave on the same connection.
func TestDifferentialMuxedGrid(t *testing.T) {
	srv, addr := muxedLoopback(t)
	d := &remote.Dialer{}
	defer d.Close()
	seed := int64(1)
	for _, c := range corpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			ref := reference(t, c)
			for _, cell := range Grid() {
				cfg := remote.Config{Buffer: cell.Buffer, Batch: cell.Batch}
				seed++
				got, err := Muxed(c, d, addr, cfg, seed)
				if err != nil {
					t.Fatalf("muxed %+v: %v", cell, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("muxed %+v diverged:\nref = %s\ngot = %s", cell, ref, got)
				}
			}
		})
	}
	if got := d.Sessions(); got != 1 {
		t.Fatalf("dialer used %d sessions for the whole sweep, want 1", got)
	}
	if got := srv.ActiveConns(); got != 1 {
		t.Fatalf("server saw %d connections, want 1", got)
	}
}

// TestMuxedConcurrentStreamsIsolated runs several corpus cases
// concurrently on one session and kills one stream of the many
// mid-flight: the killed stream errors, every sibling's trace stays
// byte-identical to its reference. The §3B bound is per stream, so one
// consumer's fate must never leak into its connection neighbors.
func TestMuxedConcurrentStreamsIsolated(t *testing.T) {
	_, addr := muxedLoopback(t)
	d := &remote.Dialer{}
	defer d.Close()

	cases := corpus(t)
	if len(cases) > 6 {
		cases = cases[:6]
	}
	refs := make([]Result, len(cases))
	for i, c := range cases {
		refs[i] = reference(t, c)
	}

	// The victim: a long stream killed after a few values.
	victim := d.OpenSource(addr, "", "1 to 100000", nil, remote.Config{Buffer: 4})
	defer victim.Stop()
	for i := 0; i < 3; i++ {
		if _, ok := victim.Next(); !ok {
			t.Fatalf("victim refused: %v", victim.Err())
		}
	}

	var wg sync.WaitGroup
	results := make([]Result, len(cases))
	errs := make([]error, len(cases))
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c Case) {
			defer wg.Done()
			results[i], errs[i] = Muxed(c, d, addr, remote.Config{Buffer: 2, Batch: 2}, int64(100+i))
		}(i, c)
	}
	// Stop the victim while the siblings are mid-flight: a per-stream
	// CANCEL on the shared session retires that one server producer and
	// must touch nothing else on the connection.
	victim.Stop()
	wg.Wait()

	for i, c := range cases {
		if errs[i] != nil {
			t.Fatalf("%s: %v", c.Name, errs[i])
		}
		if !results[i].Equal(refs[i]) {
			t.Fatalf("%s diverged next to a killed sibling:\nref = %s\ngot = %s",
				c.Name, refs[i], results[i])
		}
	}
	if got := d.Sessions(); got != 1 {
		t.Fatalf("sessions = %d, want 1", got)
	}
}

// TestMuxedKilledStreamFailsAlone severs one stream's server producer by
// a runtime error while siblings stream on the same session.
func TestMuxedKilledStreamFailsAlone(t *testing.T) {
	_, addr := muxedLoopback(t)
	d := &remote.Dialer{}
	defer d.Close()

	sib := d.OpenSource(addr, "", "1 to 500", nil, remote.Config{Buffer: 4, Batch: 4})
	defer sib.Stop()
	if _, ok := sib.Next(); !ok {
		t.Fatalf("sibling refused: %v", sib.Err())
	}

	// A dynamic type error mid-stream, hidden from the vet behind a call.
	bad := d.OpenSource(addr, `def double(x) { return x * 2; }`,
		"(1 to 5) | double(\"abc\")", nil, remote.Config{Buffer: 2, Batch: 2})
	defer bad.Stop()
	for {
		if _, ok := bad.Next(); !ok {
			break
		}
	}
	if bad.Err() == nil {
		t.Fatal("bad stream must fail")
	}

	n := 1
	for {
		v, ok := sib.Next()
		if !ok {
			break
		}
		n++
		if img := value.Image(value.Deref(v)); img == "" {
			t.Fatal("empty image")
		}
	}
	if sib.Err() != nil || n != 500 {
		t.Fatalf("sibling next to failed stream: err=%v n=%d want 500", sib.Err(), n)
	}
}
