package semtest

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"junicon/internal/remote"
	"junicon/internal/value"
)

// Muxed evaluates the case as a source stream opened through a session
// Dialer — the multiplexed transport, where this stream shares one TCP
// connection with whatever else the dialer has open. The consumer side
// injects pauses from a deterministically seeded schedule, forcing the
// interleavings the shared demux must survive: a slow consumer whose
// queue backpressures its stream while session siblings keep streaming,
// credit grants racing the shared writer's flush coalescing, and EOS
// landing while the consumer is parked. The trace must still be the
// sequential reference's, value for value — multiplexing is a transport
// economy, never a semantics change.
func Muxed(c Case, d *remote.Dialer, addr string, cfg remote.Config, seed int64) (Result, error) {
	p := d.OpenSource(addr, c.Program, c.Expr, nil, cfg)
	defer p.Stop()
	rng := rand.New(rand.NewSource(seed))
	var r Result
	for i := 0; i < c.max(); i++ {
		// Seeded consumer pacing: mostly full speed, sometimes a yield,
		// occasionally a real stall — enough to swing the credit window
		// between empty and full across the run.
		switch n := rng.Intn(8); {
		case n < 4:
		case n < 7:
			runtime.Gosched()
		default:
			time.Sleep(50 * time.Microsecond)
		}
		v, ok := p.Next()
		if !ok {
			break
		}
		r.Images = append(r.Images, value.Image(value.Deref(v)))
	}
	r.Failed = p.Err() != nil
	// Same OPEN-rejection carve-out as Remote: a parse/vet refusal means
	// the sequential reference could not have run either.
	if len(r.Images) == 0 && r.Failed {
		if re, ok := p.Err().(*remote.RemoteError); ok &&
			(strings.Contains(re.Msg, "parse") || strings.Contains(re.Msg, "vet rejected")) {
			return Result{}, fmt.Errorf("muxed remote rejected %s: %v", c.Name, re)
		}
	}
	return r, nil
}
