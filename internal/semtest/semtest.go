// Package semtest is a differential semantics harness for the concurrent
// generator transports: it evaluates one generator expression three ways —
// sequentially on the kernel, through a batched pipe, and through a remote
// pipe over loopback — and reduces each run to the same observable trace
// (the sequence of value images plus whether the sequence ended in failure
// propagation). Batching and distribution are performance features; this
// package is the executable statement that they are *only* performance
// features. Every transport knob (buffer size, batch size, queue
// implementation, injected schedule) must leave the trace identical to the
// sequential reference, or the optimization has changed the language.
package semtest

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/pipe"
	"junicon/internal/pool"
	"junicon/internal/queue"
	"junicon/internal/remote"
	"junicon/internal/value"
)

// DefaultMax bounds how many results a run drains; the corpus is finite
// well under this, so hitting it means a transport invented values.
const DefaultMax = 4000

// Case is one generator expression under differential test.
type Case struct {
	Name    string
	Program string // declarations loaded before evaluation (may be empty)
	Expr    string // the generator expression to evaluate
	Max     int    // drain bound; 0 selects DefaultMax
}

func (c Case) max() int {
	if c.Max <= 0 {
		return DefaultMax
	}
	return c.Max
}

// Result is the observable trace of one run: the images of the values
// produced, in order, and whether the sequence terminated by failure
// propagation (an error) rather than ordinary exhaustion.
type Result struct {
	Images []string
	Failed bool
}

// Equal reports trace equivalence.
func (r Result) Equal(o Result) bool {
	if r.Failed != o.Failed || len(r.Images) != len(o.Images) {
		return false
	}
	for i := range r.Images {
		if r.Images[i] != o.Images[i] {
			return false
		}
	}
	return true
}

func (r Result) String() string {
	return fmt.Sprintf("%v failed=%v", r.Images, r.Failed)
}

// GridCell is one transport configuration of the buffer × batch grid.
type GridCell struct{ Buffer, Batch int }

// Grid is the standard buffer × batch-size sweep: buffers from
// future-sized to generous, batch sizes straddling every flush boundary
// (1 = degenerate, 2 = constant flushing, batch > buffer = flush blocks
// for space, batch ≫ stream = EOS-mid-batch).
func Grid() []GridCell {
	var cells []GridCell
	for _, buffer := range []int{1, 2, 64} {
		for _, batch := range []int{1, 2, 8, 64} {
			cells = append(cells, GridCell{buffer, batch})
		}
	}
	return cells
}

// newInterp builds a fresh interpreter with the case's program loaded and
// writes discarded (corpus programs may call write; its return value, not
// the output stream, is the observable here).
func newInterp(c Case, opts ...interp.Option) (*interp.Interp, error) {
	in := interp.New(append([]interp.Option{interp.WithOutput(io.Discard)}, opts...)...)
	if c.Program != "" {
		if err := in.LoadProgram(c.Program); err != nil {
			return nil, fmt.Errorf("load %s: %w", c.Name, err)
		}
	}
	return in, nil
}

// fusedGen evaluates the case on a facts-optimizing interpreter (fusion,
// pipe inlining, buffer sizing on) and returns the generator.
func fusedGen(c Case) (core.Gen, error) {
	in, err := newInterp(c, interp.WithOptimize())
	if err != nil {
		return nil, err
	}
	g, err := in.EvalGen(c.Expr)
	if err != nil {
		return nil, fmt.Errorf("eval %s: %w", c.Name, err)
	}
	return g, nil
}

// drainGen drains a plain generator under core.Protect, folding a raised
// runtime error into Failed.
func drainGen(g core.Gen, max int) Result {
	var r Result
	err := core.Protect(func() {
		for i := 0; i < max; i++ {
			v, ok := g.Next()
			if !ok {
				return
			}
			r.Images = append(r.Images, value.Image(value.Deref(v)))
		}
	})
	r.Failed = err != nil
	return r
}

// Sequential evaluates the case on the kernel with no concurrency at all —
// the reference trace every transport is judged against.
func Sequential(c Case) (Result, error) {
	in, err := newInterp(c)
	if err != nil {
		return Result{}, err
	}
	g, err := in.EvalGen(c.Expr)
	if err != nil {
		return Result{}, fmt.Errorf("eval %s: %w", c.Name, err)
	}
	return drainGen(g, c.max()), nil
}

// Fused evaluates the case on the kernel with facts-driven optimization
// enabled — statically justified product fusion, pipe inlining and buffer
// sizing. The optimizer's contract is that it is invisible: the trace must
// equal the Sequential reference on every case.
func Fused(c Case) (Result, error) {
	g, err := fusedGen(c)
	if err != nil {
		return Result{}, err
	}
	return drainGen(g, c.max()), nil
}

// FusedBatched is Batched with the optimizing interpreter underneath: the
// fused generator drains through a batched pipe, so fusion composes with
// every buffer × batch cell of the transport grid.
func FusedBatched(c Case, buffer, batch int) (Result, error) {
	g, err := fusedGen(c)
	if err != nil {
		return Result{}, err
	}
	return drainPipe(pipe.FromGenBatched(g, buffer, batch), c.max()), nil
}

// FusedPooled is Pooled with the optimizing interpreter underneath.
func FusedPooled(c Case, pl *pool.Pool, buffer, batch int) (Result, error) {
	g, err := fusedGen(c)
	if err != nil {
		return Result{}, err
	}
	return drainPipe(pipe.FromGenBatched(g, buffer, batch).OnPool(pl), c.max()), nil
}

// drainPipe drains a pipe-like generator (local or remote): producer
// errors surface as a failed Next plus a non-nil Err, which the trace
// records as failure propagation.
func drainPipe(g interface {
	Next() (value.V, bool)
	Err() error
	Stop()
}, max int) Result {
	defer g.Stop()
	var r Result
	for i := 0; i < max; i++ {
		v, ok := g.Next()
		if !ok {
			break
		}
		r.Images = append(r.Images, value.Image(value.Deref(v)))
	}
	r.Failed = g.Err() != nil
	return r
}

// Batched evaluates the case through a batched pipe with the given buffer
// and batch size.
func Batched(c Case, buffer, batch int) (Result, error) {
	in, err := newInterp(c)
	if err != nil {
		return Result{}, err
	}
	g, err := in.EvalGen(c.Expr)
	if err != nil {
		return Result{}, fmt.Errorf("eval %s: %w", c.Name, err)
	}
	return drainPipe(pipe.FromGenBatched(g, buffer, batch), c.max()), nil
}

// Pooled evaluates the case through a batched pipe whose producer runs on
// a reused worker from pl instead of a goroutine of its own — the pooled
// execution mode must be trace-identical to the per-goroutine mode.
func Pooled(c Case, pl *pool.Pool, buffer, batch int) (Result, error) {
	in, err := newInterp(c)
	if err != nil {
		return Result{}, err
	}
	g, err := in.EvalGen(c.Expr)
	if err != nil {
		return Result{}, fmt.Errorf("eval %s: %w", c.Name, err)
	}
	return drainPipe(pipe.FromGenBatched(g, buffer, batch).OnPool(pl), c.max()), nil
}

// BatchedWithQueue evaluates the case through a batched pipe over a
// caller-supplied transport queue — the stress mode's entry point, letting
// a schedule-injecting wrapper sit at the queue boundary.
func BatchedWithQueue(c Case, mk func() queue.Queue[value.V], batch int) (Result, error) {
	in, err := newInterp(c)
	if err != nil {
		return Result{}, err
	}
	g, err := in.EvalGen(c.Expr)
	if err != nil {
		return Result{}, fmt.Errorf("eval %s: %w", c.Name, err)
	}
	return drainPipe(pipe.NewBatchedWithQueue(core.NewFirstClass(g), mk, batch), c.max()), nil
}

// Remote evaluates the case as a source stream against a loopback server
// at addr (which must have AllowSource set), using cfg's buffer/batch.
func Remote(c Case, addr string, cfg remote.Config) (Result, error) {
	p := remote.OpenSource(addr, c.Program, c.Expr, nil, cfg)
	r := drainPipe(p, c.max())
	// An OPEN-time rejection (parse error, vet finding) is a harness
	// error, not a trace: the sequential reference would have failed to
	// compile too, so there is nothing to compare.
	if len(r.Images) == 0 && r.Failed {
		if re, ok := p.Err().(*remote.RemoteError); ok &&
			(strings.Contains(re.Msg, "parse") || strings.Contains(re.Msg, "vet rejected")) {
			return Result{}, fmt.Errorf("remote rejected %s: %v", c.Name, re)
		}
	}
	return r, nil
}

// SchedQueue wraps a transport queue and injects pauses at its batch
// boundaries from a deterministically seeded schedule. With a capacity-1
// or capacity-2 inner queue this forces the interleavings the batcher's
// flush protocol must survive: flush-on-block (PutBatch stalls for space
// mid-run), consumer steals racing the flush, EOS flushing a partial run
// into a paused consumer, and Stop arriving while a PutBatch is parked.
// The schedule (which operations pause, and for how long) is a pure
// function of the seed, so a failing interleaving is replayable.
type SchedQueue struct {
	queue.Queue[value.V]
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSchedQueue wraps q with the pause schedule derived from seed.
func NewSchedQueue(q queue.Queue[value.V], seed int64) *SchedQueue {
	return &SchedQueue{Queue: q, rng: rand.New(rand.NewSource(seed))}
}

// pause draws the next schedule decision: nothing, a yield, or a short
// sleep (long enough to let the other side run, short enough to keep the
// suite fast).
func (s *SchedQueue) pause() {
	s.mu.Lock()
	n := s.rng.Intn(8)
	s.mu.Unlock()
	switch {
	case n < 4: // no pause
	case n < 7:
		runtime.Gosched()
	default:
		time.Sleep(50 * time.Microsecond)
	}
}

func (s *SchedQueue) Put(v value.V) error {
	s.pause()
	return s.Queue.Put(v)
}

func (s *SchedQueue) Take() (value.V, error) {
	s.pause()
	return s.Queue.Take()
}

func (s *SchedQueue) PutBatch(vs []value.V) (int, error) {
	s.pause()
	n, err := s.Queue.PutBatch(vs)
	s.pause()
	return n, err
}

func (s *SchedQueue) TakeBatch(dst []value.V) (int, error) {
	s.pause()
	return s.Queue.TakeBatch(dst)
}

func (s *SchedQueue) TryTakeBatch(dst []value.V) (int, error) {
	s.pause()
	return s.Queue.TryTakeBatch(dst)
}
