package semtest

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/pipe"
	"junicon/internal/pool"
)

// Compiled lanes: the case evaluates on a vm-enabled interpreter, so any
// unit the bytecode compiler can lower runs as a slot-framed machine and
// the rest tree-walks. The vm's contract is the same as every other knob
// in this harness: pure performance, identical trace.

// compiledGen evaluates the case on a vm-enabled interpreter.
func compiledGen(c Case) (core.Gen, error) {
	in, err := newInterp(c, interp.WithVM())
	if err != nil {
		return nil, err
	}
	g, err := in.EvalGen(c.Expr)
	if err != nil {
		return nil, fmt.Errorf("eval %s: %w", c.Name, err)
	}
	return g, nil
}

// Compiled evaluates the case under the bytecode vm, no transport.
func Compiled(c Case) (Result, error) {
	g, err := compiledGen(c)
	if err != nil {
		return Result{}, err
	}
	return drainGen(g, c.max()), nil
}

// CompiledBatched drains the compiled generator through a batched pipe —
// compiled frames must compose with the transport grid unchanged.
func CompiledBatched(c Case, buffer, batch int) (Result, error) {
	g, err := compiledGen(c)
	if err != nil {
		return Result{}, err
	}
	return drainPipe(pipe.FromGenBatched(g, buffer, batch), c.max()), nil
}

// CompiledPooled is CompiledBatched with the producer on a pool worker.
func CompiledPooled(c Case, pl *pool.Pool, buffer, batch int) (Result, error) {
	g, err := compiledGen(c)
	if err != nil {
		return Result{}, err
	}
	return drainPipe(pipe.FromGenBatched(g, buffer, batch).OnPool(pl), c.max()), nil
}

// RandomExpr generates a random goal-directed expression from a small
// grammar of generator forms: ranges, alternation, products, limits,
// repeated alternation, promotion, arithmetic and comparisons over
// generators, if/else, not, and list formation. Every production
// terminates (repeated alternation is always limited), so the result
// sequence is finite; type errors are possible by construction (string
// operands under arithmetic) and legitimate — a raised error is part of
// the observable trace and must reproduce identically on every lane.
func RandomExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return strconv.Itoa(rng.Intn(10))
		case 1:
			return strconv.Itoa(1 + rng.Intn(5))
		case 2:
			return `"` + string(rune('a'+rng.Intn(3))) + `"`
		default:
			return "&null"
		}
	}
	sub := func() string { return RandomExpr(rng, depth-1) }
	switch rng.Intn(12) {
	case 0:
		return fmt.Sprintf("(%d to %d)", rng.Intn(6), rng.Intn(12))
	case 1:
		return fmt.Sprintf("(%d to %d by %d)", rng.Intn(8), rng.Intn(8), 1+rng.Intn(3))
	case 2:
		return "(" + sub() + " | " + sub() + ")"
	case 3:
		return "(" + sub() + " & " + sub() + ")"
	case 4:
		op := []string{"+", "-", "*"}[rng.Intn(3)]
		return "(" + sub() + " " + op + " " + sub() + ")"
	case 5:
		op := []string{"<", "<=", ">", "~="}[rng.Intn(4)]
		return "(" + sub() + " " + op + " " + sub() + ")"
	case 6:
		return fmt.Sprintf("(%s \\ %d)", sub(), rng.Intn(4))
	case 7:
		return fmt.Sprintf("((|%s) \\ %d)", sub(), 1+rng.Intn(5))
	case 8:
		return "![" + sub() + ", " + sub() + "]"
	case 9:
		return "!" + `"` + strings.Repeat("ab", 1+rng.Intn(2)) + `"`
	case 10:
		return "(if " + sub() + " then " + sub() + " else " + sub() + ")"
	case 11:
		return "(not " + sub() + ")"
	}
	return "1"
}
