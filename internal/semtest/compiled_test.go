package semtest

import (
	"fmt"
	"math/rand"
	"testing"

	"junicon/internal/pool"
)

// TestDifferentialCompiledGrid is the bytecode vm's semantic gate: every
// corpus case evaluated under compiled execution — directly, through every
// buffer × batch cell of the transport grid, and on pooled workers — must
// reproduce the tree-walk sequential trace exactly. The vm compiles what
// it can and falls back where it can't; either way the trace is the
// language, and it must not move.
func TestDifferentialCompiledGrid(t *testing.T) {
	pl := pool.New(4)
	defer pl.Shutdown()
	for _, c := range corpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			ref := reference(t, c)
			got, err := Compiled(c)
			if err != nil {
				t.Fatalf("compiled: %v", err)
			}
			if !got.Equal(ref) {
				t.Fatalf("compiled diverged:\nref = %s\ngot = %s", ref, got)
			}
			for _, cell := range Grid() {
				got, err := CompiledBatched(c, cell.Buffer, cell.Batch)
				if err != nil {
					t.Fatalf("compiled batched %+v: %v", cell, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("compiled batched %+v diverged:\nref = %s\ngot = %s", cell, ref, got)
				}
				got, err = CompiledPooled(c, pl, cell.Buffer, cell.Batch)
				if err != nil {
					t.Fatalf("compiled pooled %+v: %v", cell, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("compiled pooled %+v diverged:\nref = %s\ngot = %s", cell, ref, got)
				}
			}
		})
	}
}

// TestCompiledRandomExpressions drives the vm with two random grammars:
// the harness's finite-generator exprGen (products, calls, limits) and the
// exported RandomExpr grammar (which also produces type errors, testing
// that raised errors reproduce at the same point in the trace). Each
// sample must match the tree-walk reference exactly.
func TestCompiledRandomExpressions(t *testing.T) {
	const prelude = `
def gen(a, b) { suspend a to b; }
def double(x) { return x * 2; }
`
	iterations := 120
	if testing.Short() {
		iterations = 25
	}
	eg := &exprGen{rng: rand.New(rand.NewSource(11))}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < iterations; i++ {
		expr := eg.expr(3)
		if i%2 == 1 {
			expr = RandomExpr(rng, 3)
		}
		c := Case{Name: fmt.Sprintf("compiled-rand-%d", i), Program: prelude, Expr: expr}
		ref := reference(t, c)
		got, err := Compiled(c)
		if err != nil {
			t.Fatalf("%s (%s) compiled: %v", c.Name, c.Expr, err)
		}
		if !got.Equal(ref) {
			t.Fatalf("%s: %s\ncompiled diverged:\nref = %s\ngot = %s", c.Name, c.Expr, ref, got)
		}
	}
}
