package semtest

import (
	"hash/fnv"
	"math/rand"
	"testing"
	"time"

	"junicon/internal/remote"
	"junicon/internal/value"
)

// chaosSeed derives a per-case schedule seed so kill/migrate points are
// deterministic (replayable from the test log) yet spread across cases.
func chaosSeed(name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64())
}

// chaosCorpus trims the streams whose full length would make a dozen
// redials per case needlessly slow; the disruption points still land
// inside the trimmed window.
func chaosCorpus(t *testing.T) []Case {
	cases := corpus(t)
	for i := range cases {
		if cases[i].Name == "big-stream" {
			cases[i].Max = 300
		}
	}
	return cases
}

func chaosCells(t *testing.T) []GridCell {
	cells := Grid()
	if testing.Short() {
		cells = cells[:4]
	}
	return cells
}

// TestChaosKilledGrid is the crash lane: every corpus case, across the
// buffer × batch grid, with the connection severed at a seeded point
// mid-iteration. Even-numbered cells recover by deterministic replay,
// odd-numbered cells checkpoint every 3 values and recover by snapshot
// RESUME. Both paths must reproduce the sequential trace byte-for-byte —
// including the failure-propagation cases, whose raised error must
// survive a crash that lands before it.
func TestChaosKilledGrid(t *testing.T) {
	addr := loopback(t)
	for _, c := range chaosCorpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			ref := reference(t, c)
			if c.Max > 0 && len(ref.Images) > c.Max {
				ref.Images = ref.Images[:c.Max]
			}
			rng := rand.New(rand.NewSource(chaosSeed(c.Name)))
			for i, cell := range chaosCells(t) {
				after := rng.Intn(len(ref.Images) + 2) // sometimes past EOS
				cfg := remote.Config{
					Buffer:      cell.Buffer,
					Batch:       cell.Batch,
					RecoverWait: 5 * time.Second,
				}
				if i%2 == 1 {
					cfg.CheckpointEvery = 3
				}
				got, err := Killed(c, addr, cfg, after)
				if err != nil {
					t.Fatalf("killed %+v after=%d: %v", cell, after, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("killed %+v after=%d ckpt=%d diverged:\nref = %s\ngot = %s",
						cell, after, cfg.CheckpointEvery, ref, got)
				}
			}
		})
	}
}

// TestChaosMigratedGrid is the migration lane: every corpus case, across
// the grid, live-migrated between two nodes at a seeded point. The
// snapshot handshake (SNAPREQ → SNAPSHOT → RESUME on the target) carries
// compiled frames; named refusals and post-EOS migrations fall back to
// replay — either way the trace must not move.
func TestChaosMigratedGrid(t *testing.T) {
	addrA := loopback(t)
	addrB := loopback(t)
	for _, c := range chaosCorpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			ref := reference(t, c)
			if c.Max > 0 && len(ref.Images) > c.Max {
				ref.Images = ref.Images[:c.Max]
			}
			rng := rand.New(rand.NewSource(chaosSeed(c.Name) + 1))
			for i, cell := range chaosCells(t) {
				after := rng.Intn(len(ref.Images) + 2)
				cfg := remote.Config{
					Buffer:      cell.Buffer,
					Batch:       cell.Batch,
					RecoverWait: 5 * time.Second,
				}
				if i%2 == 1 {
					cfg.CheckpointEvery = 3
				}
				got, err := Migrated(c, addrA, addrB, cfg, after)
				if err != nil {
					t.Fatalf("migrated %+v after=%d: %v", cell, after, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("migrated %+v after=%d ckpt=%d diverged:\nref = %s\ngot = %s",
						cell, after, cfg.CheckpointEvery, ref, got)
				}
			}
		})
	}
}

// TestChaosKilledTwice kills the same stream at two different points: the
// second recovery stacks on the first (replay skip compounds, snapshots
// advance), and the trace still must not move.
func TestChaosKilledTwice(t *testing.T) {
	addr := loopback(t)
	c := Case{Name: "killed-twice", Program: "def gen(a, b) { suspend a to b; }",
		Expr: "gen(1, 40) + 100"}
	ref := reference(t, c)
	for _, interval := range []int{0, 4} {
		cfg := remote.Config{Buffer: 4, Batch: 2, Recover: true,
			RecoverWait: 5 * time.Second, CheckpointEvery: interval}
		p := remote.OpenSource(addr, c.Program, c.Expr, nil, cfg)
		p.StartEager()
		kills := map[int]bool{9: true, 23: true}
		var got Result
		func() {
			defer p.Stop()
			for i := 0; i < c.max(); i++ {
				if kills[i] {
					p.KillConn()
				}
				v, ok := p.Next()
				if !ok {
					break
				}
				got.Images = append(got.Images, value.Image(value.Deref(v)))
			}
			got.Failed = p.Err() != nil
		}()
		if !got.Equal(ref) {
			t.Fatalf("ckpt=%d diverged:\nref = %s\ngot = %s", interval, ref, got)
		}
	}
}
