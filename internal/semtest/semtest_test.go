package semtest

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/pipe"
	"junicon/internal/pool"
	"junicon/internal/queue"
	"junicon/internal/remote"
	"junicon/internal/value"
)

// corpus returns the differential cases: hand-written kernel expressions,
// the repository's testdata/ programs driven through their generator
// procedures, and error-propagation cases whose sequences end in failure.
func corpus(t *testing.T) []Case {
	t.Helper()
	cases := []Case{
		{Name: "range", Expr: "1 to 10"},
		{Name: "empty", Expr: "1 > 2"},
		{Name: "single", Expr: "42"},
		{Name: "alternation", Expr: "(1 to 3) | (7 to 9) | 100"},
		{Name: "product", Expr: "(1 to 5) & (1 to 3)"},
		{Name: "arith-over-gens", Expr: "(1 to 4) * (1 to 4)"},
		{Name: "nested-lists", Expr: "[1 to 3, [4 | 5]]"},
		{Name: "comparison-filter", Expr: "(1 to 20) % 3 > 1"},
		{Name: "strings", Expr: "(\"a\" | \"bc\") || (\"x\" | \"yz\")"},
		{Name: "big-stream", Expr: "1 to 3000"},
	}
	// Programs from testdata/, driven through their suspend-ing
	// procedures. coordinate.jn and pipeline.jn need host-bound natives
	// (this::compile, the lines global), so they stay on the interpreter
	// examples path; everything self-contained runs here.
	load := func(name string) string {
		src, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
		if err != nil {
			t.Fatalf("corpus: %v", err)
		}
		return string(src)
	}
	concurrent := load("concurrent.jn")
	cases = append(cases,
		Case{Name: "concurrent/evens", Program: concurrent, Expr: "evens(20)"},
		Case{Name: "concurrent/piped", Program: concurrent, Expr: "piped(7)"},
		Case{Name: "concurrent/refreshed", Program: concurrent, Expr: "refreshed(6)"},
		Case{Name: "concurrent/restartPipe", Program: concurrent, Expr: "restartPipe(5)"},
		Case{Name: "queens", Program: load("queens.jn"), Expr: "queens(5)"},
		Case{Name: "primes", Program: load("quickstart.jn"), Expr: "primesBelow(60)"},
		Case{Name: "scanner/tokens", Program: load("scanner.jn"), Expr: "tokens(\"  12 abc x9  7 \")"},
		Case{Name: "scanner/pairs", Program: load("scanner.jn"), Expr: "pairs(\"a=1;b=22;c=333;\")"},
	)
	// Failure propagation: sequences that raise a runtime error after
	// zero or several values. The dynamic type error hides behind a
	// procedure call so the static analyzer cannot reject the source
	// stream before it runs.
	const failing = `def double(x) { return x * 2; }`
	cases = append(cases,
		Case{Name: "fail/immediately", Program: failing, Expr: "double(\"abc\")"},
		Case{Name: "fail/mid-stream", Program: failing, Expr: "(1 to 5) | double(\"abc\")"},
	)
	return cases
}

// loopback starts a source-serving loopback server shared by a test.
func loopback(t *testing.T) string {
	t.Helper()
	s := remote.NewServer()
	s.AllowSource = true
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("loopback server: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return addr.String()
}

func reference(t *testing.T, c Case) Result {
	t.Helper()
	ref, err := Sequential(c)
	if err != nil {
		t.Fatalf("%s: sequential reference: %v", c.Name, err)
	}
	return ref
}

// TestDifferentialCorpusGrid is the headline check: every corpus case,
// through every buffer × batch cell of the local grid and through the
// remote transport, must reproduce the sequential trace exactly.
func TestDifferentialCorpusGrid(t *testing.T) {
	addr := loopback(t)
	for _, c := range corpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			ref := reference(t, c)
			for _, cell := range Grid() {
				got, err := Batched(c, cell.Buffer, cell.Batch)
				if err != nil {
					t.Fatalf("batched %+v: %v", cell, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("batched %+v diverged:\nref = %s\ngot = %s", cell, ref, got)
				}
			}
			for _, cfg := range []remote.Config{
				{Buffer: 1, Batch: 2},
				{Buffer: 8, Batch: -1}, // per-value VALUE frames
				{Buffer: 64},           // DefaultBatch
			} {
				got, err := Remote(c, addr, cfg)
				if err != nil {
					t.Fatalf("remote %+v: %v", cfg, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("remote %+v diverged:\nref = %s\ngot = %s", cfg, ref, got)
				}
			}
		})
	}
}

// TestDifferentialPooledGrid runs the corpus through pipes whose producers
// execute on reused pool workers: every buffer × batch cell of the grid,
// over pools of 1 worker (all producers fully serialized) and 4. Pooled
// execution is a scheduling change only; each trace must match the
// sequential reference exactly, including the failure-propagation cases
// (a producer error must release its worker back to the pool).
func TestDifferentialPooledGrid(t *testing.T) {
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pl := pool.New(workers)
			defer pl.Shutdown()
			for _, c := range corpus(t) {
				ref := reference(t, c)
				for _, cell := range Grid() {
					got, err := Pooled(c, pl, cell.Buffer, cell.Batch)
					if err != nil {
						t.Fatalf("%s pooled %+v: %v", c.Name, cell, err)
					}
					if !got.Equal(ref) {
						t.Fatalf("%s pooled %+v diverged:\nref = %s\ngot = %s", c.Name, cell, ref, got)
					}
				}
			}
		})
	}
}

// TestDifferentialFusedGrid is the optimizer's semantic gate: every corpus
// case evaluated with facts-driven optimization on — directly, through
// every buffer × batch cell of the transport grid, and on pooled workers —
// must reproduce the unoptimized sequential trace exactly. Any divergence
// means a fusion, inlining or buffer-sizing decision changed the language,
// not just its speed.
func TestDifferentialFusedGrid(t *testing.T) {
	pl := pool.New(4)
	defer pl.Shutdown()
	for _, c := range corpus(t) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			ref := reference(t, c)
			got, err := Fused(c)
			if err != nil {
				t.Fatalf("fused: %v", err)
			}
			if !got.Equal(ref) {
				t.Fatalf("fused diverged:\nref = %s\ngot = %s", ref, got)
			}
			for _, cell := range Grid() {
				got, err := FusedBatched(c, cell.Buffer, cell.Batch)
				if err != nil {
					t.Fatalf("fused batched %+v: %v", cell, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("fused batched %+v diverged:\nref = %s\ngot = %s", cell, ref, got)
				}
				got, err = FusedPooled(c, pl, cell.Buffer, cell.Batch)
				if err != nil {
					t.Fatalf("fused pooled %+v: %v", cell, err)
				}
				if !got.Equal(ref) {
					t.Fatalf("fused pooled %+v diverged:\nref = %s\ngot = %s", cell, ref, got)
				}
			}
		})
	}
}

// TestFusedRandomExpressions extends the property-based sweep to the
// optimizer: random finite-generator expressions evaluated fused must match
// the unoptimized reference. The grammar's products and procedure calls
// exercise the fusion prefix logic far beyond the hand-written corpus.
func TestFusedRandomExpressions(t *testing.T) {
	const prelude = `
def gen(a, b) { suspend a to b; }
def double(x) { return x * 2; }
`
	iterations := 120
	if testing.Short() {
		iterations = 25
	}
	eg := &exprGen{rng: rand.New(rand.NewSource(7))}
	for i := 0; i < iterations; i++ {
		c := Case{Name: fmt.Sprintf("fused-rand-%d", i), Program: prelude, Expr: eg.expr(3)}
		ref := reference(t, c)
		got, err := Fused(c)
		if err != nil {
			t.Fatalf("%s (%s) fused: %v", c.Name, c.Expr, err)
		}
		if !got.Equal(ref) {
			t.Fatalf("%s: %s\nfused diverged:\nref = %s\ngot = %s", c.Name, c.Expr, ref, got)
		}
	}
}

// exprGen builds random well-formed expressions over FINITE generators —
// the transform package's generative grammar, pointed at the transports
// instead of the normalizer.
type exprGen struct{ rng *rand.Rand }

func (g *exprGen) expr(depth int) string {
	if depth <= 0 {
		return g.leaf()
	}
	switch g.rng.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s | %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s & %s)", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s > %s)", g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("gen(%s, %s)", g.leaf(), g.leaf())
	case 6:
		return fmt.Sprintf("double(%s)", g.expr(depth-1))
	case 7:
		return fmt.Sprintf("(%s to %s)", g.leaf(), g.leaf())
	case 8:
		return fmt.Sprintf("[%s, %s]", g.expr(depth-1), g.leaf())
	default:
		return fmt.Sprintf("-(%s)", g.expr(depth-1))
	}
}

func (g *exprGen) leaf() string { return fmt.Sprintf("%d", 1+g.rng.Intn(4)) }

// TestDifferentialRandomExpressions drives property-based random
// expressions through a sub-grid chosen to hit the interesting flush
// regimes, plus the remote transport.
func TestDifferentialRandomExpressions(t *testing.T) {
	const prelude = `
def gen(a, b) { suspend a to b; }
def double(x) { return x * 2; }
`
	iterations := 120
	if testing.Short() {
		iterations = 25
	}
	addr := loopback(t)
	eg := &exprGen{rng: rand.New(rand.NewSource(42))}
	cells := []GridCell{{1, 2}, {2, 8}, {64, 64}}
	for i := 0; i < iterations; i++ {
		c := Case{Name: fmt.Sprintf("rand-%d", i), Program: prelude, Expr: eg.expr(3)}
		ref := reference(t, c)
		for _, cell := range cells {
			got, err := Batched(c, cell.Buffer, cell.Batch)
			if err != nil {
				t.Fatalf("%s (%s) batched %+v: %v", c.Name, c.Expr, cell, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("%s: %s\nbatched %+v diverged:\nref = %s\ngot = %s",
					c.Name, c.Expr, cell, ref, got)
			}
		}
		got, err := Remote(c, addr, remote.Config{Buffer: 8, Batch: 4})
		if err != nil {
			t.Fatalf("%s (%s) remote: %v", c.Name, c.Expr, err)
		}
		if !got.Equal(ref) {
			t.Fatalf("%s: %s\nremote diverged:\nref = %s\ngot = %s", c.Name, c.Expr, ref, got)
		}
	}
}

// TestDifferentialScheduleStress replays the corpus through tiny transport
// queues wrapped in seeded pause schedules: capacity 1 and 2 force every
// flush to block for space, the schedule's pauses at the batch boundaries
// stagger producer and consumer into steal-during-flush and EOS-mid-batch
// interleavings, and the trace must still be byte-identical.
func TestDifferentialScheduleStress(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, c := range corpus(t) {
		c := c
		if c.Name == "big-stream" {
			c.Max = 500 // pauses make the full 3000 needlessly slow
		}
		t.Run(c.Name, func(t *testing.T) {
			ref := reference(t, c)
			if c.Max > 0 && len(ref.Images) > c.Max {
				ref.Images = ref.Images[:c.Max]
			}
			for _, seed := range seeds {
				for _, capacity := range []int{1, 2} {
					for _, batch := range []int{3, 8} {
						seed, capacity, batch := seed, capacity, batch
						mk := func() queue.Queue[value.V] {
							return NewSchedQueue(queue.NewArrayBlocking[value.V](capacity), seed)
						}
						got, err := BatchedWithQueue(c, mk, batch)
						if err != nil {
							t.Fatalf("seed=%d cap=%d batch=%d: %v", seed, capacity, batch, err)
						}
						if !got.Equal(ref) {
							t.Fatalf("seed=%d cap=%d batch=%d diverged:\nref = %s\ngot = %s",
								seed, capacity, batch, ref, got)
						}
					}
				}
			}
		})
	}
}

// TestStopMidFlushUnderSchedule forces Stop to land while the producer is
// parked inside a paused PutBatch: the pipe must release the producer (no
// goroutine leak), Next must fail within the bounded leftover, and no
// error may be invented.
func TestStopMidFlushUnderSchedule(t *testing.T) {
	before := runtime.NumGoroutine()
	for seed := int64(0); seed < 8; seed++ {
		mk := func() queue.Queue[value.V] {
			return NewSchedQueue(queue.NewArrayBlocking[value.V](1), seed)
		}
		c := Case{Name: "stop-mid-flush", Expr: "1 to 100000"}
		in, err := newInterp(c)
		if err != nil {
			t.Fatal(err)
		}
		g, err := in.EvalGen(c.Expr)
		if err != nil {
			t.Fatal(err)
		}
		p := pipe.NewBatchedWithQueue(core.NewFirstClass(g), mk, 8)
		for i := 0; i < 5; i++ {
			if _, ok := p.Next(); !ok {
				t.Fatalf("seed %d: pipe failed after %d values: %v", seed, i, p.Err())
			}
		}
		p.Stop()
		// Values already committed to the closed queue may drain; the pipe
		// must fail within that bounded leftover and report no error.
		for i := 0; i <= 16; i++ {
			if _, ok := p.Next(); !ok {
				break
			}
			if i == 16 {
				t.Fatalf("seed %d: stopped pipe still producing", seed)
			}
		}
		if err := p.Err(); err != nil {
			t.Fatalf("seed %d: Stop invented error %v", seed, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines before=%d now=%d: producer leaked", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
