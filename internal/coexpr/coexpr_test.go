package coexpr

import (
	"testing"

	"junicon/internal/core"
	"junicon/internal/value"
)

func intVal(v value.V) int64 {
	i, _ := value.ToInteger(v)
	n, _ := i.Int64()
	return n
}

func TestStepProducesSequence(t *testing.T) {
	c := Simple(func() core.Gen { return core.IntRange(1, 3) })
	for want := int64(1); want <= 3; want++ {
		v, ok := c.Step(value.NullV)
		if !ok || intVal(v) != want {
			t.Fatalf("@c = %v %v, want %d", v, ok, want)
		}
	}
	if _, ok := c.Step(value.NullV); ok {
		t.Fatal("exhausted co-expression must fail")
	}
	if c.Size() != 3 {
		t.Fatalf("*c = %d", c.Size())
	}
}

func TestEnvironmentShadowingAtCreation(t *testing.T) {
	// Mutating the original local after creation must be invisible inside.
	x := value.NewCell(value.NewInt(10))
	c := New([]value.V{x.Get()}, func(env []*value.Var) core.Gen {
		return core.Defer(func() core.Gen { return core.Unit(env[0].Get()) })
	})
	x.Set(value.NewInt(99))
	v, ok := c.Step(value.NullV)
	if !ok || intVal(v) != 10 {
		t.Fatalf("co-expression saw mutated local: %v", value.Image(v))
	}
}

func TestBodyMutationsDoNotLeakOut(t *testing.T) {
	x := value.NewCell(value.NewInt(1))
	c := New([]value.V{x.Get()}, func(env []*value.Var) core.Gen {
		return core.Defer(func() core.Gen {
			env[0].Set(value.NewInt(777))
			return core.Unit(env[0].Get())
		})
	})
	c.Step(value.NullV)
	if intVal(x.Get()) != 1 {
		t.Fatalf("body mutation leaked to original: %v", value.Image(x.Get()))
	}
}

func TestRefreshProducesFreshCopy(t *testing.T) {
	counterBody := func(env []*value.Var) core.Gen {
		// A stateful body: increments its shadowed local on each step.
		return core.NewGen(func(yield func(value.V) bool) {
			for {
				env[0].Set(value.Add(env[0].Get(), value.NewInt(1)))
				if !yield(env[0].Get()) {
					return
				}
			}
		})
	}
	c := New([]value.V{value.NewInt(0)}, counterBody)
	c.Step(value.NullV)
	v, _ := c.Step(value.NullV)
	if intVal(v) != 2 {
		t.Fatalf("second step = %v", value.Image(v))
	}
	fresh := c.Refresh().(*CoExpr)
	v2, ok := fresh.Step(value.NullV)
	if !ok || intVal(v2) != 1 {
		t.Fatalf("refreshed copy should restart from snapshot: %v", value.Image(v2))
	}
	// Original is untouched by the refresh.
	v3, _ := c.Step(value.NullV)
	if intVal(v3) != 3 {
		t.Fatalf("original disturbed by refresh: %v", value.Image(v3))
	}
	if fresh.Size() != 1 || c.Size() != 3 {
		t.Fatalf("sizes: fresh=%d orig=%d", fresh.Size(), c.Size())
	}
	c.Gen().Restart()
	fresh.Gen().Restart()
}

func TestGenAdapterAndKernelBang(t *testing.T) {
	c := Simple(func() core.Gen { return core.IntRange(5, 7) })
	got := core.Drain(core.Bang(c), 0)
	if len(got) != 3 || intVal(got[0]) != 5 {
		t.Fatalf("!c = %v", got)
	}
	// Exhaustion latches: unlike plain kernel iterators, an exhausted
	// co-expression keeps failing (Icon: @C fails until ^C).
	g := c.Gen()
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted co-expression should keep failing")
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted co-expression must not auto-restart")
	}
	// An explicit Restart (the kernel's ^) rewinds over a fresh env copy.
	g.Restart()
	v, ok := g.Next()
	if !ok || intVal(v) != 5 {
		t.Fatalf("after explicit restart: %v %v", v, ok)
	}
}

func TestKernelStepOperator(t *testing.T) {
	// @ through the kernel's Step on the value protocol.
	c := Simple(func() core.Gen { return core.IntRange(1, 2) })
	v, ok := core.Step(c, value.NullV)
	if !ok || intVal(v) != 1 {
		t.Fatalf("@c via kernel = %v", v)
	}
	if c.Type() != "co-expression" {
		t.Fatalf("type = %q", c.Type())
	}
}

func TestTransmission(t *testing.T) {
	// v @ c delivers v to the body via the receive variable.
	recv := value.NewCell(value.NullV)
	c := Simple(func() core.Gen {
		return core.RepeatAlt(core.Defer(func() core.Gen {
			return core.Unit(value.Add(recv.Get(), value.NewInt(100)))
		}))
	}).OnReceive(recv)
	v, _ := c.Step(value.NewInt(5))
	if intVal(v) != 105 {
		t.Fatalf("5 @ c = %v", value.Image(v))
	}
	v, _ = c.Step(value.NewInt(7))
	if intVal(v) != 107 {
		t.Fatalf("7 @ c = %v", value.Image(v))
	}
}

func TestInterleavingTwoCoExpressions(t *testing.T) {
	// The classic coroutine interleave: odd and even producers.
	odds := Simple(func() core.Gen { return core.Range(value.NewInt(1), value.NewInt(9), value.NewInt(2)) })
	evens := Simple(func() core.Gen { return core.Range(value.NewInt(2), value.NewInt(10), value.NewInt(2)) })
	var seq []int64
	for i := 0; i < 5; i++ {
		a, _ := odds.Step(value.NullV)
		b, _ := evens.Step(value.NullV)
		seq = append(seq, intVal(a), intVal(b))
	}
	for i, want := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		if seq[i] != want {
			t.Fatalf("interleaved = %v", seq)
		}
	}
}
