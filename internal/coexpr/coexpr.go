// Package coexpr implements co-expressions (§3A): first-class iterators
// that shadow their local environment to preclude interference, are
// explicitly stepped with the activation operator @, and are restarted over
// a fresh copy of that environment with ^.
//
// Per the calculus (Figure 1):
//
//	|<> e  →  ^(<>e)
//	^e     →  ((x,y,z) -> <>e)((()->[x,y,z])())
//
// i.e. creation snapshots the referenced locals, and refresh re-instantiates
// the body over a new copy of that snapshot. Suspension inside the body
// needs no threads — it rides the kernel's coroutine-based suspendable
// iterators — matching the unified IconCoExpression model of §5D.
package coexpr

import (
	"junicon/internal/core"
	"junicon/internal/value"
)

// CoExpr is a co-expression value. It implements core.Stepper, so the
// kernel's @, ! and ^ operators apply, and value.V, so it is a first-class
// Unicon value.
type CoExpr struct {
	build    func(env []*value.Var) core.Gen
	snapshot []value.V // creation-time copies of the referenced locals
	recv     *value.Var
	g        core.Gen
	results  int
	done     bool
}

var (
	_ core.Stepper = (*CoExpr)(nil)
	_ value.Sized  = (*CoExpr)(nil)
)

// New creates a co-expression whose body is built by build over a shadowed
// environment. locals are the referenced method locals; their current
// values are copied now (creation time), and build receives fresh reified
// variables initialized from those copies on first activation and again on
// each Refresh — so mutations by the body never leak out, and mutations of
// the originals after creation are invisible inside.
func New(locals []value.V, build func(env []*value.Var) core.Gen) *CoExpr {
	snap := make([]value.V, len(locals))
	for i, v := range locals {
		snap[i] = value.Deref(v)
	}
	return &CoExpr{build: build, snapshot: snap}
}

// Simple creates a co-expression over a body with no referenced locals —
// the bare <>e lifted with an empty environment.
func Simple(build func() core.Gen) *CoExpr {
	return New(nil, func([]*value.Var) core.Gen { return build() })
}

// instantiate builds the body generator over a fresh environment copy.
func (c *CoExpr) instantiate() {
	env := make([]*value.Var, len(c.snapshot))
	for i, v := range c.snapshot {
		env[i] = value.NewCell(v)
	}
	c.g = c.build(env)
}

// Step activates the co-expression (@c), producing its next result or
// failing when the body is exhausted. A transmitted value is delivered to
// the body through the receive variable, if one was attached with OnReceive.
func (c *CoExpr) Step(transmit value.V) (value.V, bool) {
	if c.done {
		// Unlike plain kernel iterators, an exhausted co-expression stays
		// exhausted (Icon: @C keeps failing until refreshed with ^C).
		return nil, false
	}
	if c.g == nil {
		c.instantiate()
	}
	if c.recv != nil {
		c.recv.Set(value.Deref(transmit))
	}
	v, ok := c.g.Next()
	if ok {
		c.results++
	} else {
		c.done = true
	}
	return v, ok
}

// OnReceive attaches the variable through which values transmitted by
// x @ c are delivered to the body, and returns c.
func (c *CoExpr) OnReceive(recv *value.Var) *CoExpr {
	c.recv = recv
	return c
}

// Refresh returns a new co-expression over a fresh copy of the
// creation-time environment (^c). The receiver is left untouched, matching
// Icon, where ^C produces a refreshed copy rather than rewinding C.
func (c *CoExpr) Refresh() core.Stepper {
	out := &CoExpr{build: c.build, snapshot: c.snapshot, recv: c.recv}
	return out
}

// Gen adapts the co-expression to the generator protocol (!c). Restart
// re-instantiates over a fresh environment copy.
func (c *CoExpr) Gen() core.Gen { return &coGen{c: c} }

type coGen struct{ c *CoExpr }

func (g *coGen) Next() (value.V, bool) { return g.c.Step(value.NullV) }
func (g *coGen) Restart() {
	g.c.g = nil
	g.c.results = 0
	g.c.done = false
}

// Size reports the number of results produced so far (*C).
func (c *CoExpr) Size() int { return c.results }

// Type returns "co-expression".
func (c *CoExpr) Type() string { return "co-expression" }

// Image returns the image of the co-expression.
func (c *CoExpr) Image() string { return "co-expression" }
