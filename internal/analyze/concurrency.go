package analyze

import (
	"junicon/internal/ast"
)

// concurrency is pass 4: checks grounded in the calculus of concurrent
// generators (Figure 1) and its degenerate forms (§4). It reports
//
//   - JV005: `@e` / `x @ e` where e is statically not a co-expression or
//     pipe — activation of a plain value raises "co-expression expected";
//   - JV006: `^e` where e is a pipe. The calculus defines refresh for
//     co-expressions only; a pipe is restarted by re-creating it with |>,
//     and refreshing one silently abandons the producer thread;
//   - JV007: `x := |> …@x…` — the pipe's producer activates the pipe it
//     feeds. Under a bounded buffer (buffer 1: the future/M-var
//     degeneration of §4) producer and consumer wait on each other and
//     the program deadlocks;
//   - JV008: `|<>e` (or `|>e`) whose body assigns a variable it was
//     declared to snapshot — the body mutates its private copy, so the
//     update is invisible to the enclosing scope.
func (a *Analyzer) concurrency(sc *scope, n ast.Node) {
	ast.Walk(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.Unary:
			switch x.Op {
			case "@":
				a.checkActivation(sc, x.X)
			case "^":
				a.checkRefresh(sc, x.X)
			case "|<>", "|>":
				a.checkShadowMutation(sc, x)
			}
		case *ast.Binary:
			if x.Op == "@" {
				a.checkActivation(sc, x.R)
			}
			if x.Op == ":=" {
				a.checkSelfActivation(x)
			}
		}
		return true
	})
}

// checkActivation flags JV005 when the activated operand is statically a
// plain value.
func (a *Analyzer) checkActivation(sc *scope, e ast.Node) {
	if name, ok := identName(e); ok {
		if sc.onlyKind(name, kindValue) && !sc.params[name] && !a.globals[name] && !a.known(name) {
			a.diag(e.Pos(), CodeNotCoexpr, Error,
				"activation of %q, which is never a co-expression or pipe in this scope", name)
		}
		return
	}
	if exprKind(e) == kindValue {
		a.diag(e.Pos(), CodeNotCoexpr, Error,
			"activation of %s: @ requires a co-expression or pipe", describe(e))
	}
}

// checkRefresh flags JV006 when the refreshed operand is a pipe.
func (a *Analyzer) checkRefresh(sc *scope, e ast.Node) {
	isPipe := false
	if u, ok := e.(*ast.Unary); ok && u.Op == "|>" {
		isPipe = true
	}
	if name, ok := identName(e); ok && sc.onlyKind(name, kindPipe) {
		isPipe = true
	}
	if isPipe {
		a.diag(e.Pos(), CodePipeRefresh, Warning,
			"refresh (^) of a pipe is undefined in the calculus of concurrent generators: re-create it with |> instead")
	}
	// Refreshing a plain value raises like activating one.
	if name, ok := identName(e); ok {
		if sc.onlyKind(name, kindValue) && !sc.params[name] && !a.globals[name] && !a.known(name) {
			a.diag(e.Pos(), CodeNotCoexpr, Error,
				"refresh of %q, which is never a co-expression or pipe in this scope", name)
		}
		return
	}
	if exprKind(e) == kindValue {
		a.diag(e.Pos(), CodeNotCoexpr, Error,
			"refresh of %s: ^ requires a co-expression or pipe", describe(e))
	}
}

// checkSelfActivation flags JV007 on `x := |> body` where body activates
// or promotes x.
func (a *Analyzer) checkSelfActivation(assign *ast.Binary) {
	name, ok := identName(assign.L)
	if !ok {
		return
	}
	create, ok := assign.R.(*ast.Unary)
	if !ok || create.Op != "|>" {
		return
	}
	ast.Walk(create.X, func(m ast.Node) bool {
		var operand ast.Node
		switch x := m.(type) {
		case *ast.Unary:
			if x.Op == "@" || x.Op == "!" {
				operand = x.X
			}
		case *ast.Binary:
			if x.Op == "@" {
				operand = x.R
			}
		}
		if operand != nil {
			if opName, ok := identName(operand); ok && opName == name {
				a.diag(operand.Pos(), CodeSelfActivation, Warning,
					"pipe assigned to %q consumes itself inside its own producer: a bounded pipe (buffer 1: the future/M-var degeneration) deadlocks here", name)
			}
		}
		return true
	})
}

// checkShadowMutation flags JV008 on assignments inside a shadowed create
// expression (|<>e, |>e) whose targets are variables of the enclosing
// scope — exactly the names the co-expression snapshots at creation.
func (a *Analyzer) checkShadowMutation(sc *scope, create *ast.Unary) {
	body := create.X
	// Names declared local inside the body belong to the body.
	inner := declaredNames(body)
	reported := map[string]bool{}
	ast.Walk(body, func(m ast.Node) bool {
		if u, ok := m.(*ast.Unary); ok && (u.Op == "|<>" || u.Op == "|>") {
			// A nested shadowed create owns its assignments; the enclosing
			// statement walk reaches it and runs its own shadow check.
			return false
		}
		x, ok := m.(*ast.Binary)
		if !ok || !isAssignOp(x.Op) {
			return true
		}
		targets := []ast.Node{x.L}
		if x.Op == ":=:" || x.Op == "<->" {
			targets = append(targets, x.R)
		}
		for _, t := range targets {
			name, ok := identName(t)
			if !ok || inner[name] || reported[name] {
				continue
			}
			if sc.outer(name, create) {
				reported[name] = true
				a.diag(t.Pos(), CodeShadowMutation, Warning,
					"%s snapshots %q: this assignment mutates the co-expression's private copy and is invisible to the enclosing scope", create.Op, name)
			}
		}
		return true
	})
}

// outer reports whether name is a variable of the scope outside the given
// create expression: a parameter or declared local, or a name assigned
// somewhere in the scope outside the create body.
func (sc *scope) outer(name string, create *ast.Unary) bool {
	if sc.params[name] || sc.declared[name] {
		return true
	}
	if !sc.assigned[name] {
		return false
	}
	// Assigned somewhere in the scope — discount assignments inside this
	// create body itself (a name assigned only inside the body is private
	// to it, not snapshotted).
	return sc.assignedOutside(name, create)
}
