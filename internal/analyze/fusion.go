package analyze

import (
	"junicon/internal/ast"
)

// fusion.go holds the decision procedures through which the runtime
// consumes computed facts: which product prefixes may be evaluated once
// (core.FusedProduct), and how a pipe's transport should be provisioned
// from its producer's yield bound (inline substitution or a bound-derived
// buffer). Both are deliberately conservative — the semtest Fused
// evaluator pins that a decision here can never change a trace.

// FusablePrefix returns the number of leading terms of a product chain
// that are safe to evaluate exactly once instead of re-driving them on
// every backtracking cycle. A term qualifies when its facts show a
// fusable effect summary (no writes, IO, randomness, control transfer or
// unknowns) and at most one yield — then the skipped re-evaluations are
// unobservable, provided nothing later in the chain can change what the
// prefix would read:
//
//   - no tail term assigns a name the prefix reads (locals included —
//     the effect lattice does not track local rebinding);
//   - when the prefix reads anything at all (names or heap locations),
//     the tail's joined effects must be free of global/heap mutation and
//     unknowns.
//
// At least one term is always left as the iteration tail. Returns 0 for
// nil facts, unanalyzed nodes, or whenever the side conditions fail.
func (f *Facts) FusablePrefix(terms []ast.Node) int {
	if f == nil || len(terms) < 2 {
		return 0
	}
	k := 0
	for k < len(terms)-1 {
		g, ok := f.At(terms[k])
		if !ok || !g.Effects.Fusable() || !g.Yields.AtMost(1) {
			break
		}
		k++
	}
	if k == 0 {
		return 0
	}

	reads := map[string]bool{}
	readsAny := false
	for _, t := range terms[:k] {
		ast.Walk(t, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.Ident:
				reads[x.Name] = true
				readsAny = true
			case *ast.TmpRef:
				reads[x.Name] = true
				readsAny = true
			case *ast.Index, *ast.Slice, *ast.Field:
				readsAny = true
			case *ast.Unary:
				if x.Op == "!" {
					readsAny = true
				}
			}
			return true
		})
	}

	var tailEff Effects
	for _, t := range terms[k:] {
		if g, ok := f.At(t); ok {
			tailEff |= g.Effects
		} else {
			tailEff |= EffUnknown
		}
	}
	const mutators = EffWritesGlobals | EffHeap | EffUnknown
	if readsAny && tailEff&mutators != 0 {
		return 0
	}
	for _, t := range terms[k:] {
		for name := range assignedNames(t) {
			if reads[name] {
				return 0
			}
		}
	}
	return k
}

// PipeStrategy is a fact-derived provisioning decision for one |> site.
type PipeStrategy struct {
	// Inline substitutes a synchronous in-thread proxy for the pipe: no
	// goroutine, no queue, no pool scheduling. Chosen only for strictly
	// pure producers, where eager-asynchronous versus lazy-synchronous
	// evaluation is unobservable.
	Inline bool
	// Buffer is the transport-queue bound to use instead of the runtime
	// default (0 keeps the default): for a producer with a small exact
	// yield bound, a queue of Max+1 slots holds the entire sequence, so
	// the producer never blocks and the queue never over-allocates.
	Buffer int
}

// PipeStrategy decides how to provision the pipe over the given producer
// body. Zero value (async, default buffer) for nil facts or unanalyzed
// bodies.
func (f *Facts) PipeStrategy(body ast.Node) PipeStrategy {
	if f == nil {
		return PipeStrategy{}
	}
	g, ok := f.At(body)
	if !ok {
		return PipeStrategy{}
	}
	if g.Effects == EffPure {
		return PipeStrategy{Inline: true}
	}
	if g.Yields.Max >= 0 {
		// Bounded effectful producer: size the queue to the whole sequence
		// (capped well under the runtime default of 1024).
		if b := g.Yields.Max + 1; b < 1024 {
			return PipeStrategy{Buffer: b}
		}
	}
	return PipeStrategy{}
}

// BoundedOnce reports that a statement's whole sequence is at most one
// result with no pipe creation anywhere inside — the case where a
// translated top-level statement can skip the core.Bound wrapper (whose
// only job is cutting resumption and restarting state).
func (f *Facts) BoundedOnce(stmt ast.Node) bool {
	if f == nil {
		return false
	}
	g, ok := f.At(stmt)
	if !ok || !g.Yields.AtMost(1) {
		return false
	}
	creates := false
	ast.Walk(stmt, func(m ast.Node) bool {
		if u, ok := m.(*ast.Unary); ok && u.Op == "|>" {
			creates = true
		}
		return !creates
	})
	return !creates
}
