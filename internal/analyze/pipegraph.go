package analyze

import (
	"sort"
	"strings"

	"junicon/internal/ast"
)

// pipegraph is pass 5: the pipe-topology pass. Where pass 4 checks single
// sites (activation of a non-co-expression, a pipe consuming itself), this
// pass looks at the graph the creation sites form — which pipe feeds
// which, how much each producer can yield (from the interprocedural
// facts), and whether anything ever drains an engine — and reports
//
//   - JV011: two or more pipes whose producers activate each other. Every
//     edge of the cycle waits on a bounded queue (§3B), so no buffer
//     assignment satisfies the invariant: guaranteed deadlock.
//   - JV012: a loop that drains a provably unbounded producer while
//     accumulating into a structure (put/push/insert) — memory grows
//     without bound.
//   - JV013: a generator bound to a variable that is never read again —
//     a dead engine; a pipe's producer goroutine is left running against
//     a queue nobody drains.
//   - JV014: limit applied to an effectful generator that provably yields
//     more than the limit — truncation silently drops the side effects of
//     the never-produced results.
func (a *Analyzer) pipeGraph(p *ast.Program, facts *Facts, cg *CallGraph) {
	owners := map[string][]CreateSite{}
	for _, s := range cg.Creates {
		owners[s.In] = append(owners[s.In], s)
	}
	var procRoots []ast.Node
	for name := range cg.Procs {
		procRoots = append(procRoots, cg.Procs[name].Body)
	}
	topRoots := topLevelRoots(p)

	names := make([]string, 0, len(owners))
	for o := range owners {
		names = append(names, o)
	}
	sort.Strings(names)
	for _, owner := range names {
		sites := owners[owner]
		roots := topRoots
		reads := append(append([]ast.Node{}, topRoots...), procRoots...)
		if owner != TopLevel {
			roots = []ast.Node{cg.Procs[owner].Body}
			// A proc-local engine cannot escape the invocation except by
			// being returned/suspended — returns count as reads below.
			reads = roots
		}
		a.pipeCycles(sites)
		a.deadEngines(sites, reads)
		a.unboundedAccumulation(sites, roots, facts)
	}
	a.truncatedEffects(p, facts)
}

// topLevelRoots lists the program's top-level statements.
func topLevelRoots(p *ast.Program) []ast.Node {
	var out []ast.Node
	for _, d := range p.Decls {
		switch d.(type) {
		case *ast.ProcDecl, *ast.RecordDecl, *ast.GlobalDecl, *ast.ClassDecl:
		default:
			out = append(out, d)
		}
	}
	return out
}

// consumedOperand unwraps the operand an expression drains: @e, !e, x @ e.
func consumedOperand(n ast.Node) (ast.Node, bool) {
	switch x := n.(type) {
	case *ast.Unary:
		if x.Op == "@" || x.Op == "!" {
			return x.X, true
		}
	case *ast.Binary:
		if x.Op == "@" {
			return x.R, true
		}
	}
	return nil, false
}

// pipeCycles reports JV011 for activation cycles of length >= 2 among the
// named pipes of one scope (self-loops are JV007's).
func (a *Analyzer) pipeCycles(sites []CreateSite) {
	byName := map[string]CreateSite{}
	for _, s := range sites {
		if s.Kind == CreatePipe && s.BoundTo != "" {
			byName[s.BoundTo] = s
		}
	}
	if len(byName) < 2 {
		return
	}
	edges := map[string][]string{}
	for name, s := range byName {
		seen := map[string]bool{}
		ast.Walk(s.Node.X, func(m ast.Node) bool {
			if operand, ok := consumedOperand(m); ok {
				if on, ok := identName(operand); ok && on != name && !seen[on] {
					if _, isPipe := byName[on]; isPipe {
						seen[on] = true
						edges[name] = append(edges[name], on)
					}
				}
			}
			return true
		})
		sort.Strings(edges[name])
	}
	vars := make([]string, 0, len(byName))
	for v := range byName {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		cyc := cycleThrough(v, edges)
		if cyc == nil {
			continue
		}
		min := cyc[0]
		for _, c := range cyc {
			if c < min {
				min = c
			}
		}
		if min != v {
			continue // report each cycle once, at its least member
		}
		site := byName[v]
		a.diag(site.Node.Pos(), CodePipeCycle, Warning,
			"pipes %s activate each other in a cycle: every link waits on a bounded queue, so no buffer sizes satisfy the queue invariant — guaranteed deadlock",
			strings.Join(quoted(cyc), " -> ")+" -> "+quoted(cyc[:1])[0])
	}
}

// cycleThrough returns a path v -> … -> v of length >= 2, or nil.
func cycleThrough(v string, edges map[string][]string) []string {
	var dfs func(cur string, path []string, on map[string]bool) []string
	dfs = func(cur string, path []string, on map[string]bool) []string {
		for _, next := range edges[cur] {
			if next == v && len(path) >= 2 {
				return path
			}
			if on[next] || next == v {
				continue
			}
			on[next] = true
			if cyc := dfs(next, append(path, next), on); cyc != nil {
				return cyc
			}
		}
		return nil
	}
	return dfs(v, []string{v}, map[string]bool{v: true})
}

func quoted(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = "\"" + n + "\""
	}
	return out
}

// deadEngines reports JV013 for creation sites bound to a name that is
// never read outside the creation itself.
func (a *Analyzer) deadEngines(sites []CreateSite, reads []ast.Node) {
	for _, s := range sites {
		if s.BoundTo == "" {
			continue
		}
		if a.nameRead(s.BoundTo, s.Node, reads) {
			continue
		}
		a.diag(s.Node.Pos(), CodeDeadEngine, Warning,
			"%s bound to %q is never activated, promoted or passed on: a dead engine%s",
			s.Kind, s.BoundTo,
			map[bool]string{true: " whose producer goroutine outlives any consumer", false: ""}[s.Kind == CreatePipe])
	}
}

// nameRead reports whether name occurs as a read (not an assignment
// target) in the given roots, outside the subtree of exclude.
func (a *Analyzer) nameRead(name string, exclude ast.Node, roots []ast.Node) bool {
	found := false
	for _, root := range roots {
		targets := map[ast.Node]bool{}
		ast.Walk(root, func(m ast.Node) bool {
			if b, ok := m.(*ast.Binary); ok && isAssignOp(b.Op) {
				targets[b.L] = true
				if b.Op == ":=:" || b.Op == "<->" {
					// Swaps read both sides.
					delete(targets, b.L)
				}
			}
			return true
		})
		ast.Walk(root, func(m ast.Node) bool {
			if m == exclude || found {
				return false
			}
			if targets[m] {
				return false
			}
			if n, ok := identName(m); ok && n == name {
				if _, isLeaf := m.(*ast.Ident); isLeaf {
					found = true
				} else if _, isTmp := m.(*ast.TmpRef); isTmp {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return found
}

// unboundedAccumulation reports JV012 when a loop drains a provably
// unbounded pipe while accumulating into a structure.
func (a *Analyzer) unboundedAccumulation(sites []CreateSite, roots []ast.Node, facts *Facts) {
	unbounded := map[string]bool{}
	for _, s := range sites {
		if s.Kind != CreatePipe || s.BoundTo == "" {
			continue
		}
		if g, ok := facts.At(s.Node.X); ok && g.Yields.Max == BoundUnbounded {
			unbounded[s.BoundTo] = true
		}
	}
	if len(unbounded) == 0 {
		return
	}
	for _, root := range roots {
		ast.Walk(root, func(n ast.Node) bool {
			var parts []ast.Node
			switch x := n.(type) {
			case *ast.Every:
				parts = []ast.Node{x.E, x.Body}
			case *ast.While:
				parts = []ast.Node{x.Cond, x.Body}
			case *ast.Repeat:
				parts = []ast.Node{x.Body}
			default:
				return true
			}
			drained := ""
			for _, part := range parts {
				if name := drainsOneOf(part, unbounded); name != "" {
					drained = name
					break
				}
			}
			if drained == "" {
				return true
			}
			for _, part := range parts {
				if call := findAccumulation(part); call != nil {
					a.diag(call.Pos(), CodeUnboundedAccumulation, Warning,
						"loop drains unbounded pipe %q while accumulating with %q: the structure grows without bound",
						drained, callName(call))
					return false
				}
			}
			return true
		})
	}
}

// drainsOneOf returns the first name of set that the subtree activates or
// promotes ("" when none).
func drainsOneOf(n ast.Node, set map[string]bool) string {
	name := ""
	ast.Walk(n, func(m ast.Node) bool {
		if name != "" {
			return false
		}
		if operand, ok := consumedOperand(m); ok {
			if on, ok := identName(operand); ok && set[on] {
				name = on
			}
		}
		return true
	})
	return name
}

// findAccumulation locates a call to a structure-growing builtin.
func findAccumulation(n ast.Node) *ast.Call {
	var out *ast.Call
	ast.Walk(n, func(m ast.Node) bool {
		if out != nil {
			return false
		}
		if c, ok := m.(*ast.Call); ok {
			switch callName(c) {
			case "put", "push", "insert":
				out = c
			}
		}
		return true
	})
	return out
}

func callName(c *ast.Call) string {
	name, _ := identName(c.Fun)
	return name
}

// truncatedEffects reports JV014: a constant limit on a generator whose
// effect summary includes observable output (IO or global writes) and
// whose yield bound provably exceeds the limit.
func (a *Analyzer) truncatedEffects(p *ast.Program, facts *Facts) {
	ast.Walk(p, func(n ast.Node) bool {
		x, ok := n.(*ast.Binary)
		if !ok || x.Op != "\\" {
			return true
		}
		lim, ok := intConst(x.R)
		if !ok || lim <= 0 {
			return true // JV004's territory
		}
		g, ok := facts.At(x.L)
		if !ok {
			return true
		}
		if g.Effects&(EffIO|EffWritesGlobals) == 0 {
			return true
		}
		exceeds := maxRank(g.Yields.Max) > 0 ||
			(g.Yields.Max >= 0 && int64(g.Yields.Max) > lim)
		if !exceeds {
			return true
		}
		a.diag(x.P, CodeTruncatedEffects, Warning,
			"limit %d truncates an effectful generator (%s, yields %s): side effects of the dropped results silently never happen",
			lim, g.Effects, g.Yields)
		return true
	})
}
