package analyze

import (
	"sort"

	"junicon/internal/ast"
)

// callgraph builds the structural layer under the interprocedural passes:
// which procedure calls which, where generators are created (<>e, |<>e,
// |>e), and where the pipe/product/alternation/limit combinators appear.
// Top-level statements are modeled as a pseudo-procedure named "" so the
// REPL's unit of input and whole programs share one graph.

// TopLevel is the pseudo-procedure name of the program's top-level
// statement sequence in the call graph.
const TopLevel = ""

// CreateKind classifies a generator-creation site.
type CreateKind int

const (
	// CreateGen is <>e: a first-class generator over the unshadowed body.
	CreateGen CreateKind = iota
	// CreateCoexpr is |<>e: a co-expression with snapshotted locals.
	CreateCoexpr
	// CreatePipe is |>e: a generator proxy with its own thread of
	// execution and a bounded transport queue.
	CreatePipe
)

// String names the creation operator.
func (k CreateKind) String() string {
	switch k {
	case CreatePipe:
		return "|>"
	case CreateCoexpr:
		return "|<>"
	default:
		return "<>"
	}
}

// CreateSite is one generator-creation expression.
type CreateSite struct {
	Kind CreateKind
	// Node is the creation expression itself (*ast.Unary).
	Node *ast.Unary
	// In is the enclosing procedure (TopLevel for top-level statements).
	In string
	// BoundTo is the variable the creation is directly assigned to
	// ("" when the created generator is used anonymously).
	BoundTo string
}

// CallGraph is the whole-program call structure.
type CallGraph struct {
	// Procs maps procedure (and method) names to their declarations.
	Procs map[string]*ast.ProcDecl
	// Calls maps caller name → callee names for calls through statically
	// resolvable identifiers that are not shadowed by locals.
	Calls map[string]map[string]bool
	// Unknown marks callers that invoke through computed values, locals,
	// undeclared names or undeclared natives — their effect summaries
	// must assume the top of the lattice for those sites.
	Unknown map[string]bool
	// Creates lists every generator-creation site, in source order.
	Creates []CreateSite
}

// Callees returns the sorted callee set of one caller.
func (cg *CallGraph) Callees(caller string) []string {
	var out []string
	for c := range cg.Calls[caller] {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// buildCallGraph collects the graph for a program. localNames reports, per
// procedure, the names bound locally (parameters plus assigned/declared
// names) — a call through one of those is a call through a value, not a
// reference to the global procedure of the same name.
func buildCallGraph(p *ast.Program) *CallGraph {
	cg := &CallGraph{
		Procs:   map[string]*ast.ProcDecl{},
		Calls:   map[string]map[string]bool{},
		Unknown: map[string]bool{},
	}
	for _, d := range p.Decls {
		switch x := d.(type) {
		case *ast.ProcDecl:
			cg.Procs[x.Name] = x
		case *ast.ClassDecl:
			for _, m := range x.Methods {
				cg.Procs[m.Name] = m
			}
		}
	}
	for name, decl := range cg.Procs {
		cg.collect(name, decl.Body, localsOf(decl))
	}
	for _, d := range p.Decls {
		switch d.(type) {
		case *ast.ProcDecl, *ast.ClassDecl, *ast.RecordDecl, *ast.GlobalDecl:
		default:
			cg.collect(TopLevel, d, map[string]bool{})
		}
	}
	return cg
}

// localsOf computes the locally bound name set of a procedure: parameters,
// declared locals/statics, assignment targets and bound-iteration
// temporaries.
func localsOf(p *ast.ProcDecl) map[string]bool {
	locals := map[string]bool{}
	for _, param := range p.Params {
		locals[param] = true
	}
	for n := range declaredNames(p.Body) {
		locals[n] = true
	}
	for n := range assignedNames(p.Body) {
		locals[n] = true
	}
	return locals
}

// collect walks one caller's body recording edges and creation sites.
func (cg *CallGraph) collect(caller string, body ast.Node, locals map[string]bool) {
	addEdge := func(callee string) {
		if cg.Calls[caller] == nil {
			cg.Calls[caller] = map[string]bool{}
		}
		cg.Calls[caller][callee] = true
	}
	ast.Walk(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Call:
			name, ok := identName(x.Fun)
			switch {
			case !ok:
				// Calls through computed expressions resolve dynamically.
				// A call through a bound-iteration temporary introduced by
				// normalization (§5A) re-points at whatever the temporary
				// iterates; the normal form keeps the callee adjacent, so
				// resolve through a directly preceding BindIn when the
				// caller's product is in scope — otherwise unknown.
				cg.Unknown[caller] = true
			case cg.Procs[name] != nil && !locals[name]:
				addEdge(name)
			case builtinNames()[name] && !locals[name]:
				// Builtin: effects come from the builtin table, not an edge.
			default:
				cg.Unknown[caller] = true
			}
		case *ast.NativeCall:
			// Host natives are opaque unless the embedder declares facts
			// for them (Options.NativeFacts); record the site by name so
			// the effect pass can consult the declaration.
			// (No edge: natives are not analyzed procedures.)
		case *ast.Unary:
			switch x.Op {
			case "<>", "|<>", "|>":
				kind := CreateGen
				if x.Op == "|<>" {
					kind = CreateCoexpr
				} else if x.Op == "|>" {
					kind = CreatePipe
				}
				cg.Creates = append(cg.Creates, CreateSite{Kind: kind, Node: x, In: caller})
			}
		}
		return true
	})
	// Second pass: attach BoundTo names to creation sites directly
	// assigned to a variable (x := |> e, local x := |> e).
	bind := func(target string, src ast.Node) {
		u, ok := src.(*ast.Unary)
		if !ok {
			return
		}
		for i := range cg.Creates {
			if cg.Creates[i].Node == u && cg.Creates[i].In == caller {
				cg.Creates[i].BoundTo = target
			}
		}
	}
	ast.Walk(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Binary:
			if isAssignOp(x.Op) {
				if name, ok := identName(x.L); ok {
					bind(name, x.R)
				}
			}
		case *ast.VarDecl:
			for i, name := range x.Names {
				if i < len(x.Inits) && x.Inits[i] != nil {
					bind(name, x.Inits[i])
				}
			}
		}
		return true
	})
}

// recursiveSet returns the names reachable from themselves in the call
// graph — every procedure on a call cycle.
func (cg *CallGraph) recursiveSet() map[string]bool {
	out := map[string]bool{}
	for name := range cg.Procs {
		if cg.reaches(name, name, map[string]bool{}) {
			out[name] = true
		}
	}
	return out
}

// reaches reports whether target is reachable from the callees of from.
func (cg *CallGraph) reaches(from, target string, seen map[string]bool) bool {
	for callee := range cg.Calls[from] {
		if callee == target {
			return true
		}
		if seen[callee] {
			continue
		}
		seen[callee] = true
		if cg.reaches(callee, target, seen) {
			return true
		}
	}
	return false
}
