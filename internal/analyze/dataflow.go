package analyze

import (
	"junicon/internal/ast"
)

// dataflow is pass 2: goal-directed dataflow over one scope. It reports
//
//   - JV001: a read of a variable that no assignment in the program can
//     ever bind — under Icon's default-local rule the read can only ever
//     produce &null, so conditionals built on it are dead and products
//     through it never fail as intended;
//   - JV002: assignment to an operand that can never denote a variable
//     (a literal, an arithmetic result, a create expression …), which
//     raises "variable expected" at runtime;
//   - JV010: statements that can never execute because every path before
//     them leaves the enclosing block (return / fail / break / next).
func (a *Analyzer) dataflow(sc *scope, n ast.Node) {
	a.reads(sc, n)
	a.assignTargets(sc, n)
	a.unreachable(n)
}

// reads flags JV001 on identifier reads that can never be bound.
func (a *Analyzer) reads(sc *scope, n ast.Node) {
	seen := map[string]bool{}
	var walk func(m ast.Node, writing bool)
	walk = func(m ast.Node, writing bool) {
		switch x := m.(type) {
		case nil:
			return
		case *ast.Ident:
			if writing || seen[x.Name] || sc.bound(x.Name) {
				return
			}
			seen[x.Name] = true
			a.diag(x.P, CodeNeverAssigned, Warning,
				"variable %q is read but never assigned: it can only ever be &null", x.Name)
		case *ast.Binary:
			if isAssignOp(x.Op) {
				// The target position writes; everything beneath it that is
				// not the written name itself still reads (q[c] := r reads q
				// and c).
				walk(x.L, true)
				writing := x.Op == ":=:" || x.Op == "<->"
				walk(x.R, writing)
				return
			}
			walk(x.L, false)
			walk(x.R, false)
		case *ast.Unary:
			// /x and \x in target position still assign x itself; !L in
			// target position assigns L's elements but reads L.
			walk(x.X, writing && (x.Op == "/" || x.Op == "\\"))
		case *ast.Index:
			walk(x.X, false)
			walk(x.I, false)
		case *ast.Slice:
			walk(x.X, false)
			walk(x.I, false)
			walk(x.J, false)
		case *ast.Field:
			walk(x.X, false)
		default:
			for _, c := range ast.Children(m) {
				walk(c, false)
			}
		}
	}
	walk(n, false)
}

// assignTargets flags JV002 on assignments whose target can never denote a
// variable.
func (a *Analyzer) assignTargets(sc *scope, n ast.Node) {
	ast.Walk(n, func(m ast.Node) bool {
		x, ok := m.(*ast.Binary)
		if !ok || !isAssignOp(x.Op) {
			return true
		}
		a.checkTarget(x.L)
		if x.Op == ":=:" || x.Op == "<->" {
			a.checkTarget(x.R)
		}
		return true
	})
}

// checkTarget reports JV002 when the node is statically a non-variable.
// Only certainly-wrong targets are flagged: calls, subscripts and fields
// may produce variable references, so they pass.
func (a *Analyzer) checkTarget(n ast.Node) {
	switch x := n.(type) {
	case *ast.IntLit, *ast.RealLit, *ast.StrLit, *ast.CsetLit, *ast.ListLit, *ast.ToBy:
		a.diag(n.Pos(), CodeNonVariable, Error,
			"cannot assign to %s: a literal is not a variable", describe(n))
	case *ast.Keyword:
		// Only &subject and &pos are assignable keywords.
		if x.Name != "subject" && x.Name != "pos" {
			a.diag(x.P, CodeNonVariable, Error,
				"cannot assign to &%s: not an assignable keyword", x.Name)
		}
	case *ast.Unary:
		switch x.Op {
		case "*", "-", "+", "~", "not", "=", "<>", "|<>", "|>":
			a.diag(x.P, CodeNonVariable, Error,
				"cannot assign to the result of unary %q: not a variable", x.Op)
		}
	case *ast.Binary:
		if isValueOp(x.Op) {
			a.diag(x.P, CodeNonVariable, Error,
				"cannot assign to the result of operator %q: not a variable", x.Op)
		}
	}
}

// unreachable flags JV010 on block statements following an unconditional
// control transfer.
func (a *Analyzer) unreachable(n ast.Node) {
	ast.Walk(n, func(m ast.Node) bool {
		b, ok := m.(*ast.Block)
		if !ok {
			return true
		}
		for i, s := range b.Stmts {
			if i == len(b.Stmts)-1 {
				break
			}
			if transfersControl(s) {
				a.diag(b.Stmts[i+1].Pos(), CodeUnreachable, Warning,
					"unreachable: the preceding %s always leaves this block", describe(s))
				break // one report per block is enough
			}
		}
		return true
	})
}

// transfersControl reports whether a statement unconditionally leaves the
// enclosing block. suspend does not: the producer resumes after it.
func transfersControl(s ast.Node) bool {
	switch s.(type) {
	case *ast.Return, *ast.Fail, *ast.Break, *ast.NextStmt:
		return true
	}
	return false
}

// describe names a node kind for diagnostics.
func describe(n ast.Node) string {
	switch x := n.(type) {
	case *ast.IntLit:
		return "integer literal " + x.Text
	case *ast.RealLit:
		return "real literal " + x.Text
	case *ast.StrLit:
		return "string literal"
	case *ast.CsetLit:
		return "cset literal"
	case *ast.ListLit:
		return "list constructor"
	case *ast.ToBy:
		return "to-by range"
	case *ast.Return:
		return "return"
	case *ast.Fail:
		return "fail"
	case *ast.Break:
		return "break"
	case *ast.NextStmt:
		return "next"
	case *ast.Ident:
		return "identifier " + x.Name
	default:
		return "expression"
	}
}
