package analyze

import (
	"fmt"
	"sort"
	"strings"

	"junicon/internal/ast"
)

// This file defines the whole-program fact lattice the interprocedural
// engine computes (effects.go) and the runtime consumes (interp, translate,
// pipe): per-generator effect summaries, yield-count bounds, restartability
// and demandedness. The passes of PR 1 only *warn*; facts additionally
// *drive* the evaluator — pure ≤1-yield chains fuse into direct calls,
// pipe buffers size themselves from yield bounds, and provably tiny pure
// producers skip goroutines entirely. The semtest Fused evaluator is the
// executable proof that none of this can change a trace.

// Effects is the effect summary of a generator expression: which classes
// of observable action evaluating (and re-evaluating) it may perform. The
// lattice is a bitset join; the empty set is pure.
type Effects uint8

const (
	// EffReadsGlobals marks reads of program globals (or host-known names).
	EffReadsGlobals Effects = 1 << iota
	// EffWritesGlobals marks assignments to program globals.
	EffWritesGlobals
	// EffHeap marks mutation of reachable structures: subscript/field
	// assignment, put/push/insert/delete, scanning-state movement.
	EffHeap
	// EffIO marks input/output: write, writes, read, reads, stop.
	EffIO
	// EffRandom marks dependence on the random stream (?x): re-evaluation
	// may yield a different sequence.
	EffRandom
	// EffControl marks non-local control transfer (break/next/return/
	// suspend/fail appearing inside the expression): the expression cannot
	// be re-driven mechanically.
	EffControl
	// EffUnknown marks calls the analysis cannot resolve — host natives
	// without declared facts, calls through computed values, activation of
	// arbitrary co-expressions. Top of the lattice.
	EffUnknown
)

// EffPure is the bottom of the effect lattice.
const EffPure Effects = 0

// Pure reports a fully effect-free summary.
func (e Effects) Pure() bool { return e == EffPure }

// Fusable reports whether the runtime may re-order, elide or inline
// evaluations of the expression without changing any trace: no writes, no
// IO, no randomness, no control transfer, nothing unknown. Reads of
// globals are permitted — a read elided on a backtracking path that can
// no longer succeed is unobservable.
func (e Effects) Fusable() bool {
	const barrier = EffWritesGlobals | EffHeap | EffIO | EffRandom | EffControl | EffUnknown
	return e&barrier == 0
}

// String renders the summary as a compact comma-joined set ("pure" when
// empty) — the form the -facts dump and the tests pin.
func (e Effects) String() string {
	if e == EffPure {
		return "pure"
	}
	var parts []string
	for _, f := range []struct {
		bit  Effects
		name string
	}{
		{EffReadsGlobals, "reads-globals"},
		{EffWritesGlobals, "writes-globals"},
		{EffHeap, "mutates-heap"},
		{EffIO, "io"},
		{EffRandom, "random"},
		{EffControl, "control"},
		{EffUnknown, "unknown"},
	} {
		if e&f.bit != 0 {
			parts = append(parts, f.name)
		}
	}
	return strings.Join(parts, ",")
}

// Bound markers for yield-count maxima that are not small constants.
const (
	// BoundFinite marks a yield count that is statically finite but of
	// unknown magnitude (promotion of a collection, a to-by range with
	// non-constant operands).
	BoundFinite = -1
	// BoundUnbounded marks a yield count with no static bound (repeated
	// alternation, suspension inside a while/repeat loop, recursion).
	BoundUnbounded = -2
)

// maxExact is the widening threshold: exact bounds beyond it collapse to
// BoundFinite so the interprocedural fixpoint terminates.
const maxExact = 4096

// Bound is a yield-count interval [Min, Max] per evaluation cycle. Max is
// either an exact count (>= 0), BoundFinite, or BoundUnbounded — extending
// the per-scope boundedness lattice of JV003/JV004 across procedure calls.
type Bound struct {
	Min int
	Max int
}

// Handy constructors.
func exactly(n int) Bound { return Bound{Min: n, Max: n} }
func atMost(n int) Bound  { return Bound{Min: 0, Max: n} }

var (
	boundNone      = Bound{0, 0}
	boundOne       = Bound{1, 1}
	boundOpt       = Bound{0, 1}
	boundFinite    = Bound{0, BoundFinite}
	boundUnbounded = Bound{0, BoundUnbounded}
)

// Finite reports whether the sequence provably terminates.
func (b Bound) Finite() bool { return b.Max != BoundUnbounded }

// AtMost reports whether the cycle provably yields no more than n results.
func (b Bound) AtMost(n int) bool { return b.Max >= 0 && b.Max <= n }

// CannotFail reports whether the expression provably yields at least once.
func (b Bound) CannotFail() bool { return b.Min >= 1 }

// String renders the bound: "0", "1", "=N", "≤N", "finite", "unbounded".
func (b Bound) String() string {
	switch {
	case b.Max == BoundUnbounded:
		return "unbounded"
	case b.Max == BoundFinite:
		return "finite"
	case b.Min == b.Max:
		return fmt.Sprintf("=%d", b.Max)
	default:
		return fmt.Sprintf("%d..%d", b.Min, b.Max)
	}
}

// normMax collapses over-threshold exact maxima (widening).
func normMax(m int) int {
	if m >= 0 && m > maxExact {
		return BoundFinite
	}
	return m
}

// maxRank orders maxima for joins: exact < finite < unbounded.
func maxRank(m int) int {
	switch m {
	case BoundUnbounded:
		return 2
	case BoundFinite:
		return 1
	default:
		return 0
	}
}

// joinMax is the lattice join of two maxima.
func joinMax(a, b int) int {
	if maxRank(a) != maxRank(b) {
		if maxRank(a) > maxRank(b) {
			return a
		}
		return b
	}
	if a > b {
		return normMax(a)
	}
	return normMax(b)
}

// addMax sums maxima (sequence/alternation composition).
func addMax(a, b int) int {
	if maxRank(a) > 0 || maxRank(b) > 0 {
		return joinMax(a, b)
	}
	return normMax(a + b)
}

// mulMax multiplies maxima (product composition).
func mulMax(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if maxRank(a) > 0 || maxRank(b) > 0 {
		return joinMax(a, b)
	}
	return normMax(a * b)
}

// Join is the lattice join (alternation of control paths).
func (b Bound) Join(o Bound) Bound {
	min := b.Min
	if o.Min < min {
		min = o.Min
	}
	return Bound{Min: min, Max: joinMax(b.Max, o.Max)}
}

// Add composes sequential contributions (both happen, counts sum).
func (b Bound) Add(o Bound) Bound {
	min := b.Min + o.Min
	if min > maxExact {
		min = maxExact
	}
	return Bound{Min: min, Max: addMax(b.Max, o.Max)}
}

// Mul composes product contributions: each result of b re-runs o.
func (b Bound) Mul(o Bound) Bound {
	min := b.Min * o.Min
	if min > maxExact {
		min = maxExact
	}
	return Bound{Min: min, Max: mulMax(b.Max, o.Max)}
}

// Cap limits the interval to at most n results (e \ n).
func (b Bound) Cap(n int) Bound {
	if n < 0 {
		n = 0
	}
	out := b
	if out.Min > n {
		out.Min = n
	}
	if maxRank(out.Max) > 0 || out.Max > n {
		out.Max = n
	}
	return out
}

// GenFacts is the computed fact record of one generator expression.
type GenFacts struct {
	Effects Effects
	Yields  Bound
	// Restartable reports that re-driving the expression from the start is
	// statically safe and reproducible: a Fusable effect summary. The
	// runtime may elide restart bookkeeping when it is false, and may
	// re-run the sequence when it is true.
	Restartable bool
	// Demanded reports that the expression sits in a position that drives
	// it to exhaustion (an every-control, a promotion) rather than a
	// bounded position that takes at most one result.
	Demanded bool
}

// Fusable reports that the whole expression may be inlined/fused: effect
// summary permits it and the yield count is statically finite.
func (g GenFacts) Fusable() bool { return g.Effects.Fusable() && g.Yields.Finite() }

// String renders the record for the -facts dump.
func (g GenFacts) String() string {
	s := fmt.Sprintf("effects=%s yields=%s", g.Effects, g.Yields)
	if g.Restartable {
		s += " restartable"
	}
	if g.Demanded {
		s += " demanded"
	}
	return s
}

// ProcFacts is the interprocedural summary of one procedure: the facts of
// one invocation's result sequence.
type ProcFacts struct {
	Name string
	GenFacts
	Recursive bool
}

// Facts is the whole-program fact table: procedure summaries from the
// interprocedural fixpoint plus a per-node cache filled on the final pass,
// so consumers can ask about any subtree of the analyzed program by node
// identity.
type Facts struct {
	procs map[string]*ProcFacts
	nodes map[ast.Node]GenFacts
	// exprNodes is the node cache of the most recent ExtendExpr call: the
	// facts of one evaluated expression, replaced wholesale on the next
	// call. Kept apart from nodes so a long-lived interpreter evaluating
	// many expressions does not grow the persistent cache without bound —
	// each parsed tree has fresh node identities, so entries for earlier
	// evaluations could never be looked up again.
	exprNodes map[ast.Node]GenFacts
}

// Proc returns the summary of a named procedure.
func (f *Facts) Proc(name string) (ProcFacts, bool) {
	if f == nil {
		return ProcFacts{}, false
	}
	p, ok := f.procs[name]
	if !ok {
		return ProcFacts{}, false
	}
	return *p, true
}

// At returns the facts of a node of the analyzed program (by identity).
func (f *Facts) At(n ast.Node) (GenFacts, bool) {
	if f == nil {
		return GenFacts{}, false
	}
	if g, ok := f.nodes[n]; ok {
		return g, true
	}
	g, ok := f.exprNodes[n]
	return g, ok
}

// ProcNames returns the summarized procedure names, sorted.
func (f *Facts) ProcNames() []string {
	if f == nil {
		return nil
	}
	names := make([]string, 0, len(f.procs))
	for n := range f.procs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fdump writes the per-procedure fact table one line per procedure — the
// output of junicon -vet -facts.
func (f *Facts) Fdump(w interface{ Write([]byte) (int, error) }) {
	for _, name := range f.ProcNames() {
		p := f.procs[name]
		rec := ""
		if p.Recursive {
			rec = " recursive"
		}
		fmt.Fprintf(w, "%s: %s%s\n", name, p.GenFacts, rec)
	}
}
