// Package analyze is a multi-pass static analyzer for Junicon syntax
// trees — the semantic checking layer that sits between parsing/
// normalization and execution in the Figure 5 pipeline. Nothing in the
// original pipeline rejects programs that are statically wrong under Icon
// semantics or the calculus of concurrent generators (Figure 1): activating
// an integer, refreshing a pipe, or reading a variable that can never be
// bound all surface only as silent runtime failure. The analyzer finds
// those statically and reports them as structured diagnostics.
//
// The analyzer runs four passes over a program:
//
//  1. scope      — collects the symbol table: global declarations,
//     procedure parameters and locals, Icon's assigned-means-local rule.
//  2. dataflow   — per-scope goal-directed dataflow: reads of variables
//     that can never be bound (JV001), assignment to non-variable
//     operands (JV002), unreachable statements (JV010).
//  3. bounded    — boundedness-aware sequence analysis: alternation arms
//     unreachable after an expression that cannot fail (JV003),
//     non-positive limits (JV004), zero to-by increments (JV009).
//  4. concurrency — the Figure 1 calculus: activation of values that are
//     statically not co-expressions (JV005), refresh of pipes, which the
//     calculus leaves undefined (JV006), self-activating pipes that
//     degenerate to deadlock under bounded buffers (JV007), and mutations
//     of snapshotted co-expression locals (JV008).
//
// Both raw parser output and §5A normal forms (FlatProduct / BindIn /
// TmpRef) are accepted, so the analyzer can gate the interpreter, the
// translator, and the REPL with the same machinery.
package analyze

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"junicon/internal/ast"
	"junicon/internal/core"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Warning marks code that is almost surely not what the author meant
	// but has defined runtime behaviour.
	Warning Severity = iota
	// Error marks code that is guaranteed to raise a runtime error or is
	// undefined under the calculus of concurrent generators.
	Error
)

// String renders the severity in the conventional lowercase form.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diag is one structured diagnostic.
type Diag struct {
	Pos      ast.Pos
	Code     string // stable code, e.g. "JV001"
	Severity Severity
	Msg      string
}

// String renders the diagnostic as "line:col: code: severity: message".
func (d Diag) String() string {
	return fmt.Sprintf("%d:%d: %s: %s: %s", d.Pos.Line, d.Pos.Col, d.Code, d.Severity, d.Msg)
}

// Diagnostic codes. Every code has a fixture pair under testdata/ — one
// program that triggers it and one near-identical program that does not.
const (
	CodeNeverAssigned   = "JV001" // read of a variable that can never be bound
	CodeNonVariable     = "JV002" // assignment to a non-variable operand
	CodeDeadAlternative = "JV003" // alternation arm unreachable in bounded context
	CodeBadLimit        = "JV004" // limit with a provably non-positive bound
	CodeNotCoexpr       = "JV005" // activation of a statically non-co-expression
	CodePipeRefresh     = "JV006" // ^ applied to a pipe (undefined in the calculus)
	CodeSelfActivation  = "JV007" // pipe activates itself: bounded buffers deadlock
	CodeShadowMutation  = "JV008" // co-expression mutates a snapshotted variable
	CodeZeroStep        = "JV009" // to-by with zero increment
	CodeUnreachable     = "JV010" // statement unreachable after a control transfer

	// Codes of the interprocedural pipe-graph pass (pipegraph.go).
	CodePipeCycle             = "JV011" // pipes activate each other in a cycle: deadlock
	CodeUnboundedAccumulation = "JV012" // unbounded producer feeds unbounded accumulation
	CodeDeadEngine            = "JV013" // generator created but never resumed
	CodeTruncatedEffects      = "JV014" // limit drops side effects of an effectful generator
)

// Options configures an analysis run.
type Options struct {
	// Known reports names bound outside the analyzed source — interpreter
	// globals in the REPL, host-defined values in embedding scenarios.
	// May be nil.
	Known func(name string) bool
	// NativeFacts reports declared fact summaries for host natives invoked
	// with ::name(...). May be nil: undeclared natives are the top of the
	// effect lattice (EffUnknown), which blocks fusion across them.
	NativeFacts func(name string) (GenFacts, bool)
}

// Analyzer carries one run's state: options, the collected symbol table,
// and the accumulated diagnostics.
type Analyzer struct {
	opts    Options
	globals map[string]bool // program-level names: globals, procs, records, classes
	diags   []Diag
}

// Program analyzes a whole translation unit and returns its diagnostics
// sorted by source position.
func Program(p *ast.Program, opts Options) []Diag {
	diags, _ := ProgramFacts(p, opts)
	return diags
}

// ProgramFacts runs the full analysis — the per-scope passes of PR 1 plus
// the interprocedural fact engine and the pipe-graph pass — returning both
// the diagnostics and the computed whole-program facts for the runtime to
// consume.
func ProgramFacts(p *ast.Program, opts Options) ([]Diag, *Facts) {
	a := &Analyzer{opts: opts}
	a.collectGlobals(p)
	facts, cg := computeFacts(a, p, opts)

	// Top-level statements execute in the shared global scope: analyze
	// them as one scope whose locals are the globals themselves.
	top := newScopeFrom(a, p)
	for _, d := range p.Decls {
		switch x := d.(type) {
		case *ast.ProcDecl:
			a.proc(x)
		case *ast.ClassDecl:
			for _, m := range x.Methods {
				a.proc(m)
			}
		case *ast.RecordDecl, *ast.GlobalDecl:
			// declaration only
		default:
			a.statement(top, x)
		}
	}
	a.pipeGraph(p, facts, cg)

	sort.SliceStable(a.diags, func(i, j int) bool {
		pi, pj := a.diags[i].Pos, a.diags[j].Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
	return a.diags, facts
}

// Expr analyzes a standalone expression (the REPL's unit of input) as a
// bounded top-level statement.
func Expr(n ast.Node, opts Options) []Diag {
	diags, _ := ExprFacts(n, opts)
	return diags
}

// ExprFacts analyzes a standalone expression and returns its facts along
// with the diagnostics.
func ExprFacts(n ast.Node, opts Options) ([]Diag, *Facts) {
	p := &ast.Program{Decls: []ast.Node{n}}
	p.P = n.Pos()
	return ProgramFacts(p, opts)
}

// HasErrors reports whether any diagnostic is an Error.
func HasErrors(diags []Diag) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Fprint writes diagnostics one per line, prefixing each with path (and
// offsetting lines by lineOffset, for regions embedded in mixed files).
func Fprint(w io.Writer, path string, lineOffset int, diags []Diag) {
	for _, d := range diags {
		shifted := d
		shifted.Pos.Line += lineOffset
		if path != "" {
			fmt.Fprintf(w, "%s:%s\n", path, shifted)
		} else {
			fmt.Fprintln(w, shifted)
		}
	}
}

func (a *Analyzer) diag(pos ast.Pos, code string, sev Severity, format string, args ...any) {
	a.diags = append(a.diags, Diag{Pos: pos, Code: code, Severity: sev, Msg: fmt.Sprintf(format, args...)})
}

// proc runs the per-scope passes over one procedure. The body is analyzed
// as a whole block: statement boundedness and unreachability are block
// properties.
func (a *Analyzer) proc(p *ast.ProcDecl) {
	sc := newScope(a, p)
	a.statement(sc, p.Body)
}

// statement runs the per-scope passes over one statement of a scope.
func (a *Analyzer) statement(sc *scope, n ast.Node) {
	a.dataflow(sc, n)
	a.bounded(sc, n, true)
	a.concurrency(sc, n)
}

// known reports whether name resolves outside the analyzed program.
func (a *Analyzer) known(name string) bool {
	if builtinNames()[name] {
		return true
	}
	return a.opts.Known != nil && a.opts.Known(name)
}

// builtinNames is the name set of the kernel's builtin library (including
// the scanning functions), computed once.
var builtinNames = sync.OnceValue(func() map[string]bool {
	names := map[string]bool{}
	for k := range core.Builtins(io.Discard) {
		names[k] = true
	}
	for k := range core.ScanBuiltins(core.NewScanHolder()) {
		names[k] = true
	}
	return names
})
