package analyze

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"junicon/internal/ast"
	"junicon/internal/parser"
	"junicon/internal/transform"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestFixtures is the fixture-driven golden suite: every testdata/*.jn
// program is analyzed and its rendered diagnostics compared against the
// sibling .golden file. Fixtures without a golden file (the *_ok.jn clean
// twins) must produce no diagnostics at all.
func TestFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.jn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fixtures found")
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.ParseProgram(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			got := render(Program(prog, Options{}))

			goldenPath := strings.TrimSuffix(file, ".jn") + ".golden"
			if *update {
				if got == "" {
					os.Remove(goldenPath)
				} else if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want := ""
			if b, err := os.ReadFile(goldenPath); err == nil {
				want = string(b)
			}
			if got != want {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixtureCoverage pins the acceptance floor: every diagnostic code has
// at least one fixture that triggers it and a clean twin that does not.
func TestFixtureCoverage(t *testing.T) {
	codes := []string{
		CodeNeverAssigned, CodeNonVariable, CodeDeadAlternative, CodeBadLimit,
		CodeNotCoexpr, CodePipeRefresh, CodeSelfActivation, CodeShadowMutation,
		CodeZeroStep, CodeUnreachable,
		CodePipeCycle, CodeUnboundedAccumulation, CodeDeadEngine, CodeTruncatedEffects,
	}
	if len(codes) < 8 {
		t.Fatalf("acceptance requires >= 8 diagnostic codes, have %d", len(codes))
	}
	for i, code := range codes {
		num := i + 1
		bad := analyzeFixture(t, filepath.Join("testdata", fixtureName(num, "bad")))
		found := false
		for _, d := range bad {
			if d.Code == code {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: bad fixture does not trigger %s (got %v)", fixtureName(num, "bad"), code, bad)
		}
		ok := analyzeFixture(t, filepath.Join("testdata", fixtureName(num, "ok")))
		for _, d := range ok {
			if d.Code == code {
				t.Errorf("%s: clean fixture triggers %s: %s", fixtureName(num, "ok"), code, d)
			}
		}
	}
}

func fixtureName(num int, kind string) string {
	return fmt.Sprintf("jv%03d_%s.jn", num, kind)
}

func analyzeFixture(t *testing.T, path string) []Diag {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("fixture %s: %v", path, err)
	}
	prog, err := parser.ParseProgram(string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	return Program(prog, Options{})
}

// TestNormalizedTrees runs the analyzer over the §5A normal form of every
// fixture: normalization must not manufacture new errors (temporaries are
// bound by their BindIn terms) and every diagnostic must keep a real
// source position.
func TestNormalizedTrees(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.jn"))
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		rawErrs := errorCodes(Program(prog, Options{}))
		norm := transform.Normalize(prog).(*ast.Program)
		normDiags := Program(norm, Options{})
		for code := range errorCodes(normDiags) {
			if !rawErrs[code] {
				t.Errorf("%s: normalization introduced error %s", file, code)
			}
		}
		for _, d := range normDiags {
			if d.Pos.Line == 0 {
				t.Errorf("%s: diagnostic on normalized tree lost its position: %s", file, d)
			}
		}
	}
}

func errorCodes(diags []Diag) map[string]bool {
	out := map[string]bool{}
	for _, d := range diags {
		if d.Severity == Error {
			out[d.Code] = true
		}
	}
	return out
}

// TestExprKnown pins the REPL path: Options.Known suppresses JV001 for
// interpreter-defined globals.
func TestExprKnown(t *testing.T) {
	e, err := parser.ParseExpression("hostValue + 1")
	if err != nil {
		t.Fatal(err)
	}
	if ds := Expr(e, Options{}); len(ds) != 1 || ds[0].Code != CodeNeverAssigned {
		t.Fatalf("expected one JV001 without Known, got %v", ds)
	}
	known := func(name string) bool { return name == "hostValue" }
	if ds := Expr(e, Options{Known: known}); len(ds) != 0 {
		t.Fatalf("expected no diagnostics with Known, got %v", ds)
	}
}

func render(diags []Diag) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
