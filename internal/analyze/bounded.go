package analyze

import (
	"junicon/internal/ast"
	"junicon/internal/value"
)

// bounded is pass 3: boundedness-aware sequence analysis. Icon bounds
// expressions in certain syntactic positions — a bounded expression
// produces at most one result and is never resumed (§2A). The pass tracks
// boundedness through the tree and reports
//
//   - JV003: `e1 | e2` in a bounded position where e1 cannot fail — the
//     single result always comes from e1, so e2 is unreachable (the
//     classic `if x | y then …` bug: a variable read never fails);
//   - JV004: `e \ n` where n is provably non-positive — the limited
//     expression can produce no results at all;
//   - JV009: `e1 to e2 by 0` — a zero increment raises error 211 at
//     runtime on the first step.
func (a *Analyzer) bounded(sc *scope, n ast.Node, inBounded bool) {
	switch x := n.(type) {
	case nil:
		return
	case *ast.Binary:
		switch x.Op {
		case "|":
			if inBounded && cannotFail(x.L) {
				a.diag(x.R.Pos(), CodeDeadAlternative, Warning,
					"unreachable alternative: the left arm cannot fail, so this bounded expression never resumes into the right arm")
			}
			a.bounded(sc, x.L, inBounded)
			a.bounded(sc, x.R, inBounded)
		case "\\":
			if lim, ok := intConst(x.R); ok && lim <= 0 {
				a.diag(x.P, CodeBadLimit, Warning,
					"limit %d is never positive: the limited expression can produce no results", lim)
			}
			a.bounded(sc, x.L, false)
			a.bounded(sc, x.R, false)
		default:
			// Operands of products, assignments and operators are resumable.
			a.bounded(sc, x.L, false)
			a.bounded(sc, x.R, false)
		}
	case *ast.Unary:
		// not e bounds its operand: one success or failure decides it.
		// Create expressions open a fresh (unbounded) generator body.
		switch x.Op {
		case "not":
			a.bounded(sc, x.X, true)
		default:
			a.bounded(sc, x.X, false)
		}
	case *ast.ToBy:
		if by, ok := intConst(x.By); ok && by == 0 {
			a.diag(x.P, CodeZeroStep, Error,
				"to-by increment is zero: this raises a runtime error on the first step")
		}
		a.bounded(sc, x.Lo, false)
		a.bounded(sc, x.Hi, false)
		a.bounded(sc, x.By, false)
	case *ast.If:
		a.bounded(sc, x.Cond, true)
		a.bounded(sc, x.Then, inBounded)
		a.bounded(sc, x.Else, inBounded)
	case *ast.While:
		a.bounded(sc, x.Cond, true)
		a.bounded(sc, x.Body, true)
	case *ast.Every:
		a.bounded(sc, x.E, false) // generated to exhaustion, never bounded
		a.bounded(sc, x.Body, true)
	case *ast.Repeat:
		a.bounded(sc, x.Body, true)
	case *ast.Suspend:
		a.bounded(sc, x.E, false) // every result is suspended
		a.bounded(sc, x.Body, true)
	case *ast.Return:
		a.bounded(sc, x.E, true)
	case *ast.Initial:
		a.bounded(sc, x.Body, true)
	case *ast.Block:
		// Every statement of a compound is bounded except the last, whose
		// boundedness is the block's own.
		for i, s := range x.Stmts {
			a.bounded(sc, s, i < len(x.Stmts)-1 || inBounded)
		}
	case *ast.VarDecl:
		for _, init := range x.Inits {
			a.bounded(sc, init, true) // initializers take the first result
		}
	case *ast.Case:
		a.bounded(sc, x.Subject, true)
		for _, c := range x.Clauses {
			// Selectors are alternatives: each is tried, so alternation in a
			// selector is genuinely multi-valued — not bounded.
			a.bounded(sc, c.Sel, false)
			a.bounded(sc, c.Body, inBounded)
		}
	default:
		for _, c := range ast.Children(n) {
			a.bounded(sc, c, false)
		}
	}
}

// cannotFail reports whether an expression provably produces at least one
// result. Conservative: false when unsure.
func cannotFail(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.IntLit, *ast.RealLit, *ast.StrLit, *ast.CsetLit, *ast.ListLit,
		*ast.TmpRef:
		return true
	case *ast.Ident:
		// Dereferencing a variable never fails — the essence of the
		// `if x | y` bug this pass exists to catch.
		return true
	case *ast.Keyword:
		return x.Name != "fail"
	case *ast.Unary:
		switch x.Op {
		case "<>", "|<>", "|>":
			return true // creation always succeeds
		case "|":
			// Repeated alternation |e loops e's sequence; with a non-failing
			// operand it always has a first result.
			return cannotFail(x.X)
		}
		return false
	case *ast.Binary:
		switch x.Op {
		case "|":
			return cannotFail(x.L) || cannotFail(x.R)
		case ":=":
			if _, ok := identName(x.L); ok {
				return cannotFail(x.R)
			}
		}
		return false
	case *ast.If:
		return x.Else != nil && cannotFail(x.Then) && cannotFail(x.Else)
	case *ast.Block:
		// Bounded statement failures do not abort a compound; the block's
		// sequence is its last statement's.
		if len(x.Stmts) == 0 {
			return true
		}
		return cannotFail(x.Stmts[len(x.Stmts)-1])
	}
	return false
}

// intConst evaluates an integer-literal expression (allowing unary minus);
// ok is false for anything else.
func intConst(n ast.Node) (int64, bool) {
	switch x := n.(type) {
	case *ast.IntLit:
		iv, ok := value.ToInteger(value.String(x.Text))
		if !ok {
			return 0, false
		}
		return iv.Int64()
	case *ast.Unary:
		if x.Op == "-" {
			v, ok := intConst(x.X)
			return -v, ok
		}
	}
	return 0, false
}
