package analyze

import (
	"os"
	"path/filepath"
	"testing"

	"junicon/internal/meta"
	"junicon/internal/parser"
)

// TestCorpus runs the analyzer over every Junicon program shipped with the
// repository — the ported example programs under testdata/ at the module
// root, the mixed-language examples (*.gmix), and the translator's own test
// programs. None may produce an error-severity diagnostic: junicon -vet
// must pass the shipped corpus clean.
func TestCorpus(t *testing.T) {
	var files []string
	for _, pattern := range []string{
		filepath.Join("..", "..", "testdata", "*.jn"),
		filepath.Join("..", "..", "examples", "*", "*.jn"),
		filepath.Join("..", "..", "examples", "*", "*.gmix"),
		filepath.Join("..", "..", "internal", "translate", "testdata", "*.jn"),
	} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, matches...)
	}
	if len(files) < 5 {
		t.Fatalf("corpus too small: found only %v", files)
	}
	for _, file := range files {
		t.Run(filepath.ToSlash(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if filepath.Ext(file) == ".gmix" {
				checkMixed(t, string(src))
				return
			}
			checkSource(t, string(src))
		})
	}
}

// checkSource parses and analyzes one pure-Junicon source, failing the test
// on parse failure or any error-severity diagnostic.
func checkSource(t *testing.T, src string) {
	t.Helper()
	prog, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	diags := Program(prog, Options{})
	for _, d := range diags {
		t.Logf("diag: %s", d)
	}
	if HasErrors(diags) {
		t.Error("corpus program produces analyzer errors")
	}
}

// checkMixed analyzes every junicon region of a mixed-language file.
func checkMixed(t *testing.T, src string) {
	t.Helper()
	segs, err := meta.Parse(src)
	if err != nil {
		t.Fatalf("metaparse: %v", err)
	}
	var walk func([]meta.Segment)
	walk = func(segs []meta.Segment) {
		for _, r := range meta.Regions(segs) {
			if r.Lang() == "junicon" {
				checkSource(t, r.Raw)
			}
			walk(r.Segments)
		}
	}
	walk(segs)
}
