package analyze

import (
	"sort"
	"sync"

	"junicon/internal/ast"
)

// effects.go is the interprocedural fact computation: a fixpoint over the
// call graph that assigns every procedure an effect summary and a
// yield-count bound, then a final caching pass that records facts for
// every node of the program. Soundness discipline: unknown callees and
// host natives are the top of the lattice; recursive generator procedures
// are pinned to unbounded yields before the fixpoint runs, so exact
// bounds never under-approximate a sequence the runtime would fuse.

// factsComp carries one fact-computation run.
type factsComp struct {
	a     *Analyzer
	cg    *CallGraph
	opts  Options
	table map[string]*ProcFacts
	// nodes is nil during the fixpoint; the final pass swaps in the cache
	// so every visited subtree records its facts.
	nodes map[ast.Node]GenFacts
	rec   map[string]bool
}

// procCtx is the name-resolution context of one analyzed body.
type procCtx struct {
	name   string
	locals map[string]bool
}

// computeFacts runs the interprocedural engine over a program whose
// globals the analyzer has already collected.
func computeFacts(a *Analyzer, p *ast.Program, opts Options) (*Facts, *CallGraph) {
	cg := buildCallGraph(p)
	fc := &factsComp{a: a, cg: cg, opts: opts, table: map[string]*ProcFacts{}}
	fc.rec = cg.recursiveSet()

	// Bottom-initialize, pinning recursive procedures to their sound
	// summaries: generator recursion (any suspend in the body) yields
	// unboundedly; return-only recursion yields at most once.
	for name, decl := range cg.Procs {
		pf := &ProcFacts{Name: name, GenFacts: GenFacts{Yields: boundNone}}
		if fc.rec[name] {
			pf.Recursive = true
			if containsSuspend(decl.Body) {
				pf.Yields = boundUnbounded
			} else {
				pf.Yields = boundOpt
			}
		}
		fc.table[name] = pf
	}

	// Fixpoint: effects join monotonically; yields of non-recursive
	// procedures settle once their callees have (DAG depth bounds the
	// iteration count, +1 to detect stability).
	names := make([]string, 0, len(cg.Procs))
	for n := range cg.Procs {
		names = append(names, n)
	}
	sort.Strings(names)
	for iter := 0; iter <= len(names)+1; iter++ {
		changed := false
		for _, name := range names {
			old := *fc.table[name]
			got := fc.summarize(name)
			next := old
			next.Effects |= got.Effects
			if fc.rec[name] {
				// Yields stay pinned; only effects refine.
			} else {
				next.Yields = got.Yields
			}
			next.Restartable = (next.Effects &^ EffControl).Fusable()
			if next.Effects != old.Effects || next.Yields != old.Yields ||
				next.Restartable != old.Restartable {
				*fc.table[name] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Final pass with the node cache on: every subtree the runtime might
	// ask about records its facts, including top-level statements and
	// create-site bodies.
	fc.nodes = map[ast.Node]GenFacts{}
	for _, name := range names {
		decl := cg.Procs[name]
		cx := &procCtx{name: name, locals: localsOf(decl)}
		fc.stmtEffects(decl.Body, cx)
		fc.procYields(decl.Body.Stmts, cx)
	}
	topCx := &procCtx{name: TopLevel, locals: map[string]bool{}}
	for _, d := range p.Decls {
		switch d.(type) {
		case *ast.ProcDecl, *ast.RecordDecl, *ast.GlobalDecl, *ast.ClassDecl:
		default:
			fc.expr(d, topCx)
		}
	}
	// Demandedness: re-walk marking expressions driven to exhaustion.
	markDemand(p, fc.nodes)

	return &Facts{procs: fc.table, nodes: fc.nodes}, cg
}

// containsSuspend reports whether a body suspends anywhere (nested create
// bodies excluded: their suspensions belong to the created generator).
func containsSuspend(n ast.Node) bool {
	found := false
	ast.Walk(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if u, ok := m.(*ast.Unary); ok && (u.Op == "<>" || u.Op == "|<>" || u.Op == "|>") {
			return false
		}
		if _, ok := m.(*ast.Suspend); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// summarize computes one procedure's summary from the current table.
func (fc *factsComp) summarize(name string) GenFacts {
	decl := fc.cg.Procs[name]
	cx := &procCtx{name: name, locals: localsOf(decl)}
	eff := fc.stmtEffects(decl.Body, cx)
	yields, _ := fc.procYields(decl.Body.Stmts, cx)
	if fc.cg.Unknown[name] {
		eff |= EffUnknown
	}
	// Control transfers inside the body resolve inside the invocation;
	// they are not effects of calling the procedure.
	eff &^= EffControl
	return GenFacts{Effects: eff, Yields: yields}
}

// record caches facts for a node on the final pass.
func (fc *factsComp) record(n ast.Node, g GenFacts) GenFacts {
	if fc.nodes != nil && n != nil {
		fc.nodes[n] = g
	}
	return g
}

// ---------- builtin facts ----------

// builtinFacts maps builtin names to their summaries. Unlisted builtins
// are assumed pure single-valued converters that may fail — everything in
// the kernel library that is not listed here fits that shape.
var builtinFacts = sync.OnceValue(func() map[string]GenFacts {
	io1 := GenFacts{Effects: EffIO, Yields: boundOne}
	heap1 := GenFacts{Effects: EffHeap, Yields: boundOne}
	heapOpt := GenFacts{Effects: EffHeap, Yields: boundOpt}
	pure1 := GenFacts{Yields: boundOne}
	pureOpt := GenFacts{Yields: boundOpt}
	pureFin := GenFacts{Yields: boundFinite}
	m := map[string]GenFacts{
		// I/O
		"write": io1, "writes": io1,
		"stop": {Effects: EffIO, Yields: boundNone},
		// Structure mutators
		"put": heap1, "push": heap1, "insert": heap1, "delete": heap1,
		"get": heapOpt, "pop": heapOpt, "pull": heapOpt,
		// Pure constructors / inspectors
		"image": pure1, "type": pure1, "copy": pure1, "list": pure1,
		"table": pure1, "set": pure1, "sort": pure1, "reverse": pure1,
		"repl": pure1, "left": pure1, "right": pure1, "center": pure1,
		"trim": pure1, "map": pure1, "ord": pure1, "char": pure1,
		"abs": pure1,
		// Converters and tests (fail on mismatch)
		"numeric": pureOpt, "integer": pureOpt, "real": pureOpt,
		"string": pureOpt, "cset": pureOpt, "proc": pureOpt,
		"member": pureOpt, "any": pureOpt, "many": pureOpt,
		"match": pureOpt,
		// Generators
		"find": pureFin, "upto": pureFin, "bal": pureFin, "key": pureFin,
		"seq": {Yields: Bound{Min: 0, Max: BoundUnbounded}},
		// String scanning: movement mutates the scan environment
		"tab":  {Effects: EffHeap, Yields: boundOpt},
		"move": {Effects: EffHeap, Yields: boundOpt},
		"pos":  pureOpt,
	}
	// The *At variants share their base function's facts.
	for _, name := range []string{"find", "upto", "many", "any", "match"} {
		m[name+"At"] = m[name]
	}
	m["tabMatch"] = GenFacts{Effects: EffHeap, Yields: boundOpt}
	return m
})

// builtinFactsFor returns the summary of a builtin, defaulting to a pure
// optional single value for unlisted library functions.
func builtinFactsFor(name string) GenFacts {
	if f, ok := builtinFacts()[name]; ok {
		return f
	}
	return GenFacts{Yields: boundOpt}
}

// ---------- expression facts ----------

// expr computes (and on the final pass caches) the facts of an expression.
func (fc *factsComp) expr(n ast.Node, cx *procCtx) GenFacts {
	switch x := n.(type) {
	case nil:
		return GenFacts{Yields: boundNone}

	case *ast.IntLit, *ast.RealLit, *ast.StrLit, *ast.CsetLit:
		return fc.record(n, GenFacts{Yields: boundOne})

	case *ast.Keyword:
		if x.Name == "fail" {
			return fc.record(n, GenFacts{Yields: boundNone})
		}
		return fc.record(n, GenFacts{Yields: boundOne})

	case *ast.Ident:
		return fc.record(n, fc.readFacts(x.Name, cx))
	case *ast.TmpRef:
		// Normalization temporaries are bound by their BindIn term within
		// the enclosing FlatProduct — locals by construction, never globals.
		return fc.record(n, GenFacts{Yields: boundOne})

	case *ast.ListLit:
		g := GenFacts{Yields: boundOne}
		for _, e := range x.Elems {
			ef := fc.expr(e, cx)
			g.Effects |= ef.Effects
			if !ef.Yields.CannotFail() {
				g.Yields.Min = 0
			}
		}
		return fc.record(n, g)

	case *ast.Binary:
		return fc.record(n, fc.binaryFacts(x, cx))

	case *ast.Unary:
		return fc.record(n, fc.unaryFacts(x, cx))

	case *ast.ToBy:
		lo := fc.expr(x.Lo, cx)
		hi := fc.expr(x.Hi, cx)
		g := GenFacts{Effects: lo.Effects | hi.Effects}
		operands := lo.Yields.Mul(hi.Yields)
		if x.By != nil {
			by := fc.expr(x.By, cx)
			g.Effects |= by.Effects
			operands = operands.Mul(by.Yields)
		}
		g.Yields = operands.Mul(rangeCount(x))
		return fc.record(n, g)

	case *ast.Call:
		return fc.record(n, fc.callFacts(x, cx))

	case *ast.NativeCall:
		g := GenFacts{Effects: EffUnknown, Yields: boundOpt}
		if fc.opts.NativeFacts != nil {
			if nf, ok := fc.opts.NativeFacts(x.Name); ok {
				g = nf
			}
		}
		if x.Recv != nil {
			rf := fc.expr(x.Recv, cx)
			g.Effects |= rf.Effects
			g.Yields = rf.Yields.Mul(g.Yields)
		}
		for _, a := range x.Args {
			af := fc.expr(a, cx)
			g.Effects |= af.Effects
			g.Yields = af.Yields.Mul(g.Yields)
		}
		return fc.record(n, g)

	case *ast.Index:
		xf := fc.expr(x.X, cx)
		idx := fc.expr(x.I, cx)
		b := xf.Yields.Mul(idx.Yields)
		b.Min = 0 // subscripts fail out of range
		return fc.record(n, GenFacts{Effects: xf.Effects | idx.Effects, Yields: b})

	case *ast.Slice:
		g := fc.joinAll(cx, x.X, x.I, x.J)
		g.Yields.Min = 0
		return fc.record(n, g)

	case *ast.Field:
		xf := fc.expr(x.X, cx)
		b := xf.Yields
		b.Min = 0
		return fc.record(n, GenFacts{Effects: xf.Effects, Yields: b})

	case *ast.If:
		cond := fc.expr(x.Cond, cx)
		then := fc.expr(x.Then, cx)
		els := fc.expr(x.Else, cx) // nil → {0,0}
		g := GenFacts{Effects: cond.Effects | then.Effects | els.Effects}
		g.Yields = then.Yields.Join(els.Yields)
		if x.Else == nil || !cond.Yields.CannotFail() {
			g.Yields.Min = 0
		}
		return fc.record(n, g)

	case *ast.While:
		g := fc.joinAll(cx, x.Cond, x.Body)
		g.Yields = boundNone // loops fail as expressions
		return fc.record(n, g)
	case *ast.Every:
		g := fc.joinAll(cx, x.E, x.Body)
		g.Yields = boundNone
		return fc.record(n, g)
	case *ast.Repeat:
		g := fc.joinAll(cx, x.Body)
		g.Yields = boundNone
		return fc.record(n, g)

	case *ast.Case:
		subj := fc.expr(x.Subject, cx)
		g := GenFacts{Effects: subj.Effects, Yields: boundNone}
		for _, c := range x.Clauses {
			if c.Sel != nil {
				g.Effects |= fc.expr(c.Sel, cx).Effects
			}
			cf := fc.expr(c.Body, cx)
			g.Effects |= cf.Effects
			g.Yields = g.Yields.Join(cf.Yields)
		}
		g.Yields.Min = 0
		return fc.record(n, g)

	case *ast.Block:
		if len(x.Stmts) == 0 {
			return fc.record(n, GenFacts{Yields: boundOne})
		}
		g := GenFacts{}
		for _, s := range x.Stmts {
			g.Effects |= fc.expr(s, cx).Effects
		}
		// Bounded failures of leading statements are discarded; the
		// block's sequence is the last statement's.
		g.Yields = fc.expr(x.Stmts[len(x.Stmts)-1], cx).Yields
		return fc.record(n, g)

	case *ast.VarDecl:
		g := GenFacts{Yields: boundOne}
		for _, init := range x.Inits {
			if init != nil {
				g.Effects |= fc.expr(init, cx).Effects
			}
		}
		return fc.record(n, g)

	case *ast.Initial:
		g := fc.joinAll(cx, x.Body)
		g.Yields = boundOne
		return fc.record(n, g)

	case *ast.BindIn:
		ef := fc.expr(x.E, cx)
		return fc.record(n, ef)

	case *ast.FlatProduct:
		g := GenFacts{Yields: boundOne}
		for _, t := range x.Terms {
			tf := fc.expr(t, cx)
			g.Effects |= tf.Effects
			g.Yields = g.Yields.Mul(tf.Yields)
		}
		return fc.record(n, g)

	case *ast.Break:
		g := fc.joinAll(cx, x.E)
		g.Effects |= EffControl
		g.Yields = boundNone
		return fc.record(n, g)
	case *ast.NextStmt:
		return fc.record(n, GenFacts{Effects: EffControl, Yields: boundNone})
	case *ast.Fail:
		return fc.record(n, GenFacts{Effects: EffControl, Yields: boundNone})
	case *ast.Return:
		g := fc.joinAll(cx, x.E)
		g.Effects |= EffControl
		g.Yields = boundOpt
		return fc.record(n, g)
	case *ast.Suspend:
		g := fc.joinAll(cx, x.E, x.Body)
		g.Effects |= EffControl
		return fc.record(n, g)
	}
	// Unknown node kind: top.
	return fc.record(n, GenFacts{Effects: EffUnknown, Yields: boundUnbounded})
}

// joinAll joins the effects of several subexpressions (nil skipped),
// returning a record whose bound is the join of theirs.
func (fc *factsComp) joinAll(cx *procCtx, ns ...ast.Node) GenFacts {
	g := GenFacts{Yields: boundNone}
	for _, n := range ns {
		if n == nil {
			continue
		}
		nf := fc.expr(n, cx)
		g.Effects |= nf.Effects
		g.Yields = g.Yields.Join(nf.Yields)
	}
	return g
}

// readFacts classifies an identifier read. Any non-local name — global,
// builtin, host-known or auto-created at first use — reads shared state.
func (fc *factsComp) readFacts(name string, cx *procCtx) GenFacts {
	g := GenFacts{Yields: boundOne}
	if !cx.locals[name] {
		g.Effects = EffReadsGlobals
	}
	return g
}

// writeEffect classifies an assignment target.
func (fc *factsComp) writeEffect(target ast.Node, cx *procCtx) Effects {
	switch t := target.(type) {
	case *ast.Ident:
		if cx.locals[t.Name] {
			return EffPure
		}
		return EffWritesGlobals
	case *ast.TmpRef:
		return EffPure
	case *ast.Index, *ast.Slice, *ast.Field, *ast.Keyword:
		return EffHeap
	case *ast.Unary:
		if t.Op == "!" {
			return EffHeap
		}
	}
	// Computed target: could denote anything.
	return EffUnknown
}

func (fc *factsComp) binaryFacts(x *ast.Binary, cx *procCtx) GenFacts {
	l := fc.expr(x.L, cx)
	r := fc.expr(x.R, cx)
	eff := l.Effects | r.Effects
	switch x.Op {
	case "&":
		return GenFacts{Effects: eff, Yields: l.Yields.Mul(r.Yields)}
	case "|":
		return GenFacts{Effects: eff, Yields: l.Yields.Add(r.Yields)}
	case "\\":
		b := l.Yields
		if lim, ok := intConst(x.R); ok {
			if lim < 0 {
				lim = 0
			}
			capped := int(lim)
			if int64(capped) != lim {
				capped = maxExact + 1 // enormous literal: treat as finite
			}
			b = b.Cap(capped)
		} else {
			b.Min = 0
		}
		return GenFacts{Effects: eff, Yields: b}
	case ":=", "<-":
		eff |= fc.writeEffect(x.L, cx)
		b := r.Yields
		if x.Op == "<-" {
			b.Min = 0 // reversible assignment restores and fails on backtrack
		}
		return GenFacts{Effects: eff, Yields: b}
	case ":=:", "<->":
		eff |= fc.writeEffect(x.L, cx) | fc.writeEffect(x.R, cx)
		return GenFacts{Effects: eff, Yields: boundOpt}
	case "@":
		// Activation drives an arbitrary co-expression: unknown effects,
		// one value or failure per activation.
		return GenFacts{Effects: eff | EffUnknown, Yields: boundUnbounded}
	case "?":
		// Scanning: the body runs against a swapped scan environment.
		b := r.Yields
		b.Min = 0
		return GenFacts{Effects: eff | EffHeap, Yields: b}
	}
	if isAssignOp(x.Op) { // augmented assignment op:=
		eff |= fc.writeEffect(x.L, cx)
		b := l.Yields.Mul(r.Yields)
		b.Min = 0
		return GenFacts{Effects: eff, Yields: b}
	}
	if isValueOp(x.Op) {
		b := l.Yields.Mul(r.Yields)
		if comparisonOp(x.Op) {
			b.Min = 0 // comparisons fail
		}
		return GenFacts{Effects: eff, Yields: b}
	}
	switch x.Op {
	case "===", "~===":
		b := l.Yields.Mul(r.Yields)
		b.Min = 0
		return GenFacts{Effects: eff, Yields: b}
	}
	return GenFacts{Effects: eff | EffUnknown, Yields: boundUnbounded}
}

// comparisonOp reports value operators that may fail (comparisons), as
// opposed to arithmetic, which always yields per operand pair.
func comparisonOp(op string) bool {
	switch op {
	case "<", "<=", ">", ">=", "~=", "==", "~==", "<<", "<<=", ">>", ">>=":
		return true
	}
	return false
}

func (fc *factsComp) unaryFacts(x *ast.Unary, cx *procCtx) GenFacts {
	switch x.Op {
	case "<>", "|<>":
		// Creation defers the body; the creation expression itself is a
		// pure single value. The body's facts are still computed (and
		// cached) — they are the facts of the created generator.
		fc.expr(x.X, cx)
		return GenFacts{Yields: boundOne}
	case "|>":
		// A pipe starts its producer eagerly: creating it performs the
		// body's effects (asynchronously), though the creation expression
		// still yields exactly the pipe.
		body := fc.expr(x.X, cx)
		return GenFacts{Effects: body.Effects, Yields: boundOne}
	}

	o := fc.expr(x.X, cx)
	switch x.Op {
	case "!":
		k := exprKind(x.X)
		if k == kindCoexpr || k == kindPipe {
			return GenFacts{Effects: o.Effects | EffUnknown, Yields: boundUnbounded}
		}
		if k == kindValue {
			// Promotion of a collection or string: finite.
			return GenFacts{Effects: o.Effects, Yields: boundFinite}
		}
		return GenFacts{Effects: o.Effects | EffUnknown, Yields: boundUnbounded}
	case "@":
		return GenFacts{Effects: o.Effects | EffUnknown, Yields: boundUnbounded}
	case "^":
		return GenFacts{Effects: o.Effects, Yields: o.Yields}
	case "*", "-", "+", "~":
		return GenFacts{Effects: o.Effects, Yields: o.Yields}
	case "/", "\\":
		b := o.Yields
		b.Min = 0
		return GenFacts{Effects: o.Effects, Yields: b}
	case "?":
		b := o.Yields
		b.Min = 0
		return GenFacts{Effects: o.Effects | EffRandom, Yields: b}
	case "=":
		return GenFacts{Effects: o.Effects | EffHeap, Yields: boundFinite}
	case "|":
		if o.Yields.Max == 0 {
			return GenFacts{Effects: o.Effects, Yields: boundNone}
		}
		return GenFacts{Effects: o.Effects, Yields: boundUnbounded}
	case "not":
		return GenFacts{Effects: o.Effects, Yields: boundOpt}
	}
	return GenFacts{Effects: o.Effects | EffUnknown, Yields: boundUnbounded}
}

// callFacts resolves an invocation's facts.
func (fc *factsComp) callFacts(x *ast.Call, cx *procCtx) GenFacts {
	args := GenFacts{Yields: boundOne}
	for _, a := range x.Args {
		af := fc.expr(a, cx)
		args.Effects |= af.Effects
		args.Yields = args.Yields.Mul(af.Yields)
	}
	name, ok := identName(x.Fun)
	if ok && !cx.locals[name] {
		if pf, have := fc.table[name]; have {
			fc.expr(x.Fun, cx)
			return GenFacts{
				Effects: args.Effects | pf.Effects | EffReadsGlobals,
				Yields:  args.Yields.Mul(pf.Yields),
			}
		}
		if builtinNames()[name] {
			bf := builtinFactsFor(name)
			fc.expr(x.Fun, cx)
			return GenFacts{
				Effects: args.Effects | bf.Effects,
				Yields:  args.Yields.Mul(bf.Yields),
			}
		}
	}
	ff := fc.expr(x.Fun, cx)
	return GenFacts{Effects: args.Effects | ff.Effects | EffUnknown, Yields: boundUnbounded}
}

// rangeCount computes the per-operand-triple yield count of a to-by.
func rangeCount(x *ast.ToBy) Bound {
	lo, lok := intConst(x.Lo)
	hi, hok := intConst(x.Hi)
	by := int64(1)
	bok := true
	if x.By != nil {
		by, bok = intConst(x.By)
	}
	if !lok || !hok || !bok || by == 0 {
		return boundFinite // non-constant operands: finite, magnitude unknown
	}
	var count int64
	if by > 0 && hi >= lo {
		count = (hi-lo)/by + 1
	} else if by < 0 && hi <= lo {
		count = (lo-hi)/(-by) + 1
	}
	if count > int64(maxExact) {
		return boundFinite
	}
	return exactly(int(count))
}

// ---------- procedure yields ----------

// procYields computes a procedure's per-invocation yield bound from its
// statement list: contributions of suspends plus a terminal return.
func (fc *factsComp) procYields(stmts []ast.Node, cx *procCtx) (Bound, bool) {
	total := boundNone
	for _, s := range stmts {
		b, terminated := fc.stmtYields(s, cx)
		total = total.Add(b)
		if terminated {
			return total, true
		}
	}
	// Falling off the end fails the procedure — no further results, and
	// the accumulated minimum stands (those suspensions already happened).
	return total, false
}

// stmtYields computes one statement's yield contribution and whether it
// unconditionally terminates the invocation.
func (fc *factsComp) stmtYields(s ast.Node, cx *procCtx) (Bound, bool) {
	switch x := s.(type) {
	case *ast.Suspend:
		b := fc.expr(x.E, cx).Yields
		if x.Body != nil {
			body, _ := fc.stmtYields(x.Body, cx)
			b = b.Add(b.Mul(body))
		}
		return b, false
	case *ast.Return:
		if x.E == nil {
			return boundOne, true
		}
		fc.expr(x.E, cx)
		if cannotFail(x.E) {
			return boundOne, true
		}
		return boundOpt, true
	case *ast.Fail:
		return boundNone, true
	case *ast.Block:
		return fc.procYields(x.Stmts, cx)
	case *ast.If:
		then, tdone := fc.stmtYields(x.Then, cx)
		var els Bound
		edone := false
		if x.Else != nil {
			els, edone = fc.stmtYields(x.Else, cx)
		}
		j := then.Join(els)
		if x.Else == nil || !cannotFail(x.Cond) {
			j.Min = 0
		}
		return j, tdone && edone && x.Else != nil && cannotFail(x.Cond)
	case *ast.While, *ast.Repeat:
		var body ast.Node
		if w, ok := x.(*ast.While); ok {
			body = w.Body
		} else {
			body = x.(*ast.Repeat).Body
		}
		if body == nil {
			return boundNone, false
		}
		b, _ := fc.stmtYields(body, cx)
		if b.Max == 0 {
			return boundNone, false
		}
		return boundUnbounded, false
	case *ast.Every:
		// `every suspend e` merges into per-result suspension.
		per := boundNone
		src := fc.expr(x.E, cx).Yields
		if sus, ok := x.E.(*ast.Suspend); ok {
			src = fc.expr(sus.E, cx).Yields
			per = exactly(1)
		}
		if x.Body != nil {
			b, _ := fc.stmtYields(x.Body, cx)
			per = per.Add(b)
		}
		out := src.Mul(per)
		out.Min = 0
		return out, false
	case *ast.Case:
		out := boundNone
		for _, c := range x.Clauses {
			b, _ := fc.stmtYields(c.Body, cx)
			out = out.Join(b)
		}
		out.Min = 0
		return out, false
	case *ast.Initial:
		b, _ := fc.stmtYields(x.Body, cx)
		b.Min = 0
		return b, false
	}
	// Expression statements (bounded) yield nothing to the caller.
	return boundNone, false
}

// stmtEffects joins the effect summaries of a statement's expressions,
// descending the structural statement forms so control-transfer nodes in
// statement position do not poison the summary with EffControl.
func (fc *factsComp) stmtEffects(s ast.Node, cx *procCtx) Effects {
	switch x := s.(type) {
	case nil:
		return EffPure
	case *ast.Block:
		eff := EffPure
		for _, st := range x.Stmts {
			eff |= fc.stmtEffects(st, cx)
		}
		return eff
	case *ast.If:
		return fc.expr(x.Cond, cx).Effects |
			fc.stmtEffects(x.Then, cx) | fc.stmtEffects(x.Else, cx)
	case *ast.While:
		return fc.expr(x.Cond, cx).Effects | fc.stmtEffects(x.Body, cx)
	case *ast.Every:
		eff := fc.stmtEffects(x.Body, cx)
		if sus, ok := x.E.(*ast.Suspend); ok {
			return eff | fc.expr(sus.E, cx).Effects | fc.stmtEffects(sus.Body, cx)
		}
		return eff | fc.expr(x.E, cx).Effects
	case *ast.Repeat:
		return fc.stmtEffects(x.Body, cx)
	case *ast.Suspend:
		return fc.expr(x.E, cx).Effects | fc.stmtEffects(x.Body, cx)
	case *ast.Return:
		if x.E == nil {
			return EffPure
		}
		return fc.expr(x.E, cx).Effects
	case *ast.Fail, *ast.NextStmt:
		return EffPure
	case *ast.Break:
		if x.E == nil {
			return EffPure
		}
		return fc.expr(x.E, cx).Effects
	case *ast.Case:
		eff := fc.expr(x.Subject, cx).Effects
		for _, c := range x.Clauses {
			if c.Sel != nil {
				eff |= fc.expr(c.Sel, cx).Effects
			}
			eff |= fc.stmtEffects(c.Body, cx)
		}
		return eff
	case *ast.VarDecl:
		eff := EffPure
		for _, init := range x.Inits {
			if init != nil {
				eff |= fc.expr(init, cx).Effects
			}
		}
		return eff
	case *ast.Initial:
		return fc.stmtEffects(x.Body, cx)
	}
	return fc.expr(s, cx).Effects
}

// ---------- demandedness ----------

// markDemand flags expressions the program drives to exhaustion: the
// iterated expression of every-loops and operands of promotion. The flag
// rides the cached record, so consumers can distinguish a generator whose
// full sequence is demanded from one in a bounded position.
// ExtendExpr computes and caches facts for one more top-level expression
// against the already-computed interprocedural tables — the incremental
// path for the REPL and EvalGen: declarations are analyzed once at load
// time; each evaluated expression then extends the node cache without
// re-running the whole-program fixpoint.
func (f *Facts) ExtendExpr(n ast.Node, opts Options) {
	if f == nil || n == nil {
		return
	}
	f.exprNodes = make(map[ast.Node]GenFacts)
	fc := &factsComp{opts: opts, table: f.procs, nodes: f.exprNodes}
	fc.expr(n, &procCtx{name: TopLevel, locals: map[string]bool{}})
	markDemand(&ast.Program{Decls: []ast.Node{n}}, fc.nodes)
}

func markDemand(p *ast.Program, nodes map[ast.Node]GenFacts) {
	mark := func(n ast.Node) {
		if n == nil {
			return
		}
		if g, ok := nodes[n]; ok {
			g.Demanded = true
			nodes[n] = g
		}
	}
	ast.Walk(p, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Every:
			mark(x.E)
		case *ast.Unary:
			if x.Op == "!" {
				mark(x.X)
			}
		}
		return true
	})
}
