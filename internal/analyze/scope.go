package analyze

import (
	"strings"

	"junicon/internal/ast"
)

// scope is the symbol table of one analysis scope: a procedure body, or
// the shared global scope in which top-level statements run.
type scope struct {
	a *Analyzer
	// params are the procedure's parameters (always bound at entry).
	params map[string]bool
	// declared are names introduced by local/static/var declarations;
	// reading one without an initializer is the deliberate &null idiom, so
	// they are never "never-assigned".
	declared map[string]bool
	// assigned are names that appear as an assignment target (or bound
	// iteration temporary) anywhere in the scope — Icon's rule that
	// assignment makes a name local.
	assigned map[string]bool
	// kinds maps a name to the statically inferred kinds of every value
	// assigned to it in this scope (see kind).
	kinds map[string]map[kind]bool
	// roots are the subtrees the scope was collected from — re-walked by
	// queries that must exclude a region (see assignedOutside).
	roots []ast.Node
	// aliases records assignments whose source is another variable (x := y,
	// x := ^y): the target inherits the source's kinds (see resolveAliases).
	aliases [][2]string
}

// kind is the coarse static type lattice of the concurrency pass.
type kind int

const (
	kindValue  kind = iota // plain value: literal, arithmetic result …
	kindCoexpr             // co-expression or first-class generator: <>e, |<>e
	kindPipe               // generator proxy: |>e
	kindOther              // anything the analyzer cannot classify
)

// collectGlobals gathers program-level names: explicit globals, procedure
// and record and class declarations, class fields (which the embedding
// flattens into globals), and names assigned by top-level statements
// (which execute in the global scope).
func (a *Analyzer) collectGlobals(p *ast.Program) {
	a.globals = map[string]bool{}
	for _, d := range p.Decls {
		switch x := d.(type) {
		case *ast.GlobalDecl:
			for _, n := range x.Names {
				a.globals[n] = true
			}
		case *ast.ProcDecl:
			a.globals[x.Name] = true
		case *ast.RecordDecl:
			a.globals[x.Name] = true
		case *ast.ClassDecl:
			a.globals[x.Name] = true
			for _, f := range x.Fields {
				a.globals[f] = true
			}
			for _, m := range x.Methods {
				a.globals[m.Name] = true
			}
		default:
			// Top-level statement: its assignments create globals.
			for n := range assignedNames(x) {
				a.globals[n] = true
			}
			for n := range declaredNames(x) {
				a.globals[n] = true
			}
		}
	}
}

// newScope builds the symbol table of one procedure.
func newScope(a *Analyzer, p *ast.ProcDecl) *scope {
	sc := &scope{
		a:        a,
		params:   map[string]bool{},
		declared: map[string]bool{},
		assigned: map[string]bool{},
		kinds:    map[string]map[kind]bool{},
	}
	for _, param := range p.Params {
		sc.params[param] = true
	}
	sc.collect(p.Body)
	sc.resolveAliases()
	return sc
}

// newScopeFrom builds the symbol table of the top-level statement scope.
func newScopeFrom(a *Analyzer, p *ast.Program) *scope {
	sc := &scope{
		a:        a,
		params:   map[string]bool{},
		declared: map[string]bool{},
		assigned: map[string]bool{},
		kinds:    map[string]map[kind]bool{},
	}
	for _, d := range p.Decls {
		switch d.(type) {
		case *ast.ProcDecl, *ast.RecordDecl, *ast.GlobalDecl, *ast.ClassDecl:
		default:
			sc.collect(d)
		}
	}
	sc.resolveAliases()
	return sc
}

// collect walks a subtree recording declarations, assignment targets and
// the inferred kind of each assigned value.
func (sc *scope) collect(n ast.Node) {
	sc.roots = append(sc.roots, n)
	ast.Walk(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.VarDecl:
			for i, name := range x.Names {
				sc.declared[name] = true
				if i < len(x.Inits) && x.Inits[i] != nil {
					sc.assigned[name] = true
					if src, ok := aliasSource(x.Inits[i]); ok {
						sc.aliases = append(sc.aliases, [2]string{name, src})
					} else {
						sc.addKind(name, exprKind(x.Inits[i]))
					}
				}
			}
		case *ast.BindIn:
			sc.assigned[x.Tmp] = true
			sc.addKind(x.Tmp, exprKind(x.E))
		case *ast.Binary:
			if isAssignOp(x.Op) {
				if name, ok := identName(x.L); ok {
					sc.assigned[name] = true
					if src, ok := aliasSource(x.R); ok {
						sc.aliases = append(sc.aliases, [2]string{name, src})
					} else {
						sc.addKind(name, exprKind(x.R))
					}
				}
				if x.Op == ":=:" || x.Op == "<->" {
					if name, ok := identName(x.R); ok {
						sc.assigned[name] = true
						sc.addKind(name, kindOther)
					}
				}
			}
		}
		return true
	})
}

// aliasSource unwraps an assignment source that transfers another
// variable's value (and so its kind): plain x := y, or x := ^y — a
// refreshed co-expression is a co-expression, a refreshed pipe a pipe.
func aliasSource(n ast.Node) (string, bool) {
	if u, ok := n.(*ast.Unary); ok && u.Op == "^" {
		n = u.X
	}
	return identName(n)
}

// resolveAliases propagates kinds through variable-to-variable assignments
// until a fixed point.
func (sc *scope) resolveAliases() {
	for changed := true; changed; {
		changed = false
		for _, al := range sc.aliases {
			target, src := al[0], al[1]
			for k := range sc.kinds[src] {
				if !sc.kinds[target][k] {
					sc.addKind(target, k)
					changed = true
				}
			}
		}
	}
}

func (sc *scope) addKind(name string, k kind) {
	if sc.kinds[name] == nil {
		sc.kinds[name] = map[kind]bool{}
	}
	sc.kinds[name][k] = true
}

// onlyKind reports whether every value assigned to name in this scope has
// kind k (and at least one assignment was seen).
func (sc *scope) onlyKind(name string, k kind) bool {
	ks := sc.kinds[name]
	if len(ks) == 0 {
		return false
	}
	for other := range ks {
		if other != k {
			return false
		}
	}
	return true
}

// bound reports whether name can ever be bound in this scope: parameter,
// declared local, assigned name, program global, builtin, or host-known.
func (sc *scope) bound(name string) bool {
	return sc.params[name] || sc.declared[name] || sc.assigned[name] ||
		sc.a.globals[name] || sc.a.known(name)
}

// assignedOutside reports whether name is assigned (or declared with an
// initializer) anywhere in the scope outside the given subtree.
func (sc *scope) assignedOutside(name string, exclude ast.Node) bool {
	found := false
	for _, root := range sc.roots {
		ast.Walk(root, func(m ast.Node) bool {
			if m == exclude || found {
				return false
			}
			switch x := m.(type) {
			case *ast.VarDecl:
				for i, dn := range x.Names {
					if dn == name && i < len(x.Inits) && x.Inits[i] != nil {
						found = true
					}
				}
			case *ast.BindIn:
				if x.Tmp == name {
					found = true
				}
			case *ast.Binary:
				if isAssignOp(x.Op) {
					if t, ok := identName(x.L); ok && t == name {
						found = true
					}
					if x.Op == ":=:" || x.Op == "<->" {
						if t, ok := identName(x.R); ok && t == name {
							found = true
						}
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isAssignOp reports whether op binds its left operand: plain, reversible
// and augmented assignment, and the swap operators.
func isAssignOp(op string) bool {
	switch op {
	case ":=", "<-", ":=:", "<->":
		return true
	}
	return len(op) > 2 && strings.HasSuffix(op, ":=")
}

// identName unwraps an identifier or temporary reference.
func identName(n ast.Node) (string, bool) {
	switch x := n.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.TmpRef:
		return x.Name, true
	}
	return "", false
}

// assignedNames collects the simple names a subtree assigns.
func assignedNames(n ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Walk(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.Binary:
			if isAssignOp(x.Op) {
				if name, ok := identName(x.L); ok {
					out[name] = true
				}
				if x.Op == ":=:" || x.Op == "<->" {
					if name, ok := identName(x.R); ok {
						out[name] = true
					}
				}
			}
		case *ast.BindIn:
			out[x.Tmp] = true
		}
		return true
	})
	return out
}

// declaredNames collects names introduced by local/static/var declarations
// in a subtree.
func declaredNames(n ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Walk(n, func(m ast.Node) bool {
		if x, ok := m.(*ast.VarDecl); ok {
			for _, name := range x.Names {
				out[name] = true
			}
		}
		return true
	})
	return out
}

// exprKind classifies the static kind of an expression's results.
func exprKind(n ast.Node) kind {
	switch x := n.(type) {
	case *ast.IntLit, *ast.RealLit, *ast.StrLit, *ast.CsetLit, *ast.ListLit, *ast.ToBy:
		return kindValue
	case *ast.Keyword:
		if x.Name == "fail" {
			return kindOther
		}
		return kindValue
	case *ast.Unary:
		switch x.Op {
		case "<>", "|<>":
			return kindCoexpr
		case "|>":
			return kindPipe
		case "*", "-", "+", "~", "not", "=":
			return kindValue
		case "^":
			// A refreshed co-expression is a co-expression (or pipe: the
			// concurrency pass flags that case separately).
			return exprKind(x.X)
		}
		return kindOther
	case *ast.Binary:
		if isValueOp(x.Op) {
			return kindValue
		}
		if x.Op == ":=" {
			return exprKind(x.R)
		}
		return kindOther
	default:
		return kindOther
	}
}

// isValueOp reports whether a binary operator always produces a plain
// value (never a co-expression, pipe, or variable reference).
func isValueOp(op string) bool {
	switch op {
	// Note: === / ~=== are absent — value identity succeeds with its right
	// operand unchanged, which may itself be a co-expression.
	case "+", "-", "*", "/", "%", "^", "||", "|||", "++", "--", "**",
		"<", "<=", ">", ">=", "~=", "==", "~==",
		"<<", "<<=", ">>", ">>=", "to":
		return true
	}
	return false
}
