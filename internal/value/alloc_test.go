package value

import "testing"

var allocSink V

// TestSmallIntAllocFree guards the interning fast path: producing and
// adding integers in the interned range (−256..1024) must not allocate —
// the boxed values come from the intern table.
func TestSmallIntAllocFree(t *testing.T) {
	if n := testing.AllocsPerRun(200, func() {
		allocSink = IntV(512)
	}); n != 0 {
		t.Fatalf("IntV(512): %v allocs/op, want 0", n)
	}
	a, b := IntV(100), IntV(200)
	if n := testing.AllocsPerRun(200, func() {
		allocSink = Add(a, b)
	}); n != 0 {
		t.Fatalf("Add of interned ints: %v allocs/op, want 0", n)
	}
	neg := IntV(-5)
	if n := testing.AllocsPerRun(200, func() {
		allocSink = Neg(neg)
	}); n != 0 {
		t.Fatalf("Neg of interned int: %v allocs/op, want 0", n)
	}
}

// TestInternedIntsAreCanonical checks IntV returns identical boxed values
// across calls inside the range, and still-correct values outside it.
func TestInternedIntsAreCanonical(t *testing.T) {
	for _, i := range []int64{-256, -1, 0, 1, 255, 1024} {
		v1, v2 := IntV(i), IntV(i)
		if v1 != v2 {
			t.Fatalf("IntV(%d) not canonical", i)
		}
		n, ok := ToInteger(v1)
		if !ok {
			t.Fatalf("IntV(%d) not an integer", i)
		}
		if got, _ := n.Int64(); got != i {
			t.Fatalf("IntV(%d) = %d", i, got)
		}
	}
	for _, i := range []int64{-257, 1025, 1 << 40} {
		n, ok := ToInteger(IntV(i))
		if !ok {
			t.Fatalf("IntV(%d) not an integer", i)
		}
		if got, _ := n.Int64(); got != i {
			t.Fatalf("IntV(%d) = %d", i, got)
		}
	}
}
