package value

import (
	"fmt"
	"sort"
	"strings"
)

// mapKey produces a Go-comparable key for a Unicon value, implementing
// Icon's equivalence for table keys and set members: numbers by numeric
// value, strings and csets by content, structures by identity.
func mapKey(v V) any {
	switch x := v.(type) {
	case nil, Null:
		return Null{}
	case Integer:
		if x.big != nil {
			return "big:" + x.big.String()
		}
		return x.small
	case Real:
		return float64(x)
	case String:
		return string(x)
	case *Cset:
		return "cset:" + x.Members()
	default:
		// Identity for lists, tables, sets, records, procedures,
		// co-expressions: the pointer itself is comparable.
		return v
	}
}

type tableEntry struct {
	key tKey
	val V
}

type tKey struct {
	norm any
	orig V
}

// Table is a Unicon table: an associative map from arbitrary values to
// values, with a default value produced for absent keys. Reference semantics.
type Table struct {
	m       map[any]*tableEntry
	defval  V
	counter int
}

// NewTable returns an empty table whose lookups of absent keys yield defval.
func NewTable(defval V) *Table {
	if defval == nil {
		defval = NullV
	}
	return &Table{m: make(map[any]*tableEntry), defval: defval}
}

func (t *Table) Type() string { return "table" }

func (t *Table) Image() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table(%d)", len(t.m))
	return b.String()
}

// Len returns the number of entries (*T).
func (t *Table) Len() int { return len(t.m) }

// Default returns the table's default value.
func (t *Table) Default() V { return t.defval }

// Get returns the value stored under key, or the default value if absent.
func (t *Table) Get(key V) V {
	if e, ok := t.m[mapKey(key)]; ok {
		return e.val
	}
	return t.defval
}

// Has reports whether key is present (member built-in).
func (t *Table) Has(key V) bool {
	_, ok := t.m[mapKey(key)]
	return ok
}

// Set stores val under key.
func (t *Table) Set(key, val V) {
	k := mapKey(key)
	if e, ok := t.m[k]; ok {
		e.val = val
		return
	}
	t.m[k] = &tableEntry{key: tKey{norm: k, orig: key}, val: val}
}

// Delete removes key if present (delete built-in).
func (t *Table) Delete(key V) { delete(t.m, mapKey(key)) }

// Keys returns the keys in insertion-independent deterministic order
// (sorted by image), matching the determinism Icon's sort(T) provides.
func (t *Table) Keys() []V {
	out := make([]V, 0, len(t.m))
	for _, e := range t.m {
		out = append(out, e.key.orig)
	}
	sortValues(out)
	return out
}

// Copy returns a one-level copy.
func (t *Table) Copy() *Table {
	out := NewTable(t.defval)
	for k, e := range t.m {
		out.m[k] = &tableEntry{key: e.key, val: e.val}
	}
	return out
}

// Set is a Unicon set of values. Reference semantics.
type Set struct {
	m map[any]V
}

// NewSet returns a set of the given members.
func NewSet(members ...V) *Set {
	s := &Set{m: make(map[any]V, len(members))}
	for _, v := range members {
		s.Insert(v)
	}
	return s
}

func (s *Set) Type() string  { return "set" }
func (s *Set) Image() string { return fmt.Sprintf("set(%d)", len(s.m)) }

// Len returns the number of members (*S).
func (s *Set) Len() int { return len(s.m) }

// Insert adds v (insert built-in).
func (s *Set) Insert(v V) { s.m[mapKey(v)] = v }

// Delete removes v (delete built-in).
func (s *Set) Delete(v V) { delete(s.m, mapKey(v)) }

// Has reports membership (member built-in).
func (s *Set) Has(v V) bool {
	_, ok := s.m[mapKey(v)]
	return ok
}

// Members returns the members in deterministic (image-sorted) order.
func (s *Set) Members() []V {
	out := make([]V, 0, len(s.m))
	for _, v := range s.m {
		out = append(out, v)
	}
	sortValues(out)
	return out
}

// Copy returns a copy of the set.
func (s *Set) Copy() *Set {
	out := &Set{m: make(map[any]V, len(s.m))}
	for k, v := range s.m {
		out.m[k] = v
	}
	return out
}

// sortValues orders values by Icon's canonical sort order: by type class
// first (null, integer/real, string, cset, then structures), then by value.
func sortValues(vs []V) {
	sort.SliceStable(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
}

// typeRank gives the cross-type ordering used by sort().
func typeRank(v V) int {
	switch v.(type) {
	case nil, Null:
		return 0
	case Integer, Real:
		return 1
	case String:
		return 2
	case *Cset:
		return 3
	case *List:
		return 4
	case *Set:
		return 5
	case *Table:
		return 6
	case *Record:
		return 7
	case *Proc:
		return 8
	default:
		return 9
	}
}

// Less reports whether a sorts before b in Icon's canonical order.
func Less(a, b V) bool {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		return ra < rb
	}
	switch ra {
	case 1:
		x, _ := ToReal(a)
		y, _ := ToReal(b)
		return float64(x) < float64(y)
	case 2:
		return a.(String) < b.(String)
	case 3:
		return a.(*Cset).Members() < b.(*Cset).Members()
	default:
		return Image(a) < Image(b)
	}
}

// Record is an instance of a Unicon record declaration.
type Record struct {
	Name   string
	Fields []string
	Values []V
}

// NewRecord constructs a record instance; missing values default to null.
func NewRecord(name string, fields []string, values []V) *Record {
	vals := make([]V, len(fields))
	for i := range vals {
		if i < len(values) && values[i] != nil {
			vals[i] = values[i]
		} else {
			vals[i] = NullV
		}
	}
	return &Record{Name: name, Fields: fields, Values: vals}
}

func (r *Record) Type() string { return "record " + r.Name }

func (r *Record) Image() string {
	var b strings.Builder
	fmt.Fprintf(&b, "record %s(", r.Name)
	for i, v := range r.Values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(Image(v))
	}
	b.WriteByte(')')
	return b.String()
}

// FieldIndex returns the index of the named field, or -1.
func (r *Record) FieldIndex(name string) int {
	for i, f := range r.Fields {
		if f == name {
			return i
		}
	}
	return -1
}

// GetField returns the value of the named field; ok is false when absent.
func (r *Record) GetField(name string) (V, bool) {
	if i := r.FieldIndex(name); i >= 0 {
		return r.Values[i], true
	}
	return nil, false
}

// SetField assigns the named field; ok is false when absent.
func (r *Record) SetField(name string, v V) bool {
	if i := r.FieldIndex(name); i >= 0 {
		r.Values[i] = v
		return true
	}
	return false
}
