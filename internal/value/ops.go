package value

import (
	"math"
	"math/big"
)

// Arithmetic follows Icon semantics: operands are coerced to numbers
// (strings convert automatically), integer arithmetic promotes to big
// integers on overflow, and mixing an integer with a real yields a real.
// Type errors raise Icon runtime errors (see errors.go).

// binNum coerces both operands and dispatches to the integer or real case.
func binNum(a, b V, fi func(x, y Integer) V, fr func(x, y float64) V) V {
	x := MustNumber(a)
	y := MustNumber(b)
	xi, xok := x.(Integer)
	yi, yok := y.(Integer)
	if xok && yok {
		return fi(xi, yi)
	}
	xr, _ := ToReal(x)
	yr, _ := ToReal(y)
	return fr(float64(xr), float64(yr))
}

// Add implements a + b.
func Add(a, b V) V {
	return binNum(a, b,
		func(x, y Integer) V {
			if x.big == nil && y.big == nil {
				if s, ok := addInt64(x.small, y.small); ok {
					return IntV(s)
				}
			}
			return BigV(new(big.Int).Add(x.Big(), y.Big()))
		},
		func(x, y float64) V { return Real(x + y) })
}

// Sub implements a - b.
func Sub(a, b V) V {
	return binNum(a, b,
		func(x, y Integer) V {
			if x.big == nil && y.big == nil {
				if s, ok := subInt64(x.small, y.small); ok {
					return IntV(s)
				}
			}
			return BigV(new(big.Int).Sub(x.Big(), y.Big()))
		},
		func(x, y float64) V { return Real(x - y) })
}

// Mul implements a * b.
func Mul(a, b V) V {
	return binNum(a, b,
		func(x, y Integer) V {
			if x.big == nil && y.big == nil {
				if p, ok := mulInt64(x.small, y.small); ok {
					return IntV(p)
				}
			}
			return BigV(new(big.Int).Mul(x.Big(), y.Big()))
		},
		func(x, y float64) V { return Real(x * y) })
}

// Div implements a / b. Integer division truncates toward zero as in Icon.
func Div(a, b V) V {
	return binNum(a, b,
		func(x, y Integer) V {
			if y.Sign() == 0 {
				Raise(ErrDivideByZero, "division by zero", nil)
			}
			if x.big == nil && y.big == nil {
				if !(x.small == math.MinInt64 && y.small == -1) {
					return IntV(x.small / y.small)
				}
			}
			return BigV(new(big.Int).Quo(x.Big(), y.Big()))
		},
		func(x, y float64) V { return Real(x / y) })
}

// Mod implements a % b with the sign of the dividend, as in Icon.
func Mod(a, b V) V {
	return binNum(a, b,
		func(x, y Integer) V {
			if y.Sign() == 0 {
				Raise(ErrDivideByZero, "remainder by zero", nil)
			}
			if x.big == nil && y.big == nil {
				if !(x.small == math.MinInt64 && y.small == -1) {
					return IntV(x.small % y.small)
				}
			}
			return BigV(new(big.Int).Rem(x.Big(), y.Big()))
		},
		func(x, y float64) V { return Real(math.Mod(x, y)) })
}

// Pow implements a ^ b (exponentiation).
func Pow(a, b V) V {
	x := MustNumber(a)
	y := MustNumber(b)
	xi, xok := x.(Integer)
	yi, yok := y.(Integer)
	if xok && yok && yi.Sign() >= 0 {
		if e, fits := yi.Int64(); fits && e <= 1<<20 {
			return BigV(new(big.Int).Exp(xi.Big(), big.NewInt(e), nil))
		}
		Raise(ErrInteger, "exponent too large", y)
	}
	xr, _ := ToReal(x)
	yr, _ := ToReal(y)
	return Real(math.Pow(float64(xr), float64(yr)))
}

// Neg implements unary -a.
func Neg(a V) V {
	switch x := MustNumber(a).(type) {
	case Integer:
		if x.big == nil && x.small != math.MinInt64 {
			return IntV(-x.small)
		}
		return BigV(new(big.Int).Neg(x.Big()))
	case Real:
		return Real(-x)
	}
	panic("unreachable")
}

// Pos implements unary +a (numeric coercion).
func Pos(a V) V { return MustNumber(a) }

func addInt64(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func subInt64(a, b int64) (int64, bool) {
	s := a - b
	if (a >= 0 && b < 0 && s < 0) || (a < 0 && b > 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func mulInt64(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		return 0, false
	}
	return p, true
}

// NumCompare returns -1, 0, +1 comparing two numerics.
func NumCompare(a, b V) int {
	x := MustNumber(a)
	y := MustNumber(b)
	xi, xok := x.(Integer)
	yi, yok := y.(Integer)
	if xok && yok {
		if xi.big == nil && yi.big == nil {
			switch {
			case xi.small < yi.small:
				return -1
			case xi.small > yi.small:
				return 1
			}
			return 0
		}
		return xi.Big().Cmp(yi.Big())
	}
	xr, _ := ToReal(x)
	yr, _ := ToReal(y)
	switch {
	case xr < yr:
		return -1
	case xr > yr:
		return 1
	}
	return 0
}

// Numeric comparison operators: in Icon, i < j succeeds producing j, or
// fails. ok == false is failure.

// NumLt implements a < b.
func NumLt(a, b V) (V, bool) { return cmpResult(b, NumCompare(a, b) < 0) }

// NumLe implements a <= b.
func NumLe(a, b V) (V, bool) { return cmpResult(b, NumCompare(a, b) <= 0) }

// NumGt implements a > b.
func NumGt(a, b V) (V, bool) { return cmpResult(b, NumCompare(a, b) > 0) }

// NumGe implements a >= b.
func NumGe(a, b V) (V, bool) { return cmpResult(b, NumCompare(a, b) >= 0) }

// NumEq implements a = b.
func NumEq(a, b V) (V, bool) { return cmpResult(b, NumCompare(a, b) == 0) }

// NumNe implements a ~= b.
func NumNe(a, b V) (V, bool) { return cmpResult(b, NumCompare(a, b) != 0) }

func cmpResult(b V, ok bool) (V, bool) {
	if !ok {
		return nil, false
	}
	return MustNumber(b), true
}

// String comparison operators (<<, <<=, >>, >>=, ==, ~==).

// StrLt implements a << b.
func StrLt(a, b V) (V, bool) { return strCmp(a, b, func(c int) bool { return c < 0 }) }

// StrLe implements a <<= b.
func StrLe(a, b V) (V, bool) { return strCmp(a, b, func(c int) bool { return c <= 0 }) }

// StrGt implements a >> b.
func StrGt(a, b V) (V, bool) { return strCmp(a, b, func(c int) bool { return c > 0 }) }

// StrGe implements a >>= b.
func StrGe(a, b V) (V, bool) { return strCmp(a, b, func(c int) bool { return c >= 0 }) }

// StrEq implements a == b.
func StrEq(a, b V) (V, bool) { return strCmp(a, b, func(c int) bool { return c == 0 }) }

// StrNe implements a ~== b.
func StrNe(a, b V) (V, bool) { return strCmp(a, b, func(c int) bool { return c != 0 }) }

func strCmp(a, b V, pred func(int) bool) (V, bool) {
	x := MustString(a)
	y := MustString(b)
	c := 0
	switch {
	case x < y:
		c = -1
	case x > y:
		c = 1
	}
	if !pred(c) {
		return nil, false
	}
	return y, true
}

// Same implements a === b: value equivalence (numbers by value, strings by
// content, structures by identity), succeeding with b.
func Same(a, b V) (V, bool) {
	if Equiv(a, b) {
		return Deref(b), true
	}
	return nil, false
}

// NotSame implements a ~=== b.
func NotSame(a, b V) (V, bool) {
	if !Equiv(a, b) {
		return Deref(b), true
	}
	return nil, false
}

// Equiv reports Icon value equivalence of a and b.
func Equiv(a, b V) bool {
	da, db := Deref(a), Deref(b)
	if TypeOf(da) != TypeOf(db) {
		// integer/real cross-type: === requires same type in Icon.
		return false
	}
	return mapKey(da) == mapKey(db)
}

// Concat implements string concatenation a || b.
func Concat(a, b V) V { return MustString(a) + MustString(b) }

// ListConcat implements list concatenation a ||| b.
func ListConcat(a, b V) V {
	x, ok := Deref(a).(*List)
	if !ok {
		Raise(ErrNotList, "list expected", Deref(a))
	}
	y, ok := Deref(b).(*List)
	if !ok {
		Raise(ErrNotList, "list expected", Deref(b))
	}
	return x.Concat(y)
}

// Size implements unary *x: the size of a string, cset, list, table, set or
// record.
func Size(v V) V {
	switch x := Deref(v).(type) {
	case String:
		return IntV(int64(len(x)))
	case *Cset:
		return IntV(int64(x.Len()))
	case *List:
		return IntV(int64(x.Len()))
	case *Table:
		return IntV(int64(x.Len()))
	case *Set:
		return IntV(int64(x.Len()))
	case *Record:
		return IntV(int64(len(r2(x))))
	case Sized:
		return IntV(int64(x.Size()))
	default:
		if s, ok := ToString(x); ok {
			return IntV(int64(len(s)))
		}
		Raise(ErrString, "size: invalid type", x)
	}
	panic("unreachable")
}

func r2(r *Record) []V { return r.Values }

// Sized is implemented by extension values (such as co-expressions, whose
// size is the number of results produced so far) that support *x.
type Sized interface {
	Size() int
}

// Union implements a ++ b on csets or sets.
func Union(a, b V) V {
	if s, ok := Deref(a).(*Set); ok {
		t, ok := Deref(b).(*Set)
		if !ok {
			Raise(ErrCset, "set expected", Deref(b))
		}
		out := s.Copy()
		for _, v := range t.Members() {
			out.Insert(v)
		}
		return out
	}
	return MustCset(a).Union(MustCset(b))
}

// Intersection implements a ** b on csets or sets.
func Intersection(a, b V) V {
	if s, ok := Deref(a).(*Set); ok {
		t, ok := Deref(b).(*Set)
		if !ok {
			Raise(ErrCset, "set expected", Deref(b))
		}
		out := NewSet()
		for _, v := range s.Members() {
			if t.Has(v) {
				out.Insert(v)
			}
		}
		return out
	}
	return MustCset(a).Intersect(MustCset(b))
}

// Difference implements a -- b on csets or sets.
func Difference(a, b V) V {
	if s, ok := Deref(a).(*Set); ok {
		t, ok := Deref(b).(*Set)
		if !ok {
			Raise(ErrCset, "set expected", Deref(b))
		}
		out := NewSet()
		for _, v := range s.Members() {
			if !t.Has(v) {
				out.Insert(v)
			}
		}
		return out
	}
	return MustCset(a).Diff(MustCset(b))
}

// Complement implements unary ~c (cset complement) over the ASCII universe,
// which is what classic Icon uses for &cset.
func Complement(v V) V {
	c := MustCset(v)
	out := make([]rune, 0, 256)
	for r := rune(0); r < 256; r++ {
		if !c.Contains(r) {
			out = append(out, r)
		}
	}
	return NewCset(string(out))
}
