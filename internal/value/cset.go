package value

import (
	"sort"
	"strings"
)

// Cset is a Unicon character set. Csets are immutable values.
type Cset struct {
	runes map[rune]struct{}
	image string // cached sorted member string
}

// NewCset returns a cset containing the characters of s.
func NewCset(s string) *Cset {
	c := &Cset{runes: make(map[rune]struct{}, len(s))}
	for _, r := range s {
		c.runes[r] = struct{}{}
	}
	return c
}

// Predefined csets mirroring Icon keywords.
var (
	CsetLcase   = NewCset("abcdefghijklmnopqrstuvwxyz") // &lcase
	CsetUcase   = NewCset("ABCDEFGHIJKLMNOPQRSTUVWXYZ") // &ucase
	CsetDigits  = NewCset("0123456789")                 // &digits
	CsetLetters = func() *Cset {                        // &letters
		return NewCset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
	}()
)

func (c *Cset) Type() string { return "cset" }

func (c *Cset) Image() string { return "'" + strings.ReplaceAll(c.Members(), "'", `\'`) + "'" }

// Members returns the member characters in sorted order.
func (c *Cset) Members() string {
	if c.image == "" {
		rs := make([]rune, 0, len(c.runes))
		for r := range c.runes {
			rs = append(rs, r)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		c.image = string(rs)
	}
	return c.image
}

// Contains reports whether r is a member.
func (c *Cset) Contains(r rune) bool {
	_, ok := c.runes[r]
	return ok
}

// Len returns the number of member characters (*c).
func (c *Cset) Len() int { return len(c.runes) }

// Union returns c ++ d.
func (c *Cset) Union(d *Cset) *Cset {
	out := &Cset{runes: make(map[rune]struct{}, len(c.runes)+len(d.runes))}
	for r := range c.runes {
		out.runes[r] = struct{}{}
	}
	for r := range d.runes {
		out.runes[r] = struct{}{}
	}
	return out
}

// Diff returns c -- d.
func (c *Cset) Diff(d *Cset) *Cset {
	out := &Cset{runes: make(map[rune]struct{})}
	for r := range c.runes {
		if !d.Contains(r) {
			out.runes[r] = struct{}{}
		}
	}
	return out
}

// Intersect returns c ** d.
func (c *Cset) Intersect(d *Cset) *Cset {
	out := &Cset{runes: make(map[rune]struct{})}
	for r := range c.runes {
		if d.Contains(r) {
			out.runes[r] = struct{}{}
		}
	}
	return out
}
