package value

import (
	"math"
	"math/big"
	"strconv"
	"strings"
)

// ToInteger converts v to an integer under Icon's coercion rules: integers
// pass through, reals convert when integral-valued (Icon truncates via
// integer(); arithmetic contexts require exactness, we accept any real with
// an exact integer value), and strings parse as integers. ok is false when
// the conversion is impossible.
func ToInteger(v V) (Integer, bool) {
	switch x := Deref(v).(type) {
	case Integer:
		return x, true
	case Real:
		f := float64(x)
		if f != math.Trunc(f) || math.IsInf(f, 0) || math.IsNaN(f) {
			return Integer{}, false
		}
		if f >= math.MinInt64 && f <= math.MaxInt64 {
			return NewInt(int64(f)), true
		}
		bi, _ := big.NewFloat(f).Int(nil)
		return NewBig(bi), true
	case String:
		s := strings.TrimSpace(string(x))
		if s == "" {
			return Integer{}, false
		}
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return NewInt(i), true
		}
		if bi, ok := new(big.Int).SetString(s, 10); ok {
			return NewBig(bi), true
		}
		// Icon radix literals: 16r1F etc.
		if r, rest, found := strings.Cut(s, "r"); found {
			if radix, err := strconv.Atoi(r); err == nil && radix >= 2 && radix <= 36 {
				if bi, ok := new(big.Int).SetString(strings.ToLower(rest), radix); ok {
					return NewBig(bi), true
				}
			}
		}
		// A string holding a real that is integral.
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return ToInteger(Real(f))
		}
		return Integer{}, false
	default:
		return Integer{}, false
	}
}

// ToReal converts v to a real under Icon coercion.
func ToReal(v V) (Real, bool) {
	switch x := Deref(v).(type) {
	case Real:
		return x, true
	case Integer:
		if x.big != nil {
			f, _ := new(big.Float).SetInt(x.big).Float64()
			return Real(f), true
		}
		return Real(float64(x.small)), true
	case String:
		s := strings.TrimSpace(string(x))
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return Real(f), true
		}
		return 0, false
	default:
		return 0, false
	}
}

// ToNumber converts v to integer if possible, else real. Implements the
// numeric() built-in; ok is false for non-numeric values.
func ToNumber(v V) (V, bool) {
	d := Deref(v)
	switch d.(type) {
	case Integer, Real:
		return d, true
	case String:
		if i, ok := ToInteger(d); ok {
			s := strings.TrimSpace(string(d.(String)))
			// Prefer real when the literal looks real ("3.5", "1e3").
			if !strings.ContainsAny(s, ".eE") || strings.HasPrefix(s, "16r") {
				return i, true
			}
			if r, ok := ToReal(d); ok {
				return r, true
			}
			return i, true
		}
		if r, ok := ToReal(d); ok {
			return r, true
		}
		return nil, false
	default:
		return nil, false
	}
}

// ToString converts v to a string under Icon coercion: strings pass through,
// numbers and csets convert to their textual forms.
func ToString(v V) (String, bool) {
	switch x := Deref(v).(type) {
	case String:
		return x, true
	case Integer:
		return String(x.Image()), true
	case Real:
		return String(x.Image()), true
	case *Cset:
		return String(x.Members()), true
	default:
		return "", false
	}
}

// ToCset converts v to a cset.
func ToCset(v V) (*Cset, bool) {
	switch x := Deref(v).(type) {
	case *Cset:
		return x, true
	case String, Integer, Real:
		s, _ := ToString(x)
		return NewCset(string(s)), true
	default:
		return nil, false
	}
}

// MustInteger is ToInteger that raises Icon error 101 on failure.
func MustInteger(v V) Integer {
	i, ok := ToInteger(v)
	if !ok {
		Raise(ErrInteger, "integer expected", Deref(v))
	}
	return i
}

// MustNumber is ToNumber that raises Icon error 102 on failure.
func MustNumber(v V) V {
	n, ok := ToNumber(v)
	if !ok {
		Raise(ErrNumeric, "numeric expected", Deref(v))
	}
	return n
}

// MustString is ToString that raises Icon error 103 on failure.
func MustString(v V) String {
	s, ok := ToString(v)
	if !ok {
		Raise(ErrString, "string expected", Deref(v))
	}
	return s
}

// MustCset is ToCset that raises Icon error 104 on failure.
func MustCset(v V) *Cset {
	c, ok := ToCset(v)
	if !ok {
		Raise(ErrCset, "cset expected", Deref(v))
	}
	return c
}

// MustInt is MustInteger narrowed to a Go int, raising 101 when the value
// does not fit a machine int (used for sizes and positions).
func MustInt(v V) int {
	i := MustInteger(v)
	n, ok := i.Int64()
	if !ok || int64(int(n)) != n {
		Raise(ErrInteger, "integer out of range", Deref(v))
	}
	return int(n)
}
