package value

import "fmt"

// RuntimeError is the analogue of an Icon runtime error (e.g. error 102
// "numeric expected"). Kernel operators raise it by panicking, mirroring the
// fact that Icon runtime errors abort evaluation rather than being values;
// public API entry points recover it into an ordinary Go error (see
// core.Protect and the root package).
type RuntimeError struct {
	Code    int    // Icon error number where one exists, else 0
	Message string // description, e.g. "numeric expected"
	Offend  V      // offending value, if any
}

func (e *RuntimeError) Error() string {
	if e.Offend != nil {
		return fmt.Sprintf("runtime error %d: %s: offending value %s", e.Code, e.Message, Image(e.Offend))
	}
	return fmt.Sprintf("runtime error %d: %s", e.Code, e.Message)
}

// Raise panics with a RuntimeError carrying the given Icon error code.
func Raise(code int, message string, offend V) {
	panic(&RuntimeError{Code: code, Message: message, Offend: offend})
}

// Icon runtime error codes used by the kernel.
const (
	ErrInteger      = 101 // integer expected or out of range
	ErrNumeric      = 102 // numeric expected
	ErrString       = 103 // string expected
	ErrCset         = 104 // cset expected
	ErrProcedure    = 106 // procedure or integer expected
	ErrIndex        = 205 // subscript out of range handled as failure in Icon; kept for lvalue misuse
	ErrNotList      = 108 // list expected
	ErrNotTable     = 124 // table expected
	ErrDivideByZero = 201 // division by zero
	ErrNegativeRoot = 205 // real(?) — reuse
	ErrNotCoexpr    = 118 // co-expression expected
	ErrField        = 207 // missing record field
)
