package value

import "strings"

// List is a Unicon list: a mutable sequence with queue/stack operations.
// Lists have reference semantics — copying a List value copies the pointer.
type List struct {
	elems []V
}

// NewList returns a list containing the given elements.
func NewList(elems ...V) *List {
	l := &List{elems: make([]V, len(elems))}
	copy(l.elems, elems)
	return l
}

// NewListOf returns a list that adopts elems as its backing storage without
// copying. The caller must not use elems afterwards.
func NewListOf(elems []V) *List { return &List{elems: elems} }

// NewListSize returns a list of n copies of init (list(n, x) built-in).
func NewListSize(n int, init V) *List {
	if n < 0 {
		n = 0
	}
	l := &List{elems: make([]V, n)}
	for i := range l.elems {
		l.elems[i] = init
	}
	return l
}

func (l *List) Type() string { return "list" }

func (l *List) Image() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, e := range l.elems {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(Image(e))
	}
	b.WriteByte(']')
	return b.String()
}

// Len returns the number of elements (*L).
func (l *List) Len() int { return len(l.elems) }

// At returns the element at 1-based index i, supporting Icon's negative
// indexing (-1 is the last element). ok is false when i is out of range —
// subscripting out of range fails in Icon rather than erroring.
func (l *List) At(i int) (V, bool) {
	i, ok := l.norm(i)
	if !ok {
		return nil, false
	}
	return l.elems[i], true
}

// SetAt assigns the element at 1-based (possibly negative) index i.
func (l *List) SetAt(i int, v V) bool {
	i, ok := l.norm(i)
	if !ok {
		return false
	}
	l.elems[i] = v
	return true
}

// norm converts a 1-based possibly-negative index to a 0-based offset.
func (l *List) norm(i int) (int, bool) {
	n := len(l.elems)
	if i < 0 {
		i = n + 1 + i
	}
	if i < 1 || i > n {
		return 0, false
	}
	return i - 1, true
}

// Put appends values at the right end (put built-in).
func (l *List) Put(vs ...V) { l.elems = append(l.elems, vs...) }

// Push prepends values at the left end (push built-in). As in Icon, multiple
// arguments are pushed left to right, so the last ends up leftmost.
func (l *List) Push(vs ...V) {
	for _, v := range vs {
		l.elems = append([]V{v}, l.elems...)
	}
}

// Get removes and returns the leftmost element (get/pop built-in).
func (l *List) Get() (V, bool) {
	if len(l.elems) == 0 {
		return nil, false
	}
	v := l.elems[0]
	l.elems = l.elems[1:]
	return v, true
}

// Pull removes and returns the rightmost element (pull built-in).
func (l *List) Pull() (V, bool) {
	if len(l.elems) == 0 {
		return nil, false
	}
	v := l.elems[len(l.elems)-1]
	l.elems = l.elems[:len(l.elems)-1]
	return v, true
}

// Elems returns the backing slice. Callers must treat it as read-only.
func (l *List) Elems() []V { return l.elems }

// Copy returns a one-level copy of the list (copy built-in).
func (l *List) Copy() *List { return NewList(l.elems...) }

// Concat returns the concatenation l ||| m as a new list.
func (l *List) Concat(m *List) *List {
	out := make([]V, 0, len(l.elems)+len(m.elems))
	out = append(out, l.elems...)
	out = append(out, m.elems...)
	return &List{elems: out}
}

// Section returns the sub-list l[i:j] with Icon's 1-based, position-between-
// elements slicing. Positions may be negative (0 means "past the end").
// Fails (ok == false) when positions are out of range.
func (l *List) Section(i, j int) (*List, bool) {
	i, j, ok := SliceRange(i, j, len(l.elems))
	if !ok {
		return nil, false
	}
	return NewList(l.elems[i:j]...), true
}

// SliceRange converts Icon string/list positions (1-based, 0 and negatives
// counting from the right, order-insensitive) into a Go [lo,hi) pair.
func SliceRange(i, j, n int) (lo, hi int, ok bool) {
	conv := func(p int) (int, bool) {
		if p <= 0 {
			p = n + 1 + p
		}
		if p < 1 || p > n+1 {
			return 0, false
		}
		return p - 1, true
	}
	a, ok1 := conv(i)
	b, ok2 := conv(j)
	if !ok1 || !ok2 {
		return 0, 0, false
	}
	if a > b {
		a, b = b, a
	}
	return a, b, true
}
