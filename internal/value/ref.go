package value

// Subscript implements x[i] with Icon's reference semantics: for lists,
// tables and records the result is a reified variable (an updatable
// reference, §5A); for strings and csets it is a plain one-character string
// value. ok is false when subscripting fails (index out of range), which is
// failure, not an error, in Icon.
func Subscript(x, i V) (V, bool) {
	switch c := Deref(x).(type) {
	case *List:
		idx := MustInt(i)
		if _, ok := c.At(idx); !ok {
			return nil, false
		}
		return NewVar(
			func() V { v, _ := c.At(idx); return v },
			func(v V) { c.SetAt(idx, v) },
		), true
	case *Table:
		key := Deref(i)
		return NewVar(
			func() V { return c.Get(key) },
			func(v V) { c.Set(key, v) },
		), true
	case *Record:
		// r[i] by position, or r["field"] by name.
		if s, ok := Deref(i).(String); ok {
			if idx := c.FieldIndex(string(s)); idx >= 0 {
				return fieldVar(c, idx), true
			}
			return nil, false
		}
		idx := MustInt(i)
		if idx < 0 {
			idx = len(c.Values) + 1 + idx
		}
		if idx < 1 || idx > len(c.Values) {
			return nil, false
		}
		return fieldVar(c, idx-1), true
	case String:
		idx := MustInt(i)
		n := len(c)
		if idx < 0 {
			idx = n + 1 + idx
		}
		if idx < 1 || idx > n {
			return nil, false
		}
		return c[idx-1 : idx], true
	default:
		if s, ok := ToString(c); ok {
			return Subscript(s, i)
		}
		Raise(ErrNotList, "subscript: invalid type", c)
	}
	panic("unreachable")
}

func fieldVar(r *Record, idx int) *Var {
	return NewVar(
		func() V { return r.Values[idx] },
		func(v V) { r.Values[idx] = v },
	)
}

// Field implements x.name field access, returning an updatable reference for
// records. ok is false when the field does not exist.
func Field(x V, name string) (V, bool) {
	r, ok := Deref(x).(*Record)
	if !ok {
		return nil, false
	}
	idx := r.FieldIndex(name)
	if idx < 0 {
		return nil, false
	}
	return fieldVar(r, idx), true
}

// Section implements x[i:j], yielding a new string or list. ok is false on
// out-of-range positions (failure).
func Section(x, i, j V) (V, bool) {
	switch c := Deref(x).(type) {
	case *List:
		l, ok := c.Section(MustInt(i), MustInt(j))
		if !ok {
			return nil, false
		}
		return l, true
	case String:
		lo, hi, ok := SliceRange(MustInt(i), MustInt(j), len(c))
		if !ok {
			return nil, false
		}
		return c[lo:hi], true
	default:
		if s, ok := ToString(c); ok {
			return Section(s, i, j)
		}
		Raise(ErrString, "section: invalid type", c)
	}
	panic("unreachable")
}
