package value

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestIntegerSmallBigNormalization(t *testing.T) {
	small := NewBig(big.NewInt(42))
	if small.IsBig() {
		t.Errorf("NewBig(42) should demote to small form")
	}
	huge := NewBig(new(big.Int).Lsh(big.NewInt(1), 100))
	if !huge.IsBig() {
		t.Errorf("2^100 should stay big")
	}
	if _, fits := huge.Int64(); fits {
		t.Errorf("2^100 should not fit int64")
	}
}

func TestIntegerImage(t *testing.T) {
	if got := NewInt(-7).Image(); got != "-7" {
		t.Errorf("Image(-7) = %q", got)
	}
	b := new(big.Int).Lsh(big.NewInt(1), 70)
	if got := NewBig(b).Image(); got != "1180591620717411303424" {
		t.Errorf("Image(2^70) = %q", got)
	}
}

func TestRealImage(t *testing.T) {
	cases := map[Real]string{
		Real(1):    "1.0",
		Real(2.5):  "2.5",
		Real(1e20): "1e+20",
	}
	for in, want := range cases {
		if got := in.Image(); got != want {
			t.Errorf("Image(%v) = %q, want %q", float64(in), got, want)
		}
	}
}

func TestStringImageEscapes(t *testing.T) {
	if got := String("a\"b\\c\nd").Image(); got != `"a\"b\\c\nd"` {
		t.Errorf("string image = %q", got)
	}
}

func TestAddPromotionOnOverflow(t *testing.T) {
	a := NewInt(math.MaxInt64)
	got := Add(a, NewInt(1))
	want := new(big.Int).Add(big.NewInt(math.MaxInt64), big.NewInt(1))
	gi, ok := got.(Integer)
	if !ok || gi.Big().Cmp(want) != 0 {
		t.Fatalf("MaxInt64+1 = %v, want %v", Image(got), want)
	}
	if !gi.IsBig() {
		t.Errorf("overflowed sum should be big")
	}
}

func TestArithmeticPropertiesMatchBig(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		sum := Add(x, y).(Integer)
		diff := Sub(x, y).(Integer)
		prod := Mul(x, y).(Integer)
		bs := new(big.Int).Add(big.NewInt(a), big.NewInt(b))
		bd := new(big.Int).Sub(big.NewInt(a), big.NewInt(b))
		bp := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		return sum.Big().Cmp(bs) == 0 && diff.Big().Cmp(bd) == 0 && prod.Big().Cmp(bp) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivModTruncationAndSigns(t *testing.T) {
	if got := Div(NewInt(-7), NewInt(2)).(Integer); got.small != -3 {
		t.Errorf("-7/2 = %v, want -3 (truncation toward zero)", got)
	}
	if got := Mod(NewInt(-7), NewInt(2)).(Integer); got.small != -1 {
		t.Errorf("-7%%2 = %v, want -1 (sign of dividend)", got)
	}
}

func TestDivideByZeroRaises(t *testing.T) {
	defer func() {
		r := recover()
		re, ok := r.(*RuntimeError)
		if !ok || re.Code != ErrDivideByZero {
			t.Fatalf("expected divide-by-zero runtime error, got %v", r)
		}
	}()
	Div(NewInt(1), NewInt(0))
}

func TestMixedModePromotesToReal(t *testing.T) {
	got := Add(NewInt(1), Real(0.5))
	if r, ok := got.(Real); !ok || r != 1.5 {
		t.Errorf("1 + 0.5 = %v", Image(got))
	}
}

func TestStringCoercionInArithmetic(t *testing.T) {
	got := Mul(String("6"), String("7"))
	if i, ok := got.(Integer); !ok || i.small != 42 {
		t.Errorf(`"6" * "7" = %v, want 42`, Image(got))
	}
	got = Add(String("1.5"), NewInt(1))
	if r, ok := got.(Real); !ok || r != 2.5 {
		t.Errorf(`"1.5" + 1 = %v, want 2.5`, Image(got))
	}
}

func TestPowBigExponent(t *testing.T) {
	got := Pow(NewInt(2), NewInt(70)).(Integer)
	want := new(big.Int).Lsh(big.NewInt(1), 70)
	if got.Big().Cmp(want) != 0 {
		t.Errorf("2^70 = %v", got)
	}
	if r, ok := Pow(Real(4), Real(0.5)).(Real); !ok || r != 2 {
		t.Errorf("4.0^0.5 should be 2.0")
	}
}

func TestNumericComparisonsSucceedWithRightOperand(t *testing.T) {
	v, ok := NumLt(NewInt(1), NewInt(2))
	if !ok || v.(Integer).small != 2 {
		t.Errorf("1 < 2 should succeed producing 2, got %v %v", v, ok)
	}
	if _, ok := NumLt(NewInt(2), NewInt(1)); ok {
		t.Errorf("2 < 1 should fail")
	}
	// String operand coerces numerically for = (numeric equality).
	v, ok = NumEq(String("3"), NewInt(3))
	if !ok || v.(Integer).small != 3 {
		t.Errorf(`"3" = 3 should succeed with 3`)
	}
}

func TestStringComparisons(t *testing.T) {
	if v, ok := StrLt(String("abc"), String("abd")); !ok || v.(String) != "abd" {
		t.Errorf(`"abc" << "abd" should succeed with "abd"`)
	}
	if _, ok := StrEq(String("a"), String("b")); ok {
		t.Errorf(`"a" == "b" should fail`)
	}
	// Numbers coerce to strings for string comparison.
	if v, ok := StrEq(NewInt(12), String("12")); !ok || v.(String) != "12" {
		t.Errorf(`12 == "12" should succeed`)
	}
}

func TestSameIdentityVsContent(t *testing.T) {
	l1 := NewList(NewInt(1))
	l2 := NewList(NewInt(1))
	if _, ok := Same(l1, l2); ok {
		t.Errorf("distinct lists must not be ===")
	}
	if _, ok := Same(l1, l1); !ok {
		t.Errorf("a list must be === itself")
	}
	if _, ok := Same(String("x"), String("x")); !ok {
		t.Errorf("equal strings must be ===")
	}
	if _, ok := Same(NewInt(1), Real(1)); ok {
		t.Errorf("1 === 1.0 must fail (different types)")
	}
}

func TestCoercions(t *testing.T) {
	if i, ok := ToInteger(String(" 16r1f ")); !ok || i.small != 31 {
		t.Errorf("radix literal 16r1f = %v, %v", i, ok)
	}
	if i, ok := ToInteger(Real(3.0)); !ok || i.small != 3 {
		t.Errorf("integer(3.0) = %v, %v", i, ok)
	}
	if _, ok := ToInteger(Real(3.5)); ok {
		t.Errorf("integer(3.5) must fail")
	}
	if n, ok := ToNumber(String("2.5")); !ok {
		t.Errorf("numeric(\"2.5\") failed")
	} else if r, isReal := n.(Real); !isReal || r != 2.5 {
		t.Errorf("numeric(\"2.5\") = %v, want real 2.5", Image(n))
	}
	if s, ok := ToString(NewInt(42)); !ok || s != "42" {
		t.Errorf("string(42) = %q", s)
	}
	if _, ok := ToNumber(NewList()); ok {
		t.Errorf("numeric([]) must fail")
	}
}

func TestListOperations(t *testing.T) {
	l := NewList(NewInt(1), NewInt(2), NewInt(3))
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	if v, ok := l.At(-1); !ok || v.(Integer).small != 3 {
		t.Errorf("l[-1] = %v", v)
	}
	if _, ok := l.At(4); ok {
		t.Errorf("l[4] must fail")
	}
	l.Put(NewInt(4))
	l.Push(NewInt(0))
	if got := l.Image(); got != "[0,1,2,3,4]" {
		t.Errorf("after put/push: %s", got)
	}
	v, _ := l.Get()
	if v.(Integer).small != 0 {
		t.Errorf("get = %v", v)
	}
	v, _ = l.Pull()
	if v.(Integer).small != 4 {
		t.Errorf("pull = %v", v)
	}
	sec, ok := l.Section(1, 3)
	if !ok || sec.Image() != "[1,2]" {
		t.Errorf("section(1,3) = %v %v", sec, ok)
	}
	// Order-insensitive positions.
	sec2, _ := l.Section(3, 1)
	if sec2.Image() != sec.Image() {
		t.Errorf("section positions should commute")
	}
}

func TestListSizeConstructor(t *testing.T) {
	l := NewListSize(3, NewInt(9))
	if l.Image() != "[9,9,9]" {
		t.Errorf("list(3,9) = %s", l.Image())
	}
	if NewListSize(-1, NullV).Len() != 0 {
		t.Errorf("negative size should clamp to zero")
	}
}

func TestTableDefaultAndKeys(t *testing.T) {
	tb := NewTable(NewInt(0))
	if v := tb.Get(String("missing")); v.(Integer).small != 0 {
		t.Errorf("default = %v", v)
	}
	tb.Set(String("b"), NewInt(2))
	tb.Set(String("a"), NewInt(1))
	tb.Set(NewInt(10), NewInt(3))
	keys := tb.Keys()
	if len(keys) != 3 {
		t.Fatalf("keys = %v", keys)
	}
	// Canonical order: numbers before strings.
	if keys[0].(Integer).small != 10 || keys[1].(String) != "a" {
		t.Errorf("key order = %v", keys)
	}
	tb.Delete(String("a"))
	if tb.Has(String("a")) {
		t.Errorf("delete failed")
	}
	// Numeric keys unify across small/equal representations.
	tb.Set(NewInt(10), NewInt(99))
	if tb.Len() != 2 {
		t.Errorf("re-set of same key grew the table: %d", tb.Len())
	}
}

func TestSetMembership(t *testing.T) {
	s := NewSet(NewInt(1), String("x"), NewInt(1))
	if s.Len() != 2 {
		t.Errorf("duplicate insert should not grow set: %d", s.Len())
	}
	if !s.Has(NewInt(1)) || s.Has(NewInt(2)) {
		t.Errorf("membership wrong")
	}
}

func TestSetOps(t *testing.T) {
	a := NewSet(NewInt(1), NewInt(2))
	b := NewSet(NewInt(2), NewInt(3))
	if u := Union(a, b).(*Set); u.Len() != 3 {
		t.Errorf("union size = %d", u.Len())
	}
	if i := Intersection(a, b).(*Set); i.Len() != 1 || !i.Has(NewInt(2)) {
		t.Errorf("intersection wrong")
	}
	if d := Difference(a, b).(*Set); d.Len() != 1 || !d.Has(NewInt(1)) {
		t.Errorf("difference wrong")
	}
}

func TestCsetOps(t *testing.T) {
	c := NewCset("bca")
	if c.Members() != "abc" {
		t.Errorf("members = %q", c.Members())
	}
	d := NewCset("cd")
	if got := MustCset(Union(c, d)).Members(); got != "abcd" {
		t.Errorf("union = %q", got)
	}
	if got := MustCset(Intersection(c, d)).Members(); got != "c" {
		t.Errorf("intersect = %q", got)
	}
	if got := MustCset(Difference(c, d)).Members(); got != "ab" {
		t.Errorf("diff = %q", got)
	}
	comp := Complement(NewCset("")).(*Cset)
	if comp.Len() != 256 {
		t.Errorf("complement of empty = %d", comp.Len())
	}
}

func TestRecordFields(t *testing.T) {
	r := NewRecord("point", []string{"x", "y"}, []V{NewInt(1)})
	if v, _ := r.GetField("y"); !IsNull(v) {
		t.Errorf("missing field init should be null")
	}
	if !r.SetField("y", NewInt(5)) {
		t.Fatalf("SetField failed")
	}
	if v, _ := r.GetField("y"); v.(Integer).small != 5 {
		t.Errorf("y = %v", v)
	}
	if r.Type() != "record point" {
		t.Errorf("type = %q", r.Type())
	}
}

func TestSubscriptReferenceSemantics(t *testing.T) {
	l := NewList(NewInt(1), NewInt(2))
	ref, ok := Subscript(l, NewInt(2))
	if !ok {
		t.Fatalf("subscript failed")
	}
	ref.(*Var).Set(NewInt(99))
	if v, _ := l.At(2); v.(Integer).small != 99 {
		t.Errorf("assignment through reference did not stick: %v", l.Image())
	}
	if _, ok := Subscript(l, NewInt(5)); ok {
		t.Errorf("out of range subscript must fail, not error")
	}
	// Table subscript creates on assignment.
	tb := NewTable(NullV)
	tref, _ := Subscript(tb, String("k"))
	tref.(*Var).Set(NewInt(7))
	if tb.Get(String("k")).(Integer).small != 7 {
		t.Errorf("table subscript assignment failed")
	}
	// String subscript yields a one-character string value.
	sv, ok := Subscript(String("hello"), NewInt(-1))
	if !ok || sv.(String) != "o" {
		t.Errorf(`"hello"[-1] = %v`, sv)
	}
}

func TestSectionValues(t *testing.T) {
	v, ok := Section(String("hello"), NewInt(2), NewInt(4))
	if !ok || v.(String) != "el" {
		t.Errorf("hello[2:4] = %v", v)
	}
	v, ok = Section(String("hello"), NewInt(0), NewInt(-2))
	if !ok || v.(String) != "lo" {
		t.Errorf("hello[0:-2] = %v (0 is past-the-end, -2 is position 4)", v)
	}
	if _, ok := Section(String("hi"), NewInt(1), NewInt(9)); ok {
		t.Errorf("out-of-range section must fail")
	}
}

func TestSizeOperator(t *testing.T) {
	cases := []struct {
		v    V
		want int64
	}{
		{String("abc"), 3},
		{NewList(NewInt(1)), 1},
		{NewTable(NullV), 0},
		{NewSet(NewInt(1), NewInt(2)), 2},
		{NewCset("xyz"), 3},
		{NewInt(1234), 4}, // *i is size of string conversion
	}
	for _, c := range cases {
		if got := Size(c.v).(Integer).small; got != c.want {
			t.Errorf("Size(%s) = %d, want %d", Image(c.v), got, c.want)
		}
	}
}

func TestVarDeref(t *testing.T) {
	cell := NewCell(NewInt(5))
	outer := NewVar(func() V { return cell }, func(V) {})
	if got := Deref(outer).(Integer).small; got != 5 {
		t.Errorf("nested deref = %v", got)
	}
	cell.Set(NewInt(6))
	if got := Deref(cell).(Integer).small; got != 6 {
		t.Errorf("cell set = %v", got)
	}
}

func TestProcCallPadsArguments(t *testing.T) {
	var gotLen int
	var gotNull bool
	p := NewProc("f", 3, func(args ...V) Gen {
		gotLen = len(args)
		gotNull = IsNull(args[2])
		return nil
	})
	p.Call(NewInt(1))
	if gotLen != 3 || !gotNull {
		t.Errorf("variadic padding: len=%d null=%v", gotLen, gotNull)
	}
}

func TestLessCanonicalOrder(t *testing.T) {
	if !Less(NullV, NewInt(0)) {
		t.Errorf("null sorts first")
	}
	if !Less(NewInt(2), Real(2.5)) {
		t.Errorf("numeric cross-type compare")
	}
	if !Less(Real(9), String("1")) {
		t.Errorf("numbers sort before strings")
	}
	if Less(String("b"), String("a")) {
		t.Errorf("string order")
	}
}

func TestSliceRangeProperties(t *testing.T) {
	f := func(i, j int8, n uint8) bool {
		lo, hi, ok := SliceRange(int(i), int(j), int(n))
		if !ok {
			return true
		}
		return lo >= 0 && lo <= hi && hi <= int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStrAndImageHelpers(t *testing.T) {
	if Str(String("x")) != "x" {
		t.Errorf("Str of string unquoted")
	}
	if Str(NullV) != "" {
		t.Errorf("Str of null is empty")
	}
	if Image(nil) != "&null" || TypeOf(nil) != "null" {
		t.Errorf("nil tolerance")
	}
}
