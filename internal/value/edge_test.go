package value

import (
	"math"
	"math/big"
	"strings"
	"testing"
)

// mustRaise asserts that f raises an Icon runtime error.
func mustRaise(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*RuntimeError); !ok {
				t.Fatalf("%s: non-icon panic %v", what, r)
			}
			return
		}
		t.Fatalf("%s: expected runtime error", what)
	}()
	f()
}

func TestMustCoercionsRaise(t *testing.T) {
	mustRaise(t, "MustInteger", func() { MustInteger(NewList()) })
	mustRaise(t, "MustNumber", func() { MustNumber(String("abc")) })
	mustRaise(t, "MustString", func() { MustString(NewList()) })
	mustRaise(t, "MustCset", func() { MustCset(NewList()) })
	mustRaise(t, "MustInt overflow", func() {
		MustInt(NewBig(new(big.Int).Lsh(big.NewInt(1), 80)))
	})
}

func TestModAndPowEdgeCases(t *testing.T) {
	mustRaise(t, "mod zero", func() { Mod(NewInt(5), NewInt(0)) })
	if got := Mod(Real(7.5), NewInt(2)).(Real); got != 1.5 {
		t.Fatalf("7.5 %% 2 = %v", got)
	}
	mustRaise(t, "huge exponent", func() { Pow(NewInt(2), NewInt(1<<21)) })
	// Negative integer exponent falls back to real arithmetic.
	if got := Pow(NewInt(2), NewInt(-1)).(Real); got != 0.5 {
		t.Fatalf("2^-1 = %v", got)
	}
}

func TestNegBoundary(t *testing.T) {
	// MinInt64 negation promotes to big.
	n := Neg(NewInt(math.MinInt64)).(Integer)
	if !n.IsBig() {
		t.Fatal("-(MinInt64) should be big")
	}
	if got := Neg(Real(-2.5)).(Real); got != 2.5 {
		t.Fatal("neg real")
	}
	if got := Pos(String("5")).(Integer); got.small != 5 {
		t.Fatal("unary + coerces")
	}
}

func TestBigPathsInComparisonAndArith(t *testing.T) {
	big1 := NewBig(new(big.Int).Lsh(big.NewInt(1), 70))
	big2 := NewBig(new(big.Int).Lsh(big.NewInt(1), 71))
	if NumCompare(big1, big2) >= 0 {
		t.Fatal("big compare")
	}
	if NumCompare(big1, big1) != 0 {
		t.Fatal("big equal")
	}
	sum := Add(big1, NewInt(1)).(Integer)
	if !sum.IsBig() {
		t.Fatal("big+small stays big")
	}
	d := Div(big2, big1).(Integer)
	if got, _ := d.Int64(); got != 2 {
		t.Fatalf("big div = %v", d)
	}
	m := Mod(big2, big1).(Integer)
	if m.Sign() != 0 {
		t.Fatalf("big mod = %v", m)
	}
	if got := Mul(big1, NewInt(0)).(Integer); got.Sign() != 0 {
		t.Fatal("big mul zero")
	}
	if got := Sub(big1, big1).(Integer); got.Sign() != 0 {
		t.Fatal("big sub")
	}
}

func TestEquivCrossTypesAndIdentity(t *testing.T) {
	if Equiv(NewInt(1), String("1")) {
		t.Fatal("1 === \"1\" must be false (type differs)")
	}
	c1, c2 := NewCset("ab"), NewCset("ba")
	if !Equiv(c1, c2) {
		t.Fatal("csets compare by content")
	}
	t1, t2 := NewTable(NullV), NewTable(NullV)
	if Equiv(t1, t2) {
		t.Fatal("tables compare by identity")
	}
	if !Equiv(t1, t1) {
		t.Fatal("table self-identity")
	}
	p := NewProc("f", 0, nil)
	if !Equiv(p, p) || Equiv(p, NewProc("f", 0, nil)) {
		t.Fatal("procedures by identity")
	}
}

func TestImagesOfStructuredValues(t *testing.T) {
	tb := NewTable(NullV)
	tb.Set(NewInt(1), NewInt(2))
	if tb.Image() != "table(1)" {
		t.Fatalf("table image = %s", tb.Image())
	}
	s := NewSet(NewInt(1))
	if s.Image() != "set(1)" {
		t.Fatalf("set image = %s", s.Image())
	}
	r := NewRecord("p", []string{"x"}, []V{NewInt(1)})
	if r.Image() != "record p(1)" {
		t.Fatalf("record image = %s", r.Image())
	}
	p := NewProc("f", 2, nil)
	if p.Image() != "procedure f" {
		t.Fatalf("proc image = %s", p.Image())
	}
	n := NewNative("g", nil)
	if n.Image() != "function g" || n.Type() != "procedure" {
		t.Fatalf("native image = %s", n.Image())
	}
	c := NewCset("a'b")
	// Members are sorted: the quote (0x27) precedes the letters.
	if c.Image() != `'\'ab'` {
		t.Fatalf("cset image = %s", c.Image())
	}
	v := NewCell(NewInt(3))
	if v.Image() != "variable(3)" || v.Type() != "variable" {
		t.Fatalf("var image = %s", v.Image())
	}
}

func TestSetAtAndNegativeIndexing(t *testing.T) {
	l := NewList(NewInt(1), NewInt(2), NewInt(3))
	if !l.SetAt(-1, NewInt(9)) {
		t.Fatal("SetAt -1")
	}
	if v, _ := l.At(3); Image(v) != "9" {
		t.Fatal("negative SetAt landed wrong")
	}
	if l.SetAt(0, NullV) || l.SetAt(4, NullV) {
		t.Fatal("out-of-range SetAt must fail")
	}
}

func TestTableCopyIndependence(t *testing.T) {
	tb := NewTable(NewInt(0))
	tb.Set(String("a"), NewInt(1))
	cp := tb.Copy()
	cp.Set(String("b"), NewInt(2))
	if tb.Has(String("b")) {
		t.Fatal("copy shares storage")
	}
	if Image(cp.Default()) != "0" {
		t.Fatal("copy default")
	}
}

func TestSubscriptRecordByNameAndPosition(t *testing.T) {
	r := NewRecord("p", []string{"x", "y"}, []V{NewInt(1), NewInt(2)})
	v, ok := Subscript(r, String("y"))
	if !ok || Image(Deref(v)) != "2" {
		t.Fatal("record by name")
	}
	v, ok = Subscript(r, NewInt(-1))
	if !ok || Image(Deref(v)) != "2" {
		t.Fatal("record by negative position")
	}
	if _, ok := Subscript(r, String("z")); ok {
		t.Fatal("missing field subscript fails")
	}
	if _, ok := Subscript(r, NewInt(3)); ok {
		t.Fatal("out-of-range record subscript fails")
	}
	// Field() helper.
	if _, ok := Field(r, "x"); !ok {
		t.Fatal("Field x")
	}
	if _, ok := Field(NewInt(1), "x"); ok {
		t.Fatal("Field on non-record fails")
	}
}

func TestSubscriptNumericCoercesToString(t *testing.T) {
	v, ok := Subscript(NewInt(123), NewInt(2))
	if !ok || v.(String) != "2" {
		t.Fatalf("123[2] = %v", v)
	}
	mustRaise(t, "subscript table key on list index type", func() {
		Subscript(NewList(), String("no"))
	})
}

func TestSectionOnListAndCoercion(t *testing.T) {
	l := NewList(NewInt(1), NewInt(2), NewInt(3))
	v, ok := Section(l, NewInt(2), NewInt(0))
	if !ok || v.(*List).Image() != "[2,3]" {
		t.Fatalf("list section = %v", v)
	}
	v, ok = Section(NewInt(12345), NewInt(1), NewInt(3))
	if !ok || v.(String) != "12" {
		t.Fatalf("numeric section = %v", v)
	}
	mustRaise(t, "section of list-free type", func() { Section(NewTable(NullV), NewInt(1), NewInt(2)) })
}

func TestStrHelper(t *testing.T) {
	if Str(NewInt(5)) != "5" || Str(Real(1)) != "1.0" {
		t.Fatal("Str numeric")
	}
	if Str(NewList(NewInt(1))) != "[1]" {
		t.Fatal("Str structure falls back to image")
	}
}

func TestToNumberPrefersIntegerForIntegralStrings(t *testing.T) {
	n, ok := ToNumber(String("16r10"))
	if !ok {
		t.Fatal("radix numeric")
	}
	if i, isInt := n.(Integer); !isInt || i.small != 16 {
		t.Fatalf("16r10 = %v", Image(n))
	}
	if _, ok := ToNumber(String("")); ok {
		t.Fatal("empty string not numeric")
	}
	n, _ = ToNumber(String("1e2"))
	if _, isReal := n.(Real); !isReal {
		t.Fatalf("1e2 should be real, got %s", Image(n))
	}
}

func TestToIntegerRadixErrors(t *testing.T) {
	if _, ok := ToInteger(String("99rZZ")); ok {
		t.Fatal("radix 99 invalid")
	}
	if _, ok := ToInteger(String("2r102")); ok {
		t.Fatal("digit out of radix")
	}
	if i, ok := ToInteger(String("2r101")); !ok || i.small != 5 {
		t.Fatal("binary radix")
	}
	// Real-typed strings that are integral.
	if i, ok := ToInteger(String("3e2")); !ok || i.small != 300 {
		t.Fatalf("3e2 as integer = %v %v", i, ok)
	}
}

func TestUnionIntersectionDifferenceErrors(t *testing.T) {
	mustRaise(t, "set ++ cset", func() { Union(NewSet(), NewList()) })
	mustRaise(t, "set ** list", func() { Intersection(NewSet(), NewList()) })
	mustRaise(t, "set -- list", func() { Difference(NewSet(), NewList()) })
	mustRaise(t, "list concat type", func() { ListConcat(NewList(), NewInt(1)) })
	mustRaise(t, "concat type", func() { Concat(NewList(), String("x")) })
}

func TestRealImageSpecials(t *testing.T) {
	if !strings.Contains(Real(math.Inf(1)).Image(), "Inf") {
		t.Fatal("inf image")
	}
	if got := Real(-0.0).Image(); got != "-0.0" && got != "0.0" {
		t.Fatalf("-0.0 image = %s", got)
	}
}

func TestSizedInterfaceThroughSize(t *testing.T) {
	if got := Size(sizedStub{}); Image(got) != "7" {
		t.Fatalf("Sized = %s", Image(got))
	}
	mustRaise(t, "size of proc", func() { Size(NewProc("f", 0, nil)) })
}

type sizedStub struct{}

func (sizedStub) Type() string  { return "stub" }
func (sizedStub) Image() string { return "stub" }
func (sizedStub) Size() int     { return 7 }

func TestListSectionOutOfRange(t *testing.T) {
	l := NewList(NewInt(1))
	if _, ok := l.Section(1, 9); ok {
		t.Fatal("section out of range must fail")
	}
}

func TestDerefNilAndVarChains(t *testing.T) {
	if !IsNull(Deref(nil)) {
		t.Fatal("deref nil")
	}
	var v V
	if !IsNull(v) == false && v != nil {
		t.Fatal("nil interface is null")
	}
}
