// Package value implements the Unicon value system used by the goal-directed
// iterator kernel: integers with transparent big-integer promotion, reals,
// strings, csets, lists, tables, sets, records, procedures and the null
// value, together with Icon's coercion rules and operator semantics.
//
// A value is anything implementing V. Failure is deliberately NOT a value:
// the iterator protocol (see Gen) signals failure out of band, exactly as the
// paper's IconIterator kernel terminates iteration when next() fails.
package value

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"
)

// V is a Unicon value. Every value reports its Icon type name (as the type()
// built-in would) and an Image, the machine-readable textual form produced by
// the image() built-in.
type V interface {
	// Type returns the Icon type name: "null", "integer", "real", "string",
	// "cset", "list", "table", "set", "procedure", "record", "co-expression".
	Type() string
	// Image returns the image() form of the value, e.g. `"abc"` for strings.
	Image() string
}

// Gen is the suspendable, failure-driven iterator protocol at the heart of
// goal-directed evaluation. Next produces the next value of the result
// sequence, or reports failure with ok == false. Following the paper (§5B),
// after failure an iterator is restarted by the following Next call; Restart
// forces that reset eagerly (the ^ operator of the calculus).
type Gen interface {
	Next() (V, bool)
	Restart()
}

// Null is the unique null value, &null.
type Null struct{}

// NullV is the canonical null value.
var NullV = Null{}

func (Null) Type() string  { return "null" }
func (Null) Image() string { return "&null" }

// IsNull reports whether v is the null value (or a nil interface).
func IsNull(v V) bool {
	if v == nil {
		return true
	}
	_, ok := v.(Null)
	return ok
}

// Integer is a Unicon integer. Values that fit in an int64 are stored
// unboxed; larger magnitudes are transparently promoted to *big.Int, giving
// the arbitrary-precision arithmetic that is implicit in Unicon (§VII).
type Integer struct {
	small int64
	big   *big.Int // nil when the value fits in small
}

// NewInt returns the integer value i.
func NewInt(i int64) Integer { return Integer{small: i} }

// Small integers are interned pre-boxed: converting an Integer to the V
// interface normally heap-allocates the 16-byte struct, which is the single
// allocation on kernel hot yield paths (range generators, arithmetic fast
// paths, sizes). The table spans the values such paths overwhelmingly
// produce.
const (
	internLo = -256
	internHi = 1024
)

var internedInts [internHi - internLo + 1]V

func init() {
	for i := range internedInts {
		internedInts[i] = Integer{small: int64(internLo + i)}
	}
}

// IntV returns the integer value i boxed as a V, interned for small i so
// that hot yields do not allocate. Integers carry no identity in Icon
// (=== compares by value), so sharing the boxed representation is
// unobservable.
func IntV(i int64) V {
	if i >= internLo && i <= internHi {
		return internedInts[i-internLo]
	}
	return Integer{small: i}
}

// BoxInt boxes an Integer as a V, returning the interned box when the value
// is small. Use on paths that already hold an Integer (e.g. coercions).
func BoxInt(n Integer) V {
	if n.big == nil && n.small >= internLo && n.small <= internHi {
		return internedInts[n.small-internLo]
	}
	return n
}

// BigV returns b boxed as a V, demoting to the unboxed (and possibly
// interned) small form when b fits in an int64. The caller must not mutate
// b afterwards.
func BigV(b *big.Int) V {
	if b.IsInt64() {
		return IntV(b.Int64())
	}
	return Integer{big: b}
}

// NewBig returns an integer value for b, demoting to the unboxed form when b
// fits in an int64. The caller must not mutate b afterwards.
func NewBig(b *big.Int) Integer {
	if b.IsInt64() {
		return Integer{small: b.Int64()}
	}
	return Integer{big: b}
}

// IsBig reports whether the integer is stored in promoted big form.
func (i Integer) IsBig() bool { return i.big != nil }

// Int64 returns the value as an int64 and whether it fits.
func (i Integer) Int64() (int64, bool) {
	if i.big != nil {
		if i.big.IsInt64() {
			return i.big.Int64(), true
		}
		return 0, false
	}
	return i.small, true
}

// Big returns the value as a big.Int. The result must not be mutated.
func (i Integer) Big() *big.Int {
	if i.big != nil {
		return i.big
	}
	return big.NewInt(i.small)
}

// Sign returns -1, 0 or +1 according to the sign of i.
func (i Integer) Sign() int {
	if i.big != nil {
		return i.big.Sign()
	}
	switch {
	case i.small < 0:
		return -1
	case i.small > 0:
		return 1
	}
	return 0
}

func (i Integer) Type() string { return "integer" }
func (i Integer) Image() string {
	if i.big != nil {
		return i.big.String()
	}
	return strconv.FormatInt(i.small, 10)
}

// Real is a Unicon real (float64).
type Real float64

func (Real) Type() string { return "real" }
func (r Real) Image() string {
	s := strconv.FormatFloat(float64(r), 'g', -1, 64)
	// Icon prints reals with a decimal point or exponent.
	if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
		s += ".0"
	}
	return s
}

// String is a Unicon string.
type String string

func (String) Type() string { return "string" }
func (s String) Image() string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range string(s) {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Image returns the image of any value, tolerating nil.
func Image(v V) string {
	if v == nil {
		return "&null"
	}
	return v.Image()
}

// TypeOf returns the Icon type name of v, tolerating nil.
func TypeOf(v V) string {
	if v == nil {
		return "null"
	}
	return v.Type()
}

// Str returns the "written" form of v: like Image but without quoting
// strings, matching what write() prints.
func Str(v V) string {
	if v == nil {
		return ""
	}
	switch x := v.(type) {
	case String:
		return string(x)
	case Null:
		return ""
	default:
		return v.Image()
	}
}

// GoString makes values print usefully under %v in tests.
func (i Integer) String() string { return i.Image() }

func (r Real) String() string { return r.Image() }

var _ = fmt.Stringer(Integer{})
