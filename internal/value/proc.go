package value

import "fmt"

// Proc is a procedure value: a generator function. Invoking it returns a Gen
// producing the function's result sequence; a function that "returns" is
// simply a generator producing at most one result. Unicon methods are
// variadic — missing arguments arrive as null, extras are dropped or kept per
// the function's own logic — mirroring the paper's VariadicFunction exposure.
type Proc struct {
	Name  string
	Arity int // declared parameter count; -1 means fully variadic
	Fn    func(args ...V) Gen
}

// NewProc wraps fn as a procedure value.
func NewProc(name string, arity int, fn func(args ...V) Gen) *Proc {
	return &Proc{Name: name, Arity: arity, Fn: fn}
}

func (p *Proc) Type() string  { return "procedure" }
func (p *Proc) Image() string { return fmt.Sprintf("procedure %s", p.Name) }

// Call invokes the procedure, padding missing arguments with null when the
// arity is known (Unicon's variadic convention).
func (p *Proc) Call(args ...V) Gen {
	if p.Arity >= 0 && len(args) < p.Arity {
		padded := make([]V, p.Arity)
		copy(padded, args)
		for i := len(args); i < p.Arity; i++ {
			padded[i] = NullV
		}
		args = padded
	}
	return p.Fn(args...)
}

// Native is a host-language (Go) function exposed to embedded code, the
// analogue of the paper's `::` native invocation. A native call produces a
// plain result which the kernel promotes to a singleton iterator (§5A:
// "for plain Java methods, invocation just promotes the result to a
// singleton iterator"). A returned error is raised as a runtime error; the
// (nil, nil) pair means native failure.
type Native struct {
	Name string
	Fn   func(args ...V) (V, error)
}

// NewNative wraps fn as a native function value.
func NewNative(name string, fn func(args ...V) (V, error)) *Native {
	return &Native{Name: name, Fn: fn}
}

func (n *Native) Type() string  { return "procedure" }
func (n *Native) Image() string { return fmt.Sprintf("function %s", n.Name) }

// Var is a reified variable — the paper's IconVar — a first-class updatable
// reference with get and set closures. Lifting a variable "turns it into a
// property with get and set methods" (§5A) so it can be passed as an
// updatable reference and participate in reversible assignment.
//
// Free-standing cells (NewCell) store their value directly instead of
// through a closure pair: temporaries are minted per line and per chunk on
// the data-parallel hot paths, and the direct form is one allocation where
// the closure pair is three.
type Var struct {
	GetFn func() V
	SetFn func(V)
	cell  V // direct storage when GetFn == nil
}

// NewVar returns a reified variable over the given closures.
func NewVar(get func() V, set func(V)) *Var { return &Var{GetFn: get, SetFn: set} }

// NewCell returns a free-standing variable holding v (a method local or
// temporary, the paper's IconTmp).
func NewCell(v V) *Var { return &Var{cell: v} }

// Get dereferences the variable.
func (v *Var) Get() V {
	if v.GetFn == nil {
		if v.cell == nil {
			return NullV
		}
		return v.cell
	}
	x := v.GetFn()
	if x == nil {
		return NullV
	}
	return x
}

// Set assigns through the variable.
func (v *Var) Set(x V) {
	if v.GetFn == nil {
		v.cell = x
		return
	}
	v.SetFn(x)
}

func (v *Var) Type() string  { return "variable" }
func (v *Var) Image() string { return "variable(" + Image(v.Get()) + ")" }

// Deref returns the value of v, dereferencing reified variables. All kernel
// operators dereference their operands; only assignment and the lifting
// transform treat Vars specially.
func Deref(v V) V {
	for {
		r, ok := v.(*Var)
		if !ok {
			if v == nil {
				return NullV
			}
			return v
		}
		v = r.Get()
	}
}
