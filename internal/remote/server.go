package remote

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/analyze"
	"junicon/internal/core"
	"junicon/internal/interp"
	"junicon/internal/parser"
	"junicon/internal/value"
	"junicon/internal/wire"
)

// Server defaults.
const (
	// DefaultMaxConns bounds concurrently served streams (one per
	// connection); excess connections are refused with an ERR frame.
	DefaultMaxConns = 64
	// DefaultIdleTimeout is how long the server waits for any client frame
	// (credits, pings, cancel) before declaring the client lost. Client
	// heartbeats arrive every DefaultHeartbeat, so a healthy stream never
	// approaches it.
	DefaultIdleTimeout = 30 * time.Second
)

// A Generator constructs the generator a named OPEN serves. It is called
// once per stream with the decoded (and dereferenced) argument vector; the
// returned generator is iterated to failure on the stream's producer
// goroutine. Returning an error rejects the OPEN with an ERR frame.
type Generator func(args []value.V) (core.Gen, error)

// Server serves registered generators — and, when AllowSource is set,
// vetted Junicon source — over the remote-pipe protocol. Every stream gets
// one producer goroutine whose pace is governed entirely by the client's
// credits: the remote pipe's buffer bound throttles this goroutine exactly
// as §3B's bounded queue throttles a local pipe producer.
type Server struct {
	// AllowSource permits OPEN frames carrying Junicon source. Source is
	// gated through the internal/analyze static analyzer: programs with
	// error-level findings are refused before any evaluation.
	AllowSource bool
	// MaxConns bounds concurrent connections; <= 0 selects
	// DefaultMaxConns.
	MaxConns int
	// IdleTimeout bounds the gap between client frames; <= 0 selects
	// DefaultIdleTimeout.
	IdleTimeout time.Duration
	// Logf, when set, receives one line per notable event (stream open,
	// stream end, refusals).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	gens     map[string]Generator
	listener net.Listener
	closed   bool

	conns   atomic.Int64 // active connections (accepted, not yet closed)
	streams atomic.Int64 // active producer goroutines
	served  atomic.Int64 // streams opened over the server's lifetime
	wg      sync.WaitGroup
}

// NewServer returns a server with an empty registry.
func NewServer() *Server { return &Server{gens: make(map[string]Generator)} }

// Register adds (or replaces) a named generator.
func (s *Server) Register(name string, g Generator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gens[name] = g
}

// Names returns the registered generator names, sorted.
func (s *Server) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.gens))
	for n := range s.gens {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookup finds a registered generator.
func (s *Server) lookup(name string) (Generator, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gens[name]
	return g, ok
}

// ActiveConns reports currently accepted connections.
func (s *Server) ActiveConns() int { return int(s.conns.Load()) }

// ActiveStreams reports currently running producer goroutines — the
// server-side per-stream goroutine accounting.
func (s *Server) ActiveStreams() int { return int(s.streams.Load()) }

// Served reports the total number of streams opened.
func (s *Server) Served() int { return int(s.served.Load()) }

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

func (s *Server) maxConns() int {
	if s.MaxConns <= 0 {
		return DefaultMaxConns
	}
	return s.MaxConns
}

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout <= 0 {
		return DefaultIdleTimeout
	}
	return s.IdleTimeout
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine, returning the bound address. It is the convenience entry for
// tests, benchmarks and in-process workers.
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l)
	return l.Addr(), nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until Close. Each connection carries one
// stream.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("remote: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if int(s.conns.Load()) >= s.maxConns() {
			// Refuse politely: drain the OPEN first so the client's write
			// never hits a reset connection, then send ERR. The client
			// surfaces the refusal via Err().
			s.logf("refused %s: connection limit %d", conn.RemoteAddr(), s.maxConns())
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				conn.SetReadDeadline(time.Now().Add(s.idleTimeout()))
				readFrame(conn)
				writeFrame(conn, frameErr, []byte("server at connection limit"))
			}()
			continue
		}
		s.conns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Add(-1)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight streams to finish. Streams
// whose clients are alive keep running until the client closes or cancels;
// callers that need a hard stop close the clients first.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
	return nil
}

// stream is the per-connection credit account shared by the connection
// reader (deposits) and the producer goroutine (withdrawals).
type stream struct {
	mu        sync.Mutex
	cond      sync.Cond
	credits   uint64
	cancelled bool
}

func newStream(initial uint64) *stream {
	st := &stream{credits: initial}
	st.cond.L = &st.mu
	return st
}

// acquire blocks until one credit is available or the stream is cancelled;
// it reports whether a credit was taken.
func (st *stream) acquire() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.credits == 0 && !st.cancelled {
		st.cond.Wait()
	}
	if st.cancelled {
		return false
	}
	st.credits--
	return true
}

func (st *stream) deposit(n uint64) {
	st.mu.Lock()
	st.credits += n
	st.cond.Broadcast()
	st.mu.Unlock()
}

func (st *stream) cancel() {
	st.mu.Lock()
	st.cancelled = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// handleConn runs one stream: OPEN, then produce under credit control
// until EOS/ERR/cancel.
func (s *Server) handleConn(conn net.Conn) {
	idle := s.idleTimeout()
	conn.SetReadDeadline(time.Now().Add(idle))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != frameOpen {
		writeFrame(conn, frameErr, []byte("expected OPEN frame"))
		return
	}
	open, err := parseOpen(payload)
	if err != nil {
		writeFrame(conn, frameErr, []byte(err.Error()))
		return
	}
	gen, err := s.buildGenerator(open)
	if err != nil {
		writeFrame(conn, frameErr, []byte(err.Error()))
		s.logf("refused %s: %v", conn.RemoteAddr(), err)
		return
	}

	st := newStream(open.credit)
	var wmu sync.Mutex // serializes VALUE/EOS/ERR (producer) with PONG (reader)
	s.served.Add(1)
	s.streams.Add(1)
	s.logf("stream open from %s (credit %d)", conn.RemoteAddr(), open.credit)

	// Producer goroutine: iterate the generator to failure, one VALUE per
	// credit. Runtime errors and panics become ERR frames, mirroring
	// pipe.Pipe's producer containment.
	prodDone := make(chan struct{})
	go func() {
		defer s.streams.Add(-1)
		defer close(prodDone)
		sendErr := func(msg string) {
			wmu.Lock()
			writeFrame(conn, frameErr, []byte(msg))
			wmu.Unlock()
		}
		// Contain panics like pipe.start does: an Icon runtime error or a
		// foreign panic in a served generator must not crash the daemon —
		// it becomes an ERR frame, the remote Pipe.Err.
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if re, ok := r.(*value.RuntimeError); ok {
						err = re
					} else {
						err = fmt.Errorf("producer panic: %v", r)
					}
				}
			}()
			for st.acquire() {
				v, ok := gen.Next()
				if !ok {
					wmu.Lock()
					writeFrame(conn, frameEOS, nil)
					wmu.Unlock()
					return
				}
				data, merr := wire.Marshal(value.Deref(v))
				if merr != nil {
					sendErr("encode: " + merr.Error())
					return
				}
				wmu.Lock()
				werr := writeFrame(conn, frameValue, data)
				wmu.Unlock()
				if werr != nil {
					return // connection gone; reader tears down
				}
			}
			return nil
		}()
		if err != nil {
			sendErr(err.Error())
		}
	}()

	// Connection reader: credits, pings, cancel; any read error (including
	// the rolling idle deadline) or protocol violation cancels the stream.
reader:
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		typ, payload, err := readFrame(conn)
		if err != nil {
			break
		}
		switch typ {
		case frameCredit:
			n, err := parseCredit(payload)
			if err != nil {
				break reader
			}
			st.deposit(n)
		case framePing:
			wmu.Lock()
			writeFrame(conn, framePong, nil)
			wmu.Unlock()
		case frameCancel:
			st.cancel()
		default:
			// Protocol violation: drop the stream.
			break reader
		}
	}
	// Connection lost or cancelled: stop the producer (closing the conn
	// unblocks any in-flight write) and wait for it so stream accounting
	// is exact.
	st.cancel()
	conn.Close()
	<-prodDone
	s.logf("stream from %s done", conn.RemoteAddr())
}

// buildGenerator resolves an OPEN request to the generator it serves.
func (s *Server) buildGenerator(open *openReq) (core.Gen, error) {
	args, err := decodeArgs(open.args)
	if err != nil {
		return nil, err
	}
	switch open.mode {
	case openNamed:
		g, ok := s.lookup(open.name)
		if !ok {
			return nil, fmt.Errorf("unknown generator %q (registered: %s)", open.name, strings.Join(s.Names(), ", "))
		}
		return g(args)
	case openSource:
		if !s.AllowSource {
			return nil, fmt.Errorf("source streams are disabled on this server")
		}
		return s.sourceGenerator(open.program, open.expr, args)
	}
	return nil, fmt.Errorf("unknown OPEN mode %d", open.mode)
}

func decodeArgs(data []byte) ([]value.V, error) {
	if len(data) == 0 {
		return nil, nil
	}
	v, err := wire.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("malformed argument list: %w", err)
	}
	l, ok := v.(*value.List)
	if !ok {
		return nil, fmt.Errorf("argument payload is %s, want list", value.TypeOf(v))
	}
	return l.Elems(), nil
}

// sourceGenerator vets, loads and evaluates a source stream. The analyzer
// gate refuses error-level findings exactly as the translator does
// (migrating statically wrong code across the network is as worthless as
// compiling it); warnings are tolerated, as on the interpreter paths.
func (s *Server) sourceGenerator(program, expr string, args []value.V) (core.Gen, error) {
	known := func(name string) bool { return name == "args" }
	if program != "" {
		prog, err := parser.ParseProgram(program)
		if err != nil {
			return nil, fmt.Errorf("parse program: %w", err)
		}
		if diags := analyze.Program(prog, analyze.Options{Known: known}); analyze.HasErrors(diags) {
			return nil, fmt.Errorf("vet rejected program: %s", diagErrors(diags))
		}
	}
	e, err := parser.ParseExpression(expr)
	if err != nil {
		return nil, fmt.Errorf("parse expression: %w", err)
	}
	// The expression may use names the program defines; vet it with those
	// known. Re-parsing the program for its globals is cheaper than
	// plumbing a symbol table out of the analyzer.
	knownExpr := known
	if program != "" {
		in := interp.New(interp.WithOutput(io.Discard))
		if err := in.LoadProgram(program); err != nil {
			return nil, fmt.Errorf("load program: %w", err)
		}
		knownExpr = func(name string) bool {
			if name == "args" {
				return true
			}
			_, ok := in.Global(name)
			return ok
		}
		if diags := analyze.Expr(e, analyze.Options{Known: knownExpr}); analyze.HasErrors(diags) {
			return nil, fmt.Errorf("vet rejected expression: %s", diagErrors(diags))
		}
		in.Define("args", value.NewList(args...))
		return in.EvalGen(expr)
	}
	if diags := analyze.Expr(e, analyze.Options{Known: knownExpr}); analyze.HasErrors(diags) {
		return nil, fmt.Errorf("vet rejected expression: %s", diagErrors(diags))
	}
	in := interp.New(interp.WithOutput(io.Discard))
	in.Define("args", value.NewList(args...))
	return in.EvalGen(expr)
}

func diagErrors(diags []analyze.Diag) string {
	var msgs []string
	for _, d := range diags {
		if d.Severity == analyze.Error {
			msgs = append(msgs, d.String())
		}
	}
	return strings.Join(msgs, "; ")
}
