package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/analyze"
	"junicon/internal/checkpoint"
	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/interp"
	"junicon/internal/parser"
	"junicon/internal/telemetry"
	"junicon/internal/value"
	"junicon/internal/wire"
)

// Server-side stream telemetry. Credit stalls are the headline metric:
// a stall is the server's producer goroutine blocked because the client
// has consumed its whole credit window — the remote form of §3B's
// bounded queue throttling the producer, and the first thing to look at
// when a distributed pipeline underperforms.
var (
	gServerConns   = telemetry.NewGauge("remote.server.active_conns")
	gServerStreams = telemetry.NewGauge("remote.server.active_streams")
	cServerStreams = telemetry.NewCounter("remote.server.streams_total")
	cServerRefused = telemetry.NewCounter("remote.server.refused")
	cServerValues  = telemetry.NewCounter("remote.server.values")
	cCreditStalls  = telemetry.NewCounter("remote.server.credit_stalls")
	cCreditStallNs = telemetry.NewCounter("remote.server.credit_stall_ns")
	hServerFlush   = telemetry.NewHistogram("remote.server.flush_size")
)

// Server defaults.
const (
	// DefaultMaxConns bounds concurrently served streams (one per
	// connection); excess connections are refused with an ERR frame.
	DefaultMaxConns = 64
	// DefaultIdleTimeout is how long the server waits for any client frame
	// (credits, pings, cancel) before declaring the client lost. Client
	// heartbeats arrive every DefaultHeartbeat, so a healthy stream never
	// approaches it.
	DefaultIdleTimeout = 30 * time.Second
	// MaxServerBatch caps the VALUES run the server accumulates regardless
	// of what the client advertises, bounding per-stream buffered bytes.
	MaxServerBatch = 1024
)

// A Generator constructs the generator a named OPEN serves. It is called
// once per stream with the decoded (and dereferenced) argument vector; the
// returned generator is iterated to failure on the stream's producer
// goroutine. Returning an error rejects the OPEN with an ERR frame.
type Generator func(args []value.V) (core.Gen, error)

// Server serves registered generators — and, when AllowSource is set,
// vetted Junicon source — over the remote-pipe protocol. Every stream gets
// one producer goroutine whose pace is governed entirely by the client's
// credits: the remote pipe's buffer bound throttles this goroutine exactly
// as §3B's bounded queue throttles a local pipe producer.
type Server struct {
	// AllowSource permits OPEN frames carrying Junicon source. Source is
	// gated through the internal/analyze static analyzer: programs with
	// error-level findings are refused before any evaluation.
	AllowSource bool
	// MaxConns bounds concurrent connections; <= 0 selects
	// DefaultMaxConns.
	MaxConns int
	// IdleTimeout bounds the gap between client frames; <= 0 selects
	// DefaultIdleTimeout.
	IdleTimeout time.Duration
	// MaxProtocol caps the OPEN version this server accepts; 0 (or any
	// out-of-range value) means the newest. Setting 2 emulates a
	// pre-batching server: v3 OPENs are rejected with the versioned
	// message newer clients recognize and redial down from — the knob the
	// interop tests (and junicond -no-batch) use.
	MaxProtocol int
	// CheckpointDir, when set, persists the latest checkpoint snapshot of
	// every stream that produces one (interval or SNAPREQ) to
	// <dir>/<stream>.snap via atomic rename — the durable server-side copy
	// behind junicond -checkpoint-dir. Persistence failures are logged,
	// never fatal to the stream.
	CheckpointDir string
	// Log, when set, receives structured per-connection lifecycle events
	// (stream open / done / refused) including the stream's telemetry ID,
	// so log lines correlate with trace events and client-side logs.
	Log *slog.Logger

	mu       sync.Mutex
	gens     map[string]Generator
	listener net.Listener
	closed   bool

	conns   atomic.Int64 // active connections (accepted, not yet closed)
	streams atomic.Int64 // active producer goroutines
	served  atomic.Int64 // streams opened over the server's lifetime
	wg      sync.WaitGroup
}

// NewServer returns a server with an empty registry.
func NewServer() *Server { return &Server{gens: make(map[string]Generator)} }

// Register adds (or replaces) a named generator.
func (s *Server) Register(name string, g Generator) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gens[name] = g
}

// Names returns the registered generator names, sorted.
func (s *Server) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.gens))
	for n := range s.gens {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookup finds a registered generator.
func (s *Server) lookup(name string) (Generator, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	g, ok := s.gens[name]
	return g, ok
}

// ActiveConns reports currently accepted connections.
func (s *Server) ActiveConns() int { return int(s.conns.Load()) }

// ActiveStreams reports currently running producer goroutines — the
// server-side per-stream goroutine accounting.
func (s *Server) ActiveStreams() int { return int(s.streams.Load()) }

// Served reports the total number of streams opened.
func (s *Server) Served() int { return int(s.served.Load()) }

// log returns the configured logger, or a discard logger when none is
// set (the pre-logging default: quiet).
func (s *Server) log() *slog.Logger {
	if s.Log != nil {
		return s.Log
	}
	return discardLogger
}

var discardLogger = slog.New(slog.DiscardHandler)

// streamID renders a telemetry stream ID the way traces serialize it
// (hex), so log lines and trace events grep the same.
func streamID(id uint64) string {
	if id == 0 {
		return ""
	}
	return strconv.FormatUint(id, 16)
}

func (s *Server) maxConns() int {
	if s.MaxConns <= 0 {
		return DefaultMaxConns
	}
	return s.MaxConns
}

// maxStream is the version ceiling for individual stream opens (classic
// connections and per-stream OPENs inside a session).
func (s *Server) maxStream() byte {
	if s.MaxProtocol >= 1 && s.MaxProtocol <= openVersion {
		return byte(s.MaxProtocol)
	}
	return openVersion
}

// maxSession is the version ceiling for the first frame of a connection,
// which may be a v5 session handshake. MaxProtocol below sessionVersion
// (junicond -no-mux sets 4) refuses sessions with the standard versioned
// message, which Dialers recognize and fall back from.
func (s *Server) maxSession() byte {
	if s.MaxProtocol >= 1 && s.MaxProtocol <= sessionVersion {
		return byte(s.MaxProtocol)
	}
	return sessionVersion
}

func (s *Server) idleTimeout() time.Duration {
	if s.IdleTimeout <= 0 {
		return DefaultIdleTimeout
	}
	return s.IdleTimeout
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves in a background
// goroutine, returning the bound address. It is the convenience entry for
// tests, benchmarks and in-process workers.
func (s *Server) Start(addr string) (net.Addr, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(l)
	return l.Addr(), nil
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections on l until Close. Each connection carries one
// stream.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("remote: server closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if int(s.conns.Load()) >= s.maxConns() {
			// Refuse politely: drain the OPEN first so the client's write
			// never hits a reset connection, then send ERR. The client
			// surfaces the refusal via Err().
			s.log().Warn("connection refused",
				"remote", conn.RemoteAddr().String(),
				"reason", "connection limit",
				"limit", s.maxConns())
			if telemetry.On() {
				cServerRefused.Inc()
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				conn.SetReadDeadline(time.Now().Add(s.idleTimeout()))
				readFrame(conn)
				writeFrame(conn, frameErr, []byte("server at connection limit"))
			}()
			continue
		}
		s.conns.Add(1)
		if telemetry.On() {
			gServerConns.Set(s.conns.Load())
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.conns.Add(-1)
				if telemetry.On() {
					gServerConns.Set(s.conns.Load())
				}
			}()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight streams to finish. Streams
// whose clients are alive keep running until the client closes or cancels;
// callers that need a hard stop close the clients first.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	s.mu.Unlock()
	if l != nil {
		l.Close()
	}
	s.wg.Wait()
	return nil
}

// stream is the per-connection credit account shared by the connection
// reader (deposits) and the producer goroutine (withdrawals).
type stream struct {
	mu        sync.Mutex
	cond      sync.Cond
	credits   uint64
	cancelled bool
	snapReq   bool // a SNAPREQ frame awaits a forced snapshot answer
}

func newStream(initial uint64) *stream {
	st := &stream{credits: initial}
	st.cond.L = &st.mu
	return st
}

// acquire blocks until one credit is available, the stream is cancelled,
// or a forced snapshot is demanded; it reports whether a credit was taken,
// whether it had to wait, and whether a SNAPREQ must be answered first
// (snap consumes the request; no credit is taken). A wait is a credit
// stall: the client's buffer bound throttling this producer across the
// wire. Checking snapReq before the credit balance guarantees a migrating
// client — which has stopped consuming — always gets its snapshot answer
// instead of the producer racing ahead on leftover credits.
func (st *stream) acquire() (ok, waited, snap bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for st.credits == 0 && !st.cancelled && !st.snapReq {
		waited = true
		st.cond.Wait()
	}
	if st.cancelled {
		return false, waited, false
	}
	if st.snapReq {
		st.snapReq = false
		return false, waited, true
	}
	st.credits--
	return true, waited, false
}

// available reports the current credit balance without taking any — the
// producer flushes its pending batch before a stall, not after.
func (st *stream) available() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.credits
}

func (st *stream) deposit(n uint64) {
	st.mu.Lock()
	st.credits += n
	st.cond.Broadcast()
	st.mu.Unlock()
}

func (st *stream) cancel() {
	st.mu.Lock()
	st.cancelled = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// requestSnap demands a forced snapshot from the producer (SNAPREQ).
func (st *stream) requestSnap() {
	st.mu.Lock()
	st.snapReq = true
	st.cond.Broadcast()
	st.mu.Unlock()
}

// streamWriter abstracts how one served stream's frames reach its
// client: a dedicated connection (classic, one stream per conn) or a
// stream id on a shared session writer.
type streamWriter interface {
	writeStream(typ byte, payload []byte) error
}

// connWriter writes classic frames on a dedicated connection,
// serializing the producer's VALUE/EOS/ERR against the reader's PONG.
type connWriter struct {
	mu   sync.Mutex
	conn net.Conn
}

func (w *connWriter) writeStream(typ byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return writeFrame(w.conn, typ, payload)
}

// muxWriter tags a stream's frames with its id and hands them to the
// session's shared writer; serialization is the enqueue's.
type muxWriter struct {
	io  *muxIO
	sid uint32
}

func (w *muxWriter) writeStream(typ byte, payload []byte) error {
	return w.io.enqueue(typ, w.sid, payload)
}

// servedStream is the connection reader's control surface over one
// producer goroutine: the credit account, the on-demand flush, the
// teardown reason, and completion.
type servedStream struct {
	st        *stream
	flush     func() error
	setReason func(string)
	done      chan struct{}
}

// handleConn runs one connection: its first frame is either a classic
// stream OPEN (one stream per connection, protocols v1–v4) or a v5
// session handshake carrying many logical streams.
func (s *Server) handleConn(conn net.Conn) {
	idle := s.idleTimeout()
	conn.SetReadDeadline(time.Now().Add(idle))
	typ, payload, err := readFrame(conn)
	if err != nil || (typ != frameOpen && typ != frameResume) {
		writeFrame(conn, frameErr, []byte("expected OPEN or RESUME frame"))
		return
	}
	open, err := parseOpen(payload, s.maxSession())
	if err != nil {
		writeFrame(conn, frameErr, []byte(err.Error()))
		return
	}
	if open.mode == openMux {
		s.serveSession(conn, open)
		return
	}
	if open.version > s.maxStream() {
		// A classic stream open above the stream ceiling (possible when the
		// session ceiling is higher): the same versioned rejection
		// parseOpen produces, which downgrade-aware clients recognize.
		writeFrame(conn, frameErr,
			[]byte(fmt.Sprintf("remote: protocol version %d, want <= %d", open.version, s.maxStream())))
		return
	}
	if (typ == frameResume) != (open.mode == openResume) {
		writeFrame(conn, frameErr, []byte("RESUME frame and resume mode must pair"))
		return
	}
	w := &connWriter{conn: conn}
	ss := s.openStream(w, open, conn.RemoteAddr().String(), 0)
	if ss == nil {
		return // refused; ERR already sent
	}

	// Connection reader: credits, pings, cancel; any read error (including
	// the rolling idle deadline) or protocol violation cancels the stream.
	fr := newFrameReader(conn)
reader:
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		typ, payload, err := fr.read()
		if err != nil {
			ss.setReason("connection lost")
			break
		}
		switch typ {
		case frameCredit:
			n, err := parseCredit(payload)
			if err != nil {
				ss.setReason("protocol violation")
				break reader
			}
			ss.st.deposit(n)
			// A CREDIT frame is the demand signal: the client drained its
			// queue far enough to grant more, so any buffered run should
			// travel now. A write failure surfaces on the next read.
			ss.flush()
		case framePing:
			w.writeStream(framePong, nil)
		case frameSnapReq:
			ss.st.requestSnap()
		case frameCancel:
			ss.st.cancel()
		default:
			// Protocol violation: drop the stream.
			ss.setReason("protocol violation")
			break reader
		}
	}
	// Connection lost or cancelled: stop the producer (closing the conn
	// unblocks any in-flight write) and wait for it so stream accounting
	// is exact.
	ss.st.cancel()
	conn.Close()
	<-ss.done
}

// openStream resolves an OPEN to the generator it names and spawns its
// producer. A rejected open (unknown generator, vet error, bad resume
// blob) answers ERR on w and returns nil — which on a session fails one
// logical stream, never the connection.
func (s *Server) openStream(w streamWriter, open *openReq, remoteAddr string, connID uint64) *servedStream {
	gen, smeta, base, err := s.buildGenerator(open)
	if err != nil {
		w.writeStream(frameErr, []byte(err.Error()))
		s.log().Warn("stream refused",
			"remote", remoteAddr,
			"reason", err.Error())
		if telemetry.On() {
			cServerRefused.Inc()
		}
		return nil
	}
	return s.startStream(w, open, gen, smeta, base, remoteAddr, connID)
}

// startStream spawns the producer goroutine serving one opened stream
// over w: iterate the generator to failure, one value per credit.
// Runtime errors and panics become ERR frames, mirroring pipe.Pipe's
// producer containment. Completion (accounting, unregistration, the
// stream-done log) rides the producer's exit, so on a shared session
// each stream retires independently of its siblings.
func (s *Server) startStream(w streamWriter, open *openReq, gen core.Gen, smeta checkpoint.Meta, base uint64, remoteAddr string, connID uint64) *servedStream {
	// The generator this stream serves, for logs and trace labels.
	what := open.name
	switch open.mode {
	case openSource:
		what = "source"
	case openResume:
		what = "resume"
	}
	st := newStream(open.credit)

	// Batched delivery (OPEN v3): when the client advertises a batch
	// capability > 1, marshaled values accumulate in pending and ship as
	// one VALUES frame. Credit accounting stays per value — the producer
	// still acquires one credit per value before generating it, so the
	// §3B bounded-buffer backpressure is byte-for-byte the per-value
	// protocol's. The flush policy is the batched pipe's, translated to
	// the wire: fill (batch values buffered), demand (a CREDIT frame is
	// the client draining its queue — the reader flushes on arrival, and
	// a zero-credit CREDIT is a pure demand ping from a client about to
	// block), stall (credits exhausted: everything the client allows is
	// in hand, so ship it before waiting), and EOS/ERR (flush the run
	// before the terminal frame). bmu is held across the frame write so
	// racing flushes emit runs in production order; the stream writer's
	// own serialization nests inside bmu. encBuf is the recycled batch
	// encoding scratch — both writer kinds are done with the payload when
	// writeStream returns, so reuse across flushes is safe.
	batch := int(open.batch)
	if batch > MaxServerBatch {
		batch = MaxServerBatch
	}
	if open.version < 3 || batch <= 1 {
		batch = 0 // per-value mode
	}
	var bmu sync.Mutex
	var pending [][]byte
	var encBuf []byte
	flush := func() error {
		if batch == 0 {
			return nil
		}
		bmu.Lock()
		defer bmu.Unlock()
		if len(pending) == 0 {
			return nil
		}
		encBuf = wire.AppendBatch(encBuf[:0], pending)
		if telemetry.On() {
			hServerFlush.Observe(int64(len(pending)))
		}
		pending = pending[:0]
		return w.writeStream(frameValues, encBuf)
	}
	s.served.Add(1)
	s.streams.Add(1)
	opened := time.Now()
	if telemetry.On() {
		cServerStreams.Inc()
		gServerStreams.Set(s.streams.Load())
	}
	// Live-introspection handle for this stream, keyed by the client's
	// stream ID so /debug/streams on the server correlates with the
	// client's logs and traces. The credit balance is the one number a
	// stalled distributed pipeline turns on: zero + blocked-put is credit
	// starvation, which the watchdog diagnoses by name.
	var ih *inspect.Handle
	if inspect.On() {
		ih = inspect.Register(open.stream, inspect.KindRemoteServer,
			"serve:"+what+"<-"+remoteAddr)
		ih.SetCredit(int64(open.credit))
		ih.SetConn(connID)
	}
	// A resumed stream (snapshot restore or replay skip) is a recovery:
	// mark the handle so /debug/streams shows which streams survived, and
	// count replay recoveries under the same counter as snapshot restores
	// (which count inside checkpoint.Restore).
	if open.mode == openResume || open.skip > 0 {
		if open.mode != openResume {
			checkpoint.MarkRestored()
		}
		ih.NoteResumed()
	}
	// The stream ID arrived in the OPEN frame: server-side events carry
	// the client's ID, which is what stitches the two processes' traces.
	telemetry.Emit(open.stream, telemetry.KindStreamOpen, "serve:"+what, int64(open.credit))
	s.log().Info("stream open",
		"remote", remoteAddr,
		"generator", what,
		"stream", streamID(open.stream),
		"credit", open.credit)

	prodDone := make(chan struct{})
	var sent atomic.Int64
	var reason atomic.Pointer[string]
	setReason := func(r string) { reason.CompareAndSwap(nil, &r) }
	go func() {
		defer func() {
			s.streams.Add(-1)
			if telemetry.On() {
				gServerStreams.Set(s.streams.Load())
			}
			inspect.Unregister(ih)
			why := "done"
			if r := reason.Load(); r != nil {
				why = *r
			}
			telemetry.EmitSpan(open.stream, telemetry.KindStreamEnd, "serve:"+what, sent.Load(), opened)
			s.log().Info("stream done",
				"remote", remoteAddr,
				"generator", what,
				"stream", streamID(open.stream),
				"values", sent.Load(),
				"reason", why,
				"dur", time.Since(opened))
			close(prodDone)
		}()
		if ih != nil {
			// Label this goroutine with the stream ID so the watchdog can
			// pull its stack out of the goroutine profile when diagnosing a
			// stall, and bind it as the stream's producer for edge tracking.
			defer inspect.BindProducer(ih)()
			pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
				pprof.Labels(inspect.ProducerLabel, inspect.StreamID(ih.ID()))))
			defer pprof.SetGoroutineLabels(context.Background())
		}
		sendErr := func(msg string) {
			flush() // values produced before the error must precede it
			w.writeStream(frameErr, []byte(msg))
		}
		// takeSnap checkpoints the stream between Next calls (only this
		// goroutine drives gen, so the frame is suspended and consistent)
		// and answers with one SNAPSHOT frame — the blob on success, the
		// refusal reason otherwise. The batch flush first means every
		// delivered value the snapshot accounts for precedes the marker on
		// the wire. Returns false when interval snapshotting should stop
		// (refusal is sticky; a forced SNAPREQ still always gets an answer).
		interval := open.interval
		snapFile := fmt.Sprintf("%016x", open.stream)
		if open.stream == 0 {
			snapFile = fmt.Sprintf("conn-%d", s.served.Load())
		}
		takeSnap := func() bool {
			if flush() != nil {
				return false
			}
			total := base + open.skip + uint64(sent.Load())
			answer := func(ok bool, rest []byte) error {
				return w.writeStream(frameSnapshot, snapshotPayload(total, ok, rest))
			}
			if smeta.Expr == "" {
				answer(false, []byte("named generator has no source expression to restore from"))
				return false
			}
			meta := smeta
			meta.Produced = total
			blob, serr := checkpoint.Snapshot(gen, meta)
			if serr != nil {
				answer(false, []byte(serr.Error()))
				return false
			}
			if werr := answer(true, blob); werr != nil {
				return false
			}
			if s.CheckpointDir != "" {
				if perr := persistSnapshot(s.CheckpointDir, snapFile, blob); perr != nil {
					s.log().Warn("checkpoint persist failed", "file", snapFile, "err", perr.Error())
				}
			}
			return true
		}
		// Contain panics like pipe.start does: an Icon runtime error or a
		// foreign panic in a served generator must not crash the daemon —
		// it becomes an ERR frame, the remote Pipe.Err.
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					if re, ok := r.(*value.RuntimeError); ok {
						err = re
					} else {
						err = fmt.Errorf("producer panic: %v", r)
					}
				}
			}()
			// Recovery skip: replay the deterministic prefix the client
			// already delivered before its crash (or beyond its last
			// snapshot), discarding without consuming credits — the skipped
			// values were paid for by the previous incarnation's credits.
			for skipped := uint64(0); skipped < open.skip; skipped++ {
				if _, ok := gen.Next(); !ok {
					flush()
					w.writeStream(frameEOS, nil)
					setReason("eos during recovery skip")
					return nil
				}
			}
			snapOK := true
			for {
				var stallStart time.Time
				if telemetry.Active() {
					stallStart = time.Now()
				}
				if batch > 0 && st.available() == 0 {
					// About to stall on credits: the client has authorized
					// nothing more, so the buffered run is as full as it can
					// get — ship it rather than sit on it.
					if flush() != nil {
						setReason("connection lost")
						return nil
					}
				}
				if ih != nil {
					ih.BlockedPut()
				}
				ok, waited, snap := st.acquire()
				if ih != nil {
					ih.Running()
					ih.SetCredit(int64(st.available()))
				}
				if waited && telemetry.Active() {
					// The client's credit window throttled us: the §3B
					// bounded-queue backpressure, observed across the wire.
					if telemetry.On() {
						cCreditStalls.Inc()
						cCreditStallNs.Add(time.Since(stallStart).Nanoseconds())
					}
					telemetry.EmitSpan(open.stream, telemetry.KindCreditStall, "serve:"+what, 0, stallStart)
				}
				if snap {
					// SNAPREQ: the migration handshake. Always answered —
					// with the blob or a refusal — so Migrate never hangs.
					takeSnap()
					continue
				}
				if !ok {
					setReason("cancelled")
					return nil
				}
				tracing := telemetry.TraceOn()
				var genStart time.Time
				if tracing {
					genStart = time.Now()
				}
				v, ok := gen.Next()
				if !ok {
					if tracing {
						telemetry.EmitSpan(open.stream, telemetry.KindFail, "serve:"+what, 0, genStart)
					}
					flush() // the final partial run precedes EOS
					w.writeStream(frameEOS, nil)
					setReason("eos")
					return nil
				}
				if tracing {
					telemetry.EmitSpan(open.stream, telemetry.KindValue, "serve:"+what, sent.Load(), genStart)
				}
				data, merr := wire.Marshal(value.Deref(v))
				if merr != nil {
					// Values are marshaled at produce time, so an unencodable
					// value behaves exactly as in per-value mode: everything
					// before it is delivered (sendErr flushes), then ERR.
					sendErr("encode: " + merr.Error())
					setReason("encode error")
					return nil
				}
				var werr error
				if batch > 0 {
					bmu.Lock()
					pending = append(pending, data)
					full := len(pending) >= batch
					bmu.Unlock()
					if full {
						werr = flush()
					}
				} else {
					werr = w.writeStream(frameValue, data)
				}
				if werr != nil {
					setReason("connection lost")
					return nil // connection gone; reader tears down
				}
				sent.Add(1)
				if ih != nil {
					ih.Produced(1)
				}
				if telemetry.On() {
					cServerValues.Inc()
				}
				// Interval checkpointing piggybacks on the credit cadence:
				// a snapshot lands after every interval delivered values, so
				// the client's buffer bound also bounds checkpoint lag.
				if interval > 0 && snapOK &&
					(base+open.skip+uint64(sent.Load()))%interval == 0 {
					snapOK = takeSnap()
				}
			}
		}()
		if err != nil {
			sendErr(err.Error())
			setReason("producer error: " + err.Error())
		}
	}()

	return &servedStream{st: st, flush: flush, setReason: setReason, done: prodDone}
}

// serveSession runs a v5 multiplexed connection: one shared writer, one
// demux reader, many logical streams riding the startStream producers.
//
// Why the demux never head-of-line blocks: handleStreamFrame on the
// client delivers into a queue the client itself sized, and credit
// accounting guarantees the server never has more values in flight per
// stream than that queue has room for — so the per-stream Put the demux
// performs cannot stall siblings. Symmetrically here, the only per-frame
// work is a credit deposit or a cancel, both non-blocking.
func (s *Server) serveSession(conn net.Conn, hello *openReq) {
	remoteAddr := conn.RemoteAddr().String()
	// HELLO answers the handshake in classic framing; everything after it
	// on this connection is mux-framed.
	if err := writeFrame(conn, frameHello, nil); err != nil {
		return
	}
	connID := hello.stream
	var ih *inspect.Handle
	if inspect.On() {
		ih = inspect.Register(telemetry.NextStream(), inspect.KindSession,
			"session:"+remoteAddr+" (serve)")
		ih.SetConn(connID)
	}
	muxSessions.Add(1)
	if telemetry.On() {
		gMuxSess.Set(muxSessions.Load())
	}
	mio := newMuxIO(conn, ih)
	s.log().Info("session open",
		"remote", remoteAddr,
		"conn", streamID(connID),
		"streams_hint", hello.credit)

	streams := make(map[uint32]*servedStream)
	var smu sync.Mutex
	// Finished streams are reaped lazily: each OPEN that finds the table
	// past the high-water mark sweeps out entries whose producer has
	// retired. Amortized O(1) per stream, no goroutine per stream, and the
	// table stays within 2× the live count — what a session storm of
	// millions of short streams needs.
	sweepAt := 64
	idle := s.idleTimeout()
	fr := newFrameReader(conn)
	var serr error
loop:
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		typ, sid, payload, err := fr.readMux()
		if err != nil {
			serr = err
			break
		}
		if sid == 0 {
			// Connection-level liveness.
			switch typ {
			case framePing:
				mio.enqueue(framePong, 0, nil)
			case framePong:
				// Answer to our own ping; nothing to do.
			default:
				serr = errors.New("protocol violation on stream 0")
				break loop
			}
			continue
		}
		switch typ {
		case frameOpen, frameResume:
			smu.Lock()
			_, dup := streams[sid]
			smu.Unlock()
			if dup {
				serr = errors.New("duplicate stream id in OPEN")
				break loop
			}
			// parseOpen aliases args/program/expr sub-slices of its input,
			// and the reader's buffer is recycled on the next frame — copy
			// before parsing so the stream owns its open for its lifetime.
			open, perr := parseOpen(append([]byte(nil), payload...), s.maxStream())
			if perr != nil {
				mio.enqueue(frameErr, sid, []byte(perr.Error()))
				continue
			}
			if (typ == frameResume) != (open.mode == openResume) {
				mio.enqueue(frameErr, sid, []byte("RESUME frame and resume mode must pair"))
				continue
			}
			if open.mode == openMux {
				mio.enqueue(frameErr, sid, []byte("nested session open"))
				continue
			}
			ss := s.openStream(&muxWriter{io: mio, sid: sid}, open, remoteAddr, connID)
			if ss == nil {
				continue // refused; ERR already sent on sid
			}
			smu.Lock()
			streams[sid] = ss
			if len(streams) >= sweepAt {
				for id, old := range streams {
					select {
					case <-old.done:
						delete(streams, id)
					default:
					}
				}
				sweepAt = 2*len(streams) + 64
			}
			smu.Unlock()
		case frameCredit:
			n, perr := parseCredit(payload)
			if perr != nil {
				serr = errors.New("protocol violation in CREDIT")
				break loop
			}
			smu.Lock()
			ss := streams[sid]
			smu.Unlock()
			// A frame for an unknown sid is a finished stream's tail in
			// flight — ignore, per the mux framing contract.
			if ss != nil {
				ss.st.deposit(n)
				ss.flush()
			}
		case frameSnapReq:
			smu.Lock()
			ss := streams[sid]
			smu.Unlock()
			if ss != nil {
				ss.st.requestSnap()
			}
		case frameCancel:
			smu.Lock()
			ss := streams[sid]
			smu.Unlock()
			if ss != nil {
				ss.st.cancel()
			}
		default:
			serr = fmt.Errorf("protocol violation: frame %s on session", frameName(typ))
			break loop
		}
	}
	// Teardown: poison the shared writer FIRST so producers blocked in
	// enqueue unblock with an error, then cancel every stream and wait for
	// each producer so stream accounting is exact before the session
	// handle closes.
	if serr == nil {
		serr = errors.New("session closed")
	}
	mio.fail(serr)
	smu.Lock()
	live := make([]*servedStream, 0, len(streams))
	for _, ss := range streams {
		live = append(live, ss)
	}
	smu.Unlock()
	for _, ss := range live {
		ss.setReason("connection lost")
		ss.st.cancel()
	}
	for _, ss := range live {
		<-ss.done
	}
	ih.Close()
	muxSessions.Add(-1)
	if telemetry.On() {
		gMuxSess.Set(muxSessions.Load())
	}
	s.log().Info("session done",
		"remote", remoteAddr,
		"conn", streamID(connID),
		"reason", serr.Error())
}

// buildGenerator resolves an OPEN or RESUME request to the generator it
// serves, the metadata future snapshots of this stream carry, and — for a
// restored snapshot — the count of values its generator already delivered
// in a previous incarnation (the stream's absolute position is base +
// skip + values sent here).
func (s *Server) buildGenerator(open *openReq) (gen core.Gen, smeta checkpoint.Meta, base uint64, err error) {
	args, err := decodeArgs(open.args)
	if err != nil {
		return nil, smeta, 0, err
	}
	switch open.mode {
	case openNamed:
		g, ok := s.lookup(open.name)
		if !ok {
			return nil, smeta, 0, fmt.Errorf("unknown generator %q (registered: %s)", open.name, strings.Join(s.Names(), ", "))
		}
		gen, err = g(args)
		return gen, checkpoint.Meta{Name: open.name, Args: args}, 0, err
	case openSource:
		if !s.AllowSource {
			return nil, smeta, 0, fmt.Errorf("source streams are disabled on this server")
		}
		in, err := s.sourceInterp(open.program, open.expr, args)
		if err != nil {
			return nil, smeta, 0, err
		}
		gen, err = in.EvalGen(open.expr)
		return gen, checkpoint.Meta{Program: open.program, Expr: open.expr, Args: args}, 0, err
	case openResume:
		// A snapshot blob carries arbitrary source, so restoring is gated
		// exactly like source streams, with the same vet. The "resume
		// rejected" prefix is the client's cue to drop a stale blob and
		// retry with deterministic replay instead.
		if !s.AllowSource {
			return nil, smeta, 0, fmt.Errorf("resume rejected: source streams are disabled on this server")
		}
		meta, err := checkpoint.Peek(open.blob)
		if err != nil {
			return nil, smeta, 0, fmt.Errorf("resume rejected: %w", err)
		}
		in, err := s.sourceInterp(meta.Program, meta.Expr, meta.Args)
		if err != nil {
			return nil, smeta, 0, fmt.Errorf("resume rejected: %w", err)
		}
		gen, meta, err = in.RestoreSnapshot(open.blob)
		if err != nil {
			return nil, smeta, 0, fmt.Errorf("resume rejected: %w", err)
		}
		return gen, checkpoint.Meta{Program: meta.Program, Expr: meta.Expr, Name: meta.Name, Args: meta.Args}, meta.Produced, nil
	}
	return nil, smeta, 0, fmt.Errorf("unknown OPEN mode %d", open.mode)
}

func decodeArgs(data []byte) ([]value.V, error) {
	if len(data) == 0 {
		return nil, nil
	}
	v, err := wire.Unmarshal(data)
	if err != nil {
		return nil, fmt.Errorf("malformed argument list: %w", err)
	}
	l, ok := v.(*value.List)
	if !ok {
		return nil, fmt.Errorf("argument payload is %s, want list", value.TypeOf(v))
	}
	return l.Elems(), nil
}

// sourceInterp vets and loads a source stream's evaluation environment.
// The analyzer gate refuses error-level findings exactly as the
// translator does (migrating statically wrong code across the network is
// as worthless as compiling it); warnings are tolerated, as on the
// interpreter paths. Source streams run compiled (WithVM): semantically
// identical to the tree walk — the compiler falls back on anything it
// cannot lower — and it is what makes a source stream's frame a
// checkpointable continuation.
func (s *Server) sourceInterp(program, expr string, args []value.V) (*interp.Interp, error) {
	known := func(name string) bool { return name == "args" }
	if program != "" {
		prog, err := parser.ParseProgram(program)
		if err != nil {
			return nil, fmt.Errorf("parse program: %w", err)
		}
		if diags := analyze.Program(prog, analyze.Options{Known: known}); analyze.HasErrors(diags) {
			return nil, fmt.Errorf("vet rejected program: %s", diagErrors(diags))
		}
	}
	e, err := parser.ParseExpression(expr)
	if err != nil {
		return nil, fmt.Errorf("parse expression: %w", err)
	}
	in := interp.New(interp.WithOutput(io.Discard), interp.WithVM())
	if program != "" {
		if err := in.LoadProgram(program); err != nil {
			return nil, fmt.Errorf("load program: %w", err)
		}
	}
	// The expression may use names the program defines; vet it with those
	// known. Reusing the loaded interpreter's globals is cheaper than
	// plumbing a symbol table out of the analyzer.
	knownExpr := func(name string) bool {
		if name == "args" {
			return true
		}
		_, ok := in.Global(name)
		return ok
	}
	if diags := analyze.Expr(e, analyze.Options{Known: knownExpr}); analyze.HasErrors(diags) {
		return nil, fmt.Errorf("vet rejected expression: %s", diagErrors(diags))
	}
	in.Define("args", value.NewList(args...))
	return in, nil
}

// persistSnapshot writes the stream's latest checkpoint durably: write to
// a temp file, then atomically rename over <dir>/<name>.snap, so a crash
// mid-write never leaves a torn snapshot where a recovery would read it.
func persistSnapshot(dir, name string, blob []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, name+".snap"))
}

func diagErrors(diags []analyze.Diag) string {
	var msgs []string
	for _, d := range diags {
		if d.Severity == analyze.Error {
			msgs = append(msgs, d.String())
		}
	}
	return strings.Join(msgs, "; ")
}
