package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/queue"
	"junicon/internal/telemetry"
	"junicon/internal/value"
	"junicon/internal/wire"
)

// Client-side stream telemetry. The stream ID allocated at open time is
// sent in the OPEN frame, so the server's producer events carry the same
// ID as this client's consumer events — the hook that lets a distributed
// trace be stitched across the process boundary.
var (
	cClientStreams    = telemetry.NewCounter("remote.client.streams_opened")
	cClientValues     = telemetry.NewCounter("remote.client.values")
	cCreditsSent      = telemetry.NewCounter("remote.client.credits_sent")
	cClientRecoveries = telemetry.NewCounter("remote.client.recoveries")
	cClientMigrations = telemetry.NewCounter("remote.client.migrations")
)

// Defaults for Config zero values.
const (
	// DefaultBuffer matches pipe.DefaultBuffer: the credit window a remote
	// pipe grants its producer when none is configured.
	DefaultBuffer = 1024
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 5 * time.Second
	// DefaultHeartbeat is the PING interval keeping idle streams alive and
	// detecting dead peers.
	DefaultHeartbeat = 2 * time.Second
	// DefaultBatch is the VALUES-frame batch capability advertised when
	// Config.Batch is zero: the server may pack up to this many values
	// into one frame.
	DefaultBatch = 64
	// DefaultRecoverWait bounds how long a recovering pipe keeps redialing
	// a lost server before giving up and surfacing the original error.
	DefaultRecoverWait = 10 * time.Second
)

// ErrDeadline reports that a Next call waited longer than Config.Deadline;
// the stream is torn down so the pipe fails instead of hanging.
var ErrDeadline = errors.New("remote: deadline exceeded waiting for next value")

// errConnLost is the sentinel under every connection-loss failure — the
// one class of stream death a Config.Recover pipe redials through.
var errConnLost = errors.New("remote: connection lost")

// RemoteError is a server-reported stream error: the serving generator
// raised a runtime error or panicked (the remote analogue of pipe.Pipe's
// producer error), or the server rejected the OPEN (unknown generator,
// vet errors, connection limit).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "remote: server error: " + e.Msg }

// Config tunes a RemotePipe. The zero value is usable.
type Config struct {
	// Buffer is the credit window — the remote equivalent of the pipe's
	// bounded queue size (§3B throttling). <= 0 selects DefaultBuffer;
	// 1 yields remote future/M-var behaviour.
	Buffer int
	// DialTimeout bounds connection establishment; <= 0 selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// Deadline bounds each Next call; 0 means no per-call deadline. On
	// expiry the stream is torn down and Err reports ErrDeadline.
	Deadline time.Duration
	// Heartbeat is the PING interval; <= 0 selects DefaultHeartbeat. A
	// peer silent for several intervals is treated as lost.
	Heartbeat time.Duration
	// Batch is the VALUES-frame capability advertised at OPEN: the server
	// may deliver up to Batch values per frame, and the client coalesces
	// its per-value credit grants into runs of the same size. 0 selects
	// DefaultBatch; negative disables batching entirely (the pipe sends a
	// pre-batching v2 OPEN and receives one VALUE frame per value).
	// Credit accounting is per value either way, so the Buffer bound —
	// §3B's throttle — is unchanged by batching.
	Batch int
	// CheckpointEvery asks a v4 server to checkpoint the stream after every
	// N delivered values (a SNAPSHOT frame piggybacked on the credit
	// cadence, so the Buffer bound also bounds checkpoint lag); 0 disables
	// interval checkpointing. Servers that refuse (non-resumable
	// generators) say so once; the stream flows on regardless.
	CheckpointEvery int
	// Recover redials a lost connection and resumes the stream in place:
	// from the last received checkpoint snapshot when one exists, else by
	// deterministic replay (the server re-runs the generator and skips the
	// values this pipe already delivered). The consumer sees one unbroken
	// sequence — no values lost or duplicated.
	Recover bool
	// RecoverWait bounds total redial time per recovery; <= 0 selects
	// DefaultRecoverWait.
	RecoverWait time.Duration
}

func (c Config) buffer() int {
	if c.Buffer <= 0 {
		return DefaultBuffer
	}
	return c.Buffer
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return c.DialTimeout
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return DefaultHeartbeat
	}
	return c.Heartbeat
}

func (c Config) batch() int {
	if c.Batch < 0 {
		return 0
	}
	if c.Batch == 0 {
		return DefaultBatch
	}
	return c.Batch
}

func (c Config) recoverWait() time.Duration {
	if c.RecoverWait <= 0 {
		return DefaultRecoverWait
	}
	return c.RecoverWait
}

// RemotePipe is a generator proxy whose producer runs in another process:
// the remote counterpart of pipe.Pipe, with the same Next/Restart/Stop/
// Refresh/Err surface and the same core.Stepper contract, so it composes
// under product, alternation, limit, promotion and mapreduce unchanged.
//
// The stream opens lazily on the first Next (as |>e spawns its thread on
// first use); Restart cancels the stream and re-opens a fresh one, which
// re-evaluates the remote generator from the start — the network analogue
// of ^ over a refreshed co-expression.
type RemotePipe struct {
	mu   sync.Mutex
	addr string
	cfg  Config
	spec openReq // immutable template (credit filled per open)

	// dialer, when non-nil, pools this pipe's stream onto a shared
	// multiplexed session (set by Dialer.Open/OpenSource; nil for the
	// package-level constructors, which keep one connection per stream).
	dialer   *Dialer
	tr       transport
	out      queue.Queue[value.V]
	started  bool
	err      error
	results  int
	stream   uint64 // telemetry stream ID, propagated in OPEN; 0 = unobserved
	pingStop chan struct{}
	// Batch negotiation state. batch is the capability sent in the current
	// stream's OPEN (0 when batching is off); debt counts values consumed
	// but not yet credited back — coalesced into one CREDIT frame per run.
	// noBatch records that this server rejected a v3 OPEN, so every later
	// (re)open speaks v2; redial asks the next Next to reopen silently.
	batch   int
	debt    uint64
	noBatch bool
	redial  bool
	// Durability state (protocol v4). verCap is the protocol ceiling
	// learned from a server's versioned rejection (0 = newest); openedVer
	// is what the current stream actually opened with. epoch counts stream
	// incarnations — a credit grant captured under one epoch is dropped
	// rather than written to a different incarnation's connection (the
	// redial double-grant race). lastSnap/lastSnapAt hold the most recent
	// checkpoint blob and the delivered count it corresponds to; snapWait
	// is signaled when a SNAPSHOT answer (blob or refusal) lands; replay
	// buffers values drained off a dying stream during migration, delivered
	// before the target stream's.
	verCap     byte
	openedVer  byte
	epoch      uint64
	lastSnap   []byte
	lastSnapAt uint64
	snapReason string
	snapWait   chan struct{}
	replay     []value.V
	// ih is the live-introspection handle for the current stream; nil when
	// inspection was off at open time. Each (re)open registers afresh.
	ih *inspect.Handle
	// done is closed by readLoop when the stream ends for any reason, so
	// pingLoop exits promptly instead of pinging a dead stream.
	done chan struct{}
}

var (
	_ value.Gen    = (*RemotePipe)(nil)
	_ core.Stepper = (*RemotePipe)(nil)
	_ value.Sized  = (*RemotePipe)(nil)
)

// transport abstracts how a stream incarnation reaches the wire: a
// dedicated connection (one stream per connection, protocols v1–v4) or a
// logical stream on a multiplexed v5 session. The pipe's state machine —
// credits, epochs, recovery, migration — is identical over both.
type transport interface {
	// send writes one control frame (CREDIT, PING, CANCEL, SNAPREQ).
	send(typ byte, payload []byte) error
	// kill severs the underlying connection abruptly — the chaos hook. On
	// a shared session this kills every sibling stream too, exactly as a
	// crashed peer would.
	kill()
	// close ends this one stream gracefully: best-effort CANCEL, then
	// local teardown. On a session it must not disturb siblings.
	close()
}

// connTransport is the classic dedicated connection.
type connTransport struct {
	mu   sync.Mutex // serializes writes: CREDIT, PING, CANCEL
	conn net.Conn
}

func (t *connTransport) send(typ byte, payload []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return writeFrame(t.conn, typ, payload)
}

func (t *connTransport) kill() { t.conn.Close() }

func (t *connTransport) close() {
	// Best-effort CANCEL so the server can release the stream promptly;
	// closing the connection is the authoritative signal.
	t.send(frameCancel, nil)
	t.conn.Close()
}

// muxTransport is one logical stream on a shared session.
type muxTransport struct {
	s   *Session
	sid uint32
}

func (t *muxTransport) send(typ byte, payload []byte) error {
	return t.s.io.enqueue(typ, t.sid, payload)
}

func (t *muxTransport) kill() { t.s.Kill() }

func (t *muxTransport) close() { t.s.closeStream(t.sid) }

// Open returns a remote pipe over the generator registered under name on
// the server at addr, applied to args. No connection is made until the
// first Next.
func Open(addr, name string, args []value.V, cfg Config) *RemotePipe {
	return &RemotePipe{
		addr: addr,
		cfg:  cfg,
		spec: openReq{mode: openNamed, name: name, args: marshalArgs(args)},
	}
}

// OpenSource returns a remote pipe over a Junicon source stream: program
// holds declarations (may be empty), expr is the generator expression the
// server evaluates and serves. The server vets the source with the static
// analyzer before running it and rejects error-level findings.
func OpenSource(addr, program, expr string, args []value.V, cfg Config) *RemotePipe {
	return &RemotePipe{
		addr: addr,
		cfg:  cfg,
		spec: openReq{mode: openSource, program: program, expr: expr, args: marshalArgs(args)},
	}
}

// marshalArgs encodes the argument vector as one wire list. Encoding
// errors (cyclic arguments) are deferred to open time via a poison value.
func marshalArgs(args []value.V) []byte {
	b, err := wire.Marshal(value.NewList(args...))
	if err != nil {
		return nil // parseOpen side treats empty args as no arguments
	}
	return b
}

// fail records the first fatal stream error.
func (p *RemotePipe) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// composeOpen builds the OPEN (or RESUME, for a continuation) for a new
// stream incarnation at protocol ver. Caller holds p.mu.
func (p *RemotePipe) composeOpen(ver byte) (openReq, byte, error) {
	open := p.spec
	open.version = ver
	open.credit = uint64(p.cfg.buffer())
	open.stream = p.stream
	if b := p.cfg.batch(); b > 1 && !p.noBatch {
		open.batch = uint64(b)
	}
	if ver >= 4 && p.cfg.CheckpointEvery > 0 {
		open.interval = uint64(p.cfg.CheckpointEvery)
	}
	// Continuation: a (re)open with results already delivered is a
	// recovery or migration, not a fresh evaluation. Resume from the last
	// checkpoint when one covers the delivered prefix (skip bridges the
	// values delivered past the snapshot); otherwise ask the server to
	// re-run the generator and skip the whole delivered prefix.
	typ := frameOpen
	if p.results > 0 {
		if ver < 4 {
			return open, typ, fmt.Errorf("remote: cannot resume stream at %s: server speaks protocol %d, need >= 4", p.addr, ver)
		}
		if p.lastSnap != nil && uint64(p.results) >= p.lastSnapAt {
			open.mode = openResume
			open.name, open.program, open.expr = "", "", ""
			open.blob = p.lastSnap
			open.skip = uint64(p.results) - p.lastSnapAt
			typ = frameResume
		} else {
			open.skip = uint64(p.results)
		}
	}
	return open, typ, nil
}

// armLocal initializes the local consumer state for a fresh stream
// incarnation: bounded queue, telemetry, live-introspection handle.
// Caller holds p.mu and has already set batch/openedVer/epoch.
func (p *RemotePipe) armLocal(observed bool, credit, connID uint64) {
	p.debt = 0
	p.snapWait = nil
	p.out = queue.NewArrayBlocking[value.V](p.cfg.buffer())
	if observed {
		p.out = queue.Instrument(p.out, p.stream, "remote")
		cClientStreams.Inc()
		telemetry.Emit(p.stream, telemetry.KindStreamOpen, "remote:"+p.addr, int64(credit))
	}
	if inspect.On() {
		if p.stream == 0 {
			p.stream = telemetry.NextStream()
		}
		p.ih = inspect.Register(p.stream, inspect.KindRemoteClient, "remote:"+p.addr)
		p.ih.SetCredit(int64(credit))
		p.ih.SetConn(connID)
		if p.results > 0 {
			p.ih.NoteResumed()
		}
		probe := p.out
		p.ih.SetDepthProbe(func() (int, int) { return probe.Len(), probe.Cap() })
	} else {
		p.ih = nil
	}
	if p.results > 0 && telemetry.On() {
		cClientRecoveries.Inc()
	}
	p.started = true
	p.err = nil
	p.done = make(chan struct{})
}

// startMux opens the stream as a logical stream on a pooled session when
// the pipe was created through a Dialer. handled=false falls back to a
// dedicated connection: no dialer, a pre-v5 server (the transparent
// downgrade), or a per-stream state that already forced an older
// protocol. Caller holds p.mu.
func (p *RemotePipe) startMux(observed bool) (bool, error) {
	if p.dialer == nil || p.verCap != 0 || p.noBatch {
		return false, nil
	}
	sess, err := p.dialer.session(p.addr)
	if err != nil {
		if errors.Is(err, errMuxUnsupported) {
			return false, nil
		}
		return true, err
	}
	open, typ, err := p.composeOpen(openVersion)
	if err != nil {
		return true, err
	}
	p.batch = int(open.batch)
	p.openedVer = openVersion
	p.epoch++
	p.armLocal(observed, open.credit, sess.id)
	rx := &muxRx{
		p:      p,
		stream: p.stream,
		label:  "remote:" + p.addr,
		out:    p.out,
		ih:     p.ih,
		done:   p.done,
		start:  time.Now(),
	}
	sid, err := sess.openStream(rx, typ, open.marshal())
	if err != nil {
		// The session died between reserve and open. Unwind the armed
		// state; the error already wraps errConnLost, so Recover redials.
		p.started = false
		p.out.Close()
		p.ih.Close()
		p.ih = nil
		return true, err
	}
	p.tr = &muxTransport{s: sess, sid: sid}
	p.pingStop = nil // liveness is per connection: the session pings
	return true, nil
}

// start dials and opens the stream. Caller holds p.mu.
func (p *RemotePipe) start() error {
	observed := telemetry.Active()
	if observed && p.stream == 0 {
		p.stream = telemetry.NextStream()
	}
	if handled, err := p.startMux(observed); handled {
		return err
	}
	conn, err := net.DialTimeout("tcp", p.addr, p.cfg.dialTimeout())
	if err != nil {
		return fmt.Errorf("remote: dial %s: %w", p.addr, err)
	}
	ver := byte(openVersion)
	if p.verCap != 0 && p.verCap < ver {
		ver = p.verCap
	}
	if p.noBatch && ver > 2 {
		// A server that rejected batching predates v3 entirely: speak the
		// pre-batching protocol, which every server accepts.
		ver = 2
	}
	open, typ, err := p.composeOpen(ver)
	if err != nil {
		conn.Close()
		return err
	}
	p.batch = int(open.batch)
	p.openedVer = ver
	p.epoch++
	if err := writeFrame(conn, typ, open.marshal()); err != nil {
		conn.Close()
		return fmt.Errorf("remote: open %s: %w", p.addr, err)
	}
	p.tr = &connTransport{conn: conn}
	p.armLocal(observed, open.credit, 0)
	p.pingStop = make(chan struct{})
	go p.readLoop(conn, p.out, p.done, p.stream, p.ih)
	go p.pingLoop(p.pingStop, p.done)
	return nil
}

// readLoop consumes frames into the local bounded queue until the stream
// ends (EOS), errors (ERR / connection loss / malformed frame) or the
// consumer stops the pipe.
func (p *RemotePipe) readLoop(conn net.Conn, out queue.Queue[value.V], done chan struct{}, stream uint64, ih *inspect.Handle) {
	var received int64
	start := time.Now()
	defer func() {
		close(done)
		conn.Close()
		out.Close()
		ih.Close()
		if stream != 0 {
			telemetry.EmitSpan(stream, telemetry.KindStreamEnd, "remote:"+p.addr, received, start)
		}
	}()
	if ih != nil {
		// The read loop is this stream's local producer: label and bind it
		// so stall diagnoses can include its stack and topology edges form.
		defer inspect.BindProducer(ih)()
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels(inspect.ProducerLabel, inspect.StreamID(ih.ID()))))
		defer pprof.SetGoroutineLabels(context.Background())
	}
	// A peer silent for several heartbeat intervals is lost: PONGs answer
	// our PINGs, so frames normally arrive at least once per interval.
	liveness := 4 * p.cfg.heartbeat()
	// Recycled buffers for the steady-state VALUES path: the frame reader
	// reuses one payload buffer, and batch decoding reuses one value
	// slice (PutBatch copies the elements into the ring, and the codec
	// never aliases the payload).
	fr := newFrameReader(conn)
	var vals []value.V
	for {
		conn.SetReadDeadline(time.Now().Add(liveness))
		typ, payload, err := fr.read()
		if err != nil {
			p.fail(fmt.Errorf("%w: %v", errConnLost, err))
			return
		}
		switch typ {
		case frameValue:
			v, err := wire.Unmarshal(payload)
			if err != nil {
				p.fail(fmt.Errorf("remote: malformed value frame: %w", err))
				return
			}
			received++
			if stream != 0 && telemetry.On() {
				cClientValues.Inc()
			}
			if ih != nil {
				ih.BlockedPut()
			}
			if out.Put(v) != nil {
				// Consumer stopped the pipe: tell the producer.
				p.sendFrame(frameCancel, nil)
				return
			}
			if ih != nil {
				ih.Running()
				ih.Produced(1)
			}
		case frameValues:
			vals, err = wire.UnmarshalBatchInto(vals[:0], payload, wire.DefaultLimits)
			if err != nil {
				p.fail(fmt.Errorf("remote: malformed batch frame: %w", err))
				return
			}
			received += int64(len(vals))
			if stream != 0 && telemetry.On() {
				cClientValues.Add(int64(len(vals)))
			}
			if ih != nil {
				ih.BlockedPut()
			}
			if _, err := out.PutBatch(vals); err != nil {
				p.sendFrame(frameCancel, nil)
				return
			}
			if ih != nil {
				ih.Running()
				ih.Produced(int64(len(vals)))
			}
		case frameEOS:
			return // clean end: generator failed
		case frameSnapshot:
			produced, ok, rest, err := parseSnapshot(payload)
			if err != nil {
				p.fail(err)
				return
			}
			p.noteSnapshot(produced, ok, rest)
		case frameErr:
			if p.noteDowngrade(string(payload)) {
				// A pre-batching server refused our v3 OPEN; the teardown in
				// this defer closes out, and the next Next reopens at v2.
				return
			}
			p.fail(&RemoteError{Msg: string(payload)})
			return
		case framePong, framePing:
			// liveness only; PING from the server is tolerated and ignored
		default:
			p.fail(fmt.Errorf("remote: unexpected %s frame", frameName(typ)))
			return
		}
	}
}

// pingLoop keeps the stream alive and detects dead peers while the
// consumer is slow or idle.
func (p *RemotePipe) pingLoop(stop, done chan struct{}) {
	t := time.NewTicker(p.cfg.heartbeat())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-done:
			return
		case <-t.C:
			if err := p.sendFrame(framePing, nil); err != nil {
				// readLoop surfaces the connection loss; just stop pinging.
				return
			}
		}
	}
}

// noteDowngrade recognizes a version rejection from an older server and
// arranges a silent reopen at the version the server names instead of
// surfacing the rejection as a stream error. Only the versioned-OPEN
// rejection message is treated this way, and only when it actually names
// a lower version than we sent (anything else is a real error).
func (p *RemotePipe) noteDowngrade(msg string) bool {
	n, ok := versionCap(msg)
	if !ok {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n >= p.openedVer {
		return false // the server accepts what we sent; this is a real error
	}
	p.verCap = n
	if n < 3 {
		p.noBatch = true // pre-batching server
	}
	p.redial = true
	return true
}

// noteSnapshot records a SNAPSHOT answer: the latest checkpoint blob (or
// the server's refusal) plus the delivered count it corresponds to, and
// wakes a Migrate waiting on it.
func (p *RemotePipe) noteSnapshot(produced uint64, ok bool, rest []byte) {
	p.mu.Lock()
	if ok {
		p.lastSnap = append([]byte(nil), rest...)
		p.lastSnapAt = produced
		p.snapReason = ""
	} else {
		p.snapReason = string(rest)
	}
	ch := p.snapWait
	p.snapWait = nil
	p.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// testHookFlushPause, when set, runs between a flushCredits debt capture
// and its CREDIT write — the window the double-grant regression test uses
// to interleave a redial deterministically.
var testHookFlushPause func()

// flushCredits grants the producer every credit accumulated since the last
// grant in one CREDIT frame. With demand set a frame is sent even when no
// credits are owed: CREDIT(0) is the pure demand ping a consumer about to
// block sends so a batching server flushes its partial run (a pre-batching
// server deposits zero, harmlessly).
//
// The grant is pinned to the stream incarnation it was captured under:
// debt is zeroed under p.mu, but the CREDIT write happens later, and a
// redial (version downgrade, crash recovery, migration) can swap p.conn in
// between. A fresh stream already opens with a full-buffer grant, so a
// stale grant landing on it would over-credit the producer past the §3B
// bound — the epoch check drops it instead.
func (p *RemotePipe) flushCredits(demand bool) {
	p.mu.Lock()
	debt := p.debt
	p.debt = 0
	stream := p.stream
	epoch := p.epoch
	p.mu.Unlock()
	if debt == 0 && !demand {
		return
	}
	if stream != 0 && telemetry.On() {
		cCreditsSent.Inc()
	}
	if testHookFlushPause != nil {
		testHookFlushPause()
	}
	p.sendFrameEpoch(frameCredit, creditPayload(debt), epoch) // best effort; loss surfaces in readLoop
}

// sendFrame serializes control-frame writes against the current stream.
func (p *RemotePipe) sendFrame(typ byte, payload []byte) error {
	p.mu.Lock()
	epoch := p.epoch
	p.mu.Unlock()
	return p.sendFrameEpoch(typ, payload, epoch)
}

// sendFrameEpoch writes a control frame only if the stream incarnation is
// still the one the frame was composed for; a frame that raced a redial is
// dropped, not delivered to the wrong stream. (The transport is captured
// together with the epoch, so a frame that loses the race after the check
// goes to the old incarnation's transport — a dead connection or a
// finished session stream id, both of which discard it.)
func (p *RemotePipe) sendFrameEpoch(typ byte, payload []byte, epoch uint64) error {
	p.mu.Lock()
	tr := p.tr
	cur := p.epoch
	p.mu.Unlock()
	if tr == nil {
		return errors.New("remote: stream not open")
	}
	if cur != epoch {
		return nil // stale frame for a dead incarnation: drop silently
	}
	return tr.send(typ, payload)
}

// Next takes the next remote result, failing when the serving generator
// has failed (EOS), the stream errored, or the per-call deadline expired.
// Each consumed value grants the producer one replacement credit, so at
// most Buffer values are ever in flight — the §3B throttle, across the
// wire.
func (p *RemotePipe) Next() (value.V, bool) {
	p.mu.Lock()
	if len(p.replay) > 0 {
		// Values drained off the previous incarnation during migration:
		// deliver them before touching the new stream. Their credits were
		// spent on the old connection, so no grant is owed here.
		v := p.replay[0]
		p.replay = p.replay[1:]
		p.results++
		p.mu.Unlock()
		return v, true
	}
	if !p.started {
		if err := p.start(); err != nil {
			p.started = true // don't re-dial every Next; Restart resets
			p.err = err
			p.out = queue.NewArrayBlocking[value.V](1)
			p.out.Close()
			p.mu.Unlock()
			return nil, false
		}
	}
	out, tr := p.out, p.tr
	batched := p.batch > 0
	ih := p.ih
	p.mu.Unlock()

	if ih != nil {
		inspect.NoteConsumeOnce(ih)
		ih.BlockedTake()
	}

	var timer *time.Timer
	if d := p.cfg.Deadline; d > 0 {
		timer = time.AfterFunc(d, func() {
			p.fail(ErrDeadline)
			if tr != nil {
				// Tear down this stream only: on a shared session the
				// per-stream close leaves siblings undisturbed.
				tr.close()
			}
			out.Close()
		})
	}
	v, ok, err := out.TryTake()
	if err == nil && !ok {
		if batched {
			// About to block on an empty queue: hand back whatever credits
			// we owe and signal demand, so the server ships its partial run
			// instead of waiting to fill a batch.
			p.flushCredits(true)
		}
		v, err = out.Take()
	}
	if timer != nil {
		timer.Stop()
	}
	if err != nil {
		p.mu.Lock()
		if p.redial {
			// The server named a lower protocol version; reopen there
			// transparently.
			p.redial = false
			p.detachLocked()
			p.mu.Unlock()
			return p.Next()
		}
		serr := p.err
		if p.recoverableLocked(serr) {
			var re *RemoteError
			if errors.As(serr, &re) && strings.Contains(re.Msg, "resume rejected") {
				// The snapshot didn't take (stale blob, resume disabled):
				// drop it and recover by deterministic replay instead.
				p.lastSnap = nil
				p.lastSnapAt = 0
			}
			p.detachLocked()
			p.mu.Unlock()
			if p.reconnect() {
				return p.Next()
			}
			return nil, false
		}
		p.mu.Unlock()
		return nil, false
	}
	p.mu.Lock()
	p.results++
	p.debt++
	grant := !batched || p.debt >= uint64(p.batch)
	if ih != nil {
		ih.Running()
		ih.Consumed(1)
		// The credit balance is the window minus uncredited consumption:
		// what the server may still send before its next stall.
		ih.SetCredit(int64(uint64(p.cfg.buffer()) - p.debt))
	}
	p.mu.Unlock()
	if grant {
		// Unbatched streams credit every value (the original per-value
		// ACK clock); batched streams coalesce a batch's worth into one
		// frame, with the pre-block demand ping above covering the tail.
		p.flushCredits(false)
	}
	return v, true
}

// Err reports the error that terminated the stream, if any: a
// *RemoteError for server-side producer errors and rejections, ErrDeadline
// for per-call deadline expiry, or a connection/protocol error. A remote
// generator that simply ran to failure leaves Err nil, exactly as
// pipe.Pipe distinguishes exhaustion from producer error.
func (p *RemotePipe) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// StartEager opens the stream immediately instead of on first Next — used
// by distributed map-reduce, where all remote task pipes must run
// concurrently from the moment they are created (Figure 4). Dial errors
// surface on the first Next via Err.
func (p *RemotePipe) StartEager() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	if err := p.start(); err != nil {
		p.started = true
		p.err = err
		p.out = queue.NewArrayBlocking[value.V](1)
		p.out.Close()
	}
}

// detachLocked abandons the current stream's client state so the next
// Next opens a fresh one; the stream's teardown (triggered by the queue
// close that got us here) owns the connection. Caller holds p.mu.
func (p *RemotePipe) detachLocked() {
	p.started = false
	p.err = nil
	if p.pingStop != nil {
		close(p.pingStop)
		p.pingStop = nil
	}
	p.tr = nil
}

// recoverableLocked reports whether a terminated stream should be redialed
// and resumed rather than surfaced: only under Config.Recover, and only
// for connection loss or a rejected resume (which retries as replay). A
// server-side producer error, a vet rejection, or a consumer deadline is
// final either way. Caller holds p.mu.
func (p *RemotePipe) recoverableLocked(err error) bool {
	if !p.cfg.Recover || err == nil {
		return false
	}
	if errors.Is(err, errConnLost) {
		return true
	}
	var re *RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "resume rejected")
}

// reconnect redials until a stream opens or RecoverWait elapses — the
// window a crashed server (junicond restarting under a supervisor) has to
// come back. Returns false with the final dial error recorded.
func (p *RemotePipe) reconnect() bool {
	deadline := time.Now().Add(p.cfg.recoverWait())
	for {
		p.mu.Lock()
		if p.started {
			p.mu.Unlock()
			return true
		}
		err := p.start()
		p.mu.Unlock()
		if err == nil {
			return true
		}
		if time.Now().After(deadline) {
			p.fail(err)
			p.mu.Lock()
			p.started = true // stop re-dialing on every Next; Restart resets
			if p.out == nil {
				p.out = queue.NewArrayBlocking[value.V](1)
			}
			p.out.Close()
			p.mu.Unlock()
			return false
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// Migrate moves the live stream to the junicond at target mid-iteration
// with no values lost or duplicated: demand a snapshot from the source
// (SNAPREQ), drain everything the source already shipped into the replay
// buffer, cut the connection, and let the next Next open the target with
// RESUME (or deterministic replay when the source refused to snapshot).
// The §3B credit window caps what can be in flight during the cutover, so
// the drain is bounded by the pipe's buffer.
func (p *RemotePipe) Migrate(target string) error {
	p.mu.Lock()
	if !p.started || p.tr == nil || p.err != nil {
		// Nothing live to hand over: just point the pipe at the target.
		// With results already delivered, the next Next resumes there.
		p.addr = target
		p.mu.Unlock()
		return nil
	}
	ih := p.ih
	out := p.out
	done := p.done
	var ch chan struct{}
	if p.openedVer >= 4 {
		ch = make(chan struct{})
		p.snapWait = ch
	}
	p.mu.Unlock()
	ih.Migrating()
	if telemetry.On() {
		cClientMigrations.Inc()
	}

	var replay []value.V
	drain := func() {
		for {
			v, ok, err := out.TryTake()
			if err != nil || !ok {
				return
			}
			replay = append(replay, v)
		}
	}
	if ch != nil {
		p.sendFrame(frameSnapReq, nil)
		// Wait for the snapshot answer while draining the queue: the
		// producer may need the read loop unblocked (queue full) before it
		// can reach the SNAPREQ, and every value it ships before the
		// SNAPSHOT marker must be in hand for the resume arithmetic.
		deadline := time.Now().Add(p.cfg.recoverWait())
		for waiting := true; waiting; {
			drain()
			select {
			case <-ch:
				waiting = false
			case <-done:
				waiting = false
			case <-time.After(time.Millisecond):
				if time.Now().After(deadline) {
					waiting = false // no answer: fall back to replay recovery
				}
			}
		}
	}
	// Cut over: stop the source stream and collect everything it shipped.
	// The SNAPSHOT frame is ordered after every value its count covers, so
	// after this final drain delivered+replay >= lastSnapAt — the resume
	// skip is never negative.
	p.sendFrame(frameCancel, nil)
	p.mu.Lock()
	tr := p.tr
	p.tr = nil
	if p.pingStop != nil {
		close(p.pingStop)
		p.pingStop = nil
	}
	p.mu.Unlock()
	if tr != nil {
		tr.close()
	}
	if done != nil {
		<-done // readLoop finished: the queue is closed, nothing more arrives
	}
	drain()
	p.mu.Lock()
	p.started = false
	p.err = nil
	p.addr = target
	p.replay = append(p.replay, replay...)
	p.mu.Unlock()
	return nil
}

// KillConn severs the transport abruptly — no CANCEL, no teardown of the
// local state machine — exactly what a crashed peer or cut network looks
// like. It is the chaos hook the kill/recovery tests drive; real code has
// no reason to call it.
func (p *RemotePipe) KillConn() {
	p.mu.Lock()
	tr := p.tr
	p.mu.Unlock()
	if tr != nil {
		tr.kill()
	}
}

// Checkpointed reports the delivered-value count of the last checkpoint
// snapshot received, and whether one exists.
func (p *RemotePipe) Checkpointed() (uint64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSnapAt, p.lastSnap != nil
}

// SnapshotRefusal reports the server's reason for declining to checkpoint
// this stream, if it has declined ("" otherwise) — surfaced so operators
// can tell replay-recovery streams from snapshot-recovery ones.
func (p *RemotePipe) SnapshotRefusal() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapReason
}

// stopLocked cancels the current stream. Caller holds p.mu.
func (p *RemotePipe) stopLocked() {
	if p.tr != nil {
		p.tr.close()
		p.tr = nil
	}
	if p.pingStop != nil {
		close(p.pingStop)
		p.pingStop = nil
	}
	if p.out != nil {
		p.out.Close()
	}
	p.ih.Close()
}

// Stop terminates the stream without restarting; further Nexts fail until
// Restart. Safe to call at any time, including concurrently with Next.
func (p *RemotePipe) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		p.out = queue.NewArrayBlocking[value.V](1)
		p.out.Close()
		p.started = true
		return
	}
	p.stopLocked()
}

// Restart cancels the stream and arranges for a fresh one — a fresh
// evaluation of the remote generator — on the next Next.
func (p *RemotePipe) Restart() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.stopLocked()
		p.started = false
	}
	p.err = nil
	p.results = 0
	p.lastSnap = nil
	p.lastSnapAt = 0
	p.snapReason = ""
	p.replay = nil
}

// Step implements the activation operator @ on the remote pipe.
func (p *RemotePipe) Step(value.V) (value.V, bool) { return p.Next() }

// Refresh implements ^: a new proxy that will open its own fresh stream.
func (p *RemotePipe) Refresh() core.Stepper {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.stopLocked()
	}
	return &RemotePipe{addr: p.addr, cfg: p.cfg, spec: p.spec}
}

// Stream reports the telemetry stream ID sent in the OPEN frame — 0
// unless the stream opened while telemetry was active.
func (p *RemotePipe) Stream() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stream
}

// Size reports the number of results taken so far (*P).
func (p *RemotePipe) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.results
}

// Type returns "co-expression": a remote pipe proxies one, like pipe.Pipe.
func (p *RemotePipe) Type() string { return "co-expression" }

// Image identifies the value as a remote pipe.
func (p *RemotePipe) Image() string { return fmt.Sprintf("remote-pipe(%s)", p.addr) }
