package remote

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/queue"
	"junicon/internal/telemetry"
	"junicon/internal/value"
	"junicon/internal/wire"
)

// Client-side stream telemetry. The stream ID allocated at open time is
// sent in the OPEN frame, so the server's producer events carry the same
// ID as this client's consumer events — the hook that lets a distributed
// trace be stitched across the process boundary.
var (
	cClientStreams = telemetry.NewCounter("remote.client.streams_opened")
	cClientValues  = telemetry.NewCounter("remote.client.values")
	cCreditsSent   = telemetry.NewCounter("remote.client.credits_sent")
)

// Defaults for Config zero values.
const (
	// DefaultBuffer matches pipe.DefaultBuffer: the credit window a remote
	// pipe grants its producer when none is configured.
	DefaultBuffer = 1024
	// DefaultDialTimeout bounds connection establishment.
	DefaultDialTimeout = 5 * time.Second
	// DefaultHeartbeat is the PING interval keeping idle streams alive and
	// detecting dead peers.
	DefaultHeartbeat = 2 * time.Second
	// DefaultBatch is the VALUES-frame batch capability advertised when
	// Config.Batch is zero: the server may pack up to this many values
	// into one frame.
	DefaultBatch = 64
)

// ErrDeadline reports that a Next call waited longer than Config.Deadline;
// the stream is torn down so the pipe fails instead of hanging.
var ErrDeadline = errors.New("remote: deadline exceeded waiting for next value")

// RemoteError is a server-reported stream error: the serving generator
// raised a runtime error or panicked (the remote analogue of pipe.Pipe's
// producer error), or the server rejected the OPEN (unknown generator,
// vet errors, connection limit).
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "remote: server error: " + e.Msg }

// Config tunes a RemotePipe. The zero value is usable.
type Config struct {
	// Buffer is the credit window — the remote equivalent of the pipe's
	// bounded queue size (§3B throttling). <= 0 selects DefaultBuffer;
	// 1 yields remote future/M-var behaviour.
	Buffer int
	// DialTimeout bounds connection establishment; <= 0 selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// Deadline bounds each Next call; 0 means no per-call deadline. On
	// expiry the stream is torn down and Err reports ErrDeadline.
	Deadline time.Duration
	// Heartbeat is the PING interval; <= 0 selects DefaultHeartbeat. A
	// peer silent for several intervals is treated as lost.
	Heartbeat time.Duration
	// Batch is the VALUES-frame capability advertised at OPEN: the server
	// may deliver up to Batch values per frame, and the client coalesces
	// its per-value credit grants into runs of the same size. 0 selects
	// DefaultBatch; negative disables batching entirely (the pipe sends a
	// pre-batching v2 OPEN and receives one VALUE frame per value).
	// Credit accounting is per value either way, so the Buffer bound —
	// §3B's throttle — is unchanged by batching.
	Batch int
}

func (c Config) buffer() int {
	if c.Buffer <= 0 {
		return DefaultBuffer
	}
	return c.Buffer
}

func (c Config) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return c.DialTimeout
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return DefaultHeartbeat
	}
	return c.Heartbeat
}

func (c Config) batch() int {
	if c.Batch < 0 {
		return 0
	}
	if c.Batch == 0 {
		return DefaultBatch
	}
	return c.Batch
}

// RemotePipe is a generator proxy whose producer runs in another process:
// the remote counterpart of pipe.Pipe, with the same Next/Restart/Stop/
// Refresh/Err surface and the same core.Stepper contract, so it composes
// under product, alternation, limit, promotion and mapreduce unchanged.
//
// The stream opens lazily on the first Next (as |>e spawns its thread on
// first use); Restart cancels the stream and re-opens a fresh one, which
// re-evaluates the remote generator from the start — the network analogue
// of ^ over a refreshed co-expression.
type RemotePipe struct {
	mu   sync.Mutex
	addr string
	cfg  Config
	spec openReq // immutable template (credit filled per open)

	conn     net.Conn
	wmu      sync.Mutex // serializes writes: CREDIT, PING, CANCEL
	out      queue.Queue[value.V]
	started  bool
	err      error
	results  int
	stream   uint64 // telemetry stream ID, propagated in OPEN; 0 = unobserved
	pingStop chan struct{}
	// Batch negotiation state. batch is the capability sent in the current
	// stream's OPEN (0 when batching is off); debt counts values consumed
	// but not yet credited back — coalesced into one CREDIT frame per run.
	// noBatch records that this server rejected a v3 OPEN, so every later
	// (re)open speaks v2; redial asks the next Next to reopen silently.
	batch   int
	debt    uint64
	noBatch bool
	redial  bool
	// ih is the live-introspection handle for the current stream; nil when
	// inspection was off at open time. Each (re)open registers afresh.
	ih *inspect.Handle
	// done is closed by readLoop when the stream ends for any reason, so
	// pingLoop exits promptly instead of pinging a dead stream.
	done chan struct{}
}

var (
	_ value.Gen    = (*RemotePipe)(nil)
	_ core.Stepper = (*RemotePipe)(nil)
	_ value.Sized  = (*RemotePipe)(nil)
)

// Open returns a remote pipe over the generator registered under name on
// the server at addr, applied to args. No connection is made until the
// first Next.
func Open(addr, name string, args []value.V, cfg Config) *RemotePipe {
	return &RemotePipe{
		addr: addr,
		cfg:  cfg,
		spec: openReq{mode: openNamed, name: name, args: marshalArgs(args)},
	}
}

// OpenSource returns a remote pipe over a Junicon source stream: program
// holds declarations (may be empty), expr is the generator expression the
// server evaluates and serves. The server vets the source with the static
// analyzer before running it and rejects error-level findings.
func OpenSource(addr, program, expr string, args []value.V, cfg Config) *RemotePipe {
	return &RemotePipe{
		addr: addr,
		cfg:  cfg,
		spec: openReq{mode: openSource, program: program, expr: expr, args: marshalArgs(args)},
	}
}

// marshalArgs encodes the argument vector as one wire list. Encoding
// errors (cyclic arguments) are deferred to open time via a poison value.
func marshalArgs(args []value.V) []byte {
	b, err := wire.Marshal(value.NewList(args...))
	if err != nil {
		return nil // parseOpen side treats empty args as no arguments
	}
	return b
}

// fail records the first fatal stream error.
func (p *RemotePipe) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// start dials and opens the stream. Caller holds p.mu.
func (p *RemotePipe) start() error {
	observed := telemetry.Active()
	if observed && p.stream == 0 {
		p.stream = telemetry.NextStream()
	}
	conn, err := net.DialTimeout("tcp", p.addr, p.cfg.dialTimeout())
	if err != nil {
		return fmt.Errorf("remote: dial %s: %w", p.addr, err)
	}
	open := p.spec
	open.credit = uint64(p.cfg.buffer())
	open.stream = p.stream
	if b := p.cfg.batch(); b > 1 && !p.noBatch {
		open.batch = uint64(b)
	} else {
		// No batch capability to advertise: speak the pre-batching
		// protocol, which every server accepts.
		open.version = 2
	}
	p.batch = int(open.batch)
	p.debt = 0
	if err := writeFrame(conn, frameOpen, open.marshal()); err != nil {
		conn.Close()
		return fmt.Errorf("remote: open %s: %w", p.addr, err)
	}
	p.conn = conn
	p.out = queue.NewArrayBlocking[value.V](p.cfg.buffer())
	if observed {
		p.out = queue.Instrument(p.out, p.stream, "remote")
		cClientStreams.Inc()
		telemetry.Emit(p.stream, telemetry.KindStreamOpen, "remote:"+p.addr, int64(open.credit))
	}
	if inspect.On() {
		if p.stream == 0 {
			p.stream = telemetry.NextStream()
		}
		p.ih = inspect.Register(p.stream, inspect.KindRemoteClient, "remote:"+p.addr)
		p.ih.SetCredit(int64(open.credit))
		probe := p.out
		p.ih.SetDepthProbe(func() (int, int) { return probe.Len(), probe.Cap() })
	} else {
		p.ih = nil
	}
	p.started = true
	p.err = nil
	p.pingStop = make(chan struct{})
	p.done = make(chan struct{})
	go p.readLoop(conn, p.out, p.done, p.stream, p.ih)
	go p.pingLoop(p.pingStop, p.done)
	return nil
}

// readLoop consumes frames into the local bounded queue until the stream
// ends (EOS), errors (ERR / connection loss / malformed frame) or the
// consumer stops the pipe.
func (p *RemotePipe) readLoop(conn net.Conn, out queue.Queue[value.V], done chan struct{}, stream uint64, ih *inspect.Handle) {
	var received int64
	start := time.Now()
	defer func() {
		close(done)
		conn.Close()
		out.Close()
		ih.Close()
		if stream != 0 {
			telemetry.EmitSpan(stream, telemetry.KindStreamEnd, "remote:"+p.addr, received, start)
		}
	}()
	if ih != nil {
		// The read loop is this stream's local producer: label and bind it
		// so stall diagnoses can include its stack and topology edges form.
		defer inspect.BindProducer(ih)()
		pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
			pprof.Labels(inspect.ProducerLabel, inspect.StreamID(ih.ID()))))
		defer pprof.SetGoroutineLabels(context.Background())
	}
	// A peer silent for several heartbeat intervals is lost: PONGs answer
	// our PINGs, so frames normally arrive at least once per interval.
	liveness := 4 * p.cfg.heartbeat()
	for {
		conn.SetReadDeadline(time.Now().Add(liveness))
		typ, payload, err := readFrame(conn)
		if err != nil {
			p.fail(fmt.Errorf("remote: connection lost: %w", err))
			return
		}
		switch typ {
		case frameValue:
			v, err := wire.Unmarshal(payload)
			if err != nil {
				p.fail(fmt.Errorf("remote: malformed value frame: %w", err))
				return
			}
			received++
			if stream != 0 && telemetry.On() {
				cClientValues.Inc()
			}
			if ih != nil {
				ih.BlockedPut()
			}
			if out.Put(v) != nil {
				// Consumer stopped the pipe: tell the producer.
				p.sendFrame(frameCancel, nil)
				return
			}
			if ih != nil {
				ih.Running()
				ih.Produced(1)
			}
		case frameValues:
			vs, err := wire.UnmarshalBatch(payload, wire.DefaultLimits)
			if err != nil {
				p.fail(fmt.Errorf("remote: malformed batch frame: %w", err))
				return
			}
			received += int64(len(vs))
			if stream != 0 && telemetry.On() {
				cClientValues.Add(int64(len(vs)))
			}
			if ih != nil {
				ih.BlockedPut()
			}
			if _, err := out.PutBatch(vs); err != nil {
				p.sendFrame(frameCancel, nil)
				return
			}
			if ih != nil {
				ih.Running()
				ih.Produced(int64(len(vs)))
			}
		case frameEOS:
			return // clean end: generator failed
		case frameErr:
			if p.noteDowngrade(string(payload)) {
				// A pre-batching server refused our v3 OPEN; the teardown in
				// this defer closes out, and the next Next reopens at v2.
				return
			}
			p.fail(&RemoteError{Msg: string(payload)})
			return
		case framePong, framePing:
			// liveness only; PING from the server is tolerated and ignored
		default:
			p.fail(fmt.Errorf("remote: unexpected %s frame", frameName(typ)))
			return
		}
	}
}

// pingLoop keeps the stream alive and detects dead peers while the
// consumer is slow or idle.
func (p *RemotePipe) pingLoop(stop, done chan struct{}) {
	t := time.NewTicker(p.cfg.heartbeat())
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-done:
			return
		case <-t.C:
			if err := p.sendFrame(framePing, nil); err != nil {
				// readLoop surfaces the connection loss; just stop pinging.
				return
			}
		}
	}
}

// noteDowngrade recognizes a version rejection from a pre-batching server
// and arranges a silent reopen at protocol v2 instead of surfacing the
// rejection as a stream error. Only the versioned-OPEN rejection message
// is treated this way, and only once per pipe.
func (p *RemotePipe) noteDowngrade(msg string) bool {
	if !strings.Contains(msg, "protocol version") || !strings.Contains(msg, "want <= ") {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.batch == 0 || p.noBatch {
		return false // we already spoke v2; this is a real error
	}
	p.noBatch = true
	p.redial = true
	return true
}

// flushCredits grants the producer every credit accumulated since the last
// grant in one CREDIT frame. With demand set a frame is sent even when no
// credits are owed: CREDIT(0) is the pure demand ping a consumer about to
// block sends so a batching server flushes its partial run (a pre-batching
// server deposits zero, harmlessly).
func (p *RemotePipe) flushCredits(demand bool) {
	p.mu.Lock()
	debt := p.debt
	p.debt = 0
	stream := p.stream
	p.mu.Unlock()
	if debt == 0 && !demand {
		return
	}
	if stream != 0 && telemetry.On() {
		cCreditsSent.Inc()
	}
	p.sendFrame(frameCredit, creditPayload(debt)) // best effort; loss surfaces in readLoop
}

// sendFrame serializes control-frame writes.
func (p *RemotePipe) sendFrame(typ byte, payload []byte) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	if conn == nil {
		return errors.New("remote: stream not open")
	}
	return writeFrame(conn, typ, payload)
}

// Next takes the next remote result, failing when the serving generator
// has failed (EOS), the stream errored, or the per-call deadline expired.
// Each consumed value grants the producer one replacement credit, so at
// most Buffer values are ever in flight — the §3B throttle, across the
// wire.
func (p *RemotePipe) Next() (value.V, bool) {
	p.mu.Lock()
	if !p.started {
		if err := p.start(); err != nil {
			p.started = true // don't re-dial every Next; Restart resets
			p.err = err
			p.out = queue.NewArrayBlocking[value.V](1)
			p.out.Close()
			p.mu.Unlock()
			return nil, false
		}
	}
	out, conn := p.out, p.conn
	batched := p.batch > 0
	ih := p.ih
	p.mu.Unlock()

	if ih != nil {
		inspect.NoteConsumeOnce(ih)
		ih.BlockedTake()
	}

	var timer *time.Timer
	if d := p.cfg.Deadline; d > 0 {
		timer = time.AfterFunc(d, func() {
			p.fail(ErrDeadline)
			if conn != nil {
				conn.Close()
			}
			out.Close()
		})
	}
	v, ok, err := out.TryTake()
	if err == nil && !ok {
		if batched {
			// About to block on an empty queue: hand back whatever credits
			// we owe and signal demand, so the server ships its partial run
			// instead of waiting to fill a batch.
			p.flushCredits(true)
		}
		v, err = out.Take()
	}
	if timer != nil {
		timer.Stop()
	}
	if err != nil {
		p.mu.Lock()
		if p.redial {
			// The server rejected our v3 OPEN; reopen at v2 transparently.
			p.redial = false
			p.started = false
			p.err = nil
			if p.pingStop != nil {
				close(p.pingStop)
				p.pingStop = nil
			}
			p.conn = nil
			p.mu.Unlock()
			return p.Next()
		}
		p.mu.Unlock()
		return nil, false
	}
	p.mu.Lock()
	p.results++
	p.debt++
	grant := !batched || p.debt >= uint64(p.batch)
	if ih != nil {
		ih.Running()
		ih.Consumed(1)
		// The credit balance is the window minus uncredited consumption:
		// what the server may still send before its next stall.
		ih.SetCredit(int64(uint64(p.cfg.buffer()) - p.debt))
	}
	p.mu.Unlock()
	if grant {
		// Unbatched streams credit every value (the original per-value
		// ACK clock); batched streams coalesce a batch's worth into one
		// frame, with the pre-block demand ping above covering the tail.
		p.flushCredits(false)
	}
	return v, true
}

// Err reports the error that terminated the stream, if any: a
// *RemoteError for server-side producer errors and rejections, ErrDeadline
// for per-call deadline expiry, or a connection/protocol error. A remote
// generator that simply ran to failure leaves Err nil, exactly as
// pipe.Pipe distinguishes exhaustion from producer error.
func (p *RemotePipe) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// StartEager opens the stream immediately instead of on first Next — used
// by distributed map-reduce, where all remote task pipes must run
// concurrently from the moment they are created (Figure 4). Dial errors
// surface on the first Next via Err.
func (p *RemotePipe) StartEager() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		return
	}
	if err := p.start(); err != nil {
		p.started = true
		p.err = err
		p.out = queue.NewArrayBlocking[value.V](1)
		p.out.Close()
	}
}

// stopLocked cancels the current stream. Caller holds p.mu.
func (p *RemotePipe) stopLocked() {
	if p.conn != nil {
		// Best-effort CANCEL so the server can release the stream promptly;
		// closing the connection is the authoritative signal.
		writeFrame(p.conn, frameCancel, nil)
		p.conn.Close()
		p.conn = nil
	}
	if p.pingStop != nil {
		close(p.pingStop)
		p.pingStop = nil
	}
	if p.out != nil {
		p.out.Close()
	}
	p.ih.Close()
}

// Stop terminates the stream without restarting; further Nexts fail until
// Restart. Safe to call at any time, including concurrently with Next.
func (p *RemotePipe) Stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.started {
		p.out = queue.NewArrayBlocking[value.V](1)
		p.out.Close()
		p.started = true
		return
	}
	p.stopLocked()
}

// Restart cancels the stream and arranges for a fresh one — a fresh
// evaluation of the remote generator — on the next Next.
func (p *RemotePipe) Restart() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.stopLocked()
		p.started = false
	}
	p.err = nil
	p.results = 0
}

// Step implements the activation operator @ on the remote pipe.
func (p *RemotePipe) Step(value.V) (value.V, bool) { return p.Next() }

// Refresh implements ^: a new proxy that will open its own fresh stream.
func (p *RemotePipe) Refresh() core.Stepper {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started {
		p.stopLocked()
	}
	return &RemotePipe{addr: p.addr, cfg: p.cfg, spec: p.spec}
}

// Stream reports the telemetry stream ID sent in the OPEN frame — 0
// unless the stream opened while telemetry was active.
func (p *RemotePipe) Stream() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stream
}

// Size reports the number of results taken so far (*P).
func (p *RemotePipe) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.results
}

// Type returns "co-expression": a remote pipe proxies one, like pipe.Pipe.
func (p *RemotePipe) Type() string { return "co-expression" }

// Image identifies the value as a remote pipe.
func (p *RemotePipe) Image() string { return fmt.Sprintf("remote-pipe(%s)", p.addr) }
