package remote

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"junicon/internal/value"
)

// Durable-generator tests: protocol v4 checkpoint/restore, crash
// recovery, live migration, and the redial credit race.

const towerProgram = "def gen(a, b) { suspend a to b; }"

// sourcePipe opens a source stream on a checkpoint-capable server.
func sourcePipe(t *testing.T, addr, expr string, cfg Config) *RemotePipe {
	t.Helper()
	p := OpenSource(addr, towerProgram, expr, nil, cfg)
	t.Cleanup(p.Stop)
	return p
}

func seq(lo, hi int64) []int64 {
	var out []int64
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func eqInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntervalCheckpointArrives: a v4 source stream with CheckpointEvery
// delivers SNAPSHOT frames as it flows, and the client retains the latest.
func TestIntervalCheckpointArrives(t *testing.T) {
	_, addr := startServer(t, func(s *Server) { s.AllowSource = true })
	cfg := testConfig()
	cfg.CheckpointEvery = 4
	p := sourcePipe(t, addr, "1 to 20", cfg)
	got := drainInts(t, p, 100)
	if !eqInts(got, seq(1, 20)) {
		t.Fatalf("sequence %v", got)
	}
	if p.Err() != nil {
		t.Fatalf("err: %v", p.Err())
	}
	// The last interval checkpoint covers a multiple of 4 values; exactly
	// which one depends on read timing, but at least one must have landed.
	within(t, 2*time.Second, "checkpoint arrival", func() {
		for {
			if at, ok := p.Checkpointed(); ok {
				if at == 0 || at%4 != 0 {
					t.Errorf("checkpoint at %d, want a positive multiple of 4", at)
				}
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestNamedStreamRefusesCheckpoint: a registered Go generator is not a vm
// frame; asking it to checkpoint yields a refusal reason, and the stream
// flows on unharmed.
func TestNamedStreamRefusesCheckpoint(t *testing.T) {
	_, addr := startServer(t, nil)
	cfg := testConfig()
	cfg.CheckpointEvery = 2
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(10)}, cfg)
	t.Cleanup(p.Stop)
	got := drainInts(t, p, 100)
	if !eqInts(got, seq(1, 10)) || p.Err() != nil {
		t.Fatalf("sequence %v err %v", got, p.Err())
	}
	within(t, 2*time.Second, "refusal arrival", func() {
		for p.SnapshotRefusal() == "" {
			time.Sleep(5 * time.Millisecond)
		}
	})
	if _, ok := p.Checkpointed(); ok {
		t.Fatal("refused stream should have no snapshot")
	}
}

// TestCrashRecoveryResumesSequence is the protocol-level crash drill: kill
// the connection mid-stream and require the recovered pipe to deliver the
// exact remaining suffix — via RESUME when a checkpoint landed, via replay
// otherwise.
func TestCrashRecoveryResumesSequence(t *testing.T) {
	for _, interval := range []int{0, 3} {
		name := "replay"
		if interval > 0 {
			name = "snapshot"
		}
		t.Run(name, func(t *testing.T) {
			_, addr := startServer(t, func(s *Server) { s.AllowSource = true })
			cfg := testConfig()
			cfg.Recover = true
			cfg.CheckpointEvery = interval
			cfg.RecoverWait = 5 * time.Second
			p := sourcePipe(t, addr, "gen(1, 30)", cfg)
			var got []int64
			got = append(got, drainInts(t, p, 11)...)
			p.KillConn()
			within(t, 10*time.Second, "recovery drain", func() {
				got = append(got, drainInts(t, p, 100)...)
			})
			if p.Err() != nil {
				t.Fatalf("err after recovery: %v", p.Err())
			}
			if !eqInts(got, seq(1, 30)) {
				t.Fatalf("recovered sequence %v, want 1..30", got)
			}
		})
	}
}

// TestRecoveryDisabledStaysFatal: without Config.Recover a severed
// connection is a stream error, exactly as before v4.
func TestRecoveryDisabledStaysFatal(t *testing.T) {
	_, addr := startServer(t, func(s *Server) { s.AllowSource = true })
	p := sourcePipe(t, addr, "1 to 30", testConfig())
	drainInts(t, p, 5)
	p.KillConn()
	within(t, 5*time.Second, "post-kill drain", func() { drainInts(t, p, 100) })
	if p.Err() == nil {
		t.Fatal("want connection-loss error")
	}
}

// TestLiveMigrationMovesStream: iterate a stream on node A, migrate to
// node B mid-iteration, and require one unbroken sequence. Both the
// snapshot handshake (v4 SNAPREQ) and the resulting RESUME-on-B land here.
func TestLiveMigrationMovesStream(t *testing.T) {
	_, addrA := startServer(t, func(s *Server) { s.AllowSource = true })
	srvB, addrB := startServer(t, func(s *Server) { s.AllowSource = true })
	cfg := testConfig()
	cfg.CheckpointEvery = 4
	p := sourcePipe(t, addrA, "gen(1, 40)", cfg)
	got := drainInts(t, p, 13)
	within(t, 10*time.Second, "migration", func() {
		if err := p.Migrate(addrB); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	within(t, 10*time.Second, "post-migration drain", func() {
		got = append(got, drainInts(t, p, 100)...)
	})
	if p.Err() != nil {
		t.Fatalf("err after migration: %v", p.Err())
	}
	if !eqInts(got, seq(1, 40)) {
		t.Fatalf("migrated sequence %v, want 1..40", got)
	}
	// The target genuinely served the tail: node B saw a stream.
	if srvB.Served() == 0 {
		t.Fatal("target node served no stream")
	}
}

// TestMigrationReplayFallback: migrating a stream whose generator refuses
// to snapshot (named Go generator) falls back to deterministic replay on
// the target — still no values lost or duplicated.
func TestMigrationReplayFallback(t *testing.T) {
	_, addrA := startServer(t, nil)
	_, addrB := startServer(t, nil)
	p := Open(addrA, "range", []value.V{value.NewInt(1), value.NewInt(25)}, testConfig())
	t.Cleanup(p.Stop)
	got := drainInts(t, p, 7)
	within(t, 10*time.Second, "migration", func() {
		if err := p.Migrate(addrB); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	within(t, 10*time.Second, "post-migration drain", func() {
		got = append(got, drainInts(t, p, 100)...)
	})
	if p.Err() != nil {
		t.Fatalf("err after migration: %v", p.Err())
	}
	if !eqInts(got, seq(1, 25)) {
		t.Fatalf("migrated sequence %v, want 1..25", got)
	}
}

// TestResumeRejectedFallsBackToReplay: a client holding a snapshot whose
// target refuses RESUME (source streams disabled there) must drop the blob
// and still recover the exact sequence by replay... which a named-mode
// pipe can do on any v4 server. Source-mode pipes surface the rejection
// only if replay is impossible too.
func TestResumeRejectedFallsBackToReplay(t *testing.T) {
	_, addrA := startServer(t, func(s *Server) { s.AllowSource = true })
	_, addrB := startServer(t, func(s *Server) { s.AllowSource = true })
	cfg := testConfig()
	cfg.Recover = true
	cfg.CheckpointEvery = 2
	p := sourcePipe(t, addrA, "1 to 20", cfg)
	got := drainInts(t, p, 9)
	// Poison the snapshot so the target rejects the RESUME structurally,
	// forcing the rejected-resume path rather than a clean restore.
	p.mu.Lock()
	if p.lastSnap != nil {
		p.lastSnap[len(p.lastSnap)-1] ^= 0x5a
	}
	p.mu.Unlock()
	within(t, 10*time.Second, "migration", func() {
		if err := p.Migrate(addrB); err != nil {
			t.Errorf("migrate: %v", err)
		}
	})
	within(t, 10*time.Second, "post-migration drain", func() {
		got = append(got, drainInts(t, p, 100)...)
	})
	if p.Err() != nil {
		t.Fatalf("err: %v", p.Err())
	}
	if !eqInts(got, seq(1, 20)) {
		t.Fatalf("sequence %v, want 1..20", got)
	}
}

// TestCheckpointDirPersists: a server with CheckpointDir keeps the latest
// snapshot of each stream on disk, atomically renamed into place.
func TestCheckpointDirPersists(t *testing.T) {
	dir := t.TempDir()
	_, addr := startServer(t, func(s *Server) {
		s.AllowSource = true
		s.CheckpointDir = dir
	})
	cfg := testConfig()
	cfg.CheckpointEvery = 5
	p := sourcePipe(t, addr, "1 to 20", cfg)
	if got := drainInts(t, p, 100); !eqInts(got, seq(1, 20)) {
		t.Fatalf("sequence %v", got)
	}
	within(t, 2*time.Second, "snapshot file", func() {
		for {
			files, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
			if len(files) > 0 {
				if data, err := os.ReadFile(files[0]); err != nil || len(data) == 0 ||
					!strings.HasPrefix(string(data), "JSNP") {
					t.Errorf("persisted snapshot unreadable: %v (%d bytes)", err, len(data))
				}
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// TestRedialCreditGrantCannotDoubleGrant pins the credit/redial race: a
// CREDIT grant captures its debt under p.mu, then writes later — and a
// redial (recovery, migration, downgrade) can swap the connection in
// between. The new incarnation already opened with a full-buffer grant, so
// the stale grant landing on its connection would raise the server's
// credit window above the §3B bound. The epoch check must drop it.
//
// Without the epoch validation in sendFrameEpoch this test fails: the
// stale CREDIT(3) frame arrives on conn B.
func TestRedialCreditGrantCannotDoubleGrant(t *testing.T) {
	aClient, aServer := net.Pipe()
	bClient, bServer := net.Pipe()
	defer aClient.Close()
	defer aServer.Close()
	defer bClient.Close()
	defer bServer.Close()

	p := &RemotePipe{addr: "test"}
	p.tr = &connTransport{conn: aClient}
	p.epoch = 1
	p.debt = 3

	// Interleave a redial between the debt capture and the CREDIT write:
	// exactly what Next's recovery path does when the connection drops
	// while a grant is in flight.
	testHookFlushPause = func() {
		p.mu.Lock()
		p.tr = &connTransport{conn: bClient}
		p.epoch++ // the reopened stream's incarnation
		p.mu.Unlock()
	}
	defer func() { testHookFlushPause = nil }()

	flushed := make(chan struct{})
	go func() {
		defer close(flushed)
		p.flushCredits(false)
	}()

	// The stale grant must NOT arrive on the new connection.
	bServer.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	buf := make([]byte, 16)
	if n, err := bServer.Read(buf); err == nil {
		t.Fatalf("stale CREDIT grant reached the new stream: % x", buf[:n])
	}
	within(t, time.Second, "flushCredits return", func() { <-flushed })

	// And the debt was genuinely consumed — not silently re-queued where a
	// later flush would double-grant it after all.
	p.mu.Lock()
	debt := p.debt
	p.mu.Unlock()
	if debt != 0 {
		t.Fatalf("debt %d re-queued after drop; stale credits must vanish", debt)
	}
}

// TestFreshGrantStillFlows sanity-checks the fix's other side: a grant
// whose epoch matches the live connection is written normally.
func TestFreshGrantStillFlows(t *testing.T) {
	aClient, aServer := net.Pipe()
	defer aClient.Close()
	defer aServer.Close()
	p := &RemotePipe{addr: "test"}
	p.tr = &connTransport{conn: aClient}
	p.epoch = 1
	p.debt = 5

	got := make(chan []byte, 1)
	go func() {
		typ, payload, err := readFrame(aServer)
		if err != nil || typ != frameCredit {
			got <- nil
			return
		}
		got <- payload
	}()
	p.flushCredits(false)
	within(t, time.Second, "credit arrival", func() {
		payload := <-got
		if payload == nil {
			t.Error("no CREDIT frame arrived")
			return
		}
		n, err := parseCredit(payload)
		if err != nil || n != 5 {
			t.Errorf("credit %d err %v, want 5", n, err)
		}
	})
}

// TestV4OpenCodecRoundTrip pins the new OPEN fields and the RESUME frame
// codec at the byte level.
func TestV4OpenCodecRoundTrip(t *testing.T) {
	blob := []byte("JSNP-fake-blob")
	cases := []openReq{
		{mode: openNamed, credit: 7, stream: 9, batch: 16, interval: 100, skip: 3, name: "range"},
		{mode: openSource, credit: 1, interval: 0, skip: 0, program: "def f() { return 1; }", expr: "f()"},
		{mode: openResume, credit: 8, stream: 2, batch: 4, interval: 10, skip: 5, blob: blob},
	}
	for _, want := range cases {
		got, err := parseOpen(want.marshal(), openVersion)
		if err != nil {
			t.Fatalf("mode %d: %v", want.mode, err)
		}
		if got.mode != want.mode || got.credit != want.credit || got.stream != want.stream ||
			got.batch != want.batch || got.interval != want.interval || got.skip != want.skip ||
			got.name != want.name || got.program != want.program || got.expr != want.expr ||
			string(got.blob) != string(want.blob) {
			t.Fatalf("mode %d round trip:\n got %+v\nwant %+v", want.mode, got, want)
		}
	}
	// A v4 frame to a v3-capped server is rejected with the versioned
	// message clients downgrade from.
	if _, err := parseOpen((&openReq{mode: openNamed, name: "x"}).marshal(), 3); err == nil ||
		!strings.Contains(err.Error(), "want <= 3") {
		t.Fatalf("v4-to-v3 rejection: %v", err)
	}
	// RESUME mode cannot be smuggled into a pre-v4 payload.
	bad := openReq{mode: openResume, version: 3, blob: blob}
	if _, err := parseOpen(bad.marshal(), openVersion); err == nil {
		t.Fatal("openResume at v3 must be rejected")
	}
}

// TestSnapshotPayloadCodec pins the SNAPSHOT frame codec.
func TestSnapshotPayloadCodec(t *testing.T) {
	for _, tc := range []struct {
		produced uint64
		ok       bool
		rest     string
	}{
		{0, false, "not a compiled frame"},
		{12345, true, "JSNP..."},
	} {
		produced, ok, rest, err := parseSnapshot(snapshotPayload(tc.produced, tc.ok, []byte(tc.rest)))
		if err != nil || produced != tc.produced || ok != tc.ok || string(rest) != tc.rest {
			t.Fatalf("round trip %+v: got (%d,%v,%q,%v)", tc, produced, ok, rest, err)
		}
	}
	if _, _, _, err := parseSnapshot(nil); err == nil {
		t.Fatal("empty SNAPSHOT payload must error")
	}
}

// TestRecoverySkipPastEOS: recovering a stream that already ended gets a
// clean EOS, not a hang or duplicate values.
func TestRecoverySkipPastEOS(t *testing.T) {
	_, addr := startServer(t, func(s *Server) { s.AllowSource = true })
	cfg := testConfig()
	cfg.Recover = true
	p := sourcePipe(t, addr, "1 to 6", cfg)
	got := drainInts(t, p, 100)
	if !eqInts(got, seq(1, 6)) || p.Err() != nil {
		t.Fatalf("sequence %v err %v", got, p.Err())
	}
	// Migrating (or otherwise reopening) after EOS: the replayed stream
	// skips everything and ends immediately.
	within(t, 10*time.Second, "post-EOS migrate", func() {
		if err := p.Migrate(addr); err != nil {
			t.Errorf("migrate: %v", err)
		}
		if extra := drainInts(t, p, 10); len(extra) != 0 {
			t.Errorf("post-EOS values %v", extra)
		}
	})
	if p.Err() != nil {
		t.Fatalf("err: %v", p.Err())
	}
}

func init() {
	// Guard against a test forgetting to clear the hook.
	_ = fmt.Sprintf
}
