package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"junicon/internal/inspect"
	"junicon/internal/queue"
	"junicon/internal/telemetry"
	"junicon/internal/value"
	"junicon/internal/wire"
)

// Multiplexed sessions (protocol v5): one TCP connection carrying many
// logical streams. The handshake is a classic-framed OPEN in mode openMux
// answered by a classic HELLO; from there every frame in both directions
// carries a stream id (readMux/appendMuxFrame), a single shared writer
// goroutine per connection coalesces all streams' frames into large
// writes (PR 4's Nagle-style batching, stretched across the whole
// connection), credit accounting stays per stream — the §3B buffer bound
// throttles each producer independently — and PING/PONG liveness runs
// once per connection on stream id 0 instead of once per stream.

// Session-level telemetry. The flush histogram is the headline: how many
// bytes each coalesced write carried tells you whether the shared writer
// is actually amortizing syscalls across streams.
var (
	cMuxFlushes = telemetry.NewCounter("remote.mux.flushes")
	hMuxFlush   = telemetry.NewHistogram("remote.mux.flush_bytes")
	gMuxSess    = telemetry.NewGauge("remote.mux.sessions")
	cMuxStreams = telemetry.NewCounter("remote.mux.streams_total")
)

// muxSessions counts live sessions process-wide (both ends), mirrored
// into the gauge when telemetry is on.
var muxSessions atomic.Int64

// DefaultStreamsPerConn caps the logical streams a Dialer multiplexes
// onto one session before dialing another connection.
const DefaultStreamsPerConn = 256

// maxSessionPending bounds the shared writer's pending buffer. When the
// connection cannot drain this much, enqueue blocks — the per-connection
// backpressure the watchdog diagnoses as conn-backpressure.
var maxSessionPending = 8 << 20

// errMuxUnsupported reports that the far daemon predates protocol v5.
// The Dialer caches it per address and opens dedicated v4 connections
// there instead — the transparent downgrade.
var errMuxUnsupported = errors.New("remote: server does not support multiplexed sessions")

// muxIO is a session's shared write side, symmetric between client and
// server: frames from every stream append to one pending buffer, and a
// single writer goroutine swaps the buffer out and hands it to the kernel
// in one Write — frames from concurrent streams coalesce into large
// writes exactly as a batched pipe coalesces values into runs.
type muxIO struct {
	conn net.Conn
	ih   *inspect.Handle // the session handle: the writer's visible state
	done chan struct{}   // writer goroutine exited

	mu      sync.Mutex
	work    sync.Cond // frames pending
	space   sync.Cond // pending shrank below the bound
	pending []byte
	spare   []byte // recycled swap buffer
	err     error
	closed  bool
}

func newMuxIO(conn net.Conn, ih *inspect.Handle) *muxIO {
	m := &muxIO{conn: conn, ih: ih, done: make(chan struct{})}
	m.work.L = &m.mu
	m.space.L = &m.mu
	go m.run()
	return m
}

// enqueue appends one multiplexed frame and wakes the writer. It blocks
// while the pending buffer is over maxSessionPending — the connection is
// not draining, so every producer on it stalls together (the watchdog's
// conn-backpressure cause).
func (m *muxIO) enqueue(typ byte, sid uint32, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("remote: %s payload %d exceeds MaxFrame", frameName(typ), len(payload))
	}
	m.mu.Lock()
	for len(m.pending) >= maxSessionPending && m.err == nil && !m.closed {
		m.space.Wait()
	}
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return err
	}
	if m.closed {
		m.mu.Unlock()
		return fmt.Errorf("%w: session closed", errConnLost)
	}
	m.pending = appendMuxFrame(m.pending, typ, sid, payload)
	m.work.Signal()
	m.mu.Unlock()
	return nil
}

// run is the per-connection writer: swap out whatever is pending and
// write it in one call. The blocked-put bracket around conn.Write is what
// makes a stuck connection diagnosable — the session handle sitting in
// blocked-put past the stall threshold is the shared writer wedged on a
// peer that stopped reading.
func (m *muxIO) run() {
	m.mu.Lock()
	for {
		for len(m.pending) == 0 && m.err == nil && !m.closed {
			m.work.Wait()
		}
		if m.err != nil || len(m.pending) == 0 {
			m.mu.Unlock()
			close(m.done)
			return
		}
		batch := m.pending
		m.pending = m.spare[:0]
		m.spare = nil
		m.space.Broadcast()
		m.mu.Unlock()
		m.ih.BlockedPut()
		_, werr := m.conn.Write(batch)
		m.ih.Running()
		m.ih.Produced(1) // one flush; touches lastActive for staleness
		if telemetry.On() {
			cMuxFlushes.Inc()
			hMuxFlush.Observe(int64(len(batch)))
		}
		m.mu.Lock()
		if cap(batch) <= maxSessionPending {
			m.spare = batch[:0]
		}
		if werr != nil && m.err == nil {
			m.err = fmt.Errorf("%w: %v", errConnLost, werr)
			m.space.Broadcast()
		}
	}
}

// fail poisons the writer and severs the connection: blocked enqueues
// return err, and a writer wedged in conn.Write is unblocked by the
// close.
func (m *muxIO) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.work.Broadcast()
	m.space.Broadcast()
	m.mu.Unlock()
	m.conn.Close()
}

// close drains pending frames and closes the connection — the graceful
// shutdown, bounded by a write deadline so a dead peer cannot hang it.
func (m *muxIO) close() {
	m.mu.Lock()
	m.closed = true
	m.work.Broadcast()
	m.space.Broadcast()
	m.mu.Unlock()
	m.conn.SetWriteDeadline(time.Now().Add(time.Second))
	<-m.done
	m.conn.Close()
}

// muxRx is the client-side receive state of one logical stream on a
// session — what the dedicated-connection path keeps on its readLoop
// goroutine's stack lives here instead, because the session's single read
// goroutine demultiplexes frames for every stream.
type muxRx struct {
	p        *RemotePipe
	sid      uint32
	stream   uint64 // telemetry stream ID (the OPEN's, stitching traces)
	label    string // span label, captured at open (addr can change later)
	out      queue.Queue[value.V]
	ih       *inspect.Handle
	done     chan struct{}
	received atomic.Int64
	start    time.Time
}

// close completes the stream's local state. Exactly-once is guaranteed by
// the demux table: an rx is only ever reachable through it, and finish
// removes it before closing.
func (rx *muxRx) close() {
	close(rx.done)
	rx.out.Close()
	rx.ih.Close()
	if rx.stream != 0 {
		telemetry.EmitSpan(rx.stream, telemetry.KindStreamEnd, rx.label, rx.received.Load(), rx.start)
	}
}

// Session is one multiplexed connection on the client side: the shared
// writer, the demultiplexing read loop, the per-connection heartbeat, and
// the table of live logical streams.
type Session struct {
	addr string
	id   uint64 // connection id: labels, /debug/streams grouping
	hb   time.Duration
	io   *muxIO
	ih   *inspect.Handle
	d    *Dialer
	done chan struct{}

	mu      sync.Mutex
	streams map[uint32]*muxRx
	pending int // reserved-but-not-yet-opened slots (Dialer cap accounting)
	nextSID uint32
	opened  uint64
	closed  bool

	vals []value.V // VALUES decode scratch; read goroutine only
}

// dialSession dials addr and performs the v5 handshake. A pre-v5 server
// rejects the versioned OPEN with the standard downgrade message, which
// surfaces as errMuxUnsupported; anything else is a real dial failure.
func dialSession(d *Dialer, addr string) (*Session, error) {
	conn, err := net.DialTimeout("tcp", addr, d.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	id := telemetry.NextStream()
	hello := openReq{
		mode:    openMux,
		version: sessionVersion,
		credit:  uint64(d.streamsPerConn()),
		stream:  id,
	}
	if err := writeFrame(conn, frameOpen, hello.marshal()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: session open %s: %w", addr, err)
	}
	conn.SetReadDeadline(time.Now().Add(d.dialTimeout()))
	typ, payload, err := readFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("remote: session open %s: %w", addr, err)
	}
	switch typ {
	case frameHello:
	case frameErr:
		conn.Close()
		if n, ok := versionCap(string(payload)); ok && n < sessionVersion {
			return nil, errMuxUnsupported
		}
		return nil, &RemoteError{Msg: string(payload)}
	default:
		conn.Close()
		return nil, fmt.Errorf("remote: session open %s: unexpected %s frame", addr, frameName(typ))
	}
	conn.SetReadDeadline(time.Time{})
	s := &Session{
		addr:    addr,
		id:      id,
		hb:      d.heartbeat(),
		d:       d,
		done:    make(chan struct{}),
		streams: make(map[uint32]*muxRx),
	}
	s.ih = inspect.Register(id, inspect.KindSession, "session:"+addr)
	s.ih.SetConn(id)
	s.io = newMuxIO(conn, s.ih)
	if n := muxSessions.Add(1); telemetry.On() {
		gMuxSess.Set(n)
	}
	go s.readLoop()
	go s.pingLoop()
	return s, nil
}

// Addr reports the session's dialed address.
func (s *Session) Addr() string { return s.addr }

// ID reports the session's connection id (telemetry stream-ID space).
func (s *Session) ID() uint64 { return s.id }

// Streams reports the live logical stream count.
func (s *Session) Streams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// count reports live plus reserved streams — the Dialer's pooling key.
func (s *Session) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams) + s.pending
}

// tryReserve claims a stream slot under limit, counting live and claimed
// slots both, so concurrent opens cannot overshoot the streams-per-conn
// cap; openStream consumes the claim.
func (s *Session) tryReserve(limit int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || len(s.streams)+s.pending >= limit {
		return false
	}
	s.pending++
	return true
}

// openStream registers the stream's receive state and enqueues its OPEN
// (or RESUME). rx must be fully armed before the call: frames may land
// the moment the OPEN reaches the wire.
func (s *Session) openStream(rx *muxRx, typ byte, payload []byte) (uint32, error) {
	s.mu.Lock()
	if s.pending > 0 {
		s.pending--
	}
	if s.closed {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: session closed", errConnLost)
	}
	s.nextSID++
	sid := s.nextSID
	rx.sid = sid
	s.streams[sid] = rx
	s.opened++
	s.mu.Unlock()
	if telemetry.On() {
		cMuxStreams.Inc()
	}
	if err := s.io.enqueue(typ, sid, payload); err != nil {
		s.mu.Lock()
		delete(s.streams, sid)
		s.mu.Unlock()
		return 0, err
	}
	return sid, nil
}

// finish completes one logical stream: remove it from the demux table and
// close its local state. Late frames for the id simply miss the table.
func (s *Session) finish(sid uint32) {
	s.mu.Lock()
	rx := s.streams[sid]
	delete(s.streams, sid)
	s.mu.Unlock()
	if rx != nil {
		rx.close()
	}
}

// closeStream cancels one logical stream (consumer-side Stop): a
// best-effort CANCEL so the server releases its producer promptly, then
// local completion. Siblings on the session are untouched. A stream that
// already left the demux table (EOS, ERR, teardown) needs no CANCEL —
// its server producer is gone, and skipping the frame keeps the
// stop-after-drain path off the wire entirely.
func (s *Session) closeStream(sid uint32) {
	s.mu.Lock()
	_, live := s.streams[sid]
	s.mu.Unlock()
	if !live {
		return
	}
	s.io.enqueue(frameCancel, sid, nil)
	s.finish(sid)
}

// Kill severs the connection abruptly — the chaos hook. Every stream on
// the session fails with connection loss, exactly as a crashed peer
// looks.
func (s *Session) Kill() { s.io.conn.Close() }

// Close fails open streams and closes the connection. The Dialer calls
// this on Close; streams ending normally never do.
func (s *Session) Close() {
	s.teardown(fmt.Errorf("%w: session closed", errConnLost))
}

// teardown fails every open stream and retires the session. Idempotent;
// runs from the read loop (connection loss or protocol violation) or
// Close.
func (s *Session) teardown(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	streams := s.streams
	s.streams = make(map[uint32]*muxRx)
	s.mu.Unlock()
	s.io.fail(err)
	for _, rx := range streams {
		rx.p.fail(err)
		rx.close()
	}
	s.ih.Close()
	if n := muxSessions.Add(-1); telemetry.On() {
		gMuxSess.Set(n)
	}
	close(s.done)
	if s.d != nil {
		s.d.drop(s.addr, s)
	}
}

// readLoop demultiplexes inbound frames onto the per-stream receive
// state. Stream id 0 is connection liveness; everything else dispatches
// by id, and ids missing from the table (finished streams) are dropped —
// a server flush can legitimately race a cancel.
func (s *Session) readLoop() {
	fr := newFrameReader(s.io.conn)
	liveness := 4 * s.hb
	var ferr error
loop:
	for {
		s.io.conn.SetReadDeadline(time.Now().Add(liveness))
		typ, sid, payload, err := fr.readMux()
		if err != nil {
			ferr = fmt.Errorf("%w: %v", errConnLost, err)
			break
		}
		if sid == 0 {
			switch typ {
			case framePing:
				s.io.enqueue(framePong, 0, nil)
			case framePong:
			default:
				ferr = fmt.Errorf("remote: unexpected session-level %s frame", frameName(typ))
				break loop
			}
			continue
		}
		s.mu.Lock()
		rx := s.streams[sid]
		s.mu.Unlock()
		if rx == nil {
			continue
		}
		if !s.handleStreamFrame(rx, typ, payload) {
			s.finish(sid)
		}
	}
	s.teardown(ferr)
}

// handleStreamFrame applies one inbound frame to a logical stream — the
// session-side mirror of RemotePipe.readLoop's switch. Returns false when
// the stream is finished (EOS, ERR, consumer gone, malformed frame).
//
// The put into the stream's bounded queue cannot stall the demux loop in
// a conforming exchange: the §3B credit protocol guarantees the server
// never has more values in flight than the client's queue has room for,
// so one slow consumer's stream fills its own window and stalls its own
// producer (on the server, in acquire) — never its siblings' frames.
func (s *Session) handleStreamFrame(rx *muxRx, typ byte, payload []byte) bool {
	p := rx.p
	switch typ {
	case frameValue:
		v, err := wire.Unmarshal(payload)
		if err != nil {
			p.fail(fmt.Errorf("remote: malformed value frame: %w", err))
			return false
		}
		rx.received.Add(1)
		if rx.stream != 0 && telemetry.On() {
			cClientValues.Inc()
		}
		if rx.out.Put(v) != nil {
			s.io.enqueue(frameCancel, rx.sid, nil)
			return false
		}
		rx.ih.Produced(1)
	case frameValues:
		var err error
		s.vals, err = wire.UnmarshalBatchInto(s.vals[:0], payload, wire.DefaultLimits)
		if err != nil {
			p.fail(fmt.Errorf("remote: malformed batch frame: %w", err))
			return false
		}
		rx.received.Add(int64(len(s.vals)))
		if rx.stream != 0 && telemetry.On() {
			cClientValues.Add(int64(len(s.vals)))
		}
		if _, err := rx.out.PutBatch(s.vals); err != nil {
			s.io.enqueue(frameCancel, rx.sid, nil)
			return false
		}
		rx.ih.Produced(int64(len(s.vals)))
	case frameEOS:
		return false
	case frameSnapshot:
		produced, ok, rest, err := parseSnapshot(payload)
		if err != nil {
			p.fail(err)
			return false
		}
		p.noteSnapshot(produced, ok, rest)
	case frameErr:
		p.fail(&RemoteError{Msg: string(payload)})
		return false
	case framePing, framePong:
		// tolerated on a stream id, as on dedicated connections
	default:
		p.fail(fmt.Errorf("remote: unexpected %s frame", frameName(typ)))
		return false
	}
	return true
}

// pingLoop keeps the connection alive — one heartbeat per connection,
// however many streams it carries, where v4 paid one per stream.
func (s *Session) pingLoop() {
	t := time.NewTicker(s.hb)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			if s.io.enqueue(framePing, 0, nil) != nil {
				return
			}
		}
	}
}
