package remote

import (
	"errors"
	"sync"
	"time"

	"junicon/internal/value"
)

// Dialer pools multiplexed sessions per address: pipes opened through it
// share connections, up to StreamsPerConn logical streams each, instead
// of dialing one TCP connection per stream. A client holding thousands of
// concurrent remote generators pays ceil(n/cap) sockets, read loops and
// heartbeat timers rather than n — the "engines as lightweight agents
// behind one channel" economics the mesh roadmap needs.
//
// Addresses whose daemon predates protocol v5 are detected on the first
// dial and remembered: pipes there silently fall back to the classic
// one-connection-per-stream transport, so a mixed-version fleet works
// unchanged.
//
// The zero value is ready to use. A Dialer is safe for concurrent use.
type Dialer struct {
	// StreamsPerConn caps logical streams per session; a new connection is
	// dialed when every pooled session is full. <= 0 selects
	// DefaultStreamsPerConn.
	StreamsPerConn int
	// Heartbeat is the per-connection PING interval; <= 0 selects
	// DefaultHeartbeat. Liveness is per connection: one timer however many
	// streams the session carries.
	Heartbeat time.Duration
	// DialTimeout bounds session establishment (TCP dial + v5 handshake);
	// <= 0 selects DefaultDialTimeout.
	DialTimeout time.Duration

	mu       sync.Mutex
	sessions map[string][]*Session
	noMux    map[string]bool // addresses that rejected the v5 handshake
	closed   bool
}

func (d *Dialer) streamsPerConn() int {
	if d.StreamsPerConn <= 0 {
		return DefaultStreamsPerConn
	}
	return d.StreamsPerConn
}

func (d *Dialer) heartbeat() time.Duration {
	if d.Heartbeat <= 0 {
		return DefaultHeartbeat
	}
	return d.Heartbeat
}

func (d *Dialer) dialTimeout() time.Duration {
	if d.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return d.DialTimeout
}

// Open is remote.Open through the pool: the returned pipe opens its
// stream on a shared session (or a dedicated connection when the server
// is pre-v5). Semantics are otherwise identical.
func (d *Dialer) Open(addr, name string, args []value.V, cfg Config) *RemotePipe {
	p := Open(addr, name, args, cfg)
	p.dialer = d
	return p
}

// OpenSource is remote.OpenSource through the pool.
func (d *Dialer) OpenSource(addr, program, expr string, args []value.V, cfg Config) *RemotePipe {
	p := OpenSource(addr, program, expr, args, cfg)
	p.dialer = d
	return p
}

// session returns a pooled session for addr with one stream slot
// reserved, dialing a new connection only when every live session is at
// the cap. Dialing happens under the pool lock deliberately: a thousand
// concurrent opens must produce ceil(n/cap) connections, not a thundering
// herd of dials. Returns errMuxUnsupported (cached per address) when the
// daemon there is pre-v5.
func (d *Dialer) session(addr string) (*Session, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, errors.New("remote: dialer closed")
	}
	if d.noMux[addr] {
		return nil, errMuxUnsupported
	}
	if d.sessions == nil {
		d.sessions = make(map[string][]*Session)
	}
	limit := d.streamsPerConn()
	live := d.sessions[addr][:0]
	var pick *Session
	for _, s := range d.sessions[addr] {
		select {
		case <-s.done:
			continue // dead: prune
		default:
		}
		live = append(live, s)
		if pick == nil && s.tryReserve(limit) {
			pick = s
		}
	}
	d.sessions[addr] = live
	if pick != nil {
		return pick, nil
	}
	s, err := dialSession(d, addr)
	if err != nil {
		if errors.Is(err, errMuxUnsupported) {
			if d.noMux == nil {
				d.noMux = make(map[string]bool)
			}
			d.noMux[addr] = true
		}
		return nil, err
	}
	s.tryReserve(limit)
	d.sessions[addr] = append(d.sessions[addr], s)
	return s, nil
}

// drop forgets a dead session; its teardown calls this.
func (d *Dialer) drop(addr string, dead *Session) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ss := d.sessions[addr]
	for i, s := range ss {
		if s == dead {
			d.sessions[addr] = append(ss[:i], ss[i+1:]...)
			return
		}
	}
}

// Sessions reports the live pooled session count across all addresses —
// the socket count the pool is holding.
func (d *Dialer) Sessions() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, ss := range d.sessions {
		for _, s := range ss {
			select {
			case <-s.done:
			default:
				n++
			}
		}
	}
	return n
}

// Close fails every pooled session — open streams on them error with
// connection loss — and marks the dialer unusable.
func (d *Dialer) Close() {
	d.mu.Lock()
	d.closed = true
	var all []*Session
	for _, ss := range d.sessions {
		all = append(all, ss...)
	}
	d.sessions = nil
	d.mu.Unlock()
	for _, s := range all {
		s.Close()
	}
}
