package remote

import (
	"net"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/inspect"
	"junicon/internal/value"
)

// TestWatchdogConnBackpressure: a session peer that stops reading wedges
// the shared writer in its socket write; the watchdog must name the new
// cause on the session handle. This is the stall shape none of the older
// causes cover — credits are plentiful and the consumer is "present",
// but the connection itself is the bottleneck, and every stream on it
// stalls together.
func TestWatchdogConnBackpressure(t *testing.T) {
	inspect.Reset()
	inspect.Enable()
	t.Cleanup(func() {
		inspect.Disable()
		inspect.Reset()
	})
	// Shrink the shared writer's pending bound so the wedge needs only the
	// socket buffers' worth of unread data, not 8MB.
	oldPending := maxSessionPending
	maxSessionPending = 64 << 10
	t.Cleanup(func() { maxSessionPending = oldPending })

	_, addr := startServer(t, func(s *Server) {
		s.Register("flood", func(args []value.V) (core.Gen, error) {
			return core.IntRange(1, 1<<40), nil
		})
	})

	// A raw v5 peer: complete the session handshake, open one stream with
	// an enormous credit window, then never read another byte. The server
	// producer free-runs into the shared writer until the TCP buffers and
	// the pending bound fill.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	hello := &openReq{mode: openMux, version: sessionVersion, credit: 16, stream: 77}
	if err := writeFrame(conn, frameOpen, hello.marshal()); err != nil {
		t.Fatalf("handshake write: %v", err)
	}
	typ, _, err := readFrame(conn)
	if err != nil || typ != frameHello {
		t.Fatalf("handshake reply: typ=%d err=%v", typ, err)
	}
	open := &openReq{mode: openNamed, name: "flood", credit: 1 << 30, batch: 64, stream: 78}
	if _, err := conn.Write(appendMuxFrame(nil, frameOpen, 1, open.marshal())); err != nil {
		t.Fatalf("stream open: %v", err)
	}

	w := inspect.StartWatchdog(inspect.WatchdogConfig{
		Period:    time.Hour, // manual Scan only
		Threshold: 50 * time.Millisecond,
	})
	t.Cleanup(w.Stop)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, d := range w.Scan() {
			if d.Cause == inspect.CauseConnBackpressure {
				if d.Kind != inspect.KindSession {
					t.Fatalf("conn-backpressure on kind %q, want session", d.Kind)
				}
				// The group view must surface the same diagnosis keyed by
				// the connection, so /debug/streams tells the story at a
				// glance.
				groups := inspect.ConnGroups(inspect.Snapshot())
				for _, g := range groups {
					if g.Diagnosis == inspect.CauseConnBackpressure {
						return
					}
				}
				t.Fatalf("no conn group carries the diagnosis: %+v", groups)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no conn-backpressure diagnosis; have %+v", inspect.Diagnoses())
}
