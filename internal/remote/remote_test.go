package remote

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/pipe"
	"junicon/internal/value"
)

// testConfig keeps test streams snappy: small heartbeat so liveness
// detection fires in milliseconds, not seconds.
func testConfig() Config {
	return Config{Buffer: 8, Heartbeat: 25 * time.Millisecond, DialTimeout: time.Second}
}

// startServer runs a server with the standard test registry on a loopback
// port and returns its address.
func startServer(t *testing.T, mutate func(*Server)) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Register("range", func(args []value.V) (core.Gen, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("range wants 2 args, got %d", len(args))
		}
		i := value.MustInt(args[0])
		j := value.MustInt(args[1])
		return core.IntRange(int64(i), int64(j)), nil
	})
	s.Register("fail", func(args []value.V) (core.Gen, error) {
		return core.Empty(), nil
	})
	s.Register("boom", func(args []value.V) (core.Gen, error) {
		return core.NewGen(func(yield func(value.V) bool) {
			yield(value.NewInt(1))
			value.Raise(value.ErrNumeric, "numeric expected", value.String("x"))
		}), nil
	})
	s.Register("panic", func(args []value.V) (core.Gen, error) {
		return core.NewGen(func(yield func(value.V) bool) {
			yield(value.NewInt(1))
			panic("foreign producer panic")
		}), nil
	})
	if mutate != nil {
		mutate(s)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start server: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr.String()
}

// within fails the test if f does not complete in d — the protocol's
// promise is "error, never hang", and these tests hold it to that.
func within(t *testing.T, d time.Duration, what string, f func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not complete within %v", what, d)
	}
}

func drainInts(t *testing.T, g value.Gen, max int) []int64 {
	t.Helper()
	var out []int64
	for len(out) < max {
		v, ok := g.Next()
		if !ok {
			break
		}
		i, ok := value.ToInteger(value.Deref(v))
		if !ok {
			t.Fatalf("non-integer result %s", value.Image(v))
		}
		n, _ := i.Int64()
		out = append(out, n)
	}
	return out
}

func TestRemotePipeServesNamedGenerator(t *testing.T) {
	_, addr := startServer(t, nil)
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(5)}, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "drain", func() {
		got := drainInts(t, p, 100)
		want := []int64{1, 2, 3, 4, 5}
		if len(got) != len(want) {
			t.Errorf("got %v, want %v", got, want)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("got %v, want %v", got, want)
				return
			}
		}
	})
	if err := p.Err(); err != nil {
		t.Fatalf("clean exhaustion must leave Err nil, got %v", err)
	}
}

func TestRemoteFailureIsCleanEOS(t *testing.T) {
	_, addr := startServer(t, nil)
	p := Open(addr, "fail", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "next", func() {
		if _, ok := p.Next(); ok {
			t.Error("empty generator produced a value")
		}
	})
	if err := p.Err(); err != nil {
		t.Fatalf("Icon failure is not an error; got %v", err)
	}
}

func TestUnknownGeneratorSurfacesAsErr(t *testing.T) {
	_, addr := startServer(t, nil)
	p := Open(addr, "no-such", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "next", func() {
		if _, ok := p.Next(); ok {
			t.Error("unknown generator produced a value")
		}
	})
	if _, ok := p.Err().(*RemoteError); !ok {
		t.Fatalf("want *RemoteError, got %v", p.Err())
	}
}

func TestProducerRuntimeErrorPropagates(t *testing.T) {
	_, addr := startServer(t, nil)
	p := Open(addr, "boom", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "drain", func() {
		if got := drainInts(t, p, 100); len(got) != 1 {
			t.Errorf("want the one good value before the error, got %v", got)
		}
	})
	err, ok := p.Err().(*RemoteError)
	if !ok {
		t.Fatalf("want *RemoteError, got %v", p.Err())
	}
	if err.Msg == "" {
		t.Fatal("empty error message")
	}
}

func TestProducerForeignPanicIsContained(t *testing.T) {
	s, addr := startServer(t, nil)
	p := Open(addr, "panic", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "drain", func() {
		drainInts(t, p, 100)
	})
	if _, ok := p.Err().(*RemoteError); !ok {
		t.Fatalf("want *RemoteError from contained panic, got %v", p.Err())
	}
	// The daemon survives: a fresh stream still works.
	p2 := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(2)}, testConfig())
	defer p2.Stop()
	within(t, 5*time.Second, "fresh stream", func() {
		if got := drainInts(t, p2, 10); len(got) != 2 {
			t.Errorf("fresh stream got %v", got)
		}
	})
	_ = s
}

func TestCreditThrottlesRemoteProducer(t *testing.T) {
	var produced atomic.Int64
	_, addr := startServer(t, func(s *Server) {
		s.Register("count", func([]value.V) (core.Gen, error) {
			return core.NewGen(func(yield func(value.V) bool) {
				for i := 0; ; i++ {
					produced.Add(1)
					if !yield(value.NewInt(int64(i))) {
						return
					}
				}
			}), nil
		})
	})
	cfg := testConfig()
	cfg.Buffer = 3
	cfg.Batch = -1 // this test asserts the per-value ACK clock: one Next,
	// one CREDIT(1), one more production. Batched streams coalesce grants
	// (the bound still holds); their throttle is covered by the batching
	// interop tests.
	p := Open(addr, "count", nil, cfg)
	defer p.Stop()
	p.StartEager()
	// The producer may run exactly `credit` values ahead, then must stall.
	deadline := time.Now().Add(2 * time.Second)
	for produced.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would overrun here if unthrottled
	if n := produced.Load(); n != 3 {
		t.Fatalf("producer ran %d values ahead, credit window is 3", n)
	}
	// Consuming one value grants one credit: exactly one more production.
	within(t, 5*time.Second, "next", func() { p.Next() })
	deadline = time.Now().Add(2 * time.Second)
	for produced.Load() < 4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if n := produced.Load(); n != 4 {
		t.Fatalf("after one Next, produced = %d, want 4", n)
	}
}

func TestRemotePipeComposesWithKernel(t *testing.T) {
	_, addr := startServer(t, nil)
	// limit: take 3 of an infinite-ish remote stream.
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(1000)}, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "limit", func() {
		got := core.Drain(core.Limit(core.Bang(p), 3), 100)
		if len(got) != 3 {
			t.Errorf("limit 3 over remote pipe yielded %d values", len(got))
		}
	})
	// alternation: remote | local.
	q := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(2)}, testConfig())
	defer q.Stop()
	within(t, 5*time.Second, "alternation", func() {
		got := core.Drain(core.Alt(core.Bang(q), core.Values(value.NewInt(9))), 100)
		if len(got) != 3 {
			t.Errorf("remote|local yielded %d values, want 3", len(got))
		}
	})
	// product: a remote pipe must behave exactly as a local pipe.Pipe in
	// the same position — a pipe is a hot stream (§3B), so the inner
	// operand yields one pass and is then exhausted; parity with the
	// in-process transport is the contract.
	local := core.Drain(core.Product(
		core.Values(value.NewInt(1), value.NewInt(2)),
		core.Bang(pipe.New(core.NewFirstClass(core.IntRange(1, 3)), 8)),
	), 100)
	a := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(3)}, testConfig())
	defer a.Stop()
	within(t, 5*time.Second, "product", func() {
		got := core.Drain(core.Product(
			core.Values(value.NewInt(1), value.NewInt(2)),
			core.Bang(a),
		), 100)
		if len(got) != len(local) {
			t.Errorf("product over remote pipe yielded %d values, local pipe yields %d", len(got), len(local))
		}
	})
}

func TestRestartReopensFreshStream(t *testing.T) {
	_, addr := startServer(t, nil)
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(3)}, testConfig())
	defer p.Stop()
	within(t, 10*time.Second, "restart cycle", func() {
		first := drainInts(t, p, 2)
		p.Restart()
		second := drainInts(t, p, 100)
		if len(first) != 2 || len(second) != 3 || second[0] != 1 {
			t.Errorf("restart: first %v, second %v", first, second)
		}
	})
	if p.Err() != nil {
		t.Fatalf("restart left err: %v", p.Err())
	}
}

func TestRefreshYieldsIndependentRemotePipe(t *testing.T) {
	_, addr := startServer(t, nil)
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(3)}, testConfig())
	defer p.Stop()
	within(t, 10*time.Second, "refresh", func() {
		drainInts(t, p, 1)
		q := p.Refresh().(*RemotePipe)
		defer q.Stop()
		got := drainInts(t, q, 100)
		if len(got) != 3 || got[0] != 1 {
			t.Errorf("refreshed pipe got %v", got)
		}
	})
}

func TestSourceStreamIsServedAndVetted(t *testing.T) {
	_, addr := startServer(t, func(s *Server) { s.AllowSource = true })
	// A healthy source stream: squares of 1..4.
	p := OpenSource(addr, "", "(1 to 4) ^ 2", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "source drain", func() {
		got := drainInts(t, p, 100)
		want := []int64{1, 4, 9, 16}
		if len(got) != len(want) {
			t.Fatalf("got %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	})
	// A program with declarations, plus args transmission.
	q := OpenSource(addr,
		"procedure double(x)\n  return x * 2\nend",
		"double(!args)",
		[]value.V{value.NewInt(10), value.NewInt(20)}, testConfig())
	defer q.Stop()
	within(t, 5*time.Second, "program drain", func() {
		got := drainInts(t, q, 100)
		if len(got) != 2 || got[0] != 20 || got[1] != 40 {
			t.Fatalf("got %v, want [20 40]", got)
		}
	})
}

func TestSourceStreamVetRejection(t *testing.T) {
	_, addr := startServer(t, func(s *Server) { s.AllowSource = true })
	// Activating an integer literal is a JV error: the vet gate must
	// refuse it before any evaluation.
	p := OpenSource(addr, "", "@42", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "vet rejection", func() {
		if _, ok := p.Next(); ok {
			t.Error("statically wrong source was served")
		}
	})
	re, ok := p.Err().(*RemoteError)
	if !ok {
		t.Fatalf("want *RemoteError, got %v", p.Err())
	}
	if re.Msg == "" {
		t.Fatal("vet rejection carried no diagnostics")
	}
}

func TestSourceDisabledByDefault(t *testing.T) {
	_, addr := startServer(t, nil)
	p := OpenSource(addr, "", "1 to 3", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "refusal", func() {
		if _, ok := p.Next(); ok {
			t.Error("source stream served despite AllowSource=false")
		}
	})
	if _, ok := p.Err().(*RemoteError); !ok {
		t.Fatalf("want *RemoteError, got %v", p.Err())
	}
}

func TestConnectionLimit(t *testing.T) {
	var blockers []*RemotePipe
	_, addr := startServer(t, func(s *Server) {
		s.MaxConns = 2
		s.Register("hold", func([]value.V) (core.Gen, error) {
			return core.RepeatAlt(core.Unit(value.NewInt(1))), nil
		})
	})
	defer func() {
		for _, p := range blockers {
			p.Stop()
		}
	}()
	for i := 0; i < 2; i++ {
		p := Open(addr, "hold", nil, testConfig())
		p.StartEager()
		within(t, 5*time.Second, "held stream", func() { p.Next() })
		blockers = append(blockers, p)
	}
	over := Open(addr, "hold", nil, testConfig())
	defer over.Stop()
	within(t, 5*time.Second, "over-limit refusal", func() {
		if _, ok := over.Next(); ok {
			t.Error("over-limit connection was served")
		}
	})
	if _, ok := over.Err().(*RemoteError); !ok {
		t.Fatalf("want *RemoteError refusal, got %v", over.Err())
	}
}

func TestStreamAccounting(t *testing.T) {
	s, addr := startServer(t, nil)
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(1000)}, testConfig())
	p.StartEager()
	within(t, 5*time.Second, "first value", func() { p.Next() })
	if s.ActiveStreams() != 1 || s.ActiveConns() != 1 {
		t.Fatalf("mid-stream accounting: streams=%d conns=%d", s.ActiveStreams(), s.ActiveConns())
	}
	p.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for (s.ActiveStreams() != 0 || s.ActiveConns() != 0) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.ActiveStreams() != 0 || s.ActiveConns() != 0 {
		t.Fatalf("after Stop: streams=%d conns=%d", s.ActiveStreams(), s.ActiveConns())
	}
	if s.Served() != 1 {
		t.Fatalf("served=%d, want 1", s.Served())
	}
}

func TestStopBeforeStart(t *testing.T) {
	p := Open("127.0.0.1:1", "range", nil, testConfig())
	p.Stop()
	if _, ok := p.Next(); ok {
		t.Fatal("stopped pipe produced a value")
	}
}

func TestDialFailureSurfacesAsError(t *testing.T) {
	// A port with nothing listening: grab one, close it.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	cfg := testConfig()
	cfg.DialTimeout = 500 * time.Millisecond
	p := Open(addr, "range", nil, cfg)
	within(t, 5*time.Second, "dial failure", func() {
		if _, ok := p.Next(); ok {
			t.Error("unreachable server produced a value")
		}
	})
	if p.Err() == nil {
		t.Fatal("dial failure left Err nil")
	}
}
