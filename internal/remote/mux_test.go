package remote

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/value"
)

// eqInt64s is a local helper; durable_test's eqInts works on the same
// shape but lives in another file — keep this one self-describing.
func muxDrainAll(t *testing.T, p *RemotePipe, max int) []int64 {
	t.Helper()
	return drainInts(t, p, max)
}

// TestMuxedManyStreamsShareOneConn is the tentpole's contract: many
// pipes opened through one Dialer ride one TCP connection, each
// delivering its exact sequence.
func TestMuxedManyStreamsShareOneConn(t *testing.T) {
	srv, addr := startServer(t, nil)
	d := &Dialer{}
	defer d.Close()

	const n = 32
	pipes := make([]*RemotePipe, n)
	for i := range pipes {
		pipes[i] = d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(20)}, testConfig())
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, p := range pipes {
		wg.Add(1)
		go func(i int, p *RemotePipe) {
			defer wg.Done()
			defer p.Stop()
			got := drainInts(t, p, 100)
			if len(got) != 20 {
				errs[i] = fmt.Errorf("stream %d: got %d values, want 20", i, len(got))
				return
			}
			for j, v := range got {
				if v != int64(j+1) {
					errs[i] = fmt.Errorf("stream %d: value %d is %d, want %d", i, j, v, j+1)
					return
				}
			}
			errs[i] = p.Err()
		}(i, p)
	}
	within(t, 15*time.Second, "drain all muxed streams", wg.Wait)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := d.Sessions(); got != 1 {
		t.Fatalf("dialer sessions = %d, want 1 (all streams share one conn)", got)
	}
	if got := srv.ActiveConns(); got != 1 {
		t.Fatalf("server conns = %d, want 1", got)
	}
}

// TestMuxedStreamErrorLeavesSiblings: a producer error on one logical
// stream must fail only that stream; its session siblings drain clean.
func TestMuxedStreamErrorLeavesSiblings(t *testing.T) {
	_, addr := startServer(t, nil)
	d := &Dialer{}
	defer d.Close()

	sib := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(200)}, testConfig())
	defer sib.Stop()
	bad := d.Open(addr, "boom", nil, testConfig())
	defer bad.Stop()

	// Interleave: a few sibling values, then drive the bad stream to its
	// runtime error, then finish the sibling on the same session.
	got := drainInts(t, sib, 5)
	within(t, 5*time.Second, "bad stream", func() { drainInts(t, bad, 100) })
	if bad.Err() == nil {
		t.Fatal("boom stream must surface its runtime error")
	}
	within(t, 10*time.Second, "sibling drain", func() {
		got = append(got, drainInts(t, sib, 500)...)
	})
	if sib.Err() != nil {
		t.Fatalf("sibling poisoned by neighbor's error: %v", sib.Err())
	}
	if len(got) != 200 || got[0] != 1 || got[199] != 200 {
		t.Fatalf("sibling sequence corrupted: %d values, ends %v", len(got), got[max(0, len(got)-3):])
	}
	if d.Sessions() != 1 {
		t.Fatalf("sessions = %d, want the one shared conn", d.Sessions())
	}
}

// TestMuxedRefusedOpenLeavesSiblings: a refused OPEN (unknown generator)
// on a session answers ERR on that stream id only.
func TestMuxedRefusedOpenLeavesSiblings(t *testing.T) {
	_, addr := startServer(t, nil)
	d := &Dialer{}
	defer d.Close()

	sib := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(30)}, testConfig())
	defer sib.Stop()
	drainInts(t, sib, 3)

	nope := d.Open(addr, "no-such-generator", nil, testConfig())
	defer nope.Stop()
	within(t, 5*time.Second, "refused stream", func() { drainInts(t, nope, 10) })
	if nope.Err() == nil || !strings.Contains(nope.Err().Error(), "unknown generator") {
		t.Fatalf("want unknown-generator refusal, got %v", nope.Err())
	}
	var rest []int64
	within(t, 5*time.Second, "sibling drain", func() { rest = drainInts(t, sib, 100) })
	if sib.Err() != nil || len(rest) != 27 {
		t.Fatalf("sibling hurt by refusal: err=%v rest=%d", sib.Err(), len(rest))
	}
}

// TestMuxedDowngradeToClassic: a Dialer against a pre-v5 server falls
// back to one connection per stream, silently, and remembers.
func TestMuxedDowngradeToClassic(t *testing.T) {
	srv, addr := startServer(t, func(s *Server) { s.MaxProtocol = 4 })
	d := &Dialer{}
	defer d.Close()

	for i := 0; i < 3; i++ {
		p := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(5)}, testConfig())
		got := drainInts(t, p, 10)
		if p.Err() != nil || len(got) != 5 {
			t.Fatalf("downgraded stream %d: err=%v n=%d", i, p.Err(), len(got))
		}
		p.Stop()
	}
	if d.Sessions() != 0 {
		t.Fatalf("sessions = %d against a v4 server, want 0", d.Sessions())
	}
	if srv.Served() != 3 {
		t.Fatalf("served = %d, want 3 classic streams", srv.Served())
	}
}

// TestMuxedPoolGrowsAtCap: with StreamsPerConn=4, eight concurrent
// streams need exactly two sessions.
func TestMuxedPoolGrowsAtCap(t *testing.T) {
	srv, addr := startServer(t, nil)
	d := &Dialer{StreamsPerConn: 4}
	defer d.Close()

	const n = 8
	pipes := make([]*RemotePipe, n)
	for i := range pipes {
		// Large range: streams stay live until we finish counting.
		pipes[i] = d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(1 << 20)}, testConfig())
		if _, ok := pipes[i].Next(); !ok {
			t.Fatalf("stream %d refused: %v", i, pipes[i].Err())
		}
	}
	if got := d.Sessions(); got != 2 {
		t.Fatalf("sessions = %d for 8 streams at cap 4, want 2", got)
	}
	if got := srv.ActiveConns(); got != 2 {
		t.Fatalf("server conns = %d, want 2", got)
	}
	for _, p := range pipes {
		p.Stop()
	}
}

// TestMuxedKillConnRecoversAllStreams: severing the shared connection
// fails every stream on it; with Recover on, each redials (onto a fresh
// session) and replays to its exact suffix.
func TestMuxedKillConnRecoversAllStreams(t *testing.T) {
	_, addr := startServer(t, nil)
	d := &Dialer{}
	defer d.Close()
	cfg := testConfig()
	cfg.Recover = true
	cfg.RecoverWait = 5 * time.Second

	const n = 4
	pipes := make([]*RemotePipe, n)
	parts := make([][]int64, n)
	for i := range pipes {
		pipes[i] = d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(40)}, cfg)
		parts[i] = drainInts(t, pipes[i], 7)
	}
	pipes[0].KillConn() // kills the shared conn: every sibling loses it too

	var wg sync.WaitGroup
	for i := range pipes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i] = append(parts[i], drainInts(t, pipes[i], 100)...)
		}(i)
	}
	within(t, 15*time.Second, "recovery drain", wg.Wait)
	for i, p := range pipes {
		if p.Err() != nil {
			t.Fatalf("stream %d err after recovery: %v", i, p.Err())
		}
		if len(parts[i]) != 40 {
			t.Fatalf("stream %d: %d values after recovery, want 40", i, len(parts[i]))
		}
		for j, v := range parts[i] {
			if v != int64(j+1) {
				t.Fatalf("stream %d: value %d is %d after recovery, want %d", i, j, v, j+1)
			}
		}
		p.Stop()
	}
}

// TestMuxedStopClosesOneStreamNotConn: stopping one pipe mid-stream
// must not tear down the session its siblings use.
func TestMuxedStopClosesOneStreamNotConn(t *testing.T) {
	srv, addr := startServer(t, nil)
	d := &Dialer{}
	defer d.Close()

	a := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(1 << 20)}, testConfig())
	b := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(50)}, testConfig())
	drainInts(t, a, 3)
	drainInts(t, b, 3)
	a.Stop()

	var rest []int64
	within(t, 5*time.Second, "sibling after Stop", func() { rest = drainInts(t, b, 100) })
	if b.Err() != nil || len(rest) != 47 {
		t.Fatalf("sibling hurt by Stop: err=%v rest=%d", b.Err(), len(rest))
	}
	b.Stop()
	if got := srv.ActiveConns(); got != 1 {
		t.Fatalf("server conns = %d, want the session still up", got)
	}
}

// TestMuxedDeadlineLeavesSiblings: a Config.Deadline expiry on a muxed
// pipe closes that stream, not the shared connection.
func TestMuxedDeadlineLeavesSiblings(t *testing.T) {
	release := make(chan struct{})
	_, addr := startServer(t, func(s *Server) {
		s.Register("stall", func(args []value.V) (core.Gen, error) {
			return core.NewGen(func(yield func(value.V) bool) {
				yield(value.NewInt(1))
				<-release // hold the producer until test teardown
			}), nil
		})
	})
	// Registered after startServer: cleanups run LIFO, so the producer is
	// released before Server.Close waits for it.
	t.Cleanup(func() { close(release) })
	d := &Dialer{}
	defer d.Close()

	sib := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(60)}, testConfig())
	defer sib.Stop()
	drainInts(t, sib, 2)

	cfg := testConfig()
	cfg.Deadline = 100 * time.Millisecond
	slow := d.Open(addr, "stall", nil, cfg)
	defer slow.Stop()
	within(t, 5*time.Second, "timeout stream", func() { drainInts(t, slow, 10) })
	if slow.Err() == nil {
		t.Fatal("stalled stream must time out")
	}
	var rest []int64
	within(t, 5*time.Second, "sibling drain", func() { rest = drainInts(t, sib, 100) })
	if sib.Err() != nil || len(rest) != 58 {
		t.Fatalf("sibling hurt by neighbor timeout: err=%v rest=%d", sib.Err(), len(rest))
	}
}
