package remote

// Failure-mode coverage for RemotePipe: every way a stream can go wrong —
// server crash mid-stream, per-call deadline expiry, malformed frames,
// silent peers — must surface through Err() and a failing Next, never a
// deadlock. The fake servers below speak just enough of the protocol to
// misbehave precisely.

import (
	"net"
	"testing"
	"time"

	"junicon/internal/value"
	"junicon/internal/wire"
)

// fakeServer accepts one connection and hands it to behave on its own
// goroutine.
func fakeServer(t *testing.T, behave func(conn net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		behave(conn)
	}()
	return l.Addr().String()
}

// expectOpen consumes the OPEN frame, failing silently (the client will
// notice the teardown).
func expectOpen(conn net.Conn) bool {
	typ, _, err := readFrame(conn)
	return err == nil && typ == frameOpen
}

// sendValues writes n integer VALUE frames.
func sendValues(conn net.Conn, n int) {
	for i := 1; i <= n; i++ {
		data, _ := wire.Marshal(value.NewInt(int64(i)))
		if writeFrame(conn, frameValue, data) != nil {
			return
		}
	}
}

func TestServerCrashMidStream(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if !expectOpen(conn) {
			return
		}
		sendValues(conn, 2)
		conn.Close() // crash: no EOS, no ERR, connection just dies
	})
	p := Open(addr, "whatever", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "crash surfacing", func() {
		got := drainInts(t, p, 100)
		if len(got) != 2 {
			t.Errorf("got %d values before crash, want 2", len(got))
		}
	})
	if p.Err() == nil {
		t.Fatal("server crash left Err nil — indistinguishable from clean EOS")
	}
	// Further Nexts keep failing fast, they do not hang or re-dial.
	within(t, time.Second, "post-crash Next", func() {
		if _, ok := p.Next(); ok {
			t.Error("crashed stream produced a value")
		}
	})
}

func TestDeadlineExpirySurfacesAsErr(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if !expectOpen(conn) {
			return
		}
		sendValues(conn, 1)
		// Stall forever, but keep the connection alive by answering pings.
		for {
			typ, _, err := readFrame(conn)
			if err != nil {
				return
			}
			if typ == framePing {
				if writeFrame(conn, framePong, nil) != nil {
					return
				}
			}
		}
	})
	cfg := testConfig()
	cfg.Deadline = 150 * time.Millisecond
	p := Open(addr, "whatever", nil, cfg)
	defer p.Stop()
	within(t, 5*time.Second, "deadline", func() {
		if _, ok := p.Next(); !ok {
			t.Error("first value should arrive")
		}
		start := time.Now()
		if _, ok := p.Next(); ok {
			t.Error("stalled stream produced a value")
		}
		if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
			t.Errorf("Next failed after %v, before the deadline", elapsed)
		}
	})
	if p.Err() != ErrDeadline {
		t.Fatalf("want ErrDeadline, got %v", p.Err())
	}
}

func TestMalformedValuePayloadSurfacesAsErr(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if !expectOpen(conn) {
			return
		}
		writeFrame(conn, frameValue, []byte{0xee, 0xff, 0x01}) // unknown wire tag
		// Keep the conn open: the client must fail on the bad frame
		// itself, not on a subsequent connection error.
		time.Sleep(2 * time.Second)
		conn.Close()
	})
	p := Open(addr, "whatever", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "malformed value", func() {
		if _, ok := p.Next(); ok {
			t.Error("malformed frame decoded to a value")
		}
	})
	if p.Err() == nil {
		t.Fatal("malformed value frame left Err nil")
	}
}

func TestUnexpectedFrameTypeSurfacesAsErr(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if !expectOpen(conn) {
			return
		}
		writeFrame(conn, 0x7f, []byte("junk")) // not a protocol frame type
		time.Sleep(2 * time.Second)
		conn.Close()
	})
	p := Open(addr, "whatever", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "unexpected frame", func() {
		if _, ok := p.Next(); ok {
			t.Error("unexpected frame type produced a value")
		}
	})
	if p.Err() == nil {
		t.Fatal("unexpected frame type left Err nil")
	}
}

func TestOversizedFramePrefixSurfacesAsErr(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if !expectOpen(conn) {
			return
		}
		// A length prefix over MaxFrame: the client must reject it before
		// allocating, not try to read 4GiB.
		conn.Write([]byte{frameValue, 0xff, 0xff, 0xff, 0xff})
		time.Sleep(2 * time.Second)
		conn.Close()
	})
	p := Open(addr, "whatever", nil, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "oversized prefix", func() {
		if _, ok := p.Next(); ok {
			t.Error("oversized frame produced a value")
		}
	})
	if p.Err() == nil {
		t.Fatal("oversized frame prefix left Err nil")
	}
}

func TestSilentPeerIsDetectedByLiveness(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if !expectOpen(conn) {
			return
		}
		// Say nothing, answer nothing: a machine that froze with the
		// TCP connection still established.
		time.Sleep(5 * time.Second)
		conn.Close()
	})
	cfg := testConfig() // heartbeat 25ms → liveness window 100ms
	p := Open(addr, "whatever", nil, cfg)
	defer p.Stop()
	within(t, 3*time.Second, "liveness detection", func() {
		if _, ok := p.Next(); ok {
			t.Error("silent peer produced a value")
		}
	})
	if p.Err() == nil {
		t.Fatal("silent peer left Err nil — Next would have hung without liveness")
	}
}

func TestMalformedFrameOnServerSideDropsStreamNotDaemon(t *testing.T) {
	// The server must also survive garbage: a client that sends a valid
	// OPEN then garbage frames loses its stream; the daemon keeps serving.
	s, addr := startServer(t, nil)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	open := &openReq{mode: openNamed, credit: 4, name: "range"}
	args, _ := wire.Marshal(value.NewList(value.NewInt(1), value.NewInt(3)))
	open.args = args
	if err := writeFrame(conn, frameOpen, open.marshal()); err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte{0x99, 0x00, 0x00, 0x00, 0x02, 0xab, 0xcd}) // garbage frame
	deadline := time.Now().Add(5 * time.Second)
	for s.ActiveStreams() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if s.ActiveStreams() != 0 {
		t.Fatal("garbage frame did not tear the stream down")
	}
	// Daemon still healthy.
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(2)}, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "post-garbage stream", func() {
		if got := drainInts(t, p, 10); len(got) != 2 {
			t.Errorf("daemon unhealthy after garbage: got %v", got)
		}
	})
}
