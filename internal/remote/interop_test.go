package remote

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"junicon/internal/core"
	"junicon/internal/value"
)

// Batching interop: a v3 (batching) client and a pre-batching server — and
// the reverse — must converge on a working stream with identical results,
// because the OPEN version negotiation (reject-and-redial downward) and the
// VALUES/VALUE frame split were designed so neither side needs to know the
// other's vintage in advance.

func wantRange(lo, hi int64) []int64 {
	var out []int64
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

func assertInts(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d (got=%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestInteropBatchingClientLegacyServer: a client advertising batches dials
// a server capped at protocol v2. The server rejects the v3 OPEN with the
// versioned message; the client must silently redial at v2 and stream
// per-value frames, with no error surfaced and no values lost.
func TestInteropBatchingClientLegacyServer(t *testing.T) {
	_, addr := startServer(t, func(s *Server) { s.MaxProtocol = 2 })
	cfg := testConfig() // Batch zero value: batching on (DefaultBatch)
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(200)}, cfg)
	defer p.Stop()
	var got []int64
	within(t, 5*time.Second, "drain via legacy server", func() {
		got = drainInts(t, p, 1000)
	})
	assertInts(t, got, wantRange(1, 200))
	if err := p.Err(); err != nil {
		t.Fatalf("downgrade surfaced as stream error: %v", err)
	}
	p.mu.Lock()
	noBatch, batch := p.noBatch, p.batch
	p.mu.Unlock()
	if !noBatch {
		t.Fatal("client did not record the downgrade")
	}
	if batch != 0 {
		t.Fatalf("redialed stream still advertises batch %d", batch)
	}
}

// TestInteropLegacyClientBatchingServer: a client with batching disabled
// (v2 OPEN) against a modern server gets plain per-value service.
func TestInteropLegacyClientBatchingServer(t *testing.T) {
	_, addr := startServer(t, nil)
	cfg := testConfig()
	cfg.Batch = -1
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(200)}, cfg)
	defer p.Stop()
	var got []int64
	within(t, 5*time.Second, "drain per-value", func() {
		got = drainInts(t, p, 1000)
	})
	assertInts(t, got, wantRange(1, 200))
	if err := p.Err(); err != nil {
		t.Fatalf("unexpected stream error: %v", err)
	}
}

// TestInteropDowngradeSurvivesRestart: the recorded downgrade must stick —
// Restart against the same legacy server reopens directly at v2 and
// re-serves the sequence from the start.
func TestInteropDowngradeSurvivesRestart(t *testing.T) {
	_, addr := startServer(t, func(s *Server) { s.MaxProtocol = 2 })
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(50)}, testConfig())
	defer p.Stop()
	within(t, 5*time.Second, "first drain", func() {
		assertInts(t, drainInts(t, p, 1000), wantRange(1, 50))
	})
	p.Restart()
	within(t, 5*time.Second, "drain after restart", func() {
		assertInts(t, drainInts(t, p, 1000), wantRange(1, 50))
	})
	if err := p.Err(); err != nil {
		t.Fatalf("restarted downgraded stream errored: %v", err)
	}
}

// TestBatchedCreditBoundHolds: batching coalesces credit grants but must
// not widen the §3B window — the producer can never run more than
// Buffer values ahead of the credits the client has granted.
func TestBatchedCreditBoundHolds(t *testing.T) {
	var produced atomic.Int64
	_, addr := startServer(t, func(s *Server) {
		s.Register("count", func([]value.V) (core.Gen, error) {
			return core.NewGen(func(yield func(value.V) bool) {
				for i := 0; ; i++ {
					produced.Add(1)
					if !yield(value.NewInt(int64(i))) {
						return
					}
				}
			}), nil
		})
	})
	cfg := testConfig()
	cfg.Buffer = 3
	p := Open(addr, "count", nil, cfg)
	defer p.Stop()
	p.StartEager()
	deadline := time.Now().Add(2 * time.Second)
	for produced.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would overrun here if unthrottled
	if n := produced.Load(); n != 3 {
		t.Fatalf("producer ran %d values ahead, credit window is 3", n)
	}
	// Consume the window plus one. The blocked fourth Next sends the
	// demand ping that returns the coalesced credits; the producer may
	// then run at most three further values ahead.
	within(t, 5*time.Second, "consume window+1", func() {
		for i := 0; i < 4; i++ {
			if _, ok := p.Next(); !ok {
				t.Errorf("Next %d failed: %v", i, p.Err())
				return
			}
		}
	})
	time.Sleep(50 * time.Millisecond)
	if n := produced.Load(); n > 6 {
		t.Fatalf("producer ran to %d after 4 takes with window 3 (bound is 6)", n)
	}
}

// TestBatchedStreamDeliversExactSequence runs a batched stream across
// buffer and batch sizes straddling the flush boundaries (batch > buffer
// forces flush-before-stall; batch 2 forces many fill-flushes; stream
// lengths ±1 around batch multiples exercise EOS-mid-batch).
func TestBatchedStreamDeliversExactSequence(t *testing.T) {
	_, addr := startServer(t, nil)
	for _, batch := range []int{2, 7, 64} {
		for _, buffer := range []int{1, 3, 64} {
			for _, n := range []int64{1, 63, 64, 65, 200} {
				name := fmt.Sprintf("batch=%d/buffer=%d/n=%d", batch, buffer, n)
				cfg := testConfig()
				cfg.Batch = batch
				cfg.Buffer = buffer
				p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(n)}, cfg)
				within(t, 10*time.Second, name, func() {
					assertInts(t, drainInts(t, p, 1000), wantRange(1, n))
				})
				if err := p.Err(); err != nil {
					t.Fatalf("%s: stream error: %v", name, err)
				}
				p.Stop()
			}
		}
	}
}

// TestBatchedProducerErrorAfterValues: values produced before a runtime
// error must all arrive before the ERR frame — the server flushes its
// pending run ahead of the terminal frame.
func TestBatchedProducerErrorAfterValues(t *testing.T) {
	_, addr := startServer(t, func(s *Server) {
		s.Register("boom3", func([]value.V) (core.Gen, error) {
			return core.NewGen(func(yield func(value.V) bool) {
				for i := int64(1); i <= 3; i++ {
					if !yield(value.NewInt(i)) {
						return
					}
				}
				value.Raise(value.ErrNumeric, "numeric expected", value.String("x"))
			}), nil
		})
	})
	p := Open(addr, "boom3", nil, testConfig())
	defer p.Stop()
	var got []int64
	within(t, 5*time.Second, "drain until error", func() {
		got = drainInts(t, p, 1000)
	})
	assertInts(t, got, wantRange(1, 3))
	if err := p.Err(); err == nil {
		t.Fatal("producer runtime error was not surfaced")
	}
}

// Session interop: a pooled (v5) client and a pre-session server — and a
// classic client against a session-capable server — must converge exactly
// like the batching pair above: silent fallback, identical values, no
// stream-id bytes leaking into classic frames.

// TestInteropPooledClientLegacyServers runs a Dialer against servers
// capped at v4 (no sessions) and v2 (no sessions, no batching): the pipe
// must fall back to a dedicated classic connection, then keep negotiating
// downward from there as before.
func TestInteropPooledClientLegacyServers(t *testing.T) {
	for _, cap := range []int{4, 2} {
		t.Run(fmt.Sprintf("v%d", cap), func(t *testing.T) {
			_, addr := startServer(t, func(s *Server) { s.MaxProtocol = cap })
			d := &Dialer{}
			defer d.Close()
			p := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(200)}, testConfig())
			defer p.Stop()
			var got []int64
			within(t, 5*time.Second, "drain via legacy server", func() {
				got = drainInts(t, p, 1000)
			})
			assertInts(t, got, wantRange(1, 200))
			if err := p.Err(); err != nil {
				t.Fatalf("fallback surfaced as stream error: %v", err)
			}
			if d.Sessions() != 0 {
				t.Fatalf("%d sessions against a v%d server, want 0", d.Sessions(), cap)
			}
			// A second stream must reuse the cached fallback without a
			// probing handshake failure showing anywhere.
			q := d.Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(5)}, testConfig())
			defer q.Stop()
			within(t, 5*time.Second, "second stream", func() {
				assertInts(t, drainInts(t, q, 100), wantRange(1, 5))
			})
			if q.Err() != nil {
				t.Fatalf("second fallback stream errored: %v", q.Err())
			}
		})
	}
}

// TestInteropClassicClientSessionServer: a plain Open (v4, no dialer)
// against a fully session-capable server takes the classic path — one
// connection, classic frames — and streams identically.
func TestInteropClassicClientSessionServer(t *testing.T) {
	srv, addr := startServer(t, nil)
	p := Open(addr, "range", []value.V{value.NewInt(1), value.NewInt(200)}, testConfig())
	defer p.Stop()
	var got []int64
	within(t, 5*time.Second, "classic drain", func() {
		got = drainInts(t, p, 1000)
	})
	assertInts(t, got, wantRange(1, 200))
	if err := p.Err(); err != nil {
		t.Fatalf("classic stream against v5 server errored: %v", err)
	}
	if srv.ActiveConns() != 1 {
		t.Fatalf("conns = %d, want 1 dedicated", srv.ActiveConns())
	}
}
