//go:build !race

// Allocation guards for the steady-state frame path. The zero-alloc
// claim the mux benchmarks rest on is pinned here as a test, so a
// regression (a forgotten pooled buffer, a frame reader that stops
// recycling) fails fast instead of showing up as a benchmark drift.
// Excluded under -race: the race runtime inserts allocations of its own.
package remote

import (
	"bytes"
	"io"
	"testing"

	"junicon/internal/value"
	"junicon/internal/wire"
)

// loopReader replays one byte sequence forever without allocating.
type loopReader struct {
	data []byte
	off  int
}

func (l *loopReader) Read(p []byte) (int, error) {
	if l.off == len(l.data) {
		l.off = 0
	}
	n := copy(p, l.data[l.off:])
	l.off += n
	return n, nil
}

// encodedValuesFrame builds one classic VALUES frame carrying n integers,
// as the server's batch flush emits it.
func encodedValuesFrame(t testing.TB, n int) []byte {
	t.Helper()
	var items [][]byte
	for i := 0; i < n; i++ {
		data, err := wire.Marshal(value.NewInt(int64(i)))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		items = append(items, data)
	}
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameValues, wire.EncodeBatch(items)); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return buf.Bytes()
}

// TestFrameReaderZeroAllocSteadyState: after warmup, reading VALUES
// frames through a frameReader allocates nothing — the recycled payload
// buffer is the whole point of the type.
func TestFrameReaderZeroAllocSteadyState(t *testing.T) {
	fr := newFrameReader(&loopReader{data: encodedValuesFrame(t, 64)})
	read := func() {
		typ, _, err := fr.read()
		if err != nil || typ != frameValues {
			t.Fatalf("read: typ=%d err=%v", typ, err)
		}
	}
	read() // warmup: first read grows the buffer
	if avg := testing.AllocsPerRun(200, read); avg > 0 {
		t.Errorf("frameReader.read allocates %.2f/op steady-state, want 0", avg)
	}
}

// TestWriteFrameZeroAllocSmallPayload: writeFrame stages header+payload
// in a pooled buffer for payloads under frameCopyLimit — zero allocations
// and exactly one Write per frame.
func TestWriteFrameZeroAllocSmallPayload(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 4096)
	write := func() {
		if err := writeFrame(io.Discard, frameValues, payload); err != nil {
			t.Fatalf("writeFrame: %v", err)
		}
	}
	write()
	if avg := testing.AllocsPerRun(200, write); avg > 0 {
		t.Errorf("writeFrame allocates %.2f/op steady-state, want 0", avg)
	}
}

// TestUnmarshalBatchIntoReusesScratch: the session read loop decodes
// every VALUES frame into one recycled value slice; the only allocations
// left are the values themselves (integers are interface-boxed), never
// the slice or the batch walk.
func TestUnmarshalBatchIntoReusesScratch(t *testing.T) {
	const n = 64
	fr := newFrameReader(&loopReader{data: encodedValuesFrame(t, n)})
	var vals []value.V
	step := func() {
		_, payload, err := fr.read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		vals, err = wire.UnmarshalBatchInto(vals[:0], payload, wire.DefaultLimits)
		if err != nil || len(vals) != n {
			t.Fatalf("decode: n=%d err=%v", len(vals), err)
		}
	}
	step() // warmup: grow scratch
	avg := testing.AllocsPerRun(200, step)
	// One boxed value per element is the floor; the guard is that nothing
	// per-frame rides on top of it (slices, intermediate [][]byte, copies).
	if avg > n+2 {
		t.Errorf("VALUES decode allocates %.1f/op for %d values, want <= %d", avg, n, n+2)
	}
}

// TestAppendMuxFrameZeroAllocWithCapacity: the shared writer's batch
// staging reuses its backing array across flushes.
func TestAppendMuxFrameZeroAllocWithCapacity(t *testing.T) {
	payload := bytes.Repeat([]byte{0xcd}, 1024)
	dst := make([]byte, 0, 2*(muxHeaderLen+len(payload)))
	step := func() {
		dst = appendMuxFrame(dst[:0], frameValues, 7, payload)
	}
	step()
	if avg := testing.AllocsPerRun(200, step); avg > 0 {
		t.Errorf("appendMuxFrame allocates %.2f/op with capacity, want 0", avg)
	}
}
