// Package remote serves generators across process boundaries: it is the
// network transport behind remote pipes. The paper's pipe |>e proxies a
// co-expression through a bounded blocking queue to another thread (§3B);
// this package keeps that contract — lazy, demand-driven, terminated by
// Icon failure — and swaps the in-memory queue for a framed TCP protocol,
// the same move as Tarau's "logic engines as interactors" (engines exposed
// as answer-serving agents over a protocol).
//
// # Protocol
//
// One connection carries one stream. The client sends OPEN naming either a
// registered generator (plus arguments) or a vetted Junicon source
// program; the server runs the generator and streams results back:
//
//	client                          server
//	  | OPEN{name|source, args, credit}
//	  |------------------------------>|
//	  |<------------------- VALUE ... |   (at most `credit` unacknowledged)
//	  | CREDIT{1}                     |   (after each consumed value)
//	  |------------------------------>|
//	  |<------------------------- EOS |   (generator failed = clean end)
//	  |<------------------------- ERR |   (producer error, vet rejection)
//	  | PING / PONG in both gaps      |   (liveness)
//	  | CANCEL                        |   (consumer stopped the pipe)
//
// Flow control is credit-based: the server may have at most as many
// unacknowledged VALUE frames in flight as the client has granted credits,
// and the client grants exactly its pipe buffer up front then one credit
// per consumed value. The pipe's buffer bound therefore throttles the
// remote producer exactly as §3B's bounded queue throttles a local
// threaded co-expression — a RemotePipe with buffer 1 degenerates to a
// remote future/M-var, just as locally.
//
// Failure propagates faithfully: the serving generator's Icon failure
// becomes EOS (the remote pipe's Next fails, Err() == nil); a producer
// runtime error or panic becomes ERR (Next fails, Err() reports it),
// mirroring pipe.Pipe.Err. Connection loss, deadline expiry and malformed
// frames also surface through Err() — never as a hang.
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"junicon/internal/telemetry"
)

// Wire-level telemetry: every frame written or read in this process
// (client and server sides both funnel through writeFrame/readFrame)
// counts frames and bytes when telemetry is enabled — the disabled path
// is one atomic load per frame, negligible next to the syscall.
var (
	cFramesTx = telemetry.NewCounter("remote.frames_tx")
	cBytesTx  = telemetry.NewCounter("remote.bytes_tx")
	cFramesRx = telemetry.NewCounter("remote.frames_rx")
	cBytesRx  = telemetry.NewCounter("remote.bytes_rx")
)

// Frame types. Append-only, like the wire codec's tag space.
const (
	frameOpen   byte = 0x01 // client→server: open a stream
	frameCredit byte = 0x02 // client→server: grant n more credits
	frameValue  byte = 0x03 // server→client: one wire-encoded result
	frameEOS    byte = 0x04 // server→client: generator failed (clean end)
	frameErr    byte = 0x05 // either: fatal stream error, payload = message
	framePing   byte = 0x06 // either: liveness probe
	framePong   byte = 0x07 // either: probe answer
	frameCancel byte = 0x08 // client→server: stop the stream
	frameValues byte = 0x09 // server→client: a batch of wire-encoded results
	// Durable-generator frames (protocol v4). SNAPSHOT piggybacks on the
	// credit-grant cadence — the server emits one after every checkpoint
	// interval of delivered values, so §3B flow control bounds checkpoint
	// lag exactly as it bounds queue depth. RESUME is an alternative opening
	// frame carrying a snapshot blob; SNAPREQ forces an immediate snapshot
	// (the migration handshake).
	frameSnapshot byte = 0x0a // server→client: checkpoint blob or refusal
	frameResume   byte = 0x0b // client→server: open by restoring a snapshot
	frameSnapReq  byte = 0x0c // client→server: demand a snapshot now
	// frameHello (protocol v5) is the server's answer to a session OPEN
	// (mode openMux at version 5): from the byte after it, both directions
	// switch to multiplexed framing — every frame gains a stream-id header
	// and one connection carries many logical streams.
	frameHello byte = 0x0d
)

// MaxFrame bounds a single frame payload; larger length prefixes are
// treated as a protocol error, protecting both sides from hostile peers.
const MaxFrame = 32 << 20

// frameName makes protocol errors readable.
func frameName(t byte) string {
	switch t {
	case frameOpen:
		return "OPEN"
	case frameCredit:
		return "CREDIT"
	case frameValue:
		return "VALUE"
	case frameEOS:
		return "EOS"
	case frameErr:
		return "ERR"
	case framePing:
		return "PING"
	case framePong:
		return "PONG"
	case frameCancel:
		return "CANCEL"
	case frameValues:
		return "VALUES"
	case frameSnapshot:
		return "SNAPSHOT"
	case frameResume:
		return "RESUME"
	case frameSnapReq:
		return "SNAPREQ"
	case frameHello:
		return "HELLO"
	}
	return fmt.Sprintf("frame %#x", t)
}

// frameCopyLimit is the payload size up to which writeFrame stages the
// header and payload in one recycled buffer for a single Write call —
// halving syscalls on the steady VALUES path. Larger payloads are written
// header-then-payload: copying megabytes to save one syscall is a loss.
const frameCopyLimit = 64 << 10

// frameBufPool recycles writeFrame's staging buffers. Buffers are bounded
// by frameCopyLimit + header, so the pool never pins large payloads.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// writeFrame emits one frame: 1-byte type, 4-byte big-endian payload
// length, payload. Callers serialize access to w. Small frames are staged
// in a pooled buffer and written in one call.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("remote: %s payload %d exceeds MaxFrame", frameName(typ), len(payload))
	}
	var err error
	if len(payload) <= frameCopyLimit {
		bp := frameBufPool.Get().(*[]byte)
		b := (*bp)[:0]
		b = append(b, typ)
		b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
		b = append(b, payload...)
		_, err = w.Write(b)
		*bp = b[:0]
		frameBufPool.Put(bp)
	} else {
		hdr := [5]byte{typ}
		binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
		if _, err = w.Write(hdr[:]); err == nil {
			_, err = w.Write(payload)
		}
	}
	if err != nil {
		return err
	}
	if telemetry.On() {
		cFramesTx.Inc()
		cBytesTx.Add(int64(5 + len(payload)))
	}
	return nil
}

// readFrame reads one frame, rejecting oversized length prefixes before
// allocating. It allocates a fresh payload per frame and is kept for
// one-shot reads (handshakes, raw protocol tests) where the payload's
// lifetime is unknown; the long-lived read loops use a frameReader, whose
// recycled buffer makes the steady-state VALUES path allocation-free.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("remote: frame length %d exceeds MaxFrame", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	if telemetry.On() {
		cFramesRx.Inc()
		cBytesRx.Add(int64(5 + n))
	}
	return hdr[0], payload, nil
}

// frameReader reads frames into a reusable payload buffer. The returned
// payload is valid only until the next read — exactly the lifetime the
// decode paths need, since wire.Unmarshal copies everything it keeps and
// OPEN payloads (whose parse aliases the buffer) are copied explicitly by
// the session demux. One reader per connection read loop: no pool
// contention and no cross-goroutine aliasing.
type frameReader struct {
	r   io.Reader
	buf []byte
	// hdr is the header scratch; a local array would escape through the
	// io.Reader interface and cost one allocation per frame.
	hdr [muxHeaderLen]byte
}

func newFrameReader(r io.Reader) *frameReader { return &frameReader{r: r} }

// payload returns the scratch buffer sized to n, growing (and
// occasionally shrinking, so one huge frame does not pin its high-water
// mark for the connection's lifetime) as needed.
func (f *frameReader) payload(n uint32) []byte {
	if uint32(cap(f.buf)) < n || (cap(f.buf) > 1<<20 && n < 1<<16) {
		f.buf = make([]byte, n)
	}
	return f.buf[:n]
}

// read reads one classic frame (type, length, payload).
func (f *frameReader) read() (byte, []byte, error) {
	hdr := f.hdr[:5]
	if _, err := io.ReadFull(f.r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("remote: frame length %d exceeds MaxFrame", n)
	}
	payload := f.payload(n)
	if _, err := io.ReadFull(f.r, payload); err != nil {
		return 0, nil, err
	}
	if telemetry.On() {
		cFramesRx.Inc()
		cBytesRx.Add(int64(5 + n))
	}
	return hdr[0], payload, nil
}

// ---- multiplexed framing (protocol v5) ----
//
// After the session handshake (a classic OPEN in mode openMux answered by
// a classic HELLO), every frame in both directions carries a stream id
// between the type and the length: [type:1][stream:4 BE][len:4 BE]
// [payload]. Stream id 0 is the connection itself — PING/PONG liveness is
// per-connection under v5, not per-stream.

// muxHeaderLen is the multiplexed frame header size.
const muxHeaderLen = 9

// appendMuxFrame appends one multiplexed frame to dst — the shared
// session writer builds its coalesced write buffers with this.
func appendMuxFrame(dst []byte, typ byte, sid uint32, payload []byte) []byte {
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint32(dst, sid)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	if telemetry.On() {
		cFramesTx.Inc()
		cBytesTx.Add(int64(muxHeaderLen + len(payload)))
	}
	return dst
}

// readMux reads one multiplexed frame (type, stream id, payload) into the
// recycled buffer.
func (f *frameReader) readMux() (byte, uint32, []byte, error) {
	hdr := f.hdr[:]
	if _, err := io.ReadFull(f.r, hdr); err != nil {
		return 0, 0, nil, err
	}
	sid := binary.BigEndian.Uint32(hdr[1:5])
	n := binary.BigEndian.Uint32(hdr[5:])
	if n > MaxFrame {
		return 0, 0, nil, fmt.Errorf("remote: frame length %d exceeds MaxFrame", n)
	}
	payload := f.payload(n)
	if _, err := io.ReadFull(f.r, payload); err != nil {
		return 0, 0, nil, err
	}
	if telemetry.On() {
		cFramesRx.Inc()
		cBytesRx.Add(int64(muxHeaderLen + n))
	}
	return hdr[0], sid, payload, nil
}

// ---- OPEN payload ----

// openVersion guards against skew between mixed-version peers. Version 2
// added the client's telemetry stream ID after the credit grant; version 3
// added the client's batch capability — the largest VALUES frame element
// count it accepts, 0 meaning per-value VALUE frames only. Lower-version
// peers (missing fields) are still accepted and read as zero values, and
// a server capped below the client's version (Server.MaxProtocol) rejects
// the OPEN with a versioned message the client recognizes and redials down
// from. Version 4 added durable generators: the checkpoint interval and
// recovery skip count in OPEN, the RESUME opening frame, and the
// SNAPSHOT/SNAPREQ exchange.
//
// Version 5 added multiplexed sessions. It is deliberately NOT the
// version individual stream opens marshal at: a stream OPEN still speaks
// openVersion (4) whether it travels on a dedicated connection or inside
// a session, so plain RemotePipe behaviour is byte-identical to v4.
// Version 5 appears on the wire only as the session handshake — an OPEN
// in mode openMux at sessionVersion — which a pre-v5 server rejects with
// the same versioned message every other downgrade uses, and the Dialer
// recognizes to fall back to one connection per stream.
const (
	openVersion    = 4
	sessionVersion = 5
)

// Open modes.
const (
	openNamed  byte = 0 // a generator registered on the server
	openSource byte = 1 // a vetted Junicon source program + expression
	openResume byte = 2 // a checkpoint snapshot to restore (v4)
	openMux    byte = 3 // a multiplexed session handshake (v5); no generator
)

// openReq is the decoded OPEN payload.
type openReq struct {
	mode    byte
	version byte   // wire version to marshal as; 0 means openVersion
	credit  uint64 // initial credit grant == client pipe buffer
	stream  uint64 // client telemetry stream ID; 0 = unobserved client
	batch   uint64 // max VALUES batch the client accepts; 0 = no batching
	// v4 durability fields. interval asks the server to emit a SNAPSHOT
	// after every interval delivered values (0 = never). skip asks the
	// server to discard that many leading values before the first delivery
	// — crash recovery replays deterministically up to the resume point.
	interval uint64
	skip     uint64
	name     string // openNamed
	program  string // openSource: declarations (may be empty)
	expr     string // openSource: the generator expression
	blob     []byte // openResume: the checkpoint snapshot
	args     []byte // wire-encoded argument list (decoded lazily server-side)
}

func appendUvarint(b []byte, u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], u)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func (o *openReq) marshal() []byte {
	ver := o.version
	if ver == 0 {
		ver = openVersion
	}
	b := []byte{ver, o.mode}
	b = appendUvarint(b, o.credit)
	b = appendUvarint(b, o.stream)
	if ver >= 3 {
		b = appendUvarint(b, o.batch)
	}
	if ver >= 4 {
		b = appendUvarint(b, o.interval)
		b = appendUvarint(b, o.skip)
	}
	switch o.mode {
	case openNamed:
		b = appendString(b, o.name)
	case openSource:
		b = appendString(b, o.program)
		b = appendString(b, o.expr)
	case openResume:
		b = appendUvarint(b, uint64(len(o.blob)))
		b = append(b, o.blob...)
	case openMux:
		// A session handshake names no generator: credit carries the
		// client's streams-per-conn hint and stream its connection id.
	}
	return append(b, o.args...)
}

type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, errors.New("remote: truncated OPEN payload")
	}
	c := r.buf[r.pos]
	r.pos++
	return c, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errors.New("remote: bad uvarint in OPEN payload")
	}
	r.pos += n
	return u, nil
}

func (r *byteReader) string() (string, error) {
	u, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if u > uint64(len(r.buf)-r.pos) {
		return "", errors.New("remote: truncated string in OPEN payload")
	}
	s := string(r.buf[r.pos : r.pos+int(u)])
	r.pos += int(u)
	return s, nil
}

func (r *byteReader) bytes() ([]byte, error) {
	u, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if u > uint64(len(r.buf)-r.pos) {
		return nil, errors.New("remote: truncated bytes in OPEN payload")
	}
	b := r.buf[r.pos : r.pos+int(u)]
	r.pos += int(u)
	return b, nil
}

func parseOpen(payload []byte, maxVer byte) (*openReq, error) {
	r := &byteReader{buf: payload}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver < 1 || ver > maxVer {
		return nil, fmt.Errorf("remote: protocol version %d, want <= %d", ver, maxVer)
	}
	o := &openReq{version: ver}
	if o.mode, err = r.byte(); err != nil {
		return nil, err
	}
	if o.credit, err = r.uvarint(); err != nil {
		return nil, err
	}
	if ver >= 2 {
		if o.stream, err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	if ver >= 3 {
		if o.batch, err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	if ver >= 4 {
		if o.interval, err = r.uvarint(); err != nil {
			return nil, err
		}
		if o.skip, err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	switch o.mode {
	case openNamed:
		if o.name, err = r.string(); err != nil {
			return nil, err
		}
	case openSource:
		if o.program, err = r.string(); err != nil {
			return nil, err
		}
		if o.expr, err = r.string(); err != nil {
			return nil, err
		}
	case openResume:
		if ver < 4 {
			return nil, fmt.Errorf("remote: RESUME requires protocol version 4, got %d", ver)
		}
		if o.blob, err = r.bytes(); err != nil {
			return nil, err
		}
	case openMux:
		if ver < sessionVersion {
			return nil, fmt.Errorf("remote: multiplexed session requires protocol version %d, got %d", sessionVersion, ver)
		}
	default:
		return nil, fmt.Errorf("remote: unknown OPEN mode %d", o.mode)
	}
	o.args = payload[r.pos:]
	return o, nil
}

// ---- SNAPSHOT payload ----

// snapshotPayload encodes a SNAPSHOT frame: the delivered-value count the
// snapshot corresponds to, an ok byte, then either the checkpoint blob
// (ok=1) or a human-readable refusal reason (ok=0). A refusal is a normal
// answer, not an error — the stream keeps flowing and the client falls
// back to replay recovery.
func snapshotPayload(produced uint64, ok bool, rest []byte) []byte {
	b := appendUvarint(nil, produced)
	if ok {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return append(b, rest...)
}

func parseSnapshot(payload []byte) (produced uint64, ok bool, rest []byte, err error) {
	r := &byteReader{buf: payload}
	if produced, err = r.uvarint(); err != nil {
		return 0, false, nil, errors.New("remote: bad SNAPSHOT payload")
	}
	okb, err := r.byte()
	if err != nil {
		return 0, false, nil, errors.New("remote: bad SNAPSHOT payload")
	}
	return produced, okb != 0, payload[r.pos:], nil
}

// versionCap parses the version ceiling out of a server's versioned
// rejection message ("remote: protocol version %d, want <= %d"). Both
// downgrade paths key on it: the per-stream redial (noteDowngrade) and
// the Dialer's v5→v4 session fallback. ok is false for any other message.
func versionCap(msg string) (byte, bool) {
	if !strings.Contains(msg, "protocol version") {
		return 0, false
	}
	i := strings.LastIndex(msg, "want <= ")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(msg[i+len("want <= "):]))
	if err != nil || n < 1 || n > 255 {
		return 0, false
	}
	return byte(n), true
}

// creditPayload encodes a CREDIT grant.
func creditPayload(n uint64) []byte { return appendUvarint(nil, n) }

func parseCredit(payload []byte) (uint64, error) {
	u, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, errors.New("remote: bad CREDIT payload")
	}
	return u, nil
}
